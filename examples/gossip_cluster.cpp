// Gossip cluster over real TCP sockets.
//
// Demonstrates the lingua franca on the wire: three Gossip servers and two
// application components run on localhost, each in the paper's
// single-threaded select()-driven server style (one Reactor per "process",
// here one thread each). The clique protocol assembles the gossip pool, the
// components register, and a state update injected at one component
// propagates to the other through the Gossips.
#include <atomic>
#include <cstdio>
#include <thread>

#include "gossip/gossip_server.hpp"
#include "gossip/sync_client.hpp"
#include "net/reactor.hpp"
#include "net/tcp_transport.hpp"

using namespace ew;

namespace {

constexpr MsgType kDemoState = 0x0400;
constexpr std::uint16_t kBasePort = 19400;

Endpoint gossip_endpoint(int i) {
  return Endpoint{"127.0.0.1", static_cast<std::uint16_t>(kBasePort + i)};
}

std::vector<Endpoint> well_known() {
  return {gossip_endpoint(0), gossip_endpoint(1), gossip_endpoint(2)};
}

/// One OS thread playing the role of one EveryWare process.
struct GossipProcess {
  explicit GossipProcess(int index) : index_(index) {}

  void run() {
    Reactor reactor;
    TcpTransport transport(reactor);
    Node node(reactor, transport, gossip_endpoint(index_));
    if (Status s = node.start(); !s.ok()) {
      std::fprintf(stderr, "gossip %d bind failed: %s\n", index_, s.to_string().c_str());
      return;
    }
    gossip::ComparatorRegistry comparators;
    gossip::GossipServer::Options opts;
    opts.poll_period = 500 * kMillisecond;
    opts.peer_sync_period = 700 * kMillisecond;
    opts.clique.token_period = 300 * kMillisecond;
    opts.clique.probe_period = 500 * kMillisecond;
    gossip::GossipServer server(node, comparators, well_known(), opts);
    server.start();
    while (!stop.load()) reactor.run_for(100 * kMillisecond);
    clique_size = server.clique().view().members.size();
    server.stop();
  }

  int index_;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> clique_size{0};
};

struct ComponentProcess {
  explicit ComponentProcess(int index) : index_(index) {}

  void run() {
    Reactor reactor;
    TcpTransport transport(reactor);
    Node node(reactor, transport,
              Endpoint{"127.0.0.1", static_cast<std::uint16_t>(kBasePort + 10 + index_)});
    if (Status s = node.start(); !s.ok()) {
      std::fprintf(stderr, "component %d bind failed\n", index_);
      return;
    }
    gossip::ComparatorRegistry comparators;
    gossip::SyncClient::Options copts;
    copts.reregister_period = 1 * kSecond;
    copts.retry_delay = 300 * kMillisecond;
    gossip::SyncClient sync(node, comparators, well_known(), copts);
    sync.expose(kDemoState,
                gossip::SyncClient::StateHandlers{
                    [this] {
                      std::lock_guard lock(mu_);
                      return state_;
                    },
                    [this](const Bytes& fresh) {
                      std::lock_guard lock(mu_);
                      state_ = fresh;
                      version.store(*gossip::blob_version(fresh));
                    },
                });
    sync.start();
    {
      std::lock_guard lock(mu_);
      state_ = gossip::versioned_blob(initial_version, {});
      version.store(initial_version);
    }
    while (!stop.load()) reactor.run_for(100 * kMillisecond);
    sync.stop();
  }

  int index_;
  std::uint64_t initial_version = 0;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> version{0};
  std::mutex mu_;
  Bytes state_;
};

}  // namespace

int main() {
  std::printf("starting 3 gossips + 2 components over TCP on localhost...\n");
  GossipProcess g0(0), g1(1), g2(2);
  ComponentProcess c0(0), c1(1);
  c0.initial_version = 7;  // c0 holds the fresh state; c1 starts stale at 0
  c1.initial_version = 0;

  std::thread tg0([&] { g0.run(); });
  std::thread tg1([&] { g1.run(); });
  std::thread tg2([&] { g2.run(); });
  std::thread tc0([&] { c0.run(); });
  std::thread tc1([&] { c1.run(); });

  // Wait (bounded) for c1 to receive version 7 through the gossip pool.
  bool synced = false;
  for (int i = 0; i < 300; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (c1.version.load() == 7) {
      synced = true;
      break;
    }
  }
  g0.stop = g1.stop = g2.stop = true;
  c0.stop = c1.stop = true;
  tg0.join();
  tg1.join();
  tg2.join();
  tc0.join();
  tc1.join();

  std::printf("component 1 state version: %llu (want 7) -> %s\n",
              static_cast<unsigned long long>(c1.version.load()),
              synced ? "SYNCED" : "NOT SYNCED");
  std::printf("gossip clique sizes at shutdown: %zu %zu %zu (want 3)\n",
              g0.clique_size.load(), g1.clique_size.load(), g2.clique_size.load());
  return synced ? 0 : 1;
}
