// SC98 contest re-run: the full EveryWare experiment on the simulated Grid.
//
// Assembles all seven infrastructures, the scheduler/gossip/state/logging
// services, runs the 12-hour High-Performance Computing Challenge window
// with the 11:00 judging spike, and prints the Figure-2 style time series
// plus a summary. Pass a fleet scale factor to shrink the run
// (e.g. `sc98_contest 0.2` for a quick look); pass `--csv <dir>` to also
// write fig2.csv / fig3a.csv / fig3b.csv for external plotting.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "app/scenario.hpp"

using namespace ew;

namespace {

void write_csvs(const app::ScenarioResults& res, const std::string& dir) {
  auto open = [&](const char* name) {
    return std::ofstream(dir + "/" + name, std::ios::trunc);
  };
  {
    auto f = open("fig2.csv");
    f << "t_seconds,total_ops_per_sec\n";
    for (std::size_t i = 0; i < res.total_rate.size(); ++i) {
      f << (res.bin_start[i] - res.bin_start[0]) / kSecond << ','
        << res.total_rate[i] << '\n';
    }
  }
  auto header = [](std::ofstream& f) {
    f << "t_seconds";
    for (int k = 0; k < core::kInfraCount; ++k) {
      f << ',' << core::infra_name(static_cast<core::Infra>(k));
    }
    f << '\n';
  };
  {
    auto f = open("fig3a.csv");
    header(f);
    for (std::size_t i = 0; i < res.total_rate.size(); ++i) {
      f << (res.bin_start[i] - res.bin_start[0]) / kSecond;
      for (int k = 0; k < core::kInfraCount; ++k) {
        f << ',' << res.infra_rate[static_cast<std::size_t>(k)][i];
      }
      f << '\n';
    }
  }
  {
    auto f = open("fig3b.csv");
    header(f);
    for (std::size_t i = 0; i < res.total_rate.size(); ++i) {
      f << (res.bin_start[i] - res.bin_start[0]) / kSecond;
      for (int k = 0; k < core::kInfraCount; ++k) {
        f << ',' << res.infra_hosts[static_cast<std::size_t>(k)][i];
      }
      f << '\n';
    }
  }
  std::printf("wrote %s/fig2.csv, fig3a.csv, fig3b.csv\n", dir.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  app::ScenarioOptions opts;
  std::string csv_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_dir = argv[++i];
    } else {
      opts.fleet_scale = std::atof(argv[i]);
    }
  }
  if (opts.fleet_scale <= 0) opts.fleet_scale = 1.0;

  std::printf("running the SC98 scenario (fleet scale %.2f, 12h window)...\n",
              opts.fleet_scale);
  app::Sc98Scenario scenario(opts);
  const app::ScenarioResults res = scenario.run();
  if (!csv_dir.empty()) write_csvs(res, csv_dir);

  std::printf("\n%-10s %-14s %s\n", "time", "Gops/s", "(five-minute averages)");
  // t=0 of the recording window is 23:36:56 PST (paper Figure 2).
  const std::int64_t base = 23 * 3600 + 36 * 60 + 56;
  for (std::size_t i = 0; i < res.total_rate.size(); i += 3) {
    const std::int64_t s =
        (base + (res.bin_start[i] - res.bin_start[0]) / kSecond) % 86400;
    std::printf("%02lld:%02lld:%02lld   %-10.3f ",
                static_cast<long long>(s / 3600),
                static_cast<long long>((s / 60) % 60),
                static_cast<long long>(s % 60), res.total_rate[i] / 1e9);
    const int bars = static_cast<int>(res.total_rate[i] / 5e7);
    for (int b = 0; b < bars && b < 60; ++b) std::printf("#");
    std::printf("\n");
  }

  double peak = 0;
  for (double v : res.total_rate) peak = std::max(peak, v);
  const std::size_t j = res.bins_judging_index;
  double dip = 1e18;
  for (std::size_t i = j; i < std::min(j + 4, res.total_rate.size()); ++i) {
    dip = std::min(dip, res.total_rate[i]);
  }
  double recovered = 0;
  for (std::size_t i = j + 2; i < std::min(j + 7, res.total_rate.size()); ++i) {
    recovered = std::max(recovered, res.total_rate[i]);
  }
  std::printf("\npeak sustained rate: %.2f Gops/s (paper: 2.39)\n", peak / 1e9);
  std::printf("judging-time dip:    %.2f Gops/s (paper: 1.1)\n", dip / 1e9);
  std::printf("post-adaptation:     %.2f Gops/s (paper: 2.0)\n", recovered / 1e9);
  std::printf("reports=%llu migrations=%llu presumed-dead=%llu evictions=%llu\n",
              static_cast<unsigned long long>(res.reports),
              static_cast<unsigned long long>(res.migrations),
              static_cast<unsigned long long>(res.presumed_dead),
              static_cast<unsigned long long>(res.condor_evictions));
  return res.total_ops > 0 ? 0 : 1;
}
