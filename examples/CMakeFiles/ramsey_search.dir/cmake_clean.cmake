file(REMOVE_RECURSE
  "CMakeFiles/ramsey_search.dir/ramsey_search.cpp.o"
  "CMakeFiles/ramsey_search.dir/ramsey_search.cpp.o.d"
  "ramsey_search"
  "ramsey_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramsey_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
