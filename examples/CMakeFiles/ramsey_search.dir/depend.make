# Empty dependencies file for ramsey_search.
# This may be replaced when dependencies are built.
