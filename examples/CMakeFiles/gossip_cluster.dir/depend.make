# Empty dependencies file for gossip_cluster.
# This may be replaced when dependencies are built.
