file(REMOVE_RECURSE
  "CMakeFiles/gossip_cluster.dir/gossip_cluster.cpp.o"
  "CMakeFiles/gossip_cluster.dir/gossip_cluster.cpp.o.d"
  "gossip_cluster"
  "gossip_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
