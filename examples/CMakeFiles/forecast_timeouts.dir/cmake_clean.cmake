file(REMOVE_RECURSE
  "CMakeFiles/forecast_timeouts.dir/forecast_timeouts.cpp.o"
  "CMakeFiles/forecast_timeouts.dir/forecast_timeouts.cpp.o.d"
  "forecast_timeouts"
  "forecast_timeouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
