# Empty compiler generated dependencies file for forecast_timeouts.
# This may be replaced when dependencies are built.
