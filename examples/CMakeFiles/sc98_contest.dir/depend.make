# Empty dependencies file for sc98_contest.
# This may be replaced when dependencies are built.
