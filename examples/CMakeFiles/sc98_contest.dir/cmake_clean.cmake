file(REMOVE_RECURSE
  "CMakeFiles/sc98_contest.dir/sc98_contest.cpp.o"
  "CMakeFiles/sc98_contest.dir/sc98_contest.cpp.o.d"
  "sc98_contest"
  "sc98_contest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc98_contest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
