# Empty dependencies file for service_framework_tour.
# This may be replaced when dependencies are built.
