file(REMOVE_RECURSE
  "CMakeFiles/service_framework_tour.dir/service_framework_tour.cpp.o"
  "CMakeFiles/service_framework_tour.dir/service_framework_tour.cpp.o.d"
  "service_framework_tour"
  "service_framework_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_framework_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
