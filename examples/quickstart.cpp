// Quickstart: the EveryWare toolkit end-to-end in one process.
//
// Builds the smallest complete Grid application: a scheduling server, a
// logging server, a persistent state manager with the Ramsey sanity check,
// and four computational clients running the REAL search heuristics on
// K_17 / K_4 — the R(4,4) problem, whose unique counter-example (the Paley
// graph of order 17) the heuristics find in seconds. Everything runs on the
// deterministic in-process transport; swap in TcpTransport + Reactor and the
// same components run across machines (see examples/gossip_cluster.cpp).
#include <cstdio>

#include "core/client.hpp"
#include "core/logging_service.hpp"
#include "core/persistent_state.hpp"
#include "core/scheduler.hpp"
#include "net/inproc_transport.hpp"
#include "ramsey/clique.hpp"
#include "sim/event_queue.hpp"

using namespace ew;

int main() {
  sim::EventQueue events;
  InProcTransport transport(events);

  // --- Services -----------------------------------------------------------
  Node sched_node(events, transport, Endpoint{"scheduler", 601});
  Node log_node(events, transport, Endpoint{"logger", 401});
  Node state_node(events, transport, Endpoint{"state", 402});
  sched_node.start();
  log_node.start();
  state_node.start();

  core::LoggingServer logging(log_node);
  logging.start();

  core::PersistentStateManager state(state_node);
  state.register_validator("ramsey/best/",
                           core::PersistentStateManager::ramsey_validator());
  state.start();

  core::SchedulerServer::Options sched_opts;
  sched_opts.logging = log_node.self();
  sched_opts.state_manager = state_node.self();
  sched_opts.pool.n = 17;  // R(4,4) = 18: a counter-example on 17 vertices exists
  sched_opts.pool.k = 4;
  sched_opts.pool.report_ops = 20'000'000;
  core::SchedulerServer scheduler(sched_node, sched_opts);
  scheduler.start();

  // --- Clients (real heuristics, real integer ops) -------------------------
  std::vector<std::unique_ptr<Node>> client_nodes;
  std::vector<std::unique_ptr<core::RamseyClient>> clients;
  for (int i = 0; i < 4; ++i) {
    auto node = std::make_unique<Node>(
        events, transport, Endpoint{"client-" + std::to_string(i), 2000});
    node->start();
    core::RamseyClient::Options o;
    o.schedulers = {sched_node.self()};
    o.infra = core::Infra::kUnix;
    o.host_label = "client-" + std::to_string(i);
    o.simulated_time = false;  // actually run the heuristics
    o.initial_sleep_max = 2 * kSecond;
    o.seed = 1000 + static_cast<std::uint64_t>(i);
    auto client = std::make_unique<core::RamseyClient>(
        *node, std::make_unique<core::RealWorkExecutor>(), o);
    client->start();
    client_nodes.push_back(std::move(node));
    clients.push_back(std::move(client));
  }

  // --- Run until a counter-example lands in persistent state ---------------
  std::printf("searching for an R(4,4) counter-example on K_17...\n");
  const std::string object = core::best_graph_name(17, 4);
  for (int round = 0; round < 2000; ++round) {
    events.run_for(5 * kSecond);
    if (state.fetch(object)) break;
  }

  auto blob = state.fetch(object);
  if (!blob) {
    std::printf("no counter-example found (unexpected)\n");
    return 1;
  }
  auto body = gossip::blob_body(*blob);
  Reader r(*body);
  const bool found = *r.boolean();
  auto graph_blob = r.blob();
  auto graph = ramsey::ColoredGraph::deserialize(*graph_blob);
  ramsey::OpsCounter ops;
  std::printf("stored object '%s': counter-example=%s, verified bad cliques=%llu\n",
              object.c_str(), found ? "yes" : "no",
              static_cast<unsigned long long>(
                  ramsey::count_bad_cliques(*graph, 4, ops)));
  std::printf("total ops delivered (logged): %llu across %llu reports\n",
              static_cast<unsigned long long>(logging.total_ops()),
              static_cast<unsigned long long>(logging.records_received()));
  std::printf("sanity-check rejections at the state manager: %llu\n",
              static_cast<unsigned long long>(state.stores_rejected()));

  for (auto& c : clients) c->stop();
  return found && ramsey::is_counterexample(*graph, 4) ? 0 : 1;
}
