// Standalone Ramsey counter-example search tool (no Grid, just the kernels).
//
// Usage: ramsey_search [n] [k] [ops_budget_millions] [seed] [k_blue]
// (k_blue enables asymmetric R(k, k_blue) search, e.g. `ramsey_search 8 3
// 100 1 4` finds the Wagner graph proving R(3,4) > 8.)
//
// Runs all three heuristics on the same instance and reports what each
// found, with the paper's instrumented integer-op accounting. Defaults to
// the R(4,4) instance on K_17 — the one with a unique counter-example (the
// Paley graph of order 17) — which the annealer cracks in a few seconds.
#include <cstdio>
#include <cstdlib>
#include <chrono>

#include "ramsey/clique.hpp"
#include "ramsey/heuristic.hpp"

using namespace ew;
using namespace ew::ramsey;

int main(int argc, char** argv) {
  HeuristicParams p;
  p.n = argc > 1 ? std::atoi(argv[1]) : 17;
  p.k = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::uint64_t budget_m = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 400;
  p.seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;
  p.k_blue = argc > 5 ? std::atoi(argv[5]) : 0;

  const int kb = p.k_blue > 0 ? p.k_blue : p.k;
  if (p.n < 2 || p.n > 64 || p.k < 2 || p.k > 8 || kb < 2 || kb > 8) {
    std::fprintf(stderr, "usage: %s [n<=64] [k<=8] [Mops] [seed] [k_blue<=8]\n",
                 argv[0]);
    return 2;
  }
  std::printf("searching for a 2-coloring of K_%d with no red K_%d and no "
              "blue K_%d\n(a witness proves R(%d,%d) > %d); budget %llu "
              "Mops/heuristic, seed %llu\n\n",
              p.n, p.k, kb, p.k, kb, p.n,
              static_cast<unsigned long long>(budget_m),
              static_cast<unsigned long long>(p.seed));

  bool any = false;
  for (auto kind : {HeuristicKind::kGreedy, HeuristicKind::kTabu,
                    HeuristicKind::kAnneal}) {
    auto h = make_heuristic(kind, p);
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t used = 0;
    bool found = false;
    while (used < budget_m * 1'000'000 && !found) {
      const StepOutcome out = h->run(25'000'000);
      used += out.ops_used;
      found = out.found;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::printf("%-8s %s  best_energy=%-6llu ops=%lluM  (%.2fs, %.0f Mops/s)\n",
                heuristic_name(kind), found ? "FOUND  " : "no     ",
                static_cast<unsigned long long>(h->best_energy()),
                static_cast<unsigned long long>(used / 1'000'000), secs,
                static_cast<double>(used) / secs / 1e6);
    if (found && !any) {
      any = true;
      // Print the witness as a red-adjacency matrix and verify it cold.
      const ColoredGraph& g = h->best();
      std::printf("\nwitness (R=red, .=blue):\n");
      for (int i = 0; i < p.n; ++i) {
        std::printf("  ");
        for (int j = 0; j < p.n; ++j) {
          std::printf("%c", i == j ? ' '
                            : g.color(i, j) == Color::kRed ? 'R' : '.');
        }
        std::printf("\n");
      }
      OpsCounter ops;
      std::printf("independent verification: %llu forbidden cliques "
                  "(red K_%d + blue K_%d)\n\n",
                  static_cast<unsigned long long>(
                      count_bad_cliques(g, p.k, kb, ops)),
                  p.k, kb);
    }
  }
  if (!any) {
    std::printf("\nno counter-example found within budget — for n at a known "
                "lower bound\n(e.g. 17/4, 42/5) try more Mops or another "
                "seed.\n");
  }
  return any ? 0 : 1;
}
