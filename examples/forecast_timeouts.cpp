// Dynamic benchmarking and time-out discovery (paper Section 2.2).
//
// Replays a synthetic server response-time trace with a load spike in the
// middle (the SCINet reconfiguration) through the forecasting battery, and
// shows the adaptive time-out tracking the regime change while a static
// time-out first wastes time (too long) and then misfires (too short).
#include <cstdio>

#include "common/rng.hpp"
#include "forecast/timeout.hpp"

using namespace ew;

int main() {
  Rng rng(7);
  AdaptiveTimeout adaptive;
  StaticTimeout fixed(1 * kSecond);
  const EventTag tag{"state-server:601", 0x0202};

  std::printf("%-6s %-12s %-12s %-12s %-8s %-8s\n", "req#", "rtt(ms)",
              "adaptive(ms)", "static(ms)", "a-fail", "s-fail");
  int adaptive_failures = 0;
  int static_failures = 0;
  for (int i = 0; i < 400; ++i) {
    // Baseline ~120 ms RTT; requests 150-299 happen during the spike where
    // the median jumps to ~900 ms with heavy tails.
    const bool spike = i >= 150 && i < 300;
    const double base = spike ? 900.0 : 120.0;
    const double rtt_ms = base * rng.lognormal(0.0, spike ? 0.6 : 0.25);
    const Duration rtt = static_cast<Duration>(rtt_ms * kMillisecond);

    const Duration a_timeout = adaptive.timeout(tag);
    const Duration s_timeout = fixed.timeout(tag);
    const bool a_ok = rtt <= a_timeout;
    const bool s_ok = rtt <= s_timeout;
    adaptive_failures += a_ok ? 0 : 1;
    static_failures += s_ok ? 0 : 1;
    adaptive.on_result(tag, rtt, a_ok);
    // The static policy learns nothing, per its nature.

    if (i % 25 == 0 || i == 150 || i == 300) {
      std::printf("%-6d %-12.1f %-12.1f %-12.1f %-8d %-8d%s\n", i, rtt_ms,
                  to_seconds(a_timeout) * 1e3, to_seconds(s_timeout) * 1e3,
                  adaptive_failures, static_failures, spike ? "  <-- spike" : "");
    }
  }
  std::printf("\nspurious time-outs: adaptive=%d static=%d\n", adaptive_failures,
              static_failures);
  std::printf("(the paper: static time-outs 'frequently misjudged the "
              "availability' of servers,\n causing 'needless retries and "
              "dynamic reconfigurations')\n");
  return adaptive_failures < static_failures ? 0 : 1;
}
