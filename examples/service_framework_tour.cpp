// Tour of the Section-6 service framework: build a new Grid service in a few
// dozen lines by composing control modules.
//
// The paper's future-work plan was "an application-specific service
// framework or template [where] programmers could then install control
// modules ... automatically invoked by each server." This example builds a
// small deployment entirely out of modules:
//   * two Gossip servers (state replication substrate),
//   * three application servers, each one framework running
//       - a ServerDirectoryModule (replicated liveness list),
//       - an NwsStationModule (peer responsiveness forecasts),
//       - a custom 30-line "work counter" module of our own,
// then kills a server and watches the directory and forecasts react.
#include <cstdio>

#include "core/server_directory.hpp"
#include "core/service_framework.hpp"
#include "gossip/gossip_server.hpp"
#include "nws/nws.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

using namespace ew;

namespace {

constexpr MsgType kSubmit = 0x0470;  // our custom service's one message

/// The custom control module: accepts "work" submissions, reports a running
/// total through a periodic tick. Everything else — node, timers, timeouts,
/// gossip wiring — comes from the framework.
class WorkCounterModule final : public core::ServiceModule {
 public:
  const char* name() const override { return "work-counter"; }
  void attach(core::ServiceContext& ctx) override {
    ctx.handle(kSubmit, [this](const IncomingMessage& m, Responder r) {
      total_ += m.packet.payload.size();
      r.ok();
    });
    ctx.every(2 * kMinute, [this, &ctx] {
      std::printf("  [%s] work-counter total: %llu bytes\n",
                  ctx.self().to_string().c_str(),
                  static_cast<unsigned long long>(total_));
    });
  }
  std::uint64_t total_ = 0;
};

}  // namespace

int main() {
  sim::EventQueue events;
  sim::NetworkModel net{Rng(9)};
  net.set_loss_rate(0.0);
  sim::SimTransport transport(events, net);
  gossip::ComparatorRegistry comparators;
  core::ServerDirectoryModule::register_comparator(comparators);

  // Substrate: two gossips.
  const std::vector<Endpoint> gossips = {Endpoint{"g0", 501}, Endpoint{"g1", 501}};
  std::vector<std::unique_ptr<Node>> gnodes;
  std::vector<std::unique_ptr<gossip::GossipServer>> gservers;
  gossip::GossipServer::Options gopts;
  gopts.poll_period = 5 * kSecond;
  gopts.peer_sync_period = 8 * kSecond;
  gopts.clique.token_period = 2 * kSecond;
  for (const auto& ep : gossips) {
    gnodes.push_back(std::make_unique<Node>(events, transport, ep));
    gnodes.back()->start();
    gservers.push_back(std::make_unique<gossip::GossipServer>(
        *gnodes.back(), comparators, gossips, gopts));
    gservers.back()->start();
  }

  // Three servers, each: directory + NWS station + our custom module.
  std::vector<Endpoint> stations;
  for (int i = 0; i < 3; ++i) stations.push_back(Endpoint{"srv" + std::to_string(i), 700});
  std::vector<std::unique_ptr<core::ServiceFramework>> servers;
  std::vector<core::ServerDirectoryModule*> dirs;
  std::vector<nws::NwsStationModule*> nws_mods;
  for (int i = 0; i < 3; ++i) {
    auto fw = std::make_unique<core::ServiceFramework>(
        events, transport, stations[static_cast<std::size_t>(i)], gossips,
        comparators);
    core::ServerDirectoryModule::Options dopts;
    dopts.heartbeat_period = 10 * kSecond;
    auto dir = std::make_unique<core::ServerDirectoryModule>(dopts);
    dirs.push_back(dir.get());
    fw->install(std::move(dir));
    nws::NwsStationModule::Options nopts;
    nopts.peers = stations;
    nopts.probe_period = 10 * kSecond;
    auto station = std::make_unique<nws::NwsStationModule>(nopts);
    nws_mods.push_back(station.get());
    fw->install(std::move(station));
    fw->install(std::make_unique<WorkCounterModule>());
    fw->start();
    servers.push_back(std::move(fw));
  }

  // A client throws some work at srv1.
  Node client(events, transport, Endpoint{"cli", 1});
  client.start();
  for (int i = 0; i < 5; ++i) {
    client.call(stations[1], kSubmit, Bytes(100, 0), CallOptions::fixed(5 * kSecond),
                [](Result<Bytes>) {});
  }

  std::printf("running 5 minutes: directories replicate, stations probe...\n");
  events.run_for(5 * kMinute);
  std::printf("\nsrv0's directory: %zu servers (want 3)\n",
              dirs[0]->directory().size());
  const Forecast f = nws_mods[0]->forecast("latency:srv2:700");
  std::printf("srv0's forecast of srv2 responsiveness: %.1f ms over %zu samples "
              "(method %.*s)\n",
              to_seconds(static_cast<Duration>(f.value)) * 1e3, f.samples,
              static_cast<int>(f.method.size()), f.method.data());

  std::printf("\nkilling srv2...\n");
  servers[2]->stop();
  transport.set_host_up("srv2", false);
  events.run_for(5 * kMinute);
  std::printf("srv0's directory after the death: %zu servers (want 2)\n",
              dirs[0]->directory().size());

  const bool ok = dirs[0]->directory().size() == 2 && f.samples > 10;
  std::printf("\n%s\n", ok ? "framework tour complete" : "UNEXPECTED STATE");
  return ok ? 0 : 1;
}
