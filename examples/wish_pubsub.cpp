// WISH pub/sub over the global environment, on the simulated Grid.
//
// Four WISH daemons share one gossip-backed environment (DESIGN.md §15).
// The demo elects a publisher with leader-once, has it publish a "topic"
// env variable that the gossip StateStore carries to every subscriber,
// scatters a configuration payload to every daemon through the MPICH-G2
// style k-ary tree, and closes with a barrier so nobody exits early —
// the WISH shell's whole synchronization surface in one run.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gossip/gossip_server.hpp"
#include "net/node.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"
#include "wish/daemon.hpp"
#include "wish/protocol.hpp"

using namespace ew;

int main() {
  constexpr int kDaemons = 4;
  sim::EventQueue events;
  sim::NetworkModel net{Rng(7)};
  sim::SimTransport transport(events, net);
  gossip::ComparatorRegistry comparators;

  // One gossip server carries the env blob between daemons.
  std::vector<Endpoint> gossips = {Endpoint{"g0", 501}};
  Node gossip_node(events, transport, gossips[0]);
  if (!gossip_node.start().ok()) return 1;
  gossip::GossipServer::Options gopts;
  gopts.poll_period = 5 * kSecond;
  gossip::GossipServer gossip_server(gossip_node, comparators, gossips, gopts);
  gossip_server.start();

  std::vector<Endpoint> peers;
  for (int i = 0; i < kDaemons; ++i) {
    peers.push_back(Endpoint{"wish-" + std::to_string(i), 701});
  }
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<std::unique_ptr<wish::WishDaemon>> daemons;
  for (int i = 0; i < kDaemons; ++i) {
    nodes.push_back(std::make_unique<Node>(events, transport,
                                           peers[static_cast<std::size_t>(i)]));
    if (!nodes.back()->start().ok()) return 1;
    wish::WishDaemon::Options o;
    o.peers = peers;
    o.gossips = gossips;
    daemons.push_back(
        std::make_unique<wish::WishDaemon>(*nodes.back(), comparators, o));
    daemons.back()->start();
  }
  events.run_for(30 * kSecond);  // registrations settle

  // 1. Elect the publisher: every daemon claims, exactly one wins.
  int publisher = -1;
  for (int i = 0; i < kDaemons; ++i) {
    daemons[static_cast<std::size_t>(i)]->leader_once(
        "publisher", 1, "wish-" + std::to_string(i),
        [&, i](bool won, const std::string& winner, std::uint64_t) {
          if (won) publisher = i;
          if (i == 0) std::printf("leader-once: winner is %s\n", winner.c_str());
        });
  }
  events.run_for(5 * kSecond);
  if (publisher < 0) return 1;

  // 2. Publish: one env_set at the winner; gossip fans it out.
  daemons[static_cast<std::size_t>(publisher)]->env_set("TOPIC/news",
                                                        "hello-grid");
  events.run_for(kMinute);
  int subscribers = 0;
  for (int i = 0; i < kDaemons; ++i) {
    auto v = daemons[static_cast<std::size_t>(i)]->env_get("TOPIC/news");
    if (v == "hello-grid") ++subscribers;
  }
  std::printf("pub/sub: %d/%d daemons saw TOPIC/news=hello-grid\n",
              subscribers, kDaemons);

  // 3. Scatter a config payload down the k-ary tree; the gather checksum
  //    proves every daemon applied it.
  Bytes payload = {0xc0, 0xff, 0xee};
  bool scatter_ok = false;
  daemons[static_cast<std::size_t>(publisher)]->scatter(
      "config", 1, payload, [&](wish::ScatterReply r) {
        std::uint64_t want = 0;
        for (const auto& ep : peers) want += wish::scatter_fold(ep, payload);
        scatter_ok = r.delivered == kDaemons && r.checksum == want;
        std::printf("scatter: delivered %u/%d, checksum %s\n", r.delivered,
                    kDaemons, scatter_ok ? "ok" : "MISMATCH");
      });
  events.run_for(10 * kSecond);

  // 4. Barrier: everybody waits for everybody before the demo exits.
  int released = 0;
  for (int i = 0; i < kDaemons; ++i) {
    daemons[static_cast<std::size_t>(i)]->enter_barrier(
        "done", 1, kDaemons, [&released] { ++released; });
  }
  events.run_for(10 * kSecond);
  std::printf("barrier: %d/%d released\n", released, kDaemons);

  for (auto& d : daemons) d->stop();
  gossip_server.stop();
  const bool ok =
      subscribers == kDaemons && scatter_ok && released == kDaemons;
  std::printf("wish_pubsub: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
