// End-to-end tests of the SC98 scenario assembly: all seven infrastructures
// delivering power, the judging spike and recovery, and the two ablations.
#include <gtest/gtest.h>

#include <numeric>

#include "app/scenario.hpp"
#include "net/node.hpp"
#include "obs/registry.hpp"

namespace ew::app {
namespace {

/// The stability-relevant slice of the process-wide call counters, captured
/// from the registry between scenario arms.
struct NetStats {
  std::uint64_t late_responses = 0;
  std::uint64_t timeouts_fired = 0;
  std::uint64_t timeout_wait_us = 0;
};

NetStats net_stats_snapshot() {
  obs::Registry& r = process_call_stats().registry();
  return {r.counter(obs::names::kNetLateResponses).value(),
          r.counter(obs::names::kNetTimeoutsFired).value(),
          r.histogram(obs::names::kNetTimeoutWaitUs).sum()};
}

/// Small, fast configuration shared by most tests (~2.5 h window).
ScenarioOptions quick_options() {
  ScenarioOptions o;
  o.seed = 7;
  o.fleet_scale = 0.15;
  o.warmup = 30 * kMinute;
  o.record = 150 * kMinute;
  o.judging_offset = 90 * kMinute;
  o.report_interval = kMinute;
  return o;
}

double mean_of(const std::vector<double>& v, std::size_t from, std::size_t to) {
  to = std::min(to, v.size());
  if (from >= to) return 0.0;
  return std::accumulate(v.begin() + static_cast<std::ptrdiff_t>(from),
                         v.begin() + static_cast<std::ptrdiff_t>(to), 0.0) /
         static_cast<double>(to - from);
}

TEST(Scenario, AllInfrastructuresDeliverOps) {
  Sc98Scenario scenario(quick_options());
  const ScenarioResults res = scenario.run();
  EXPECT_GT(res.total_ops, 0u);
  for (int i = 0; i < core::kInfraCount; ++i) {
    const auto& series = res.infra_rate[static_cast<std::size_t>(i)];
    const double total = std::accumulate(series.begin(), series.end(), 0.0);
    EXPECT_GT(total, 0.0) << core::infra_name(static_cast<core::Infra>(i));
  }
}

TEST(Scenario, HostCountsSampledPerInfrastructure) {
  Sc98Scenario scenario(quick_options());
  const ScenarioResults res = scenario.run();
  for (int i = 0; i < core::kInfraCount; ++i) {
    const auto& hosts = res.infra_hosts[static_cast<std::size_t>(i)];
    const double peak = *std::max_element(hosts.begin(), hosts.end());
    EXPECT_GT(peak, 0.0) << core::infra_name(static_cast<core::Infra>(i));
  }
}

TEST(Scenario, JudgingSpikeDipsAndRecovers) {
  Sc98Scenario scenario(quick_options());
  const ScenarioResults res = scenario.run();
  const std::size_t j = res.bins_judging_index;
  ASSERT_GT(j, 4u);
  ASSERT_LT(j + 8, res.total_rate.size());
  const double before = mean_of(res.total_rate, j - 5, j - 1);
  double dip = 1e18;
  for (std::size_t i = j; i < j + 3; ++i) dip = std::min(dip, res.total_rate[i]);
  const double after = mean_of(res.total_rate, j + 7, j + 12);
  EXPECT_LT(dip, 0.75 * before) << "spike must depress delivered power";
  EXPECT_GT(after, 0.75 * before) << "application must re-absorb the power";
}

TEST(Scenario, NoSpikeMeansNoDip) {
  ScenarioOptions o = quick_options();
  o.enable_spike = false;
  Sc98Scenario scenario(o);
  const ScenarioResults res = scenario.run();
  const std::size_t j = res.bins_judging_index;
  const double before = mean_of(res.total_rate, j - 5, j - 1);
  double dip = 1e18;
  for (std::size_t i = j; i < j + 3; ++i) dip = std::min(dip, res.total_rate[i]);
  EXPECT_GT(dip, 0.6 * before);
}

TEST(Scenario, TotalIsSmootherThanComponents) {
  // The Figure 3/4 claim: the aggregate draws power "relatively uniformly"
  // while individual infrastructures fluctuate.
  ScenarioOptions o = quick_options();
  o.enable_spike = false;
  Sc98Scenario scenario(o);
  const ScenarioResults res = scenario.run();
  auto cv = [](const std::vector<double>& v) {
    RunningStats s;
    for (double x : v) s.add(x);
    return s.cv();
  };
  const double total_cv = cv(res.total_rate);
  int rougher = 0;
  int measured = 0;
  for (int i = 0; i < core::kInfraCount; ++i) {
    const auto& series = res.infra_rate[static_cast<std::size_t>(i)];
    if (std::accumulate(series.begin(), series.end(), 0.0) <= 0.0) continue;
    ++measured;
    if (cv(series) > total_cv) ++rougher;
  }
  EXPECT_GE(measured, 5);
  EXPECT_GE(rougher, measured - 1)
      << "nearly every per-infrastructure series should be rougher than the total";
}

TEST(Scenario, DeterministicAcrossRuns) {
  Sc98Scenario a(quick_options());
  Sc98Scenario b(quick_options());
  const ScenarioResults ra = a.run();
  const ScenarioResults rb = b.run();
  EXPECT_EQ(ra.total_ops, rb.total_ops);
  EXPECT_EQ(ra.total_rate, rb.total_rate);
  EXPECT_EQ(ra.reports, rb.reports);
}

TEST(Scenario, SeedChangesTrajectory) {
  ScenarioOptions o = quick_options();
  Sc98Scenario a(o);
  o.seed = 8;
  Sc98Scenario b(o);
  EXPECT_NE(a.run().total_ops, b.run().total_ops);
}

TEST(Scenario, AdaptiveTimeoutsAreStablerThanShortStatic) {
  // Section 2.2 ablation, stability framing: a spurious time-out is a call
  // abandoned whose response later arrived ("misjudged the availability").
  // The forecast-driven policy must misjudge far less than a tight static
  // value while burning far less waiting time than a loose one, at
  // equivalent delivered throughput (compute dominates ops in this model).
  ScenarioOptions base = quick_options();

  process_call_stats().reset();
  const ScenarioResults ra = Sc98Scenario(base).run();
  const NetStats adaptive = net_stats_snapshot();

  ScenarioOptions tight = base;
  tight.adaptive_timeouts = false;
  tight.static_timeout = 300 * kMillisecond;
  process_call_stats().reset();
  const ScenarioResults rt = Sc98Scenario(tight).run();
  const NetStats short_static = net_stats_snapshot();

  ScenarioOptions loose = base;
  loose.adaptive_timeouts = false;
  loose.static_timeout = 20 * kSecond;
  process_call_stats().reset();
  Sc98Scenario(loose).run();
  const NetStats long_static = net_stats_snapshot();
  process_call_stats().reset();

  EXPECT_LT(adaptive.late_responses * 2, short_static.late_responses)
      << "adaptive misjudged " << adaptive.late_responses
      << " vs short static " << short_static.late_responses;
  const double adaptive_wait =
      adaptive.timeouts_fired
          ? static_cast<double>(adaptive.timeout_wait_us) / adaptive.timeouts_fired
          : 0;
  const double loose_wait =
      long_static.timeouts_fired
          ? static_cast<double>(long_static.timeout_wait_us) /
                long_static.timeouts_fired
          : 0;
  EXPECT_LT(adaptive_wait * 2, loose_wait);
  // Throughput stays within the noise band in every configuration.
  EXPECT_NEAR(static_cast<double>(ra.total_ops), static_cast<double>(rt.total_ops),
              0.1 * static_cast<double>(ra.total_ops));
}

TEST(Scenario, SchedulersInCondorDegradeService) {
  // Section 5.4 ablation: schedulers placed on reclaimable hosts churn, and
  // clients spend time re-locating viable schedulers.
  ScenarioOptions stable = quick_options();
  ScenarioOptions volatile_sched = quick_options();
  volatile_sched.schedulers_in_condor = true;
  const ScenarioResults rs = Sc98Scenario(stable).run();
  const ScenarioResults rv = Sc98Scenario(volatile_sched).run();
  EXPECT_LT(rv.total_ops, rs.total_ops);
}

TEST(Scenario, Figure1AuxiliaryServicesRun) {
  // The NWS stations probe throughout the run and the replicated server
  // directory converges on the full scheduler list.
  Sc98Scenario scenario(quick_options());
  const ScenarioResults res = scenario.run();
  EXPECT_GT(res.nws_probes, 100u);
  EXPECT_EQ(res.directory_size, 3u);  // num_schedulers
}

TEST(Scenario, HostCountOverridesApply) {
  ScenarioOptions o = quick_options();
  o.fleet_scale = 1.0;  // overrides below are exact counts
  o.record = 90 * kMinute;
  o.judging_offset = 60 * kMinute;
  o.host_count_override[static_cast<std::size_t>(core::Infra::kCondor)] = 5;
  o.host_count_override[static_cast<std::size_t>(core::Infra::kNT)] = 3;
  Sc98Scenario scenario(o);
  const ScenarioResults res = scenario.run();
  const auto peak = [&](core::Infra i) {
    const auto& v = res.infra_hosts[static_cast<std::size_t>(i)];
    return *std::max_element(v.begin(), v.end());
  };
  EXPECT_LE(peak(core::Infra::kCondor), 5.0);
  EXPECT_LE(peak(core::Infra::kNT), 3.0);
  // Unoverridden pools keep their calibrated sizes.
  EXPECT_GT(peak(core::Infra::kLegion), 10.0);
}

TEST(Scenario, QuirkCountersSurface) {
  ScenarioOptions o = quick_options();
  o.record = 3 * kHour;
  o.judging_offset = 90 * kMinute;
  Sc98Scenario scenario(o);
  const ScenarioResults res = scenario.run();
  EXPECT_GT(res.condor_evictions, 0u);
  EXPECT_GT(res.translated_calls, 0u);  // Legion clients work through the translator
  EXPECT_GT(res.reports, 100u);
  EXPECT_GT(res.log_records, 100u);
}

}  // namespace
}  // namespace ew::app
