// Tests for the simulated network: event queue, network model, transport.
#include <gtest/gtest.h>

#include "net/node.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"
#include "sim/traces.hpp"

namespace ew::sim {
namespace {

// --- EventQueue --------------------------------------------------------------

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3 * kSecond, [&] { order.push_back(3); });
  q.schedule(1 * kSecond, [&] { order.push_back(1); });
  q.schedule(2 * kSecond, [&] { order.push_back(2); });
  q.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.clock().now(), 3 * kSecond);
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(kSecond, [&order, i] { order.push_back(i); });
  }
  q.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const TimerId id = q.schedule(kSecond, [&] { fired = true; });
  q.cancel(id);
  q.run_until_idle();
  EXPECT_FALSE(fired);
  q.cancel(id);  // double-cancel is a no-op
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  const TimerId id = q.schedule(0, [] {});
  q.run_until_idle();
  q.cancel(id);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunUntilAdvancesClockExactly) {
  EventQueue q;
  int fired = 0;
  q.schedule(10 * kSecond, [&] { ++fired; });
  q.run_until(5 * kSecond);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.clock().now(), 5 * kSecond);
  q.run_until(10 * kSecond);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventsScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule(kSecond, chain);
  };
  q.schedule(0, chain);
  q.run_until_idle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.clock().now(), 4 * kSecond);
}

TEST(EventQueue, PostRunsAtCurrentTime) {
  EventQueue q(100);
  TimePoint seen = -1;
  q.post([&] { seen = q.clock().now(); });
  q.run_until_idle();
  EXPECT_EQ(seen, 100);
}

TEST(EventQueue, LivelockGuardThrows) {
  EventQueue q;
  std::function<void()> forever = [&] { q.post(forever); };
  q.post(forever);
  EXPECT_THROW(q.run_until_idle(1000), std::runtime_error);
}

// --- Traces --------------------------------------------------------------------

TEST(Ar1Process, StaysInBounds) {
  Ar1Process p({.mu = 0.7, .theta = 0.2, .sigma = 0.3, .lo = 0.1, .hi = 1.0},
               Rng(1), 0.7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = p.step();
    EXPECT_GE(v, 0.1);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Ar1Process, RevertsTowardMean) {
  Ar1Process p({.mu = 0.8, .theta = 0.3, .sigma = 0.02, .lo = 0.0, .hi = 1.0},
               Rng(2), 0.1);
  double sum = 0;
  for (int i = 0; i < 200; ++i) p.step();
  for (int i = 0; i < 2000; ++i) sum += p.step();
  EXPECT_NEAR(sum / 2000, 0.8, 0.1);
}

TEST(Ar1Process, PressureDepressesMean) {
  Ar1Process p({.mu = 0.9, .theta = 0.3, .sigma = 0.02, .lo = 0.0, .hi = 1.0},
               Rng(3), 0.9);
  p.set_pressure(0.5);
  for (int i = 0; i < 200; ++i) p.step();
  double sum = 0;
  for (int i = 0; i < 1000; ++i) sum += p.step();
  EXPECT_NEAR(sum / 1000, 0.45, 0.1);
}

TEST(DurationSampler, PositiveDurationsWithRequestedMean) {
  DurationSampler s({.mean_up = kHour, .mean_down = 10 * kMinute, .up_sigma = 1.0},
                    Rng(4));
  double up_sum = 0, down_sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const Duration u = s.next_up();
    const Duration d = s.next_down();
    EXPECT_GE(u, kSecond);
    EXPECT_GE(d, kSecond);
    up_sum += static_cast<double>(u);
    down_sum += static_cast<double>(d);
  }
  EXPECT_NEAR(up_sum / n / static_cast<double>(kHour), 1.0, 0.15);
  EXPECT_NEAR(down_sum / n / static_cast<double>(10 * kMinute), 1.0, 0.1);
}

TEST(SpikeSchedule, ActiveLookup) {
  SpikeSchedule s;
  Spike first;
  first.start = 100;
  first.end = 200;
  first.congestion = 2.0;
  Spike second;
  second.start = 300;
  second.end = 400;
  second.congestion = 3.0;
  s.add(first);
  s.add(second);
  EXPECT_EQ(s.active(50), nullptr);
  ASSERT_NE(s.active(150), nullptr);
  EXPECT_DOUBLE_EQ(s.active(150)->congestion, 2.0);
  EXPECT_EQ(s.active(200), nullptr);  // end-exclusive
  EXPECT_DOUBLE_EQ(s.active(399)->congestion, 3.0);
}

// --- NetworkModel ---------------------------------------------------------------

TEST(NetworkModel, SameSiteFasterThanCrossSite) {
  NetworkModel net(Rng(5));
  net.set_loss_rate(0.0);
  net.set_jitter_sigma(0.0);
  net.set_site("a", "s1");
  net.set_site("b", "s1");
  net.set_site("c", "s2");
  const auto same = net.sample("a", "b", 100);
  const auto cross = net.sample("a", "c", 100);
  ASSERT_TRUE(same.deliver);
  ASSERT_TRUE(cross.deliver);
  EXPECT_LT(same.latency, cross.latency);
}

TEST(NetworkModel, CongestionScalesLatency) {
  NetworkModel net(Rng(6));
  net.set_loss_rate(0.0);
  net.set_jitter_sigma(0.0);
  net.set_site("a", "s1");
  net.set_site("b", "s2");
  const auto base = net.sample("a", "b", 0);
  net.set_congestion(3.0);
  const auto loaded = net.sample("a", "b", 0);
  EXPECT_NEAR(static_cast<double>(loaded.latency),
              3.0 * static_cast<double>(base.latency), 2.0);
}

TEST(NetworkModel, PartitionBlocksBothDirections) {
  NetworkModel net(Rng(7));
  net.set_site("a", "s1");
  net.set_site("b", "s2");
  net.set_partitioned("s1", "s2", true);
  EXPECT_FALSE(net.sample("a", "b", 10).deliver);
  EXPECT_FALSE(net.sample("b", "a", 10).deliver);
  net.set_partitioned("s2", "s1", false);  // order-insensitive
  EXPECT_TRUE(net.sample("a", "b", 10).deliver ||
              net.sample("a", "b", 10).deliver);
}

TEST(NetworkModel, LossRateApproximatelyHonored) {
  NetworkModel net(Rng(8));
  net.set_loss_rate(0.25);
  int lost = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) lost += net.sample("a", "b", 10).deliver ? 0 : 1;
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.25, 0.02);
}

TEST(NetworkModel, LargerMessagesSlowerCrossSite) {
  NetworkModel net(Rng(9));
  net.set_loss_rate(0.0);
  net.set_jitter_sigma(0.0);
  net.set_site("a", "s1");
  net.set_site("b", "s2");
  EXPECT_LT(net.sample("a", "b", 100).latency,
            net.sample("a", "b", 1'000'000).latency);
}

TEST(NetworkModel, ExplicitPairLatencyUsed) {
  NetworkModel net(Rng(10));
  net.set_loss_rate(0.0);
  net.set_jitter_sigma(0.0);
  net.set_cross_site_bandwidth(0);
  net.set_site("a", "s1");
  net.set_site("b", "s2");
  net.set_base_latency("s1", "s2", 123 * kMillisecond);
  EXPECT_EQ(net.sample("a", "b", 0).latency, 123 * kMillisecond);
}

// --- SimTransport -----------------------------------------------------------------

class SimTransportTest : public ::testing::Test {
 protected:
  SimTransportTest() : net(Rng(11)), transport(events, net) {
    net.set_loss_rate(0.0);
    net.set_jitter_sigma(0.0);
  }
  EventQueue events;
  NetworkModel net;
  SimTransport transport;
};

TEST_F(SimTransportTest, DeliversBetweenBoundEndpoints) {
  std::optional<IncomingMessage> got;
  ASSERT_TRUE(transport
                  .bind(Endpoint{"b", 1},
                        [&](IncomingMessage m) { got = std::move(m); })
                  .ok());
  Packet p;
  p.type = 42;
  EXPECT_TRUE(transport.send(Endpoint{"a", 1}, Endpoint{"b", 1}, p).ok());
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->packet.type, 42);
  EXPECT_EQ(got->from, (Endpoint{"a", 1}));
}

TEST_F(SimTransportTest, RefusedWhenHostUpButPortUnbound) {
  const Status s = transport.send(Endpoint{"a", 1}, Endpoint{"b", 1}, Packet{});
  EXPECT_EQ(s.code(), Err::kRefused);
}

TEST_F(SimTransportTest, SilentDropWhenHostDown) {
  bool delivered = false;
  transport.bind(Endpoint{"b", 1}, [&](IncomingMessage) { delivered = true; });
  transport.set_host_up("b", false);
  // The sender cannot tell: send() succeeds, nothing arrives.
  EXPECT_TRUE(transport.send(Endpoint{"a", 1}, Endpoint{"b", 1}, Packet{}).ok());
  events.run_until_idle();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(transport.packets_dropped(), 1u);
}

TEST_F(SimTransportTest, SenderDownFailsImmediately) {
  transport.bind(Endpoint{"b", 1}, [](IncomingMessage) {});
  transport.set_host_up("a", false);
  EXPECT_EQ(transport.send(Endpoint{"a", 1}, Endpoint{"b", 1}, Packet{}).code(),
            Err::kUnavailable);
}

TEST_F(SimTransportTest, ReceiverDiesInFlight) {
  bool delivered = false;
  transport.bind(Endpoint{"b", 1}, [&](IncomingMessage) { delivered = true; });
  net.set_site("a", "s1");
  net.set_site("b", "s2");  // cross-site: nonzero latency
  transport.send(Endpoint{"a", 1}, Endpoint{"b", 1}, Packet{});
  transport.set_host_up("b", false);  // dies before delivery
  events.run_until_idle();
  EXPECT_FALSE(delivered);
}

TEST_F(SimTransportTest, UnbindDropsInFlight) {
  bool delivered = false;
  transport.bind(Endpoint{"b", 1}, [&](IncomingMessage) { delivered = true; });
  net.set_site("a", "s1");
  net.set_site("b", "s2");
  transport.send(Endpoint{"a", 1}, Endpoint{"b", 1}, Packet{});
  transport.unbind(Endpoint{"b", 1});
  events.run_until_idle();
  EXPECT_FALSE(delivered);
}

TEST_F(SimTransportTest, DoubleBindRejected) {
  EXPECT_TRUE(transport.bind(Endpoint{"x", 1}, [](IncomingMessage) {}).ok());
  EXPECT_EQ(transport.bind(Endpoint{"x", 1}, [](IncomingMessage) {}).code(),
            Err::kRejected);
}

TEST_F(SimTransportTest, BytesAccounted) {
  transport.bind(Endpoint{"b", 1}, [](IncomingMessage) {});
  Packet p;
  p.payload = Bytes(100, 0);
  transport.send(Endpoint{"a", 1}, Endpoint{"b", 1}, p);
  events.run_until_idle();
  EXPECT_EQ(transport.bytes_sent(), wire::kHeaderSize + 100);
}

}  // namespace
}  // namespace ew::sim
