// Tests for the scheduler's work pool: acquisition, frontier preference,
// resume-on-release, and footprint bounding.
#include <gtest/gtest.h>

#include "core/work_pool.hpp"

namespace ew::core {
namespace {

WorkPool::Options small_pool() {
  WorkPool::Options o;
  o.n = 10;
  o.k = 4;
  o.seed_base = 7;
  o.max_idle_frontier = 4;
  return o;
}

ramsey::WorkReport report_for(std::uint64_t unit, std::uint64_t energy,
                              int n = 10) {
  ramsey::WorkReport r;
  r.unit_id = unit;
  r.ops_done = 1000;
  r.best_energy = energy;
  Rng rng(unit + 1);
  r.best_graph = ramsey::ColoredGraph::random(n, rng).serialize();
  return r;
}

TEST(WorkPool, FreshUnitsHaveIncreasingIds) {
  WorkPool pool(small_pool());
  const auto a = pool.acquire();
  const auto b = pool.acquire();
  EXPECT_LT(a.unit_id, b.unit_id);
  EXPECT_EQ(a.n, 10);
  EXPECT_EQ(a.k, 4);
  EXPECT_FALSE(a.resume.has_value());
  EXPECT_EQ(pool.units_issued(), 2u);
}

TEST(WorkPool, HeuristicKindsRotate) {
  WorkPool pool(small_pool());
  std::set<ramsey::HeuristicKind> kinds;
  for (int i = 0; i < 3; ++i) kinds.insert(pool.acquire().kind);
  EXPECT_EQ(kinds.size(), 3u);
}

TEST(WorkPool, ReleasedReportedUnitResumesWithColoring) {
  WorkPool pool(small_pool());
  const auto spec = pool.acquire();
  pool.report(report_for(spec.unit_id, 25));
  pool.release(spec.unit_id);
  EXPECT_EQ(pool.idle_frontier_size(), 1u);
  const auto again = pool.acquire();
  EXPECT_EQ(again.unit_id, spec.unit_id);
  ASSERT_TRUE(again.resume.has_value());
  EXPECT_EQ(again.resume->order(), 10);
}

TEST(WorkPool, ReleasedUnreportedUnitIsForgotten) {
  WorkPool pool(small_pool());
  const auto spec = pool.acquire();
  pool.release(spec.unit_id);
  EXPECT_EQ(pool.idle_frontier_size(), 0u);
  const auto next = pool.acquire();
  EXPECT_NE(next.unit_id, spec.unit_id);
}

TEST(WorkPool, AcquirePrefersLowestEnergyFrontier) {
  WorkPool pool(small_pool());
  const auto a = pool.acquire();
  const auto b = pool.acquire();
  pool.report(report_for(a.unit_id, 50));
  pool.report(report_for(b.unit_id, 5));
  pool.release(a.unit_id);
  pool.release(b.unit_id);
  EXPECT_EQ(pool.acquire().unit_id, b.unit_id);
}

TEST(WorkPool, AcquireUnitOnlyWhenIdle) {
  WorkPool pool(small_pool());
  const auto spec = pool.acquire();
  EXPECT_FALSE(pool.acquire_unit(spec.unit_id).has_value());  // assigned
  pool.report(report_for(spec.unit_id, 9));
  pool.release(spec.unit_id);
  const auto again = pool.acquire_unit(spec.unit_id);
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(pool.assigned(spec.unit_id));
  EXPECT_FALSE(pool.acquire_unit(999).has_value());  // unknown
}

TEST(WorkPool, BestEnergyTracksMinimum) {
  WorkPool pool(small_pool());
  const auto spec = pool.acquire();
  EXPECT_FALSE(pool.best_energy(spec.unit_id).has_value());  // no report yet
  pool.report(report_for(spec.unit_id, 30));
  pool.report(report_for(spec.unit_id, 40));  // worse: ignored
  EXPECT_EQ(*pool.best_energy(spec.unit_id), 30u);
  pool.report(report_for(spec.unit_id, 10));
  EXPECT_EQ(*pool.best_energy(spec.unit_id), 10u);
}

TEST(WorkPool, IdleFrontierBounded) {
  WorkPool pool(small_pool());  // cap 4
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    const auto spec = pool.acquire();
    ids.push_back(spec.unit_id);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    pool.report(report_for(ids[i], 100 - i));  // later units are better
    pool.release(ids[i]);
  }
  EXPECT_LE(pool.idle_frontier_size(), 4u);
  // The survivors are the best (lowest-energy) units.
  const auto best = pool.acquire();
  EXPECT_EQ(best.unit_id, ids.back());
}

TEST(WorkPool, ReportForUnknownUnitIgnored) {
  WorkPool pool(small_pool());
  pool.report(report_for(424242, 1));
  EXPECT_EQ(pool.idle_frontier_size(), 0u);
}

TEST(WorkPool, FrontierExportImportRoundTrip) {
  WorkPool a(small_pool());
  const auto s1 = a.acquire();
  const auto s2 = a.acquire();
  a.report(report_for(s1.unit_id, 25));
  a.report(report_for(s2.unit_id, 7));
  const Bytes checkpoint = a.export_frontier();

  WorkPool b(small_pool());
  EXPECT_EQ(b.import_frontier(checkpoint), 2u);
  EXPECT_EQ(b.idle_frontier_size(), 2u);
  // The most promising unit comes back first, with its coloring and kind.
  const auto resumed = b.acquire();
  EXPECT_EQ(resumed.unit_id, s2.unit_id);
  EXPECT_EQ(resumed.kind, s2.kind);
  ASSERT_TRUE(resumed.resume.has_value());
  // Fresh units issued after import do not collide with imported ids.
  (void)b.acquire();  // consume the second frontier unit
  const auto fresh2 = b.acquire();
  EXPECT_GT(fresh2.unit_id, std::max(s1.unit_id, s2.unit_id));
}

TEST(WorkPool, ImportIgnoresGarbageAndWrongOrder) {
  WorkPool pool(small_pool());
  EXPECT_EQ(pool.import_frontier(Bytes{1, 2, 3}), 0u);
  // A checkpoint whose resume graphs have the wrong order is skipped.
  WorkPool::Options other = small_pool();
  other.n = 14;
  WorkPool donor(other);
  const auto s = donor.acquire();
  ramsey::WorkReport rep;
  rep.unit_id = s.unit_id;
  rep.best_energy = 3;
  Rng rng(1);
  rep.best_graph = ramsey::ColoredGraph::random(14, rng).serialize();
  donor.report(rep);
  EXPECT_EQ(pool.import_frontier(donor.export_frontier()), 0u);
}

TEST(WorkPool, ImportDoesNotOverrideLiveUnits) {
  WorkPool pool(small_pool());
  const auto live = pool.acquire();
  pool.report(report_for(live.unit_id, 9));
  const Bytes checkpoint = pool.export_frontier();
  // The unit is still assigned; importing its own checkpoint is a no-op.
  EXPECT_EQ(pool.import_frontier(checkpoint), 0u);
  EXPECT_TRUE(pool.assigned(live.unit_id));
}

TEST(WorkPool, CustomKindChooserUsedForFreshUnits) {
  WorkPool pool(small_pool());
  pool.set_kind_chooser(
      [](std::uint64_t) { return ramsey::HeuristicKind::kAnneal; });
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(pool.acquire().kind, ramsey::HeuristicKind::kAnneal);
  }
}

TEST(WorkPool, SpecSeedsDifferPerUnit) {
  WorkPool pool(small_pool());
  const auto a = pool.acquire();
  const auto b = pool.acquire();
  EXPECT_NE(a.seed, b.seed);
}

TEST(WorkPool, StridedPoolMintsOnlyItsResidueClass) {
  WorkPool::Options o = small_pool();
  o.first_id = 2;
  o.id_stride = 3;
  WorkPool pool(o);
  for (int i = 0; i < 5; ++i) {
    const auto spec = pool.acquire();
    EXPECT_EQ((spec.unit_id - 2) % 3, 0u);
    EXPECT_TRUE(pool.owns(spec.unit_id));
  }
  EXPECT_EQ(pool.units_issued(), 5u);
  EXPECT_FALSE(pool.owns(1));
  EXPECT_FALSE(pool.owns(3));
  EXPECT_TRUE(pool.owns(2));
  EXPECT_TRUE(pool.owns(5));
}

TEST(WorkPool, ImportFiltersForeignIds) {
  // A shard only replays its own id range from a checkpoint: units outside
  // the residue class are someone else's and must be skipped.
  WorkPool donor(small_pool());  // stride 1: mints ids 1, 2, 3, ...
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(donor.acquire().unit_id);
  for (auto id : ids) donor.report(report_for(id, 20 + id));
  const Bytes checkpoint = donor.export_frontier();

  WorkPool::Options o = small_pool();
  o.first_id = 1;
  o.id_stride = 2;  // owns 1, 3, 5, ...
  WorkPool shard(o);
  EXPECT_EQ(shard.import_frontier(checkpoint), 2u);  // only ids 1 and 3
  EXPECT_EQ(shard.idle_frontier_size(), 2u);
  EXPECT_TRUE(shard.acquire_unit(1).has_value());
  EXPECT_TRUE(shard.acquire_unit(3).has_value());
  EXPECT_FALSE(shard.acquire_unit(2).has_value());
}

TEST(WorkPool, BatchAndSingleCallsLeaveIdenticalState) {
  // report_many/release_many are the span form of report/release: feeding
  // the same sequence through either path must leave bit-identical state.
  WorkPool single(small_pool());
  WorkPool batch(small_pool());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const auto a = single.acquire();
    const auto b = batch.acquire();
    ASSERT_EQ(a.unit_id, b.unit_id);
    ids.push_back(a.unit_id);
  }
  std::vector<ramsey::WorkReport> reps;
  for (auto id : ids) reps.push_back(report_for(id, 90 - 7 * id));
  for (const auto& rep : reps) single.report(rep);
  batch.report_many(reps);
  for (auto id : ids) single.release(id);
  batch.release_many(ids);
  EXPECT_EQ(single.export_frontier(), batch.export_frontier());
  EXPECT_EQ(single.idle_frontier_size(), batch.idle_frontier_size());
  EXPECT_EQ(single.assigned_count(), batch.assigned_count());
  EXPECT_EQ(single.units_issued(), batch.units_issued());
}

TEST(WorkPool, ReleaseManyRespectsFrontierCap) {
  WorkPool pool(small_pool());  // cap 4
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(pool.acquire().unit_id);
  std::vector<ramsey::WorkReport> reps;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    reps.push_back(report_for(ids[i], 100 - i));
  }
  pool.report_many(reps);
  pool.release_many(ids);
  EXPECT_LE(pool.idle_frontier_size(), 4u);
  EXPECT_EQ(pool.acquire().unit_id, ids.back());  // best survivor first
}

TEST(WorkPool, DirtyFlagTracksCheckpointableChanges) {
  WorkPool pool(small_pool());
  EXPECT_FALSE(pool.dirty());
  const auto spec = pool.acquire();
  EXPECT_FALSE(pool.dirty());  // nothing worth checkpointing yet
  pool.report(report_for(spec.unit_id, 15));
  EXPECT_TRUE(pool.dirty());
  pool.clear_dirty();
  EXPECT_FALSE(pool.dirty());
  pool.release(spec.unit_id);
  EXPECT_TRUE(pool.dirty());
}

}  // namespace
}  // namespace ew::core
