// Tests for gossip state records, freshness comparison, and protocol codecs.
#include <gtest/gtest.h>

#include "gossip/protocol.hpp"
#include "gossip/state.hpp"

namespace ew::gossip {
namespace {

// --- Versioned blobs ----------------------------------------------------------

TEST(VersionedBlob, RoundTrip) {
  const Bytes blob = versioned_blob(42, Bytes{1, 2, 3});
  EXPECT_EQ(*blob_version(blob), 42u);
  EXPECT_EQ(*blob_body(blob), (Bytes{1, 2, 3}));
}

TEST(VersionedBlob, TruncatedFails) {
  const Bytes junk{1, 2};
  EXPECT_FALSE(blob_version(junk).ok());
  EXPECT_FALSE(blob_body(junk).ok());
}

TEST(CompareByVersionPrefix, OrdersByVersion) {
  const Bytes v1 = versioned_blob(1, {});
  const Bytes v2 = versioned_blob(2, {});
  EXPECT_LT(compare_by_version_prefix(v1, v2), 0);
  EXPECT_GT(compare_by_version_prefix(v2, v1), 0);
  EXPECT_EQ(compare_by_version_prefix(v1, v1), 0);
}

TEST(CompareByVersionPrefix, UnparseableIsStalest) {
  const Bytes good = versioned_blob(5, {});
  const Bytes junk{1};
  EXPECT_LT(compare_by_version_prefix(junk, good), 0);
}

// --- ComparatorRegistry ---------------------------------------------------------

TEST(ComparatorRegistry, FallbackIsVersionPrefix) {
  ComparatorRegistry reg;
  const auto& cmp = reg.comparator(999);
  EXPECT_GT(cmp(versioned_blob(2, {}), versioned_blob(1, {})), 0);
}

TEST(ComparatorRegistry, CustomComparatorWins) {
  ComparatorRegistry reg;
  // Freshness by blob size, ignoring versions.
  reg.register_comparator(7, [](const Bytes& a, const Bytes& b) {
    return static_cast<int>(a.size()) - static_cast<int>(b.size());
  });
  EXPECT_GT(reg.comparator(7)(Bytes(3, 0), Bytes(1, 0)), 0);
  // Other types still use the fallback.
  EXPECT_GT(reg.comparator(8)(versioned_blob(2, {}), versioned_blob(1, {})), 0);
}

// --- StateStore -------------------------------------------------------------------

TEST(StateStore, MergeKeepsFreshest) {
  ComparatorRegistry reg;
  StateStore store(reg);
  EXPECT_TRUE(store.merge(StateBlob{1, versioned_blob(1, {Bytes{9}})}));
  EXPECT_FALSE(store.merge(StateBlob{1, versioned_blob(1, {Bytes{8}})}));  // tie: keep
  EXPECT_TRUE(store.merge(StateBlob{1, versioned_blob(5, {Bytes{7}})}));
  EXPECT_FALSE(store.merge(StateBlob{1, versioned_blob(3, {Bytes{6}})}));
  EXPECT_EQ(*blob_version(store.get(1)->content), 5u);
}

TEST(StateStore, TypesIndependent) {
  ComparatorRegistry reg;
  StateStore store(reg);
  store.merge(StateBlob{1, versioned_blob(10, {})});
  store.merge(StateBlob{2, versioned_blob(3, {})});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(*blob_version(store.get(2)->content), 3u);
  EXPECT_FALSE(store.get(3).has_value());
}

TEST(StateStore, CompareWithStoredEmptyIsFresher) {
  ComparatorRegistry reg;
  StateStore store(reg);
  EXPECT_GT(store.compare_with_stored(1, versioned_blob(0, {})), 0);
}

TEST(StateStore, AllReturnsEverything) {
  ComparatorRegistry reg;
  StateStore store(reg);
  for (MsgType t = 1; t <= 5; ++t) store.merge(StateBlob{t, versioned_blob(t, {})});
  EXPECT_EQ(store.all().size(), 5u);
}

// --- Protocol codecs -----------------------------------------------------------------

TEST(ProtocolCodec, EndpointRoundTrip) {
  Writer w;
  write_endpoint(w, Endpoint{"host.example", 8080});
  Reader r(w.bytes());
  const auto e = read_endpoint(r);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->host, "host.example");
  EXPECT_EQ(e->port, 8080);
}

TEST(ProtocolCodec, RegistrationRoundTrip) {
  Registration reg;
  reg.component = Endpoint{"comp", 2000};
  reg.types = {0x0301, 0x0302};
  const auto out = Registration::deserialize(reg.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->component, reg.component);
  EXPECT_EQ(out->types, reg.types);
}

TEST(ProtocolCodec, RegistrationRejectsHugeTypeList) {
  Writer w;
  write_endpoint(w, Endpoint{"c", 1});
  w.u32(1'000'000);
  EXPECT_FALSE(Registration::deserialize(w.bytes()).ok());
}

TEST(ProtocolCodec, DigestRoundTrip) {
  Digest d;
  Registration reg;
  reg.component = Endpoint{"c", 1};
  reg.types = {7};
  d.registrations.push_back(reg);
  d.states.push_back(StateBlob{7, versioned_blob(3, {Bytes{1}})});
  const auto out = Digest::deserialize(d.serialize());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->registrations.size(), 1u);
  ASSERT_EQ(out->states.size(), 1u);
  EXPECT_EQ(out->states[0].type, 7);
}

TEST(ProtocolCodec, ViewRoundTripSortsMembers) {
  View v;
  v.generation = 9;
  v.leader = Endpoint{"a", 1};
  v.members = {Endpoint{"c", 1}, Endpoint{"a", 1}, Endpoint{"b", 1}};
  const auto out = View::deserialize(v.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->generation, 9u);
  EXPECT_TRUE(std::is_sorted(out->members.begin(), out->members.end()));
  EXPECT_TRUE(out->contains(Endpoint{"b", 1}));
  EXPECT_FALSE(out->contains(Endpoint{"z", 1}));
}

TEST(ProtocolCodec, ViewNewerThanOrdering) {
  View a;
  a.generation = 2;
  a.leader = Endpoint{"x", 1};
  View b;
  b.generation = 3;
  b.leader = Endpoint{"z", 1};
  EXPECT_TRUE(b.newer_than(a));
  EXPECT_FALSE(a.newer_than(b));
  // Tie on generation: smaller leader wins.
  b.generation = 2;
  EXPECT_TRUE(a.newer_than(b));
}

TEST(ProtocolCodec, TokenRoundTrip) {
  Token t;
  t.round = 4;
  t.view.generation = 2;
  t.view.leader = Endpoint{"l", 1};
  t.view.members = {Endpoint{"l", 1}, Endpoint{"m", 1}};
  t.visited = {Endpoint{"l", 1}};
  t.suspects = {Endpoint{"m", 1}};
  const auto out = Token::deserialize(t.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->round, 4u);
  EXPECT_EQ(out->visited.size(), 1u);
  EXPECT_EQ(out->suspects.size(), 1u);
}

TEST(ProtocolCodec, TokenFromGarbageFails) {
  EXPECT_FALSE(Token::deserialize(Bytes{1, 2, 3}).ok());
  EXPECT_FALSE(View::deserialize(Bytes{}).ok());
}

}  // namespace
}  // namespace ew::gossip
