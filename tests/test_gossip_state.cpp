// Tests for gossip state records, freshness comparison, and protocol codecs.
#include <gtest/gtest.h>

#include <algorithm>

#include "gossip/protocol.hpp"
#include "gossip/state.hpp"

namespace ew::gossip {
namespace {

// --- Versioned blobs ----------------------------------------------------------

TEST(VersionedBlob, RoundTrip) {
  const Bytes blob = versioned_blob(42, Bytes{1, 2, 3});
  EXPECT_EQ(*blob_version(blob), 42u);
  EXPECT_EQ(*blob_body(blob), (Bytes{1, 2, 3}));
}

TEST(VersionedBlob, TruncatedFails) {
  const Bytes junk{1, 2};
  EXPECT_FALSE(blob_version(junk).ok());
  EXPECT_FALSE(blob_body(junk).ok());
}

TEST(CompareByVersionPrefix, OrdersByVersion) {
  const Bytes v1 = versioned_blob(1, {});
  const Bytes v2 = versioned_blob(2, {});
  EXPECT_LT(compare_by_version_prefix(v1, v2), 0);
  EXPECT_GT(compare_by_version_prefix(v2, v1), 0);
  EXPECT_EQ(compare_by_version_prefix(v1, v1), 0);
}

TEST(CompareByVersionPrefix, UnparseableIsStalest) {
  const Bytes good = versioned_blob(5, {});
  const Bytes junk{1};
  EXPECT_LT(compare_by_version_prefix(junk, good), 0);
}

// --- ComparatorRegistry ---------------------------------------------------------

TEST(ComparatorRegistry, FallbackIsVersionPrefix) {
  ComparatorRegistry reg;
  const auto& cmp = reg.comparator(999);
  EXPECT_GT(cmp(versioned_blob(2, {}), versioned_blob(1, {})), 0);
}

TEST(ComparatorRegistry, CustomComparatorWins) {
  ComparatorRegistry reg;
  // Freshness by blob size, ignoring versions.
  reg.register_comparator(7, [](const Bytes& a, const Bytes& b) {
    return static_cast<int>(a.size()) - static_cast<int>(b.size());
  });
  EXPECT_GT(reg.comparator(7)(Bytes(3, 0), Bytes(1, 0)), 0);
  // Other types still use the fallback.
  EXPECT_GT(reg.comparator(8)(versioned_blob(2, {}), versioned_blob(1, {})), 0);
}

// --- StateStore -------------------------------------------------------------------

TEST(StateStore, MergeReportsOutcomeAndKeepsFreshest) {
  ComparatorRegistry reg;
  StateStore store(reg);
  EXPECT_EQ(store.merge(StateBlob{1, versioned_blob(1, {Bytes{9}})}),
            MergeOutcome::kNew);
  EXPECT_EQ(store.merge(StateBlob{1, versioned_blob(5, {Bytes{7}})}),
            MergeOutcome::kFresher);
  EXPECT_EQ(store.merge(StateBlob{1, versioned_blob(3, {Bytes{6}})}),
            MergeOutcome::kStale);
  EXPECT_EQ(store.merge(StateBlob{1, versioned_blob(5, {Bytes{7}})}),
            MergeOutcome::kEqual);
  EXPECT_EQ(*blob_version(store.get(1)->content), 5u);
  EXPECT_TRUE(merge_accepted(MergeOutcome::kNew));
  EXPECT_TRUE(merge_accepted(MergeOutcome::kFresher));
  EXPECT_FALSE(merge_accepted(MergeOutcome::kStale));
  EXPECT_FALSE(merge_accepted(MergeOutcome::kEqual));
}

TEST(StateStore, ComparatorTieBreaksDeterministically) {
  // Same version, different bytes: whichever copy has the larger checksum
  // must win on BOTH replicas, whatever the merge order.
  ComparatorRegistry reg;
  const StateBlob a{1, versioned_blob(4, {Bytes{1}})};
  const StateBlob b{1, versioned_blob(4, {Bytes{2}})};
  StateStore s1(reg), s2(reg);
  s1.merge(a);
  s1.merge(b);
  s2.merge(b);
  s2.merge(a);
  EXPECT_EQ(s1.get(1)->content, s2.get(1)->content);
  // Exactly one of the two cross-merges was accepted.
  EXPECT_EQ(s1.rollup_checksum(), s2.rollup_checksum());
}

// A toy union-mergeable type: content is a sorted set of bytes, merge is set
// union. Mirrors the server directory's per-server fact-union shape.
Bytes byte_set_union(const Bytes& a, const Bytes& b) {
  Bytes out = a;
  for (auto x : b) {
    if (std::find(out.begin(), out.end(), x) == out.end()) out.push_back(x);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(StateStore, UnionMergerReUnionsInsteadOfReplacing) {
  ComparatorRegistry reg;
  reg.register_merger(9, &byte_set_union);
  StateStore store(reg);
  EXPECT_EQ(store.merge(StateBlob{9, Bytes{1, 2}}), MergeOutcome::kNew);
  // Both sides contribute: the store must keep the union, not a winner.
  EXPECT_EQ(store.merge(StateBlob{9, Bytes{2, 3}}), MergeOutcome::kMerged);
  EXPECT_EQ(store.get(9)->content, (Bytes{1, 2, 3}));
  // A subset adds nothing — but its sender is provably stale: push-back.
  EXPECT_EQ(store.merge(StateBlob{9, Bytes{2}}), MergeOutcome::kStale);
  EXPECT_EQ(store.get(9)->content, (Bytes{1, 2, 3}));
  // Byte-identical copy is a clean no-op.
  EXPECT_EQ(store.merge(StateBlob{9, Bytes{1, 2, 3}}), MergeOutcome::kEqual);
  // A strict superset replaces outright.
  EXPECT_EQ(store.merge(StateBlob{9, Bytes{1, 2, 3, 4}}), MergeOutcome::kFresher);
  EXPECT_EQ(store.get(9)->content, (Bytes{1, 2, 3, 4}));
  // kMerged dirties the store (it changed) AND marks the sender stale (it
  // is missing facts) — both halves of the anti-entropy contract.
  EXPECT_TRUE(merge_accepted(MergeOutcome::kMerged));
  EXPECT_TRUE(merge_sender_stale(MergeOutcome::kMerged));
  EXPECT_TRUE(merge_sender_stale(MergeOutcome::kStale));
  EXPECT_FALSE(merge_sender_stale(MergeOutcome::kFresher));
}

TEST(StateStore, UnionMergerTypesDigestByChecksumAlone) {
  // Union types have no version prefix; their summary version is pinned to
  // 0 so digest staleness is decided purely by checksum, and the disputed
  // blob keeps flowing until the unions agree.
  ComparatorRegistry reg;
  reg.register_merger(9, &byte_set_union);
  StateStore s1(reg), s2(reg);
  s1.merge(StateBlob{9, Bytes{1, 2, 3, 4, 5, 6, 7, 8, 9}});
  EXPECT_EQ(s1.summary_of(9).version, 0u);

  // Two diverged stores converge through the digest/delta planner in ONE
  // symmetric exchange without ever losing a fact — checksum difference
  // (not order) ships the disputed blob in both directions.
  s2.merge(StateBlob{9, Bytes{1, 2, 3, 4, 5, 6, 7, 8, 42}});
  EXPECT_EQ(s1.blobs_fresher_than(s2.summary()).size(), 1u);
  EXPECT_EQ(s2.blobs_fresher_than(s1.summary()).size(), 1u);
  EXPECT_EQ(s1.types_stale_against(s2.summary()), std::vector<MsgType>{9});
  for (const auto& b : s1.blobs_fresher_than(s2.summary())) s2.merge(b);
  for (const auto& b : s2.blobs_fresher_than(s1.summary())) s1.merge(b);
  // Converged: the planners go quiet.
  EXPECT_TRUE(s1.blobs_fresher_than(s2.summary()).empty());
  EXPECT_TRUE(s1.types_stale_against(s2.summary()).empty());
  EXPECT_EQ(s1.get(9)->content, (Bytes{1, 2, 3, 4, 5, 6, 7, 8, 9, 42}));
  EXPECT_EQ(s1.get(9)->content, s2.get(9)->content);
}

TEST(StateStore, TypesIndependent) {
  ComparatorRegistry reg;
  StateStore store(reg);
  store.merge(StateBlob{1, versioned_blob(10, {})});
  store.merge(StateBlob{2, versioned_blob(3, {})});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(*blob_version(store.get(2)->content), 3u);
  EXPECT_FALSE(store.get(3).has_value());
}

TEST(StateStore, AllReturnsEverything) {
  ComparatorRegistry reg;
  StateStore store(reg);
  for (MsgType t = 1; t <= 5; ++t) store.merge(StateBlob{t, versioned_blob(t, {})});
  EXPECT_EQ(store.all().size(), 5u);
}

TEST(StateStore, SummaryTracksVersionsNatively) {
  ComparatorRegistry reg;
  StateStore store(reg);
  store.merge(StateBlob{3, versioned_blob(7, {Bytes{1}})});
  store.merge(StateBlob{1, versioned_blob(2, {Bytes{2}})});
  const auto sum = store.summary();
  ASSERT_EQ(sum.size(), 2u);
  EXPECT_EQ(sum[0].type, 1);  // sorted by type
  EXPECT_EQ(sum[0].version, 2u);
  EXPECT_EQ(sum[1].type, 3);
  EXPECT_EQ(sum[1].version, 7u);
  EXPECT_EQ(store.version_of(3), 7u);
  EXPECT_EQ(store.version_of(99), 0u);
}

TEST(StateStore, StoreVersionBumpsOnlyOnAcceptedMerges) {
  ComparatorRegistry reg;
  StateStore store(reg);
  const auto v0 = store.store_version();
  store.merge(StateBlob{1, versioned_blob(1, {})});  // kNew
  const auto v1 = store.store_version();
  EXPECT_GT(v1, v0);
  store.merge(StateBlob{1, versioned_blob(1, {})});  // kEqual
  EXPECT_EQ(store.store_version(), v1);
  store.merge(StateBlob{1, versioned_blob(2, {})});  // kFresher
  EXPECT_GT(store.store_version(), v1);
}

TEST(StateStore, CrashRestartGhostShadowsLowVersionRepublish) {
  // Pin of the crash-restart incarnation hazard the WISH env-var layer must
  // design around. The store itself is *correct* to keep the higher-version
  // copy: it has no notion of writer identity, so a daemon that crashes,
  // restarts with a fresh version counter, and re-publishes at version 1 is
  // shadowed by its own pre-crash ghost — and a kStale poll outcome actively
  // pushes the ghost back at the restarted writer. Convergence on the ghost
  // is the store's contract; any layer that re-publishes after a restart
  // must therefore re-mint ABOVE the ghost's version (read the merged copy,
  // floor its own counter past it), as wish::EnvStore does. If this test
  // ever changes, that contract moved — update DESIGN.md §15 and EnvStore.
  ComparatorRegistry reg;
  StateStore store(reg);
  // Pre-crash incarnation published up to version 10.
  EXPECT_TRUE(merge_accepted(
      store.merge(StateBlob{7, versioned_blob(10, {Bytes{1}})})));
  // Restarted incarnation, counter reset, re-publishes at version 1: the
  // ghost wins, forever, no matter how often the new copy is offered.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(store.merge(StateBlob{7, versioned_blob(1, {Bytes{2}})}),
              MergeOutcome::kStale);
  }
  EXPECT_EQ(*blob_version(store.get(7)->content), 10u);
  EXPECT_EQ(*blob_body(store.get(7)->content), Bytes{1});
  // The escape hatch layers above must use: re-mint past the ghost.
  EXPECT_EQ(store.merge(StateBlob{7, versioned_blob(11, {Bytes{2}})}),
            MergeOutcome::kFresher);
  EXPECT_EQ(*blob_body(store.get(7)->content), Bytes{2});
}

TEST(StateStore, DeltaPlannerFindsExactlyTheStaleTypes) {
  ComparatorRegistry reg;
  StateStore a(reg), b(reg);
  a.merge(StateBlob{1, versioned_blob(5, {Bytes{1}})});  // a ahead
  b.merge(StateBlob{1, versioned_blob(3, {Bytes{2}})});
  a.merge(StateBlob{2, versioned_blob(4, {Bytes{3}})});  // equal copies
  b.merge(StateBlob{2, versioned_blob(4, {Bytes{3}})});
  b.merge(StateBlob{3, versioned_blob(9, {Bytes{4}})});  // only b has it
  // a's view of b's digest: a should send type 1 and want type 3.
  const auto send = a.blobs_fresher_than(b.summary());
  ASSERT_EQ(send.size(), 1u);
  EXPECT_EQ(send[0].type, 1);
  const auto want = a.types_stale_against(b.summary());
  ASSERT_EQ(want.size(), 1u);
  EXPECT_EQ(want[0], 3);
  // And symmetrically for b.
  EXPECT_EQ(b.blobs_fresher_than(a.summary()).size(), 1u);
  EXPECT_EQ(b.types_stale_against(a.summary()).size(), 1u);
}

// --- Protocol codecs -----------------------------------------------------------------

TEST(ProtocolCodec, EndpointRoundTrip) {
  Writer w;
  write_endpoint(w, Endpoint{"host.example", 8080});
  Reader r(w.bytes());
  const auto e = read_endpoint(r);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->host, "host.example");
  EXPECT_EQ(e->port, 8080);
}

TEST(ProtocolCodec, RegistrationRoundTrip) {
  Registration reg;
  reg.component = Endpoint{"comp", 2000};
  reg.types = {0x0301, 0x0302};
  const auto out = Registration::deserialize(reg.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->component, reg.component);
  EXPECT_EQ(out->types, reg.types);
}

TEST(ProtocolCodec, RegistrationRejectsHugeTypeList) {
  Writer w;
  write_endpoint(w, Endpoint{"c", 1});
  w.u32(1'000'000);
  EXPECT_FALSE(Registration::deserialize(w.bytes()).ok());
}

TEST(ProtocolCodec, DigestRoundTrip) {
  Digest d;
  d.clique = 3;
  d.summaries.push_back(TypeSummary{7, 11, 0xdeadbeefu});
  d.summaries.push_back(TypeSummary{9, 2, 42});
  d.reg_count = 5;
  d.reg_checksum = 0xabcdef0123456789ull;
  const auto out = Digest::deserialize(d.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->clique, 3u);
  ASSERT_EQ(out->summaries.size(), 2u);
  EXPECT_EQ(out->summaries[0].type, 7);
  EXPECT_EQ(out->summaries[0].version, 11u);
  EXPECT_EQ(out->summaries[0].checksum, 0xdeadbeefu);
  EXPECT_EQ(out->reg_count, 5u);
  EXPECT_EQ(out->reg_checksum, 0xabcdef0123456789ull);
}

TEST(ProtocolCodec, DigestRejectsTruncatedAndOversized) {
  Digest d;
  d.clique = 1;
  d.summaries.push_back(TypeSummary{7, 11, 13});
  const Bytes wire = d.serialize();
  // Truncation anywhere must fail cleanly, never read past the buffer.
  for (std::size_t n = 0; n < wire.size(); ++n) {
    const Bytes cut(wire.begin(), wire.begin() + static_cast<long>(n));
    EXPECT_FALSE(Digest::deserialize(cut).ok()) << "prefix length " << n;
  }
  // A count field promising more elements than the payload can hold must be
  // rejected before any allocation is sized from it.
  Writer w;
  w.u32(1);            // clique
  w.u32(0x7fffffff);   // summary count: absurd
  EXPECT_FALSE(Digest::deserialize(w.bytes()).ok());
}

TEST(ProtocolCodec, DeltaRoundTrip) {
  Delta d;
  d.clique = 2;
  d.blobs.push_back(StateBlob{7, versioned_blob(3, {Bytes{1}})});
  d.want = {9, 11};
  Registration reg;
  reg.component = Endpoint{"c", 1};
  reg.types = {7};
  d.registrations.push_back(reg);
  const auto out = Delta::deserialize(d.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->clique, 2u);
  ASSERT_EQ(out->blobs.size(), 1u);
  EXPECT_EQ(out->blobs[0].type, 7);
  EXPECT_EQ(out->want, (std::vector<MsgType>{9, 11}));
  ASSERT_EQ(out->registrations.size(), 1u);
  EXPECT_EQ(out->registrations[0].component, (Endpoint{"c", 1}));
}

TEST(ProtocolCodec, DeltaRejectsTruncatedAndOversized) {
  Delta d;
  d.clique = 1;
  d.blobs.push_back(StateBlob{7, versioned_blob(3, {Bytes{1, 2}})});
  d.want = {9};
  const Bytes wire = d.serialize();
  for (std::size_t n = 0; n < wire.size(); ++n) {
    const Bytes cut(wire.begin(), wire.begin() + static_cast<long>(n));
    EXPECT_FALSE(Delta::deserialize(cut).ok()) << "prefix length " << n;
  }
  Writer w;
  w.u32(1);           // clique
  w.u32(2'000'000);   // blob count far beyond the payload
  EXPECT_FALSE(Delta::deserialize(w.bytes()).ok());
}

TEST(ProtocolCodec, ParentDigestRoundTrip) {
  ParentDigest pd;
  pd.cliques.push_back(CliqueSummary{0, 4, 0x11, 10, 3});
  pd.cliques.push_back(CliqueSummary{1, 9, 0x22, 20, 7});
  const auto out = ParentDigest::deserialize(pd.serialize());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->cliques.size(), 2u);
  EXPECT_EQ(out->cliques[1].clique, 1u);
  EXPECT_EQ(out->cliques[1].version, 9u);
  EXPECT_EQ(out->cliques[1].components, 7u);
  // Oversized clique count is rejected up front.
  Writer w;
  w.u32(50'000'000);
  EXPECT_FALSE(ParentDigest::deserialize(w.bytes()).ok());
}

TEST(ProtocolCodec, TypeAndBlobListRoundTrip) {
  const std::vector<MsgType> types{3, 1, 9};
  const auto tl = deserialize_type_list(serialize_type_list(types));
  ASSERT_TRUE(tl.ok());
  EXPECT_EQ(*tl, types);
  std::vector<StateBlob> blobs;
  blobs.push_back(StateBlob{5, Bytes{1, 2, 3}});
  const auto bl = deserialize_blob_list(serialize_blob_list(blobs));
  ASSERT_TRUE(bl.ok());
  ASSERT_EQ(bl->size(), 1u);
  EXPECT_EQ((*bl)[0].type, 5);
  EXPECT_EQ((*bl)[0].content, (Bytes{1, 2, 3}));
  // Count guard on both list codecs.
  Writer w;
  w.u32(3'000'000);
  EXPECT_FALSE(deserialize_type_list(w.bytes()).ok());
  EXPECT_FALSE(deserialize_blob_list(w.bytes()).ok());
}

TEST(ProtocolCodec, PollRequestAndReplyRoundTrip) {
  PollRequest req;
  req.held.push_back(TypeSummary{7, 3, 0xabcdef});
  req.held.push_back(TypeSummary{9, 0, 0});  // gossip holds nothing yet
  const auto rq = PollRequest::deserialize(req.serialize());
  ASSERT_TRUE(rq.ok());
  ASSERT_EQ(rq->held.size(), 2u);
  EXPECT_EQ(rq->held[0].type, 7);
  EXPECT_EQ(rq->held[0].checksum, 0xabcdefu);
  EXPECT_EQ(rq->held[1].version, 0u);

  PollReply fresh;
  fresh.fresh = true;
  const auto fr = PollReply::deserialize(fresh.serialize());
  ASSERT_TRUE(fr.ok());
  EXPECT_TRUE(fr->fresh);
  EXPECT_TRUE(fr->blobs.empty());

  PollReply stale;
  stale.blobs.push_back(StateBlob{5, Bytes{1, 2, 3}});
  const auto sr = PollReply::deserialize(stale.serialize());
  ASSERT_TRUE(sr.ok());
  EXPECT_FALSE(sr->fresh);
  ASSERT_EQ(sr->blobs.size(), 1u);
  EXPECT_EQ(sr->blobs[0].content, (Bytes{1, 2, 3}));

  // Count guards.
  Writer w;
  w.u32(50'000'000);
  EXPECT_FALSE(PollRequest::deserialize(w.bytes()).ok());
  Writer w2;
  w2.u8(0);
  w2.u32(50'000'000);
  EXPECT_FALSE(PollReply::deserialize(w2.bytes()).ok());
}

TEST(StateStore, SummaryOfSingleType) {
  ComparatorRegistry reg;
  StateStore store(reg);
  EXPECT_EQ(store.summary_of(7).type, 7);
  EXPECT_EQ(store.summary_of(7).version, 0u);
  EXPECT_EQ(store.summary_of(7).checksum, 0u);
  const StateBlob blob{7, versioned_blob(3, Bytes{1})};
  store.merge(blob);
  const TypeSummary s = store.summary_of(7);
  EXPECT_EQ(s.version, 3u);
  EXPECT_EQ(s.checksum, content_checksum(blob.content));
}

TEST(ProtocolCodec, ViewRoundTripSortsMembers) {
  View v;
  v.generation = 9;
  v.leader = Endpoint{"a", 1};
  v.members = {Endpoint{"c", 1}, Endpoint{"a", 1}, Endpoint{"b", 1}};
  const auto out = View::deserialize(v.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->generation, 9u);
  EXPECT_TRUE(std::is_sorted(out->members.begin(), out->members.end()));
  EXPECT_TRUE(out->contains(Endpoint{"b", 1}));
  EXPECT_FALSE(out->contains(Endpoint{"z", 1}));
}

TEST(ProtocolCodec, ViewNewerThanOrdering) {
  View a;
  a.generation = 2;
  a.leader = Endpoint{"x", 1};
  View b;
  b.generation = 3;
  b.leader = Endpoint{"z", 1};
  EXPECT_TRUE(b.newer_than(a));
  EXPECT_FALSE(a.newer_than(b));
  // Tie on generation: smaller leader wins.
  b.generation = 2;
  EXPECT_TRUE(a.newer_than(b));
}

TEST(ProtocolCodec, TokenRoundTrip) {
  Token t;
  t.round = 4;
  t.view.generation = 2;
  t.view.leader = Endpoint{"l", 1};
  t.view.members = {Endpoint{"l", 1}, Endpoint{"m", 1}};
  t.visited = {Endpoint{"l", 1}};
  t.suspects = {Endpoint{"m", 1}};
  const auto out = Token::deserialize(t.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->round, 4u);
  EXPECT_EQ(out->visited.size(), 1u);
  EXPECT_EQ(out->suspects.size(), 1u);
}

TEST(ProtocolCodec, TokenFromGarbageFails) {
  EXPECT_FALSE(Token::deserialize(Bytes{1, 2, 3}).ok());
  EXPECT_FALSE(View::deserialize(Bytes{}).ok());
}

}  // namespace
}  // namespace ew::gossip
