// Integration tests for the distributed state exchange service: component
// registration, polling, freshness-driven updates, anti-entropy, and
// responsibility partitioning.
#include <gtest/gtest.h>

#include <memory>

#include "gossip/gossip_server.hpp"
#include "gossip/sync_client.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew::gossip {
namespace {

constexpr MsgType kCounterState = 0x0441;

/// A component whose synchronized state is a versioned counter.
struct CounterComponent {
  CounterComponent(sim::EventQueue& events, Transport& transport,
                   const std::string& host, const ComparatorRegistry& comparators,
                   std::vector<Endpoint> gossips)
      : node(std::make_unique<Node>(events, transport, Endpoint{host, 2000})) {
    EXPECT_TRUE(node->start().ok());
    SyncClient::Options o;
    o.reregister_period = 30 * kSecond;
    o.retry_delay = 2 * kSecond;
    sync = std::make_unique<SyncClient>(*node, comparators, std::move(gossips), o);
    sync->expose(kCounterState,
                 SyncClient::StateHandlers{
                     [this] { return versioned_blob(version, {}); },
                     [this](const Bytes& fresh) { version = *blob_version(fresh); },
                 });
    sync->start();
  }

  std::unique_ptr<Node> node;
  std::unique_ptr<SyncClient> sync;
  std::uint64_t version = 0;
};

class GossipServerTest : public ::testing::Test {
 protected:
  GossipServerTest() : net_(Rng(7)), transport_(events_, net_) {
    net_.set_loss_rate(0.0);
    net_.set_jitter_sigma(0.0);
  }

  void build(int num_gossips, std::uint32_t num_cliques = 1) {
    for (int i = 0; i < num_gossips; ++i) {
      well_known_.push_back(Endpoint{"g" + std::to_string(i), 501});
    }
    GossipServer::Options opts;
    opts.poll_period = 5 * kSecond;
    opts.peer_sync_period = 8 * kSecond;
    opts.parent_sync_period = 8 * kSecond;
    opts.lease = 5 * kMinute;
    opts.num_cliques = num_cliques;
    opts.clique.token_period = 2 * kSecond;
    opts.clique.probe_period = 4 * kSecond;
    for (int i = 0; i < num_gossips; ++i) {
      auto node = std::make_unique<Node>(events_, transport_,
                                         well_known_[static_cast<std::size_t>(i)]);
      EXPECT_TRUE(node->start().ok());
      auto server = std::make_unique<GossipServer>(*node, comparators_, well_known_, opts);
      server->start();
      nodes_.push_back(std::move(node));
      servers_.push_back(std::move(server));
    }
  }

  CounterComponent* add_component(const std::string& host) {
    components_.push_back(std::make_unique<CounterComponent>(
        events_, transport_, host, comparators_, well_known_));
    return components_.back().get();
  }

  sim::EventQueue events_;
  sim::NetworkModel net_;
  sim::SimTransport transport_;
  ComparatorRegistry comparators_;
  std::vector<Endpoint> well_known_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<GossipServer>> servers_;
  std::vector<std::unique_ptr<CounterComponent>> components_;
};

TEST_F(GossipServerTest, ComponentRegistersAndIsPolled) {
  build(1);
  auto* c = add_component("comp-a");
  c->version = 3;
  events_.run_for(2 * kMinute);
  EXPECT_TRUE(c->sync->registered());
  EXPECT_GT(servers_[0]->polls_sent(), 0u);
  auto stored = servers_[0]->store().get(kCounterState);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(*blob_version(stored->content), 3u);
}

TEST_F(GossipServerTest, UnchangedComponentAnswersPollsFromTheDigestCache) {
  build(1);
  auto* c = add_component("comp-a");
  c->version = 3;
  events_.run_for(2 * kMinute);
  // The first poll shipped the blob; every later one matched the gossip's
  // digest and was answered "fresh" with no content.
  ASSERT_GT(servers_[0]->polls_sent(), 2u);
  EXPECT_GE(c->sync->poll_cache_hits(), servers_[0]->polls_sent() - 2);
  auto stored = servers_[0]->store().get(kCounterState);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(*blob_version(stored->content), 3u);

  // The moment the component's state changes, the cache misses and the
  // fresh content flows again.
  const std::uint64_t hits_before = c->sync->poll_cache_hits();
  c->version = 9;
  events_.run_for(30 * kSecond);
  stored = servers_[0]->store().get(kCounterState);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(*blob_version(stored->content), 9u);
  // And once absorbed, polls go back to cache hits.
  events_.run_for(1 * kMinute);
  EXPECT_GT(c->sync->poll_cache_hits(), hits_before);
}

TEST_F(GossipServerTest, StaleComponentReceivesUpdate) {
  build(1);
  auto* fresh = add_component("comp-a");
  auto* stale = add_component("comp-b");
  fresh->version = 10;
  stale->version = 2;
  events_.run_for(3 * kMinute);
  EXPECT_EQ(stale->version, 10u);
  EXPECT_GT(servers_[0]->updates_pushed(), 0u);
  EXPECT_GT(stale->sync->updates_applied(), 0u);
}

TEST_F(GossipServerTest, FreshnessNeverRollsBack) {
  build(1);
  auto* a = add_component("comp-a");
  auto* b = add_component("comp-b");
  a->version = 10;
  b->version = 2;
  events_.run_for(2 * kMinute);
  // Now b improves beyond a; the gossip must propagate forward only.
  b->version = 50;
  events_.run_for(3 * kMinute);
  EXPECT_EQ(a->version, 50u);
  EXPECT_EQ(b->version, 50u);
}

TEST_F(GossipServerTest, StatePropagatesAcrossGossipPool) {
  build(3);
  auto* a = add_component("comp-a");
  a->version = 7;
  events_.run_for(5 * kMinute);
  // Anti-entropy spreads the state to every gossip, not just the poller.
  int holders = 0;
  for (auto& s : servers_) {
    auto stored = s->store().get(kCounterState);
    if (stored && *blob_version(stored->content) == 7u) ++holders;
  }
  EXPECT_EQ(holders, 3);
}

TEST_F(GossipServerTest, RegistrationForwardedToPeers) {
  build(3);
  add_component("comp-a");
  events_.run_for(2 * kMinute);
  int knowing = 0;
  for (auto& s : servers_) knowing += s->registered_components() > 0 ? 1 : 0;
  EXPECT_EQ(knowing, 3);
}

TEST_F(GossipServerTest, ExactlyOneGossipResponsiblePerComponent) {
  build(4);
  events_.run_for(3 * kMinute);  // clique forms
  for (const char* comp : {"x", "y", "z", "w", "v"}) {
    int responsible = 0;
    for (auto& s : servers_) {
      responsible += s->responsible_for(Endpoint{comp, 2000}) ? 1 : 0;
    }
    EXPECT_EQ(responsible, 1) << comp;
  }
}

TEST_F(GossipServerTest, ResponsibilityRebalancesOnGossipFailure) {
  build(3);
  auto* c = add_component("comp-a");
  c->version = 4;
  events_.run_for(3 * kMinute);
  // Kill whichever gossip is responsible; another must take over polling.
  std::size_t victim = 99;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i]->responsible_for(c->node->self())) victim = i;
  }
  ASSERT_NE(victim, 99u);
  transport_.set_host_up("g" + std::to_string(victim), false);
  events_.run_for(5 * kMinute);
  c->version = 20;
  events_.run_for(5 * kMinute);
  int holders = 0;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (i == victim) continue;
    auto stored = servers_[i]->store().get(kCounterState);
    if (stored && *blob_version(stored->content) == 20u) ++holders;
  }
  EXPECT_EQ(holders, 2);
}

TEST_F(GossipServerTest, DeadComponentPurgedAfterMisses) {
  build(1);
  auto* c = add_component("comp-a");
  events_.run_for(kMinute);
  ASSERT_EQ(servers_[0]->registered_components(), 1u);
  // Kill the component's host; polls now time out.
  c->sync->stop();
  transport_.set_host_up("comp-a", false);
  events_.run_for(10 * kMinute);
  EXPECT_EQ(servers_[0]->registered_components(), 0u);
}

TEST_F(GossipServerTest, ComponentFailsOverToAnotherGossip) {
  build(2);
  auto* c = add_component("comp-a");
  events_.run_for(kMinute);
  const Endpoint first = c->sync->current_gossip();
  // Take the registered gossip down; renewal must land on the other one.
  transport_.set_host_up(first.host, false);
  events_.run_for(3 * kMinute);
  EXPECT_TRUE(c->sync->registered());
  EXPECT_NE(c->sync->current_gossip(), first);
}

TEST_F(GossipServerTest, MergeOutcomesAndDigestBytesCounted) {
  build(2);
  auto* a = add_component("comp-a");
  a->version = 3;
  events_.run_for(2 * kMinute);
  a->version = 5;
  events_.run_for(3 * kMinute);
  std::uint64_t news = 0, freshers = 0, equals = 0;
  for (auto& s : servers_) {
    news += s->merges(MergeOutcome::kNew);
    freshers += s->merges(MergeOutcome::kFresher);
    equals += s->merges(MergeOutcome::kEqual);
  }
  EXPECT_GE(news, 2u);      // each server learned the type once
  EXPECT_GE(freshers, 1u);  // the version bump propagated
  EXPECT_GE(equals, 1u);    // steady-state polls re-deliver equal copies
  EXPECT_GT(servers_[0]->digest_bytes_max(), 0u);
}

TEST_F(GossipServerTest, ConvergenceRoundsRecordedOnCleanExchange) {
  build(2);
  auto* a = add_component("comp-a");
  a->version = 3;
  events_.run_for(5 * kMinute);
  std::uint64_t recorded = 0;
  for (auto& s : servers_) recorded += s->last_convergence_rounds();
  EXPECT_GT(recorded, 0u);
}

TEST_F(GossipServerTest, HierarchyShardsPoolAndTypes) {
  build(4, 2);
  // Pool position i mod K decides the child clique.
  EXPECT_EQ(servers_[0]->clique_id(), 0u);
  EXPECT_EQ(servers_[1]->clique_id(), 1u);
  EXPECT_EQ(servers_[2]->clique_id(), 0u);
  EXPECT_EQ(servers_[3]->clique_id(), 1u);
  // Every type is homed in exactly one clique, and all servers agree.
  for (MsgType t : {kCounterState, static_cast<MsgType>(0x0500),
                    static_cast<MsgType>(0x0501)}) {
    int owners = 0;
    for (auto& s : servers_) owners += s->owns_type(t) ? 1 : 0;
    EXPECT_EQ(owners, 2) << t;  // the two members of the home clique
  }
}

TEST_F(GossipServerTest, StateLandsInHomeCliqueOnly) {
  build(4, 2);
  auto* c = add_component("comp-a");
  c->version = 6;
  events_.run_for(6 * kMinute);
  // Whichever gossip took the registration, the type's home clique polls the
  // component and holds its state; the other clique stays clean.
  for (auto& s : servers_) {
    EXPECT_EQ(s->store().contains(kCounterState), s->owns_type(kCounterState));
    EXPECT_EQ(s->has_registration(c->node->self()), s->owns_type(kCounterState));
  }
}

TEST_F(GossipServerTest, ParentTierRollupsPropagateBetweenLeaders) {
  build(4, 2);
  auto* c = add_component("comp-a");
  c->version = 9;
  events_.run_for(8 * kMinute);
  // Each child-clique leader runs the parent tier and learns the other
  // clique's rollup through leader-to-leader anti-entropy.
  int leaders_knowing_both = 0;
  for (auto& s : servers_) {
    if (!s->clique().is_leader()) continue;
    ASSERT_NE(s->parent(), nullptr);
    if (s->rollups().size() == 2) ++leaders_knowing_both;
  }
  EXPECT_EQ(leaders_knowing_both, 2);
  // The home clique's rollup reflects the absorbed component state.
  std::uint32_t home = 99;
  for (auto& s : servers_) {
    if (s->owns_type(kCounterState)) home = s->clique_id();
  }
  ASSERT_NE(home, 99u);
  for (auto& s : servers_) {
    if (!s->clique().is_leader()) continue;
    const auto it = s->rollups().find(home);
    ASSERT_NE(it, s->rollups().end());
    EXPECT_GE(it->second.states, 1u);
    EXPECT_GE(it->second.components, 1u);
  }
}

TEST_F(GossipServerTest, UnexposedTypeRejected) {
  build(1);
  add_component("comp-a");
  events_.run_for(30 * kSecond);
  // Ask the component for a type it does not expose.
  Node probe(events_, transport_, Endpoint{"probe", 1});
  ASSERT_TRUE(probe.start().ok());
  Writer w;
  w.u16(0x0999);
  std::optional<Result<Bytes>> got;
  probe.call(Endpoint{"comp-a", 2000}, msgtype::kGetState, w.take(), CallOptions::fixed(5 * kSecond),
             [&](Result<Bytes> r) { got = std::move(r); });
  events_.run_for(10 * kSecond);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kRejected);
}

}  // namespace
}  // namespace ew::gossip
