// Tests for multi-core reactor sharding: the ReactorShardPool's threading
// contract, SO_REUSEPORT accept distribution across shards, and the
// delta-aggregated (and per-shard-labelled) net.* instruments that make
// shared metrics correct under concurrent shard threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "net/node.hpp"
#include "net/shard_pool.hpp"
#include "net/tcp.hpp"
#include "net/tcp_transport.hpp"
#include "obs/registry.hpp"

namespace ew {
namespace {

TEST(ShardPool, EachShardRunsItsOwnThread) {
  ReactorShardPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  pool.start();
  std::vector<std::thread::id> ids(3);
  for (std::size_t s = 0; s < 3; ++s) {
    pool.run_on(s, [&ids, s] { ids[s] = std::this_thread::get_id(); });
  }
  pool.stop();
  const std::set<std::thread::id> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_EQ(distinct.count(std::this_thread::get_id()), 0u);
}

TEST(ShardPool, RunOnIsInlineWhenStoppedAndReentrantOnShard) {
  ReactorShardPool pool(2);
  // Not running: runs inline on the caller.
  std::thread::id inline_id;
  pool.run_on(1, [&] { inline_id = std::this_thread::get_id(); });
  EXPECT_EQ(inline_id, std::this_thread::get_id());

  // Running: a shard may run_on itself without deadlocking.
  pool.start();
  bool nested_ran = false;
  pool.run_on(0, [&] {
    pool.run_on(0, [&] { nested_ran = true; });
  });
  pool.stop();
  EXPECT_TRUE(nested_ran);

  // Stopped again: inline again (stop/start is idempotent and reusable).
  pool.stop();
  std::thread::id after_id;
  pool.run_on(0, [&] { after_id = std::this_thread::get_id(); });
  EXPECT_EQ(after_id, std::this_thread::get_id());
}

TEST(ShardPool, ZeroShardsClampsToOne) {
  ReactorShardPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

// Satellite of DESIGN.md §11: the shared net.* gauges aggregate by atomic
// delta, so any number of transports on any number of shard threads can
// update one instrument concurrently and the sum stays exact. This pins the
// primitive the cross-shard metrics story rests on.
TEST(ShardMetrics, GaugeDeltaAggregationIsExactUnderThreads) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("test.outbox_bytes");
  constexpr int kThreads = 4;
  constexpr int kOps = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kOps; ++i) {
        g.add(2.0);   // enqueue
        g.add(-1.0);  // partial drain
      }
    });
  }
  for (auto& th : threads) th.join();
  // Lost updates (the read-modify-write race a plain store would have)
  // would leave the total short; the CAS loop must land every delta.
  EXPECT_EQ(g.value(), static_cast<double>(kThreads) * kOps);
}

// End-to-end sharding: several server transports bind ONE port with
// SO_REUSEPORT (one per shard); the kernel spreads client connections
// across them; every call still completes exactly once; and the per-shard
// {shard=K} labelled gauges sum to the real accepted-connection count.
TEST(ShardPool, ReusePortSpreadsConnectionsAcrossShards) {
  constexpr std::size_t kShards = 2;
  constexpr std::size_t kClients = 32;
  constexpr MsgType kEcho = 0x42;

  // Reserve distinct ports: one shared server port + one per client.
  std::vector<std::uint16_t> ports(kClients + 1);
  {
    std::vector<Fd> held;
    for (std::size_t i = 0; i <= kClients; ++i) {
      auto l = tcp_listen(0);
      ASSERT_TRUE(l.ok());
      ports[i] = *local_port(*l);
      held.push_back(std::move(*l));
    }
  }
  const Endpoint server_ep{"127.0.0.1", ports[kClients]};

  ReactorShardPool pool(kShards);

  struct ShardServer {
    std::unique_ptr<TcpTransport> transport;
    std::unique_ptr<Node> node;
  };
  std::vector<ShardServer> servers(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    servers[s].transport = std::make_unique<TcpTransport>(
        pool.reactor(s), "tshard=" + std::to_string(s));
    servers[s].transport->set_reuse_port(true);
    servers[s].node = std::make_unique<Node>(pool.reactor(s),
                                             *servers[s].transport, server_ep);
    ASSERT_TRUE(servers[s].node->start().ok());
    servers[s].node->handle(kEcho, [](const IncomingMessage& m, Responder r) {
      r.ok(m.packet.payload);
    });
  }

  struct Client {
    std::unique_ptr<TcpTransport> transport;
    std::unique_ptr<Node> node;
  };
  std::vector<Client> clients(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    const std::size_t s = i % kShards;
    clients[i].transport = std::make_unique<TcpTransport>(pool.reactor(s));
    clients[i].node = std::make_unique<Node>(
        pool.reactor(s), *clients[i].transport, Endpoint{"127.0.0.1", ports[i]});
    ASSERT_TRUE(clients[i].node->start().ok());
  }

  pool.start();

  std::atomic<int> ok_replies{0};
  std::atomic<int> failures{0};
  for (std::size_t i = 0; i < kClients; ++i) {
    const std::size_t s = i % kShards;
    Node* node = clients[i].node.get();
    pool.post(s, [node, &server_ep, &ok_replies, &failures] {
      node->call(server_ep, kEcho, {1, 2, 3}, CallOptions::fixed(10 * kSecond),
                 [&ok_replies, &failures](Result<Bytes> r) {
                   if (r.ok() && r.value() == Bytes{1, 2, 3}) {
                     ++ok_replies;
                   } else {
                     ++failures;
                   }
                 });
    });
  }

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ok_replies.load() + failures.load() < static_cast<int>(kClients) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(ok_replies.load(), static_cast<int>(kClients));
  EXPECT_EQ(failures.load(), 0);

  // Every client connection is accepted by exactly one shard; the per-shard
  // counts must sum to the client count, and (kernel 4-tuple hashing, 32
  // connections, 2 shards) both shards must have taken a share.
  std::vector<std::size_t> accepted(kShards, 0);
  std::size_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    pool.run_on(s, [&, s] { accepted[s] = servers[s].transport->open_connections(); });
    total += accepted[s];
  }
  EXPECT_EQ(total, kClients);
  EXPECT_GT(accepted[0], 0u);
  EXPECT_GT(accepted[1], 0u);

  // The {shard=K} labelled gauges track each shard's share; their sum (read
  // from this foreign thread — gauges are atomic) matches reality.
  double labelled_sum = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    labelled_sum += obs::registry()
                        .gauge(obs::names::kNetConnsOpen,
                               "tshard=" + std::to_string(s))
                        .value();
  }
  EXPECT_EQ(labelled_sum, static_cast<double>(kClients));

  // Tear everything down on its own shard (the transports' single-thread
  // contract), then stop the pool.
  for (std::size_t s = 0; s < kShards; ++s) {
    pool.run_on(s, [&, s] {
      for (std::size_t i = s; i < kClients; i += kShards) {
        clients[i].node.reset();
        clients[i].transport.reset();
      }
      servers[s].node.reset();
      servers[s].transport.reset();
    });
  }
  pool.stop();
}

}  // namespace
}  // namespace ew
