// Tests for the range-sharded work pool router: residue-class ownership,
// batch routing, global frontier stealing, and per-shard checkpointing.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/sharded_work_pool.hpp"

namespace ew::core {
namespace {

ShardedWorkPool::Options sharded(std::uint32_t shards) {
  ShardedWorkPool::Options o;
  o.pool.n = 10;
  o.pool.k = 4;
  o.pool.seed_base = 7;
  o.pool.max_idle_frontier = 64;
  o.shards = shards;
  return o;
}

ramsey::WorkReport report_for(std::uint64_t unit, std::uint64_t energy) {
  ramsey::WorkReport r;
  r.unit_id = unit;
  r.ops_done = 1000;
  r.best_energy = energy;
  Rng rng(unit + 1);
  r.best_graph = ramsey::ColoredGraph::random(10, rng).serialize();
  return r;
}

TEST(ShardedWorkPool, ResidueClassOwnershipAndRoundRobinMinting) {
  ShardedWorkPool pool(sharded(4));
  const auto specs = pool.issue_many(8);
  ASSERT_EQ(specs.size(), 8u);
  std::set<std::uint64_t> ids;
  for (const auto& s : specs) {
    ids.insert(s.unit_id);
    EXPECT_EQ(pool.owner_of(s.unit_id), (s.unit_id - 1) % 4);
  }
  EXPECT_EQ(ids.size(), 8u) << "no id issued twice";
  // Fresh mints rotate: two per shard.
  for (std::uint32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(pool.shard(k).units_issued(), 2u);
    EXPECT_EQ(pool.shard(k).assigned_count(), 2u);
  }
  EXPECT_EQ(pool.assigned_count(), 8u);
  EXPECT_EQ(pool.units_issued(), 8u);
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(ShardedWorkPool, BatchReportAndReclaimRouteToOwningShards) {
  ShardedWorkPool pool(sharded(4));
  const auto specs = pool.issue_many(8);
  std::vector<ramsey::WorkReport> reps;
  std::vector<std::uint64_t> ids;
  for (const auto& s : specs) {
    reps.push_back(report_for(s.unit_id, 10 + s.unit_id));
    ids.push_back(s.unit_id);
  }
  pool.report_many(reps);
  for (auto id : ids) {
    EXPECT_EQ(*pool.best_energy(id), 10 + id);
    EXPECT_EQ(*pool.shard(pool.owner_of(id)).best_energy(id), 10 + id);
  }
  pool.reclaim_many(ids);
  EXPECT_EQ(pool.assigned_count(), 0u);
  EXPECT_EQ(pool.idle_frontier_size(), 8u);
}

TEST(ShardedWorkPool, IssuePrefersGlobalBestFrontierAndCountsSteals) {
  ShardedWorkPool pool(sharded(2));
  const auto specs = pool.issue_many(2);  // id 1 on shard 0, id 2 on shard 1
  ASSERT_EQ(specs.size(), 2u);
  pool.report_many(std::vector<ramsey::WorkReport>{
      report_for(1, 50), report_for(2, 5)});
  pool.reclaim_many(std::vector<std::uint64_t>{1, 2});
  // Mint cursor is back on shard 0; the best frontier unit lives on shard 1.
  const auto stolen = pool.issue_many(1);
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen.front().unit_id, 2u);
  EXPECT_EQ(pool.steals(), 1u);
  // Next issue drains shard 0's own frontier: no steal.
  const auto own = pool.issue_many(1);
  EXPECT_EQ(own.front().unit_id, 1u);
  EXPECT_EQ(pool.steals(), 1u);
}

TEST(ShardedWorkPool, AssignedUnitsAggregatedSorted) {
  ShardedWorkPool pool(sharded(3));
  (void)pool.issue_many(7);
  const auto ids = pool.assigned_units();
  ASSERT_EQ(ids.size(), 7u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
}

TEST(ShardedWorkPool, PerShardCheckpointReplaysOnlyOwnRange) {
  ShardedWorkPool a(sharded(2));
  const auto specs = a.issue_many(4);  // ids 1..4 across both shards
  std::vector<ramsey::WorkReport> reps;
  for (const auto& s : specs) reps.push_back(report_for(s.unit_id, 30 + s.unit_id));
  a.report_many(reps);
  ASSERT_TRUE(a.shard_dirty(0));
  ASSERT_TRUE(a.shard_dirty(1));
  const Bytes blob0 = a.export_shard(0);
  const Bytes blob1 = a.export_shard(1);
  EXPECT_FALSE(a.shard_dirty(0)) << "export clears the dirty flag";

  ShardedWorkPool b(sharded(2));
  // Importing a shard's own blob replays its units; a foreign shard's blob
  // contains only ids outside the residue class and replays nothing.
  EXPECT_EQ(b.import_shard(0, blob0), 2u);
  EXPECT_EQ(b.import_shard(0, blob1), 0u);
  EXPECT_EQ(b.import_shard(1, blob1), 2u);
  EXPECT_EQ(b.idle_frontier_size(), 4u);
  // Restored units are re-issued, never re-minted under a new id.
  const auto reissued = b.issue_many(4);
  std::set<std::uint64_t> ids;
  for (const auto& s : reissued) ids.insert(s.unit_id);
  EXPECT_EQ(ids, (std::set<std::uint64_t>{1, 2, 3, 4}));
}

TEST(ShardedWorkPool, SingleShardMatchesPlainWorkPoolBitForBit) {
  // shards == 1 must be a transparent wrapper: the same operation sequence
  // against a plain WorkPool leaves bit-identical exported state.
  WorkPool::Options po = sharded(1).pool;
  WorkPool plain(po);
  ShardedWorkPool routed(sharded(1));
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    const auto a = plain.acquire();
    const auto b = routed.acquire();
    ASSERT_EQ(a.unit_id, b.unit_id);
    ASSERT_EQ(a.seed, b.seed);
    ids.push_back(a.unit_id);
  }
  std::vector<ramsey::WorkReport> reps;
  for (auto id : ids) reps.push_back(report_for(id, 40 + 3 * id));
  plain.report_many(reps);
  routed.report_many(reps);
  plain.release_many(ids);
  routed.reclaim_many(ids);
  EXPECT_EQ(plain.export_frontier(), routed.shard(0).export_frontier());
  EXPECT_EQ(plain.units_issued(), routed.units_issued());
  EXPECT_EQ(plain.idle_frontier_size(), routed.idle_frontier_size());
}

TEST(ShardedWorkPool, IssueUnitRoutesMigrationReissue) {
  ShardedWorkPool pool(sharded(3));
  const auto specs = pool.issue_many(3);
  const auto id = specs[1].unit_id;
  EXPECT_FALSE(pool.issue_unit(id).has_value());  // still assigned
  pool.report(report_for(id, 9));
  pool.release(id);
  const auto again = pool.issue_unit(id);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->unit_id, id);
  EXPECT_TRUE(pool.assigned(id));
}

}  // namespace
}  // namespace ew::core
