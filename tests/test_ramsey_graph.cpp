// Tests for two-colored complete graphs: construction, named colorings,
// serialization, and hostile-input validation.
#include <gtest/gtest.h>

#include <bit>

#include "ramsey/clique.hpp"
#include "ramsey/graph.hpp"

namespace ew::ramsey {
namespace {

TEST(ColoredGraph, StartsAllBlue) {
  ColoredGraph g(5);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) EXPECT_EQ(g.color(i, j), Color::kBlue);
  }
  EXPECT_EQ(g.red_edge_count(), 0);
  EXPECT_EQ(g.edge_count(), 10);
}

TEST(ColoredGraph, SetColorIsSymmetric) {
  ColoredGraph g(4);
  g.set_color(1, 3, Color::kRed);
  EXPECT_EQ(g.color(1, 3), Color::kRed);
  EXPECT_EQ(g.color(3, 1), Color::kRed);
  g.set_color(3, 1, Color::kBlue);
  EXPECT_EQ(g.color(1, 3), Color::kBlue);
}

TEST(ColoredGraph, FlipToggles) {
  ColoredGraph g(3);
  g.flip(0, 1);
  EXPECT_EQ(g.color(0, 1), Color::kRed);
  g.flip(0, 1);
  EXPECT_EQ(g.color(0, 1), Color::kBlue);
}

TEST(ColoredGraph, InvalidOrderThrows) {
  EXPECT_THROW(ColoredGraph(0), std::invalid_argument);
  EXPECT_THROW(ColoredGraph(65), std::invalid_argument);
  ColoredGraph ok(64);
  EXPECT_EQ(ok.order(), 64);
}

TEST(ColoredGraph, BadVertexPairThrows) {
  ColoredGraph g(4);
  EXPECT_THROW((void)g.color(0, 0), std::invalid_argument);
  EXPECT_THROW((void)g.color(0, 4), std::invalid_argument);
  EXPECT_THROW(g.set_color(-1, 2, Color::kRed), std::invalid_argument);
}

TEST(ColoredGraph, NeighborsPartitionVertices) {
  Rng rng(1);
  ColoredGraph g = ColoredGraph::random(20, rng);
  for (int v = 0; v < 20; ++v) {
    const std::uint64_t red = g.neighbors(Color::kRed, v);
    const std::uint64_t blue = g.neighbors(Color::kBlue, v);
    EXPECT_EQ(red & blue, 0u);
    EXPECT_EQ(red | blue | (1ULL << v), g.vertex_mask());
  }
}

TEST(ColoredGraph, VertexMaskFullAt64) {
  ColoredGraph g(64);
  EXPECT_EQ(g.vertex_mask(), ~0ULL);
}

TEST(ColoredGraph, RandomIsDeterministicFromSeed) {
  Rng a(42), b(42);
  EXPECT_EQ(ColoredGraph::random(10, a), ColoredGraph::random(10, b));
}

TEST(Circulant, C5IsTheR33CounterExample) {
  // C5 red, complement (also C5) blue: no monochromatic triangle.
  auto g = ColoredGraph::circulant(5, {1, 4});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(is_counterexample(*g, 3));
}

TEST(Circulant, K6HasNoTriangleFreeColoring) {
  // R(3,3)=6: even the best circulant on 6 vertices has a mono triangle.
  auto g = ColoredGraph::circulant(6, {1, 5});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(is_counterexample(*g, 3));
}

TEST(Circulant, AsymmetricOffsetsRejected) {
  EXPECT_FALSE(ColoredGraph::circulant(7, {1}).ok());  // missing 6
  EXPECT_TRUE(ColoredGraph::circulant(7, {1, 6}).ok());
}

TEST(Circulant, ZeroOffsetRejected) {
  EXPECT_FALSE(ColoredGraph::circulant(5, {0}).ok());
}

TEST(Circulant, NegativeOffsetsNormalized) {
  auto a = ColoredGraph::circulant(5, {1, -1});
  auto b = ColoredGraph::circulant(5, {1, 4});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *b);
}

TEST(Paley, RejectsBadOrders) {
  EXPECT_FALSE(ColoredGraph::paley(15).ok());  // not prime
  EXPECT_FALSE(ColoredGraph::paley(7).ok());   // 3 mod 4
  EXPECT_FALSE(ColoredGraph::paley(4).ok());   // too small / not prime
}

TEST(Paley, IsSelfComplementaryRegular) {
  auto g = ColoredGraph::paley(13);
  ASSERT_TRUE(g.ok());
  // Exactly (q-1)/2 red neighbors per vertex.
  for (int v = 0; v < 13; ++v) {
    EXPECT_EQ(std::popcount(g->neighbors(Color::kRed, v)), 6);
  }
  EXPECT_EQ(g->red_edge_count(), 13 * 6 / 2);
}

TEST(Paley, Paley17ProvesR44GreaterThan17) {
  auto g = ColoredGraph::paley(17);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(is_counterexample(*g, 4));
  // ...but it does contain mono triangles (it is not an R3 counter-example).
  EXPECT_FALSE(is_counterexample(*g, 3));
}

TEST(Paley, Paley5IsC5) {
  auto p = ColoredGraph::paley(5);
  auto c = ColoredGraph::circulant(5, {1, 4});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, *c);
}

// --- Serialization ------------------------------------------------------------

TEST(GraphSerialize, RoundTrip) {
  Rng rng(3);
  for (int n : {1, 2, 17, 43, 64}) {
    ColoredGraph g = ColoredGraph::random(n, rng);
    auto out = ColoredGraph::deserialize(g.serialize());
    ASSERT_TRUE(out.ok()) << n;
    EXPECT_EQ(*out, g) << n;
  }
}

TEST(GraphSerialize, RejectsTruncated) {
  Rng rng(4);
  Bytes blob = ColoredGraph::random(10, rng).serialize();
  blob.resize(blob.size() - 3);
  EXPECT_FALSE(ColoredGraph::deserialize(blob).ok());
}

TEST(GraphSerialize, RejectsBadOrder) {
  Bytes blob{0};  // order 0
  EXPECT_FALSE(ColoredGraph::deserialize(blob).ok());
  blob[0] = 200;
  EXPECT_FALSE(ColoredGraph::deserialize(blob).ok());
}

TEST(GraphSerialize, RejectsAsymmetry) {
  Rng rng(5);
  ColoredGraph g = ColoredGraph::random(8, rng);
  Bytes blob = g.serialize();
  // Corrupt one row's bit without its mirror: byte layout is
  // [order u8][row0 u64 LE][row1 u64 LE]...
  blob[1] ^= 0x02;  // toggle edge (0,1) on row 0 only
  EXPECT_FALSE(ColoredGraph::deserialize(blob).ok());
}

TEST(GraphSerialize, RejectsSelfLoop) {
  ColoredGraph g(4);
  Bytes blob = g.serialize();
  blob[1] |= 0x01;  // vertex 0 adjacent to itself
  EXPECT_FALSE(ColoredGraph::deserialize(blob).ok());
}

TEST(GraphSerialize, RejectsBitsBeyondOrder) {
  ColoredGraph g(4);
  Bytes blob = g.serialize();
  blob[2] = 0xFF;  // bits 8..15 of row 0, far beyond order 4
  EXPECT_FALSE(ColoredGraph::deserialize(blob).ok());
}

}  // namespace
}  // namespace ew::ramsey
