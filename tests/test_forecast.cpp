// Tests for the NWS-style forecasting battery, the adaptive selector, and
// dynamic benchmarking.
#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "forecast/dynamic_benchmark.hpp"
#include "forecast/forecaster.hpp"
#include "forecast/selector.hpp"

namespace ew {
namespace {

// --- Individual methods ----------------------------------------------------

TEST(LastValue, TracksMostRecent) {
  LastValue f;
  EXPECT_EQ(f.predict(), 0.0);
  f.observe(5);
  f.observe(7);
  EXPECT_EQ(f.predict(), 7.0);
}

TEST(RunningMean, AveragesHistory) {
  RunningMean f;
  for (double v : {2.0, 4.0, 6.0}) f.observe(v);
  EXPECT_DOUBLE_EQ(f.predict(), 4.0);
}

TEST(SlidingMean, ForgetsOldValues) {
  SlidingMean f(2);
  for (double v : {100.0, 1.0, 3.0}) f.observe(v);
  EXPECT_DOUBLE_EQ(f.predict(), 2.0);
}

TEST(SlidingMedian, RobustToOutlier) {
  SlidingMedian f(5);
  for (double v : {10.0, 10.0, 10.0, 10.0, 1000.0}) f.observe(v);
  EXPECT_DOUBLE_EQ(f.predict(), 10.0);
}

TEST(TrimmedMean, DropsTails) {
  TrimmedMean f(5, 0.2);
  for (double v : {1.0, 10.0, 10.0, 10.0, 1000.0}) f.observe(v);
  EXPECT_DOUBLE_EQ(f.predict(), 10.0);
}

TEST(TrimmedMean, DegenerateTrimMatchesMedian) {
  // trim = 0.5 cuts everything but the middle: the prediction must agree
  // with SlidingMedian at every step, including the even-size nearest-rank
  // rule during warm-up (the naive version returned the upper middle
  // element there).
  TrimmedMean f(4, 0.5);
  SlidingMedian m(4);
  for (double v : {8.0, 2.0, 4.0, 16.0, 1.0}) {
    EXPECT_DOUBLE_EQ(f.observe(v), m.observe(v));
  }
  EXPECT_DOUBLE_EQ(f.predict(), m.predict());
}

TEST(SlidingMedian, EvenSizesUseNearestRankDuringWarmup) {
  SlidingMedian f(5);
  f.observe(10.0);
  EXPECT_DOUBLE_EQ(f.predict(), 10.0);
  f.observe(20.0);
  EXPECT_DOUBLE_EQ(f.predict(), 10.0);  // nearest-rank of {10,20}
}

TEST(Forecaster, ObserveReturnsStandingPrediction) {
  // The hot-path contract: observe() hands back exactly what predict()
  // answers afterwards, for every battery member.
  Rng rng(3);
  for (auto& m : default_battery()) {
    for (int i = 0; i < 100; ++i) {
      const double got = m->observe(rng.uniform(0, 1000));
      ASSERT_EQ(got, m->predict()) << m->name() << " step " << i;
    }
  }
}

TEST(ExpSmooth, SeedsWithFirstValue) {
  ExpSmooth f(0.5);
  f.observe(10);
  EXPECT_DOUBLE_EQ(f.predict(), 10.0);
  f.observe(20);
  EXPECT_DOUBLE_EQ(f.predict(), 15.0);
}

TEST(AdaptiveExpSmooth, GainStaysClamped) {
  AdaptiveExpSmooth f(0.2, 0.05, 0.95);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) f.observe(rng.uniform(0, 100));
  EXPECT_GE(f.gain(), 0.05);
  EXPECT_LE(f.gain(), 0.95);
}

TEST(AdaptiveExpSmooth, TracksLevelShift) {
  AdaptiveExpSmooth f;
  for (int i = 0; i < 50; ++i) f.observe(10);
  for (int i = 0; i < 50; ++i) f.observe(100);
  EXPECT_NEAR(f.predict(), 100, 10);
}

TEST(TrendForecaster, ExtrapolatesLinearSeriesExactly) {
  TrendForecaster f(10);
  for (int i = 0; i < 10; ++i) f.observe(3.0 * i + 2.0);
  EXPECT_NEAR(f.predict(), 3.0 * 10 + 2.0, 1e-9);
}

TEST(TrendForecaster, ConstantSeriesPredictsConstant) {
  TrendForecaster f(5);
  for (int i = 0; i < 5; ++i) f.observe(7.0);
  EXPECT_NEAR(f.predict(), 7.0, 1e-9);
}

TEST(DefaultBattery, HasDistinctNames) {
  auto battery = default_battery();
  ASSERT_GE(battery.size(), 10u);
  std::set<std::string> names;
  for (const auto& m : battery) names.insert(m->name());
  EXPECT_EQ(names.size(), battery.size());
}

// --- Adaptive selector -------------------------------------------------------

TEST(AdaptiveForecaster, EmptyForecastIsZeroSamples) {
  auto f = AdaptiveForecaster::nws_default();
  EXPECT_EQ(f.forecast().samples, 0u);
}

TEST(AdaptiveForecaster, ConstantSeriesForecastExact) {
  auto f = AdaptiveForecaster::nws_default();
  for (int i = 0; i < 50; ++i) f.observe(42.0);
  const Forecast fc = f.forecast();
  EXPECT_DOUBLE_EQ(fc.value, 42.0);
  EXPECT_NEAR(fc.error, 0.0, 1e-12);
}

TEST(AdaptiveForecaster, TrendingSeriesPicksTrendAwareMethod) {
  auto f = AdaptiveForecaster::nws_default();
  for (int i = 0; i < 200; ++i) f.observe(5.0 * i);
  const Forecast fc = f.forecast();
  // The winner must be close to the next value (1000); mean-like methods
  // would be hundreds off.
  EXPECT_NEAR(fc.value, 1000.0, 20.0);
}

TEST(AdaptiveForecaster, EmptyBatteryThrows) {
  EXPECT_THROW(AdaptiveForecaster({}), std::invalid_argument);
}

/// Property: across regime types, the adaptive selector's cumulative MAE is
/// never much worse than the best single method's (the NWS claim).
struct Regime {
  const char* name;
  std::function<double(int, Rng&)> gen;
};

class SelectorProperty : public ::testing::TestWithParam<int> {};

TEST_P(SelectorProperty, SelectorCompetitiveWithBestMethod) {
  const int regime_id = GetParam();
  const Regime regimes[] = {
      {"constant", [](int, Rng& r) { return 50.0 + r.normal(0, 1); }},
      {"trend", [](int i, Rng& r) { return 2.0 * i + r.normal(0, 3); }},
      {"level-shift",
       [](int i, Rng& r) { return (i < 300 ? 20.0 : 200.0) + r.normal(0, 2); }},
      {"noisy", [](int, Rng& r) { return r.uniform(0, 100); }},
      {"spiky",
       [](int i, Rng& r) {
         return (i % 50 == 0 ? 500.0 : 10.0) + r.normal(0, 1);
       }},
      {"seasonal",
       [](int i, Rng& r) {
         return 50.0 + 30.0 * std::sin(i / 10.0) + r.normal(0, 2);
       }},
  };
  const Regime& regime = regimes[regime_id];

  Rng rng(static_cast<std::uint64_t>(regime_id) + 100);
  auto selector = AdaptiveForecaster::nws_default();
  ErrorTracker selector_err;
  for (int i = 0; i < 600; ++i) {
    const double v = regime.gen(i, rng);
    if (i > 0) selector_err.add(selector.forecast().value, v);
    selector.observe(v);
  }
  const auto maes = selector.method_mae();
  const double best = *std::min_element(maes.begin(), maes.end());
  // Allow slack for the selector's warm-up hunting.
  EXPECT_LE(selector_err.mae(), best * 1.5 + 1.0)
      << "regime " << regime.name << ": selector " << selector_err.mae()
      << " vs best method " << best;
}

INSTANTIATE_TEST_SUITE_P(Regimes, SelectorProperty, ::testing::Range(0, 6));

// --- Dynamic benchmarking ------------------------------------------------------

TEST(EventForecasterBank, TagsAreIndependent) {
  EventForecasterBank bank;
  const EventTag a{"server-a:1", 1};
  const EventTag b{"server-b:1", 1};
  for (int i = 0; i < 20; ++i) {
    bank.record(a, 100.0);
    bank.record(b, 900.0);
  }
  EXPECT_NEAR(bank.forecast(a).value, 100.0, 1.0);
  EXPECT_NEAR(bank.forecast(b).value, 900.0, 1.0);
  EXPECT_EQ(bank.tracked_events(), 2u);
}

TEST(EventForecasterBank, SameAddressDifferentTypeIsDifferentEvent) {
  EventForecasterBank bank;
  bank.record(EventTag{"s:1", 1}, 5.0);
  EXPECT_TRUE(bank.knows(EventTag{"s:1", 1}));
  EXPECT_FALSE(bank.knows(EventTag{"s:1", 2}));
}

TEST(ScopedEventTimer, RecordsElapsedOnFinish) {
  EventForecasterBank bank;
  VirtualClock clock;
  const EventTag tag{"x:1", 3};
  {
    ScopedEventTimer t(bank, clock, tag);
    clock.advance(250 * kMillisecond);
    t.finish();
    clock.advance(kSecond);  // after finish: not counted
  }
  const Forecast f = bank.forecast(tag);
  ASSERT_EQ(f.samples, 1u);
  EXPECT_DOUBLE_EQ(f.value, static_cast<double>(250 * kMillisecond));
}

TEST(ScopedEventTimer, RecordsOnDestruction) {
  EventForecasterBank bank;
  VirtualClock clock;
  const EventTag tag{"x:1", 4};
  {
    ScopedEventTimer t(bank, clock, tag);
    clock.advance(100);
  }
  EXPECT_EQ(bank.forecast(tag).samples, 1u);
}

TEST(ScopedEventTimer, DismissSkipsRecording) {
  EventForecasterBank bank;
  VirtualClock clock;
  const EventTag tag{"x:1", 5};
  {
    ScopedEventTimer t(bank, clock, tag);
    t.dismiss();
  }
  EXPECT_EQ(bank.forecast(tag).samples, 0u);
}

TEST(EventTag, OfEndpointFormatsAddress) {
  const EventTag tag = EventTag::of(Endpoint{"host", 42}, 7);
  EXPECT_EQ(tag.address, "host:42");
  EXPECT_EQ(tag.to_string(), "host:42/7");
}

}  // namespace
}  // namespace ew
