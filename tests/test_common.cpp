// Unit tests for src/common: clocks, RNG, serialization, stats, hashing,
// Result/Status, and the logger.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <set>
#include <thread>

#include "common/clock.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/stats.hpp"

namespace ew {
namespace {

// --- Clock -----------------------------------------------------------------

TEST(VirtualClock, StartsAtGivenTime) {
  VirtualClock c(123);
  EXPECT_EQ(c.now(), 123);
}

TEST(VirtualClock, AdvanceMovesForward) {
  VirtualClock c;
  c.advance(5 * kSecond);
  EXPECT_EQ(c.now(), 5 * kSecond);
  c.advance(0);
  EXPECT_EQ(c.now(), 5 * kSecond);
}

TEST(VirtualClock, RejectsNegativeAdvance) {
  VirtualClock c;
  EXPECT_THROW(c.advance(-1), std::invalid_argument);
}

TEST(VirtualClock, RejectsBackwardSet) {
  VirtualClock c(100);
  EXPECT_THROW(c.set(99), std::invalid_argument);
  c.set(100);  // same time is fine
  EXPECT_EQ(c.now(), 100);
}

TEST(RealClock, MonotonicNonNegative) {
  RealClock c;
  const TimePoint a = c.now();
  EXPECT_GE(a, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(c.now(), a);
}

TEST(ClockConversions, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_EQ(from_seconds(2.5), 2'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(0.125)), 0.125);
}

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng r(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(bound), bound);
  }
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, ExponentialMeanApproximate) {
  Rng r(13);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng r(17);
  RunningStats s;
  for (int i = 0; i < 50'000; ++i) s.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == child.next_u64();
  EXPECT_LT(same, 3);
}

// --- Hash --------------------------------------------------------------------

TEST(Hash, Fnv1aKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, RendezvousIsDeterministicAndSpreads) {
  EXPECT_EQ(rendezvous_weight("owner1", "item"),
            rendezvous_weight("owner1", "item"));
  EXPECT_NE(rendezvous_weight("owner1", "item"),
            rendezvous_weight("owner2", "item"));
}

// --- Serialize -----------------------------------------------------------------

TEST(Serialize, PrimitiveRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.i64(-1'000'000'000'000LL);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.str("hello EveryWare");
  w.blob(Bytes{1, 2, 3});

  Reader r(w.bytes());
  EXPECT_EQ(*r.u8(), 0xAB);
  EXPECT_EQ(*r.u16(), 0xBEEF);
  EXPECT_EQ(*r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.i32(), -42);
  EXPECT_EQ(*r.i64(), -1'000'000'000'000LL);
  EXPECT_DOUBLE_EQ(*r.f64(), 3.14159);
  EXPECT_TRUE(*r.boolean());
  EXPECT_FALSE(*r.boolean());
  EXPECT_EQ(*r.str(), "hello EveryWare");
  EXPECT_EQ(*r.blob(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, EmptyStringAndBlob) {
  Writer w;
  w.str("");
  w.blob({});
  Reader r(w.bytes());
  EXPECT_EQ(*r.str(), "");
  EXPECT_TRUE(r.blob()->empty());
}

TEST(Serialize, TruncatedReadsFail) {
  Writer w;
  w.u32(7);
  Reader r(w.bytes());
  EXPECT_TRUE(r.u32().ok());
  EXPECT_EQ(r.u32().code(), Err::kProtocol);
  EXPECT_EQ(r.u64().code(), Err::kProtocol);
}

TEST(Serialize, StringLengthBeyondBufferFails) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  Reader r(w.bytes());
  EXPECT_EQ(r.str().code(), Err::kProtocol);
}

TEST(Serialize, BadBooleanEncodingFails) {
  Bytes b{2};
  Reader r(b);
  EXPECT_EQ(r.boolean().code(), Err::kProtocol);
}

TEST(Serialize, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.bytes(), (Bytes{0x04, 0x03, 0x02, 0x01}));
}

TEST(Serialize, F64SpecialValues) {
  Writer w;
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  Reader r(w.bytes());
  EXPECT_EQ(std::signbit(*r.f64()), true);
  EXPECT_TRUE(std::isinf(*r.f64()));
}

// --- Result / Status ------------------------------------------------------------

TEST(Result, ValueAccess) {
  Result<int> r(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value_or(9), 5);
  EXPECT_EQ(r.code(), Err::kOk);
}

TEST(Result, ErrorAccess) {
  Result<int> r(Err::kTimeout, "too slow");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Err::kTimeout);
  EXPECT_EQ(r.error().message, "too slow");
  EXPECT_EQ(r.value_or(9), 9);
  EXPECT_THROW(r.value(), std::logic_error);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesError) {
  Status s(Err::kRefused, "nope");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.to_string().find("refused"), std::string::npos);
}

TEST(ErrName, AllCodesNamed) {
  for (int i = 0; i <= static_cast<int>(Err::kInternal); ++i) {
    EXPECT_STRNE(err_name(static_cast<Err>(i)), "unknown");
  }
}

// --- Stats ------------------------------------------------------------------

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(SlidingWindow, EvictsOldest) {
  SlidingWindow w(3);
  for (double v : {1.0, 2.0, 3.0, 4.0}) w.add(v);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);  // {2,3,4}
}

TEST(SlidingWindow, MedianOddEven) {
  SlidingWindow w(5);
  w.add(5);
  w.add(1);
  w.add(3);
  EXPECT_DOUBLE_EQ(w.median(), 3.0);
  w.add(9);
  EXPECT_DOUBLE_EQ(w.median(), 3.0);  // nearest-rank of {1,3,5,9} -> 3
}

TEST(OrderedWindow, KeepsRankOrderWhileSliding) {
  OrderedWindow w(3);
  for (double v : {5.0, 1.0, 3.0}) w.add(v);
  EXPECT_DOUBLE_EQ(w.at_rank(0), 1.0);
  EXPECT_DOUBLE_EQ(w.at_rank(2), 5.0);
  w.add(2.0);  // evicts 5 -> {1,3,2}
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.at_rank(0), 1.0);
  EXPECT_DOUBLE_EQ(w.at_rank(1), 2.0);
  EXPECT_DOUBLE_EQ(w.at_rank(2), 3.0);
  EXPECT_DOUBLE_EQ(w.back(), 2.0);
}

TEST(OrderedWindow, MedianIsNearestRank) {
  // Same nearest-rank definition as SlidingWindow::quantile(0.5): the lower
  // middle element for even sizes.
  OrderedWindow w(4);
  w.add(1);
  w.add(9);
  EXPECT_DOUBLE_EQ(w.median(), 1.0);
  w.add(3);
  EXPECT_DOUBLE_EQ(w.median(), 3.0);
  w.add(5);
  EXPECT_DOUBLE_EQ(w.median(), 3.0);  // {1,3,5,9}
}

TEST(OrderedWindow, QuantileMatchesSlidingWindow) {
  // Same nearest-rank rule as SlidingWindow::quantile, just O(1).
  OrderedWindow ow(10);
  SlidingWindow sw(10);
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(0, 1000);
    ow.add(v);
    sw.add(v);
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.98, 1.0}) {
      EXPECT_DOUBLE_EQ(ow.quantile(q), sw.quantile(q)) << "q=" << q;
    }
  }
}

TEST(OrderedWindow, RangeSumAndClear) {
  OrderedWindow w(5);
  for (double v : {4.0, 1.0, 2.0, 8.0, 16.0}) w.add(v);
  EXPECT_DOUBLE_EQ(w.range_sum(0, 5), 31.0);
  EXPECT_DOUBLE_EQ(w.range_sum(1, 4), 2.0 + 4.0 + 8.0);
  EXPECT_DOUBLE_EQ(w.range_sum(3, 99), 8.0 + 16.0);  // hi clamped to size
  w.clear();
  EXPECT_TRUE(w.empty());
  EXPECT_THROW((void)w.median(), std::logic_error);
}

TEST(OrderedWindow, ZeroCapacityThrows) {
  EXPECT_THROW(OrderedWindow(0), std::invalid_argument);
}

TEST(OrderedWindow, MatchesMultisetReferenceUnderChurn) {
  // Rank-by-rank agreement with a std::multiset reference across thousands
  // of insert+evict cycles, including duplicates.
  OrderedWindow w(16);
  std::multiset<double> ref;
  std::deque<double> fifo;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::floor(rng.uniform(0, 40));  // forces duplicates
    w.add(v);
    fifo.push_back(v);
    ref.insert(v);
    if (fifo.size() > 16) {
      ref.erase(ref.find(fifo.front()));
      fifo.pop_front();
    }
    std::size_t r = 0;
    for (double x : ref) {
      ASSERT_DOUBLE_EQ(w.at_rank(r), x) << "rank " << r << " at step " << i;
      ++r;
    }
  }
}

TEST(SlidingWindow, QuantileBounds) {
  SlidingWindow w(10);
  for (int i = 1; i <= 10; ++i) w.add(i);
  EXPECT_DOUBLE_EQ(w.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(w.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(w.quantile(0.9), 9.0);
}

TEST(SlidingWindow, EmptyQuantileThrows) {
  SlidingWindow w(3);
  EXPECT_THROW((void)w.quantile(0.5), std::logic_error);
}

TEST(SlidingWindow, ZeroCapacityThrows) {
  EXPECT_THROW(SlidingWindow(0), std::invalid_argument);
}

TEST(BinnedSeries, DepositsAndRates) {
  BinnedSeries s(0, kMinute, 3);
  s.add(10 * kSecond, 600.0);
  s.add(30 * kSecond, 600.0);
  s.add(90 * kSecond, 1200.0);
  s.add(-5, 1.0);               // before window: ignored
  s.add(10 * kMinute, 1.0);     // after window: ignored
  EXPECT_DOUBLE_EQ(s.rate(0), 20.0);  // 1200 units / 60 s
  EXPECT_DOUBLE_EQ(s.rate(1), 20.0);
  EXPECT_DOUBLE_EQ(s.rate(2), 0.0);
  EXPECT_EQ(s.bin_start(2), 2 * kMinute);
}

TEST(BinnedSeries, GaugeAverages) {
  BinnedSeries s(0, kMinute, 2);
  s.sample(1 * kSecond, 10);
  s.sample(2 * kSecond, 20);
  s.sample(61 * kSecond, 7);
  EXPECT_DOUBLE_EQ(s.average(0), 15.0);
  EXPECT_DOUBLE_EQ(s.average(1), 7.0);
  EXPECT_EQ(s.average_series().size(), 2u);
}

TEST(BinnedSeries, InvalidConstruction) {
  EXPECT_THROW(BinnedSeries(0, 0, 3), std::invalid_argument);
  EXPECT_THROW(BinnedSeries(0, kSecond, 0), std::invalid_argument);
}

TEST(ErrorTracker, MaeMse) {
  ErrorTracker t;
  t.add(10, 12);
  t.add(10, 8);
  EXPECT_DOUBLE_EQ(t.mae(), 2.0);
  EXPECT_DOUBLE_EQ(t.mse(), 4.0);
  EXPECT_EQ(t.count(), 2u);
}

// --- Log ----------------------------------------------------------------------

TEST(Log, SinkReceivesAtOrAboveLevel) {
  std::vector<std::string> lines;
  Log::set_sink([&](const Log::Record& rec) { lines.push_back(rec.message); });
  Log::set_level(LogLevel::kWarn);
  EW_DEBUG << "hidden";
  EW_WARN << "shown " << 42;
  EW_ERROR << "also shown";
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kWarn);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "shown 42");
}

TEST(Log, StructuredRecordCarriesComponentAndTag) {
  std::vector<Log::Record> records;
  Log::set_sink([&](const Log::Record& rec) { records.push_back(rec); });
  Log::set_level(LogLevel::kInfo);
  EW_LOG_C(LogLevel::kWarn, "gossip") << "poll " << 3 << " failed";
  Log::write(Log::Record{LogLevel::kInfo, "sched", "dispatch", "ep/0x0201"});
  Log::write(LogLevel::kInfo, "untagged");
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kWarn);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].component, "gossip");
  EXPECT_EQ(records[0].message, "poll 3 failed");
  EXPECT_EQ(records[0].level, LogLevel::kWarn);
  EXPECT_EQ(records[1].event_tag, "ep/0x0201");
  EXPECT_EQ(records[2].component, "");
  EXPECT_EQ(records[2].message, "untagged");
}

}  // namespace
}  // namespace ew
