// Failure-injection tests: the toolkit under sustained message loss, heavy
// congestion, and flapping partitions — the SC98 operating regime, turned up.
#include <gtest/gtest.h>

#include <memory>

#include "core/client.hpp"
#include "core/logging_service.hpp"
#include "core/scheduler.hpp"
#include "gossip/gossip_server.hpp"
#include "gossip/sync_client.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : net_(Rng(321)), transport_(events_, net_) {}

  void build_scheduler_stack() {
    log_node_ = std::make_unique<Node>(events_, transport_, Endpoint{"log", 401});
    log_node_->start();
    logging_ = std::make_unique<core::LoggingServer>(*log_node_);
    logging_->start();
    sched_node_ = std::make_unique<Node>(events_, transport_, Endpoint{"sched", 601});
    sched_node_->start();
    core::SchedulerServer::Options o;
    o.logging = log_node_->self();
    o.pool.n = 42;
    o.pool.k = 5;
    sched_ = std::make_unique<core::SchedulerServer>(*sched_node_, o);
    sched_->start();
  }

  void add_client(const std::string& host, double rate) {
    auto node = std::make_unique<Node>(events_, transport_, Endpoint{host, 2000});
    node->start();
    core::RamseyClient::Options o;
    o.schedulers = {Endpoint{"sched", 601}};
    o.host_label = host;
    o.rate_source = [rate] { return rate; };
    o.report_interval = 30 * kSecond;
    o.initial_sleep_max = 5 * kSecond;
    o.retry_delay = 5 * kSecond;
    o.seed = fnv1a64(host);
    auto client = std::make_unique<core::RamseyClient>(
        *node, std::make_unique<core::ModeledWorkExecutor>(), o);
    client->start();
    client_nodes_.push_back(std::move(node));
    clients_.push_back(std::move(client));
  }

  sim::EventQueue events_;
  sim::NetworkModel net_;
  sim::SimTransport transport_;
  std::unique_ptr<Node> log_node_;
  std::unique_ptr<core::LoggingServer> logging_;
  std::unique_ptr<Node> sched_node_;
  std::unique_ptr<core::SchedulerServer> sched_;
  std::vector<std::unique_ptr<Node>> client_nodes_;
  std::vector<std::unique_ptr<core::RamseyClient>> clients_;
};

TEST_F(FaultInjectionTest, ProgressUnderTenPercentLoss) {
  net_.set_loss_rate(0.10);
  net_.set_jitter_sigma(0.4);
  build_scheduler_stack();
  for (int i = 0; i < 8; ++i) add_client("c" + std::to_string(i), 1e7);
  events_.run_for(2 * kHour);
  // Every client must still be delivering despite constant loss.
  for (const auto& c : clients_) {
    EXPECT_GT(c->ops_reported(), 0u);
    EXPECT_TRUE(c->has_work());
  }
  // Rough accounting: 8 clients * 1e7 ops/s * 2 h, allowing generous loss.
  EXPECT_GT(static_cast<double>(logging_->total_ops()), 0.5 * 8 * 1e7 * 7200);
}

TEST_F(FaultInjectionTest, ProgressUnderHeavyCongestion) {
  net_.set_congestion(5.0);
  net_.set_loss_rate(0.02);
  build_scheduler_stack();
  for (int i = 0; i < 4; ++i) add_client("c" + std::to_string(i), 1e7);
  events_.run_for(2 * kHour);
  EXPECT_GT(logging_->records_received(), 100u);
}

TEST_F(FaultInjectionTest, SchedulerOutageAndRecovery) {
  build_scheduler_stack();
  for (int i = 0; i < 4; ++i) add_client("c" + std::to_string(i), 1e7);
  events_.run_for(30 * kMinute);
  const auto before = logging_->records_received();
  ASSERT_GT(before, 0u);
  // The scheduler's host drops off the net for 20 minutes.
  transport_.set_host_up("sched", false);
  events_.run_for(20 * kMinute);
  transport_.set_host_up("sched", true);
  events_.run_for(40 * kMinute);
  // Clients re-registered and reports flow again.
  const auto after = logging_->records_received();
  EXPECT_GT(after, before + 20);
  EXPECT_EQ(sched_->active_clients(), 4u);
}

TEST_F(FaultInjectionTest, ClientsSurviveRepeatedSchedulerFlaps) {
  build_scheduler_stack();
  for (int i = 0; i < 4; ++i) add_client("c" + std::to_string(i), 1e7);
  for (int flap = 0; flap < 6; ++flap) {
    events_.run_for(10 * kMinute);
    transport_.set_host_up("sched", false);
    events_.run_for(3 * kMinute);
    transport_.set_host_up("sched", true);
  }
  events_.run_for(30 * kMinute);
  for (const auto& c : clients_) EXPECT_TRUE(c->has_work());
  EXPECT_EQ(sched_->active_clients(), 4u);
}

// --- Gossip under fire -----------------------------------------------------------

constexpr MsgType kCounter = 0x0551;

struct Component {
  Component(sim::EventQueue& events, Transport& transport, const std::string& host,
            const gossip::ComparatorRegistry& cmp, std::vector<Endpoint> gossips)
      : node(std::make_unique<Node>(events, transport, Endpoint{host, 2000})) {
    node->start();
    gossip::SyncClient::Options o;
    o.reregister_period = 30 * kSecond;
    o.retry_delay = 3 * kSecond;
    sync = std::make_unique<gossip::SyncClient>(*node, cmp, std::move(gossips), o);
    sync->expose(kCounter, gossip::SyncClient::StateHandlers{
                               [this] { return gossip::versioned_blob(version, {}); },
                               [this](const Bytes& b) {
                                 version = *gossip::blob_version(b);
                               },
                           });
    sync->start();
  }
  std::unique_ptr<Node> node;
  std::unique_ptr<gossip::SyncClient> sync;
  std::uint64_t version = 0;
};

TEST_F(FaultInjectionTest, GossipStateSyncUnderLossAndFlappingPartition) {
  net_.set_loss_rate(0.05);
  gossip::ComparatorRegistry comparators;
  const std::vector<Endpoint> gossip_eps = {Endpoint{"g0", 501},
                                            Endpoint{"g1", 501}};
  net_.set_site("g0", "west");
  net_.set_site("g1", "east");
  net_.set_site("comp-a", "west");
  net_.set_site("comp-b", "east");

  gossip::GossipServer::Options gopts;
  gopts.poll_period = 5 * kSecond;
  gopts.peer_sync_period = 8 * kSecond;
  gopts.clique.token_period = 2 * kSecond;
  gopts.clique.probe_period = 5 * kSecond;
  std::vector<std::unique_ptr<Node>> gnodes;
  std::vector<std::unique_ptr<gossip::GossipServer>> gossips;
  for (const auto& ep : gossip_eps) {
    gnodes.push_back(std::make_unique<Node>(events_, transport_, ep));
    ASSERT_TRUE(gnodes.back()->start().ok());
    gossips.push_back(std::make_unique<gossip::GossipServer>(
        *gnodes.back(), comparators, gossip_eps, gopts));
    gossips.back()->start();
  }
  Component a(events_, transport_, "comp-a", comparators, gossip_eps);
  Component b(events_, transport_, "comp-b", comparators, gossip_eps);
  events_.run_for(3 * kMinute);

  // Flap the east-west link while comp-a's state advances.
  for (int round = 0; round < 5; ++round) {
    a.version += 10;
    net_.set_partitioned("west", "east", true);
    events_.run_for(4 * kMinute);
    net_.set_partitioned("west", "east", false);
    events_.run_for(4 * kMinute);
  }
  // After the final heal, comp-b must hold comp-a's latest state.
  events_.run_for(5 * kMinute);
  EXPECT_EQ(b.version, a.version);
  // And the gossip clique must be whole again.
  EXPECT_EQ(gossips[0]->clique().view().members.size(), 2u);
  EXPECT_EQ(gossips[1]->clique().view().members.size(), 2u);
}

TEST_F(FaultInjectionTest, DirectiveResponsesLostAreSafe) {
  // Drop every scheduler RESPONSE (requests arrive): clients time out, the
  // scheduler keeps a consistent view, and once responses flow again the
  // system converges instead of duplicating work assignments.
  build_scheduler_stack();
  for (int i = 0; i < 3; ++i) add_client("c" + std::to_string(i), 1e7);
  events_.run_for(20 * kMinute);
  transport_.set_drop_fn([](const Endpoint& from, const Endpoint&, const Packet& p) {
    return from.host == "sched" && p.kind == PacketKind::kResponse;
  });
  events_.run_for(30 * kMinute);
  transport_.set_drop_fn(nullptr);
  events_.run_for(40 * kMinute);
  EXPECT_EQ(sched_->active_clients(), 3u);
  for (const auto& c : clients_) EXPECT_TRUE(c->has_work());
}

}  // namespace
}  // namespace ew
