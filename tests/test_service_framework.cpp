// Tests for the Section 6 service framework and the volatile-but-replicated
// server directory built on it.
#include <gtest/gtest.h>

#include <memory>

#include "core/server_directory.hpp"
#include "core/service_framework.hpp"
#include "gossip/gossip_server.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew::core {
namespace {

constexpr MsgType kPing = 0x0460;

/// A trivial module: answers pings, counts ticks.
class PingModule final : public ServiceModule {
 public:
  [[nodiscard]] const char* name() const override { return "ping"; }
  void attach(ServiceContext& ctx) override {
    ctx.handle(kPing, [this](const IncomingMessage& m, Responder r) {
      ++pings_;
      r.ok(m.packet.payload);
    });
    ctx.every(10 * kSecond, [this] { ++ticks_; });
    ctx.after(kSecond, [this] { ++one_shots_; });
  }
  void detach() override { detached_ = true; }

  int pings_ = 0;
  int ticks_ = 0;
  int one_shots_ = 0;
  bool detached_ = false;
};

class ServiceFrameworkTest : public ::testing::Test {
 protected:
  ServiceFrameworkTest() : net_(Rng(77)), transport_(events_, net_) {
    net_.set_loss_rate(0.0);
    net_.set_jitter_sigma(0.0);
  }
  sim::EventQueue events_;
  sim::NetworkModel net_;
  sim::SimTransport transport_;
  gossip::ComparatorRegistry comparators_;
};

TEST_F(ServiceFrameworkTest, ModulesAttachAndServe) {
  ServiceFramework fw(events_, transport_, Endpoint{"svc", 100});
  auto module = std::make_unique<PingModule>();
  auto* ping = module.get();
  fw.install(std::move(module));
  ASSERT_TRUE(fw.start().ok());
  EXPECT_EQ(fw.module_count(), 1u);

  Node client(events_, transport_, Endpoint{"cli", 1});
  ASSERT_TRUE(client.start().ok());
  std::optional<Result<Bytes>> got;
  client.call(Endpoint{"svc", 100}, kPing, {7}, CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events_.run_for(5 * kSecond);
  ASSERT_TRUE(got && got->ok());
  EXPECT_EQ(got->value(), Bytes{7});
  EXPECT_EQ(ping->pings_, 1);
}

TEST_F(ServiceFrameworkTest, TicksFireUntilStopped) {
  ServiceFramework fw(events_, transport_, Endpoint{"svc", 100});
  auto module = std::make_unique<PingModule>();
  auto* ping = module.get();
  fw.install(std::move(module));
  ASSERT_TRUE(fw.start().ok());
  events_.run_for(65 * kSecond);
  EXPECT_EQ(ping->ticks_, 6);
  EXPECT_EQ(ping->one_shots_, 1);
  fw.stop();
  EXPECT_TRUE(ping->detached_);
  events_.run_for(kMinute);
  EXPECT_EQ(ping->ticks_, 6);  // no ticks after stop
}

TEST_F(ServiceFrameworkTest, DoubleStartRejected) {
  ServiceFramework fw(events_, transport_, Endpoint{"svc", 100});
  ASSERT_TRUE(fw.start().ok());
  EXPECT_EQ(fw.start().code(), Err::kRejected);
}

TEST_F(ServiceFrameworkTest, ContextCallFeedsTimeoutForecasts) {
  ServiceFramework server(events_, transport_, Endpoint{"svc", 100});
  server.install(std::make_unique<PingModule>());
  ASSERT_TRUE(server.start().ok());

  // A second framework acting as the caller, via a calling module.
  class CallerModule final : public ServiceModule {
   public:
    [[nodiscard]] const char* name() const override { return "caller"; }
    void attach(ServiceContext& ctx) override {
      ctx.every(5 * kSecond, [this, &ctx] {
        ctx.call(Endpoint{"svc", 100}, kPing, {}, [this](Result<Bytes> r) {
          if (r.ok()) ++ok_;
        });
      });
    }
    int ok_ = 0;
  };
  ServiceFramework caller(events_, transport_, Endpoint{"caller", 100});
  auto module = std::make_unique<CallerModule>();
  auto* cm = module.get();
  caller.install(std::move(module));
  ASSERT_TRUE(caller.start().ok());
  events_.run_for(2 * kMinute);
  EXPECT_GE(cm->ok_, 20);
  // The adaptive timeout bank has learned this event.
  const Forecast f = caller.timeouts().bank().forecast(
      EventTag::of(Endpoint{"svc", 100}, kPing));
  EXPECT_GT(f.samples, 10u);
}

TEST_F(ServiceFrameworkTest, ExposeStateWithoutGossipIsSafeNoOp) {
  ServiceFramework fw(events_, transport_, Endpoint{"svc", 100});
  class StateModule final : public ServiceModule {
   public:
    [[nodiscard]] const char* name() const override { return "state"; }
    void attach(ServiceContext& ctx) override {
      ctx.expose_state(0x0777, gossip::SyncClient::StateHandlers{
                                   [] { return Bytes{}; },
                                   [](const Bytes&) {},
                               });
    }
  };
  fw.install(std::make_unique<StateModule>());
  EXPECT_TRUE(fw.start().ok());
  events_.run_for(kMinute);
}

// --- ServerList value semantics -------------------------------------------------

TEST(ServerList, MergeKeepsNewestHeartbeat) {
  ServerList l;
  EXPECT_TRUE(l.merge(ServerEntry{Endpoint{"a", 1}, 5}));
  EXPECT_FALSE(l.merge(ServerEntry{Endpoint{"a", 1}, 3}));
  EXPECT_TRUE(l.merge(ServerEntry{Endpoint{"a", 1}, 9}));
  EXPECT_EQ(l.entries()[0].heartbeat, 9u);
}

TEST(ServerList, SerializeRoundTrip) {
  ServerList l;
  l.merge(ServerEntry{Endpoint{"a", 1}, 5});
  l.merge(ServerEntry{Endpoint{"b", 2}, 7});
  auto out = ServerList::deserialize(l.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_TRUE(out->contains(Endpoint{"b", 2}));
}

TEST(ServerList, PruneDropsLaggards) {
  ServerList l;
  l.merge(ServerEntry{Endpoint{"old", 1}, 2});
  l.merge(ServerEntry{Endpoint{"new", 1}, 12});
  l.prune(6);
  EXPECT_FALSE(l.contains(Endpoint{"old", 1}));
  EXPECT_TRUE(l.contains(Endpoint{"new", 1}));
}

TEST(ServerList, CompareDetectsNovelty) {
  ServerList a, b;
  a.merge(ServerEntry{Endpoint{"x", 1}, 5});
  b.merge(ServerEntry{Endpoint{"x", 1}, 5});
  EXPECT_EQ(ServerList::compare(a.serialize(), b.serialize()), 0);
  a.merge(ServerEntry{Endpoint{"y", 1}, 1});
  EXPECT_GT(ServerList::compare(a.serialize(), b.serialize()), 0);
  EXPECT_LT(ServerList::compare(b.serialize(), a.serialize()), 0);
}

TEST(ServerList, CompareMutualNoveltyBreaksByMass) {
  ServerList a, b;
  a.merge(ServerEntry{Endpoint{"x", 1}, 10});
  b.merge(ServerEntry{Endpoint{"y", 1}, 3});
  EXPECT_GT(ServerList::compare(a.serialize(), b.serialize()), 0);
}

TEST(ServerList, MergeBlobsUnionsNewestBeatPerServer) {
  ServerList a, b;
  a.merge(ServerEntry{Endpoint{"x", 1}, 10});
  a.merge(ServerEntry{Endpoint{"y", 1}, 3});
  b.merge(ServerEntry{Endpoint{"y", 1}, 8});
  b.merge(ServerEntry{Endpoint{"z", 1}, 1});
  auto merged = ServerList::deserialize(
      ServerList::merge_blobs(a.serialize(), b.serialize()));
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 3u);
  for (const auto& e : merged->entries()) {
    if (e.server.host == "x") EXPECT_EQ(e.heartbeat, 10u);
    if (e.server.host == "y") EXPECT_EQ(e.heartbeat, 8u);
    if (e.server.host == "z") EXPECT_EQ(e.heartbeat, 1u);
  }
  // A malformed side contributes nothing; the other survives whole.
  auto survived =
      ServerList::deserialize(ServerList::merge_blobs(Bytes{1}, b.serialize()));
  ASSERT_TRUE(survived.ok());
  EXPECT_EQ(survived->size(), 2u);
}

// --- Directory replication through real gossips ---------------------------------

TEST_F(ServiceFrameworkTest, DirectoriesConvergeThroughGossip) {
  ServerDirectoryModule::register_comparator(comparators_);
  const std::vector<Endpoint> gossip_eps = {Endpoint{"g0", 501},
                                            Endpoint{"g1", 501}};
  // Gossip pool.
  std::vector<std::unique_ptr<Node>> gnodes;
  std::vector<std::unique_ptr<gossip::GossipServer>> gossips;
  gossip::GossipServer::Options gopts;
  gopts.poll_period = 5 * kSecond;
  gopts.peer_sync_period = 7 * kSecond;
  gopts.clique.token_period = 2 * kSecond;
  gopts.clique.probe_period = 4 * kSecond;
  for (const auto& ep : gossip_eps) {
    gnodes.push_back(std::make_unique<Node>(events_, transport_, ep));
    ASSERT_TRUE(gnodes.back()->start().ok());
    gossips.push_back(std::make_unique<gossip::GossipServer>(
        *gnodes.back(), comparators_, gossip_eps, gopts));
    gossips.back()->start();
  }
  // Three servers, each a framework with a directory module.
  std::vector<std::unique_ptr<ServiceFramework>> fws;
  std::vector<ServerDirectoryModule*> dirs;
  ServerDirectoryModule::Options dopts;
  dopts.heartbeat_period = 10 * kSecond;
  for (int i = 0; i < 3; ++i) {
    auto fw = std::make_unique<ServiceFramework>(
        events_, transport_, Endpoint{"srv" + std::to_string(i), 601},
        gossip_eps, comparators_);
    auto module = std::make_unique<ServerDirectoryModule>(dopts);
    dirs.push_back(module.get());
    fw->install(std::move(module));
    ASSERT_TRUE(fw->start().ok());
    fws.push_back(std::move(fw));
  }
  events_.run_for(10 * kMinute);
  // Converged — and STAYS converged at every later sample. Before the
  // union merger, whole-blob LWW at the gossip stores kept destroying the
  // freshest heartbeat one side alone knew; propagation lag then tripped
  // the staleness prune and live peers oscillated out of the directories,
  // so this assertion only held at phase-lucky instants.
  for (int minute = 0; minute < 5; ++minute) {
    events_.run_for(kMinute);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(dirs[static_cast<std::size_t>(i)]->directory().size(), 3u)
          << "at minute " << minute << " server " << i << " sees "
          << dirs[static_cast<std::size_t>(i)]->directory().size();
    }
  }

  // Kill server 2; its entry must age out of the survivors' directories.
  fws[2]->stop();
  transport_.set_host_up("srv2", false);
  events_.run_for(10 * kMinute);
  EXPECT_FALSE(dirs[0]->directory().contains(Endpoint{"srv2", 601}));
  EXPECT_FALSE(dirs[1]->directory().contains(Endpoint{"srv2", 601}));
  EXPECT_TRUE(dirs[0]->directory().contains(Endpoint{"srv0", 601}));
  EXPECT_TRUE(dirs[0]->directory().contains(Endpoint{"srv1", 601}));

  // A client can query any surviving server for the viable-server list.
  Node client(events_, transport_, Endpoint{"cli", 1});
  ASSERT_TRUE(client.start().ok());
  std::optional<Result<Bytes>> got;
  client.call(Endpoint{"srv0", 601}, msgtype::kDirectoryQuery, {}, CallOptions::fixed(5 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events_.run_for(10 * kSecond);
  ASSERT_TRUE(got && got->ok());
  auto list = ServerList::deserialize(*got.value());
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 2u);
}

}  // namespace
}  // namespace ew::core
