file(REMOVE_RECURSE
  "CMakeFiles/test_ramsey_clique.dir/test_ramsey_clique.cpp.o"
  "CMakeFiles/test_ramsey_clique.dir/test_ramsey_clique.cpp.o.d"
  "test_ramsey_clique"
  "test_ramsey_clique.pdb"
  "test_ramsey_clique[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ramsey_clique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
