# Empty dependencies file for test_ramsey_clique.
# This may be replaced when dependencies are built.
