file(REMOVE_RECURSE
  "CMakeFiles/test_gossip_server.dir/test_gossip_server.cpp.o"
  "CMakeFiles/test_gossip_server.dir/test_gossip_server.cpp.o.d"
  "test_gossip_server"
  "test_gossip_server.pdb"
  "test_gossip_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gossip_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
