# Empty dependencies file for test_gossip_server.
# This may be replaced when dependencies are built.
