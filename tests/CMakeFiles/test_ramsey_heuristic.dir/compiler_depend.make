# Empty compiler generated dependencies file for test_ramsey_heuristic.
# This may be replaced when dependencies are built.
