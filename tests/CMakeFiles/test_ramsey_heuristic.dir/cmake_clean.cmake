file(REMOVE_RECURSE
  "CMakeFiles/test_ramsey_heuristic.dir/test_ramsey_heuristic.cpp.o"
  "CMakeFiles/test_ramsey_heuristic.dir/test_ramsey_heuristic.cpp.o.d"
  "test_ramsey_heuristic"
  "test_ramsey_heuristic.pdb"
  "test_ramsey_heuristic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ramsey_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
