# Empty compiler generated dependencies file for test_ramsey_graph.
# This may be replaced when dependencies are built.
