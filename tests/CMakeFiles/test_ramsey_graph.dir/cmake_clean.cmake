file(REMOVE_RECURSE
  "CMakeFiles/test_ramsey_graph.dir/test_ramsey_graph.cpp.o"
  "CMakeFiles/test_ramsey_graph.dir/test_ramsey_graph.cpp.o.d"
  "test_ramsey_graph"
  "test_ramsey_graph.pdb"
  "test_ramsey_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ramsey_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
