file(REMOVE_RECURSE
  "CMakeFiles/test_gossip_state.dir/test_gossip_state.cpp.o"
  "CMakeFiles/test_gossip_state.dir/test_gossip_state.cpp.o.d"
  "test_gossip_state"
  "test_gossip_state.pdb"
  "test_gossip_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gossip_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
