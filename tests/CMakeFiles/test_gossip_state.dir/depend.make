# Empty dependencies file for test_gossip_state.
# This may be replaced when dependencies are built.
