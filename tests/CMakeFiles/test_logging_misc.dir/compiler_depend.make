# Empty compiler generated dependencies file for test_logging_misc.
# This may be replaced when dependencies are built.
