file(REMOVE_RECURSE
  "CMakeFiles/test_logging_misc.dir/test_logging_misc.cpp.o"
  "CMakeFiles/test_logging_misc.dir/test_logging_misc.cpp.o.d"
  "test_logging_misc"
  "test_logging_misc.pdb"
  "test_logging_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logging_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
