# Empty dependencies file for test_shard_pool.
# This may be replaced when dependencies are built.
