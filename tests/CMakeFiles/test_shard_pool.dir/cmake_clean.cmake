file(REMOVE_RECURSE
  "CMakeFiles/test_shard_pool.dir/test_shard_pool.cpp.o"
  "CMakeFiles/test_shard_pool.dir/test_shard_pool.cpp.o.d"
  "test_shard_pool"
  "test_shard_pool.pdb"
  "test_shard_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shard_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
