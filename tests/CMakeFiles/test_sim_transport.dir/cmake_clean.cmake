file(REMOVE_RECURSE
  "CMakeFiles/test_sim_transport.dir/test_sim_transport.cpp.o"
  "CMakeFiles/test_sim_transport.dir/test_sim_transport.cpp.o.d"
  "test_sim_transport"
  "test_sim_transport.pdb"
  "test_sim_transport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
