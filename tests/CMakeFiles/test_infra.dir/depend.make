# Empty dependencies file for test_infra.
# This may be replaced when dependencies are built.
