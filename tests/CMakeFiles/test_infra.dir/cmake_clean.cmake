file(REMOVE_RECURSE
  "CMakeFiles/test_infra.dir/test_infra.cpp.o"
  "CMakeFiles/test_infra.dir/test_infra.cpp.o.d"
  "test_infra"
  "test_infra.pdb"
  "test_infra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
