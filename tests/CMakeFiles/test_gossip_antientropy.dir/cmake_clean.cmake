file(REMOVE_RECURSE
  "CMakeFiles/test_gossip_antientropy.dir/test_gossip_antientropy.cpp.o"
  "CMakeFiles/test_gossip_antientropy.dir/test_gossip_antientropy.cpp.o.d"
  "test_gossip_antientropy"
  "test_gossip_antientropy.pdb"
  "test_gossip_antientropy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gossip_antientropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
