# Empty compiler generated dependencies file for test_gossip_antientropy.
# This may be replaced when dependencies are built.
