
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_nws.cpp" "tests/CMakeFiles/test_nws.dir/test_nws.cpp.o" "gcc" "tests/CMakeFiles/test_nws.dir/test_nws.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/app/CMakeFiles/ew_app.dir/DependInfo.cmake"
  "/root/repo/src/nws/CMakeFiles/ew_nws.dir/DependInfo.cmake"
  "/root/repo/src/sim/mc/CMakeFiles/ew_mc.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/ew_core.dir/DependInfo.cmake"
  "/root/repo/src/infra/CMakeFiles/ew_infra.dir/DependInfo.cmake"
  "/root/repo/src/gossip/CMakeFiles/ew_gossip.dir/DependInfo.cmake"
  "/root/repo/src/forecast/CMakeFiles/ew_forecast.dir/DependInfo.cmake"
  "/root/repo/src/ramsey/CMakeFiles/ew_ramsey.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/ew_sim.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/ew_net.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/ew_common.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ew_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
