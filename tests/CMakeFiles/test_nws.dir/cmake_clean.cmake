file(REMOVE_RECURSE
  "CMakeFiles/test_nws.dir/test_nws.cpp.o"
  "CMakeFiles/test_nws.dir/test_nws.cpp.o.d"
  "test_nws"
  "test_nws.pdb"
  "test_nws[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
