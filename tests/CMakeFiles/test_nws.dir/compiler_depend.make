# Empty compiler generated dependencies file for test_nws.
# This may be replaced when dependencies are built.
