file(REMOVE_RECURSE
  "CMakeFiles/test_persistent_state.dir/test_persistent_state.cpp.o"
  "CMakeFiles/test_persistent_state.dir/test_persistent_state.cpp.o.d"
  "test_persistent_state"
  "test_persistent_state.pdb"
  "test_persistent_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_persistent_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
