# Empty dependencies file for test_persistent_state.
# This may be replaced when dependencies are built.
