# Empty compiler generated dependencies file for test_sharded_work_pool.
# This may be replaced when dependencies are built.
