file(REMOVE_RECURSE
  "CMakeFiles/test_reactor_tcp.dir/test_reactor_tcp.cpp.o"
  "CMakeFiles/test_reactor_tcp.dir/test_reactor_tcp.cpp.o.d"
  "test_reactor_tcp"
  "test_reactor_tcp.pdb"
  "test_reactor_tcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reactor_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
