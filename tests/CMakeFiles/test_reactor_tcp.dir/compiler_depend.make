# Empty compiler generated dependencies file for test_reactor_tcp.
# This may be replaced when dependencies are built.
