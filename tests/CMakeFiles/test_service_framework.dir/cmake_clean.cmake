file(REMOVE_RECURSE
  "CMakeFiles/test_service_framework.dir/test_service_framework.cpp.o"
  "CMakeFiles/test_service_framework.dir/test_service_framework.cpp.o.d"
  "test_service_framework"
  "test_service_framework.pdb"
  "test_service_framework[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
