# Empty dependencies file for test_service_framework.
# This may be replaced when dependencies are built.
