file(REMOVE_RECURSE
  "CMakeFiles/test_app_components.dir/test_app_components.cpp.o"
  "CMakeFiles/test_app_components.dir/test_app_components.cpp.o.d"
  "test_app_components"
  "test_app_components.pdb"
  "test_app_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
