# Empty dependencies file for test_app_components.
# This may be replaced when dependencies are built.
