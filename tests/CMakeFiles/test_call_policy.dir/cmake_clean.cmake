file(REMOVE_RECURSE
  "CMakeFiles/test_call_policy.dir/test_call_policy.cpp.o"
  "CMakeFiles/test_call_policy.dir/test_call_policy.cpp.o.d"
  "test_call_policy"
  "test_call_policy.pdb"
  "test_call_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_call_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
