# Empty dependencies file for test_forecast_incremental.
# This may be replaced when dependencies are built.
