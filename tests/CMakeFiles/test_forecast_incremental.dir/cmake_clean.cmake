file(REMOVE_RECURSE
  "CMakeFiles/test_forecast_incremental.dir/test_forecast_incremental.cpp.o"
  "CMakeFiles/test_forecast_incremental.dir/test_forecast_incremental.cpp.o.d"
  "test_forecast_incremental"
  "test_forecast_incremental.pdb"
  "test_forecast_incremental[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forecast_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
