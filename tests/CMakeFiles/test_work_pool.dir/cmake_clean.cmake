file(REMOVE_RECURSE
  "CMakeFiles/test_work_pool.dir/test_work_pool.cpp.o"
  "CMakeFiles/test_work_pool.dir/test_work_pool.cpp.o.d"
  "test_work_pool"
  "test_work_pool.pdb"
  "test_work_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_work_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
