# Empty compiler generated dependencies file for test_work_pool.
# This may be replaced when dependencies are built.
