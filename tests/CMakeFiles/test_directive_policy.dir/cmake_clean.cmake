file(REMOVE_RECURSE
  "CMakeFiles/test_directive_policy.dir/test_directive_policy.cpp.o"
  "CMakeFiles/test_directive_policy.dir/test_directive_policy.cpp.o.d"
  "test_directive_policy"
  "test_directive_policy.pdb"
  "test_directive_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directive_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
