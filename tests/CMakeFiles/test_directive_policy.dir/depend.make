# Empty dependencies file for test_directive_policy.
# This may be replaced when dependencies are built.
