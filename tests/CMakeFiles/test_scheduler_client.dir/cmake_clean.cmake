file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_client.dir/test_scheduler_client.cpp.o"
  "CMakeFiles/test_scheduler_client.dir/test_scheduler_client.cpp.o.d"
  "test_scheduler_client"
  "test_scheduler_client.pdb"
  "test_scheduler_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
