// Negative-path tests for the trace invariant checker: every predicate in
// obs::check_invariants is tripped by a hand-crafted span stream and the
// violation text is asserted, alongside the matching forgiveness twin (the
// nearly-identical trace that is legitimately clean). The chaos tests and
// the model checker prove real runs stay clean; these prove the checker
// would actually have said something if they had not.
#include <gtest/gtest.h>

#include <string>

#include "obs/invariants.hpp"
#include "obs/trace.hpp"

namespace ew::obs {
namespace {

// sim::FaultKind wire values (see invariants.cpp — obs cannot include sim).
constexpr std::int64_t kCrash = 0;
constexpr std::int64_t kRestart = 1;
// CircuitBreaker states on the wire: 0 = closed, 1 = open, 2 = half-open.
constexpr std::int64_t kClosed = 0;
constexpr std::int64_t kOpen = 1;
constexpr std::int64_t kHalfOpen = 2;

constexpr std::int64_t kSec = 1'000'000;  // µs

/// A private enabled recorder per test: nothing here touches the process
/// trace, so these tests cannot interfere with (or be polluted by) others.
/// (TraceRecorder owns a mutex, so it is built in place, not returned.)
struct EnabledRecorder : TraceRecorder {
  explicit EnabledRecorder(std::size_t cap = 4096) : TraceRecorder(cap) {
    set_enabled(true);
  }
};

bool has_violation(const InvariantReport& r, const std::string& needle) {
  for (const auto& v : r.violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(Invariants, UnitIssuedAndNeverReclaimedIsLost) {
  EnabledRecorder rec;
  const std::uint32_t sched = rec.intern("sched:700");
  rec.record(1 * kSec, SpanKind::kSchedUnitIssued, sched, /*unit=*/7);
  rec.record(9 * kSec, SpanKind::kCliqueTokenPass);  // extend the trace

  InvariantReport r = check_invariants(rec, {});
  EXPECT_EQ(r.units_issued, 1u);
  EXPECT_EQ(r.units_lost, 1u);
  EXPECT_TRUE(has_violation(r, "work unit 7"));
  EXPECT_TRUE(has_violation(r, "never reclaimed"));

  // Forgiveness twin: the same unit named as legitimately live is clean.
  InvariantOptions live;
  live.live_units = {7};
  EXPECT_TRUE(check_invariants(rec, live).ok());
}

TEST(Invariants, CrashWithoutRestartLosesTheInFlightUnit) {
  EnabledRecorder rec;
  const std::uint32_t sched = rec.intern("sched:700");
  const std::uint32_t host = rec.intern("sched");
  rec.record(1 * kSec, SpanKind::kSchedUnitIssued, sched, 7);
  rec.record(2 * kSec, SpanKind::kChaosFault, host, kCrash);
  rec.record(90 * kSec, SpanKind::kCliqueTokenPass);  // end well past grace

  InvariantReport r = check_invariants(rec, {});
  EXPECT_EQ(r.units_lost, 1u);
  EXPECT_TRUE(has_violation(r, "never restarted"));

  // Twin 1: a restart after the crash promises the recovery path re-issues.
  EnabledRecorder rec2;
  const std::uint32_t s2 = rec2.intern("sched:700");
  const std::uint32_t h2 = rec2.intern("sched");
  rec2.record(1 * kSec, SpanKind::kSchedUnitIssued, s2, 7);
  rec2.record(2 * kSec, SpanKind::kChaosFault, h2, kCrash);
  rec2.record(3 * kSec, SpanKind::kChaosFault, h2, kRestart);
  rec2.record(90 * kSec, SpanKind::kCliqueTokenPass);
  EXPECT_TRUE(check_invariants(rec2, {}).ok());

  // Twin 2: a crash inside the end-of-trace grace window is forgiven.
  InvariantOptions grace;
  grace.crash_grace_us = 100 * kSec;
  EXPECT_TRUE(check_invariants(rec, grace).ok());
}

TEST(Invariants, ReissueWhileOutstandingIsDoubleIssued) {
  EnabledRecorder rec;
  const std::uint32_t sched = rec.intern("sched:700");
  rec.record(1 * kSec, SpanKind::kSchedUnitIssued, sched, 7);
  rec.record(2 * kSec, SpanKind::kSchedUnitIssued, sched, 7);
  rec.record(3 * kSec, SpanKind::kSchedUnitReclaimed, sched, 7);

  InvariantReport r = check_invariants(rec, {});
  EXPECT_EQ(r.units_double_issued, 1u);
  EXPECT_TRUE(has_violation(r, "double-issued"));

  // Twin 1: reclaim between the issues (migration) is the sanctioned path.
  EnabledRecorder rec2;
  const std::uint32_t s2 = rec2.intern("sched:700");
  rec2.record(1 * kSec, SpanKind::kSchedUnitIssued, s2, 7);
  rec2.record(2 * kSec, SpanKind::kSchedUnitReclaimed, s2, 7,
              reclaim::kMigrated);
  rec2.record(3 * kSec, SpanKind::kSchedUnitIssued, s2, 7);
  rec2.record(4 * kSec, SpanKind::kSchedUnitReclaimed, s2, 7);
  InvariantReport r2 = check_invariants(rec2, {});
  EXPECT_TRUE(r2.ok());
  EXPECT_EQ(r2.units_double_issued, 0u);

  // Twin 2: a crash between the issues makes the re-issue the recovery path.
  EnabledRecorder rec3;
  const std::uint32_t s3 = rec3.intern("sched:700");
  const std::uint32_t h3 = rec3.intern("sched");
  rec3.record(1 * kSec, SpanKind::kSchedUnitIssued, s3, 7);
  rec3.record(2 * kSec, SpanKind::kChaosFault, h3, kCrash);
  rec3.record(3 * kSec, SpanKind::kChaosFault, h3, kRestart);
  rec3.record(4 * kSec, SpanKind::kSchedUnitIssued, s3, 7);
  rec3.record(5 * kSec, SpanKind::kSchedUnitReclaimed, s3, 7);
  InvariantReport r3 = check_invariants(rec3, {});
  EXPECT_TRUE(r3.ok());
  EXPECT_EQ(r3.units_reissued_after_crash, 1u);
}

TEST(Invariants, CliqueGenerationMustNotRegressWithinAnIncarnation) {
  EnabledRecorder rec;
  const std::uint32_t member = rec.intern("g0:700");
  rec.record(1 * kSec, SpanKind::kCliqueViewChange, member, /*gen=*/5, 3);
  rec.record(2 * kSec, SpanKind::kCliqueViewChange, member, /*gen=*/3, 3);

  InvariantReport r = check_invariants(rec, {});
  EXPECT_TRUE(has_violation(r, "generation regressed"));
  EXPECT_TRUE(has_violation(r, "5 -> 3"));

  // Twin: a crash/restart of that member's host starts a new incarnation,
  // so rejoining at a lower generation is legitimate.
  EnabledRecorder rec2;
  const std::uint32_t m2 = rec2.intern("g0:700");
  const std::uint32_t h2 = rec2.intern("g0");
  rec2.record(1 * kSec, SpanKind::kCliqueViewChange, m2, 5, 3);
  rec2.record(2 * kSec, SpanKind::kChaosFault, h2, kCrash);
  rec2.record(3 * kSec, SpanKind::kChaosFault, h2, kRestart);
  rec2.record(4 * kSec, SpanKind::kCliqueViewChange, m2, 1, 1);
  EXPECT_TRUE(check_invariants(rec2, {}).ok());
}

TEST(Invariants, EmptyGossipDeltaIsAViolation) {
  EnabledRecorder rec;
  const std::uint32_t peer = rec.intern("s1:750");
  rec.record(1 * kSec, SpanKind::kGossipDelta, peer, /*blobs=*/0, /*regs=*/0);

  InvariantReport r = check_invariants(rec, {});
  EXPECT_TRUE(has_violation(r, "empty gossip delta"));

  // Twins: a delta carrying blobs OR registrations is what the planner owes.
  EnabledRecorder rec2;
  const std::uint32_t p2 = rec2.intern("s1:750");
  rec2.record(1 * kSec, SpanKind::kGossipDelta, p2, 2, 0);
  rec2.record(2 * kSec, SpanKind::kGossipDelta, p2, 0, 1);
  InvariantReport r2 = check_invariants(rec2, {});
  EXPECT_TRUE(r2.ok());
  EXPECT_EQ(r2.gossip_deltas, 2u);
  EXPECT_EQ(r2.gossip_delta_blobs, 2u);
}

TEST(Invariants, BreakerOpenAndNeverProbedIsLatched) {
  EnabledRecorder rec;
  const std::uint32_t ep = rec.intern("peer:800");
  rec.record(1 * kSec, SpanKind::kBreakerTransition, ep, kClosed, kOpen);
  rec.record(120 * kSec, SpanKind::kCliqueTokenPass);  // far past the grace

  InvariantReport r = check_invariants(rec, {});
  EXPECT_EQ(r.breaker_opens, 1u);
  EXPECT_EQ(r.breaker_reprobes, 0u);
  EXPECT_TRUE(has_violation(r, "never probed"));

  // Twin 1: the open->half-open probe clears it (even if it re-opens later,
  // recently enough to be inside the grace window).
  EnabledRecorder rec2;
  const std::uint32_t e2 = rec2.intern("peer:800");
  rec2.record(1 * kSec, SpanKind::kBreakerTransition, e2, kClosed, kOpen);
  rec2.record(30 * kSec, SpanKind::kBreakerTransition, e2, kOpen, kHalfOpen);
  rec2.record(120 * kSec, SpanKind::kCliqueTokenPass);
  InvariantReport r2 = check_invariants(rec2, {});
  EXPECT_TRUE(r2.ok());
  EXPECT_EQ(r2.breaker_reprobes, 1u);

  // Twin 2: an open near the end of the trace is inside the cooldown grace.
  EnabledRecorder rec3;
  const std::uint32_t e3 = rec3.intern("peer:800");
  rec3.record(100 * kSec, SpanKind::kBreakerTransition, e3, kClosed, kOpen);
  rec3.record(120 * kSec, SpanKind::kCliqueTokenPass);
  EXPECT_TRUE(check_invariants(rec3, {}).ok());
}

TEST(Invariants, DroppedRingEventsMakeAccountingUnsound) {
  EnabledRecorder rec(/*cap=*/4);
  for (int i = 0; i < 10; ++i) {
    rec.record(i * kSec, SpanKind::kCliqueTokenPass);
  }
  ASSERT_GT(rec.dropped(), 0u);
  InvariantReport r = check_invariants(rec, {});
  EXPECT_TRUE(has_violation(r, "dropped"));
  EXPECT_TRUE(has_violation(r, "unsound"));
}

TEST(Invariants, CleanTraceReportsCleanAccounting) {
  EnabledRecorder rec;
  const std::uint32_t sched = rec.intern("sched:700");
  rec.record(1 * kSec, SpanKind::kSchedUnitIssued, sched, 7);
  rec.record(2 * kSec, SpanKind::kSchedUnitReclaimed, sched, 7,
             reclaim::kReleased);
  rec.record(3 * kSec, SpanKind::kCliqueViewChange, rec.intern("g0:700"), 1, 3);

  InvariantReport r = check_invariants(rec, {});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.units_issued, 1u);
  EXPECT_EQ(r.units_reclaimed, 1u);
  EXPECT_EQ(r.view_changes, 1u);
}

}  // namespace
}  // namespace ew::obs
