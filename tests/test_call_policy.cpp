// Tests for the reliable call layer: retry/hedge/breaker policies behind
// Node::call, wire Err round-trips, and the single-delivery guarantee.
#include <gtest/gtest.h>

#include "net/call_policy.hpp"
#include "net/inproc_transport.hpp"
#include "net/node.hpp"
#include "obs/registry.hpp"
#include "sim/event_queue.hpp"

namespace ew {
namespace {

constexpr MsgType kEcho = 0x10;
constexpr MsgType kRejecting = 0x11;
constexpr MsgType kSilent = 0x12;
constexpr MsgType kShedding = 0x13;
constexpr MsgType kFlaky = 0x14;

class CallPolicyTest : public ::testing::Test {
 protected:
  CallPolicyTest()
      : transport(events),
        server(events, transport, Endpoint{"server", 1}),
        client(events, transport, Endpoint{"client", 1}) {
    EXPECT_TRUE(server.start().ok());
    EXPECT_TRUE(client.start().ok());
    server.handle(kEcho, [](const IncomingMessage& m, Responder r) {
      r.ok(m.packet.payload);
    });
    server.handle(kRejecting, [](const IncomingMessage&, Responder r) {
      r.fail(Err::kRejected, "not today");
    });
    server.handle(kSilent, [](const IncomingMessage&, Responder) {});
    server.handle(kShedding, [](const IncomingMessage&, Responder r) {
      r.fail(Err::kUnavailable, "shedding load");
    });
    // Isolate every test's counters from the process-wide aggregate.
    client.call_policy().set_stats_sink(&sink);
  }

  /// Drop the first `n` requests headed for the server; deliver the rest.
  void drop_first_requests(int n) {
    auto remaining = std::make_shared<int>(n);
    transport.set_drop_fn(
        [remaining](const Endpoint&, const Endpoint& to, const Packet& p) {
          if (to.host != "server" || p.kind != PacketKind::kRequest) return false;
          if (*remaining <= 0) return false;
          --*remaining;
          return true;
        });
  }

  void drop_all_requests() {
    transport.set_drop_fn([](const Endpoint&, const Endpoint& to,
                             const Packet& p) {
      return to.host == "server" && p.kind == PacketKind::kRequest;
    });
  }

  /// Teach the client's forecaster a clean 100 ms RTT for `type` so the
  /// dynamic time-out (tail p98 * 2.5 = 250 ms) and the hedge trigger
  /// (tail p95 = 100 ms) are exactly known.
  void seed_rtt(MsgType type, Duration rtt = 100 * kMillisecond) {
    const EventTag tag = EventTag::of(server.self(), type);
    for (int i = 0; i < 100; ++i) {
      client.call_policy().timeouts().on_result(tag, rtt, true);
    }
  }

  /// Read one of the sink's counters by its obs::names key.
  std::uint64_t stat(const char* name) const {
    return sink.registry().counter(name).value();
  }

  sim::EventQueue events;
  InProcTransport transport;
  Node server;
  Node client;
  AggregateCallStats sink;
};

// --------------------------------------------------------------------------
// Wire status codes.

TEST(WireErr, RoundTripsEveryCode) {
  for (Err e : {Err::kTimeout, Err::kClosed, Err::kRefused, Err::kProtocol,
                Err::kUnavailable, Err::kRejected, Err::kInternal}) {
    EXPECT_EQ(err_from_wire(err_to_wire(e)), e);
  }
  // kOk is not an error; a zero or out-of-range status byte must map to a
  // definite failure rather than round-tripping garbage.
  EXPECT_EQ(err_from_wire(err_to_wire(Err::kOk)), Err::kInternal);
  EXPECT_EQ(err_from_wire(0), Err::kInternal);
  EXPECT_EQ(err_from_wire(0xff), Err::kInternal);
}

TEST_F(CallPolicyTest, ServerErrCodeSurvivesTheWire) {
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kShedding, {}, CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kUnavailable);
  EXPECT_EQ(got->error().message, "shedding load");
}

// --------------------------------------------------------------------------
// Backoff.

TEST(RetryPolicyBackoff, DeterministicAndBounded) {
  RetryPolicy p;  // base 100 ms, x2, jitter 0.5
  EXPECT_EQ(p.backoff(1, 42), p.backoff(1, 42));
  EXPECT_NE(p.backoff(1, 42), p.backoff(1, 43));  // seeds decorrelate
  for (std::uint32_t prior = 1; prior <= 4; ++prior) {
    Duration expected_max = 100 * kMillisecond;
    for (std::uint32_t i = 1; i < prior; ++i) expected_max *= 2;
    const Duration b = p.backoff(prior, 7);
    EXPECT_LE(b, expected_max);
    EXPECT_GE(b, expected_max / 2);  // jitter only shortens, at most by half
  }
  p.jitter = 0;
  EXPECT_EQ(p.backoff(1, 99), 100 * kMillisecond);
  EXPECT_EQ(p.backoff(3, 99), 400 * kMillisecond);
  p.max_backoff = 300 * kMillisecond;
  EXPECT_EQ(p.backoff(5, 99), 300 * kMillisecond);
}

// --------------------------------------------------------------------------
// Retries.

TEST_F(CallPolicyTest, RetryRecoversFromLostRequest) {
  drop_first_requests(1);
  CallOptions o = CallOptions::fixed(200 * kMillisecond);
  o.retry = RetryPolicy::standard(3);
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {7}, std::move(o),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got && got->ok());
  EXPECT_EQ(got->value(), Bytes{7});
  EXPECT_EQ(stat(obs::names::kNetAttempts), 2u);
  EXPECT_EQ(stat(obs::names::kNetRetries), 1u);
  EXPECT_EQ(stat(obs::names::kNetTimeoutsFired), 1u);
  EXPECT_EQ(stat(obs::names::kNetCallsOk), 1u);
}

TEST_F(CallPolicyTest, RetryBudgetExhaustsToTimeout) {
  drop_all_requests();
  CallOptions o = CallOptions::fixed(100 * kMillisecond);
  o.retry = RetryPolicy::standard(3);
  o.retry.base_backoff = 50 * kMillisecond;
  o.retry.jitter = 0;
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {}, std::move(o),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kTimeout);
  // 100 + 50 + 100 + 100 + 100: three attempts, two backoffs, no more.
  EXPECT_EQ(events.clock().now(), 450 * kMillisecond);
  EXPECT_EQ(stat(obs::names::kNetAttempts), 3u);
  EXPECT_EQ(stat(obs::names::kNetRetries), 2u);
  EXPECT_EQ(client.outstanding_calls(), 0u);
}

TEST_F(CallPolicyTest, RejectionIsNotRetried) {
  CallOptions o = CallOptions::fixed(kSecond);
  o.retry = RetryPolicy::standard(3);
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kRejecting, {}, std::move(o),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kRejected);
  EXPECT_EQ(got->error().message, "not today");
  EXPECT_EQ(stat(obs::names::kNetAttempts), 1u);
  EXPECT_EQ(stat(obs::names::kNetRetries), 0u);
}

TEST_F(CallPolicyTest, RetryRejectedOptInRetriesAppVerdicts) {
  int serves = 0;
  server.handle(kFlaky, [&](const IncomingMessage&, Responder r) {
    if (++serves == 1) {
      r.fail(Err::kRejected, "warming up");
    } else {
      r.ok({1});
    }
  });
  CallOptions o = CallOptions::fixed(kSecond);
  o.retry = RetryPolicy::standard(2);
  o.retry.retry_rejected = true;
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kFlaky, {}, std::move(o),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got && got->ok());
  EXPECT_EQ(serves, 2);
  EXPECT_EQ(stat(obs::names::kNetAttempts), 2u);
}

TEST_F(CallPolicyTest, DeadlineBoundsRetries) {
  drop_all_requests();
  CallOptions o = CallOptions::fixed(400 * kMillisecond);
  o.deadline = kSecond;
  o.retry = RetryPolicy::standard(10);
  o.retry.base_backoff = 200 * kMillisecond;
  o.retry.jitter = 0;
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {}, std::move(o),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kTimeout);
  // The deadline, not the 10-attempt budget, ends the call — exactly at 1 s.
  EXPECT_EQ(events.clock().now(), kSecond);
  EXPECT_EQ(stat(obs::names::kNetAttempts), 2u);
  EXPECT_EQ(client.outstanding_calls(), 0u);
}

// --------------------------------------------------------------------------
// Hedging.

TEST_F(CallPolicyTest, HedgeCancelsDuplicateResponse) {
  seed_rtt(kEcho);                         // hedge at 100 ms, time-out 250 ms
  transport.set_latency(60 * kMillisecond);  // real RTT 120 ms > hedge delay
  CallOptions o;                           // dynamic time-out
  o.hedge = HedgePolicy::at(0.95);
  int called = 0;
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {9}, std::move(o), [&](Result<Bytes> r) {
    ++called;
    got = std::move(r);
  });
  events.run_until_idle();
  // The primary answered first (120 ms); the hedge fired at 100 ms and its
  // response (220 ms) must be swallowed, never delivered twice.
  EXPECT_EQ(called, 1);
  ASSERT_TRUE(got && got->ok());
  EXPECT_EQ(got->value(), Bytes{9});
  EXPECT_EQ(stat(obs::names::kNetHedges), 1u);
  EXPECT_EQ(stat(obs::names::kNetHedgeLosses), 1u);
  EXPECT_EQ(stat(obs::names::kNetHedgeWins), 0u);
  EXPECT_EQ(stat(obs::names::kNetDuplicateResponses), 1u);
  EXPECT_EQ(stat(obs::names::kNetCallsOk), 1u);
  EXPECT_EQ(client.outstanding_calls(), 0u);
}

TEST_F(CallPolicyTest, HedgeWinsWhenPrimaryIsLost) {
  seed_rtt(kEcho);
  transport.set_latency(60 * kMillisecond);
  drop_first_requests(1);  // the primary vanishes; only the hedge arrives
  CallOptions o;
  o.hedge = HedgePolicy::at(0.95);
  int called = 0;
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {3}, std::move(o), [&](Result<Bytes> r) {
    ++called;
    got = std::move(r);
  });
  events.run_until_idle();
  EXPECT_EQ(called, 1);
  ASSERT_TRUE(got && got->ok());
  // Hedge sent at 100 ms, answered at 220 ms — before the primary's 250 ms
  // timer, so the call never saw a time-out at all.
  EXPECT_EQ(events.clock().now(), 220 * kMillisecond);
  EXPECT_EQ(stat(obs::names::kNetHedges), 1u);
  EXPECT_EQ(stat(obs::names::kNetHedgeWins), 1u);
  EXPECT_EQ(stat(obs::names::kNetTimeoutsFired), 0u);
  EXPECT_EQ(stat(obs::names::kNetCallsOk), 1u);
}

TEST_F(CallPolicyTest, HedgeSkippedWithoutRttHistory) {
  transport.set_latency(60 * kMillisecond);
  CallOptions o;
  o.hedge = HedgePolicy::at(0.95);  // enabled, but the forecast knows nothing
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {}, std::move(o),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got && got->ok());
  EXPECT_EQ(stat(obs::names::kNetHedges), 0u);
  EXPECT_EQ(stat(obs::names::kNetAttempts), 1u);
}

// --------------------------------------------------------------------------
// Single delivery under spurious time-outs (regression pin).

TEST_F(CallPolicyTest, LateResponseAfterRetriedAttemptDeliversExactlyOnce) {
  // The server is alive but slow: every attempt's timer fires before its
  // response lands. The first attempt's late response must rescue the call
  // (one delivery), and the superseding retry's response must be dropped as
  // a duplicate (not a second delivery).
  transport.set_latency(300 * kMillisecond);  // RTT 600 ms
  CallOptions o = CallOptions::fixed(400 * kMillisecond);
  o.retry = RetryPolicy::standard(2);
  int called = 0;
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {5}, std::move(o), [&](Result<Bytes> r) {
    ++called;
    got = std::move(r);
  });
  events.run_until_idle();
  EXPECT_EQ(called, 1);
  ASSERT_TRUE(got && got->ok());
  EXPECT_EQ(got->value(), Bytes{5});
  EXPECT_EQ(stat(obs::names::kNetTimeoutsFired), 1u);
  EXPECT_EQ(stat(obs::names::kNetLateResponses), 1u);
  EXPECT_EQ(stat(obs::names::kNetLateRescues), 1u);
  EXPECT_EQ(stat(obs::names::kNetDuplicateResponses), 1u);
  EXPECT_EQ(stat(obs::names::kNetCallsOk), 1u);
  EXPECT_EQ(client.outstanding_calls(), 0u);
}

// --------------------------------------------------------------------------
// Circuit breaking.

TEST(CircuitBreakerUnit, OpensHalfOpensAndCloses) {
  CircuitBreaker::Options o;
  o.failure_threshold = 2;
  o.open_for = kSecond;
  o.half_open_probes = 1;
  CircuitBreaker b(o);

  EXPECT_TRUE(b.allow(0));
  b.on_result(0, false);
  EXPECT_EQ(b.state(0), CircuitBreaker::State::kClosed);  // below threshold
  b.on_result(0, false);
  EXPECT_EQ(b.state(0), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(b.allow(500 * kMillisecond));  // shedding

  // The open window elapses: limited probes go through.
  EXPECT_EQ(b.state(kSecond), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(b.allow(kSecond));
  EXPECT_FALSE(b.allow(kSecond));  // probe budget spent
  b.on_result(kSecond, false);     // the probe failed: re-open
  EXPECT_EQ(b.state(kSecond), CircuitBreaker::State::kOpen);

  EXPECT_EQ(b.state(2 * kSecond), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(b.allow(2 * kSecond));
  b.on_result(2 * kSecond, true);  // one good probe closes it
  EXPECT_EQ(b.state(2 * kSecond), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.allow(2 * kSecond));
  EXPECT_EQ(b.times_opened(), 2u);
}

TEST(CircuitBreakerUnit, AbandonedProbeDoesNotLatchHalfOpen) {
  // Regression: a half-open probe whose call completed before the probe
  // reported (hedge shed the call, or the deadline fired) used to leave
  // probes_in_flight_ stuck at the cap, latching the breaker half-open
  // forever — no probe could ever go out again. release_probe() is the
  // abandonment path complete_call drives through on_attempt_abandoned.
  CircuitBreaker::Options o;
  o.failure_threshold = 1;
  o.open_for = kSecond;
  o.half_open_probes = 1;
  CircuitBreaker b(o);
  b.on_result(0, false);  // trip
  EXPECT_EQ(b.state(kSecond), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(b.allow(kSecond));    // probe slot taken
  EXPECT_FALSE(b.allow(kSecond));   // budget spent
  b.release_probe();                // probe abandoned, result never comes
  EXPECT_TRUE(b.allow(kSecond));    // a fresh probe may go out
  b.on_result(kSecond, true);
  EXPECT_EQ(b.state(kSecond), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerUnit, StaleBurstEvidenceCannotLatchTheBreaker) {
  // Regression for the bursty-caller latch: a fan-out of one-shot calls all
  // leaves at t=0 toward a briefly-slow peer. The 2nd timeout trips the
  // breaker; the remaining in-flight attempts keep timing out afterwards.
  // Those failures are *stale evidence* — sent before the trip, already
  // priced into it — and must not extend the open window, re-trip the
  // half-open state, or consume half-open probe slots. Before the fix each
  // straggler re-tripped, latching the breaker open for the whole burst's
  // timeout spread plus open_for.
  CircuitBreaker::Options o;
  o.failure_threshold = 2;
  o.open_for = kSecond;
  o.half_open_probes = 1;
  CircuitBreaker b(o);

  b.on_result(100 * kMillisecond, /*sent=*/0, false);
  b.on_result(200 * kMillisecond, /*sent=*/0, false);  // trips at t=200ms
  EXPECT_EQ(b.times_opened(), 1u);

  // Stragglers from the same burst while open: no window extension.
  b.on_result(700 * kMillisecond, /*sent=*/0, false);
  b.on_result(1100 * kMillisecond, /*sent=*/0, false);
  // open_until_ stayed 200ms + 1s: the breaker rolls half-open on schedule.
  EXPECT_EQ(b.state(1200 * kMillisecond), CircuitBreaker::State::kHalfOpen);

  // A straggler arriving in half-open must not re-trip it...
  b.on_result(1250 * kMillisecond, /*sent=*/0, false);
  EXPECT_EQ(b.state(1250 * kMillisecond), CircuitBreaker::State::kHalfOpen);
  // ...and a probe slot is still available for a real probe.
  EXPECT_TRUE(b.allow(1300 * kMillisecond));
  EXPECT_FALSE(b.allow(1300 * kMillisecond));  // budget spent by the probe
  // One more stale failure while the probe is in flight: the probe's slot
  // must not be freed or the state disturbed.
  b.on_result(1350 * kMillisecond, /*sent=*/0, false);
  EXPECT_EQ(b.state(1350 * kMillisecond), CircuitBreaker::State::kHalfOpen);
  // The genuine probe (sent after the trip) succeeds and closes the breaker.
  b.on_result(1400 * kMillisecond, /*sent=*/1300 * kMillisecond, true);
  EXPECT_EQ(b.state(1400 * kMillisecond), CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.times_opened(), 1u);

  // A *current* failure in half-open still re-trips — only staleness is
  // discounted, not failure itself (OpensHalfOpensAndCloses pins that too).
}

TEST_F(CallPolicyTest, BurstToBrieflySlowPeerDoesNotLatchBreaker) {
  // End-to-end shape of the WISH barrier fan-out: 64 one-shot calls launched
  // together at a peer that stops answering just then. Their timeouts are
  // spread (staggered per-call budgets), so failures keep arriving long
  // after the 5th one tripped the breaker. The breaker must open exactly
  // once and recover on schedule — before the fix every straggler re-tripped
  // it, shedding unrelated traffic far beyond open_for.
  client.call_policy().set_breaker_enabled(true);
  drop_all_requests();
  int failures = 0;
  for (int i = 0; i < 64; ++i) {
    client.call(server.self(), kEcho, {},
                CallOptions::fixed((100 + 50 * i) * kMillisecond),
                [&](Result<Bytes> r) { failures += r.ok() ? 0 : 1; });
  }
  events.run_until_idle();  // storm plays out; last timeout at ~3.25 s
  EXPECT_EQ(failures, 64);
  EXPECT_EQ(stat(obs::names::kNetBreakerOpened), 1u);

  // The peer recovers. Default open window is 10 s from the (single) trip;
  // by 15 s the breaker is half-open and one probe closes it.
  transport.set_drop_fn(nullptr);
  events.run_for(15 * kSecond);
  std::optional<Result<Bytes>> probe;
  client.call(server.self(), kEcho, {1}, CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { probe = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(probe && probe->ok());
  std::optional<Result<Bytes>> after;
  client.call(server.self(), kEcho, {2}, CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { after = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(after && after->ok());
  EXPECT_EQ(stat(obs::names::kNetBreakerOpened), 1u);  // never re-tripped
}

TEST_F(CallPolicyTest, BreakerShedsCallsAndRecoversThroughProbe) {
  client.call_policy().set_breaker_enabled(true);
  drop_all_requests();
  // Default breaker: 5 consecutive failures trip it, 10 s open window.
  for (int i = 0; i < 5; ++i) {
    client.call(server.self(), kEcho, {}, CallOptions::fixed(100 * kMillisecond),
                [](Result<Bytes>) {});
    events.run_until_idle();
  }
  std::optional<Result<Bytes>> shed;
  client.call(server.self(), kEcho, {}, CallOptions::fixed(100 * kMillisecond),
              [&](Result<Bytes> r) { shed = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->code(), Err::kUnavailable);  // shed, no network attempt
  EXPECT_EQ(stat(obs::names::kNetShortCircuits), 1u);
  EXPECT_EQ(stat(obs::names::kNetAttempts), 5u);

  // The server comes back; after the open window one probe closes the
  // breaker and traffic flows again.
  transport.set_drop_fn(nullptr);
  events.run_for(10 * kSecond);
  std::optional<Result<Bytes>> probe;
  client.call(server.self(), kEcho, {1}, CallOptions::fixed(100 * kMillisecond),
              [&](Result<Bytes> r) { probe = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(probe && probe->ok());
  std::optional<Result<Bytes>> after;
  client.call(server.self(), kEcho, {2}, CallOptions::fixed(100 * kMillisecond),
              [&](Result<Bytes> r) { after = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(after && after->ok());
  EXPECT_EQ(stat(obs::names::kNetShortCircuits), 1u);  // nothing shed after recovery
}

// --------------------------------------------------------------------------
// Backpressure (Err::kOverloaded) end-to-end through the call layer.
//
// TcpTransport rejects a send synchronously with kOverloaded when the
// destination's outbox is full. That verdict is about OUR queue, not the
// server: the retry policy must treat it as retryable, while the circuit
// breaker and the RTT forecaster must never observe it (a full local outbox
// says nothing about the peer's health or round-trip time).

/// Transport wrapper that fails sends synchronously with Err::kOverloaded —
/// the TcpTransport backpressure verdict — for as long as `reject_requests`
/// is armed. Binds and non-request traffic pass straight through.
class BackpressureTransport final : public Transport {
 public:
  explicit BackpressureTransport(Transport& inner) : inner_(inner) {}
  Status bind(const Endpoint& self, PacketHandler handler) override {
    return inner_.bind(self, std::move(handler));
  }
  void unbind(const Endpoint& self) override { inner_.unbind(self); }
  Status send(const Endpoint& from, const Endpoint& to, Packet p) override {
    if (reject_requests > 0 && p.kind == PacketKind::kRequest) {
      --reject_requests;
      ++rejected;
      return Status(Err::kOverloaded, "outbox full (injected)");
    }
    return inner_.send(from, to, std::move(p));
  }

  int reject_requests = 0;  // how many more requests to reject
  int rejected = 0;         // how many were rejected so far

 private:
  Transport& inner_;
};

class OverloadedCallTest : public ::testing::Test {
 protected:
  OverloadedCallTest()
      : transport(events),
        client_transport(transport),
        server(events, transport, Endpoint{"server", 1}),
        client(events, client_transport, Endpoint{"client", 1}) {
    EXPECT_TRUE(server.start().ok());
    EXPECT_TRUE(client.start().ok());
    server.handle(kEcho, [](const IncomingMessage& m, Responder r) {
      r.ok(m.packet.payload);
    });
    client.call_policy().set_stats_sink(&sink);
    client.set_rtt_observer([this](const Endpoint&, MsgType, Duration, bool) {
      ++rtt_observations;
    });
  }

  std::uint64_t stat(const char* name) const {
    return sink.registry().counter(name).value();
  }

  sim::EventQueue events;
  InProcTransport transport;
  BackpressureTransport client_transport;
  Node server;
  Node client;
  AggregateCallStats sink;
  int rtt_observations = 0;
};

TEST_F(OverloadedCallTest, OverloadedIsRetriedAndRecovers) {
  client_transport.reject_requests = 1;  // first attempt bounces off the outbox
  CallOptions o = CallOptions::fixed(200 * kMillisecond);
  o.retry = RetryPolicy::standard(3);
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {7}, std::move(o),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got && got->ok());
  EXPECT_EQ(got->value(), Bytes{7});
  EXPECT_EQ(client_transport.rejected, 1);
  // The rejected attempt is retried via backoff — no attempt timer had to
  // fire first, because the failure was synchronous.
  EXPECT_EQ(stat(obs::names::kNetAttempts), 2u);
  EXPECT_EQ(stat(obs::names::kNetRetries), 1u);
  EXPECT_EQ(stat(obs::names::kNetTimeoutsFired), 0u);
  EXPECT_EQ(stat(obs::names::kNetCallsOk), 1u);
  EXPECT_EQ(client.outstanding_calls(), 0u);
}

TEST_F(OverloadedCallTest, ExhaustedOverloadSurfacesAsOverloaded) {
  client_transport.reject_requests = 1000;  // every attempt bounces
  CallOptions o = CallOptions::fixed(200 * kMillisecond);
  o.retry = RetryPolicy::standard(3);
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {}, std::move(o),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  // The caller learns the true verdict, not a synthetic time-out.
  EXPECT_EQ(got->code(), Err::kOverloaded);
  EXPECT_EQ(stat(obs::names::kNetAttempts), 3u);
  EXPECT_EQ(stat(obs::names::kNetRetries), 2u);
  EXPECT_EQ(client.outstanding_calls(), 0u);
}

TEST_F(OverloadedCallTest, BreakerNeverObservesOverload) {
  client.call_policy().set_breaker_enabled(true);
  client_transport.reject_requests = 1000;
  // 3 calls x 3 attempts = 9 consecutive kOverloaded failures — far past the
  // breaker's 5-failure threshold, were it (wrongly) counting them.
  for (int i = 0; i < 3; ++i) {
    CallOptions o = CallOptions::fixed(100 * kMillisecond);
    o.retry = RetryPolicy::standard(3);
    client.call(server.self(), kEcho, {}, std::move(o), [](Result<Bytes>) {});
    events.run_until_idle();
  }
  EXPECT_EQ(client_transport.rejected, 9);
  CircuitBreaker& b = client.call_policy().breakers().at(server.self());
  EXPECT_EQ(b.times_opened(), 0u);
  EXPECT_EQ(b.peek_state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(stat(obs::names::kNetShortCircuits), 0u);
  // The outbox drains: the very next call flows — nothing was tripped, no
  // probe window to wait out.
  client_transport.reject_requests = 0;
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {4}, CallOptions::fixed(100 * kMillisecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got && got->ok());
  EXPECT_EQ(stat(obs::names::kNetShortCircuits), 0u);
}

TEST_F(OverloadedCallTest, ForecasterNeverObservesOverload) {
  client_transport.reject_requests = 1000;
  CallOptions o = CallOptions::fixed(100 * kMillisecond);
  o.retry = RetryPolicy::standard(3);
  client.call(server.self(), kEcho, {}, std::move(o), [](Result<Bytes>) {});
  events.run_until_idle();
  // Three rejected attempts: zero RTT observations, zero forecaster events
  // — a full local outbox must not poison the per-server RTT model.
  EXPECT_EQ(client_transport.rejected, 3);
  EXPECT_EQ(rtt_observations, 0);
  EXPECT_EQ(client.call_policy().timeouts().bank().tracked_events(), 0u);
  // A real round trip DOES feed both — the exclusion is specific to
  // backpressure, not a dead observer.
  client_transport.reject_requests = 0;
  client.call(server.self(), kEcho, {1}, CallOptions::fixed(100 * kMillisecond),
              [](Result<Bytes>) {});
  events.run_until_idle();
  EXPECT_EQ(rtt_observations, 1);
  EXPECT_EQ(client.call_policy().timeouts().bank().tracked_events(), 1u);
}

}  // namespace
}  // namespace ew
