// Tests for dynamic time-out discovery (paper Section 2.2).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "forecast/timeout.hpp"

namespace ew {
namespace {

const EventTag kTag{"server:601", 0x0202};

TEST(StaticTimeout, AlwaysSameValue) {
  StaticTimeout t(3 * kSecond);
  EXPECT_EQ(t.timeout(kTag), 3 * kSecond);
  t.on_result(kTag, 100 * kSecond, false);
  EXPECT_EQ(t.timeout(kTag), 3 * kSecond);  // learns nothing
}

TEST(AdaptiveTimeout, InitialBeforeAnyMeasurement) {
  AdaptiveTimeout t;
  EXPECT_EQ(t.timeout(kTag), t.options().initial);
}

TEST(AdaptiveTimeout, ConvergesAboveObservedRtt) {
  AdaptiveTimeout t;
  for (int i = 0; i < 50; ++i) t.on_result(kTag, 100 * kMillisecond, true);
  const Duration to = t.timeout(kTag);
  EXPECT_GT(to, 100 * kMillisecond);          // above the RTT
  EXPECT_LT(to, 2 * kSecond);                 // but not absurdly so
}

TEST(AdaptiveTimeout, RespectsFloor) {
  AdaptiveTimeout::Options o;
  o.floor = 200 * kMillisecond;
  AdaptiveTimeout t(o);
  for (int i = 0; i < 50; ++i) t.on_result(kTag, 1 * kMillisecond, true);
  EXPECT_GE(t.timeout(kTag), o.floor);
}

TEST(AdaptiveTimeout, RespectsCeiling) {
  AdaptiveTimeout::Options o;
  o.ceiling = 10 * kSecond;
  AdaptiveTimeout t(o);
  for (int i = 0; i < 50; ++i) t.on_result(kTag, 60 * kSecond, true);
  EXPECT_LE(t.timeout(kTag), o.ceiling);
}

TEST(AdaptiveTimeout, FailuresInflateTimeout) {
  AdaptiveTimeout t;
  for (int i = 0; i < 20; ++i) t.on_result(kTag, 100 * kMillisecond, true);
  const Duration before = t.timeout(kTag);
  for (int i = 0; i < 10; ++i) t.on_result(kTag, before, false);
  EXPECT_GT(t.timeout(kTag), before);
}

TEST(AdaptiveTimeout, RecoversAfterFailures) {
  AdaptiveTimeout t;
  for (int i = 0; i < 20; ++i) t.on_result(kTag, 100 * kMillisecond, true);
  for (int i = 0; i < 5; ++i) t.on_result(kTag, t.timeout(kTag), false);
  const Duration inflated = t.timeout(kTag);
  for (int i = 0; i < 100; ++i) t.on_result(kTag, 100 * kMillisecond, true);
  EXPECT_LT(t.timeout(kTag), inflated);
}

TEST(AdaptiveTimeout, TracksLoadIncrease) {
  // RTTs jump 10x; the time-out must follow within a modest number of
  // observations (the SCINet reconfiguration scenario).
  AdaptiveTimeout t;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    t.on_result(kTag, static_cast<Duration>(100 * kMillisecond * rng.uniform(0.8, 1.2)),
                true);
  }
  for (int i = 0; i < 40; ++i) {
    const Duration rtt =
        static_cast<Duration>(1000 * kMillisecond * rng.uniform(0.8, 1.2));
    t.on_result(kTag, rtt, rtt <= t.timeout(kTag));
  }
  EXPECT_GT(t.timeout(kTag), 1000 * kMillisecond);
}

TEST(AdaptiveTimeout, PerTagIsolation) {
  AdaptiveTimeout t;
  const EventTag fast{"fast:1", 1};
  const EventTag slow{"slow:1", 1};
  for (int i = 0; i < 30; ++i) {
    t.on_result(fast, 10 * kMillisecond, true);
    t.on_result(slow, 5 * kSecond, true);
  }
  EXPECT_LT(t.timeout(fast), t.timeout(slow));
}

TEST(AdaptiveTimeout, GlobalOverrideFreezesPolicy) {
  AdaptiveTimeout t;
  for (int i = 0; i < 30; ++i) t.on_result(kTag, 100 * kMillisecond, true);
  {
    AdaptiveTimeout::StaticOverrideGuard guard(7 * kSecond);
    EXPECT_EQ(t.timeout(kTag), 7 * kSecond);
    EXPECT_EQ(AdaptiveTimeout::global_static_override(), 7 * kSecond);
  }
  EXPECT_EQ(AdaptiveTimeout::global_static_override(), 0);
  EXPECT_NE(t.timeout(kTag), 7 * kSecond);
}

/// Property sweep: across lognormal RTT distributions, the converged
/// adaptive time-out yields a low spurious-timeout rate while staying within
/// a small multiple of the typical RTT (tight AND safe).
class TimeoutProperty : public ::testing::TestWithParam<double> {};

TEST_P(TimeoutProperty, LowSpuriousRateTightBound) {
  const double sigma = GetParam();
  Rng rng(static_cast<std::uint64_t>(sigma * 100));
  AdaptiveTimeout t;
  const double median_ms = 200.0;
  // Warm up.
  for (int i = 0; i < 200; ++i) {
    const auto rtt = static_cast<Duration>(median_ms * kMillisecond *
                                           rng.lognormal(0.0, sigma));
    t.on_result(kTag, rtt, rtt <= t.timeout(kTag));
  }
  int spurious = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto rtt = static_cast<Duration>(median_ms * kMillisecond *
                                           rng.lognormal(0.0, sigma));
    const bool ok = rtt <= t.timeout(kTag);
    spurious += ok ? 0 : 1;
    t.on_result(kTag, rtt, ok);
  }
  EXPECT_LT(static_cast<double>(spurious) / n, 0.08) << "sigma=" << sigma;
}

INSTANTIATE_TEST_SUITE_P(JitterShapes, TimeoutProperty,
                         ::testing::Values(0.1, 0.25, 0.5, 0.8));

}  // namespace
}  // namespace ew
