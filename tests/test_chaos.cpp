// Chaos tests: the full SC98 scenario under a scripted FaultPlan.
//
// Every server role (scheduler, gossip, the control site's logging + state
// services) is crash-restarted at least once and a site link flaps, then the
// trace-level invariant checker proves no work unit was silently lost, the
// clique re-converged to one view, and every opened breaker re-probed. A
// second test replays the identical seed twice and demands bit-identical
// trace JSON — the chaos engine must not perturb determinism.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "app/scenario.hpp"
#include "obs/invariants.hpp"
#include "obs/trace.hpp"
#include "sim/chaos.hpp"

namespace ew::app {
namespace {

/// quick_options() from the scenario tests, plus a fault schedule that hits
/// every role: two schedulers, two gossips, the control site, one link flap.
ScenarioOptions chaos_options(const std::string& storage_dir,
                              std::uint64_t seed = 11) {
  ScenarioOptions o;
  o.seed = seed;
  o.fleet_scale = 0.15;
  o.warmup = 30 * kMinute;
  o.record = 150 * kMinute;
  o.judging_offset = 90 * kMinute;
  o.report_interval = kMinute;
  o.state_storage_dir = storage_dir;
  const TimePoint t0 = o.warmup;
  o.chaos.crash_restart(t0 + 10 * kMinute, "sched-0", 8 * kMinute);
  o.chaos.crash_restart(t0 + 25 * kMinute, "gossip-0", 6 * kMinute);
  o.chaos.crash_restart(t0 + 40 * kMinute, "sched-1", 10 * kMinute);
  o.chaos.crash_restart(t0 + 55 * kMinute, "sdsc-control", 5 * kMinute);
  o.chaos.crash_restart(t0 + 70 * kMinute, "gossip-2", 12 * kMinute);
  o.chaos.link_flap(t0 + 85 * kMinute, "sdsc", "ncsa", 10 * kMinute);
  return o;
}

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest() {
    char tmpl[] = "/tmp/ew_chaos_XXXXXX";
    dir = mkdtemp(tmpl);
    EXPECT_FALSE(dir.empty());
  }
  ~ChaosTest() override {
    std::filesystem::remove_all(dir);
    obs::trace().set_enabled(false);
    obs::trace().reset();
    obs::trace().set_capacity(4096);
  }

  std::string dir;
};

TEST_F(ChaosTest, EveryRoleCrashRestartsWithoutLosingWork) {
  obs::trace().reset();
  obs::trace().set_capacity(1u << 20);
  obs::trace().set_enabled(true);

  const ScenarioOptions o = chaos_options(dir);
  Sc98Scenario scenario(o);
  const ScenarioResults res = scenario.run();
  EXPECT_GT(res.total_ops, 0u) << "chaos must not stop the application";

  sim::ChaosEngine* chaos = scenario.chaos_engine();
  ASSERT_NE(chaos, nullptr);
  EXPECT_EQ(chaos->crashes(), 5u);
  EXPECT_EQ(chaos->restarts(), 5u);
  EXPECT_EQ(chaos->faults_injected(), 12u);  // 5 crash + 5 restart + 2 link
  EXPECT_TRUE(chaos->process_alive("sched-0"));
  EXPECT_TRUE(chaos->process_alive("sched-1"));
  EXPECT_TRUE(chaos->process_alive("gossip-0"));
  EXPECT_TRUE(chaos->process_alive("gossip-2"));
  EXPECT_TRUE(chaos->process_alive("sdsc-control"));

  // Every gossip — including the two that died and rejoined — converged back
  // to one clique view.
  ASSERT_GE(o.num_gossips, 2);
  gossip::GossipServer* g0 = scenario.gossip_server(0);
  ASSERT_NE(g0, nullptr);
  const gossip::View& v0 = g0->clique().view();
  EXPECT_EQ(v0.members.size(), static_cast<std::size_t>(o.num_gossips));
  for (int i = 1; i < o.num_gossips; ++i) {
    gossip::GossipServer* gi = scenario.gossip_server(i);
    ASSERT_NE(gi, nullptr) << "gossip-" << i;
    const gossip::View& vi = gi->clique().view();
    EXPECT_EQ(vi.generation, v0.generation) << "gossip-" << i;
    EXPECT_EQ(vi.leader, v0.leader) << "gossip-" << i;
    EXPECT_EQ(vi.members.size(), v0.members.size()) << "gossip-" << i;
  }

  // The global safety/liveness invariants over the whole span stream.
  obs::InvariantOptions iopts;
  for (int i = 0; i < o.num_schedulers; ++i) {
    core::SchedulerServer* s = scenario.scheduler_server(i);
    ASSERT_NE(s, nullptr) << "sched-" << i;
    for (std::uint64_t id : s->pool().assigned_units()) {
      iopts.live_units.insert(id);
    }
  }
  const obs::InvariantReport report = obs::check_invariants(obs::trace(), iopts);
  for (const std::string& v : report.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.units_issued, 0u);
  EXPECT_EQ(report.units_lost, 0u);
  EXPECT_GT(report.view_changes, 0u);
  EXPECT_EQ(report.chaos_faults, 12u);
}

TEST_F(ChaosTest, IdenticalSeedsReplayBitIdenticalTraces) {
  auto run_once = [](const std::string& storage) {
    obs::trace().reset();
    obs::trace().set_capacity(1u << 20);
    obs::trace().set_enabled(true);
    {
      Sc98Scenario scenario(chaos_options(storage));
      scenario.run();
    }
    // Capture after teardown so shutdown-path spans are covered too.
    obs::trace().set_enabled(false);
    return obs::trace().to_json();
  };

  char tmpl[] = "/tmp/ew_chaos_XXXXXX";
  const std::string dir2 = mkdtemp(tmpl);
  ASSERT_FALSE(dir2.empty());
  const std::string a = run_once(dir);
  const std::string b = run_once(dir2);
  std::filesystem::remove_all(dir2);

  ASSERT_GT(a.size(), 2u) << "first run recorded no spans";
  ASSERT_EQ(a.size(), b.size()) << "replays recorded different span streams";
  if (a != b) {
    std::size_t i = 0;
    while (i < a.size() && a[i] == b[i]) ++i;
    const std::size_t from = i > 60 ? i - 60 : 0;
    FAIL() << "traces diverge at byte " << i << ":\n  run A: ..."
           << a.substr(from, 120) << "\n  run B: ..." << b.substr(from, 120);
  }
}

}  // namespace
}  // namespace ew::app
