// Integration tests for the scheduling servers and computational clients:
// registration, progress reporting, logging, failure detection, migration,
// and the counter-example path end to end.
#include <gtest/gtest.h>

#include <memory>

#include "core/client.hpp"
#include "core/logging_service.hpp"
#include "core/persistent_state.hpp"
#include "core/scheduler.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew::core {
namespace {

class SchedulerClientTest : public ::testing::Test {
 protected:
  SchedulerClientTest() : net_(Rng(13)), transport_(events_, net_) {
    net_.set_loss_rate(0.0);
    net_.set_jitter_sigma(0.0);

    log_node_ = std::make_unique<Node>(events_, transport_, Endpoint{"log", 401});
    log_node_->start();
    logging_ = std::make_unique<LoggingServer>(*log_node_);
    logging_->start();

    state_node_ = std::make_unique<Node>(events_, transport_, Endpoint{"state", 402});
    state_node_->start();
    state_ = std::make_unique<PersistentStateManager>(*state_node_);
    state_->register_validator("ramsey/best/",
                               PersistentStateManager::ramsey_validator());
    state_->start();
  }

  SchedulerServer& add_scheduler(const std::string& host, int n, int k,
                                 std::uint32_t pool_shards = 1) {
    auto node = std::make_unique<Node>(events_, transport_, Endpoint{host, 601});
    node->start();
    SchedulerServer::Options o;
    o.logging = log_node_->self();
    o.state_manager = state_node_->self();
    o.pool.n = n;
    o.pool.k = k;
    o.pool_shards = pool_shards;
    o.sweep_period = 20 * kSecond;
    o.migration_period = 30 * kSecond;
    auto server = std::make_unique<SchedulerServer>(*node, o);
    server->start();
    sched_nodes_.push_back(std::move(node));
    schedulers_.push_back(std::move(server));
    return *schedulers_.back();
  }

  /// A modeled client on `host` delivering `rate` ops/sec.
  RamseyClient& add_client(const std::string& host, double rate,
                           std::vector<Endpoint> schedulers,
                           std::uint32_t units_per_client = 1) {
    auto node = std::make_unique<Node>(events_, transport_, Endpoint{host, 2000});
    node->start();
    RamseyClient::Options o;
    o.schedulers = std::move(schedulers);
    o.infra = Infra::kUnix;
    o.host_label = host;
    auto shared_rate = std::make_shared<double>(rate);
    rates_[host] = shared_rate;
    o.rate_source = [shared_rate] { return *shared_rate; };
    o.report_interval = 30 * kSecond;
    o.initial_sleep_max = 5 * kSecond;
    o.retry_delay = 5 * kSecond;
    o.seed = std::hash<std::string>{}(host);
    o.units_per_client = units_per_client;
    if (units_per_client > 1) {
      o.executor_factory = [] { return std::make_unique<ModeledWorkExecutor>(); };
    }
    auto client = std::make_unique<RamseyClient>(
        *node, std::make_unique<ModeledWorkExecutor>(), o);
    client->start();
    client_nodes_.push_back(std::move(node));
    clients_.push_back(std::move(client));
    return *clients_.back();
  }

  void set_rate(const std::string& host, double rate) { *rates_[host] = rate; }

  sim::EventQueue events_;
  sim::NetworkModel net_;
  sim::SimTransport transport_;
  std::unique_ptr<Node> log_node_;
  std::unique_ptr<LoggingServer> logging_;
  std::unique_ptr<Node> state_node_;
  std::unique_ptr<PersistentStateManager> state_;
  std::vector<std::unique_ptr<Node>> sched_nodes_;
  std::vector<std::unique_ptr<SchedulerServer>> schedulers_;
  std::vector<std::unique_ptr<Node>> client_nodes_;
  std::vector<std::unique_ptr<RamseyClient>> clients_;
  std::map<std::string, std::shared_ptr<double>> rates_;
};

TEST_F(SchedulerClientTest, ClientRegistersAndReports) {
  auto& sched = add_scheduler("sched", 42, 5);
  auto& client = add_client("c1", 1e7, {Endpoint{"sched", 601}});
  events_.run_for(5 * kMinute);
  EXPECT_EQ(sched.active_clients(), 1u);
  EXPECT_GT(sched.reports_received(), 5u);
  EXPECT_GT(client.ops_reported(), 0u);
  EXPECT_TRUE(client.has_work());
}

TEST_F(SchedulerClientTest, LoggingServiceRecordsProgress) {
  add_scheduler("sched", 42, 5);
  add_client("c1", 1e7, {Endpoint{"sched", 601}});
  add_client("c2", 2e7, {Endpoint{"sched", 601}});
  events_.run_for(10 * kMinute);
  EXPECT_GT(logging_->records_received(), 10u);
  EXPECT_GT(logging_->total_ops(Infra::kUnix), 1e9);
  // Reported ops over 10 min at ~3e7/s total.
  EXPECT_NEAR(static_cast<double>(logging_->total_ops()), 3e7 * 600, 3e7 * 600 * 0.4);
}

TEST_F(SchedulerClientTest, DeadClientDetectedAndWorkReclaimed) {
  auto& sched = add_scheduler("sched", 42, 5);
  add_client("c1", 1e7, {Endpoint{"sched", 601}});
  events_.run_for(5 * kMinute);
  ASSERT_EQ(sched.active_clients(), 1u);
  // Kill the client silently (host reclaimed).
  clients_[0]->stop();
  transport_.set_host_up("c1", false);
  events_.run_for(15 * kMinute);
  EXPECT_EQ(sched.active_clients(), 0u);
  EXPECT_EQ(sched.clients_presumed_dead(), 1u);
  // The unit survived with its coloring.
  EXPECT_EQ(sched.pool().idle_frontier_size(), 1u);
}

TEST_F(SchedulerClientTest, ClientFailsOverBetweenSchedulers) {
  add_scheduler("sched-a", 42, 5);
  add_scheduler("sched-b", 42, 5);
  auto& client = add_client(
      "c1", 1e7, {Endpoint{"sched-a", 601}, Endpoint{"sched-b", 601}});
  events_.run_for(3 * kMinute);
  ASSERT_EQ(schedulers_[0]->active_clients(), 1u);
  // sched-a dies; the client must re-register with sched-b and keep working.
  transport_.set_host_up("sched-a", false);
  events_.run_for(15 * kMinute);
  EXPECT_EQ(schedulers_[1]->active_clients(), 1u);
  EXPECT_TRUE(client.has_work());
  EXPECT_GE(client.registrations(), 2u);
}

TEST_F(SchedulerClientTest, SchedulerRestartForcesReRegistration) {
  auto& sched = add_scheduler("sched", 42, 5);
  auto& client = add_client("c1", 1e7, {Endpoint{"sched", 601}});
  events_.run_for(3 * kMinute);
  ASSERT_EQ(sched.active_clients(), 1u);
  // Simulate a stateless scheduler restart: wipe by stop/start of a fresh
  // server on the same endpoint.
  schedulers_[0]->stop();
  sched_nodes_[0]->stop();
  sched_nodes_[0] = std::make_unique<Node>(events_, transport_, Endpoint{"sched", 601});
  sched_nodes_[0]->start();
  SchedulerServer::Options o;
  o.logging = log_node_->self();
  o.state_manager = state_node_->self();
  o.pool.n = 42;
  o.pool.k = 5;
  schedulers_[0] = std::make_unique<SchedulerServer>(*sched_nodes_[0], o);
  schedulers_[0]->start();
  events_.run_for(10 * kMinute);
  // The client hit "unregistered client", re-registered, and continued.
  EXPECT_EQ(schedulers_[0]->active_clients(), 1u);
  EXPECT_TRUE(client.has_work());
  EXPECT_GE(client.registrations(), 2u);
}

TEST_F(SchedulerClientTest, MigrationMovesPromisingWorkToFastClient) {
  auto& sched = add_scheduler("sched", 42, 5);
  add_client("slow", 5e5, {Endpoint{"sched", 601}});
  add_client("fast", 5e7, {Endpoint{"sched", 601}});
  add_client("mid", 2e7, {Endpoint{"sched", 601}});
  events_.run_for(30 * kMinute);
  EXPECT_GT(sched.migrations(), 0u);
}

TEST_F(SchedulerClientTest, NoMigrationWhenRatesAreComparable) {
  auto& sched = add_scheduler("sched", 42, 5);
  add_client("a", 1.0e7, {Endpoint{"sched", 601}});
  add_client("b", 1.1e7, {Endpoint{"sched", 601}});
  add_client("c", 0.9e7, {Endpoint{"sched", 601}});
  events_.run_for(30 * kMinute);
  EXPECT_EQ(sched.migrations(), 0u);
}

TEST_F(SchedulerClientTest, CounterExampleFlowsToPersistentState) {
  // Real executor on the easy R(3,3) instance: found quickly, then stored
  // (and sanity-checked) at the persistent state manager.
  add_scheduler("sched", 5, 3);
  auto node = std::make_unique<Node>(events_, transport_, Endpoint{"real", 2000});
  node->start();
  RamseyClient::Options o;
  o.schedulers = {Endpoint{"sched", 601}};
  o.host_label = "real";
  o.simulated_time = false;
  o.initial_sleep_max = kSecond;
  auto client = std::make_unique<RamseyClient>(
      *node, std::make_unique<RealWorkExecutor>(), o);
  client->start();
  for (int i = 0; i < 100 && !state_->fetch(best_graph_name(5, 3)); ++i) {
    events_.run_for(10 * kSecond);
  }
  client->stop();
  ASSERT_TRUE(state_->fetch(best_graph_name(5, 3)).has_value());
  EXPECT_GE(schedulers_[0]->counterexamples_stored(), 1u);
  EXPECT_EQ(state_->stores_rejected(), 0u);  // every claim was genuine
}

TEST_F(SchedulerClientTest, BestGraphStateSharedViaApply) {
  auto& a = add_scheduler("sched-a", 42, 5);
  auto& b = add_scheduler("sched-b", 42, 5);
  add_client("c1", 1e7, {Endpoint{"sched-a", 601}});
  events_.run_for(10 * kMinute);
  // Simulate a gossip delivering a's state to b.
  const Bytes state = a.best_graph_state();
  ASSERT_TRUE(gossip::blob_body(state).ok());
  b.apply_best_graph_state(state);
  EXPECT_EQ(b.best_graph_state(), state);
}

TEST_F(SchedulerClientTest, FrontierSurvivesSchedulerRestartViaCheckpoint) {
  // The scheduler checkpoints its work frontier to the persistent state
  // manager; a restarted scheduler resumes the search instead of starting
  // from fresh random colorings.
  add_scheduler("sched", 42, 5);
  add_client("c1", 1e7, {Endpoint{"sched", 601}});
  add_client("c2", 1e7, {Endpoint{"sched", 601}});
  events_.run_for(20 * kMinute);  // several reports + checkpoints
  ASSERT_TRUE(state_->fetch("sched/frontier/sched:601/shard-0").has_value());

  // Hard restart: a brand-new scheduler object on the same endpoint.
  schedulers_[0]->stop();
  sched_nodes_[0]->stop();
  sched_nodes_[0] = std::make_unique<Node>(events_, transport_, Endpoint{"sched", 601});
  sched_nodes_[0]->start();
  SchedulerServer::Options o;
  o.logging = log_node_->self();
  o.state_manager = state_node_->self();
  o.pool.n = 42;
  o.pool.k = 5;
  schedulers_[0] = std::make_unique<SchedulerServer>(*sched_nodes_[0], o);
  schedulers_[0]->start();
  events_.run_for(5 * kMinute);
  EXPECT_GE(schedulers_[0]->frontier_units_restored(), 2u);
  // Re-registering clients get resumed units, not fresh ones.
  events_.run_for(15 * kMinute);
  EXPECT_EQ(schedulers_[0]->active_clients(), 2u);
}

TEST_F(SchedulerClientTest, MultiUnitLeaseReportedInBatches) {
  // A client with units_per_client=8 holds a lease of eight units, reports
  // all of them in one kSchedReportBatch per quantum, and the sharded pool
  // spreads the mints across its range-shards.
  auto& sched = add_scheduler("sched", 42, 5, /*pool_shards=*/4);
  auto& client = add_client("c1", 1e7, {Endpoint{"sched", 601}}, /*units=*/8);
  events_.run_for(5 * kMinute);
  EXPECT_EQ(sched.active_clients(), 1u);
  EXPECT_EQ(client.units_held(), 8u);
  EXPECT_EQ(sched.pool().assigned_count(), 8u);
  EXPECT_GT(sched.report_batches_received(), 3u);
  // Every batch covers the whole lease.
  EXPECT_EQ(sched.reports_received(), sched.report_batches_received() * 8);
  // Round-robin minting touched every shard.
  ASSERT_EQ(sched.pool().shard_count(), 4u);
  for (std::uint32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(sched.pool().shard(k).units_issued(), 2u) << "shard " << k;
  }
}

TEST_F(SchedulerClientTest, RetiredPerUnitReportWireIsRejected) {
  // Wire parity: the per-unit kSchedReport shim is gone. A frame sent at the
  // retired message id must be rejected as unhandled — not silently decoded,
  // not routed through the batch core — and must leave no trace on the pool.
  auto& sched = add_scheduler("sched", 20, 4);
  auto fake = std::make_unique<Node>(events_, transport_, Endpoint{"fake", 2100});
  fake->start();

  const Endpoint worker{"worker", 2000};
  ClientHello hello;
  hello.client = worker;
  hello.infra = Infra::kUnix;
  hello.host = "worker";
  hello.want_units = 1;
  std::optional<ramsey::WorkSpec> spec;
  fake->call(Endpoint{"sched", 601}, msgtype::kSchedRegister, hello.serialize(),
             CallOptions::fixed(kSecond), [&spec](Result<Bytes> r) {
               ASSERT_TRUE(r.ok());
               auto d = DirectiveBatch::deserialize(*r);
               ASSERT_TRUE(d.ok() && !d->assign.empty());
               spec = d->assign.front();
             });
  events_.run_for(5 * kSecond);
  ASSERT_TRUE(spec.has_value());

  // A well-formed v2 batch payload aimed at the retired id: the old shim
  // would have decoded its own envelope, but nothing listens there now.
  ReportBatch batch;
  batch.client = worker;
  batch.seq = 1;
  batch.want_units = 1;
  ramsey::WorkReport rep;
  rep.unit_id = spec->unit_id;
  rep.ops_done = 500'000'000;
  rep.best_energy = 88;
  batch.reports.push_back(rep);
  bool rejected = false;
  fake->call(Endpoint{"sched", 601}, msgtype::kSchedReport, batch.serialize(),
             CallOptions::fixed(kSecond), [&rejected](Result<Bytes> r) {
               rejected = !r.ok();
             });
  events_.run_for(5 * kSecond);
  EXPECT_TRUE(rejected);
  EXPECT_EQ(sched.reports_received(), 0u);  // nothing reached the batch core

  // The same payload at the batch id is accepted: only the id was retired.
  bool accepted = false;
  fake->call(Endpoint{"sched", 601}, msgtype::kSchedReportBatch,
             batch.serialize(), CallOptions::fixed(kSecond),
             [&accepted](Result<Bytes> r) { accepted = r.ok(); });
  events_.run_for(5 * kSecond);
  EXPECT_TRUE(accepted);
  EXPECT_EQ(sched.reports_received(), 1u);
}

TEST_F(SchedulerClientTest, ShardedRestartReplaysPerShardWithoutDoubleIssue) {
  // Per-shard checkpoints: a restarted 2-shard scheduler re-imports each
  // shard from its own record, every unit lands back in its residue class,
  // and re-registered clients never see the same unit twice.
  add_scheduler("sched", 42, 5, /*pool_shards=*/2);
  add_client("c1", 1e7, {Endpoint{"sched", 601}}, /*units=*/4);
  add_client("c2", 1e7, {Endpoint{"sched", 601}}, /*units=*/4);
  events_.run_for(20 * kMinute);
  ASSERT_TRUE(state_->fetch("sched/frontier/sched:601/shard-0").has_value());
  ASSERT_TRUE(state_->fetch("sched/frontier/sched:601/shard-1").has_value());

  schedulers_[0]->stop();
  sched_nodes_[0]->stop();
  sched_nodes_[0] = std::make_unique<Node>(events_, transport_, Endpoint{"sched", 601});
  sched_nodes_[0]->start();
  SchedulerServer::Options o;
  o.logging = log_node_->self();
  o.state_manager = state_node_->self();
  o.pool.n = 42;
  o.pool.k = 5;
  o.pool_shards = 2;
  schedulers_[0] = std::make_unique<SchedulerServer>(*sched_nodes_[0], o);
  schedulers_[0]->start();
  events_.run_for(5 * kMinute);
  EXPECT_GE(schedulers_[0]->frontier_units_restored(), 2u);

  // Clients fail their next report and re-register; both leases refill.
  events_.run_for(15 * kMinute);
  const auto& pool = schedulers_[0]->pool();
  EXPECT_EQ(schedulers_[0]->active_clients(), 2u);
  EXPECT_EQ(pool.assigned_count(), 8u);
  for (std::uint32_t k = 0; k < 2; ++k) {
    const auto ids = pool.shard(k).assigned_units();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ((ids[i] - 1) % 2, k) << "unit outside its shard's range";
      if (i > 0) EXPECT_NE(ids[i], ids[i - 1]) << "double-issued unit";
    }
  }
}

TEST_F(SchedulerClientTest, ThunderingHerdSpreadBySleep) {
  add_scheduler("sched", 42, 5);
  for (int i = 0; i < 20; ++i) {
    add_client("c" + std::to_string(i), 1e7, {Endpoint{"sched", 601}});
  }
  // Within the first sleep window, registrations trickle rather than slam.
  events_.run_for(2 * kSecond);
  const std::size_t early = schedulers_[0]->active_clients();
  events_.run_for(kMinute);
  EXPECT_LT(early, 20u);
  EXPECT_EQ(schedulers_[0]->active_clients(), 20u);
}

}  // namespace
}  // namespace ew::core
