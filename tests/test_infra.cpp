// Tests for the infrastructure adapters and their documented quirks:
// Condor eviction, the NT/LSF sleep-kill, Java's two execution tiers,
// Globus staging behind the light switch, NetSolve brokering, and the
// Legion translator.
#include <gtest/gtest.h>

#include <memory>

#include "app/light_switch.hpp"
#include "infra/condor.hpp"
#include "infra/globus.hpp"
#include "infra/java.hpp"
#include "infra/legion.hpp"
#include "infra/netsolve.hpp"
#include "infra/nt.hpp"
#include "infra/profiles.hpp"
#include "infra/unix.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew::infra {
namespace {

/// A trivially observable "client process".
struct DummyProcess final : Process {
  explicit DummyProcess(int* live) : live_(live) { ++*live_; }
  ~DummyProcess() override { --*live_; }
  int* live_;
};

class InfraTest : public ::testing::Test {
 protected:
  InfraTest() : net_(Rng(31)), transport_(events_, net_) {
    net_.set_loss_rate(0.0);
    net_.set_jitter_sigma(0.0);
  }

  ClientFactory counting_factory() {
    return [this](SimHost&) { return std::make_unique<DummyProcess>(&live_); };
  }

  sim::EventQueue events_;
  sim::NetworkModel net_;
  sim::SimTransport transport_;
  int live_ = 0;
};

// --- SimHost -------------------------------------------------------------------

TEST_F(InfraTest, HostRateZeroWhenDown) {
  HostSpec spec;
  spec.name = "h0";
  spec.ops_per_sec = 1e7;
  SimHost host(events_, transport_, spec, {}, {}, 1);
  host.start(/*initially_up=*/false);
  EXPECT_FALSE(host.up());
  EXPECT_EQ(host.current_rate(), 0.0);
}

TEST_F(InfraTest, HostComesUpAndDeliversFractionOfPeak) {
  HostSpec spec;
  spec.name = "h1";
  spec.ops_per_sec = 1e7;
  SimHost host(events_, transport_, spec, {}, {}, 2);
  host.start(true);
  events_.run_for(kMinute);
  ASSERT_TRUE(host.up());
  EXPECT_GT(host.current_rate(), 0.0);
  EXPECT_LE(host.current_rate(), 1e7);
  EXPECT_TRUE(transport_.host_up("h1"));
}

TEST_F(InfraTest, HostChurnsOverLongRun) {
  HostSpec spec;
  spec.name = "h2";
  sim::DurationSampler::Params churn;
  churn.mean_up = 10 * kMinute;
  churn.mean_down = 5 * kMinute;
  SimHost host(events_, transport_, spec, {}, churn, 3);
  host.start(true);
  events_.run_for(6 * kHour);
  EXPECT_GT(host.up_transitions(), 5u);
}

TEST_F(InfraTest, ForceDownReclaimsHost) {
  HostSpec spec;
  spec.name = "h3";
  SimHost host(events_, transport_, spec, {}, {}, 4);
  host.start(true);
  events_.run_for(kMinute);
  ASSERT_TRUE(host.up());
  int downs = 0;
  host.set_on_down([&] { ++downs; });
  host.force_down(kHour);
  EXPECT_FALSE(host.up());
  EXPECT_EQ(downs, 1);
  EXPECT_FALSE(transport_.host_up("h3"));
  // Stays down at least the requested hour.
  events_.run_for(30 * kMinute);
  EXPECT_FALSE(host.up());
}

// --- HostPool ----------------------------------------------------------------------

TEST_F(InfraTest, PoolLaunchesClientsOnUpHosts) {
  PoolProfile p = default_profile(core::Infra::kUnix);
  p.host_count = 6;
  p.relaunch_delay = 10 * kSecond;
  HostPool pool(events_, transport_, net_, p, 5);
  pool.start(counting_factory());
  events_.run_for(10 * kMinute);
  EXPECT_EQ(pool.hosts_total(), 6);
  EXPECT_GT(pool.hosts_up(), 0);
  EXPECT_EQ(pool.hosts_active(), live_);
  EXPECT_GT(live_, 0);
}

TEST_F(InfraTest, PoolKillsClientsWhenHostsGoDown) {
  PoolProfile p = default_profile(core::Infra::kCondor);
  p.host_count = 20;
  HostPool pool(events_, transport_, net_, p, 6);
  int kills = 0;
  pool.set_on_client_killed([&](std::size_t) { ++kills; });
  pool.start(counting_factory());
  events_.run_for(4 * kHour);
  EXPECT_GT(kills, 0);
  EXPECT_EQ(pool.hosts_active(), live_);
}

TEST_F(InfraTest, ReclaimFractionTakesHostsDown) {
  PoolProfile p = default_profile(core::Infra::kUnix);
  p.host_count = 10;
  p.initially_up = 1.0;
  HostPool pool(events_, transport_, net_, p, 7);
  pool.start(counting_factory());
  events_.run_for(5 * kMinute);
  const int before = pool.hosts_up();
  ASSERT_GT(before, 5);
  pool.reclaim_fraction(0.5, kHour);
  EXPECT_LE(pool.hosts_up(), before - before / 2 + 1);
}

// --- Condor ------------------------------------------------------------------------

TEST_F(InfraTest, CondorCountsEvictions) {
  PoolProfile p = default_profile(core::Infra::kCondor);
  p.host_count = 30;
  CondorAdapter condor(events_, transport_, net_, 8, p);
  condor.start(counting_factory());
  events_.run_for(6 * kHour);
  EXPECT_GT(condor.evictions(), 10u)
      << "owner reclamation must kill running guests";
  EXPECT_EQ(condor.kind(), core::Infra::kCondor);
}

// --- NT / LSF ------------------------------------------------------------------------

TEST_F(InfraTest, LsfKillsLongSleepers) {
  PoolProfile p = default_profile(core::Infra::kNT);
  p.host_count = 24;
  NTAdapter::Quirks q;
  q.lsf_kill_threshold = 30 * kSecond;
  q.client_sleep_max = 3 * kMinute;  // pre-fix configuration
  NTAdapter nt(events_, transport_, net_, 9, p, q);
  nt.start(counting_factory());
  events_.run_for(2 * kHour);
  EXPECT_GT(nt.lsf_kills(), 5u);
}

TEST_F(InfraTest, ReducedSleepAvoidsLsfKills) {
  PoolProfile p = default_profile(core::Infra::kNT);
  p.host_count = 24;
  NTAdapter::Quirks q;
  q.lsf_kill_threshold = 30 * kSecond;
  q.client_sleep_max = 10 * kSecond;  // the paper's fix
  NTAdapter nt(events_, transport_, net_, 9, p, q);
  nt.start(counting_factory());
  events_.run_for(2 * kHour);
  EXPECT_EQ(nt.lsf_kills(), 0u);
}

// --- Java ---------------------------------------------------------------------------

TEST_F(InfraTest, JavaHostsHaveTwoTiers) {
  PoolProfile p = default_profile(core::Infra::kJava);
  p.host_count = 12;
  JavaAdapter java(events_, transport_, net_, 10, p);
  java.start(counting_factory());
  int jit = 0, interp = 0;
  for (auto& h : java.pool().hosts()) {
    if (h->spec().ops_per_sec > 1e6) {
      ++jit;
      EXPECT_NEAR(h->spec().ops_per_sec, JavaAdapter::kJitOpsPerSec,
                  JavaAdapter::kJitOpsPerSec * 0.11);
    } else {
      ++interp;
      EXPECT_NEAR(h->spec().ops_per_sec, JavaAdapter::kInterpretedOpsPerSec,
                  JavaAdapter::kInterpretedOpsPerSec * 0.11);
    }
  }
  EXPECT_EQ(jit, 8);
  EXPECT_EQ(interp, 4);
}

// --- Globus ----------------------------------------------------------------------------

TEST_F(InfraTest, GlobusIdleUntilSwitchedOn) {
  PoolProfile p = default_profile(core::Infra::kGlobus);
  p.host_count = 8;
  p.initially_up = 1.0;
  GlobusAdapter globus(events_, transport_, net_, 11, p, {});
  globus.start(counting_factory());
  events_.run_for(10 * kMinute);
  EXPECT_EQ(live_, 0) << "no jobs before a GRAM submission";
  EXPECT_FALSE(globus.switched_on());
}

TEST_F(InfraTest, LightSwitchActivatesGlobusViaMdsAuthSubmit) {
  PoolProfile p = default_profile(core::Infra::kGlobus);
  p.host_count = 8;
  p.initially_up = 1.0;
  GlobusAdapter globus(events_, transport_, net_, 12, p, {});
  globus.start(counting_factory());

  Node control(events_, transport_, Endpoint{"control", 1});
  ASSERT_TRUE(control.start().ok());
  app::LightSwitch::Options o;
  o.mds = globus.mds_endpoint();
  app::LightSwitch sw(control, o);
  events_.run_for(kMinute);
  sw.turn_on();
  events_.run_for(10 * kMinute);
  EXPECT_TRUE(sw.globus_on());
  EXPECT_TRUE(globus.switched_on());
  EXPECT_GT(live_, 0);
  // The binary was staged from GASS exactly once, then cached.
  EXPECT_EQ(globus.gass_fetches(), 1u);
}

// --- NetSolve -----------------------------------------------------------------------------

TEST_F(InfraTest, NetSolveLaunchesOnlyAfterRequest) {
  PoolProfile p = default_profile(core::Infra::kNetSolve);
  p.host_count = 3;
  p.initially_up = 1.0;
  NetSolveAdapter ns(events_, transport_, net_, 13, p, {});
  ns.start(counting_factory());
  events_.run_for(5 * kMinute);
  EXPECT_EQ(live_, 0);
  EXPECT_GT(ns.advertised_servers(), 0u);

  Node control(events_, transport_, Endpoint{"control", 1});
  ASSERT_TRUE(control.start().ok());
  std::optional<Result<Bytes>> got;
  control.call(ns.agent_endpoint(), core::msgtype::kNetSolveRequest, {}, CallOptions::fixed(5 * kSecond),
               [&](Result<Bytes> r) { got = std::move(r); });
  events_.run_for(5 * kMinute);
  ASSERT_TRUE(got && got->ok());
  EXPECT_TRUE(ns.requested());
  EXPECT_GT(live_, 0);
}

// --- Legion translator ------------------------------------------------------------------------

TEST_F(InfraTest, TranslatorForwardsAndRelays) {
  // A backend service the translator fronts.
  Node backend(events_, transport_, Endpoint{"backend", 601});
  ASSERT_TRUE(backend.start().ok());
  backend.handle(0x0201, [](const IncomingMessage& m, Responder r) {
    Bytes out = m.packet.payload;
    out.push_back(0xAA);
    r.ok(out);
  });

  PoolProfile p = default_profile(core::Infra::kLegion);
  p.host_count = 2;
  LegionAdapter legion(events_, transport_, net_, 14, p, {});
  legion.translator().forward(0x0201, {Endpoint{"backend", 601}});
  legion.start(counting_factory());

  Node client(events_, transport_, Endpoint{"legion-client", 1});
  ASSERT_TRUE(client.start().ok());
  std::optional<Result<Bytes>> got;
  client.call(legion.translator_endpoint(), 0x0201, {5}, CallOptions::fixed(10 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events_.run_for(kMinute);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().to_string();
  EXPECT_EQ(got->value(), (Bytes{5, 0xAA}));
  EXPECT_EQ(legion.translator().translated(), 1u);
}

TEST_F(InfraTest, TranslatorFailsOverBetweenTargets) {
  Node backend(events_, transport_, Endpoint{"backend-b", 601});
  ASSERT_TRUE(backend.start().ok());
  backend.handle(0x0201, [](const IncomingMessage&, Responder r) { r.ok({1}); });

  PoolProfile p = default_profile(core::Infra::kLegion);
  p.host_count = 1;
  LegionAdapter legion(events_, transport_, net_, 15, p, {});
  // First target does not exist; second works.
  legion.translator().forward(0x0201, {Endpoint{"backend-a", 601},
                                       Endpoint{"backend-b", 601}});
  legion.start(counting_factory());

  Node client(events_, transport_, Endpoint{"legion-client", 1});
  ASSERT_TRUE(client.start().ok());
  std::optional<Result<Bytes>> got;
  client.call(legion.translator_endpoint(), 0x0201, {}, CallOptions::fixed(30 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events_.run_for(2 * kMinute);
  ASSERT_TRUE(got && got->ok());
  EXPECT_EQ(got->value(), Bytes{1});
}

TEST_F(InfraTest, TranslatorPropagatesRejection) {
  Node backend(events_, transport_, Endpoint{"backend-c", 601});
  ASSERT_TRUE(backend.start().ok());
  backend.handle(0x0202, [](const IncomingMessage&, Responder r) {
    r.fail(Err::kRejected, "unregistered client");
  });
  PoolProfile p = default_profile(core::Infra::kLegion);
  p.host_count = 1;
  LegionAdapter legion(events_, transport_, net_, 16, p, {});
  legion.translator().forward(0x0202, {Endpoint{"backend-c", 601}});
  legion.start(counting_factory());

  Node client(events_, transport_, Endpoint{"legion-client", 1});
  ASSERT_TRUE(client.start().ok());
  std::optional<Result<Bytes>> got;
  client.call(legion.translator_endpoint(), 0x0202, {}, CallOptions::fixed(10 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events_.run_for(kMinute);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kRejected);
  EXPECT_EQ(got->error().message, "unregistered client");
}

// --- Profiles -----------------------------------------------------------------------------------

TEST(Profiles, AllInfrasHaveProfiles) {
  for (int i = 0; i < core::kInfraCount; ++i) {
    const PoolProfile p = default_profile(static_cast<core::Infra>(i));
    EXPECT_EQ(p.infra, static_cast<core::Infra>(i));
    EXPECT_GT(p.host_count, 0);
    EXPECT_FALSE(p.host_prefix.empty());
  }
}

TEST(Profiles, CalibratedFleetMatchesFigure3b) {
  // Host counts follow the paper's Figure 3b ordering:
  // Condor > NT > Legion > Globus > Unix > Java > NetSolve.
  const int condor = default_profile(core::Infra::kCondor).host_count;
  const int nt = default_profile(core::Infra::kNT).host_count;
  const int legion = default_profile(core::Infra::kLegion).host_count;
  const int globus = default_profile(core::Infra::kGlobus).host_count;
  const int unix_n = default_profile(core::Infra::kUnix).host_count;
  const int java = default_profile(core::Infra::kJava).host_count;
  const int ns = default_profile(core::Infra::kNetSolve).host_count;
  EXPECT_GT(condor, nt);
  EXPECT_GT(nt, legion);
  EXPECT_GE(legion, globus);
  EXPECT_GT(globus, unix_n);
  EXPECT_GT(unix_n, java);
  EXPECT_GT(java, ns);
}

}  // namespace
}  // namespace ew::infra
