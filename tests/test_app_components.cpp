// Tests for the app-layer building blocks: the metrics collector, the
// client-process factory, and the light switch's retry discipline.
#include <gtest/gtest.h>

#include "app/client_process.hpp"
#include "app/light_switch.hpp"
#include "app/metrics.hpp"
#include "core/logging_service.hpp"
#include "core/scheduler.hpp"
#include "infra/profiles.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew::app {
namespace {

// --- MetricsCollector --------------------------------------------------------

TEST(MetricsCollector, BinsOpsByInfraAndTime) {
  MetricsCollector m(0, kMinute, 3);
  core::LogRecord rec;
  rec.infra = core::Infra::kCondor;
  rec.ops = 6'000'000;
  rec.when = 30 * kSecond;
  m.on_log(rec);
  rec.when = 90 * kSecond;
  m.on_log(rec);
  rec.infra = core::Infra::kJava;
  rec.when = 30 * kSecond;
  rec.ops = 600'000;
  m.on_log(rec);

  EXPECT_DOUBLE_EQ(m.total_rate()[0], (6'000'000 + 600'000) / 60.0);
  EXPECT_DOUBLE_EQ(m.total_rate()[1], 6'000'000 / 60.0);
  EXPECT_DOUBLE_EQ(m.infra_rate(core::Infra::kCondor)[0], 100'000.0);
  EXPECT_DOUBLE_EQ(m.infra_rate(core::Infra::kJava)[0], 10'000.0);
  EXPECT_EQ(m.records(), 3u);
}

TEST(MetricsCollector, HostGaugeAveragesPerBin) {
  MetricsCollector m(0, kMinute, 2);
  m.sample_hosts(core::Infra::kNT, 10, 10 * kSecond);
  m.sample_hosts(core::Infra::kNT, 20, 40 * kSecond);
  m.sample_hosts(core::Infra::kNT, 30, 70 * kSecond);
  EXPECT_DOUBLE_EQ(m.infra_hosts(core::Infra::kNT)[0], 15.0);
  EXPECT_DOUBLE_EQ(m.infra_hosts(core::Infra::kNT)[1], 30.0);
}

TEST(MetricsCollector, IgnoresOutOfWindowRecords) {
  MetricsCollector m(kMinute, kMinute, 1);  // window [60s, 120s)
  core::LogRecord rec;
  rec.ops = 100;
  rec.when = 10 * kSecond;  // before
  m.on_log(rec);
  rec.when = 10 * kMinute;  // after
  m.on_log(rec);
  EXPECT_DOUBLE_EQ(m.total_rate()[0], 0.0);
}

// --- ClientProcess factory -----------------------------------------------------

class AppComponentTest : public ::testing::Test {
 protected:
  AppComponentTest() : net_(Rng(2)), transport_(events_, net_) {
    net_.set_loss_rate(0.0);
    net_.set_jitter_sigma(0.0);
  }
  sim::EventQueue events_;
  sim::NetworkModel net_;
  sim::SimTransport transport_;
};

TEST_F(AppComponentTest, FactoryBuildsWorkingClients) {
  // A scheduler + logging, then spin up clients through the factory exactly
  // as the infrastructure adapters do.
  Node log_node(events_, transport_, Endpoint{"log", 401});
  log_node.start();
  core::LoggingServer logging(log_node);
  logging.start();
  Node sched_node(events_, transport_, Endpoint{"sched", 601});
  sched_node.start();
  core::SchedulerServer::Options so;
  so.logging = log_node.self();
  so.pool.n = 42;
  so.pool.k = 5;
  core::SchedulerServer sched(sched_node, so);
  sched.start();

  ClientProcess::Config cfg;
  cfg.schedulers = {sched_node.self()};
  cfg.infra = core::Infra::kCondor;
  cfg.report_interval = 30 * kSecond;
  cfg.initial_sleep_max = 5 * kSecond;
  auto factory = make_client_factory(events_, transport_, cfg);

  infra::HostSpec spec;
  spec.name = "condor-9";
  spec.ops_per_sec = 1e7;
  infra::SimHost host(events_, transport_, spec, {}, {}, 5);
  host.start(true);
  events_.run_for(kMinute);  // let the host come up

  auto process = factory(host);
  ASSERT_NE(process, nullptr);
  events_.run_for(10 * kMinute);
  EXPECT_EQ(sched.active_clients(), 1u);
  EXPECT_GT(logging.total_ops(core::Infra::kCondor), 0u);

  // Killing the process (eviction) stops its traffic.
  const auto before = logging.records_received();
  process.reset();
  events_.run_for(10 * kMinute);
  EXPECT_LE(logging.records_received(), before + 1);
}

TEST_F(AppComponentTest, FactoryRotatesSchedulerListsPerHost) {
  // Different hosts must not all hammer the same first scheduler.
  ClientProcess::Config cfg;
  cfg.schedulers = {Endpoint{"s0", 601}, Endpoint{"s1", 601}, Endpoint{"s2", 601}};
  // The rotation is by stable host-name hash; over many hosts all three
  // rotations must appear. We can't see the rotated list directly, but we
  // can observe where registrations land.
  std::array<int, 3> registrations{};
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<Node>(events_, transport_,
                                       Endpoint{"s" + std::to_string(i), 601});
    node->start();
    node->handle(core::msgtype::kSchedRegister,
                 [&registrations, i](const IncomingMessage&, Responder r) {
                   ++registrations[static_cast<std::size_t>(i)];
                   r.fail(Err::kRejected, "full");  // keep them hopping
                 });
    nodes.push_back(std::move(node));
  }
  auto factory = make_client_factory(events_, transport_, cfg);
  std::vector<std::unique_ptr<infra::SimHost>> hosts;
  std::vector<std::unique_ptr<infra::Process>> procs;
  for (int i = 0; i < 12; ++i) {
    infra::HostSpec spec;
    spec.name = "host-" + std::to_string(i);
    infra::SimHost& host = *hosts.emplace_back(std::make_unique<infra::SimHost>(
        events_, transport_, spec, sim::Ar1Process::Params{},
        sim::DurationSampler::Params{}, static_cast<std::uint64_t>(i)));
    host.start(true);
    events_.run_for(35 * kSecond);
    procs.push_back(factory(host));
  }
  events_.run_for(2 * kMinute);
  EXPECT_GT(registrations[0], 0);
  EXPECT_GT(registrations[1], 0);
  EXPECT_GT(registrations[2], 0);
}

// --- LightSwitch -----------------------------------------------------------------

TEST_F(AppComponentTest, LightSwitchRetriesUntilMdsAppears) {
  Node control(events_, transport_, Endpoint{"control", 1});
  control.start();
  LightSwitch::Options o;
  o.mds = Endpoint{"globus-control", 701};
  o.retry_delay = 10 * kSecond;
  LightSwitch sw(control, o);
  sw.turn_on();
  events_.run_for(2 * kMinute);
  EXPECT_FALSE(sw.globus_on());  // MDS not there yet

  // The MDS (plus gram) appears late; the switch must still get there.
  Node mds(events_, transport_, Endpoint{"globus-control", 701});
  mds.start();
  Node gram(events_, transport_, Endpoint{"globus-control", 702});
  gram.start();
  mds.handle(core::msgtype::kMdsQuery, [&gram](const IncomingMessage&, Responder r) {
    Writer w;
    gossip::write_endpoint(w, gram.self());
    gossip::write_endpoint(w, Endpoint{"globus-control", 703});
    w.u32(4);
    r.ok(w.take());
  });
  gram.handle(core::msgtype::kGramAuth,
              [](const IncomingMessage&, Responder r) { r.ok(); });
  gram.handle(core::msgtype::kGramSubmit,
              [](const IncomingMessage&, Responder r) { r.ok(); });
  events_.run_for(3 * kMinute);
  EXPECT_TRUE(sw.globus_on());
}

}  // namespace
}  // namespace ew::app
