// Property tests for the incremental forecaster battery: every O(log w) /
// O(1) incremental implementation must agree with a naive
// recompute-from-the-raw-window reference over long random observe/evict
// sequences. Exactness tiers (documented in DESIGN.md, "Forecasting hot
// path"):
//   * SlidingMedian, TrimmedMean — bit-identical (pure order statistics /
//     identical left-to-right sums over identically sorted arrays);
//   * SlidingMean, TrendForecaster — equal to within floating-point
//     accumulation tolerance (running sums vs. full recompute).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "forecast/dynamic_benchmark.hpp"
#include "forecast/forecaster.hpp"
#include "forecast/selector.hpp"

namespace ew {
namespace {

// --- Naive reference implementations (the pre-optimization semantics) ------

class NaiveWindow {
 public:
  explicit NaiveWindow(std::size_t cap) : cap_(cap) {}
  void add(double v) {
    if (buf_.size() == cap_) buf_.pop_front();
    buf_.push_back(v);
  }
  [[nodiscard]] std::vector<double> sorted() const {
    std::vector<double> v(buf_.begin(), buf_.end());
    std::sort(v.begin(), v.end());
    return v;
  }
  [[nodiscard]] const std::deque<double>& values() const { return buf_; }

 private:
  std::size_t cap_;
  std::deque<double> buf_;
};

// The toolkit's nearest-rank median (lower middle element at even sizes),
// exactly what the naive SlidingWindow::quantile(0.5) battery computed.
double naive_median(const std::vector<double>& sorted) {
  return sorted[(sorted.size() - 1) / 2];
}

double naive_mean(const std::deque<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double naive_trimmed(const std::vector<double>& sorted, double trim) {
  const std::size_t n = sorted.size();
  const auto cut = static_cast<std::size_t>(trim * static_cast<double>(n));
  const std::size_t lo = cut, hi = n - cut;
  if (lo >= hi) return naive_median(sorted);
  double s = 0.0;
  for (std::size_t i = lo; i < hi; ++i) s += sorted[i];
  return s / static_cast<double>(hi - lo);
}

double naive_trend(const std::deque<double>& vals) {
  const std::size_t n = vals.size();
  if (n == 0) return 0.0;
  if (n == 1) return vals.back();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t i = 0;
  for (double v : vals) {
    const auto x = static_cast<double>(i++);
    sx += x;
    sy += v;
    sxx += x * x;
    sxy += x * v;
  }
  const auto dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return sy / dn;
  const double slope = (dn * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / dn;
  return intercept + slope * dn;
}

// --- Value generators ------------------------------------------------------

/// NaN-free fuzz double in the measurement domain, test_fuzz style: random
/// 64-bit patterns bit-cast to double, rejecting non-finite values and
/// magnitudes beyond any plausible measurement (timings/rates stay far below
/// 1e12; astronomically large windows would make *any* floating-point
/// summation meaningless, incremental or not).
double fuzz_value(Rng& rng) {
  for (;;) {
    const double v = std::bit_cast<double>(rng.next_u64());
    if (std::isfinite(v) && std::abs(v) < 1e12) return v;
  }
}

using Gen = std::function<double(int, Rng&)>;

std::vector<std::pair<const char*, Gen>> generators() {
  return {
      {"uniform", [](int, Rng& r) { return r.uniform(0, 1000); }},
      {"spiky",
       [](int i, Rng& r) {
         return (i % 37 == 0 ? 5e6 : 100.0) + r.normal(0, 5);
       }},
      {"level-shift",
       [](int i, Rng& r) { return (i / 500 % 2 ? 2000.0 : 20.0) + r.normal(0, 1); }},
      {"tiny", [](int, Rng& r) { return r.uniform(0, 1e-6); }},
      {"fuzz", [](int, Rng& r) { return fuzz_value(r); }},
  };
}

// --- The equivalence property ---------------------------------------------

constexpr int kSteps = 10'000;

TEST(IncrementalEquivalence, SlidingMedianMatchesNaiveExactly) {
  for (std::size_t w : {1u, 2u, 3u, 5u, 30u, 31u, 128u}) {
    for (const auto& [name, gen] : generators()) {
      Rng rng(w * 1000003u + 17);
      SlidingMedian inc(w);
      NaiveWindow ref(w);
      for (int i = 0; i < kSteps; ++i) {
        const double v = gen(i, rng);
        const double got = inc.observe(v);
        ref.add(v);
        ASSERT_EQ(got, naive_median(ref.sorted()))
            << "w=" << w << " gen=" << name << " step=" << i;
        ASSERT_EQ(inc.predict(), got);
      }
    }
  }
}

TEST(IncrementalEquivalence, TrimmedMeanMatchesNaiveExactly) {
  for (std::size_t w : {1u, 2u, 5u, 30u, 100u}) {
    for (double trim : {0.0, 0.1, 0.3, 0.45, 0.5}) {
      for (const auto& [name, gen] : generators()) {
        Rng rng(w * 7919u + static_cast<std::uint64_t>(trim * 100));
        TrimmedMean inc(w, trim);
        NaiveWindow ref(w);
        for (int i = 0; i < kSteps / 4; ++i) {
          const double v = gen(i, rng);
          const double got = inc.observe(v);
          ref.add(v);
          ASSERT_EQ(got, naive_trimmed(ref.sorted(), trim))
              << "w=" << w << " trim=" << trim << " gen=" << name
              << " step=" << i;
        }
      }
    }
  }
}

TEST(IncrementalEquivalence, SlidingMeanMatchesNaiveToTolerance) {
  for (std::size_t w : {1u, 5u, 30u}) {
    for (const auto& [name, gen] : generators()) {
      Rng rng(w + 31337);
      SlidingMean inc(w);
      NaiveWindow ref(w);
      double max_abs = 1.0;
      for (int i = 0; i < kSteps; ++i) {
        const double v = gen(i, rng);
        max_abs = std::max(max_abs, std::abs(v));
        const double got = inc.observe(v);
        ref.add(v);
        ASSERT_NEAR(got, naive_mean(ref.values()), 1e-9 * max_abs)
            << "w=" << w << " gen=" << name << " step=" << i;
      }
    }
  }
}

TEST(IncrementalEquivalence, TrendMatchesNaiveToTolerance) {
  for (std::size_t w : {2u, 10u, 50u}) {
    for (const auto& [name, gen] : generators()) {
      Rng rng(w * 271u + 5);
      TrendForecaster inc(w);
      NaiveWindow ref(w);
      double max_abs = 1.0;
      for (int i = 0; i < kSteps; ++i) {
        const double v = gen(i, rng);
        max_abs = std::max(max_abs, std::abs(v));
        const double got = inc.observe(v);
        ref.add(v);
        // The rolling cross-sums accumulate rounding proportional to window
        // length and magnitude; 1e-7 relative headroom is ~1e9 ULPs of
        // slack while still catching any real re-indexing bug.
        ASSERT_NEAR(got, naive_trend(ref.values()),
                    1e-7 * max_abs * static_cast<double>(w))
            << "w=" << w << " gen=" << name << " step=" << i;
      }
    }
  }
}

// --- Selector-level properties ---------------------------------------------

TEST(AdaptiveForecasterIncremental, CachedPredictionsMatchMethodPredict) {
  // The selector's cached standing predictions must be exactly what each
  // method would answer if asked directly — same battery, same trace.
  auto selector = AdaptiveForecaster::nws_default();
  auto mirror = default_battery();
  Rng rng(404);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(0, 500);
    selector.observe(v);
    for (auto& m : mirror) m->observe(v);
    const Forecast f = selector.forecast();
    // The winner's value must equal that method's own standing prediction.
    const auto names = selector.method_names();
    for (std::size_t k = 0; k < mirror.size(); ++k) {
      if (names[k] == f.method) {
        ASSERT_EQ(f.value, mirror[k]->predict()) << "step " << i;
      }
    }
  }
}

TEST(AdaptiveForecasterIncremental, BatchObserveEqualsSequential) {
  std::vector<double> trace;
  Rng rng(777);
  for (int i = 0; i < 5000; ++i) trace.push_back(rng.uniform(10, 90));

  auto one = AdaptiveForecaster::nws_default();
  auto batch = AdaptiveForecaster::nws_default();
  for (double v : trace) one.observe(v);
  batch.observe(std::span<const double>(trace));

  const Forecast a = one.forecast();
  const Forecast b = batch.forecast();
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.method, b.method);
}

TEST(AdaptiveForecasterIncremental, BestIndexRegressionOnKnownTraces) {
  // Pin best-method selection on fixed traces so hot-path refactors cannot
  // silently change which forecaster wins.
  {
    // Perfectly constant: every method is exact, ties break to the first
    // battery member.
    auto f = AdaptiveForecaster::nws_default();
    for (int i = 0; i < 100; ++i) f.observe(42.0);
    EXPECT_EQ(f.forecast().method, "last");
  }
  {
    // Clean linear ramp: only the trend extrapolates it without lag.
    auto f = AdaptiveForecaster::nws_default();
    for (int i = 0; i < 200; ++i) f.observe(5.0 * i);
    EXPECT_EQ(f.forecast().method, "trend(10)");
  }
  {
    // Constant with rare large spikes: the wide median shrugs spikes off.
    auto f = AdaptiveForecaster::nws_default();
    Rng rng(9);
    for (int i = 0; i < 600; ++i) {
      f.observe((i % 40 == 0 ? 900.0 : 10.0) + rng.normal(0, 0.1));
    }
    const Forecast fc = f.forecast();
    EXPECT_EQ(fc.method, "median(31)");
    EXPECT_NEAR(fc.value, 10.0, 1.0);
  }
}

// --- Sharded bank ----------------------------------------------------------

TEST(ShardedEventForecasterBank, AgreesWithPlainBank) {
  EventForecasterBank plain;
  ShardedEventForecasterBank sharded(4);
  Rng rng(55);
  const std::vector<EventTag> tags = {
      {"a:1", 1}, {"a:1", 2}, {"b:7", 1}, {"c:9", 3}};
  for (int i = 0; i < 1000; ++i) {
    const EventTag& tag = tags[rng.below(tags.size())];
    const double v = rng.uniform(50, 150);
    plain.record(tag, v);
    sharded.record(tag, v);
  }
  EXPECT_EQ(sharded.tracked_events(), plain.tracked_events());
  for (const auto& tag : tags) {
    const Forecast p = plain.forecast(tag);
    const Forecast s = sharded.forecast(tag);
    EXPECT_EQ(p.value, s.value) << tag.to_string();
    EXPECT_EQ(p.samples, s.samples) << tag.to_string();
    EXPECT_EQ(p.method, s.method) << tag.to_string();
  }
}

TEST(ShardedEventForecasterBank, ConcurrentRecordersDontInterfere) {
  ShardedEventForecasterBank bank(8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&bank, t] {
      const EventTag tag{"srv:" + std::to_string(t), 1};
      for (int i = 0; i < kPerThread; ++i) {
        bank.record(tag, 100.0 + t);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(bank.tracked_events(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    const Forecast f = bank.forecast(EventTag{"srv:" + std::to_string(t), 1});
    EXPECT_EQ(f.samples, static_cast<std::size_t>(kPerThread));
    EXPECT_DOUBLE_EQ(f.value, 100.0 + t);
  }
}

TEST(EventForecasterBank, RecordBatchEqualsRepeatedRecord) {
  std::vector<double> trace;
  Rng rng(21);
  for (int i = 0; i < 500; ++i) trace.push_back(rng.uniform(0, 100));
  const EventTag tag{"s:1", 9};

  EventForecasterBank a, b;
  for (double v : trace) a.record(tag, v);
  b.record_batch(tag, trace);
  EXPECT_EQ(a.forecast(tag).value, b.forecast(tag).value);
  EXPECT_EQ(a.forecast(tag).samples, b.forecast(tag).samples);
}

}  // namespace
}  // namespace ew
