// Tests for the persistent state manager, in particular the run-time sanity
// check of Section 3.1.2: "If a process attempts to store a counter example,
// the persistent state manager first checks to make sure the stored object
// is, indeed, a Ramsey counter example for the given problem size."
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>

#include "core/persistent_state.hpp"
#include "net/inproc_transport.hpp"
#include "ramsey/clique.hpp"
#include "sim/event_queue.hpp"

namespace ew::core {
namespace {

class PersistentStateTest : public ::testing::Test {
 protected:
  PersistentStateTest()
      : transport(events), node(events, transport, Endpoint{"state", 402}),
        mgr(node) {
    EXPECT_TRUE(node.start().ok());
    mgr.register_validator("ramsey/best/", PersistentStateManager::ramsey_validator());
    mgr.start();
  }

  Bytes ramsey_object(const ramsey::ColoredGraph& g, bool claim, std::uint64_t v) {
    return gossip::versioned_blob(v, make_best_graph_body(g.serialize(), claim));
  }

  sim::EventQueue events;
  InProcTransport transport;
  Node node;
  PersistentStateManager mgr;
};

TEST_F(PersistentStateTest, AcceptsGenuineCounterExample) {
  auto paley = ramsey::ColoredGraph::paley(17);
  const Status s = mgr.store(best_graph_name(17, 4), ramsey_object(*paley, true, 1));
  EXPECT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(mgr.stores_accepted(), 1u);
  EXPECT_TRUE(mgr.fetch(best_graph_name(17, 4)).has_value());
}

TEST_F(PersistentStateTest, RejectsFalseCounterExampleClaim) {
  Rng rng(1);
  const auto junk = ramsey::ColoredGraph::random(17, rng);
  ASSERT_FALSE(ramsey::is_counterexample(junk, 4));
  const Status s = mgr.store(best_graph_name(17, 4), ramsey_object(junk, true, 1));
  EXPECT_EQ(s.code(), Err::kRejected);
  EXPECT_EQ(mgr.stores_rejected(), 1u);
  EXPECT_FALSE(mgr.fetch(best_graph_name(17, 4)).has_value());
}

TEST_F(PersistentStateTest, AcceptsNonClaimingIntermediateState) {
  Rng rng(2);
  const auto wip = ramsey::ColoredGraph::random(17, rng);
  const Status s = mgr.store(best_graph_name(17, 4), ramsey_object(wip, false, 1));
  EXPECT_TRUE(s.ok());
}

TEST_F(PersistentStateTest, RejectsOrderMismatch) {
  auto paley = ramsey::ColoredGraph::paley(13);
  const Status s = mgr.store(best_graph_name(17, 4), ramsey_object(*paley, false, 1));
  EXPECT_EQ(s.code(), Err::kRejected);
}

TEST_F(PersistentStateTest, RejectsMalformedObjectName) {
  auto paley = ramsey::ColoredGraph::paley(17);
  const Status s = mgr.store("ramsey/best/oops", ramsey_object(*paley, true, 1));
  EXPECT_EQ(s.code(), Err::kRejected);
}

TEST_F(PersistentStateTest, StaleVersionIsIdempotentNoOp) {
  auto paley = ramsey::ColoredGraph::paley(17);
  EXPECT_TRUE(mgr.store(best_graph_name(17, 4), ramsey_object(*paley, true, 5)).ok());
  // Re-storing staler state succeeds but changes nothing.
  EXPECT_TRUE(mgr.store(best_graph_name(17, 4), ramsey_object(*paley, true, 3)).ok());
  EXPECT_EQ(mgr.stores_stale(), 1u);
  EXPECT_EQ(*gossip::blob_version(*mgr.fetch(best_graph_name(17, 4))), 5u);
  EXPECT_TRUE(mgr.store(best_graph_name(17, 4), ramsey_object(*paley, true, 9)).ok());
  EXPECT_EQ(*gossip::blob_version(*mgr.fetch(best_graph_name(17, 4))), 9u);
}

TEST_F(PersistentStateTest, UnvalidatedPrefixStoresFreely) {
  EXPECT_TRUE(mgr.store("notes/anything", gossip::versioned_blob(1, {1, 2})).ok());
}

TEST_F(PersistentStateTest, RejectsUnversionedBlob) {
  EXPECT_EQ(mgr.store("notes/x", Bytes{1, 2}).code(), Err::kProtocol);
}

TEST_F(PersistentStateTest, NetworkStoreAndFetch) {
  Node client(events, transport, Endpoint{"client", 1});
  ASSERT_TRUE(client.start().ok());
  auto paley = ramsey::ColoredGraph::paley(17);
  StoreRequest req;
  req.name = best_graph_name(17, 4);
  req.blob = ramsey_object(*paley, true, 1);
  std::optional<Result<Bytes>> store_result;
  client.call(node.self(), msgtype::kStateStore, req.serialize(), CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { store_result = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(store_result && store_result->ok());

  Writer w;
  w.str(req.name);
  std::optional<Result<Bytes>> fetch_result;
  client.call(node.self(), msgtype::kStateFetch, w.take(), CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { fetch_result = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(fetch_result && fetch_result->ok());
  EXPECT_EQ(fetch_result->value(), req.blob);
}

TEST_F(PersistentStateTest, NetworkRejectionCarriesMessage) {
  Node client(events, transport, Endpoint{"client", 1});
  ASSERT_TRUE(client.start().ok());
  Rng rng(5);
  StoreRequest req;
  req.name = best_graph_name(17, 4);
  req.blob = ramsey_object(ramsey::ColoredGraph::random(17, rng), true, 1);
  std::optional<Result<Bytes>> got;
  client.call(node.self(), msgtype::kStateStore, req.serialize(), CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kRejected);
  EXPECT_NE(got->error().message.find("mono K4"), std::string::npos);
}

TEST_F(PersistentStateTest, FetchMissingObjectRejected) {
  Node client(events, transport, Endpoint{"client", 1});
  ASSERT_TRUE(client.start().ok());
  Writer w;
  w.str("no/such/object");
  std::optional<Result<Bytes>> got;
  client.call(node.self(), msgtype::kStateFetch, w.take(), CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kRejected);
}

TEST_F(PersistentStateTest, ObjectCapEnforced) {
  PersistentStateManager::Options o;
  o.max_objects = 2;
  Node n2(events, transport, Endpoint{"state2", 1});
  ASSERT_TRUE(n2.start().ok());
  PersistentStateManager small(n2, o);
  small.start();
  EXPECT_TRUE(small.store("a", gossip::versioned_blob(1, {})).ok());
  EXPECT_TRUE(small.store("b", gossip::versioned_blob(1, {})).ok());
  EXPECT_EQ(small.store("c", gossip::versioned_blob(1, {})).code(), Err::kRejected);
  // Updating an existing object is still allowed at the cap.
  EXPECT_TRUE(small.store("a", gossip::versioned_blob(2, {})).ok());
}

// --- File-backed durability -------------------------------------------------

class FileBackedStateTest : public ::testing::Test {
 protected:
  FileBackedStateTest() : transport(events) {
    char tmpl[] = "/tmp/ew_state_XXXXXX";
    dir = mkdtemp(tmpl);
    EXPECT_FALSE(dir.empty());
  }
  ~FileBackedStateTest() override {
    std::filesystem::remove_all(dir);
  }

  std::unique_ptr<PersistentStateManager> make_manager(Node& node) {
    PersistentStateManager::Options o;
    o.storage_dir = dir;
    auto mgr = std::make_unique<PersistentStateManager>(node, o);
    mgr->register_validator("ramsey/best/",
                            PersistentStateManager::ramsey_validator());
    mgr->start();
    return mgr;
  }

  sim::EventQueue events;
  InProcTransport transport;
  std::string dir;
};

TEST_F(FileBackedStateTest, ObjectsSurviveProcessRestart) {
  auto paley = ramsey::ColoredGraph::paley(17);
  const Bytes obj = gossip::versioned_blob(
      7, make_best_graph_body(paley->serialize(), true));
  {
    Node node(events, transport, Endpoint{"state", 402});
    node.start();
    auto mgr = make_manager(node);
    ASSERT_TRUE(mgr->store(best_graph_name(17, 4), obj).ok());
    ASSERT_TRUE(mgr->store("notes/run", gossip::versioned_blob(1, {1, 2})).ok());
    node.stop();
  }
  // A brand-new manager on the same directory recovers everything.
  Node node2(events, transport, Endpoint{"state2", 402});
  node2.start();
  auto mgr2 = make_manager(node2);
  EXPECT_EQ(mgr2->objects_recovered(), 2u);
  auto fetched = mgr2->fetch(best_graph_name(17, 4));
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, obj);
  EXPECT_TRUE(mgr2->fetch("notes/run").has_value());
}

TEST_F(FileBackedStateTest, CorruptedFileRefusedOnRecovery) {
  auto paley = ramsey::ColoredGraph::paley(17);
  {
    Node node(events, transport, Endpoint{"state", 402});
    node.start();
    auto mgr = make_manager(node);
    ASSERT_TRUE(mgr->store(best_graph_name(17, 4),
                           gossip::versioned_blob(
                               7, make_best_graph_body(paley->serialize(), true)))
                    .ok());
    node.stop();
  }
  // Tamper with the stored file: flip graph bytes so the counter-example
  // claim becomes false.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::fstream f(entry.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-4, std::ios::end);
    const char junk[4] = {1, 2, 3, 4};
    f.write(junk, 4);
  }
  Node node2(events, transport, Endpoint{"state2", 402});
  node2.start();
  auto mgr2 = make_manager(node2);
  EXPECT_EQ(mgr2->objects_recovered(), 0u);
  EXPECT_FALSE(mgr2->fetch(best_graph_name(17, 4)).has_value());
}

// --- Torn-write recovery ----------------------------------------------------
//
// A crash can interrupt write_through at any point: mid-write (truncated
// .obj.tmp), after write but before rename (intact orphan tmp), or it can
// leave a damaged final image next to a healthy tmp. start() must recover
// the newest intact version in every case and consume the orphan.

TEST_F(FileBackedStateTest, TruncatedTmpIsRefusedAndCleaned) {
  const Bytes v2 = gossip::versioned_blob(2, {1, 2, 3});
  std::filesystem::path final_path;
  {
    Node node(events, transport, Endpoint{"state", 402});
    node.start();
    auto mgr = make_manager(node);
    ASSERT_TRUE(mgr->store("notes/run", v2).ok());
    node.stop();
  }
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".obj") final_path = e.path();
  }
  ASSERT_FALSE(final_path.empty());
  // A torn write of v3: only the first bytes of the blob made it to disk.
  const Bytes v3 = gossip::versioned_blob(3, {4, 5, 6});
  {
    std::ofstream out(final_path.string() + ".tmp", std::ios::binary);
    out.write(reinterpret_cast<const char*>(v3.data()), 3);
  }
  Node node2(events, transport, Endpoint{"state2", 402});
  node2.start();
  auto mgr2 = make_manager(node2);
  EXPECT_EQ(mgr2->objects_recovered(), 1u);
  auto fetched = mgr2->fetch("notes/run");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, v2);  // the intact final image won
  EXPECT_FALSE(std::filesystem::exists(final_path.string() + ".tmp"));
}

TEST_F(FileBackedStateTest, IntactOrphanTmpRecoversAndPromotes) {
  const Bytes v1 = gossip::versioned_blob(1, {1});
  const Bytes v2 = gossip::versioned_blob(2, {2});
  std::filesystem::path final_path;
  {
    Node node(events, transport, Endpoint{"state", 402});
    node.start();
    auto mgr = make_manager(node);
    ASSERT_TRUE(mgr->store("notes/run", v1).ok());
    node.stop();
  }
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".obj") final_path = e.path();
  }
  ASSERT_FALSE(final_path.empty());
  // Crash landed after writing v2's tmp but before the rename.
  {
    std::ofstream out(final_path.string() + ".tmp", std::ios::binary);
    out.write(reinterpret_cast<const char*>(v2.data()),
              static_cast<std::streamsize>(v2.size()));
  }
  {
    Node node2(events, transport, Endpoint{"state2", 402});
    node2.start();
    auto mgr2 = make_manager(node2);
    EXPECT_EQ(mgr2->objects_recovered(), 1u);
    auto fetched = mgr2->fetch("notes/run");
    ASSERT_TRUE(fetched.has_value());
    EXPECT_EQ(*fetched, v2);  // newest intact version, from the tmp
    node2.stop();
  }
  // The orphan was consumed and v2 promoted to the final image, so a third
  // incarnation no longer depends on the tmp.
  EXPECT_FALSE(std::filesystem::exists(final_path.string() + ".tmp"));
  Node node3(events, transport, Endpoint{"state3", 402});
  node3.start();
  auto mgr3 = make_manager(node3);
  auto fetched = mgr3->fetch("notes/run");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, v2);
}

TEST_F(FileBackedStateTest, GarbledFinalRecoversFromIntactTmp) {
  const Bytes v1 = gossip::versioned_blob(1, {1});
  const Bytes v2 = gossip::versioned_blob(2, {2});
  std::filesystem::path final_path;
  {
    Node node(events, transport, Endpoint{"state", 402});
    node.start();
    auto mgr = make_manager(node);
    ASSERT_TRUE(mgr->store("notes/run", v1).ok());
    node.stop();
  }
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".obj") final_path = e.path();
  }
  ASSERT_FALSE(final_path.empty());
  // The final image is torn (truncated to two bytes) but the next version's
  // tmp survived intact.
  {
    std::ofstream out(final_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(v1.data()), 2);
  }
  {
    std::ofstream out(final_path.string() + ".tmp", std::ios::binary);
    out.write(reinterpret_cast<const char*>(v2.data()),
              static_cast<std::streamsize>(v2.size()));
  }
  Node node2(events, transport, Endpoint{"state2", 402});
  node2.start();
  auto mgr2 = make_manager(node2);
  EXPECT_EQ(mgr2->objects_recovered(), 1u);
  auto fetched = mgr2->fetch("notes/run");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, v2);
}

TEST_F(FileBackedStateTest, SlashAndUnicodeNamesAreFileSafe) {
  Node node(events, transport, Endpoint{"state", 402});
  node.start();
  auto mgr = make_manager(node);
  const std::string weird = "a/b/../c:*?\"<>|\xE2\x98\x83";
  ASSERT_TRUE(mgr->store(weird, gossip::versioned_blob(1, {9})).ok());
  Node node2(events, transport, Endpoint{"state2", 402});
  node2.start();
  auto mgr2 = make_manager(node2);
  ASSERT_TRUE(mgr2->fetch(weird).has_value());
}

TEST(BestGraphName, ParseRoundTrip) {
  const auto parsed = parse_best_graph_name(best_graph_name(42, 5));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->n, 42);
  EXPECT_EQ(parsed->k, 5);
  EXPECT_FALSE(parse_best_graph_name("other/name").has_value());
  EXPECT_FALSE(parse_best_graph_name("ramsey/best/42").has_value());
  EXPECT_FALSE(parse_best_graph_name("ramsey/best/x/y").has_value());
}

}  // namespace
}  // namespace ew::core
