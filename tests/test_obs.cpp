// The observability layer (DESIGN.md §8): registry instruments, the trace
// ring, snapshot determinism under the sim clock, and the pin that tracing
// is pure observation — enabling it cannot change what the system does.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/call_policy.hpp"
#include "net/node.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator: enough grammar to certify that snapshot_json()
// and to_json() emit well-formed documents without a JSON dependency.

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // skip the escaped character
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Histogram bucket boundaries.

TEST(ObsHistogram, BucketBoundariesArePowersOfTwo) {
  obs::Histogram h;
  h.record(0);  // exact zeros land in bucket 0
  EXPECT_EQ(h.bucket(0), 1u);

  h.record(1);  // bit width 1
  EXPECT_EQ(h.bucket(1), 1u);

  h.record(2);  // [2,3] is bucket 2
  h.record(3);
  EXPECT_EQ(h.bucket(2), 2u);
  h.record(4);  // [4,7] is bucket 3
  h.record(7);
  EXPECT_EQ(h.bucket(3), 2u);
  h.record(8);  // boundary: 8 moves up to bucket 4
  EXPECT_EQ(h.bucket(4), 1u);

  h.record(std::uint64_t{1} << 32);  // bit width 33
  EXPECT_EQ(h.bucket(33), 1u);
  h.record(~std::uint64_t{0});  // bit width 64: the top bucket
  EXPECT_EQ(h.bucket(64), 1u);

  EXPECT_EQ(h.count(), 9u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 7 + 8 + (std::uint64_t{1} << 32) +
                         ~std::uint64_t{0});

  EXPECT_EQ(obs::Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(obs::Histogram::bucket_upper(64), ~std::uint64_t{0});

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(64), 0u);
}

// ---------------------------------------------------------------------------
// Registry basics: labeled instruments, stable references, snapshot shape.

TEST(ObsRegistry, InstrumentsAreStableAndLabeled) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.events");
  obs::Counter& a2 = reg.counter("x.events");
  EXPECT_EQ(&a, &a2);  // find-or-create returns the same instrument

  reg.counter("x.events", "east").inc(2);
  reg.counter("x.events", "west").inc(3);
  a.inc();
  reg.gauge("x.level").set(1.5);
  reg.gauge("x.level").add(0.25);
  reg.histogram("x.wait_us").record(100);

  EXPECT_EQ(reg.instrument_count(), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("x.level").value(), 1.75);

  const std::string json = reg.snapshot_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"x.events\":1"), std::string::npos);
  EXPECT_NE(json.find("\"x.events{east}\":2"), std::string::npos);
  EXPECT_NE(json.find("\"x.events{west}\":3"), std::string::npos);

  reg.reset();  // zeroes values, keeps registrations and references
  EXPECT_EQ(reg.instrument_count(), 5u);
  EXPECT_EQ(a.value(), 0u);
  a.inc(7);
  EXPECT_EQ(reg.counter("x.events").value(), 7u);
}

TEST(ObsRegistry, SnapshotIsByteIdenticalForIdenticalState) {
  auto build = [] {
    obs::Registry reg;
    reg.counter("b.count").inc(41);
    reg.gauge("b.level").set(2.5);
    reg.histogram("b.lat_us").record(17);
    reg.histogram("b.lat_us").record(1 << 20);
    return reg.snapshot_json();
  };
  EXPECT_EQ(build(), build());
}

// The ctest mandatory-set check: the process-wide registry's snapshot always
// parses and contains every core instrument, even before any subsystem ran.
TEST(ObsRegistry, ProcessSnapshotContainsMandatoryInstruments) {
  const std::string json = obs::snapshot_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  for (const char* name : obs::mandatory_counters()) {
    std::string needle = "\"";
    needle.append(name).append("\":");
    EXPECT_NE(json.find(needle), std::string::npos)
        << "missing counter " << name;
  }
  for (const char* name : obs::mandatory_histograms()) {
    std::string needle = "\"";
    needle.append(name).append("\":{");
    EXPECT_NE(json.find(needle), std::string::npos)
        << "missing histogram " << name;
  }
}

// ---------------------------------------------------------------------------
// Trace ring.

TEST(ObsTrace, RingEvictsOldestAndPreservesTotal) {
  obs::TraceRecorder rec(4);
  rec.set_enabled(true);
  const std::uint32_t tag = rec.intern("t");
  for (int i = 1; i <= 7; ++i) {
    rec.record(i, obs::SpanKind::kCallAttempt, tag, i, 0);
  }
  EXPECT_EQ(rec.total(), 7u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 3u);

  const std::vector<obs::SpanEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].at, i + 4);  // oldest → 4
  }

  const std::string json = rec.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"total\":7"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":3"), std::string::npos);

  // clear() drops events but keeps interned ids valid.
  rec.clear();
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_EQ(rec.intern("t"), tag);
  EXPECT_EQ(rec.tag_name(tag), "t");
  // reset() forgets the intern table too.
  rec.reset();
  EXPECT_EQ(rec.tag_name(tag), "");
}

TEST(ObsTrace, DisabledRecorderRecordsNothing) {
  obs::TraceRecorder rec(8);
  rec.record(1, obs::SpanKind::kSchedDispatch);
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_FALSE(rec.enabled());
}

// ---------------------------------------------------------------------------
// Determinism under the sim clock, and the "obs off changes nothing" pin.

constexpr MsgType kOp = 0x42;

struct SimRun {
  std::uint64_t ok_calls = 0;
  std::uint64_t packets = 0;
  TimePoint end_clock = 0;
  std::string trace_json;
};

/// A small lossy client/server workload; every decision point in the call
/// layer fires (attempts, retries, hedges, timeouts) so the trace has real
/// content. Identical seeds must produce identical worlds.
SimRun run_sim_workload(bool tracing) {
  obs::trace().reset();
  obs::trace().set_enabled(tracing);

  sim::EventQueue events;
  sim::NetworkModel network{Rng(42)};
  network.set_site("cli", "east");
  network.set_site("srv", "west");
  sim::SimTransport transport(events, network);
  Node server(events, transport, Endpoint{"srv", 1});
  Node client(events, transport, Endpoint{"cli", 1});
  server.start();
  client.start();
  server.handle(kOp, [](const IncomingMessage& m, Responder r) {
    r.ok(m.packet.payload);
  });

  // Lossless warm-up so the forecaster learns the RTT, then open the tap.
  for (int i = 0; i < 32; ++i) {
    events.schedule(static_cast<Duration>(i) * (100 * kMillisecond), [&] {
      client.call(server.self(), kOp, {0}, CallOptions{}, [](Result<Bytes>) {});
    });
  }
  events.run_until_idle();
  network.set_loss_rate(0.15);

  SimRun out;
  CallOptions opts;
  opts.retry = RetryPolicy::standard(3);
  opts.hedge = HedgePolicy::at(0.97);
  for (int i = 0; i < 80; ++i) {
    events.schedule(static_cast<Duration>(i) * (150 * kMillisecond), [&] {
      client.call(server.self(), kOp, {1}, opts, [&](Result<Bytes> r) {
        if (r.ok()) ++out.ok_calls;
      });
    });
  }
  events.run_until_idle();

  out.packets = transport.packets_sent();
  out.end_clock = events.clock().now();
  out.trace_json = obs::trace().to_json();
  client.stop();
  server.stop();
  obs::trace().set_enabled(false);
  return out;
}

TEST(ObsDeterminism, TraceReplaysBitIdenticalUnderSimClock) {
  const SimRun a = run_sim_workload(true);
  const SimRun b = run_sim_workload(true);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_GT(obs::trace().total(), 0u) << "workload recorded no spans";
  EXPECT_TRUE(JsonValidator(a.trace_json).valid());
  // The registry side of the same guarantee: identical runs, identical doc.
  obs::registry().reset();
  const SimRun c = run_sim_workload(true);
  const std::string snap_c = obs::snapshot_json();
  obs::registry().reset();
  const SimRun d = run_sim_workload(true);
  const std::string snap_d = obs::snapshot_json();
  EXPECT_EQ(snap_c, snap_d);
  EXPECT_EQ(c.trace_json, d.trace_json);
}

TEST(ObsDeterminism, TracingIsPureObservation) {
  // The seed-behavior pin: with obs off the workload must do exactly what
  // it does with obs on — same completions, same packets, same clock.
  const SimRun off = run_sim_workload(false);
  const SimRun on = run_sim_workload(true);
  EXPECT_EQ(off.ok_calls, on.ok_calls);
  EXPECT_EQ(off.packets, on.packets);
  EXPECT_EQ(off.end_clock, on.end_clock);
  // And with obs off, nothing is recorded.
  EXPECT_EQ(off.trace_json.find("\"events\":[]") != std::string::npos, true)
      << off.trace_json;
}

// ---------------------------------------------------------------------------
// The CallStatsSink bridge: a default-constructed AggregateCallStats owns a
// private registry (bench isolation) that callers read by obs::names key.

TEST(ObsCallStats, DefaultSinkIsIsolatedFromProcessRegistry) {
  obs::registry().reset();
  AggregateCallStats local;
  local.record_call_start();
  local.record_attempt(false, false);
  local.record_attempt(true, false);
  local.record_attempt(false, true);
  local.record_timeout(250 * kMillisecond);
  local.record_late_response(true);
  local.record_hedge_result(true);
  local.record_call_end(true, 10 * kMillisecond);
  local.record_breaker_transition(0, 1);  // closed -> open

  obs::Registry& r = local.registry();
  EXPECT_EQ(r.counter(obs::names::kNetCallsStarted).value(), 1u);
  EXPECT_EQ(r.counter(obs::names::kNetCallsOk).value(), 1u);
  EXPECT_EQ(r.counter(obs::names::kNetAttempts).value(), 3u);
  EXPECT_EQ(r.counter(obs::names::kNetRetries).value(), 1u);
  EXPECT_EQ(r.counter(obs::names::kNetHedges).value(), 1u);
  EXPECT_EQ(r.counter(obs::names::kNetHedgeWins).value(), 1u);
  EXPECT_EQ(r.counter(obs::names::kNetTimeoutsFired).value(), 1u);
  EXPECT_EQ(r.counter(obs::names::kNetLateResponses).value(), 1u);
  EXPECT_EQ(r.counter(obs::names::kNetLateRescues).value(), 1u);
  EXPECT_EQ(r.histogram(obs::names::kNetTimeoutWaitUs).sum(), 250'000u);
  EXPECT_EQ(r.histogram(obs::names::kNetCallLatencyUs).sum(), 10'000u);

  // Nothing leaked into the process-wide registry.
  EXPECT_EQ(obs::registry().counter(obs::names::kNetCallsStarted).value(), 0u);
  EXPECT_EQ(obs::registry().counter(obs::names::kNetAttempts).value(), 0u);

  local.reset();
  EXPECT_EQ(r.counter(obs::names::kNetAttempts).value(), 0u);
}

TEST(ObsCallStats, BreakerTransitionCountsOpensOnly) {
  AggregateCallStats local;
  local.record_breaker_transition(0, 1);  // closed -> open
  local.record_breaker_transition(1, 2);  // open -> half-open: not an open
  local.record_breaker_transition(2, 1);  // half-open -> open
  EXPECT_EQ(local.registry().counter(obs::names::kNetBreakerOpened).value(), 2u);
}

}  // namespace
}  // namespace ew
