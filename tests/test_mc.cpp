// Model-checker tests: the EventQueue choice-point surface (eligible /
// step_event / cancel-during-dispatch) and the Explorer itself (exploration
// determinism, sleep-set reduction soundness, the seeded no-dedupe scheduler
// bug's minimized repro). The heavyweight exhaustive gates live in
// bench/mc_explore (ctest: mc_smoke); these pin the mechanisms.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/mc/explorer.hpp"
#include "sim/mc/fixtures.hpp"

namespace ew::sim {
namespace {

// ---- Choice-point API: eligible() / step_event() ------------------------

TEST(EventQueueChoice, EligibleListsSameTimeEventsInFifoOrder) {
  EventQueue q;
  int ran = 0;
  TimerId a = q.schedule(5, [&] { ran = 1; });
  TimerId b = q.schedule(5, [&] { ran = 2; });
  q.schedule(9, [&] { ran = 3; });  // later: must not be eligible

  auto elig = q.eligible();
  ASSERT_EQ(elig.size(), 2u);
  EXPECT_EQ(elig[0].id, a);
  EXPECT_EQ(elig[1].id, b);
  EXPECT_LT(elig[0].seq, elig[1].seq);
  EXPECT_EQ(elig[0].at, 5);

  // Firing eligible()[0] is exactly step().
  EXPECT_TRUE(q.step());
  EXPECT_EQ(ran, 1);
}

TEST(EventQueueChoice, StepEventFiresOutOfFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&] { order.push_back(0); });
  TimerId b = q.schedule(5, [&] { order.push_back(1); });
  q.schedule(5, [&] { order.push_back(2); });

  EXPECT_TRUE(q.step_event(b));  // fire the middle event first
  EXPECT_TRUE(q.step());
  EXPECT_TRUE(q.step());
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(EventQueueChoice, StepEventRejectsNonEligibleAndUnknownIds) {
  EventQueue q;
  int ran = 0;
  q.schedule(5, [&] { ran += 1; });
  TimerId later = q.schedule(9, [&] { ran += 10; });

  EXPECT_FALSE(q.step_event(later));       // not at the earliest timestamp
  EXPECT_FALSE(q.step_event(9999));        // unknown id
  EXPECT_EQ(ran, 0);                       // nothing fired
  EXPECT_EQ(q.pending(), 2u);

  q.run_until_idle();
  EXPECT_EQ(ran, 11);
  EXPECT_FALSE(q.step_event(later));  // already fired: id is gone
}

// ---- cancel() during same-time dispatch ---------------------------------

TEST(EventQueueCancel, SelfCancelInsideOwnClosureIsNoOp) {
  EventQueue q;
  int ran = 0;
  TimerId self = kInvalidTimer;
  self = q.schedule(5, [&] {
    q.cancel(self);  // the firing event's mapping is already gone
    ran = 1;
  });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.pending(), 0u);
  // The queue stays healthy: new work schedules and runs normally.
  q.schedule(1, [&] { ran = 2; });
  q.run_until_idle();
  EXPECT_EQ(ran, 2);
}

TEST(EventQueueCancel, SiblingCancelledMidDispatchNeverFires) {
  EventQueue q;
  int ran_b = 0;
  TimerId b = kInvalidTimer;
  q.schedule(5, [&] { q.cancel(b); });   // A cancels same-time sibling B
  b = q.schedule(5, [&] { ran_b = 1; });

  ASSERT_EQ(q.eligible().size(), 2u);
  EXPECT_TRUE(q.step());                 // runs A, which cancels B
  EXPECT_EQ(q.eligible().size(), 0u);    // B is gone, not still eligible
  EXPECT_FALSE(q.step_event(b));         // a chosen-but-cancelled id refuses
  EXPECT_FALSE(q.step());
  EXPECT_EQ(ran_b, 0);
}

TEST(EventQueueCancel, DoubleCancelIsNoOp) {
  EventQueue q;
  int ran = 0;
  TimerId a = q.schedule(5, [&] { ran = 1; });
  q.schedule(5, [&] { ran += 10; });
  q.cancel(a);
  q.cancel(a);  // second cancel of the same id: harmless
  q.run_until_idle();
  EXPECT_EQ(ran, 10);
}

TEST(EventQueueChoice, LabelsInheritFromTheFiringEvent) {
  EventQueue q;
  TimerId child = kInvalidTimer;
  {
    EventQueue::LabelScope scope(q, "hostA");
    q.schedule(5, [&] {
      // Scheduled while a "hostA"-labelled event runs: inherits the label.
      child = q.schedule(3, [] {});
    });
  }
  q.schedule(5, [] {});  // outside the scope: unlabelled

  auto elig = q.eligible();
  ASSERT_EQ(elig.size(), 2u);
  EXPECT_EQ(elig[0].label, "hostA");
  EXPECT_EQ(elig[1].label, "");

  EXPECT_TRUE(q.step());  // fire the labelled parent
  auto elig2 = q.eligible();
  ASSERT_EQ(elig2.size(), 1u);
  EXPECT_EQ(elig2[0].label, "");  // the unlabelled sibling is next (t=5)
  EXPECT_TRUE(q.step());
  auto elig3 = q.eligible();
  ASSERT_EQ(elig3.size(), 1u);
  EXPECT_EQ(elig3[0].id, child);
  EXPECT_EQ(elig3[0].label, "hostA");  // inherited, no LabelScope in sight
}

}  // namespace
}  // namespace ew::sim

namespace ew::sim::mc {
namespace {

constexpr std::uint64_t kSeed = 0x5eed0901;

Options small_clique_opts() {
  Options o;
  o.max_steps = 8;
  o.window = 8 * kSecond;
  return o;
}

Options sched_opts() {
  Options o;
  o.max_steps = 8;
  o.window = 3 * kSecond;
  return o;
}

// ---- Explorer ------------------------------------------------------------

TEST(Explorer, ExplorationIsDeterministic) {
  auto factory = [] { return make_clique_world(kSeed); };
  Report a = Explorer(factory, small_clique_opts()).explore();
  Report b = Explorer(factory, small_clique_opts()).explore();
  EXPECT_EQ(a.branches, b.branches);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.choice_points, b.choice_points);
  EXPECT_EQ(a.sleep_pruned, b.sleep_pruned);
  EXPECT_EQ(a.fingerprints, b.fingerprints);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(Explorer, SleepSetReductionPrunesButPreservesOutcomes) {
  auto factory = [] { return make_clique_world(kSeed); };
  Options on = small_clique_opts();
  Options off = small_clique_opts();
  off.reduce = false;
  Report reduced = Explorer(factory, on).explore();
  Report naive = Explorer(factory, off).explore();

  EXPECT_TRUE(reduced.ok()) << "clique world must be violation-free";
  EXPECT_TRUE(naive.ok());
  EXPECT_LT(reduced.branches, naive.branches);  // pruning actually happened
  EXPECT_GT(reduced.sleep_pruned, 0u);
  // Soundness: the reduced run visits every end state the naive run saw.
  EXPECT_EQ(reduced.fingerprints, naive.fingerprints);
}

TEST(Explorer, DedupeSchedulerWorldIsViolationFree) {
  Report r = Explorer([] { return make_sched_world(kSeed, /*dedupe=*/true); },
                      sched_opts())
                 .explore();
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.violations.empty());
  EXPECT_GE(r.branches, 1u);
}

TEST(Explorer, SeededNoDedupeBugCaughtWithMinimalDeterministicRepro) {
  Options o = sched_opts();
  o.stop_at_first_violation = true;
  auto factory = [] { return make_sched_world(kSeed, /*dedupe=*/false); };
  Report r = Explorer(factory, o).explore();

  ASSERT_FALSE(r.violations.empty())
      << "the no-dedupe lease divergence must be reachable";
  const Violation& v = r.violations.front();
  EXPECT_LE(v.repro.choices.size(), 20u);  // the ISSUE's repro-length gate
  EXPECT_TRUE(v.replay_deterministic);
  // The minimized repro is sparse: every surviving choice is non-default.
  for (const auto& [step, choice] : v.repro.choices) {
    EXPECT_FALSE(choice.is_default()) << "minimize left a default at " << step;
  }
  // Replaying the repro from scratch reproduces the same violation text.
  std::vector<std::string> replayed =
      Explorer(factory, o).replay(v.repro);
  EXPECT_EQ(replayed, v.messages);
}

TEST(Explorer, ReplayOfDefaultBranchIsClean) {
  // An empty repro = the pure FIFO branch, which matches what the seeded
  // chaos-free sim does: it must be violation-free in every world.
  for (auto* make : {&make_clique_world, &make_gossip_world}) {
    auto factory = [make] { return (*make)(kSeed); };
    Repro fifo;
    fifo.world = factory()->name();
    Options o;
    o.max_steps = 4;
    o.window = 2 * kSecond;
    std::vector<std::string> v = Explorer(factory, o).replay(fifo);
    EXPECT_TRUE(v.empty()) << fifo.world << ": " << (v.empty() ? "" : v[0]);
  }
}

TEST(Explorer, ReproToStringRoundTripsTheShape) {
  Repro r;
  r.world = "sched-nodedupe";
  r.choices.push_back({4, Choice{Choice::Kind::kEvent, 1}});
  r.choices.push_back({7, Choice{Choice::Kind::kFault, 0}});
  EXPECT_EQ(r.to_string(), "world=sched-nodedupe steps: 4:ev[1] 7:fault[0]");
}

}  // namespace
}  // namespace ew::sim::mc
