// Tests for the instrumented clique-counting kernels: agreement with the
// reference enumerator, incremental flip deltas, classical identities, and
// the operation counter.
#include <gtest/gtest.h>

#include "ramsey/clique.hpp"

namespace ew::ramsey {
namespace {

// --- Agreement with the reference enumerator (property sweep) ------------------

struct CountCase {
  int n;
  int k;
  std::uint64_t seed;
};

class CliqueCountProperty : public ::testing::TestWithParam<CountCase> {};

TEST_P(CliqueCountProperty, BitmaskMatchesReference) {
  const auto [n, k, seed] = GetParam();
  Rng rng(seed);
  const ColoredGraph g = ColoredGraph::random(n, rng);
  OpsCounter ops;
  for (Color c : {Color::kRed, Color::kBlue}) {
    EXPECT_EQ(count_mono_cliques(g, k, c, ops),
              count_mono_cliques_reference(g, k, c))
        << "n=" << n << " k=" << k << " seed=" << seed;
  }
  EXPECT_GT(ops.ops, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CliqueCountProperty,
    ::testing::Values(CountCase{4, 2, 1}, CountCase{6, 3, 1}, CountCase{6, 3, 2},
                      CountCase{8, 3, 3}, CountCase{8, 4, 4}, CountCase{10, 3, 5},
                      CountCase{10, 4, 6}, CountCase{12, 4, 7}, CountCase{12, 5, 8},
                      CountCase{14, 4, 9}, CountCase{16, 5, 10},
                      CountCase{9, 6, 11}, CountCase{11, 2, 12}));

// --- Classical identities --------------------------------------------------------

TEST(CliqueCount, K2CountsEdges) {
  Rng rng(1);
  const ColoredGraph g = ColoredGraph::random(10, rng);
  OpsCounter ops;
  const auto red = count_mono_cliques(g, 2, Color::kRed, ops);
  const auto blue = count_mono_cliques(g, 2, Color::kBlue, ops);
  EXPECT_EQ(red, static_cast<std::uint64_t>(g.red_edge_count()));
  EXPECT_EQ(red + blue, static_cast<std::uint64_t>(g.edge_count()));
}

TEST(CliqueCount, AllOneColorIsBinomial) {
  ColoredGraph g(10);  // all blue
  OpsCounter ops;
  EXPECT_EQ(count_mono_cliques(g, 4, Color::kBlue, ops), 210u);  // C(10,4)
  EXPECT_EQ(count_mono_cliques(g, 4, Color::kRed, ops), 0u);
}

TEST(CliqueCount, GoodmanBoundOnK6) {
  // R(3,3)=6 with Goodman's bound: every 2-coloring of K6 has >= 2
  // monochromatic triangles.
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const ColoredGraph g = ColoredGraph::random(6, rng);
    OpsCounter ops;
    EXPECT_GE(count_bad_cliques(g, 3, ops), 2u);
  }
}

TEST(CliqueCount, C5HasZeroMonoTriangles) {
  auto g = ColoredGraph::circulant(5, {1, 4});
  OpsCounter ops;
  EXPECT_EQ(count_bad_cliques(*g, 3, ops), 0u);
}

TEST(CliqueCount, Paley17HasZeroMonoK4) {
  auto g = ColoredGraph::paley(17);
  OpsCounter ops;
  EXPECT_EQ(count_bad_cliques(*g, 4, ops), 0u);
}

TEST(CliqueCount, InvalidKThrows) {
  ColoredGraph g(5);
  OpsCounter ops;
  EXPECT_THROW(count_mono_cliques(g, 1, Color::kRed, ops), std::invalid_argument);
  EXPECT_THROW(count_mono_cliques(g, 9, Color::kRed, ops), std::invalid_argument);
}

// --- cliques_through_edge ----------------------------------------------------------

TEST(CliquesThroughEdge, SumOverEdgesCountsEachCliqueChoose2Times) {
  // Every mono k-clique contains C(k,2) edges, so summing the per-edge
  // counts over the clique's own-color edges counts each clique C(k,2)x.
  Rng rng(23);
  const int n = 10, k = 4;
  const ColoredGraph g = ColoredGraph::random(n, rng);
  OpsCounter ops;
  for (Color c : {Color::kRed, Color::kBlue}) {
    std::uint64_t edge_sum = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (g.color(i, j) == c) edge_sum += cliques_through_edge(g, k, i, j, c, ops);
      }
    }
    EXPECT_EQ(edge_sum, count_mono_cliques(g, k, c, ops) * 6);  // C(4,2)=6
  }
}

// --- flip_delta ----------------------------------------------------------------------

class FlipDeltaProperty : public ::testing::TestWithParam<int> {};

TEST_P(FlipDeltaProperty, DeltaMatchesRecount) {
  const int k = GetParam();
  Rng rng(static_cast<std::uint64_t>(k) * 31 + 5);
  ColoredGraph g = ColoredGraph::random(12, rng);
  OpsCounter ops;
  std::uint64_t energy = count_bad_cliques(g, k, ops);
  for (int step = 0; step < 300; ++step) {
    const int i = static_cast<int>(rng.below(12));
    int j = static_cast<int>(rng.below(11));
    if (j >= i) ++j;
    const std::int64_t delta = flip_delta(g, k, i, j, ops);
    g.flip(i, j);
    const std::uint64_t recount = count_bad_cliques(g, k, ops);
    ASSERT_EQ(static_cast<std::int64_t>(recount),
              static_cast<std::int64_t>(energy) + delta)
        << "k=" << k << " step=" << step;
    energy = recount;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, FlipDeltaProperty, ::testing::Values(3, 4, 5));

TEST(FlipDelta, K2IsAlwaysZero) {
  Rng rng(9);
  ColoredGraph g = ColoredGraph::random(6, rng);
  OpsCounter ops;
  EXPECT_EQ(flip_delta(g, 2, 0, 1, ops), 0);
}

// --- Asymmetric Ramsey energies -----------------------------------------------------

TEST(AsymmetricEnergy, MatchesPerColorCounts) {
  Rng rng(41);
  const ColoredGraph g = ColoredGraph::random(11, rng);
  OpsCounter ops;
  EXPECT_EQ(count_bad_cliques(g, 3, 4, ops),
            count_mono_cliques(g, 3, Color::kRed, ops) +
                count_mono_cliques(g, 4, Color::kBlue, ops));
}

TEST(AsymmetricEnergy, SymmetricCaseUnchanged) {
  Rng rng(43);
  const ColoredGraph g = ColoredGraph::random(12, rng);
  OpsCounter ops;
  EXPECT_EQ(count_bad_cliques(g, 4, ops), count_bad_cliques(g, 4, 4, ops));
}

TEST(AsymmetricEnergy, WagnerGraphWitnessesR34) {
  // The circulant C8(1,4) (Wagner graph) is triangle-free and its
  // complement has no K4: it proves R(3,4) > 8 (R(3,4) = 9).
  auto g = ColoredGraph::circulant(8, {1, 4, 7});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(is_counterexample(*g, 3, 4));
  EXPECT_FALSE(is_counterexample(*g, 3, 3));  // the blue side has triangles
}

TEST(AsymmetricEnergy, OrderOfArgumentsMatters) {
  auto g = ColoredGraph::circulant(8, {1, 4, 7});
  ASSERT_TRUE(g.ok());
  // Swapped: red would need to be K4-free (it trivially is, being
  // triangle-free) but blue must now be triangle-free — it is not.
  EXPECT_FALSE(is_counterexample(*g, 4, 3));
}

class AsymmetricFlipDelta : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AsymmetricFlipDelta, DeltaMatchesRecount) {
  const auto [kr, kb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(kr * 100 + kb));
  ColoredGraph g = ColoredGraph::random(11, rng);
  OpsCounter ops;
  std::uint64_t energy = count_bad_cliques(g, kr, kb, ops);
  for (int step = 0; step < 200; ++step) {
    const int i = static_cast<int>(rng.below(11));
    int j = static_cast<int>(rng.below(10));
    if (j >= i) ++j;
    const std::int64_t delta = flip_delta(g, kr, kb, i, j, ops);
    g.flip(i, j);
    const std::uint64_t recount = count_bad_cliques(g, kr, kb, ops);
    ASSERT_EQ(static_cast<std::int64_t>(recount),
              static_cast<std::int64_t>(energy) + delta)
        << "kr=" << kr << " kb=" << kb << " step=" << step;
    energy = recount;
  }
}

INSTANTIATE_TEST_SUITE_P(Pairs, AsymmetricFlipDelta,
                         ::testing::Values(std::make_pair(3, 4),
                                           std::make_pair(4, 3),
                                           std::make_pair(2, 5),
                                           std::make_pair(3, 6)));

// --- OpsCounter ------------------------------------------------------------------------

TEST(OpsCounter, ChargesAccumulate) {
  OpsCounter ops;
  ops.charge(5);
  ops.charge(7);
  EXPECT_EQ(ops.ops, 12u);
}

TEST(OpsCounter, CountScalesWithProblemSize) {
  Rng rng(11);
  OpsCounter small, large;
  const ColoredGraph a = ColoredGraph::random(8, rng);
  const ColoredGraph b = ColoredGraph::random(32, rng);
  count_bad_cliques(a, 4, small);
  count_bad_cliques(b, 4, large);
  EXPECT_GT(large.ops, small.ops * 10);
}

}  // namespace
}  // namespace ew::ramsey
