// Deterministic fuzz tests: every wire decoder must survive arbitrary bytes
// (returning an error or a valid object, never crashing or reading out of
// bounds) — the lingua franca's peers are federated machines the paper's
// toolkit explicitly does not trust to be well-behaved.
#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "core/server_directory.hpp"
#include "gossip/protocol.hpp"
#include "net/packet.hpp"
#include "nws/nws.hpp"
#include "ramsey/graph.hpp"
#include "ramsey/workunit.hpp"

namespace ew {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.below(max_len + 1);
  Bytes out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

/// Each decoder under test, type-erased to "parse and tell me if it was ok".
using Decoder = std::function<bool(const Bytes&)>;

std::vector<std::pair<const char*, Decoder>> decoders() {
  return {
      {"ColoredGraph",
       [](const Bytes& b) { return ramsey::ColoredGraph::deserialize(b).ok(); }},
      {"WorkSpec", [](const Bytes& b) { return ramsey::WorkSpec::deserialize(b).ok(); }},
      {"WorkReport",
       [](const Bytes& b) { return ramsey::WorkReport::deserialize(b).ok(); }},
      {"Registration",
       [](const Bytes& b) { return gossip::Registration::deserialize(b).ok(); }},
      {"Digest", [](const Bytes& b) { return gossip::Digest::deserialize(b).ok(); }},
      {"Delta", [](const Bytes& b) { return gossip::Delta::deserialize(b).ok(); }},
      {"ParentDigest",
       [](const Bytes& b) { return gossip::ParentDigest::deserialize(b).ok(); }},
      {"GossipBlobList",
       [](const Bytes& b) { return gossip::deserialize_blob_list(b).ok(); }},
      {"PollRequest",
       [](const Bytes& b) { return gossip::PollRequest::deserialize(b).ok(); }},
      {"PollReply",
       [](const Bytes& b) { return gossip::PollReply::deserialize(b).ok(); }},
      {"View", [](const Bytes& b) { return gossip::View::deserialize(b).ok(); }},
      {"Token", [](const Bytes& b) { return gossip::Token::deserialize(b).ok(); }},
      {"ClientHello",
       [](const Bytes& b) { return core::ClientHello::deserialize(b).ok(); }},
      {"ReportBatch",
       [](const Bytes& b) { return core::ReportBatch::deserialize(b).ok(); }},
      {"DirectiveBatch",
       [](const Bytes& b) { return core::DirectiveBatch::deserialize(b).ok(); }},
      {"LogRecord", [](const Bytes& b) { return core::LogRecord::deserialize(b).ok(); }},
      {"StoreRequest",
       [](const Bytes& b) { return core::StoreRequest::deserialize(b).ok(); }},
      {"ServerList",
       [](const Bytes& b) { return core::ServerList::deserialize(b).ok(); }},
      {"NwsMeasurement",
       [](const Bytes& b) { return nws::NwsMeasurement::deserialize(b).ok(); }},
      {"NwsForecastReply",
       [](const Bytes& b) { return nws::NwsForecastReply::deserialize(b).ok(); }},
  };
}

TEST(Fuzz, DecodersSurviveRandomBytes) {
  Rng rng(0xF00D);
  for (const auto& [name, decode] : decoders()) {
    int accepted = 0;
    for (int i = 0; i < 3000; ++i) {
      const Bytes junk = random_bytes(rng, 256);
      accepted += decode(junk) ? 1 : 0;  // must simply not crash
    }
    // Random bytes should almost never be a valid object for the structured
    // formats (a tiny accept rate is fine for the smallest encodings).
    EXPECT_LT(accepted, 600) << name;
  }
}

TEST(Fuzz, DecodersSurviveBitflippedValidEncodings) {
  // Take valid encodings and flip one byte at a time: the decoder must
  // return ok-or-error, never crash, for every single-byte corruption.
  Rng rng(0xBEEF);
  ramsey::WorkSpec spec;
  spec.resume = ramsey::ColoredGraph::random(12, rng);
  gossip::Token token;
  token.view.leader = Endpoint{"leader", 1};
  token.view.members = {Endpoint{"leader", 1}, Endpoint{"m", 2}};
  token.visited = {Endpoint{"leader", 1}};
  gossip::PollReply poll_reply;
  poll_reply.blobs.push_back(
      gossip::StateBlob{7, ramsey::ColoredGraph::random(8, rng).serialize()});
  core::ReportBatch batch;
  batch.client = Endpoint{"client", 2000};
  batch.seq = 7;
  batch.want_units = 3;
  for (int i = 0; i < 3; ++i) {
    ramsey::WorkReport rep;
    rep.unit_id = static_cast<std::uint64_t>(i + 1);
    rep.ops_done = 1000;
    rep.best_energy = 40;
    rep.best_graph = ramsey::ColoredGraph::random(8, rng).serialize();
    batch.reports.push_back(std::move(rep));
  }
  core::DirectiveBatch dir;
  dir.revoke = {9, 11};
  dir.assign.push_back(spec);

  const std::vector<std::pair<Bytes, Decoder>> cases = {
      {spec.serialize(),
       [](const Bytes& b) { return ramsey::WorkSpec::deserialize(b).ok(); }},
      {token.serialize(),
       [](const Bytes& b) { return gossip::Token::deserialize(b).ok(); }},
      {poll_reply.serialize(),
       [](const Bytes& b) { return gossip::PollReply::deserialize(b).ok(); }},
      {batch.serialize(),
       [](const Bytes& b) { return core::ReportBatch::deserialize(b).ok(); }},
      {dir.serialize(),
       [](const Bytes& b) { return core::DirectiveBatch::deserialize(b).ok(); }},
  };
  for (const auto& [wire, decode] : cases) {
    for (std::size_t pos = 0; pos < wire.size(); ++pos) {
      for (std::uint8_t flip : {0x01, 0x80, 0xFF}) {
        Bytes mutated = wire;
        mutated[pos] ^= flip;
        decode(mutated);  // must not crash; result value is irrelevant
      }
    }
    // Truncations at every length must also be safe.
    for (std::size_t len = 0; len < wire.size(); ++len) {
      decode(Bytes(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len)));
    }
  }
}

TEST(Fuzz, SchedBatchDecodersRejectHugeCounts) {
  // A hostile peer can claim an enormous element count in a tiny payload;
  // the batch decoders must reject it up front instead of reserving memory
  // for elements the stream cannot possibly contain.
  {
    Writer w;
    core::write_sched_header(w, core::msgtype::kSchedDirectiveBatch);
    w.u32(0xFFFF'FFFFu);  // revoke count far beyond the remaining bytes
    EXPECT_FALSE(core::DirectiveBatch::deserialize(w.take()).ok());
  }
  {
    Writer w;
    core::write_sched_header(w, core::msgtype::kSchedDirectiveBatch);
    w.u32(0);                               // no revokes
    w.u32(core::kMaxSchedBatch + 1);        // assign count above the hard cap
    EXPECT_FALSE(core::DirectiveBatch::deserialize(w.take()).ok());
  }
  {
    Writer w;
    core::write_sched_header(w, core::msgtype::kSchedReportBatch);
    gossip::write_endpoint(w, Endpoint{"c", 1});
    w.u64(1);            // seq
    w.u32(1);            // want_units
    w.u32(0xFFFF'FFFFu); // report count far beyond the remaining bytes
    EXPECT_FALSE(core::ReportBatch::deserialize(w.take()).ok());
  }
}

TEST(Fuzz, SchedEnvelopeRejectsBadVersionAndKind) {
  // Future wire versions must be refused rather than misparsed...
  {
    Writer w;
    w.u8(core::kSchedWireVersion + 1);
    w.u16(static_cast<std::uint16_t>(core::msgtype::kSchedDirectiveBatch));
    w.u32(0);
    w.u32(0);
    EXPECT_FALSE(core::DirectiveBatch::deserialize(w.take()).ok());
  }
  // ...and a message of one kind must not decode as another.
  {
    Writer w;
    core::write_sched_header(w, core::msgtype::kSchedReportBatch);
    w.u32(0);
    w.u32(0);
    EXPECT_FALSE(core::DirectiveBatch::deserialize(w.take()).ok());
  }
}

TEST(Fuzz, WorkReportRejectsOversizedGraphBlob) {
  // The best-graph blob length is bounded by the largest legal ColoredGraph
  // image; a length field beyond that must be rejected before any copy.
  Writer w;
  w.u64(1);             // unit_id
  w.u64(1000);          // ops_done
  w.u64(40);            // best_energy
  w.boolean(false);     // found
  w.u32(1u << 24);      // blob length: 16 MiB of graph that is not there
  EXPECT_FALSE(ramsey::WorkReport::deserialize(w.take()).ok());
}

TEST(Fuzz, FrameParserSurvivesRandomStreams) {
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 200; ++trial) {
    FrameParser fp;
    for (int chunk = 0; chunk < 20 && !fp.poisoned(); ++chunk) {
      fp.feed(random_bytes(rng, 128));
      for (int i = 0; i < 50; ++i) {
        if (!fp.next().ok()) break;
      }
    }
  }
}

TEST(Fuzz, FrameParserSurvivesCorruptedValidStream) {
  Rng rng(0xD00D);
  Bytes wire;
  for (int i = 0; i < 8; ++i) {
    Packet p;
    p.kind = PacketKind::kRequest;
    p.type = static_cast<MsgType>(i);
    p.seq = static_cast<std::uint64_t>(i);
    p.payload = random_bytes(rng, 64);
    const Bytes one = encode_packet(p);
    wire.insert(wire.end(), one.begin(), one.end());
  }
  for (std::size_t pos = 0; pos < wire.size(); pos += 3) {
    Bytes mutated = wire;
    mutated[pos] ^= 0xFF;
    FrameParser fp;
    fp.feed(mutated);
    int parsed = 0;
    for (int i = 0; i < 64; ++i) {
      auto out = fp.next();
      if (!out.ok()) break;
      ++parsed;
    }
    EXPECT_LE(parsed, 8);
  }
}

TEST(Fuzz, GraphDeserializeNeverYieldsInvalidGraph) {
  // Whatever bytes go in, an accepted graph must satisfy the invariants the
  // rest of the system relies on (symmetry, no self-loops, order bounds).
  Rng rng(0x9A9A);
  int accepted = 0;
  for (int i = 0; i < 20'000; ++i) {
    Bytes junk;
    if (i % 50 == 0) {
      // Seed the stream with near-valid inputs: a valid graph with a couple
      // of random byte mutations (some of these will be accepted, which is
      // exactly when the invariant check below matters).
      const int n = static_cast<int>(1 + rng.below(16));
      junk = ramsey::ColoredGraph::random(n, rng).serialize();
      const int mutations = static_cast<int>(rng.below(3));  // 0..2
      for (int m = 0; m < mutations; ++m) {
        junk[rng.below(junk.size())] ^= static_cast<std::uint8_t>(rng.below(256));
      }
    } else {
      junk = random_bytes(rng, 80);
      if (!junk.empty()) junk[0] = static_cast<std::uint8_t>(1 + rng.below(64));
    }
    auto g = ramsey::ColoredGraph::deserialize(junk);
    if (!g.ok()) continue;
    ++accepted;
    for (int v = 0; v < g->order(); ++v) {
      const auto red = g->neighbors(ramsey::Color::kRed, v);
      ASSERT_EQ(red & ~g->vertex_mask(), 0u);
      ASSERT_EQ((red >> v) & 1u, 0u);
      for (int u = 0; u < g->order(); ++u) {
        if (u == v) continue;
        ASSERT_EQ(g->color(u, v), g->color(v, u));
      }
    }
  }
  // Graphs of order 1..2 with correct length are easy to hit; just make
  // sure the check above ran at least once on something.
  EXPECT_GT(accepted, 0);
}

}  // namespace
}  // namespace ew
