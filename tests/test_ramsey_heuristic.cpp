// Tests for the search heuristics and the work-unit wire formats.
#include <gtest/gtest.h>

#include "ramsey/heuristic.hpp"
#include "ramsey/workunit.hpp"

namespace ew::ramsey {
namespace {

HeuristicParams params(int n, int k, std::uint64_t seed) {
  HeuristicParams p;
  p.n = n;
  p.k = k;
  p.seed = seed;
  return p;
}

class HeuristicKinds : public ::testing::TestWithParam<HeuristicKind> {};

TEST_P(HeuristicKinds, SolvesR33Instantly) {
  // n=5, k=3: plenty of counter-examples (any C5-like coloring).
  auto h = make_heuristic(GetParam(), params(5, 3, 7));
  const StepOutcome out = h->run(5'000'000);
  EXPECT_TRUE(out.found) << heuristic_name(GetParam());
  EXPECT_EQ(out.energy, 0u);
  EXPECT_TRUE(is_counterexample(h->best(), 3));
}

TEST_P(HeuristicKinds, ReducesEnergyOnHardInstance) {
  auto h = make_heuristic(GetParam(), params(17, 4, 11));
  OpsCounter ops;
  const std::uint64_t initial = count_bad_cliques(h->current(), 4, ops);
  h->run(30'000'000);
  EXPECT_LT(h->best_energy(), initial) << heuristic_name(GetParam());
}

TEST_P(HeuristicKinds, OpsAccountedAndBudgetRespected) {
  auto h = make_heuristic(GetParam(), params(12, 4, 3));
  const StepOutcome out = h->run(2'000'000);
  EXPECT_GT(out.ops_used, 0u);
  // The budget is approximate (a move may overshoot) but not wildly so.
  EXPECT_LT(out.ops_used, 3'000'000u);
  EXPECT_GT(out.moves, 0u);
}

TEST_P(HeuristicKinds, DeterministicFromSeed) {
  auto a = make_heuristic(GetParam(), params(10, 4, 99));
  auto b = make_heuristic(GetParam(), params(10, 4, 99));
  a->run(1'000'000);
  b->run(1'000'000);
  EXPECT_EQ(a->current(), b->current());
  EXPECT_EQ(a->best_energy(), b->best_energy());
}

TEST_P(HeuristicKinds, ResumableAcrossCalls) {
  auto h = make_heuristic(GetParam(), params(14, 4, 5));
  const StepOutcome first = h->run(1'000'000);
  const StepOutcome second = h->run(1'000'000);
  // best only improves.
  EXPECT_LE(second.best_energy, first.best_energy);
}

TEST_P(HeuristicKinds, BestGraphConsistentWithBestEnergy) {
  auto h = make_heuristic(GetParam(), params(12, 4, 21));
  h->run(3'000'000);
  OpsCounter ops;
  EXPECT_EQ(count_bad_cliques(h->best(), 4, ops), h->best_energy());
}

TEST_P(HeuristicKinds, ResumeFromSuppliedColoring) {
  // Resume from a known counter-example: energy must be 0 from the start.
  auto paley = ColoredGraph::paley(17);
  auto h = make_heuristic(GetParam(), params(17, 4, 1), *paley);
  const StepOutcome out = h->run(1000);
  EXPECT_TRUE(out.found);
  EXPECT_EQ(h->best_energy(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HeuristicKinds,
                         ::testing::Values(HeuristicKind::kGreedy,
                                           HeuristicKind::kTabu,
                                           HeuristicKind::kAnneal),
                         [](const auto& info) {
                           return heuristic_name(info.param);
                         });

TEST(Annealer, FindsTheUniqueR44CounterExample) {
  // n=17, k=4 has (up to isomorphism) exactly one counter-example — a hard
  // instance for local search; the reheat-then-restart schedule finds it
  // from any seed within a few hundred Mops.
  auto h = make_heuristic(HeuristicKind::kAnneal, params(17, 4, 42));
  bool found = false;
  for (int i = 0; i < 8 && !found; ++i) found = h->run(50'000'000).found;
  ASSERT_TRUE(found);
  EXPECT_TRUE(is_counterexample(h->best(), 4));
}

TEST(Annealer, FindsAsymmetricR34Witness) {
  // R(3,4) = 9: on 8 vertices a red-triangle-free / blue-K4-free coloring
  // exists (the Wagner graph); the annealer finds one quickly.
  HeuristicParams p;
  p.n = 8;
  p.k = 3;
  p.k_blue = 4;
  p.seed = 11;
  auto h = make_heuristic(HeuristicKind::kAnneal, p);
  const StepOutcome out = h->run(20'000'000);
  ASSERT_TRUE(out.found);
  EXPECT_TRUE(is_counterexample(h->best(), 3, 4));
}

TEST(Annealer, AsymmetricImpossibleInstanceNeverClaimsSuccess) {
  // R(3,4) = 9 exactly: on 9 vertices no witness exists; the search must
  // keep a positive energy, never "find" one.
  HeuristicParams p;
  p.n = 9;
  p.k = 3;
  p.k_blue = 4;
  p.seed = 13;
  auto h = make_heuristic(HeuristicKind::kAnneal, p);
  const StepOutcome out = h->run(30'000'000);
  EXPECT_FALSE(out.found);
  EXPECT_GT(h->best_energy(), 0u);
}

TEST(HeuristicName, AllNamed) {
  EXPECT_STREQ(heuristic_name(HeuristicKind::kGreedy), "greedy");
  EXPECT_STREQ(heuristic_name(HeuristicKind::kTabu), "tabu");
  EXPECT_STREQ(heuristic_name(HeuristicKind::kAnneal), "anneal");
}

// --- Work unit wire formats ----------------------------------------------------

TEST(WorkSpec, RoundTripWithoutResume) {
  WorkSpec s;
  s.unit_id = 77;
  s.n = 42;
  s.k = 5;
  s.kind = HeuristicKind::kTabu;
  s.seed = 0xFEED;
  s.report_ops = 123456;
  const auto out = WorkSpec::deserialize(s.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->unit_id, 77u);
  EXPECT_EQ(out->n, 42);
  EXPECT_EQ(out->k, 5);
  EXPECT_EQ(out->kind, HeuristicKind::kTabu);
  EXPECT_EQ(out->seed, 0xFEEDu);
  EXPECT_EQ(out->report_ops, 123456u);
  EXPECT_FALSE(out->resume.has_value());
}

TEST(WorkSpec, RoundTripWithResume) {
  Rng rng(3);
  WorkSpec s;
  s.unit_id = 1;
  s.n = 10;
  s.k = 4;
  s.resume = ColoredGraph::random(10, rng);
  const auto out = WorkSpec::deserialize(s.serialize());
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out->resume.has_value());
  EXPECT_EQ(*out->resume, *s.resume);
}

TEST(WorkSpec, RejectsBadHeuristicKind) {
  WorkSpec s;
  Bytes wire = s.serialize();
  wire[10] = 9;  // kind byte: u64 id + u8 n + u8 k, then kind at offset 10
  EXPECT_FALSE(WorkSpec::deserialize(wire).ok());
}

TEST(WorkReport, RoundTrip) {
  WorkReport r;
  r.unit_id = 3;
  r.ops_done = 1'000'000;
  r.best_energy = 17;
  r.found = true;
  r.best_graph = Bytes{1, 2, 3};
  const auto out = WorkReport::deserialize(r.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->unit_id, 3u);
  EXPECT_EQ(out->ops_done, 1'000'000u);
  EXPECT_EQ(out->best_energy, 17u);
  EXPECT_TRUE(out->found);
  EXPECT_EQ(out->best_graph, (Bytes{1, 2, 3}));
}

TEST(WorkReport, RejectsTruncated) {
  WorkReport r;
  Bytes wire = r.serialize();
  wire.resize(5);
  EXPECT_FALSE(WorkReport::deserialize(wire).ok());
}

}  // namespace
}  // namespace ew::ramsey
