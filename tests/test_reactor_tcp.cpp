// Tests for the real-time side of the lingua franca: the select()-based
// Reactor and TCP transport over localhost.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "gossip/clique.hpp"
#include "net/node.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "net/tcp_transport.hpp"

namespace ew {
namespace {

std::uint16_t pick_port(const Fd& listener) { return *local_port(listener); }

// --- Reactor ------------------------------------------------------------------

TEST(Reactor, TimersFireInOrder) {
  Reactor r;
  std::vector<int> order;
  r.schedule(30 * kMillisecond, [&] { order.push_back(3); });
  r.schedule(10 * kMillisecond, [&] { order.push_back(1); });
  r.schedule(20 * kMillisecond, [&] {
    order.push_back(2);
  });
  r.run_for(100 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, CancelPreventsFiring) {
  Reactor r;
  bool fired = false;
  const TimerId id = r.schedule(10 * kMillisecond, [&] { fired = true; });
  r.cancel(id);
  r.run_for(50 * kMillisecond);
  EXPECT_FALSE(fired);
}

TEST(Reactor, PostFromAnotherThread) {
  Reactor r;
  std::atomic<bool> ran{false};
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    r.post([&] { ran = true; });
  });
  r.run_for(200 * kMillisecond);
  t.join();
  EXPECT_TRUE(ran.load());
}

TEST(Reactor, StopExitsRun) {
  Reactor r;
  r.schedule(10 * kMillisecond, [&] { r.stop(); });
  const auto t0 = std::chrono::steady_clock::now();
  r.run();  // would hang forever without stop()
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(dt).count(), 2000);
}

TEST(Reactor, RunForReturnsNearDeadline) {
  Reactor r;
  const auto t0 = std::chrono::steady_clock::now();
  r.run_for(50 * kMillisecond);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_GE(ms, 45);
  EXPECT_LT(ms, 500);
}

// --- Raw sockets ------------------------------------------------------------------

TEST(Tcp, ListenConnectRoundTrip) {
  auto listener = tcp_listen(0);
  ASSERT_TRUE(listener.ok()) << listener.error().to_string();
  const std::uint16_t port = pick_port(*listener);

  auto client = tcp_connect(Endpoint{"127.0.0.1", port}, kSecond);
  ASSERT_TRUE(client.ok()) << client.error().to_string();

  auto readable = wait_readable(*listener, kSecond);
  ASSERT_TRUE(readable.ok());
  ASSERT_TRUE(*readable);
  auto accepted = tcp_accept(*listener);
  ASSERT_TRUE(accepted.ok());

  const Bytes msg{'h', 'i'};
  auto sent = send_some(*client, msg);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, 2u);

  ASSERT_TRUE(*wait_readable(*accepted, kSecond));
  Bytes got;
  auto n = recv_some(*accepted, got);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(got, msg);
}

TEST(Tcp, ConnectRefusedFailsFast) {
  // Port 1 on localhost is almost certainly closed.
  auto fd = tcp_connect(Endpoint{"127.0.0.1", 1}, kSecond);
  EXPECT_FALSE(fd.ok());
}

TEST(Tcp, UnresolvableHostRejected) {
  auto fd = tcp_connect(Endpoint{"no-such-host.invalid", 80}, kSecond);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error().code, Err::kRefused);
}

TEST(Tcp, RecvOnClosedPeerReportsClosed) {
  auto listener = tcp_listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = pick_port(*listener);
  auto client = tcp_connect(Endpoint{"127.0.0.1", port}, kSecond);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(*wait_readable(*listener, kSecond));
  auto accepted = tcp_accept(*listener);
  ASSERT_TRUE(accepted.ok());
  client->reset();  // close
  ASSERT_TRUE(*wait_readable(*accepted, kSecond));
  Bytes sink;
  EXPECT_EQ(recv_some(*accepted, sink).code(), Err::kClosed);
}

// --- TcpTransport + Node over localhost ----------------------------------------

TEST(TcpTransport, NodeRpcOverLocalhost) {
  Reactor reactor;
  TcpTransport transport(reactor);

  // Pick two free ports by briefly binding.
  std::uint16_t pa, pb;
  {
    auto l1 = tcp_listen(0);
    auto l2 = tcp_listen(0);
    pa = pick_port(*l1);
    pb = pick_port(*l2);
  }
  Node server(reactor, transport, Endpoint{"127.0.0.1", pa});
  Node client(reactor, transport, Endpoint{"127.0.0.1", pb});
  ASSERT_TRUE(server.start().ok());
  ASSERT_TRUE(client.start().ok());

  server.handle(0x42, [](const IncomingMessage& m, Responder r) {
    Bytes reply = m.packet.payload;
    reply.push_back(0xFF);
    r.ok(reply);
  });

  std::optional<Result<Bytes>> got;
  client.call(server.self(), 0x42, {1, 2}, CallOptions::fixed(2 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  for (int i = 0; i < 100 && !got; ++i) reactor.run_for(20 * kMillisecond);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().to_string();
  EXPECT_EQ(got->value(), (Bytes{1, 2, 0xFF}));
  // The reply reused the client's connection rather than dialling back.
  EXPECT_EQ(transport.open_connections(), 2u);  // one inbound + one outbound view
}

TEST(TcpTransport, LargePayloadRoundTrip) {
  Reactor reactor;
  TcpTransport transport(reactor);
  std::uint16_t pa, pb;
  {
    auto l1 = tcp_listen(0);
    auto l2 = tcp_listen(0);
    pa = pick_port(*l1);
    pb = pick_port(*l2);
  }
  Node server(reactor, transport, Endpoint{"127.0.0.1", pa});
  Node client(reactor, transport, Endpoint{"127.0.0.1", pb});
  ASSERT_TRUE(server.start().ok());
  ASSERT_TRUE(client.start().ok());
  server.handle(0x43, [](const IncomingMessage& m, Responder r) {
    r.ok(m.packet.payload);
  });
  // 4 MiB forces partial sends and the writable-watcher flush path.
  Bytes big(4 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  std::optional<Result<Bytes>> got;
  client.call(server.self(), 0x43, big, CallOptions::fixed(10 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  for (int i = 0; i < 500 && !got; ++i) reactor.run_for(20 * kMillisecond);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().to_string();
  EXPECT_EQ(got->value(), big);
}

TEST(TcpTransport, CliqueFormsOverRealSockets) {
  // The whole-stack smoke test: two clique members, each with its own
  // Reactor + TcpTransport ("process"), assemble over localhost TCP.
  std::uint16_t pa, pb;
  {
    auto l1 = tcp_listen(0);
    auto l2 = tcp_listen(0);
    pa = pick_port(*l1);
    pb = pick_port(*l2);
  }
  const std::vector<Endpoint> well_known = {Endpoint{"127.0.0.1", pa},
                                            Endpoint{"127.0.0.1", pb}};
  gossip::CliqueMember::Options opts;
  opts.token_period = 100 * kMillisecond;
  opts.probe_period = 150 * kMillisecond;
  opts.hop_timeout = kSecond;

  struct Member {
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> size{0};
    std::thread thread;
  };
  Member members[2];
  for (int i = 0; i < 2; ++i) {
    members[i].thread = std::thread([&, i] {
      Reactor reactor;
      TcpTransport transport(reactor);
      Node node(reactor, transport, well_known[static_cast<std::size_t>(i)]);
      if (!node.start().ok()) return;
      gossip::CliqueMember member(node, well_known, opts);
      member.start();
      while (!members[i].stop.load()) {
        reactor.run_for(50 * kMillisecond);
        members[i].size.store(member.view().members.size());
      }
      member.stop();
    });
  }
  bool converged = false;
  for (int tick = 0; tick < 200 && !converged; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    converged = members[0].size.load() == 2 && members[1].size.load() == 2;
  }
  members[0].stop = true;
  members[1].stop = true;
  members[0].thread.join();
  members[1].thread.join();
  EXPECT_TRUE(converged) << "sizes: " << members[0].size.load() << ", "
                         << members[1].size.load();
}

TEST(TcpTransport, SendToDeadPortFails) {
  Reactor reactor;
  TcpTransport transport(reactor);
  transport.set_connect_timeout(500 * kMillisecond);
  Packet p;
  const Status s =
      transport.send(Endpoint{"127.0.0.1", 19998}, Endpoint{"127.0.0.1", 1}, p);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace ew
