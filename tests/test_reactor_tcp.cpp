// Tests for the real-time side of the lingua franca: the Reactor (both the
// select and epoll backends) and TCP transport over localhost.
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/serialize.hpp"
#include "gossip/clique.hpp"
#include "net/node.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "net/tcp_transport.hpp"
#include "obs/registry.hpp"

namespace ew {
namespace {

std::uint16_t pick_port(const Fd& listener) { return *local_port(listener); }

std::vector<ReactorBackend> all_backends() {
#ifdef __linux__
  return {ReactorBackend::kSelect, ReactorBackend::kEpoll};
#else
  return {ReactorBackend::kSelect};
#endif
}

/// Milliseconds of wall clock consumed by `fn`.
template <typename F>
long long wall_ms(F&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Route a payload the way TcpTransport's wire format expects (src, dst
/// prefix) so raw-socket tests can speak the lingua franca.
Bytes routed_payload(const Endpoint& src, const Endpoint& dst,
                     const Bytes& body) {
  Writer w(body.size() + 64);
  w.str(src.host);
  w.u16(src.port);
  w.str(dst.host);
  w.u16(dst.port);
  w.raw(body);
  return w.take();
}

// --- Reactor ------------------------------------------------------------------

TEST(Reactor, TimersFireInOrder) {
  Reactor r;
  std::vector<int> order;
  r.schedule(30 * kMillisecond, [&] { order.push_back(3); });
  r.schedule(10 * kMillisecond, [&] { order.push_back(1); });
  r.schedule(20 * kMillisecond, [&] {
    order.push_back(2);
  });
  r.run_for(100 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, CancelPreventsFiring) {
  Reactor r;
  bool fired = false;
  const TimerId id = r.schedule(10 * kMillisecond, [&] { fired = true; });
  r.cancel(id);
  r.run_for(50 * kMillisecond);
  EXPECT_FALSE(fired);
}

TEST(Reactor, PostFromAnotherThread) {
  Reactor r;
  std::atomic<bool> ran{false};
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    r.post([&] { ran = true; });
  });
  r.run_for(200 * kMillisecond);
  t.join();
  EXPECT_TRUE(ran.load());
}

TEST(Reactor, StopExitsRun) {
  Reactor r;
  r.schedule(10 * kMillisecond, [&] { r.stop(); });
  const auto t0 = std::chrono::steady_clock::now();
  r.run();  // would hang forever without stop()
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(dt).count(), 2000);
}

TEST(Reactor, RunForReturnsNearDeadline) {
  Reactor r;
  const auto t0 = std::chrono::steady_clock::now();
  r.run_for(50 * kMillisecond);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_GE(ms, 45);
  EXPECT_LT(ms, 500);
}

// --- Raw sockets ------------------------------------------------------------------

TEST(Tcp, ListenConnectRoundTrip) {
  auto listener = tcp_listen(0);
  ASSERT_TRUE(listener.ok()) << listener.error().to_string();
  const std::uint16_t port = pick_port(*listener);

  auto client = tcp_connect(Endpoint{"127.0.0.1", port}, kSecond);
  ASSERT_TRUE(client.ok()) << client.error().to_string();

  auto readable = wait_readable(*listener, kSecond);
  ASSERT_TRUE(readable.ok());
  ASSERT_TRUE(*readable);
  auto accepted = tcp_accept(*listener);
  ASSERT_TRUE(accepted.ok());

  const Bytes msg{'h', 'i'};
  auto sent = send_some(*client, msg);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(*sent, 2u);

  ASSERT_TRUE(*wait_readable(*accepted, kSecond));
  Bytes got;
  auto n = recv_some(*accepted, got);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(got, msg);
}

TEST(Tcp, ConnectRefusedFailsFast) {
  // Port 1 on localhost is almost certainly closed.
  auto fd = tcp_connect(Endpoint{"127.0.0.1", 1}, kSecond);
  EXPECT_FALSE(fd.ok());
}

TEST(Tcp, UnresolvableHostRejected) {
  auto fd = tcp_connect(Endpoint{"no-such-host.invalid", 80}, kSecond);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.error().code, Err::kRefused);
}

TEST(Tcp, RecvOnClosedPeerReportsClosed) {
  auto listener = tcp_listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = pick_port(*listener);
  auto client = tcp_connect(Endpoint{"127.0.0.1", port}, kSecond);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(*wait_readable(*listener, kSecond));
  auto accepted = tcp_accept(*listener);
  ASSERT_TRUE(accepted.ok());
  client->reset();  // close
  ASSERT_TRUE(*wait_readable(*accepted, kSecond));
  Bytes sink;
  EXPECT_EQ(recv_some(*accepted, sink).code(), Err::kClosed);
}

// --- TcpTransport + Node over localhost ----------------------------------------

TEST(TcpTransport, NodeRpcOverLocalhost) {
  Reactor reactor;
  TcpTransport transport(reactor);

  // Pick two free ports by briefly binding.
  std::uint16_t pa, pb;
  {
    auto l1 = tcp_listen(0);
    auto l2 = tcp_listen(0);
    pa = pick_port(*l1);
    pb = pick_port(*l2);
  }
  Node server(reactor, transport, Endpoint{"127.0.0.1", pa});
  Node client(reactor, transport, Endpoint{"127.0.0.1", pb});
  ASSERT_TRUE(server.start().ok());
  ASSERT_TRUE(client.start().ok());

  server.handle(0x42, [](const IncomingMessage& m, Responder r) {
    Bytes reply = m.packet.payload;
    reply.push_back(0xFF);
    r.ok(reply);
  });

  std::optional<Result<Bytes>> got;
  client.call(server.self(), 0x42, {1, 2}, CallOptions::fixed(2 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  for (int i = 0; i < 100 && !got; ++i) reactor.run_for(20 * kMillisecond);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().to_string();
  EXPECT_EQ(got->value(), (Bytes{1, 2, 0xFF}));
  // The reply reused the client's connection rather than dialling back.
  EXPECT_EQ(transport.open_connections(), 2u);  // one inbound + one outbound view
}

TEST(TcpTransport, LargePayloadRoundTrip) {
  Reactor reactor;
  TcpTransport transport(reactor);
  std::uint16_t pa, pb;
  {
    auto l1 = tcp_listen(0);
    auto l2 = tcp_listen(0);
    pa = pick_port(*l1);
    pb = pick_port(*l2);
  }
  Node server(reactor, transport, Endpoint{"127.0.0.1", pa});
  Node client(reactor, transport, Endpoint{"127.0.0.1", pb});
  ASSERT_TRUE(server.start().ok());
  ASSERT_TRUE(client.start().ok());
  server.handle(0x43, [](const IncomingMessage& m, Responder r) {
    r.ok(m.packet.payload);
  });
  // 4 MiB forces partial sends and the writable-watcher flush path.
  Bytes big(4 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  std::optional<Result<Bytes>> got;
  client.call(server.self(), 0x43, big, CallOptions::fixed(10 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  for (int i = 0; i < 500 && !got; ++i) reactor.run_for(20 * kMillisecond);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok()) << got->error().to_string();
  EXPECT_EQ(got->value(), big);
}

TEST(TcpTransport, CliqueFormsOverRealSockets) {
  // The whole-stack smoke test: two clique members, each with its own
  // Reactor + TcpTransport ("process"), assemble over localhost TCP.
  std::uint16_t pa, pb;
  {
    auto l1 = tcp_listen(0);
    auto l2 = tcp_listen(0);
    pa = pick_port(*l1);
    pb = pick_port(*l2);
  }
  const std::vector<Endpoint> well_known = {Endpoint{"127.0.0.1", pa},
                                            Endpoint{"127.0.0.1", pb}};
  gossip::CliqueMember::Options opts;
  opts.token_period = 100 * kMillisecond;
  opts.probe_period = 150 * kMillisecond;
  opts.hop_timeout = kSecond;

  struct Member {
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> size{0};
    std::thread thread;
  };
  Member members[2];
  for (int i = 0; i < 2; ++i) {
    members[i].thread = std::thread([&, i] {
      Reactor reactor;
      TcpTransport transport(reactor);
      Node node(reactor, transport, well_known[static_cast<std::size_t>(i)]);
      if (!node.start().ok()) return;
      gossip::CliqueMember member(node, well_known, opts);
      member.start();
      while (!members[i].stop.load()) {
        reactor.run_for(50 * kMillisecond);
        members[i].size.store(member.view().members.size());
      }
      member.stop();
    });
  }
  bool converged = false;
  for (int tick = 0; tick < 200 && !converged; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    converged = members[0].size.load() == 2 && members[1].size.load() == 2;
  }
  members[0].stop = true;
  members[1].stop = true;
  members[0].thread.join();
  members[1].thread.join();
  EXPECT_TRUE(converged) << "sizes: " << members[0].size.load() << ", "
                         << members[1].size.load();
}

TEST(TcpTransport, SendToDeadPortTearsDownWithoutBlocking) {
  // Dialling is asynchronous now: send() must return immediately whatever
  // the peer's state, and the failed dial tears the connection down once
  // the reactor runs (the old synchronous connect stalled the whole loop).
  Reactor reactor;
  TcpTransport transport(reactor);
  transport.set_connect_timeout(500 * kMillisecond);
  Packet p;
  Status s;
  const long long ms = wall_ms([&] {
    s = transport.send(Endpoint{"127.0.0.1", 19998}, Endpoint{"127.0.0.1", 1}, p);
  });
  EXPECT_LT(ms, 250);
  // Loopback refusal may surface synchronously (error) or via the writable
  // watcher (queued, then torn down); either way the conn must not linger.
  for (int i = 0; i < 100 && transport.open_connections() > 0; ++i) {
    reactor.run_for(20 * kMillisecond);
  }
  EXPECT_EQ(transport.open_connections(), 0u);
  EXPECT_EQ(transport.queued_bytes(), 0u);
}

// --- Reactor backends & fd-lifetime safety ------------------------------------

TEST(Reactor, DefaultBackendIsEpollOnLinux) {
#ifdef __linux__
  if (const char* env = std::getenv("EW_REACTOR_BACKEND");
      env != nullptr && std::string(env) == "select") {
    GTEST_SKIP() << "EW_REACTOR_BACKEND=select override active";
  }
  EXPECT_EQ(Reactor().backend(), ReactorBackend::kEpoll);
#else
  EXPECT_EQ(Reactor().backend(), ReactorBackend::kSelect);
#endif
}

TEST(Reactor, EpollBackendTimersAndWatchers) {
#ifndef __linux__
  GTEST_SKIP() << "epoll is Linux-only";
#else
  Reactor r(ReactorBackend::kEpoll);
  ASSERT_EQ(r.backend(), ReactorBackend::kEpoll);
  std::vector<int> order;
  r.schedule(20 * kMillisecond, [&] { order.push_back(2); });
  r.schedule(10 * kMillisecond, [&] { order.push_back(1); });
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  int readable_hits = 0;
  r.watch_readable(pipefd[0], [&] {
    char buf[8];
    [[maybe_unused]] ssize_t n = ::read(pipefd[0], buf, sizeof(buf));
    ++readable_hits;
  });
  ASSERT_EQ(::write(pipefd[1], "x", 1), 1);
  r.run_for(60 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(readable_hits, 1);
  r.unwatch_readable(pipefd[0]);
  ::close(pipefd[0]);
  ::close(pipefd[1]);
#endif
}

TEST(Reactor, StaleReadyCallbackNotInvokedAfterUnwatch) {
  // Two fds become ready in the same poll; the first callback to run
  // unwatches and closes the other. The queued readiness fact for the
  // closed fd is stale and must be skipped — in the old code it fired
  // against a dead fd (and, after accept-reuse, against the WRONG fd).
  for (ReactorBackend backend : all_backends()) {
    Reactor r(backend);
    int p1[2], p2[2];
    ASSERT_EQ(::pipe(p1), 0);
    ASSERT_EQ(::pipe(p2), 0);
    ASSERT_EQ(::write(p1[1], "x", 1), 1);
    ASSERT_EQ(::write(p2[1], "x", 1), 1);
    int fired1 = 0, fired2 = 0;
    bool closed1 = false, closed2 = false;
    r.watch_readable(p1[0], [&] {
      ++fired1;
      r.unwatch_readable(p1[0]);
      if (!closed2) {
        r.unwatch_readable(p2[0]);
        ::close(p2[0]);
        closed2 = true;
      }
    });
    r.watch_readable(p2[0], [&] {
      ++fired2;
      r.unwatch_readable(p2[0]);
      if (!closed1) {
        r.unwatch_readable(p1[0]);
        ::close(p1[0]);
        closed1 = true;
      }
    });
    r.run_for(50 * kMillisecond);
    // Exactly one of the two fired; the other's queued callback was stale.
    EXPECT_EQ(fired1 + fired2, 1) << "backend " << static_cast<int>(backend);
    if (!closed1) ::close(p1[0]);
    if (!closed2) ::close(p2[0]);
    ::close(p1[1]);
    ::close(p2[1]);
  }
}

TEST(Reactor, EpollHandlesOver1024Fds) {
#ifndef __linux__
  GTEST_SKIP() << "epoll is Linux-only";
#else
  rlimit rl{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &rl), 0);
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &rl);
    getrlimit(RLIMIT_NOFILE, &rl);
  }
  if (rl.rlim_cur < 2500) {
    GTEST_SKIP() << "RLIMIT_NOFILE too low: " << rl.rlim_cur;
  }
  Reactor r(ReactorBackend::kEpoll);
  constexpr int kPipes = 1100;  // read ends alone blow past FD_SETSIZE
  std::vector<std::array<int, 2>> pipes(kPipes);
  int beyond_setsize = 0;
  for (auto& p : pipes) {
    ASSERT_EQ(::pipe(p.data()), 0);
    if (p[0] >= FD_SETSIZE) ++beyond_setsize;
  }
  ASSERT_GT(beyond_setsize, 0) << "test did not exceed FD_SETSIZE";
  int fired = 0;
  for (auto& p : pipes) {
    const int rfd = p[0];
    r.watch_readable(rfd, [&fired, &r, rfd] {
      char buf[4];
      [[maybe_unused]] ssize_t n = ::read(rfd, buf, sizeof(buf));
      ++fired;
      r.unwatch_readable(rfd);
    });
    ASSERT_EQ(::write(p[1], "x", 1), 1);
  }
  for (int i = 0; i < 100 && fired < kPipes; ++i) {
    r.run_for(20 * kMillisecond);
  }
  EXPECT_EQ(fired, kPipes);
  for (auto& p : pipes) {
    ::close(p[0]);
    ::close(p[1]);
  }
#endif
}

// --- TCP edge paths -----------------------------------------------------------

TEST(TcpTransport, PartialWriteFlushResumesUnderFullSocketBuffer) {
  // A 2 MiB one-way frame cannot fit the loopback socket buffers in one
  // send(): the outbox must park, wait for writability, and resume — the
  // raw reader on the other side eventually sees the complete frame.
  Reactor reactor;
  TcpTransport transport(reactor);
  auto listener = tcp_listen(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = pick_port(*listener);
  const Endpoint from{"127.0.0.1", 45001};
  const Endpoint to{"127.0.0.1", port};

  Packet p;
  p.kind = PacketKind::kOneWay;
  p.type = 0x51;
  p.seq = 7;
  p.payload.resize(2 * 1024 * 1024);
  for (std::size_t i = 0; i < p.payload.size(); ++i) {
    p.payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  ASSERT_TRUE(transport.send(from, to, p).ok());

  ASSERT_TRUE(*wait_readable(*listener, kSecond));
  auto accepted = tcp_accept(*listener);
  ASSERT_TRUE(accepted.ok());

  FrameParser parser;
  Result<Packet> got(Err::kUnavailable);
  for (int i = 0; i < 1000 && !got.ok(); ++i) {
    reactor.run_for(5 * kMillisecond);
    Bytes chunk;
    auto n = recv_some(*accepted, chunk);
    ASSERT_TRUE(n.ok()) << n.error().to_string();
    parser.feed(chunk);
    got = parser.next();
    ASSERT_NE(got.code(), Err::kProtocol);
  }
  ASSERT_TRUE(got.ok()) << "frame never completed";
  EXPECT_EQ(got->type, 0x51);
  EXPECT_EQ(got->seq, 7u);
  EXPECT_EQ(got->payload, routed_payload(from, to, p.payload));
  EXPECT_EQ(transport.queued_bytes(), 0u);
}

TEST(TcpTransport, PeerEofMidFrameDrainsWholeFramesAndCountsTruncation) {
  Reactor reactor;
  TcpTransport transport(reactor);
  std::uint16_t port;
  {
    auto l = tcp_listen(0);
    port = pick_port(*l);
  }
  const Endpoint self{"127.0.0.1", port};
  std::vector<Bytes> delivered;
  ASSERT_TRUE(transport.bind(self, [&](IncomingMessage m) {
    delivered.push_back(m.packet.payload);
  }).ok());

  auto client = tcp_connect(self, kSecond);
  ASSERT_TRUE(client.ok());

  // One complete frame followed by the first half of a second one.
  Packet whole;
  whole.kind = PacketKind::kOneWay;
  whole.type = 0x52;
  whole.payload = routed_payload(Endpoint{"127.0.0.1", 45002}, self, {1, 2, 3});
  Packet half = whole;
  half.payload = routed_payload(Endpoint{"127.0.0.1", 45002}, self,
                                Bytes(512, 0xEE));
  const Bytes frame1 = encode_packet(whole);
  const Bytes frame2 = encode_packet(half);
  Bytes stream = frame1;
  stream.insert(stream.end(), frame2.begin(),
                frame2.begin() + static_cast<std::ptrdiff_t>(frame2.size() / 2));

  const std::uint64_t truncated_before =
      obs::registry().counter(obs::names::kNetFramesTruncated).value();
  std::size_t off = 0;
  while (off < stream.size()) {
    auto n = send_some(*client, std::span(stream).subspan(off));
    ASSERT_TRUE(n.ok());
    off += *n;
    reactor.run_for(kMillisecond);
  }
  client->reset();  // half-close mid-frame

  for (int i = 0; i < 100 && transport.open_connections() > 0; ++i) {
    reactor.run_for(10 * kMillisecond);
  }
  // The complete frame was delivered (not dropped with the dead conn)…
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], (Bytes{1, 2, 3}));
  // …the partial one was dropped loudly, and the conn is gone.
  EXPECT_EQ(obs::registry().counter(obs::names::kNetFramesTruncated).value(),
            truncated_before + 1);
  EXPECT_EQ(transport.open_connections(), 0u);
}

TEST(TcpTransport, PendingDialDoesNotBlockOtherTraffic) {
  // A peer that neither accepts nor refuses (saturated accept queue: SYNs
  // are silently dropped) leaves the dial pending. send() must return
  // immediately and other traffic on the same reactor must flow while the
  // dial waits out its budget.
  auto stalled = tcp_listen(0, /*backlog=*/1);
  ASSERT_TRUE(stalled.ok());
  const std::uint16_t stalled_port = pick_port(*stalled);
  // Saturate the accept queue with raw dials that are never accepted.
  std::vector<PendingConnect> hogs;
  for (int i = 0; i < 8; ++i) {
    auto pc = tcp_connect_start(Endpoint{"127.0.0.1", stalled_port});
    ASSERT_TRUE(pc.ok());
    hogs.push_back(std::move(*pc));
  }

  Reactor reactor;
  TcpTransport transport(reactor);
  transport.set_connect_timeout(5 * kSecond);
  Packet p;
  p.kind = PacketKind::kOneWay;
  p.type = 0x53;
  Status s;
  const long long ms = wall_ms([&] {
    s = transport.send(Endpoint{"127.0.0.1", 45003},
                       Endpoint{"127.0.0.1", stalled_port}, p);
  });
  EXPECT_TRUE(s.ok()) << s.to_string();  // queued behind the pending dial
  EXPECT_LT(ms, 250) << "dial blocked the caller";

  // Meanwhile a live RPC through the same reactor completes long before the
  // 5 s connect budget would expire.
  TcpTransport live_transport(reactor);
  std::uint16_t pa, pb;
  {
    auto l1 = tcp_listen(0);
    auto l2 = tcp_listen(0);
    pa = pick_port(*l1);
    pb = pick_port(*l2);
  }
  Node server(reactor, live_transport, Endpoint{"127.0.0.1", pa});
  Node client(reactor, live_transport, Endpoint{"127.0.0.1", pb});
  ASSERT_TRUE(server.start().ok());
  ASSERT_TRUE(client.start().ok());
  server.handle(0x42, [](const IncomingMessage& m, Responder r) {
    r.ok(m.packet.payload);
  });
  std::optional<Result<Bytes>> got;
  client.call(server.self(), 0x42, {9}, CallOptions::fixed(2 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  const long long rpc_ms = wall_ms([&] {
    for (int i = 0; i < 100 && !got; ++i) reactor.run_for(20 * kMillisecond);
  });
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok()) << got->error().to_string();
  EXPECT_LT(rpc_ms, 2000);
}

TEST(TcpTransport, OutboxOverflowRejectsWithOverloaded) {
  // A peer that never reads can only absorb the kernel socket buffers; after
  // that the bounded outbox must push back with kOverloaded instead of
  // buffering without limit.
  Reactor reactor;
  TcpTransport transport(reactor);
  transport.set_max_outbox_bytes(64 * 1024);
  auto listener = tcp_listen(0);
  ASSERT_TRUE(listener.ok());
  const Endpoint to{"127.0.0.1", pick_port(*listener)};
  const Endpoint from{"127.0.0.1", 45004};

  const std::uint64_t rejects_before =
      obs::registry().counter(obs::names::kNetBackpressureRejects).value();
  Packet p;
  p.kind = PacketKind::kOneWay;
  p.type = 0x54;
  p.payload.assign(32 * 1024, 0xCD);
  Status last;
  int sent_ok = 0;
  for (int i = 0; i < 4000 && last.ok(); ++i) {
    last = transport.send(from, to, p);
    if (last.ok()) ++sent_ok;
  }
  ASSERT_FALSE(last.ok()) << "outbox never overflowed";
  EXPECT_EQ(last.code(), Err::kOverloaded);
  EXPECT_GT(sent_ok, 0);  // the socket buffers took the early frames
  EXPECT_GT(obs::registry().counter(obs::names::kNetBackpressureRejects).value(),
            rejects_before);
  EXPECT_LE(transport.queued_bytes(), 64 * 1024u);
}

}  // namespace
}  // namespace ew
