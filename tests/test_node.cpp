// Tests for the Node RPC multiplexer over the in-process transport.
#include <gtest/gtest.h>

#include "net/inproc_transport.hpp"
#include "net/node.hpp"
#include "obs/registry.hpp"
#include "sim/event_queue.hpp"

namespace ew {
namespace {

constexpr MsgType kEcho = 0x10;
constexpr MsgType kFailing = 0x11;
constexpr MsgType kSilent = 0x12;

class NodeTest : public ::testing::Test {
 protected:
  NodeTest()
      : transport(events),
        server(events, transport, Endpoint{"server", 1}),
        client(events, transport, Endpoint{"client", 1}) {
    EXPECT_TRUE(server.start().ok());
    EXPECT_TRUE(client.start().ok());
    server.handle(kEcho, [](const IncomingMessage& m, Responder r) {
      r.ok(m.packet.payload);
    });
    server.handle(kFailing, [](const IncomingMessage&, Responder r) {
      r.fail(Err::kRejected, "not today");
    });
    server.handle(kSilent, [](const IncomingMessage&, Responder) {
      // never replies; client must time out
    });
  }

  sim::EventQueue events;
  InProcTransport transport;
  Node server;
  Node client;
};

TEST_F(NodeTest, RequestResponseRoundTrip) {
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {1, 2, 3}, CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok());
  EXPECT_EQ(got->value(), (Bytes{1, 2, 3}));
}

TEST_F(NodeTest, ServerRejectionSurfacesCodeAndMessage) {
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kFailing, {}, CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kRejected);
  EXPECT_EQ(got->error().message, "not today");
}

TEST_F(NodeTest, MissingHandlerRejects) {
  std::optional<Result<Bytes>> got;
  client.call(server.self(), 0x7777, {}, CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kRejected);
}

TEST_F(NodeTest, SilentServerTimesOut) {
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kSilent, {}, CallOptions::fixed(500 * kMillisecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kTimeout);
  EXPECT_EQ(events.clock().now(), 500 * kMillisecond);
  EXPECT_EQ(client.outstanding_calls(), 0u);
}

TEST_F(NodeTest, UnboundEndpointFailsFast) {
  std::optional<Result<Bytes>> got;
  client.call(Endpoint{"ghost", 9}, kEcho, {}, CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kRefused);
  // Fail-fast must not leave the timeout timer pending.
  EXPECT_EQ(client.outstanding_calls(), 0u);
}

TEST_F(NodeTest, DroppedRequestTimesOut) {
  transport.set_drop_fn([](const Endpoint&, const Endpoint& to, const Packet&) {
    return to.host == "server";
  });
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kEcho, {}, CallOptions::fixed(300 * kMillisecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kTimeout);
}

TEST_F(NodeTest, LateResponseAfterTimeoutIsDropped) {
  transport.set_latency(2 * kSecond);  // deliver after the 1 s timeout
  int called = 0;
  client.call(server.self(), kEcho, {5}, CallOptions::fixed(kSecond), [&](Result<Bytes> r) {
    ++called;
    EXPECT_EQ(r.code(), Err::kTimeout);
  });
  events.run_until_idle();
  EXPECT_EQ(called, 1);  // exactly once, with the timeout
}

TEST_F(NodeTest, OneWayDelivered) {
  int received = 0;
  server.handle(0x55, [&](const IncomingMessage& m, Responder) {
    ++received;
    EXPECT_EQ(m.packet.kind, PacketKind::kOneWay);
  });
  EXPECT_TRUE(client.send_oneway(server.self(), 0x55, {1}).ok());
  events.run_until_idle();
  EXPECT_EQ(received, 1);
}

TEST_F(NodeTest, RttObserverSeesSuccessAndFailure) {
  struct Obs {
    Endpoint to;
    MsgType type;
    Duration rtt;
    bool ok;
  };
  std::vector<Obs> seen;
  transport.set_latency(100 * kMillisecond);
  client.set_rtt_observer([&](const Endpoint& to, MsgType t, Duration rtt, bool ok) {
    seen.push_back({to, t, rtt, ok});
  });
  client.call(server.self(), kEcho, {}, CallOptions::fixed(kSecond), [](Result<Bytes>) {});
  client.call(server.self(), kSilent, {}, CallOptions::fixed(400 * kMillisecond), [](Result<Bytes>) {});
  events.run_until_idle();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0].ok);
  EXPECT_EQ(seen[0].type, kEcho);
  EXPECT_EQ(seen[0].rtt, 200 * kMillisecond);  // two hops
  EXPECT_FALSE(seen[1].ok);
  EXPECT_EQ(seen[1].rtt, 400 * kMillisecond);
}

TEST_F(NodeTest, ServerRejectionCountsAsSuccessfulRoundTrip) {
  std::vector<bool> oks;
  client.set_rtt_observer(
      [&](const Endpoint&, MsgType, Duration, bool ok) { oks.push_back(ok); });
  client.call(server.self(), kFailing, {}, CallOptions::fixed(kSecond), [](Result<Bytes>) {});
  events.run_until_idle();
  ASSERT_EQ(oks.size(), 1u);
  EXPECT_TRUE(oks[0]);  // the server responded; the transport worked
}

TEST_F(NodeTest, DoubleReplyIsHarmless) {
  server.handle(0x66, [](const IncomingMessage&, Responder r) {
    r.ok({1});
    r.ok({2});              // ignored
    r.fail(Err::kInternal);  // ignored
  });
  std::optional<Result<Bytes>> got;
  client.call(server.self(), 0x66, {}, CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_until_idle();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok());
  EXPECT_EQ(got->value(), Bytes{1});
}

TEST_F(NodeTest, DeferredReplyWorks) {
  // A handler may hold the Responder and reply later (schedulers do this).
  std::optional<Responder> held;
  server.handle(0x67, [&](const IncomingMessage&, Responder r) { held = r; });
  std::optional<Result<Bytes>> got;
  client.call(server.self(), 0x67, {}, CallOptions::fixed(5 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_for(kSecond);
  ASSERT_TRUE(held.has_value());
  EXPECT_FALSE(got.has_value());
  held->ok({42});
  events.run_until_idle();
  ASSERT_TRUE(got && got->ok());
  EXPECT_EQ(got->value(), Bytes{42});
}

TEST_F(NodeTest, StopAbandonsOutstandingCalls) {
  // Stop is a teardown operation: callbacks must NOT fire (their owners may
  // already be destroyed), and nothing may remain scheduled.
  std::optional<Result<Bytes>> got;
  client.call(server.self(), kSilent, {}, CallOptions::fixed(60 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events.run_for(kSecond);
  client.stop();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(client.outstanding_calls(), 0u);
  events.run_until_idle();
  EXPECT_FALSE(got.has_value());
}

TEST_F(NodeTest, DoubleStartRejected) {
  EXPECT_EQ(server.start().code(), Err::kRejected);
}

TEST_F(NodeTest, BindConflictRejected) {
  Node dup(events, transport, Endpoint{"server", 1});
  EXPECT_EQ(dup.start().code(), Err::kRejected);
}

TEST_F(NodeTest, ProcessStatsTrackSpuriousTimeouts) {
  process_call_stats().reset();
  // Response slower than the time-out: the timer fires, then the late
  // response arrives and is recorded as a misjudgment.
  transport.set_latency(300 * kMillisecond);  // RTT 600 ms
  int called = 0;
  client.call(server.self(), kEcho, {}, CallOptions::fixed(400 * kMillisecond),
              [&](Result<Bytes>) { ++called; });
  events.run_until_idle();
  EXPECT_EQ(called, 1);
  obs::Registry& reg = process_call_stats().registry();
  EXPECT_EQ(reg.counter(obs::names::kNetTimeoutsFired).value(), 1u);
  EXPECT_EQ(reg.counter(obs::names::kNetLateResponses).value(), 1u);
  EXPECT_EQ(reg.histogram(obs::names::kNetTimeoutWaitUs).sum(),
            static_cast<std::uint64_t>(400 * kMillisecond));
  process_call_stats().reset();
  EXPECT_EQ(reg.counter(obs::names::kNetTimeoutsFired).value(), 0u);
}

TEST_F(NodeTest, ProcessStatsIgnoreHealthyCalls) {
  process_call_stats().reset();
  client.call(server.self(), kEcho, {}, CallOptions::fixed(kSecond), [](Result<Bytes>) {});
  events.run_until_idle();
  obs::Registry& reg = process_call_stats().registry();
  EXPECT_EQ(reg.counter(obs::names::kNetTimeoutsFired).value(), 0u);
  EXPECT_EQ(reg.counter(obs::names::kNetLateResponses).value(), 0u);
}

TEST_F(NodeTest, InjectedSinkReceivesStatsInsteadOfProcessAggregate) {
  AggregateCallStats local;
  client.call_policy().set_stats_sink(&local);
  process_call_stats().reset();
  client.call(server.self(), kEcho, {1}, CallOptions::fixed(kSecond), [](Result<Bytes>) {});
  events.run_until_idle();
  EXPECT_EQ(local.registry().counter(obs::names::kNetCallsStarted).value(), 1u);
  EXPECT_EQ(local.registry().counter(obs::names::kNetCallsOk).value(), 1u);
  EXPECT_EQ(local.registry().counter(obs::names::kNetAttempts).value(), 1u);
  obs::Registry& reg = process_call_stats().registry();
  EXPECT_EQ(reg.counter(obs::names::kNetCallsStarted).value(), 0u);
  client.call_policy().set_stats_sink(nullptr);  // restore the default
  client.call(server.self(), kEcho, {2}, CallOptions::fixed(kSecond), [](Result<Bytes>) {});
  events.run_until_idle();
  EXPECT_EQ(reg.counter(obs::names::kNetCallsStarted).value(), 1u);
  EXPECT_EQ(local.registry().counter(obs::names::kNetCallsStarted).value(), 1u);
}

TEST_F(NodeTest, ConcurrentCallsMatchBySequence) {
  // Two outstanding echoes with different payloads resolve to the right
  // callbacks even if responses interleave.
  std::vector<int> results(2, -1);
  client.call(server.self(), kEcho, {10}, CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { results[0] = r.value()[0]; });
  client.call(server.self(), kEcho, {20}, CallOptions::fixed(kSecond),
              [&](Result<Bytes> r) { results[1] = r.value()[0]; });
  events.run_until_idle();
  EXPECT_EQ(results[0], 10);
  EXPECT_EQ(results[1], 20);
}

}  // namespace
}  // namespace ew
