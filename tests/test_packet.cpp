// Tests for the lingua franca packet layer: framing, typing, stream
// reassembly, and hostile-input handling.
#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "obs/registry.hpp"

namespace ew {
namespace {

Packet make_packet(PacketKind kind, MsgType type, std::uint64_t seq,
                   Bytes payload) {
  Packet p;
  p.kind = kind;
  p.type = type;
  p.seq = seq;
  p.payload = std::move(payload);
  return p;
}

TEST(Packet, EncodeHasHeaderAndPayload) {
  const Packet p = make_packet(PacketKind::kRequest, 0x0202, 99, {1, 2, 3});
  const Bytes wire = encode_packet(p);
  EXPECT_EQ(wire.size(), wire::kHeaderSize + 3);
}

TEST(FrameParser, RoundTripSinglePacket) {
  const Packet p = make_packet(PacketKind::kResponse, 7, 12345, {9, 8, 7, 6});
  FrameParser fp;
  fp.feed(encode_packet(p));
  auto out = fp.next();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->kind, PacketKind::kResponse);
  EXPECT_EQ(out->type, 7);
  EXPECT_EQ(out->seq, 12345u);
  EXPECT_EQ(out->payload, (Bytes{9, 8, 7, 6}));
  EXPECT_EQ(fp.next().code(), Err::kUnavailable);
}

TEST(FrameParser, PrefixMoveOutKeepsStreamUsable) {
  // When the buffer holds exactly one whole frame the parser steals the
  // buffer instead of copying the payload; the parser must stay fully
  // usable for subsequent frames afterwards.
  FrameParser fp;
  const Bytes big(100'000, 0x5A);
  fp.feed(encode_packet(make_packet(PacketKind::kRequest, 3, 1, big)));
  auto first = fp.next();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->payload, big);
  EXPECT_EQ(fp.buffered(), 0u);

  // Next frame arrives split across feeds (copy path), then one whole
  // frame again (steal path).
  const Bytes wire2 = encode_packet(make_packet(PacketKind::kResponse, 4, 2, {1, 2}));
  fp.feed(std::span(wire2).subspan(0, 5));
  EXPECT_EQ(fp.next().code(), Err::kUnavailable);
  fp.feed(std::span(wire2).subspan(5));
  auto second = fp.next();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->payload, (Bytes{1, 2}));

  fp.feed(encode_packet(make_packet(PacketKind::kOneWay, 5, 3, {7})));
  auto third = fp.next();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->payload, (Bytes{7}));
  EXPECT_FALSE(fp.poisoned());
}

TEST(FrameParser, EmptyPayload) {
  FrameParser fp;
  fp.feed(encode_packet(make_packet(PacketKind::kOneWay, 1, 0, {})));
  auto out = fp.next();
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->payload.empty());
}

TEST(FrameParser, MultiplePacketsInOneFeed) {
  Bytes wire;
  for (int i = 0; i < 5; ++i) {
    const Bytes one = encode_packet(
        make_packet(PacketKind::kOneWay, static_cast<MsgType>(i), i, {Bytes(i, 0xCC)}));
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameParser fp;
  fp.feed(wire);
  for (int i = 0; i < 5; ++i) {
    auto out = fp.next();
    ASSERT_TRUE(out.ok()) << i;
    EXPECT_EQ(out->type, i);
    EXPECT_EQ(out->payload.size(), static_cast<std::size_t>(i));
  }
  EXPECT_EQ(fp.next().code(), Err::kUnavailable);
}

/// The stream may fragment arbitrarily; parameterize over chunk sizes.
class FrameParserChunked : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameParserChunked, ReassemblesAcrossChunks) {
  Bytes wire;
  const int kPackets = 7;
  for (int i = 0; i < kPackets; ++i) {
    Bytes payload(static_cast<std::size_t>(11 * i + 1), static_cast<std::uint8_t>(i));
    const Bytes one = encode_packet(
        make_packet(PacketKind::kRequest, static_cast<MsgType>(100 + i),
                    static_cast<std::uint64_t>(i), std::move(payload)));
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameParser fp;
  std::size_t got = 0;
  const std::size_t chunk = GetParam();
  for (std::size_t off = 0; off < wire.size(); off += chunk) {
    const std::size_t len = std::min(chunk, wire.size() - off);
    fp.feed(std::span(wire).subspan(off, len));
    for (;;) {
      auto out = fp.next();
      if (!out.ok()) {
        ASSERT_EQ(out.code(), Err::kUnavailable);
        break;
      }
      EXPECT_EQ(out->type, 100 + got);
      EXPECT_EQ(out->payload.size(), 11 * got + 1);
      ++got;
    }
  }
  EXPECT_EQ(got, static_cast<std::size_t>(kPackets));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, FrameParserChunked,
                         ::testing::Values(1, 2, 3, 7, 16, 19, 64, 1024));

TEST(FrameParser, BadMagicPoisons) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {1}));
  wire[0] ^= 0xFF;
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
  EXPECT_TRUE(fp.poisoned());
  // Further feeds are ignored; parser stays poisoned.
  fp.feed(encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {})));
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
}

TEST(FrameParser, BadVersionPoisons) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {}));
  wire[4] = 0x7F;  // version byte
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
  EXPECT_TRUE(fp.poisoned());
}

TEST(FrameParser, BadKindPoisons) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {}));
  wire[5] = 9;  // kind byte
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
}

TEST(FrameParser, OversizedLengthPoisons) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {}));
  // Length field sits at header bytes 16..19 (before the checksum); claim
  // 512 MiB.
  wire[16] = 0;
  wire[17] = 0;
  wire[18] = 0;
  wire[19] = 0x20;
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
}

TEST(FrameParser, PartialHeaderNeedsMoreBytes) {
  const Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {1, 2}));
  FrameParser fp;
  fp.feed(std::span(wire).subspan(0, wire::kHeaderSize - 1));
  EXPECT_EQ(fp.next().code(), Err::kUnavailable);
  EXPECT_FALSE(fp.poisoned());
  fp.feed(std::span(wire).subspan(wire::kHeaderSize - 1));
  EXPECT_TRUE(fp.next().ok());
}

TEST(FrameParser, BufferCompactionKeepsParsing) {
  // Feed enough packets to trigger internal compaction, verifying nothing
  // is lost or reordered.
  FrameParser fp;
  std::size_t got = 0;
  for (int round = 0; round < 200; ++round) {
    fp.feed(encode_packet(make_packet(PacketKind::kOneWay,
                                      static_cast<MsgType>(round % 50),
                                      static_cast<std::uint64_t>(round),
                                      Bytes(64, 0xEE))));
    auto out = fp.next();
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->seq, static_cast<std::uint64_t>(round));
    ++got;
  }
  EXPECT_EQ(got, 200u);
  EXPECT_EQ(fp.buffered(), 0u);
}

TEST(FrameParser, ChecksumMismatchPoisonsAndCounts) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 7, {1, 2, 3}));
  wire.back() ^= 0x01;  // flip one payload bit
  const auto before =
      obs::registry().counter(obs::names::kNetFramesCorrupt).value();
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
  EXPECT_TRUE(fp.poisoned());
  EXPECT_EQ(obs::registry().counter(obs::names::kNetFramesCorrupt).value(),
            before + 1);
}

TEST(FrameParser, ChecksumFieldCorruptionDetected) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 7, {}));
  wire[20] ^= 0xFF;  // checksum bytes are 20..23
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
}

TEST(Packet, ChecksumCoversTypeSeqAndPayload) {
  const Bytes payload{1, 2, 3};
  const auto base = wire::checksum(7, 9, payload);
  EXPECT_EQ(wire::checksum(7, 9, payload), base);  // deterministic
  EXPECT_NE(wire::checksum(8, 9, payload), base);
  EXPECT_NE(wire::checksum(7, 10, payload), base);
  EXPECT_NE(wire::checksum(7, 9, Bytes{1, 2, 4}), base);
}

TEST(FrameParser, MaxPayloadBoundaryAccepted) {
  // A payload exactly at the limit parses; one byte over poisons.
  Packet p = make_packet(PacketKind::kOneWay, 1, 1, Bytes(1024, 1));
  Bytes wire = encode_packet(p);
  FrameParser fp;
  fp.feed(wire);
  EXPECT_TRUE(fp.next().ok());
}

}  // namespace
}  // namespace ew
