// Tests for the lingua franca packet layer: framing, typing, stream
// reassembly, and hostile-input handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "net/packet.hpp"
#include "net/tcp_transport.hpp"
#include "obs/registry.hpp"

namespace ew {
namespace {

Packet make_packet(PacketKind kind, MsgType type, std::uint64_t seq,
                   Bytes payload) {
  Packet p;
  p.kind = kind;
  p.type = type;
  p.seq = seq;
  p.payload = std::move(payload);
  return p;
}

TEST(Packet, EncodeHasHeaderAndPayload) {
  const Packet p = make_packet(PacketKind::kRequest, 0x0202, 99, {1, 2, 3});
  const Bytes wire = encode_packet(p);
  EXPECT_EQ(wire.size(), wire::kHeaderSize + 3);
}

TEST(FrameParser, RoundTripSinglePacket) {
  const Packet p = make_packet(PacketKind::kResponse, 7, 12345, {9, 8, 7, 6});
  FrameParser fp;
  fp.feed(encode_packet(p));
  auto out = fp.next();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->kind, PacketKind::kResponse);
  EXPECT_EQ(out->type, 7);
  EXPECT_EQ(out->seq, 12345u);
  EXPECT_EQ(out->payload, (Bytes{9, 8, 7, 6}));
  EXPECT_EQ(fp.next().code(), Err::kUnavailable);
}

TEST(FrameParser, PrefixMoveOutKeepsStreamUsable) {
  // When the buffer holds exactly one whole frame the parser steals the
  // buffer instead of copying the payload; the parser must stay fully
  // usable for subsequent frames afterwards.
  FrameParser fp;
  const Bytes big(100'000, 0x5A);
  fp.feed(encode_packet(make_packet(PacketKind::kRequest, 3, 1, big)));
  auto first = fp.next();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->payload, big);
  EXPECT_EQ(fp.buffered(), 0u);

  // Next frame arrives split across feeds (copy path), then one whole
  // frame again (steal path).
  const Bytes wire2 = encode_packet(make_packet(PacketKind::kResponse, 4, 2, {1, 2}));
  fp.feed(std::span(wire2).subspan(0, 5));
  EXPECT_EQ(fp.next().code(), Err::kUnavailable);
  fp.feed(std::span(wire2).subspan(5));
  auto second = fp.next();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->payload, (Bytes{1, 2}));

  fp.feed(encode_packet(make_packet(PacketKind::kOneWay, 5, 3, {7})));
  auto third = fp.next();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->payload, (Bytes{7}));
  EXPECT_FALSE(fp.poisoned());
}

TEST(FrameParser, EmptyPayload) {
  FrameParser fp;
  fp.feed(encode_packet(make_packet(PacketKind::kOneWay, 1, 0, {})));
  auto out = fp.next();
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->payload.empty());
}

TEST(FrameParser, MultiplePacketsInOneFeed) {
  Bytes wire;
  for (int i = 0; i < 5; ++i) {
    const Bytes one = encode_packet(
        make_packet(PacketKind::kOneWay, static_cast<MsgType>(i), i, {Bytes(i, 0xCC)}));
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameParser fp;
  fp.feed(wire);
  for (int i = 0; i < 5; ++i) {
    auto out = fp.next();
    ASSERT_TRUE(out.ok()) << i;
    EXPECT_EQ(out->type, i);
    EXPECT_EQ(out->payload.size(), static_cast<std::size_t>(i));
  }
  EXPECT_EQ(fp.next().code(), Err::kUnavailable);
}

/// The stream may fragment arbitrarily; parameterize over chunk sizes.
class FrameParserChunked : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameParserChunked, ReassemblesAcrossChunks) {
  Bytes wire;
  const int kPackets = 7;
  for (int i = 0; i < kPackets; ++i) {
    Bytes payload(static_cast<std::size_t>(11 * i + 1), static_cast<std::uint8_t>(i));
    const Bytes one = encode_packet(
        make_packet(PacketKind::kRequest, static_cast<MsgType>(100 + i),
                    static_cast<std::uint64_t>(i), std::move(payload)));
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameParser fp;
  std::size_t got = 0;
  const std::size_t chunk = GetParam();
  for (std::size_t off = 0; off < wire.size(); off += chunk) {
    const std::size_t len = std::min(chunk, wire.size() - off);
    fp.feed(std::span(wire).subspan(off, len));
    for (;;) {
      auto out = fp.next();
      if (!out.ok()) {
        ASSERT_EQ(out.code(), Err::kUnavailable);
        break;
      }
      EXPECT_EQ(out->type, 100 + got);
      EXPECT_EQ(out->payload.size(), 11 * got + 1);
      ++got;
    }
  }
  EXPECT_EQ(got, static_cast<std::size_t>(kPackets));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, FrameParserChunked,
                         ::testing::Values(1, 2, 3, 7, 16, 19, 64, 1024));

TEST(FrameParser, BadMagicPoisons) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {1}));
  wire[0] ^= 0xFF;
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
  EXPECT_TRUE(fp.poisoned());
  // Further feeds are ignored; parser stays poisoned.
  fp.feed(encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {})));
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
}

TEST(FrameParser, BadVersionPoisons) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {}));
  wire[4] = 0x7F;  // version byte
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
  EXPECT_TRUE(fp.poisoned());
}

TEST(FrameParser, BadKindPoisons) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {}));
  wire[5] = 9;  // kind byte
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
}

TEST(FrameParser, OversizedLengthPoisons) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {}));
  // Length field sits at header bytes 16..19 (before the checksum); claim
  // 512 MiB.
  wire[16] = 0;
  wire[17] = 0;
  wire[18] = 0;
  wire[19] = 0x20;
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
}

TEST(FrameParser, PartialHeaderNeedsMoreBytes) {
  const Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 1, {1, 2}));
  FrameParser fp;
  fp.feed(std::span(wire).subspan(0, wire::kHeaderSize - 1));
  EXPECT_EQ(fp.next().code(), Err::kUnavailable);
  EXPECT_FALSE(fp.poisoned());
  fp.feed(std::span(wire).subspan(wire::kHeaderSize - 1));
  EXPECT_TRUE(fp.next().ok());
}

TEST(FrameParser, BufferCompactionKeepsParsing) {
  // Feed enough packets to trigger internal compaction, verifying nothing
  // is lost or reordered.
  FrameParser fp;
  std::size_t got = 0;
  for (int round = 0; round < 200; ++round) {
    fp.feed(encode_packet(make_packet(PacketKind::kOneWay,
                                      static_cast<MsgType>(round % 50),
                                      static_cast<std::uint64_t>(round),
                                      Bytes(64, 0xEE))));
    auto out = fp.next();
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->seq, static_cast<std::uint64_t>(round));
    ++got;
  }
  EXPECT_EQ(got, 200u);
  EXPECT_EQ(fp.buffered(), 0u);
}

TEST(FrameParser, ChecksumMismatchPoisonsAndCounts) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 7, {1, 2, 3}));
  wire.back() ^= 0x01;  // flip one payload bit
  const auto before =
      obs::registry().counter(obs::names::kNetFramesCorrupt).value();
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
  EXPECT_TRUE(fp.poisoned());
  EXPECT_EQ(obs::registry().counter(obs::names::kNetFramesCorrupt).value(),
            before + 1);
}

TEST(FrameParser, ChecksumFieldCorruptionDetected) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 7, {}));
  wire[20] ^= 0xFF;  // checksum bytes are 20..23
  FrameParser fp;
  fp.feed(wire);
  EXPECT_EQ(fp.next().code(), Err::kProtocol);
}

TEST(Packet, ChecksumCoversTypeSeqAndPayload) {
  const Bytes payload{1, 2, 3};
  const auto base = wire::checksum(7, 9, payload);
  EXPECT_EQ(wire::checksum(7, 9, payload), base);  // deterministic
  EXPECT_NE(wire::checksum(8, 9, payload), base);
  EXPECT_NE(wire::checksum(7, 10, payload), base);
  EXPECT_NE(wire::checksum(7, 9, Bytes{1, 2, 4}), base);
}

TEST(FrameParser, MaxPayloadBoundaryAccepted) {
  // A payload exactly at the limit parses; one byte over poisons.
  Packet p = make_packet(PacketKind::kOneWay, 1, 1, Bytes(1024, 1));
  Bytes wire = encode_packet(p);
  FrameParser fp;
  fp.feed(wire);
  EXPECT_TRUE(fp.next().ok());
}

// --------------------------------------------------------------------------
// The zero-copy receive path (PR 6): recv_buffer/commit in, next_view out.

TEST(FrameView, NextViewRoundTripsWithoutOwnership) {
  const Packet p = make_packet(PacketKind::kRequest, 21, 777, {4, 5, 6, 7});
  FrameParser fp;
  fp.feed(encode_packet(p));
  auto v = fp.next_view();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->kind, PacketKind::kRequest);
  EXPECT_EQ(v->type, 21);
  EXPECT_EQ(v->seq, 777u);
  ASSERT_EQ(v->payload.size(), 4u);
  EXPECT_EQ(Bytes(v->payload.begin(), v->payload.end()), (Bytes{4, 5, 6, 7}));
  // to_packet materializes an owning copy, equal to the original.
  const Packet owned = v->to_packet();
  EXPECT_EQ(owned.kind, p.kind);
  EXPECT_EQ(owned.type, p.type);
  EXPECT_EQ(owned.seq, p.seq);
  EXPECT_EQ(owned.payload, p.payload);
  EXPECT_EQ(fp.next_view().code(), Err::kUnavailable);
}

TEST(FrameView, RecvBufferCommitReassemblesChunkedStream) {
  // The recv(2) path: ask for buffer space, copy a chunk in, commit — no
  // feed(). Frames must reassemble across arbitrary chunk splits.
  Bytes wire;
  const int kPackets = 5;
  for (int i = 0; i < kPackets; ++i) {
    const Bytes one = encode_packet(make_packet(
        PacketKind::kOneWay, static_cast<MsgType>(i),
        static_cast<std::uint64_t>(i), Bytes(static_cast<std::size_t>(i) * 9, 0xAB)));
    wire.insert(wire.end(), one.begin(), one.end());
  }
  FrameParser fp;
  std::size_t got = 0;
  const std::size_t chunk = 13;
  for (std::size_t off = 0; off < wire.size(); off += chunk) {
    const std::size_t len = std::min(chunk, wire.size() - off);
    auto dst = fp.recv_buffer(len);
    ASSERT_GE(dst.size(), len);
    std::memcpy(dst.data(), wire.data() + off, len);
    fp.commit(len);
    for (;;) {
      auto v = fp.next_view();
      if (!v.ok()) {
        ASSERT_EQ(v.code(), Err::kUnavailable);
        break;
      }
      EXPECT_EQ(v->type, got);
      EXPECT_EQ(v->payload.size(), got * 9);
      ++got;
    }
  }
  EXPECT_EQ(got, static_cast<std::size_t>(kPackets));
  EXPECT_EQ(fp.buffered(), 0u);
}

TEST(FrameView, NextAndNextViewInterleave) {
  // Both pop paths share one cursor; mixing them must walk the stream in
  // order with no frame seen twice.
  FrameParser fp;
  for (int i = 0; i < 4; ++i) {
    fp.feed(encode_packet(make_packet(PacketKind::kOneWay,
                                      static_cast<MsgType>(i),
                                      static_cast<std::uint64_t>(i), {static_cast<std::uint8_t>(i)})));
  }
  auto a = fp.next();        // owning
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->type, 0);
  auto b = fp.next_view();   // view
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->type, 1);
  auto c = fp.next();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->type, 2);
  auto d = fp.next_view();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->type, 3);
  EXPECT_EQ(fp.next().code(), Err::kUnavailable);
}

TEST(FrameView, ChecksumMismatchPoisonsViewPath) {
  Bytes wire = encode_packet(make_packet(PacketKind::kOneWay, 1, 7, {1, 2, 3}));
  wire.back() ^= 0x01;
  FrameParser fp;
  auto dst = fp.recv_buffer(wire.size());
  std::memcpy(dst.data(), wire.data(), wire.size());
  fp.commit(wire.size());
  EXPECT_EQ(fp.next_view().code(), Err::kProtocol);
  EXPECT_TRUE(fp.poisoned());
  // A poisoned parser ignores further commits too.
  fp.commit(0);
  EXPECT_EQ(fp.next_view().code(), Err::kProtocol);
}

TEST(FrameView, RecvBufferGrowsAndCompacts) {
  // Large frame split across many small recv_buffer/commit rounds: the
  // buffer must grow to fit and keep the bytes straight; after consuming,
  // fresh buffers start from a reset cursor.
  const Bytes big(200'000, 0x3C);
  const Bytes wire =
      encode_packet(make_packet(PacketKind::kRequest, 9, 42, big));
  FrameParser fp;
  const std::size_t chunk = 4096;
  for (std::size_t off = 0; off < wire.size(); off += chunk) {
    const std::size_t len = std::min(chunk, wire.size() - off);
    auto dst = fp.recv_buffer(len);
    std::memcpy(dst.data(), wire.data() + off, len);
    fp.commit(len);
  }
  auto v = fp.next_view();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->payload.size(), big.size());
  EXPECT_TRUE(std::equal(v->payload.begin(), v->payload.end(), big.begin()));
  EXPECT_EQ(fp.buffered(), 0u);
  // The parser remains usable on the owning path afterwards.
  fp.feed(encode_packet(make_packet(PacketKind::kOneWay, 2, 43, {1})));
  auto p2 = fp.next();
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->payload, (Bytes{1}));
}

// --------------------------------------------------------------------------
// encode_routed_frame: the transport's single-allocation send-path encoder.

TEST(RoutedFrame, BytesMatchTheTwoPassReference) {
  // The single-pass encoder (header with checksum patched in after the
  // fact) must produce byte-identical wire to the obvious two-pass
  // reference: build the routed payload, then encode_packet it. Peers from
  // before the PR-6 optimization stay interoperable.
  const Packet p = make_packet(PacketKind::kRequest, 33, 991, {10, 20, 30});
  const Endpoint src{"10.1.2.3", 4444};
  const Endpoint dst{"localhost", 5555};

  Writer routed(p.payload.size() + 64);
  routed.str(src.host);
  routed.u16(src.port);
  routed.str(dst.host);
  routed.u16(dst.port);
  routed.raw(p.payload);
  Packet reference;
  reference.kind = p.kind;
  reference.type = p.type;
  reference.seq = p.seq;
  reference.payload = routed.take();

  EXPECT_EQ(encode_routed_frame(p, src, dst), encode_packet(reference));
}

TEST(RoutedFrame, ParsesAndUnroutesThroughTheViewPath) {
  const Packet p = make_packet(PacketKind::kOneWay, 8, 5, {0xDE, 0xAD});
  const Endpoint src{"127.0.0.1", 1000};
  const Endpoint dst{"127.0.0.1", 2000};
  FrameParser fp;
  fp.feed(encode_routed_frame(p, src, dst));
  auto v = fp.next_view();
  ASSERT_TRUE(v.ok());  // checksum over routing + payload verified
  EXPECT_EQ(v->kind, p.kind);
  EXPECT_EQ(v->type, p.type);
  EXPECT_EQ(v->seq, p.seq);
  Reader r(v->payload);
  EXPECT_EQ(*r.str(), src.host);
  EXPECT_EQ(*r.u16(), src.port);
  EXPECT_EQ(*r.str(), dst.host);
  EXPECT_EQ(*r.u16(), dst.port);
  const auto body = r.rest();
  EXPECT_EQ(Bytes(body.begin(), body.end()), p.payload);
}

}  // namespace
}  // namespace ew
