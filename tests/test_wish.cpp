// WISH subsystem tests: the wire codecs (round-trips, truncation, hostile
// counts, deterministic fuzz), the EnvStore LWW map (read-your-writes,
// convergence, the crash-restart ghost re-mint), the crash-stop JobTable,
// the daemon's primitives end-to-end on the sim (jobs over the wire,
// barrier, leader-once, scatter/gather, env through a gossip pool), and the
// model-checker fixture for the crash-safe barrier protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "gossip/gossip_server.hpp"
#include "net/node.hpp"
#include "sim/event_queue.hpp"
#include "sim/mc/explorer.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"
#include "wish/daemon.hpp"
#include "wish/env_store.hpp"
#include "wish/job_table.hpp"
#include "wish/mc_world.hpp"
#include "wish/protocol.hpp"

namespace ew::wish {
namespace {

// ---- Codec round-trips ----------------------------------------------------

TEST(WishCodec, SpawnRoundTrip) {
  SpawnRequest req;
  req.owner = Endpoint{"client-3", 9000};
  req.jobs.push_back({"sort /tmp/in", 3 * kSecond});
  req.jobs.push_back({"", 0});
  auto back = SpawnRequest::deserialize(req.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->owner, req.owner);
  ASSERT_EQ(back->jobs.size(), 2u);
  EXPECT_EQ(back->jobs[0].command, "sort /tmp/in");
  EXPECT_EQ(back->jobs[0].runtime, 3 * kSecond);
  EXPECT_EQ(back->jobs[1].runtime, 0);

  SpawnReply rep;
  rep.incarnation = 7;
  rep.ids = {(7ull << 32) | 1, (7ull << 32) | 2};
  auto rback = SpawnReply::deserialize(rep.serialize());
  ASSERT_TRUE(rback.ok());
  EXPECT_EQ(rback->incarnation, 7u);
  EXPECT_EQ(rback->ids, rep.ids);
}

TEST(WishCodec, PollSignalReapRoundTrip) {
  PollRequest poll;
  poll.ids = {1, 2, 99};
  auto pback = PollRequest::deserialize(poll.serialize());
  ASSERT_TRUE(pback.ok());
  EXPECT_EQ(pback->ids, poll.ids);

  PollReply rep;
  rep.incarnation = 2;
  rep.jobs.push_back({1, JobState::kExited, 0});
  rep.jobs.push_back({99, JobState::kLost, 0});
  auto rback = PollReply::deserialize(rep.serialize());
  ASSERT_TRUE(rback.ok());
  ASSERT_EQ(rback->jobs.size(), 2u);
  EXPECT_EQ(rback->jobs[0].state, JobState::kExited);
  EXPECT_EQ(rback->jobs[1].state, JobState::kLost);

  SignalRequest sig{42, 9};
  auto sback = SignalRequest::deserialize(sig.serialize());
  ASSERT_TRUE(sback.ok());
  EXPECT_EQ(sback->id, 42u);
  EXPECT_EQ(sback->signum, 9);

  SignalReply srep{JobState::kKilled};
  auto srback = SignalReply::deserialize(srep.serialize());
  ASSERT_TRUE(srback.ok());
  EXPECT_EQ(srback->state, JobState::kKilled);

  ReapRequest reap;
  reap.ids = {1};
  auto reback = ReapRequest::deserialize(reap.serialize());
  ASSERT_TRUE(reback.ok());
  EXPECT_EQ(reback->ids, reap.ids);

  ReapReply rr{1};
  auto rrback = ReapReply::deserialize(rr.serialize());
  ASSERT_TRUE(rrback.ok());
  EXPECT_EQ(rrback->reaped, 1u);
}

TEST(WishCodec, EnvRoundTrip) {
  EnvSetRequest set{"WISH_ROOT", "/grid/wish"};
  auto sback = EnvSetRequest::deserialize(set.serialize());
  ASSERT_TRUE(sback.ok());
  EXPECT_EQ(sback->key, "WISH_ROOT");
  EXPECT_EQ(sback->value, "/grid/wish");

  EnvSetReply srep{5};
  auto srback = EnvSetReply::deserialize(srep.serialize());
  ASSERT_TRUE(srback.ok());
  EXPECT_EQ(srback->version, 5u);

  EnvGetRequest get{"WISH_ROOT"};
  auto gback = EnvGetRequest::deserialize(get.serialize());
  ASSERT_TRUE(gback.ok());
  EXPECT_EQ(gback->key, "WISH_ROOT");

  EnvGetReply grep;
  grep.found = true;
  grep.value = "/grid/wish";
  grep.version = 5;
  auto grback = EnvGetReply::deserialize(grep.serialize());
  ASSERT_TRUE(grback.ok());
  EXPECT_TRUE(grback->found);
  EXPECT_EQ(grback->value, "/grid/wish");
  EXPECT_EQ(grback->version, 5u);
}

TEST(WishCodec, SyncPrimitivesRoundTrip) {
  BarrierEnter enter;
  enter.name = "bar0";
  enter.epoch = 3;
  enter.expected = 8;
  enter.participant = Endpoint{"wish-1", 701};
  enter.released_seen = true;  // the contagion bit must survive the wire
  auto eback = BarrierEnter::deserialize(enter.serialize());
  ASSERT_TRUE(eback.ok());
  EXPECT_EQ(eback->name, "bar0");
  EXPECT_EQ(eback->epoch, 3u);
  EXPECT_EQ(eback->expected, 8u);
  EXPECT_EQ(eback->participant, enter.participant);
  EXPECT_TRUE(eback->released_seen);

  BarrierEnterReply erep;
  erep.released = true;
  erep.coordinator_incarnation = 4;
  auto erback = BarrierEnterReply::deserialize(erep.serialize());
  ASSERT_TRUE(erback.ok());
  EXPECT_TRUE(erback->released);
  EXPECT_EQ(erback->coordinator_incarnation, 4u);

  BarrierRelease rel{"bar0", 3};
  auto rback = BarrierRelease::deserialize(rel.serialize());
  ASSERT_TRUE(rback.ok());
  EXPECT_EQ(rback->name, "bar0");
  EXPECT_EQ(rback->epoch, 3u);

  LeaderClaim claim{"lead0", 1, "wish-2"};
  auto cback = LeaderClaim::deserialize(claim.serialize());
  ASSERT_TRUE(cback.ok());
  EXPECT_EQ(cback->claimant, "wish-2");

  LeaderReply lrep{"wish-2", 9};
  auto lback = LeaderReply::deserialize(lrep.serialize());
  ASSERT_TRUE(lback.ok());
  EXPECT_EQ(lback->winner, "wish-2");
  EXPECT_EQ(lback->coordinator_incarnation, 9u);

  ScatterRequest sc;
  sc.name = "sc0";
  sc.epoch = 2;
  sc.payload = {0xde, 0xad, 0xbe, 0xef};
  sc.subtree = {Endpoint{"wish-3", 701}, Endpoint{"wish-4", 701}};
  auto scback = ScatterRequest::deserialize(sc.serialize());
  ASSERT_TRUE(scback.ok());
  EXPECT_EQ(scback->payload, sc.payload);
  EXPECT_EQ(scback->subtree, sc.subtree);

  ScatterReply screp{5, 0x1234567890abcdefull};
  auto scrback = ScatterReply::deserialize(screp.serialize());
  ASSERT_TRUE(scrback.ok());
  EXPECT_EQ(scrback->delivered, 5u);
  EXPECT_EQ(scrback->checksum, screp.checksum);
}

// ---- Codec negatives ------------------------------------------------------

/// Every WISH decoder, type-erased ("parse and tell me if it was ok"), with
/// one valid encoding each — the seed corpus for truncation and bit flips.
struct CodecCase {
  const char* name;
  std::function<bool(const Bytes&)> parse;
  Bytes valid;
};

std::vector<CodecCase> codec_cases() {
  SpawnRequest spawn;
  spawn.owner = Endpoint{"c", 9000};
  spawn.jobs.push_back({"cmd", kSecond});
  SpawnReply spawn_rep;
  spawn_rep.incarnation = 1;
  spawn_rep.ids = {1, 2};
  PollRequest poll;
  poll.ids = {1};
  PollReply poll_rep;
  poll_rep.jobs.push_back({1, JobState::kRunning, 0});
  ReapRequest reap;
  reap.ids = {1};
  BarrierEnter enter;
  enter.name = "b";
  enter.epoch = 1;
  enter.expected = 3;
  enter.participant = Endpoint{"w", 701};
  ScatterRequest sc;
  sc.name = "s";
  sc.payload = {1, 2, 3};
  sc.subtree = {Endpoint{"w", 701}};
  return {
      {"SpawnRequest",
       [](const Bytes& b) { return SpawnRequest::deserialize(b).ok(); },
       spawn.serialize()},
      {"SpawnReply",
       [](const Bytes& b) { return SpawnReply::deserialize(b).ok(); },
       spawn_rep.serialize()},
      {"PollRequest",
       [](const Bytes& b) { return PollRequest::deserialize(b).ok(); },
       poll.serialize()},
      {"PollReply",
       [](const Bytes& b) { return PollReply::deserialize(b).ok(); },
       poll_rep.serialize()},
      {"SignalRequest",
       [](const Bytes& b) { return SignalRequest::deserialize(b).ok(); },
       SignalRequest{1, 9}.serialize()},
      {"SignalReply",
       [](const Bytes& b) { return SignalReply::deserialize(b).ok(); },
       SignalReply{JobState::kExited}.serialize()},
      {"ReapRequest",
       [](const Bytes& b) { return ReapRequest::deserialize(b).ok(); },
       reap.serialize()},
      {"ReapReply",
       [](const Bytes& b) { return ReapReply::deserialize(b).ok(); },
       ReapReply{1}.serialize()},
      {"EnvSetRequest",
       [](const Bytes& b) { return EnvSetRequest::deserialize(b).ok(); },
       EnvSetRequest{"k", "v"}.serialize()},
      {"EnvSetReply",
       [](const Bytes& b) { return EnvSetReply::deserialize(b).ok(); },
       EnvSetReply{1}.serialize()},
      {"EnvGetRequest",
       [](const Bytes& b) { return EnvGetRequest::deserialize(b).ok(); },
       EnvGetRequest{"k"}.serialize()},
      {"EnvGetReply",
       [](const Bytes& b) { return EnvGetReply::deserialize(b).ok(); },
       EnvGetReply{true, "v", 1}.serialize()},
      {"BarrierEnter",
       [](const Bytes& b) { return BarrierEnter::deserialize(b).ok(); },
       enter.serialize()},
      {"BarrierEnterReply",
       [](const Bytes& b) { return BarrierEnterReply::deserialize(b).ok(); },
       BarrierEnterReply{true, 1}.serialize()},
      {"BarrierRelease",
       [](const Bytes& b) { return BarrierRelease::deserialize(b).ok(); },
       BarrierRelease{"b", 1}.serialize()},
      {"LeaderClaim",
       [](const Bytes& b) { return LeaderClaim::deserialize(b).ok(); },
       LeaderClaim{"l", 1, "w"}.serialize()},
      {"LeaderReply",
       [](const Bytes& b) { return LeaderReply::deserialize(b).ok(); },
       LeaderReply{"w", 1}.serialize()},
      {"ScatterRequest",
       [](const Bytes& b) { return ScatterRequest::deserialize(b).ok(); },
       sc.serialize()},
      {"ScatterReply",
       [](const Bytes& b) { return ScatterReply::deserialize(b).ok(); },
       ScatterReply{1, 2}.serialize()},
  };
}

TEST(WishCodecNegative, EveryValidEncodingParses) {
  for (const auto& c : codec_cases()) {
    EXPECT_TRUE(c.parse(c.valid)) << c.name;
  }
}

TEST(WishCodecNegative, EveryStrictPrefixIsRejected) {
  for (const auto& c : codec_cases()) {
    for (std::size_t len = 0; len < c.valid.size(); ++len) {
      Bytes prefix(c.valid.begin(),
                   c.valid.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_FALSE(c.parse(prefix)) << c.name << " prefix " << len;
    }
  }
}

TEST(WishCodecNegative, EnvelopeVersionAndKindAreEnforced) {
  for (const auto& c : codec_cases()) {
    Bytes v0 = c.valid;
    v0[0] = 0;  // version 0: never valid
    EXPECT_FALSE(c.parse(v0)) << c.name << " version 0";
    Bytes vfuture = c.valid;
    vfuture[0] = kWishWireVersion + 1;
    EXPECT_FALSE(c.parse(vfuture)) << c.name << " future version";
    Bytes wrong_kind = c.valid;
    wrong_kind[1] ^= 0xff;  // low byte of the u16 kind
    EXPECT_FALSE(c.parse(wrong_kind)) << c.name << " wrong kind";
  }
}

TEST(WishCodecNegative, HostileCountsCannotDriveAllocation) {
  // A count field past the batch ceiling, and a "plausible" count with no
  // bytes behind it, must both be rejected before any vector is sized.
  for (std::uint32_t count : {kMaxWishBatch + 1, 0xffffffffu, 1000u}) {
    {
      Writer w;
      write_wish_header(w, msgtype::kJobPoll);
      w.u32(count);  // ids follow on the real wire; none here
      EXPECT_FALSE(PollRequest::deserialize(w.take()).ok()) << count;
    }
    {
      Writer w;
      write_wish_header(w, msgtype::kJobSpawn);
      gossip::write_endpoint(w, Endpoint{"c", 9000});
      w.u32(count);
      EXPECT_FALSE(SpawnRequest::deserialize(w.take()).ok()) << count;
    }
    {
      Writer w;
      write_wish_header(w, msgtype::kScatter);
      w.str("s");
      w.u64(1);
      w.blob(Bytes{});
      w.u32(count);
      EXPECT_FALSE(ScatterRequest::deserialize(w.take()).ok()) << count;
    }
  }
}

TEST(WishCodecNegative, NegativeJobRuntimeIsRejected) {
  Writer w;
  write_wish_header(w, msgtype::kJobSpawn);
  gossip::write_endpoint(w, Endpoint{"c", 9000});
  w.u32(1);
  w.str("cmd");
  w.i64(-1);
  EXPECT_FALSE(SpawnRequest::deserialize(w.take()).ok());
}

TEST(WishCodecFuzz, RandomBytesNeverCrashDecoders) {
  Rng rng(0x3157u);
  auto cases = codec_cases();
  for (int i = 0; i < 2000; ++i) {
    const std::size_t len = rng.below(129);
    Bytes noise(len);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.below(256));
    for (const auto& c : cases) c.parse(noise);  // must not crash
  }
}

TEST(WishCodecFuzz, BitFlipsOfValidEncodingsNeverCrashDecoders) {
  for (const auto& c : codec_cases()) {
    for (std::size_t pos = 0; pos < c.valid.size(); ++pos) {
      for (std::uint8_t flip : {0x01, 0x80, 0xFF}) {
        Bytes mutated = c.valid;
        mutated[pos] ^= flip;
        c.parse(mutated);  // ok or error, never UB
      }
    }
  }
}

// ---- EnvStore -------------------------------------------------------------

TEST(EnvStore, ReadYourWritesAndPerKeyVersions) {
  EnvStore s(fnv1a64("wish-0"));
  EXPECT_FALSE(s.get("PATH").has_value());
  const std::uint64_t v1 = s.set("PATH", "/bin");
  EXPECT_EQ(s.get("PATH"), "/bin");
  const std::uint64_t v2 = s.set("PATH", "/usr/bin");
  EXPECT_GT(v2, v1);
  EXPECT_EQ(s.get("PATH"), "/usr/bin");
  EXPECT_EQ(s.sets(), 2u);
}

TEST(EnvStore, TwoReplicasConvergeAfterOneExchangeEachWay) {
  EnvStore a(fnv1a64("wish-0"));
  EnvStore b(fnv1a64("wish-1"));
  a.set("A", "from-a");
  a.set("SHARED", "a-wins-ties-maybe");
  b.set("B", "from-b");
  b.set("SHARED", "b-version-equal");

  ASSERT_TRUE(a.apply(b.snapshot()).ok());
  ASSERT_TRUE(b.apply(a.snapshot()).ok());

  EXPECT_EQ(a.content_digest(), b.content_digest());
  EXPECT_EQ(a.get("A"), "from-a");
  EXPECT_EQ(a.get("B"), "from-b");
  EXPECT_EQ(a.get("SHARED"), b.get("SHARED"));
}

TEST(EnvStore, MalformedBlobIsRejectedWhole) {
  EnvStore a(1);
  a.set("K", "V");
  const std::uint64_t digest = a.content_digest();
  EXPECT_FALSE(a.apply(Bytes{0x01, 0x02}).ok());
  EXPECT_EQ(a.content_digest(), digest);  // no partial merge
}

TEST(EnvStore, CrashRestartReMintsAboveItsOwnGhost) {
  // Incarnation 1 writes K twice (per-key version 2), then "crashes" — the
  // grid still holds its snapshot. Incarnation 2 of the SAME daemon (same
  // writer id, counters reset) writes K once (version 1) and then receives
  // its own pre-crash blob back via gossip. Without the ghost re-mint the
  // higher-version dead write would shadow the live one forever (the
  // StateStore hazard pinned in test_gossip_state.cpp).
  const std::uint64_t writer = fnv1a64("wish-0");
  Bytes ghost;
  {
    EnvStore before(writer);
    before.set("K", "old-1");
    before.set("K", "old-2");
    ghost = before.snapshot();
  }
  EnvStore after(writer);
  after.set("K", "new");
  ASSERT_TRUE(after.apply(ghost).ok());
  EXPECT_EQ(after.get("K"), "new") << "pre-crash ghost shadowed a live write";
  EXPECT_EQ(after.ghost_remints(), 1u);
  ASSERT_TRUE(after.entry("K").has_value());
  EXPECT_GT(after.entry("K")->version, 2u);  // re-stamped above the ghost

  // The re-minted write now dominates the ghost at any other replica too.
  EnvStore other(fnv1a64("wish-1"));
  ASSERT_TRUE(other.apply(ghost).ok());
  ASSERT_TRUE(other.apply(after.snapshot()).ok());
  EXPECT_EQ(other.get("K"), "new");
}

// ---- JobTable -------------------------------------------------------------

TEST(JobTable, IdsEmbedIncarnationAndUnknownPollsAreLost) {
  JobTable t(/*incarnation=*/3);
  auto& job = t.spawn({"cmd", kSecond}, Endpoint{"c", 9000});
  EXPECT_EQ(job.id >> 32, 3u);
  EXPECT_EQ(job.state, JobState::kQueued);
  EXPECT_EQ(t.status_of(job.id).state, JobState::kQueued);
  // A restarted daemon (fresh incarnation) has no record: kLost.
  JobTable t2(/*incarnation=*/4);
  EXPECT_EQ(t2.status_of(job.id).state, JobState::kLost);
  auto& job2 = t2.spawn({"cmd", kSecond}, Endpoint{"c", 9000});
  EXPECT_NE(job2.id, job.id) << "restart re-issued a live id";
}

TEST(JobTable, OnlyTerminalJobsReap) {
  JobTable t(1);
  auto& job = t.spawn({"cmd", kSecond}, Endpoint{"c", 9000});
  const std::uint64_t id = job.id;
  job.state = JobState::kRunning;
  EXPECT_FALSE(t.reap(id));
  EXPECT_EQ(t.size(), 1u);
  t.find(id)->state = JobState::kExited;
  EXPECT_TRUE(t.reap(id));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.reap(id));  // already gone
  EXPECT_EQ(t.status_of(id).state, JobState::kLost);
}

// ---- Daemon end-to-end on the sim ----------------------------------------

class WishDaemonTest : public ::testing::Test {
 protected:
  WishDaemonTest() : net_(Rng(0x3157)), transport_(events_, net_) {
    net_.set_loss_rate(0.0);
    net_.set_jitter_sigma(0.0);
  }

  ~WishDaemonTest() override {
    for (auto& d : daemons_) {
      if (d->daemon) d->daemon->stop();
    }
    for (auto& g : gossips_) g->stop();
  }

  void build(int num_daemons, int num_gossips = 0) {
    std::vector<Endpoint> gossip_eps;
    for (int i = 0; i < num_gossips; ++i) {
      gossip_eps.push_back(Endpoint{"g" + std::to_string(i), 501});
    }
    for (int i = 0; i < num_gossips; ++i) {
      gossip::GossipServer::Options o;
      o.poll_period = 5 * kSecond;
      o.peer_sync_period = 8 * kSecond;
      o.parent_sync_period = 8 * kSecond;
      auto node = std::make_unique<Node>(
          events_, transport_, gossip_eps[static_cast<std::size_t>(i)]);
      ASSERT_TRUE(node->start().ok());
      auto server = std::make_unique<gossip::GossipServer>(*node, comparators_,
                                                           gossip_eps, o);
      server->start();
      gossip_nodes_.push_back(std::move(node));
      gossips_.push_back(std::move(server));
    }
    for (int i = 0; i < num_daemons; ++i) {
      peers_.push_back(Endpoint{"w" + std::to_string(i), 701});
    }
    for (int i = 0; i < num_daemons; ++i) {
      auto unit = std::make_unique<DaemonUnit>();
      unit->node = std::make_unique<Node>(events_, transport_,
                                          peers_[static_cast<std::size_t>(i)]);
      ASSERT_TRUE(unit->node->start().ok());
      WishDaemon::Options o;
      o.incarnation = 1;
      o.peers = peers_;
      o.gossips = gossip_eps;
      unit->daemon = std::make_unique<WishDaemon>(*unit->node, comparators_, o);
      unit->daemon->start();
      daemons_.push_back(std::move(unit));
    }
    client_node_ = std::make_unique<Node>(events_, transport_,
                                          Endpoint{"client", 9000});
    ASSERT_TRUE(client_node_->start().ok());
  }

  WishDaemon& daemon(int i) {
    return *daemons_[static_cast<std::size_t>(i)]->daemon;
  }

  /// One client call against a daemon, run to completion. Fails the test if
  /// the call errors; returns the raw reply payload.
  Bytes rpc(const Endpoint& to, MsgType type, Bytes payload) {
    Bytes reply;
    bool done = false;
    bool ok = false;
    client_node_->call(to, type, std::move(payload),
                       CallOptions::fixed(2 * kSecond),
                       [&](Result<Bytes> r) {
                         done = true;
                         ok = r.ok();
                         if (r.ok()) reply = std::move(*r);
                       });
    events_.run_for(5 * kSecond);
    EXPECT_TRUE(done);
    EXPECT_TRUE(ok);
    return reply;
  }

  struct DaemonUnit {
    std::unique_ptr<Node> node;
    std::unique_ptr<WishDaemon> daemon;
  };

  sim::EventQueue events_;
  sim::NetworkModel net_;
  sim::SimTransport transport_;
  gossip::ComparatorRegistry comparators_;
  std::vector<Endpoint> peers_;
  std::vector<std::unique_ptr<Node>> gossip_nodes_;
  std::vector<std::unique_ptr<gossip::GossipServer>> gossips_;
  std::vector<std::unique_ptr<DaemonUnit>> daemons_;
  std::unique_ptr<Node> client_node_;
};

TEST_F(WishDaemonTest, JobLifecycleOverTheWire) {
  build(1);
  // Spawn two jobs: one short (exits), one long (killed then reaped).
  SpawnRequest spawn;
  spawn.owner = client_node_->self();
  spawn.jobs.push_back({"short", 3 * kSecond});
  spawn.jobs.push_back({"long", kHour});
  auto srep = SpawnReply::deserialize(
      rpc(peers_[0], msgtype::kJobSpawn, spawn.serialize()));
  ASSERT_TRUE(srep.ok());
  ASSERT_EQ(srep->ids.size(), 2u);
  EXPECT_EQ(srep->incarnation, 1u);
  const std::uint64_t short_id = srep->ids[0];
  const std::uint64_t long_id = srep->ids[1];

  // rpc() already ran 5 s: the short job exited, the long one still runs.
  PollRequest poll;
  poll.ids = {short_id, long_id, 0xdeadbeef};
  auto prep = PollReply::deserialize(
      rpc(peers_[0], msgtype::kJobPoll, poll.serialize()));
  ASSERT_TRUE(prep.ok());
  ASSERT_EQ(prep->jobs.size(), 3u);
  EXPECT_EQ(prep->jobs[0].state, JobState::kExited);
  EXPECT_EQ(prep->jobs[0].exit_code, 0);
  EXPECT_EQ(prep->jobs[1].state, JobState::kRunning);
  EXPECT_EQ(prep->jobs[2].state, JobState::kLost);  // unknown id

  SignalRequest sig{long_id, 9};
  auto sigrep = SignalReply::deserialize(
      rpc(peers_[0], msgtype::kJobSignal, sig.serialize()));
  ASSERT_TRUE(sigrep.ok());
  EXPECT_EQ(sigrep->state, JobState::kKilled);

  ReapRequest reap;
  reap.ids = {short_id, long_id};
  auto rrep = ReapReply::deserialize(
      rpc(peers_[0], msgtype::kJobReap, reap.serialize()));
  ASSERT_TRUE(rrep.ok());
  EXPECT_EQ(rrep->reaped, 2u);
  EXPECT_EQ(daemon(0).jobs().size(), 0u);
  EXPECT_EQ(daemon(0).jobs_completed(), 1u);
}

TEST_F(WishDaemonTest, BarrierReleasesEveryParticipantExactlyOnce) {
  build(3);
  std::vector<int> released(3, 0);
  for (int i = 0; i < 3; ++i) {
    daemon(i).enter_barrier("bar", 1, 3, [&released, i] { ++released[i]; });
  }
  events_.run_for(30 * kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(released[i], 1) << "w" << i;
    EXPECT_EQ(daemon(i).open_barrier_waits(), 0u) << "w" << i;
  }
  // Exactly one daemon coordinates "bar" and it counted exactly one round.
  std::uint64_t rounds = 0;
  for (int i = 0; i < 3; ++i) rounds += daemon(i).barrier_rounds();
  EXPECT_EQ(rounds, 1u);
}

TEST_F(WishDaemonTest, LeaderOncePicksExactlyOneWinner) {
  build(3);
  std::vector<std::string> winners;
  int wins = 0;
  for (int i = 0; i < 3; ++i) {
    daemon(i).leader_once(
        "lead", 1, "w" + std::to_string(i),
        [&, i](bool won, const std::string& winner, std::uint64_t inc) {
          EXPECT_EQ(inc, 1u);
          winners.push_back(winner);
          if (won) ++wins;
        });
  }
  events_.run_for(10 * kSecond);
  ASSERT_EQ(winners.size(), 3u);
  EXPECT_EQ(wins, 1);
  EXPECT_EQ(winners[0], winners[1]);
  EXPECT_EQ(winners[1], winners[2]);
}

TEST_F(WishDaemonTest, ScatterReachesEveryPeerWithMatchingChecksum) {
  build(5);
  const Bytes payload = {0x42, 0x13, 0x37};
  std::optional<ScatterReply> reply;
  daemon(0).scatter("sc", 1, payload, [&](ScatterReply r) { reply = r; });
  events_.run_for(30 * kSecond);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->delivered, 5u);
  std::uint64_t want = 0;
  for (const auto& ep : peers_) want += scatter_fold(ep, payload);
  EXPECT_EQ(reply->checksum, want);
  for (int i = 0; i < 5; ++i) {
    auto applied = daemon(i).scatter_payload("sc");
    ASSERT_TRUE(applied.has_value()) << "w" << i;
    EXPECT_EQ(applied->first, 1u);
    EXPECT_EQ(applied->second, payload);
  }
}

TEST_F(WishDaemonTest, EnvWritesPropagateThroughTheGossipPool) {
  build(3, /*num_gossips=*/1);
  events_.run_for(30 * kSecond);  // registrations settle
  daemon(0).env_set("GREETING", "hello-grid");
  EXPECT_EQ(daemon(0).env_get("GREETING"), "hello-grid");  // read-your-writes
  events_.run_for(2 * kMinute);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(daemon(i).env_get("GREETING"), "hello-grid") << "w" << i;
    EXPECT_EQ(daemon(i).env().content_digest(),
              daemon(0).env().content_digest())
        << "w" << i;
  }
  // A later write from another daemon wins everywhere (LWW per key).
  daemon(2).env_set("GREETING", "hello-again");
  events_.run_for(2 * kMinute);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(daemon(i).env_get("GREETING"), "hello-again") << "w" << i;
  }
}

TEST_F(WishDaemonTest, ConcurrentWritersAtEqualVersionsStillConverge) {
  // Regression: both daemons write BEFORE any gossip round, so both publish
  // their env blob under the same leading version (mint 1). The SyncClient
  // used to drop a pushed update on a comparator tie ("equally fresh"), so
  // tied-but-different blobs never exchanged and the stores diverged
  // forever; the fix resolves ties like StateStore::merge does, by larger
  // content checksum.
  build(3, /*num_gossips=*/1);
  daemon(0).env_set("FROM_W0", "zero");
  daemon(1).env_set("FROM_W1", "one");
  EXPECT_EQ(daemon(0).env().mint_version(), daemon(1).env().mint_version());
  events_.run_for(3 * kMinute);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(daemon(i).env_get("FROM_W0"), "zero") << "w" << i;
    EXPECT_EQ(daemon(i).env_get("FROM_W1"), "one") << "w" << i;
    EXPECT_EQ(daemon(i).env().content_digest(),
              daemon(0).env().content_digest())
        << "w" << i;
  }
}

// ---- Model checker over the barrier/leader fixture ------------------------

TEST(WishExplorer, BarrierNeverBothReleasesAndReformsUnderCoordinatorChaos) {
  sim::mc::Options o;
  o.max_steps = 6;
  o.window = 4 * kSecond;
  o.max_faults = 2;  // crash, then restart, of the coordinator host
  sim::mc::Report r =
      sim::mc::Explorer([] { return make_wish_world(0x5eed0a01); }, o)
          .explore();
  EXPECT_GT(r.branches, 0u);
  EXPECT_TRUE(r.ok());
  for (const auto& v : r.violations) {
    ADD_FAILURE() << v.repro.to_string() << ": " << v.messages[0];
  }
}

}  // namespace
}  // namespace ew::wish
