// Integration tests for the NWS clique protocol on the simulated network:
// formation, leader failure, member failure, partition and merge.
#include <gtest/gtest.h>

#include <memory>

#include "gossip/clique.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew::gossip {
namespace {

class CliqueHarness {
 public:
  explicit CliqueHarness(int n, bool lossy = false)
      : net_(Rng(99)), transport_(events_, net_) {
    net_.set_loss_rate(lossy ? 0.02 : 0.0);
    net_.set_jitter_sigma(lossy ? 0.3 : 0.0);
    for (int i = 0; i < n; ++i) {
      well_known_.push_back(Endpoint{host(i), 700});
    }
    CliqueMember::Options opts;
    opts.token_period = 2 * kSecond;
    opts.probe_period = 5 * kSecond;
    opts.hop_timeout = kSecond;
    for (int i = 0; i < n; ++i) {
      auto node = std::make_unique<Node>(events_, transport_, well_known_[static_cast<std::size_t>(i)]);
      EXPECT_TRUE(node->start().ok());
      auto member = std::make_unique<CliqueMember>(*node, well_known_, opts);
      member->start();
      nodes_.push_back(std::move(node));
      members_.push_back(std::move(member));
    }
  }

  static std::string host(int i) { return "m" + std::to_string(i); }

  void run(Duration d) { events_.run_for(d); }
  void set_host_up(int i, bool up) { transport_.set_host_up(host(i), up); }
  void partition(const std::string& a, const std::string& b, bool cut) {
    net_.set_partitioned(a, b, cut);
  }
  void set_site(int i, const std::string& site) { net_.set_site(host(i), site); }

  CliqueMember& member(int i) { return *members_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }

  /// True if every *up* member agrees on one view of the given size.
  bool converged(std::size_t expect_size, const std::vector<int>& up) {
    const View& ref = member(up[0]).view();
    if (ref.members.size() != expect_size) return false;
    for (int i : up) {
      const View& v = member(i).view();
      if (v.generation != ref.generation || v.leader != ref.leader ||
          v.members != ref.members) {
        return false;
      }
    }
    return true;
  }

  std::vector<int> all_up() {
    std::vector<int> v;
    for (int i = 0; i < size(); ++i) v.push_back(i);
    return v;
  }

  sim::EventQueue events_;
  sim::NetworkModel net_;
  sim::SimTransport transport_;
  std::vector<Endpoint> well_known_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<CliqueMember>> members_;
};

class CliqueFormation : public ::testing::TestWithParam<int> {};

TEST_P(CliqueFormation, ConvergesToSingleClique) {
  CliqueHarness h(GetParam());
  h.run(5 * kMinute);
  EXPECT_TRUE(h.converged(static_cast<std::size_t>(GetParam()), h.all_up()))
      << "n=" << GetParam() << " view size " << h.member(0).view().members.size();
  // Leader is the lexicographically smallest member (deterministic merges).
  EXPECT_EQ(h.member(0).view().leader, (Endpoint{"m0", 700}));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CliqueFormation, ::testing::Values(2, 3, 4, 5, 8));

TEST(Clique, SingletonIsItsOwnLeader) {
  CliqueHarness h(1);
  h.run(kMinute);
  EXPECT_TRUE(h.member(0).is_leader());
  EXPECT_EQ(h.member(0).view().members.size(), 1u);
}

TEST(Clique, TokensCirculate) {
  CliqueHarness h(3);
  h.run(5 * kMinute);
  // Non-leader members see tokens regularly.
  EXPECT_GT(h.member(1).tokens_seen(), 20u);
  EXPECT_GT(h.member(2).tokens_seen(), 20u);
}

TEST(Clique, ViewListenerFires) {
  CliqueHarness h(3);
  int changes = 0;
  h.member(2).on_view_change([&](const View&) { ++changes; });
  h.run(2 * kMinute);
  EXPECT_GT(changes, 0);
}

TEST(Clique, MemberFailureShrinksClique) {
  CliqueHarness h(4);
  h.run(5 * kMinute);
  ASSERT_TRUE(h.converged(4, h.all_up()));
  h.set_host_up(3, false);
  h.run(3 * kMinute);
  EXPECT_TRUE(h.converged(3, {0, 1, 2}))
      << "view size " << h.member(0).view().members.size();
  EXPECT_FALSE(h.member(0).view().contains(Endpoint{"m3", 700}));
}

TEST(Clique, FailedMemberRejoinsOnRecovery) {
  CliqueHarness h(4);
  h.run(5 * kMinute);
  h.set_host_up(3, false);
  h.run(3 * kMinute);
  ASSERT_TRUE(h.converged(3, {0, 1, 2}));
  h.set_host_up(3, true);
  h.run(4 * kMinute);
  EXPECT_TRUE(h.converged(4, h.all_up()));
}

TEST(Clique, LeaderFailureElectsNewLeader) {
  CliqueHarness h(4);
  h.run(5 * kMinute);
  ASSERT_EQ(h.member(1).view().leader, (Endpoint{"m0", 700}));
  h.set_host_up(0, false);
  h.run(5 * kMinute);
  EXPECT_TRUE(h.converged(3, {1, 2, 3}))
      << "view size " << h.member(1).view().members.size();
  EXPECT_EQ(h.member(1).view().leader, (Endpoint{"m1", 700}));
  // Members fragmented when tokens stopped, then re-merged.
  EXPECT_GT(h.member(1).fragmentations() + h.member(2).fragmentations() +
                h.member(3).fragmentations(),
            0u);
}

TEST(Clique, OldLeaderReturnsAndReclaimsLeadership) {
  CliqueHarness h(3);
  h.run(5 * kMinute);
  h.set_host_up(0, false);
  h.run(5 * kMinute);
  ASSERT_TRUE(h.converged(2, {1, 2}));
  h.set_host_up(0, true);
  h.run(5 * kMinute);
  EXPECT_TRUE(h.converged(3, h.all_up()));
  // m0 is smallest, so merges converge back onto it.
  EXPECT_EQ(h.member(1).view().leader, (Endpoint{"m0", 700}));
}

TEST(Clique, PartitionFormsSubcliquesThenMerges) {
  CliqueHarness h(4);
  h.set_site(0, "west");
  h.set_site(1, "west");
  h.set_site(2, "east");
  h.set_site(3, "east");
  h.run(5 * kMinute);
  ASSERT_TRUE(h.converged(4, h.all_up()));

  h.partition("west", "east", true);
  h.run(6 * kMinute);
  // Two subcliques: {m0,m1} led by m0 and {m2,m3} led by m2.
  EXPECT_TRUE(h.converged(2, {0, 1})) << h.member(0).view().members.size();
  EXPECT_TRUE(h.converged(2, {2, 3})) << h.member(2).view().members.size();
  EXPECT_EQ(h.member(2).view().leader, (Endpoint{"m2", 700}));

  h.partition("west", "east", false);
  h.run(6 * kMinute);
  EXPECT_TRUE(h.converged(4, h.all_up()))
      << "view size " << h.member(0).view().members.size();
}

TEST(Clique, SurvivesLossyNetwork) {
  CliqueHarness h(5, /*lossy=*/true);
  h.run(10 * kMinute);
  // With 2% loss the clique must still assemble and hold.
  EXPECT_TRUE(h.converged(5, h.all_up()))
      << "view size " << h.member(0).view().members.size();
}

TEST(Clique, StopIsQuiescent) {
  CliqueHarness h(3);
  h.run(2 * kMinute);
  for (int i = 0; i < 3; ++i) h.member(i).stop();
  // No further activity should keep the queue alive indefinitely: the
  // remaining events drain without rescheduling.
  h.events_.run_until_idle();
  EXPECT_EQ(h.events_.pending(), 0u);
}

}  // namespace
}  // namespace ew::gossip
