// Tests for the miniature Network Weather Service: station probing, sensor
// pushes, forecast queries, and behaviour under partitions.
#include <gtest/gtest.h>

#include <memory>

#include "nws/nws.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew::nws {
namespace {

class NwsTest : public ::testing::Test {
 protected:
  NwsTest() : net_(Rng(55)), transport_(events_, net_) {
    net_.set_loss_rate(0.0);
    net_.set_jitter_sigma(0.0);
  }

  NwsStationModule* add_station(const std::string& host,
                                std::vector<Endpoint> peers) {
    auto fw = std::make_unique<core::ServiceFramework>(events_, transport_,
                                                       Endpoint{host, 950});
    NwsStationModule::Options o;
    o.peers = std::move(peers);
    o.probe_period = 10 * kSecond;
    auto module = std::make_unique<NwsStationModule>(o);
    auto* station = module.get();
    fw->install(std::move(module));
    EXPECT_TRUE(fw->start().ok());
    frameworks_.push_back(std::move(fw));
    return station;
  }

  sim::EventQueue events_;
  sim::NetworkModel net_;
  sim::SimTransport transport_;
  std::vector<std::unique_ptr<core::ServiceFramework>> frameworks_;
};

TEST_F(NwsTest, StationsProbeEachOther) {
  const std::vector<Endpoint> peers = {Endpoint{"n0", 950}, Endpoint{"n1", 950}};
  auto* s0 = add_station("n0", peers);
  auto* s1 = add_station("n1", peers);
  net_.set_site("n0", "west");
  net_.set_site("n1", "east");
  events_.run_for(5 * kMinute);
  EXPECT_GT(s0->probes_completed(), 20u);
  EXPECT_GT(s1->probes_completed(), 20u);
  const Forecast f = s0->forecast("latency:n1:950");
  ASSERT_GT(f.samples, 10u);
  // Cross-site RTT: two one-way hops of the 40 ms default.
  EXPECT_NEAR(f.value, static_cast<double>(80 * kMillisecond),
              static_cast<double>(12 * kMillisecond));
}

TEST_F(NwsTest, ForecastTracksCongestionChange) {
  const std::vector<Endpoint> peers = {Endpoint{"n0", 950}, Endpoint{"n1", 950}};
  auto* s0 = add_station("n0", peers);
  add_station("n1", peers);
  net_.set_site("n0", "west");
  net_.set_site("n1", "east");
  events_.run_for(5 * kMinute);
  const double before = s0->forecast("latency:n1:950").value;
  net_.set_congestion(3.0);
  events_.run_for(10 * kMinute);
  const double after = s0->forecast("latency:n1:950").value;
  EXPECT_GT(after, 2.0 * before);
}

TEST_F(NwsTest, SensorPushesCpuAvailability) {
  auto* s0 = add_station("n0", {});
  // A sensor on another "host" reporting a synthetic availability signal.
  auto fw = std::make_unique<core::ServiceFramework>(events_, transport_,
                                                     Endpoint{"worker", 951});
  NwsCpuSensor::Options o;
  o.station = Endpoint{"n0", 950};
  o.resource = "cpu:worker";
  double level = 0.75;
  o.read = [&level] { return level; };
  o.period = 10 * kSecond;
  fw->install(std::make_unique<NwsCpuSensor>(o));
  ASSERT_TRUE(fw->start().ok());
  frameworks_.push_back(std::move(fw));

  events_.run_for(5 * kMinute);
  const Forecast f = s0->forecast("cpu:worker");
  ASSERT_GT(f.samples, 10u);
  EXPECT_NEAR(f.value, 0.75, 0.01);
  // The machine gets busy; the forecast follows.
  level = 0.2;
  events_.run_for(10 * kMinute);
  EXPECT_NEAR(s0->forecast("cpu:worker").value, 0.2, 0.05);
}

TEST_F(NwsTest, QueryOverTheWire) {
  auto* s0 = add_station("n0", {});
  s0->record("custom:series", 42.0);
  s0->record("custom:series", 42.0);
  s0->record("custom:series", 42.0);

  Node client(events_, transport_, Endpoint{"cli", 1});
  ASSERT_TRUE(client.start().ok());
  Writer w;
  w.str("custom:series");
  std::optional<Result<Bytes>> got;
  client.call(Endpoint{"n0", 950}, msgtype::kNwsQuery, w.take(), CallOptions::fixed(5 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events_.run_for(10 * kSecond);
  ASSERT_TRUE(got && got->ok());
  auto reply = NwsForecastReply::deserialize(*got.value());
  ASSERT_TRUE(reply.ok());
  EXPECT_DOUBLE_EQ(reply->value, 42.0);
  EXPECT_EQ(reply->samples, 3u);
  EXPECT_FALSE(reply->method.empty());
}

TEST_F(NwsTest, QueryUnknownResourceRejected) {
  add_station("n0", {});
  Node client(events_, transport_, Endpoint{"cli", 1});
  ASSERT_TRUE(client.start().ok());
  Writer w;
  w.str("no:such:resource");
  std::optional<Result<Bytes>> got;
  client.call(Endpoint{"n0", 950}, msgtype::kNwsQuery, w.take(), CallOptions::fixed(5 * kSecond),
              [&](Result<Bytes> r) { got = std::move(r); });
  events_.run_for(10 * kSecond);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code(), Err::kRejected);
}

TEST_F(NwsTest, PartitionedPeerYieldsNoSamplesNotGarbage) {
  const std::vector<Endpoint> peers = {Endpoint{"n0", 950}, Endpoint{"n1", 950}};
  auto* s0 = add_station("n0", peers);
  add_station("n1", peers);
  net_.set_site("n0", "west");
  net_.set_site("n1", "east");
  events_.run_for(3 * kMinute);
  const auto samples_before = s0->forecast("latency:n1:950").samples;
  net_.set_partitioned("west", "east", true);
  events_.run_for(5 * kMinute);
  // No new samples arrive during the partition (failed probes are not
  // recorded as measurements).
  EXPECT_EQ(s0->forecast("latency:n1:950").samples, samples_before);
}

TEST_F(NwsTest, MeasurementCodecRoundTrip) {
  NwsMeasurement m;
  m.resource = "cpu:host-1";
  m.value = 0.625;
  auto out = NwsMeasurement::deserialize(m.serialize());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->resource, "cpu:host-1");
  EXPECT_DOUBLE_EQ(out->value, 0.625);
  EXPECT_FALSE(NwsMeasurement::deserialize(Bytes{1}).ok());
  EXPECT_FALSE(NwsForecastReply::deserialize(Bytes{1, 2}).ok());
}

}  // namespace
}  // namespace ew::nws
