// Property test for the versioned-digest/delta anti-entropy redesign.
//
// The old protocol shipped the full state set every round, so convergence to
// "everyone holds the freshest copy of everything" was trivially true. The
// digest/delta protocol only moves blobs a summary proves stale — this test
// checks that the end state is still exactly the reference full-state
// exchange would produce, across seeded runs with link loss, gossip host
// flaps, and concurrent version bumps, for both the flat pool and the
// hierarchical (sharded) one.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "gossip/gossip_server.hpp"
#include "gossip/sync_client.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew::gossip {
namespace {

/// A component exposing several versioned-counter state types.
struct MultiComponent {
  MultiComponent(sim::EventQueue& events, Transport& transport,
                 const std::string& host, const ComparatorRegistry& comparators,
                 std::vector<Endpoint> gossips, const std::vector<MsgType>& types)
      : node(std::make_unique<Node>(events, transport, Endpoint{host, 2000})) {
    EXPECT_TRUE(node->start().ok());
    SyncClient::Options o;
    o.reregister_period = 30 * kSecond;
    o.retry_delay = 2 * kSecond;
    sync = std::make_unique<SyncClient>(*node, comparators, std::move(gossips), o);
    for (MsgType t : types) {
      versions[t] = 0;
      sync->expose(t, SyncClient::StateHandlers{
                          [this, t] { return versioned_blob(versions.at(t), {}); },
                          [this, t](const Bytes& fresh) {
                            versions.at(t) = *blob_version(fresh);
                          },
                      });
    }
    sync->start();
  }

  std::unique_ptr<Node> node;
  std::unique_ptr<SyncClient> sync;
  std::map<MsgType, std::uint64_t> versions;
};

/// Run one seeded chaos episode and check the pool's final state against the
/// reference model (for these counters: the max version ever written per
/// type, which is exactly what merging every blob full-state would keep).
/// Optionally writes a fingerprint of the final stores (for the determinism
/// check). ASSERT_* needs a void return, hence the out-parameter.
void run_convergence_property(std::uint64_t seed, std::uint32_t num_cliques,
                              std::uint64_t* fingerprint = nullptr) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " cliques=" + std::to_string(num_cliques));
  sim::EventQueue events;
  sim::NetworkModel net{Rng(seed)};
  net.set_loss_rate(0.0);
  net.set_jitter_sigma(0.0);
  sim::SimTransport transport(events, net);
  ComparatorRegistry comparators;
  Rng rng(seed * 7919 + 17);

  constexpr int kNumGossips = 4;
  std::vector<Endpoint> well_known;
  for (int i = 0; i < kNumGossips; ++i) {
    well_known.push_back(Endpoint{"g" + std::to_string(i), 501});
  }
  GossipServer::Options opts;
  opts.poll_period = 5 * kSecond;
  opts.peer_sync_period = 8 * kSecond;
  opts.parent_sync_period = 8 * kSecond;
  opts.lease = 10 * kMinute;
  opts.num_cliques = num_cliques;
  opts.clique.token_period = 2 * kSecond;
  opts.clique.probe_period = 4 * kSecond;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<std::unique_ptr<GossipServer>> servers;
  for (int i = 0; i < kNumGossips; ++i) {
    auto node = std::make_unique<Node>(events, transport,
                                       well_known[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(node->start().ok());
    auto server =
        std::make_unique<GossipServer>(*node, comparators, well_known, opts);
    server->start();
    nodes.push_back(std::move(node));
    servers.push_back(std::move(server));
  }

  std::vector<MsgType> all_types;
  for (int i = 0; i < 6; ++i) {
    all_types.push_back(static_cast<MsgType>(0x0460 + i));
  }
  std::vector<std::unique_ptr<MultiComponent>> comps;
  for (int i = 0; i < 5; ++i) {
    // Each component exposes a seeded subset (at least two types, overlapping
    // with other components so freshness races actually happen).
    std::vector<MsgType> mine;
    for (MsgType t : all_types) {
      if (rng.below(2) == 0) mine.push_back(t);
    }
    while (mine.size() < 2) {
      const MsgType t = all_types[rng.below(all_types.size())];
      if (std::find(mine.begin(), mine.end(), t) == mine.end()) mine.push_back(t);
    }
    comps.push_back(std::make_unique<MultiComponent>(
        events, transport, "comp-" + std::to_string(i), comparators, well_known,
        mine));
  }
  events.run_for(1 * kMinute);  // registration + clique formation

  // Reference model: the freshest version ever written per type.
  std::map<MsgType, std::uint64_t> reference;
  for (const auto& c : comps) {
    for (const auto& [t, v] : c->versions) {
      if (!reference.count(t)) reference[t] = v;
    }
  }

  // Chaos: eight segments of concurrent version bumps, link loss, and gossip
  // host flaps, all driven by the seed.
  for (int seg = 0; seg < 8; ++seg) {
    for (auto& c : comps) {
      for (auto& [t, v] : c->versions) {
        if (rng.below(2) == 0) {
          v += 1 + rng.below(5);
          if (v > reference[t]) reference[t] = v;
        }
      }
    }
    net.set_loss_rate(seg % 2 == 1 ? 0.15 : 0.0);
    if (rng.below(2) == 0) {
      const auto victim = rng.below(kNumGossips);
      transport.set_host_up("g" + std::to_string(victim), false);
      events.run_for(30 * kSecond);
      transport.set_host_up("g" + std::to_string(victim), true);
    }
    events.run_for(40 * kSecond);
  }

  // Heal and let anti-entropy finish.
  net.set_loss_rate(0.0);
  for (int i = 0; i < kNumGossips; ++i) {
    transport.set_host_up("g" + std::to_string(i), true);
  }
  events.run_for(10 * kMinute);

  // Property 1: every gossip that owns a type holds exactly the reference
  // copy — the digest/delta protocol lost nothing and resurrected nothing.
  for (const auto& [t, want] : reference) {
    for (const auto& s : servers) {
      if (!s->owns_type(t)) continue;
      const auto stored = s->store().get(t);
      ASSERT_TRUE(stored.has_value()) << "type " << t << " missing";
      EXPECT_EQ(*blob_version(stored->content), want) << "type " << t;
    }
  }
  // Property 2: within a clique the stores are bit-identical (same rollup).
  for (std::uint32_t k = 0; k < num_cliques; ++k) {
    std::uint64_t rollup = 0;
    bool first = true;
    for (const auto& s : servers) {
      if (s->clique_id() != k) continue;
      if (first) {
        rollup = s->store().rollup_checksum();
        first = false;
      } else {
        EXPECT_EQ(s->store().rollup_checksum(), rollup) << "clique " << k;
      }
    }
  }
  // Property 3: the components themselves were pulled up to the freshest
  // version of everything they expose.
  for (const auto& c : comps) {
    for (const auto& [t, v] : c->versions) {
      EXPECT_EQ(v, reference[t]) << "component type " << t;
    }
  }
  if (fingerprint != nullptr) {
    std::uint64_t fp = 0;
    for (const auto& s : servers) {
      fp = fp * 1099511628211ull + s->store().rollup_checksum();
    }
    *fingerprint = fp;
  }
  for (auto& s : servers) s->stop();
  for (auto& c : comps) c->sync->stop();
}

TEST(GossipAntiEntropy, ConvergesToFullStateReferenceFlat) {
  for (std::uint64_t seed : {1u, 2u, 3u}) run_convergence_property(seed, 1);
}

TEST(GossipAntiEntropy, ConvergesToFullStateReferenceHierarchical) {
  for (std::uint64_t seed : {1u, 2u, 3u}) run_convergence_property(seed, 2);
}

TEST(GossipAntiEntropy, SameSeedSameFinalRollups) {
  // Determinism spot-check: two runs of the same seed end in identical
  // rollup checksums (the sim replays bit-for-bit, so any divergence here
  // is nondeterminism inside the gossip tier itself).
  for (std::uint32_t cliques : {1u, 2u}) {
    std::uint64_t first = 0, second = 0;
    run_convergence_property(11, cliques, &first);
    run_convergence_property(11, cliques, &second);
    EXPECT_EQ(first, second) << "cliques=" << cliques;
  }
}

}  // namespace
}  // namespace ew::gossip
