// Tests for the scheduler's heuristic-directive policy (Section 3.1.1):
// "Servers are programmed to issue different control directives based on
// the type of algorithm the client is executing [and] how much progress the
// client has made."
#include <gtest/gtest.h>

#include <map>

#include "core/scheduler.hpp"
#include "net/inproc_transport.hpp"
#include "sim/event_queue.hpp"

namespace ew::core {
namespace {

class DirectivePolicyTest : public ::testing::Test {
 protected:
  DirectivePolicyTest()
      : transport_(events_),
        sched_node_(events_, transport_, Endpoint{"sched", 601}),
        client_node_(events_, transport_, Endpoint{"fake", 2000}) {
    EXPECT_TRUE(sched_node_.start().ok());
    EXPECT_TRUE(client_node_.start().ok());
    SchedulerServer::Options o;
    o.pool.n = 20;
    o.pool.k = 4;
    sched_ = std::make_unique<SchedulerServer>(sched_node_, o);
    sched_->start();
  }

  /// Register a synthetic client and return its first work spec.
  ramsey::WorkSpec register_client(const std::string& host) {
    ClientHello hello;
    hello.client = Endpoint{host, 2000};
    hello.infra = Infra::kUnix;
    hello.host = host;
    std::optional<ramsey::WorkSpec> spec;
    client_node_.call(sched_node_.self(), msgtype::kSchedRegister,
                      hello.serialize(), CallOptions::fixed(kSecond), [&](Result<Bytes> r) {
                        ASSERT_TRUE(r.ok());
                        auto d = DirectiveBatch::deserialize(*r);
                        ASSERT_TRUE(d.ok() && !d->assign.empty());
                        spec = d->assign.front();
                      });
    events_.run_for(5 * kSecond);
    EXPECT_TRUE(spec.has_value());
    return *spec;
  }

  /// Send one progress report for a unit on behalf of `host`, over the
  /// batch wire with a fresh per-client sequence number.
  void report(const std::string& host, std::uint64_t unit_id,
              std::uint64_t ops, std::uint64_t best_energy) {
    ReportBatch batch;
    batch.client = Endpoint{host, 2000};
    batch.seq = ++seq_[host];
    batch.want_units = 1;
    ramsey::WorkReport rep;
    rep.unit_id = unit_id;
    rep.ops_done = ops;
    rep.best_energy = best_energy;
    Rng rng(unit_id);
    rep.best_graph = ramsey::ColoredGraph::random(20, rng).serialize();
    batch.reports.push_back(std::move(rep));
    client_node_.call(sched_node_.self(), msgtype::kSchedReportBatch,
                      batch.serialize(), CallOptions::fixed(kSecond),
                      [](Result<Bytes>) {});
    events_.run_for(5 * kSecond);
  }

  sim::EventQueue events_;
  InProcTransport transport_;
  Node sched_node_;
  Node client_node_;
  std::unique_ptr<SchedulerServer> sched_;
  std::map<std::string, std::uint64_t> seq_;  // per-client report sequence
};

TEST_F(DirectivePolicyTest, RotatesKindsBeforeEvidence) {
  std::map<ramsey::HeuristicKind, int> seen;
  for (int i = 0; i < 6; ++i) {
    const auto spec = register_client("c" + std::to_string(i));
    ++seen[spec.kind];
  }
  EXPECT_EQ(seen.size(), 3u) << "all three heuristics must stay in play";
}

TEST_F(DirectivePolicyTest, KindStatsAccumulateFromReports) {
  const auto spec = register_client("c0");
  report("c0", spec.unit_id, 500'000'000, 100);
  report("c0", spec.unit_id, 500'000'000, 60);  // 40 energy for 0.5 Gop
  const auto& ks = sched_->kind_stats()[static_cast<std::size_t>(spec.kind)];
  EXPECT_DOUBLE_EQ(ks.gops, 1.0);
  EXPECT_DOUBLE_EQ(ks.improvement, 40.0);
  EXPECT_DOUBLE_EQ(ks.yield(), 40.0);
}

TEST_F(DirectivePolicyTest, ExploitsHighYieldKindOnceMeasured) {
  // Feed evidence: annealing buys 10x the energy reduction per op.
  std::map<ramsey::HeuristicKind, std::vector<std::pair<std::string, std::uint64_t>>>
      holders;
  int idx = 0;
  while (holders.size() < 3 || holders.begin()->second.empty()) {
    const std::string host = "seed" + std::to_string(idx++);
    const auto spec = register_client(host);
    holders[spec.kind].emplace_back(host, spec.unit_id);
    if (idx > 20) break;
  }
  ASSERT_EQ(holders.size(), 3u);
  for (auto& [kind, units] : holders) {
    for (auto& [host, unit] : units) {
      const std::uint64_t drop =
          kind == ramsey::HeuristicKind::kAnneal ? 50 : 5;
      report(host, unit, 600'000'000, 500);
      report(host, unit, 600'000'000, 500 - drop);
    }
  }
  for (const auto& ks : sched_->kind_stats()) ASSERT_GE(ks.gops, 1.0);

  // Fresh units should now be mostly annealing (modulo the explore slots).
  int anneal = 0, total = 0;
  for (int i = 0; i < 16; ++i) {
    const auto spec = register_client("x" + std::to_string(i));
    ++total;
    anneal += spec.kind == ramsey::HeuristicKind::kAnneal ? 1 : 0;
  }
  EXPECT_GE(anneal * 2, total) << "exploitation must dominate";
  EXPECT_LT(anneal, total) << "exploration must continue";
}

TEST_F(DirectivePolicyTest, YieldIsZeroWithoutSpend) {
  SchedulerServer::KindStats ks;
  EXPECT_DOUBLE_EQ(ks.yield(), 0.0);
}

}  // namespace
}  // namespace ew::core
