# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_sim_transport[1]_include.cmake")
include("/root/repo/build/tests/test_reactor_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_forecast[1]_include.cmake")
include("/root/repo/build/tests/test_timeout[1]_include.cmake")
include("/root/repo/build/tests/test_gossip_state[1]_include.cmake")
include("/root/repo/build/tests/test_clique[1]_include.cmake")
include("/root/repo/build/tests/test_gossip_server[1]_include.cmake")
include("/root/repo/build/tests/test_ramsey_graph[1]_include.cmake")
include("/root/repo/build/tests/test_ramsey_clique[1]_include.cmake")
include("/root/repo/build/tests/test_ramsey_heuristic[1]_include.cmake")
include("/root/repo/build/tests/test_work_pool[1]_include.cmake")
include("/root/repo/build/tests/test_persistent_state[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler_client[1]_include.cmake")
include("/root/repo/build/tests/test_infra[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_service_framework[1]_include.cmake")
include("/root/repo/build/tests/test_nws[1]_include.cmake")
include("/root/repo/build/tests/test_directive_policy[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_fault_injection[1]_include.cmake")
include("/root/repo/build/tests/test_app_components[1]_include.cmake")
include("/root/repo/build/tests/test_logging_misc[1]_include.cmake")
