// Model-checker gate: systematic interleaving + fault-placement exploration
// over the three protocol fixtures (DESIGN.md §14, EXPERIMENTS.md
// "Model-checker exploration").
//
// Four gates:
//
//   * the clique, gossip, and scheduler worlds explore to quiescence within
//     their bounds with at least one fault placement per world and ZERO
//     invariant violations;
//   * sleep-set reduction prunes >= 5x: the same bounds explored with
//     reduction off must execute >= 5x the branches (aggregated across the
//     worlds) while visiting the same set of end-state fingerprints;
//   * the deliberately seeded bug (scheduler WITHOUT the PR 8 seq-dedupe
//     reply cache, "sched-nodedupe") IS caught, with a minimized repro of
//     <= 20 choices;
//   * that repro replays deterministically (two fresh re-executions agree).
//
// Emits ONE machine-readable JSON line:
//
//   {"bench":"mc_explore","worlds":[{"world":...,"branches":...,
//    "branches_naive":...,"reduction":...,"choice_points":...,
//    "sleep_pruned":...,"fingerprints":...,"violations":0},...],
//    "reduction_aggregate":...,"bug_caught":1,"bug_repro_choices":...,
//    "bug_replay_deterministic":1}
//
// --quick tightens the depth bounds for the CI smoke run (mc_smoke) but
// keeps every gate, including the naive-vs-reduced comparison.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "sim/mc/explorer.hpp"
#include "sim/mc/fixtures.hpp"

namespace ew::sim::mc {
namespace {

constexpr std::uint64_t kSeed = 0x5eed0901;

struct WorldRun {
  std::string name;
  Report reduced;
  Report naive;
};

WorldRun run_world(const std::string& name, const WorldFactory& factory,
                   Options opts) {
  WorldRun r;
  r.name = name;
  opts.reduce = true;
  r.reduced = Explorer(factory, opts).explore();
  opts.reduce = false;
  r.naive = Explorer(factory, opts).explore();
  return r;
}

int run(bool quick) {
  // Bounds per world: deep enough that every world has >= 1 fault placement
  // and a real interleaving fan-out, small enough that the naive comparison
  // run stays tractable.
  Options clique_opts;
  clique_opts.max_steps = quick ? 10 : 12;
  clique_opts.window = 8 * kSecond;
  Options gossip_opts;
  gossip_opts.max_steps = quick ? 8 : 10;
  gossip_opts.window = 12 * kSecond;
  Options sched_opts;
  sched_opts.max_steps = quick ? 8 : 10;
  sched_opts.window = 3 * kSecond;

  std::vector<WorldRun> runs;
  runs.push_back(run_world(
      "clique", [] { return make_clique_world(kSeed); }, clique_opts));
  runs.push_back(run_world(
      "gossip", [] { return make_gossip_world(kSeed); }, gossip_opts));
  runs.push_back(run_world(
      "sched", [] { return make_sched_world(kSeed, /*dedupe=*/true); },
      sched_opts));

  // The seeded bug: same scheduler world minus the seq-dedupe reply cache.
  // Reduced exploration only — the repro length + determinism are the gate.
  Options bug_opts = sched_opts;
  bug_opts.stop_at_first_violation = true;
  Report bug = Explorer([] { return make_sched_world(kSeed, false); },
                        bug_opts)
                   .explore();

  std::uint64_t reduced_total = 0;
  std::uint64_t naive_total = 0;
  std::string worlds_json = "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const WorldRun& r = runs[i];
    reduced_total += r.reduced.branches;
    naive_total += r.naive.branches;
    bench::JsonWriter w;
    w.str("world", r.name)
        .u64("branches", r.reduced.branches)
        .u64("branches_naive", r.naive.branches)
        .f("reduction",
           r.reduced.branches
               ? static_cast<double>(r.naive.branches) /
                     static_cast<double>(r.reduced.branches)
               : 0.0,
           2)
        .u64("choice_points", r.reduced.choice_points)
        .u64("sleep_pruned", r.reduced.sleep_pruned)
        .u64("max_eligible", r.reduced.max_eligible)
        .u64("fingerprints", r.reduced.fingerprints.size())
        .u64("fingerprints_naive", r.naive.fingerprints.size())
        .u64("violations", r.reduced.violations.size());
    worlds_json += (i ? "," : "") + w.object();
  }
  worlds_json += "]";

  const double aggregate =
      reduced_total ? static_cast<double>(naive_total) /
                          static_cast<double>(reduced_total)
                    : 0.0;
  const bool bug_caught = !bug.violations.empty();
  const std::size_t repro_len =
      bug_caught ? bug.violations.front().repro.choices.size() : 0;
  const bool replay_ok =
      bug_caught && bug.violations.front().replay_deterministic;

  bench::JsonWriter w;
  w.raw("worlds", worlds_json)
      .u64("branches_reduced", reduced_total)
      .u64("branches_naive", naive_total)
      .f("reduction_aggregate", aggregate, 2)
      .u64("bug_caught", bug_caught ? 1 : 0)
      .u64("bug_branches", bug.branches)
      .u64("bug_repro_choices", repro_len)
      .u64("bug_replay_deterministic", replay_ok ? 1 : 0);
  if (bug_caught) {
    w.str("bug_repro", bug.violations.front().repro.to_string());
    w.str("bug_violation", bug.violations.front().messages.front());
  }
  bench::emit_json("mc_explore", w);

  int rc = 0;
  for (const WorldRun& r : runs) {
    if (!r.reduced.violations.empty()) {
      std::fprintf(stderr, "FAIL: %s world: %zu invariant violations:\n",
                   r.name.c_str(), r.reduced.violations.size());
      for (const Violation& v : r.reduced.violations) {
        for (const std::string& m : v.messages) {
          std::fprintf(stderr, "  %s\n", m.c_str());
        }
        std::fprintf(stderr, "  repro: %s\n", v.repro.to_string().c_str());
      }
      rc = 1;
    }
    if (r.reduced.branch_cap_hit || r.naive.branch_cap_hit) {
      std::fprintf(stderr, "FAIL: %s world hit the branch cap\n",
                   r.name.c_str());
      rc = 1;
    }
    // The reduced run must not have missed outcomes the naive run saw.
    for (std::uint64_t fp : r.naive.fingerprints) {
      if (!r.reduced.fingerprints.contains(fp)) {
        std::fprintf(stderr,
                     "FAIL: %s world: naive found an end state the reduced "
                     "run missed\n",
                     r.name.c_str());
        rc = 1;
        break;
      }
    }
  }
  if (aggregate < 5.0) {
    std::fprintf(stderr, "FAIL: sleep-set reduction only %.2fx (gate 5x)\n",
                 aggregate);
    rc = 1;
  }
  if (!bug_caught) {
    std::fprintf(stderr, "FAIL: seeded no-dedupe bug not caught\n");
    rc = 1;
  } else {
    if (repro_len > 20) {
      std::fprintf(stderr, "FAIL: bug repro has %zu choices (gate 20)\n",
                   repro_len);
      rc = 1;
    }
    if (!replay_ok) {
      std::fprintf(stderr, "FAIL: bug repro did not replay deterministically\n");
      rc = 1;
    }
  }
  return rc;
}

}  // namespace
}  // namespace ew::sim::mc

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return ew::sim::mc::run(quick);
}
