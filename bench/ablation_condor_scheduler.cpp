// Ablation (Section 5.4): scheduler placement in or out of the Condor pool.
//
// "Since scheduler failure occurred much less frequently than resource
// reclamation, the overall performance improved [when] the Condor
// application clients only contacted schedulers that were located outside
// of the Condor pools."
//
// We run the churn scenario twice: schedulers on stable hosts vs schedulers
// on Condor-churned hosts (killed and restarted with the host, losing their
// soft state each time). The volatile configuration wastes client time on
// re-registration and loses in-flight reports.
#include "bench/bench_util.hpp"

using namespace ew;
using namespace ew::bench;

namespace {

app::ScenarioResults run_config(bool in_condor) {
  app::ScenarioOptions o;
  o.fleet_scale = 0.35;
  o.record = 6 * kHour;
  o.enable_spike = false;
  o.schedulers_in_condor = in_condor;
  app::Sc98Scenario scenario(o);
  return scenario.run();
}

}  // namespace

int main() {
  std::printf("=== Ablation: scheduler placement (Section 5.4) ===\n");
  std::printf("6-hour churn scenario (no spike), 0.35 fleet scale, seed 42\n\n");

  const app::ScenarioResults stable = run_config(false);
  const app::ScenarioResults volatile_cfg = run_config(true);

  std::printf("%-32s %14s %14s\n", "", "stable sites", "inside Condor");
  std::printf("%-32s %14.4e %14.4e\n", "total delivered ops",
              static_cast<double>(stable.total_ops),
              static_cast<double>(volatile_cfg.total_ops));
  std::printf("%-32s %14llu %14llu\n", "progress reports accepted",
              static_cast<unsigned long long>(stable.reports),
              static_cast<unsigned long long>(volatile_cfg.reports));
  std::printf("%-32s %14llu %14llu\n", "clients presumed dead",
              static_cast<unsigned long long>(stable.presumed_dead),
              static_cast<unsigned long long>(volatile_cfg.presumed_dead));
  std::printf("%-32s %14.4e %14.4e\n", "mean delivered rate (ops/s)",
              series_mean(stable.total_rate), series_mean(volatile_cfg.total_rate));

  const double ratio = static_cast<double>(volatile_cfg.total_ops) /
                       static_cast<double>(stable.total_ops);
  std::printf("\nvolatile/stable delivered-ops ratio: %.3f\n", ratio);
  const bool ok = ratio < 0.97;
  std::printf("claim (stable scheduler placement 'improved overall "
              "performance'): %s\n",
              ok ? "SUPPORTED" : "NOT SUPPORTED");
  return ok ? 0 : 1;
}
