// c100k_soak — the sharded real-network scale gate.
//
// The multi-core successor to c10k_soak: N reactor shards (ReactorShardPool,
// one OS thread each), every shard running a server Node whose transport
// binds the SAME port with SO_REUSEPORT so the kernel spreads inbound
// connections across shards with no accept lock. Clients (each its own
// Node + TcpTransport, a real kernel connection, closed-loop call/await/
// call) are distributed round-robin over the same shards. All traffic rides
// the PR-6 zero-copy wire path: single-allocation routed encode, iovec
// scatter-gather flush, recv-into-parser + view dispatch.
//
// The harness verifies scale *and* correctness: every call completes
// exactly once — zero lost, zero duplicated, zero failed replies, zero
// stuck clients — across shard boundaries (a client on shard 0 may be
// served by shard 3; the reply must come back over the same connection).
// Exit status is non-zero on any violation, so bench_smoke and the
// sanitizer/TSan lanes gate on it. Cross-shard metrics correctness rides
// along: every transport updates the shared net.* gauges by atomic delta
// from its own thread, with per-shard {shard=K} twins for attribution.
//
// Emits one machine-readable JSON line (see EXPERIMENTS.md):
//   {"bench":"c100k_soak","backend":"epoll","shards":4,"connections":...}
//
// Full scale (20k conns / 4+ shards / >=10x single-reactor throughput)
// needs a multi-core box and an fd budget of ~3 fds per client; the
// harness self-caps to RLIMIT_NOFILE and reports what it ran. The
// throughput gate is therefore opt-in: --min-rate R fails the run under R
// calls/s; correctness is always gated.
//
// Flags: --quick (CI smoke: 4 shards, 400 conns, 0.7 s), --shards N,
// --conns N, --seconds S, --min-rate R, --select (portable backend,
// conns clamped under FD_SETSIZE).
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "net/node.hpp"
#include "net/shard_pool.hpp"
#include "net/tcp.hpp"
#include "net/tcp_transport.hpp"
#include "obs/registry.hpp"

namespace ew {
namespace {

constexpr MsgType kEcho = 0x77;

struct Client {
  std::size_t shard = 0;
  std::unique_ptr<TcpTransport> transport;
  std::unique_ptr<Node> node;
  // Touched only from the owning shard's thread; the main thread reads them
  // via ReactorShardPool::run_on, which synchronizes.
  bool reply_pending = false;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t duplicates = 0;
};

struct Shard {
  std::unique_ptr<TcpTransport> server_transport;
  std::unique_ptr<Node> server;
  std::vector<std::size_t> clients;           // indices into Harness::clients
  std::vector<std::uint64_t> latencies_us;    // shard-thread only
};

struct Harness {
  ReactorShardPool* pool = nullptr;
  Endpoint server_ep;
  std::vector<Client> clients;
  std::vector<Shard> shards;
  Bytes payload;
  std::atomic<bool> running{true};

  // Shard-thread only (the callback chain keeps each client on its shard).
  void issue(std::size_t i) {
    Client& c = clients[i];
    Reactor& r = pool->reactor(c.shard);
    c.reply_pending = true;
    ++c.issued;
    const TimePoint t0 = r.now();
    c.node->call(server_ep, kEcho, payload, CallOptions::fixed(30 * kSecond),
                 [this, i, t0, &r](Result<Bytes> res) {
                   Client& cl = clients[i];
                   if (!cl.reply_pending) {
                     ++cl.duplicates;
                     return;
                   }
                   cl.reply_pending = false;
                   if (res.ok()) {
                     ++cl.completed;
                     shards[cl.shard].latencies_us.push_back(
                         static_cast<std::uint64_t>(r.now() - t0));
                   } else {
                     ++cl.failed;
                   }
                   if (running.load(std::memory_order_relaxed)) issue(i);
                 });
  }
};

struct Totals {
  std::uint64_t issued = 0, completed = 0, failed = 0, dups = 0, stuck = 0;
  std::size_t server_conns = 0;
};

/// Snapshot all per-client counters and server connection counts. Runs the
/// sum on each shard's own thread (run_on), so reading the shard-owned
/// fields is synchronized, never racy.
Totals sample(Harness& h) {
  Totals t;
  for (std::size_t s = 0; s < h.shards.size(); ++s) {
    h.pool->run_on(s, [&] {
      t.server_conns += h.shards[s].server_transport->open_connections();
      for (std::size_t i : h.shards[s].clients) {
        const Client& c = h.clients[i];
        t.issued += c.issued;
        t.completed += c.completed;
        t.failed += c.failed;
        t.dups += c.duplicates;
        t.stuck += c.reply_pending ? 1 : 0;
      }
    });
  }
  return t;
}

std::uint64_t percentile(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0;
  const std::size_t idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

std::uint64_t max_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // KB on Linux
}

int run(int argc, char** argv) {
  std::size_t nshards = 4;
  std::size_t conns = 20000;
  Duration measure = 10 * kSecond;
  double min_rate = 0;  // opt-in throughput gate
  ReactorBackend backend = Reactor::default_backend();
  bool conns_explicit = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      if (!conns_explicit) conns = 400;
      measure = 700 * kMillisecond;
    } else if (std::strcmp(argv[i], "--select") == 0) {
      backend = ReactorBackend::kSelect;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      nshards = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--conns") == 0 && i + 1 < argc) {
      conns = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      conns_explicit = true;
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      measure = static_cast<Duration>(std::strtod(argv[++i], nullptr) *
                                      static_cast<double>(kSecond));
    } else if (std::strcmp(argv[i], "--min-rate") == 0 && i + 1 < argc) {
      min_rate = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: c100k_soak [--quick] [--shards N] [--conns N] "
                   "[--seconds S] [--min-rate R] [--select]\n");
      return 2;
    }
  }
  if (nshards == 0) nshards = 1;

  // Scale to the fd budget: each client costs ~3 fds (its listener, the
  // outbound socket, the server-side accepted socket).
  rlimit rl{};
  getrlimit(RLIMIT_NOFILE, &rl);
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &rl);
    getrlimit(RLIMIT_NOFILE, &rl);
  }
  const std::size_t fd_budget =
      rl.rlim_cur > 96 ? static_cast<std::size_t>(rl.rlim_cur) - 96 : 0;
  if (conns * 3 > fd_budget) {
    conns = fd_budget / 3;
    std::fprintf(stderr,
                 "c100k_soak: RLIMIT_NOFILE=%llu caps run at %zu conns\n",
                 static_cast<unsigned long long>(rl.rlim_cur), conns);
  }
  if (backend == ReactorBackend::kSelect) {
    // Every shard's select() shares the process fd number space; stay well
    // below FD_SETSIZE in total.
    conns = std::min<std::size_t>(conns, 200);
  }
  if (conns < nshards) conns = nshards;
  if (conns == 0) {
    std::fprintf(stderr, "c100k_soak: no fd budget\n");
    return 2;
  }

  // Reserve one distinct loopback port per client endpoint (plus one for
  // the shared server port) by holding OS-assigned listeners open, then
  // releasing them just before the real binds.
  std::vector<std::uint16_t> ports(conns + 1);
  {
    std::vector<Fd> held;
    held.reserve(conns + 1);
    for (std::size_t i = 0; i <= conns; ++i) {
      auto l = tcp_listen(0);
      if (!l) {
        std::fprintf(stderr, "c100k_soak: listen: %s\n",
                     l.error().to_string().c_str());
        return 2;
      }
      ports[i] = *local_port(*l);
      held.push_back(std::move(*l));
    }
  }
  const Endpoint server_ep{"127.0.0.1", ports[conns]};

  ReactorShardPool pool(nshards, backend);

  Harness h;
  h.pool = &pool;
  h.server_ep = server_ep;
  h.payload.assign(64, 0xAB);
  h.shards.resize(nshards);
  h.clients.resize(conns);

  // Per-shard server: same endpoint, SO_REUSEPORT — the kernel distributes
  // inbound connections across the shards' listeners.
  for (std::size_t s = 0; s < nshards; ++s) {
    Shard& sh = h.shards[s];
    sh.server_transport = std::make_unique<TcpTransport>(
        pool.reactor(s), "shard=" + std::to_string(s));
    sh.server_transport->set_reuse_port(true);
    sh.server =
        std::make_unique<Node>(pool.reactor(s), *sh.server_transport, server_ep);
    if (Status st = sh.server->start(); !st.ok()) {
      std::fprintf(stderr, "c100k_soak: server shard %zu start: %s\n", s,
                   st.to_string().c_str());
      return 2;
    }
    sh.server->handle(kEcho, [](const IncomingMessage& m, Responder r) {
      r.ok(m.packet.payload);
    });
  }

  // Clients round-robin over the shards.
  for (std::size_t i = 0; i < conns; ++i) {
    const std::size_t s = i % nshards;
    Client& c = h.clients[i];
    c.shard = s;
    c.transport = std::make_unique<TcpTransport>(pool.reactor(s));
    c.node = std::make_unique<Node>(pool.reactor(s), *c.transport,
                                    Endpoint{"127.0.0.1", ports[i]});
    if (Status st = c.node->start(); !st.ok()) {
      std::fprintf(stderr, "c100k_soak: client %zu start: %s\n", i,
                   st.to_string().c_str());
      return 2;
    }
    h.shards[s].clients.push_back(i);
  }

  pool.start();

  // Ignition: each client fires its first call (dialling its connection)
  // from its own shard thread. Batched so the accept queues keep pace.
  for (std::size_t i = 0; i < conns; ++i) {
    pool.post(h.clients[i].shard, [&h, i] { h.issue(i); });
    if (i % 500 == 499) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Warm-up: wait until every connection is up before opening the measure
  // window, so rate and concurrency reflect steady state.
  const auto warm_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < warm_deadline) {
    if (sample(h).server_conns >= conns) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  const Totals warm = sample(h);
  for (std::size_t s = 0; s < nshards; ++s) {
    pool.run_on(s, [&h, s] { h.shards[s].latencies_us.clear(); });
  }

  const auto t_start = std::chrono::steady_clock::now();
  std::size_t max_server_conns = 0;
  std::vector<std::size_t> per_shard_conns(nshards, 0);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now - t_start >= std::chrono::microseconds(measure)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::size_t total = 0;
    for (std::size_t s = 0; s < nshards; ++s) {
      pool.run_on(s, [&] {
        const std::size_t n = h.shards[s].server_transport->open_connections();
        per_shard_conns[s] = std::max(per_shard_conns[s], n);
        total += n;
      });
    }
    max_server_conns = std::max(max_server_conns, total);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  const Totals window = sample(h);
  h.running.store(false, std::memory_order_relaxed);

  // Drain: let every in-flight call resolve (30 s call time-out bounds it).
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(35);
  Totals fin = sample(h);
  while (fin.stuck != 0 && std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    fin = sample(h);
  }

  // Merge per-shard latencies (shards are parked now; run_on synchronizes).
  std::vector<std::uint64_t> latencies;
  for (std::size_t s = 0; s < nshards; ++s) {
    pool.run_on(s, [&] {
      latencies.insert(latencies.end(), h.shards[s].latencies_us.begin(),
                       h.shards[s].latencies_us.end());
    });
  }

  // Tear down every node/transport on its own shard thread, then stop.
  for (std::size_t s = 0; s < nshards; ++s) {
    pool.run_on(s, [&h, s] {
      for (std::size_t i : h.shards[s].clients) {
        h.clients[i].node.reset();
        h.clients[i].transport.reset();
      }
      h.shards[s].server.reset();
      h.shards[s].server_transport.reset();
    });
  }
  pool.stop();

  const std::uint64_t window_completed = window.completed - warm.completed;
  const std::uint64_t lost = fin.issued - fin.completed - fin.failed;
  const double calls_per_s =
      secs > 0 ? static_cast<double>(window_completed) / secs : 0;
  std::size_t shards_used = 0;
  for (std::size_t n : per_shard_conns) shards_used += n > 0 ? 1 : 0;

  bench::JsonWriter shard_conns;
  for (std::size_t s = 0; s < nshards; ++s) {
    shard_conns.u64(("shard" + std::to_string(s)).c_str(), per_shard_conns[s]);
  }
  bench::JsonWriter w;
  w.str("backend", backend == ReactorBackend::kEpoll ? "epoll" : "select")
      .u64("shards", nshards)
      .u64("connections", conns)
      .u64("max_server_conns", max_server_conns)
      .u64("shards_used", shards_used)
      .raw("per_shard_conns", shard_conns.object())
      .u64("calls", window_completed)
      .u64("lost", lost)
      .u64("duplicates", fin.dups)
      .u64("failed", fin.failed)
      .f("calls_per_s", calls_per_s, 1)
      .f("msgs_per_s", 2 * calls_per_s, 1)  // one request + one reply per call
      .u64("p50_us", percentile(latencies, 0.50))
      .u64("p99_us", percentile(latencies, 0.99))
      .u64("backpressure_rejects",
           obs::registry().counter(obs::names::kNetBackpressureRejects).value())
      .u64("max_rss_kb", max_rss_kb());
  bench::emit_json("c100k_soak", w);

  if (lost != 0 || fin.dups != 0 || fin.failed != 0 || fin.stuck != 0) {
    std::fprintf(stderr,
                 "c100k_soak: FAILED: lost=%llu dups=%llu failed=%llu "
                 "stuck=%llu\n",
                 static_cast<unsigned long long>(lost),
                 static_cast<unsigned long long>(fin.dups),
                 static_cast<unsigned long long>(fin.failed),
                 static_cast<unsigned long long>(fin.stuck));
    return 1;
  }
  // Scale assertion: every client actually held its connection concurrently.
  if (max_server_conns < conns) {
    std::fprintf(stderr, "c100k_soak: only %zu/%zu concurrent connections\n",
                 max_server_conns, conns);
    return 1;
  }
  // Distribution assertion: SO_REUSEPORT actually spread the load. The
  // kernel hashes by 4-tuple, so with >=64 connections landing on one
  // shard out of several is (astronomically) improbable.
  if (nshards >= 2 && conns >= 64 && shards_used < 2) {
    std::fprintf(stderr,
                 "c100k_soak: all %zu connections landed on one of %zu "
                 "shards — SO_REUSEPORT distribution broken\n",
                 conns, nshards);
    return 1;
  }
  if (min_rate > 0 && calls_per_s < min_rate) {
    std::fprintf(stderr, "c100k_soak: %.1f calls/s under --min-rate %.1f\n",
                 calls_per_s, min_rate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ew

int main(int argc, char** argv) { return ew::run(argc, argv); }
