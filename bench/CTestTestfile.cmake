# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke "/usr/bin/cmake" "-DMICRO_FORECAST=/root/repo/bench/micro_forecast" "-DMICRO_OBS=/root/repo/bench/micro_obs" "-DMICRO_PACKET=/root/repo/bench/micro_packet" "-DABLATION_TIMEOUTS=/root/repo/bench/ablation_timeouts" "-DC10K_SOAK=/root/repo/bench/c10k_soak" "-DC100K_SOAK=/root/repo/bench/c100k_soak" "-DGOSSIP_SCALE=/root/repo/bench/gossip_scale" "-DSCHED_SCALE=/root/repo/bench/sched_scale" "-DMC_EXPLORE=/root/repo/bench/mc_explore" "-P" "/root/repo/bench/bench_smoke.cmake")
set_tests_properties(bench_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;68;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(mc_smoke "/root/repo/bench/mc_explore" "--quick")
set_tests_properties(mc_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;84;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(chaos_smoke "/root/repo/bench/dependability_long_run" "--quick")
set_tests_properties(chaos_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;89;add_test;/root/repo/bench/CMakeLists.txt;0;")
