// Figure 2: "Sustained Application Performance" — total delivered integer
// ops/sec, 5-minute averages, over the 12 hours (23:36:56 -> 11:36:56 PST)
// including the 11:00 judging-time contention spike.
//
// Paper anchors: peak 2.39e9 ops/s (09:51-09:56 test an hour before the
// competition), drop to 1.1e9 when judging began at 11:00, recovery to
// 2.0e9 by 11:10 as the application reorganized.
#include "bench/bench_util.hpp"

using namespace ew;
using namespace ew::bench;

int main() {
  std::printf("=== Figure 2: sustained application performance ===\n");
  std::printf("12-hour SC98 window, 5-minute averages, full fleet, seed 42\n\n");

  app::ScenarioOptions opts;  // defaults are the calibrated SC98 setup
  app::Sc98Scenario scenario(opts);
  const app::ScenarioResults res = scenario.run();

  std::printf("%-10s %12s\n", "time(PST)", "ops/sec");
  for (std::size_t i = 0; i < res.total_rate.size(); ++i) {
    std::printf("%-10s %12.4e\n",
                pst_label(res.bin_start[i] - res.bin_start[0]).c_str(),
                res.total_rate[i]);
  }

  const std::size_t j = res.bins_judging_index;
  const double peak = series_max(res.total_rate);
  const double dip = window_min(res.total_rate, j, 4);
  const double recovered = window_max(res.total_rate, j + 2, 5);

  std::printf("\nshape check vs paper:\n");
  print_shape_check("peak sustained (ops/s)", peak, 2.39e9);
  print_shape_check("judging-time dip (ops/s)", dip, 1.1e9);
  print_shape_check("post-adaptation (ops/s)", recovered, 2.0e9);
  std::printf("\nrun totals: %.3e ops, %llu reports, %llu migrations, "
              "%llu clients presumed dead\n",
              static_cast<double>(res.total_ops),
              static_cast<unsigned long long>(res.reports),
              static_cast<unsigned long long>(res.migrations),
              static_cast<unsigned long long>(res.presumed_dead));

  const bool ok = peak > 1.5e9 && dip < 0.65 * peak && recovered > 0.75 * peak;
  std::printf("figure-2 shape: %s\n", ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
