# Smoke harness for the microbenchmarks: run each for one short iteration
# and fail if either crashes or rejects its flags. Invoked by the
# `bench_smoke` CTest target (see CMakeLists.txt here).
execute_process(COMMAND ${MICRO_FORECAST} --quick RESULT_VARIABLE rc_forecast)
if(NOT rc_forecast EQUAL 0)
  message(FATAL_ERROR "micro_forecast --quick failed (exit ${rc_forecast})")
endif()

# Observability hot path: --quick skips the wall-clock gate but still
# asserts the record paths allocate nothing.
execute_process(COMMAND ${MICRO_OBS} --quick RESULT_VARIABLE rc_obs)
if(NOT rc_obs EQUAL 0)
  message(FATAL_ERROR "micro_obs --quick failed (exit ${rc_obs})")
endif()

# Wire path: --quick shrinks the iteration count but still asserts the
# one-allocation-encode and zero-copy-parse budgets.
execute_process(COMMAND ${MICRO_PACKET} --quick RESULT_VARIABLE rc_packet)
if(NOT rc_packet EQUAL 0)
  message(FATAL_ERROR "micro_packet --quick failed (exit ${rc_packet})")
endif()

# Reliable-call policy arms (retry/hedge vs bare call under injected loss).
# --quick shrinks the call count but still asserts the policy arms dominate.
execute_process(COMMAND ${ABLATION_TIMEOUTS} --quick RESULT_VARIABLE rc_policy)
if(NOT rc_policy EQUAL 0)
  message(FATAL_ERROR "ablation_timeouts --quick failed (exit ${rc_policy})")
endif()

# Real-network scale gate: a short closed-loop soak over loopback TCP.
# Non-zero exit means a lost/duplicated reply or a connection shortfall.
execute_process(COMMAND ${C10K_SOAK} --quick RESULT_VARIABLE rc_c10k)
if(NOT rc_c10k EQUAL 0)
  message(FATAL_ERROR "c10k_soak --quick failed (exit ${rc_c10k})")
endif()

# Sharded scale gate: the same closed loop across SO_REUSEPORT reactor
# shards. Non-zero exit means a lost/duplicated/failed reply, a stuck
# client, a connection shortfall, or broken cross-shard distribution.
execute_process(COMMAND ${C100K_SOAK} --quick RESULT_VARIABLE rc_c100k)
if(NOT rc_c100k EQUAL 0)
  message(FATAL_ERROR "c100k_soak --quick failed (exit ${rc_c100k})")
endif()

# Gossip scale gate: digest/delta anti-entropy over a growing component
# population. Non-zero exit means store divergence after chaos, digest bytes
# tracking the population, or a blown convergence-round cap.
execute_process(COMMAND ${GOSSIP_SCALE} --quick RESULT_VARIABLE rc_gossip)
if(NOT rc_gossip EQUAL 0)
  message(FATAL_ERROR "gossip_scale --quick failed (exit ${rc_gossip})")
endif()

# Scheduler scale gate: batched directives over a sharded pool under client
# churn. Non-zero exit means a lost/double-issued unit, a failed replay
# dedupe, an unswept dead client, or unbounded directive latency.
execute_process(COMMAND ${SCHED_SCALE} --quick RESULT_VARIABLE rc_sched)
if(NOT rc_sched EQUAL 0)
  message(FATAL_ERROR "sched_scale --quick failed (exit ${rc_sched})")
endif()

# Model-checker gate: bounded exhaustive exploration of the protocol
# fixtures. Non-zero exit means an invariant violation on some interleaving,
# a blown branch cap, a reduction ratio under 5x, or the seeded no-dedupe
# bug escaping (not caught, over-long repro, or nondeterministic replay).
execute_process(COMMAND ${MC_EXPLORE} --quick RESULT_VARIABLE rc_mc)
if(NOT rc_mc EQUAL 0)
  message(FATAL_ERROR "mc_explore --quick failed (exit ${rc_mc})")
endif()

# WISH storm gate: interactive job control + barrier epochs + env sync under
# daemon crash-restart chaos. Non-zero exit means a lost job, a split or
# hung barrier, env divergence, or an under-delivered chaos plan.
execute_process(COMMAND ${WISH_STORM} --quick RESULT_VARIABLE rc_wish)
if(NOT rc_wish EQUAL 0)
  message(FATAL_ERROR "wish_storm --quick failed (exit ${rc_wish})")
endif()
