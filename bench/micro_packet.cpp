// Microbenchmarks for the lingua franca: packet framing, stream reassembly,
// and the wire serializer (google-benchmark).
#include <benchmark/benchmark.h>

#include "gossip/protocol.hpp"
#include "net/packet.hpp"

namespace ew {
namespace {

Packet sample_packet(std::size_t payload) {
  Packet p;
  p.kind = PacketKind::kRequest;
  p.type = 0x0202;
  p.seq = 123456789;
  p.payload = Bytes(payload, 0xAB);
  return p;
}

void BM_EncodePacket(benchmark::State& state) {
  const Packet p = sample_packet(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_packet(p));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.payload.size() + wire::kHeaderSize));
}
BENCHMARK(BM_EncodePacket)->Arg(64)->Arg(1024)->Arg(65536);

void BM_FrameParseRoundTrip(benchmark::State& state) {
  const Bytes wire = encode_packet(sample_packet(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    FrameParser fp;
    fp.feed(wire);
    auto out = fp.next();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_FrameParseRoundTrip)->Arg(64)->Arg(1024)->Arg(65536);

void BM_FrameParseChunked(benchmark::State& state) {
  // Stream reassembly with awkward chunking — the TCP worst case.
  Bytes wire;
  for (int i = 0; i < 16; ++i) {
    const Bytes one = encode_packet(sample_packet(512));
    wire.insert(wire.end(), one.begin(), one.end());
  }
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    FrameParser fp;
    std::size_t got = 0;
    for (std::size_t off = 0; off < wire.size(); off += chunk) {
      fp.feed(std::span(wire).subspan(off, std::min(chunk, wire.size() - off)));
      while (fp.next().ok()) ++got;
    }
    if (got != 16) state.SkipWithError("lost packets");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_FrameParseChunked)->Arg(7)->Arg(64)->Arg(1460);

void BM_SerializeToken(benchmark::State& state) {
  gossip::Token t;
  t.round = 42;
  t.view.generation = 7;
  t.view.leader = Endpoint{"gossip-0", 501};
  for (int i = 0; i < 8; ++i) {
    t.view.members.push_back(Endpoint{"gossip-" + std::to_string(i), 501});
  }
  t.visited = t.view.members;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.serialize());
  }
}
BENCHMARK(BM_SerializeToken);

void BM_DeserializeToken(benchmark::State& state) {
  gossip::Token t;
  t.round = 42;
  t.view.leader = Endpoint{"gossip-0", 501};
  for (int i = 0; i < 8; ++i) {
    t.view.members.push_back(Endpoint{"gossip-" + std::to_string(i), 501});
  }
  const Bytes wire = t.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gossip::Token::deserialize(wire));
  }
}
BENCHMARK(BM_DeserializeToken);

}  // namespace
}  // namespace ew
