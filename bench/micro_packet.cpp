// Microbenchmark for the wire path (DESIGN.md §3, §11).
//
// PR 6 rebuilt the per-frame byte plumbing: encode_packet and
// encode_routed_frame write each frame with exactly one allocation, and
// FrameParser::next_view() parses with none. This harness times the four
// legs at a small (64 B) and a large (4 KiB) payload and *gates* on the
// allocation counts — counted by a replacement global operator new (the
// micro_obs pattern), so the single-allocation/zero-copy claims are
// asserted, not assumed. The ns/frame numbers are informational (a loaded
// CI box must not flake the smoke run); the allocation gates are
// deterministic and always enforced. Emits ONE machine-readable JSON line
// (see EXPERIMENTS.md, "Wire-path microbenchmark"):
//
//   {"bench":"micro_packet","iters":...,
//    "ns_encode_64":...,"ns_encode_4096":...,
//    "ns_encode_routed_64":...,"ns_encode_routed_4096":...,
//    "ns_parse_copy_64":...,"ns_parse_copy_4096":...,
//    "ns_parse_view_64":...,"ns_parse_view_4096":...,
//    "encode_allocs_per_frame":...,"parse_view_allocs":...,"checksum":...}
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "bench/bench_util.hpp"
#include "net/packet.hpp"
#include "net/tcp_transport.hpp"

// Program-wide allocation counter (replaces the global operator new) so the
// one-allocation-per-encode and zero-copy-parse gates are measured.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ew {
namespace {

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

Packet make_packet(std::size_t payload_bytes) {
  Packet p;
  p.kind = PacketKind::kRequest;
  p.type = 7;
  p.seq = 424242;
  p.payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    p.payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  return p;
}

struct Leg {
  double ns_per_op = 0;
  double checksum = 0;           // defeats dead-code elimination
  std::uint64_t leg_allocs = 0;  // steady-state allocations across the leg
};

template <typename F>
Leg run_leg(std::size_t iters, F&& op) {
  Leg leg;
  (void)op(0);  // warm-up: first-touch buffer growth is not steady state
  const std::uint64_t a0 = allocs();
  const double t0 = now_ns();
  for (std::size_t i = 0; i < iters; ++i) leg.checksum += op(i);
  const double t1 = now_ns();
  leg.leg_allocs = allocs() - a0;
  leg.ns_per_op = (t1 - t0) / static_cast<double>(iters);
  return leg;
}

/// ns/frame to serialize a bare packet (header + payload, one buffer).
Leg bench_encode(std::size_t iters, const Packet& p) {
  return run_leg(iters, [&](std::size_t) {
    Bytes frame = encode_packet(p);
    return static_cast<double>(frame.size() + frame.back());
  });
}

/// ns/frame for the transport's send-path encoder (adds routing + patched
/// checksum — still one allocation).
Leg bench_encode_routed(std::size_t iters, const Packet& p,
                        const Endpoint& src, const Endpoint& dst) {
  return run_leg(iters, [&](std::size_t) {
    Bytes frame = encode_routed_frame(p, src, dst);
    return static_cast<double>(frame.size() + frame.back());
  });
}

/// ns/frame to reparse via next() — the copy-out arm (payload materialized
/// as an owning Packet each iteration).
Leg bench_parse_copy(std::size_t iters, const Bytes& frame) {
  FrameParser parser;
  return run_leg(iters, [&](std::size_t) {
    parser.feed(frame);
    auto pkt = parser.next();
    return pkt ? static_cast<double>(pkt->payload.size()) : -1e9;
  });
}

/// ns/frame via recv_buffer/commit + next_view — the zero-copy arm. After
/// the parser's reassembly buffer warms up this path must not allocate.
Leg bench_parse_view(std::size_t iters, const Bytes& frame) {
  FrameParser parser;
  return run_leg(iters, [&](std::size_t) {
    auto dst = parser.recv_buffer(frame.size());
    std::memcpy(dst.data(), frame.data(), frame.size());
    parser.commit(frame.size());
    auto view = parser.next_view();
    return view ? static_cast<double>(view->payload.size() +
                                      view->payload.back())
                : -1e9;
  });
}

}  // namespace
}  // namespace ew

int main(int argc, char** argv) {
  using namespace ew;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t kIters = quick ? 20'000 : 1'000'000;

  const Packet small = make_packet(64);
  const Packet large = make_packet(4096);
  const Endpoint src{"10.0.0.1", 9001};
  const Endpoint dst{"10.0.0.2", 9002};
  const Bytes small_frame = encode_packet(small);
  const Bytes large_frame = encode_packet(large);

  const Leg enc_64 = bench_encode(kIters, small);
  const Leg enc_4096 = bench_encode(kIters, large);
  const Leg encr_64 = bench_encode_routed(kIters, small, src, dst);
  const Leg encr_4096 = bench_encode_routed(kIters, large, src, dst);
  const Leg copy_64 = bench_parse_copy(kIters, small_frame);
  const Leg copy_4096 = bench_parse_copy(kIters, large_frame);
  const Leg view_64 = bench_parse_view(kIters, small_frame);
  const Leg view_4096 = bench_parse_view(kIters, large_frame);

  const double checksum = enc_64.checksum + enc_4096.checksum +
                          encr_64.checksum + encr_4096.checksum +
                          copy_64.checksum + copy_4096.checksum +
                          view_64.checksum + view_4096.checksum;

  // Gate 1: encoding is one allocation per frame (the frame buffer itself),
  // for both the bare and the routed encoder, at both payload sizes.
  const std::uint64_t encode_allocs_per_frame =
      (enc_64.leg_allocs + enc_4096.leg_allocs + encr_64.leg_allocs +
       encr_4096.leg_allocs) /
      (4 * kIters);
  // Gate 2: the zero-copy parse arm allocates nothing in steady state (the
  // reassembly buffer was warmed before counting).
  const std::uint64_t parse_view_allocs =
      view_64.leg_allocs + view_4096.leg_allocs;

  bench::JsonWriter line;
  line.u64("iters", kIters)
      .f("ns_encode_64", enc_64.ns_per_op, 2)
      .f("ns_encode_4096", enc_4096.ns_per_op, 2)
      .f("ns_encode_routed_64", encr_64.ns_per_op, 2)
      .f("ns_encode_routed_4096", encr_4096.ns_per_op, 2)
      .f("ns_parse_copy_64", copy_64.ns_per_op, 2)
      .f("ns_parse_copy_4096", copy_4096.ns_per_op, 2)
      .f("ns_parse_view_64", view_64.ns_per_op, 2)
      .f("ns_parse_view_4096", view_4096.ns_per_op, 2)
      .u64("encode_allocs_per_frame", encode_allocs_per_frame)
      .u64("parse_view_allocs", parse_view_allocs)
      .g("checksum", checksum);
  bench::emit_json("micro_packet", line);

  bool ok = true;
  if (encode_allocs_per_frame != 1) {
    std::fprintf(stderr,
                 "micro_packet: %llu allocations per encoded frame "
                 "(budget: exactly 1)\n",
                 static_cast<unsigned long long>(encode_allocs_per_frame));
    ok = false;
  }
  if (parse_view_allocs != 0) {
    std::fprintf(stderr,
                 "micro_packet: %llu allocations in steady-state zero-copy "
                 "parse (budget: 0)\n",
                 static_cast<unsigned long long>(parse_view_allocs));
    ok = false;
  }
  if (copy_64.checksum < 0 || copy_4096.checksum < 0 ||
      view_64.checksum < 0 || view_4096.checksum < 0) {
    std::fprintf(stderr, "micro_packet: a parse leg failed to round-trip\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
