// Forecasting methodology bench (Section 2.2): the NWS-style adaptive
// selector vs every fixed method in the battery, across measurement regimes
// shaped like what EveryWare forecast at SC98 (server response times with
// load spikes, host rates with level shifts, noisy WAN latencies).
#include <cmath>
#include <cstdio>
#include <functional>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "forecast/selector.hpp"

using namespace ew;

namespace {

struct Regime {
  const char* name;
  std::function<double(int, Rng&)> gen;
};

}  // namespace

int main() {
  std::printf("=== Forecaster accuracy: adaptive selection vs fixed methods ===\n\n");
  const Regime regimes[] = {
      {"steady-rtt", [](int, Rng& r) { return 120.0 * r.lognormal(0.0, 0.2); }},
      {"spiky-rtt",
       [](int i, Rng& r) {
         const double base = (i / 100) % 3 == 1 ? 900.0 : 120.0;
         return base * r.lognormal(0.0, 0.4);
       }},
      {"host-rate-shift",
       [](int i, Rng& r) {
         return (i < 400 ? 1.0e7 : 4.0e6) + r.normal(0, 4e5);
       }},
      {"diurnal",
       [](int i, Rng& r) {
         return 5e6 * (1.4 + std::sin(i / 60.0)) + r.normal(0, 3e5);
       }},
      {"white-noise", [](int, Rng& r) { return r.uniform(10, 1000); }},
      {"random-walk",
       [](int, Rng& r) {
         static thread_local double x = 100.0;
         x = std::max(1.0, x + r.normal(0, 5.0));
         return x;
       }},
  };

  bool all_competitive = true;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::printf("--- seed %llu ---\n", static_cast<unsigned long long>(seed));
    std::printf("%-18s %12s %12s %12s  %s\n", "regime", "selector", "best-fixed",
                "worst-fixed", "winner method");
    for (const auto& regime : regimes) {
      Rng rng(seed * 1000 + 7);
      auto selector = AdaptiveForecaster::nws_default();
      ErrorTracker err;
      for (int i = 0; i < 1200; ++i) {
        const double v = regime.gen(i, rng);
        if (i > 0) err.add(selector.forecast().value, v);
        selector.observe(v);
      }
      const auto maes = selector.method_mae();
      const auto names = selector.method_names();
      double best = 1e300, worst = 0;
      std::size_t best_i = 0;
      for (std::size_t i = 0; i < maes.size(); ++i) {
        if (maes[i] < best) {
          best = maes[i];
          best_i = i;
        }
        worst = std::max(worst, maes[i]);
      }
      std::printf("%-18s %12.4g %12.4g %12.4g  %s\n", regime.name, err.mae(),
                  best, worst, names[best_i].c_str());
      if (err.mae() > best * 1.6 + 1e-9) all_competitive = false;
    }
  }
  std::printf("\nselector within 1.6x of the best fixed method on every "
              "regime: %s\n",
              all_competitive ? "YES (the NWS adaptive-selection claim holds)"
                              : "NO");
  return all_competitive ? 0 : 1;
}
