// Section 7 "Dependable": "The Ramsey Number Search application ran
// continuously from early June, 1998, until the High-Performance Computing
// Challenge on November 12, 1998."
//
// We cannot simulate five months in a bench run, but we can run 48 hours of
// continuous churn and verify the application never stops delivering. On top
// of the background host/network turbulence the scenario already models, a
// seeded FaultPlan crash-restarts the *servers* themselves — schedulers and
// gossips cycle with exponential up/down times, and the control site takes
// one scripted outage — then the trace-level invariant checker proves no
// work unit was lost and every breaker that opened probed again.
//
// Flags: --quick (6 h window, smaller fleet — the chaos_smoke gate),
//        --seed N (chaos seed; the scenario seed stays fixed).
//
// Emits one machine-readable JSON line (see EXPERIMENTS.md): zero-delivery
// bins, day-over-day drift, fault/crash/restart counts, units re-issued vs
// lost, breaker opens vs re-probes, and crash-to-recovery percentiles.
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "bench/bench_util.hpp"
#include "obs/invariants.hpp"
#include "obs/trace.hpp"
#include "sim/chaos.hpp"

using namespace ew;
using namespace ew::bench;

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Crash-to-recovery times: for each chaos crash with a restart inside the
/// trace, the time from the crash until the first post-restart span tagged
/// with an endpoint on that host — i.e. until the role demonstrably acts
/// again, not merely until its process exists.
std::vector<double> recovery_times_s(const obs::TraceRecorder& rec) {
  const auto spans = rec.snapshot();
  std::vector<double> out;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& crash = spans[i];
    if (crash.kind != obs::SpanKind::kChaosFault || crash.a != 0) continue;
    const std::string host = rec.tag_name(crash.tag);
    if (host.find('|') != std::string::npos) continue;  // link fault
    // The matching restart for this host, then its first sign of life.
    std::size_t j = i + 1;
    for (; j < spans.size(); ++j) {
      if (spans[j].kind == obs::SpanKind::kChaosFault && spans[j].a == 1 &&
          spans[j].tag == crash.tag) {
        break;
      }
    }
    if (j >= spans.size()) continue;  // restart past the horizon
    for (std::size_t k = j + 1; k < spans.size(); ++k) {
      if (spans[k].kind == obs::SpanKind::kChaosFault) continue;
      const std::string tag = rec.tag_name(spans[k].tag);
      if (tag.rfind(host + ":", 0) == 0) {
        out.push_back(static_cast<double>(spans[k].at - crash.at) / 1e6);
        break;
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::uint64_t chaos_seed = 1998;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      chaos_seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  std::printf("=== Section 7 'Dependable': %s continuous churn run, "
              "chaos seed %llu ===\n\n",
              quick ? "6-hour" : "48-hour",
              static_cast<unsigned long long>(chaos_seed));

  app::ScenarioOptions opts;
  opts.record = quick ? 6 * kHour : 48 * kHour;
  opts.enable_spike = false;
  opts.fleet_scale = quick ? 0.2 : 0.5;
  if (quick) opts.report_interval = kMinute;

  // Server churn: every scheduler and gossip host cycles with exponential
  // up/down times at roughly the paper's "resources fail continuously"
  // rates; the control site (logging + persistent state) takes one scripted
  // ten-minute outage so the state-reload path runs too.
  std::vector<std::string> hosts;
  for (int i = 0; i < opts.num_schedulers; ++i) {
    hosts.push_back("sched-" + std::to_string(i));
  }
  for (int i = 0; i < opts.num_gossips; ++i) {
    hosts.push_back("gossip-" + std::to_string(i));
  }
  const TimePoint churn_start = opts.warmup + 20 * kMinute;
  const TimePoint churn_end = opts.warmup + opts.record - 30 * kMinute;
  const Duration mean_up = quick ? 90 * kMinute : 6 * kHour;
  const Duration mean_down = quick ? 6 * kMinute : 10 * kMinute;
  opts.chaos = sim::FaultPlan::churn(chaos_seed, hosts, churn_start, churn_end,
                                     mean_up, mean_down);
  opts.chaos.crash_restart(opts.warmup + opts.record / 2, "sdsc-control",
                           10 * kMinute);

  char storage[] = "/tmp/ew_dep_XXXXXX";
  if (!mkdtemp(storage)) {
    std::printf("cannot create state storage dir\n");
    return 1;
  }
  opts.state_storage_dir = storage;

  auto& tr = obs::trace();
  tr.reset();
  tr.set_capacity(std::size_t{1} << 22);
  tr.set_enabled(true);

  obs::InvariantReport inv;
  std::vector<double> recovery;
  std::uint64_t faults = 0, crashes = 0, restarts = 0;
  app::ScenarioResults res;
  {
    app::Sc98Scenario scenario(opts);
    res = scenario.run();
    if (sim::ChaosEngine* chaos = scenario.chaos_engine()) {
      faults = chaos->faults_injected();
      crashes = chaos->crashes();
      restarts = chaos->restarts();
    }
    obs::InvariantOptions iopts;
    // Units still assigned on a live scheduler are in flight, not lost; a
    // crash the churn tail never restarted is forgiven within one mean
    // downtime of the horizon.
    for (int i = 0; i < opts.num_schedulers; ++i) {
      if (core::SchedulerServer* s = scenario.scheduler_server(i)) {
        for (std::uint64_t id : s->pool().assigned_units()) {
          iopts.live_units.insert(id);
        }
      }
    }
    iopts.crash_grace_us = 2 * mean_down + 30 * kMinute;
    inv = obs::check_invariants(tr, iopts);
    recovery = recovery_times_s(tr);
  }
  tr.set_enabled(false);

  std::size_t zero_bins = 0;
  for (double v : res.total_rate) zero_bins += v <= 0.0 ? 1 : 0;
  // While the control site is down the logging server is too, so delivery in
  // those bins is unobservable (clients keep computing; their log calls
  // fail). Bins covered by the scripted outage are a measurement gap, not a
  // delivery gap.
  const std::size_t outage_bins =
      static_cast<std::size_t>(10 * kMinute / opts.bin_width) + 1;

  const std::size_t half = res.total_rate.size() / 2;
  const double day1 = series_mean(std::vector<double>(
      res.total_rate.begin(), res.total_rate.begin() + static_cast<std::ptrdiff_t>(half)));
  const double day2 = series_mean(std::vector<double>(
      res.total_rate.begin() + static_cast<std::ptrdiff_t>(half), res.total_rate.end()));
  const double recovery_p50 = percentile(recovery, 0.50);
  const double recovery_p99 = percentile(recovery, 0.99);

  std::printf("bins: %zu x 5 min, zero-delivery bins: %zu (logging-outage "
              "allowance: %zu)\n",
              res.total_rate.size(), zero_bins, outage_bins);
  std::printf("mean rate half 1: %.3e ops/s\n", day1);
  std::printf("mean rate half 2: %.3e ops/s (drift %+.1f%%)\n", day2,
              100.0 * (day2 - day1) / day1);
  std::printf("clients presumed dead and replaced: %llu\n",
              static_cast<unsigned long long>(res.presumed_dead));
  std::printf("server faults injected: %llu (%llu crashes, %llu restarts)\n",
              static_cast<unsigned long long>(faults),
              static_cast<unsigned long long>(crashes),
              static_cast<unsigned long long>(restarts));
  std::printf("work units issued %llu, reclaimed %llu, re-issued after "
              "crash %llu, lost %llu\n",
              static_cast<unsigned long long>(inv.units_issued),
              static_cast<unsigned long long>(inv.units_reclaimed),
              static_cast<unsigned long long>(inv.units_reissued_after_crash),
              static_cast<unsigned long long>(inv.units_lost));
  std::printf("breakers opened %llu, re-probed %llu; view changes %llu\n",
              static_cast<unsigned long long>(inv.breaker_opens),
              static_cast<unsigned long long>(inv.breaker_reprobes),
              static_cast<unsigned long long>(inv.view_changes));
  std::printf("crash-to-recovery: p50 %.1f s, p99 %.1f s over %zu cycles\n",
              recovery_p50, recovery_p99, recovery.size());
  for (const std::string& v : inv.violations) {
    std::printf("INVARIANT VIOLATION: %s\n", v.c_str());
  }

  const bool ok = zero_bins <= outage_bins &&
                  res.presumed_dead > (quick ? 10u : 100u) &&
                  day2 > 0.7 * day1 && day2 < 1.4 * day1 && crashes > 0 &&
                  inv.ok() && inv.units_lost == 0;
  std::printf("\ndependability: %s (continuous delivery through continuous "
              "failure, servers included)\n",
              ok ? "REPRODUCED" : "MISMATCH");

  JsonWriter j;
  j.u64("chaos_seed", chaos_seed)
      .u64("bins", res.total_rate.size())
      .u64("zero_bins", zero_bins)
      .g("rate_half1_ops", day1)
      .g("rate_half2_ops", day2)
      .f("drift_pct", day1 > 0 ? 100.0 * (day2 - day1) / day1 : 0.0, 1)
      .u64("presumed_dead", res.presumed_dead)
      .u64("faults", faults)
      .u64("crashes", crashes)
      .u64("restarts", restarts)
      .u64("units_issued", inv.units_issued)
      .u64("units_reclaimed", inv.units_reclaimed)
      .u64("units_reissued_after_crash", inv.units_reissued_after_crash)
      .u64("units_lost", inv.units_lost)
      .u64("breaker_opens", inv.breaker_opens)
      .u64("breaker_reprobes", inv.breaker_reprobes)
      .u64("view_changes", inv.view_changes)
      .f("recovery_p50_s", recovery_p50, 1)
      .f("recovery_p99_s", recovery_p99, 1)
      .u64("invariant_violations", inv.violations.size())
      .u64("ok", ok ? 1 : 0);
  emit_json("dependability_long_run", j);

  std::error_code ec;
  std::filesystem::remove_all(storage, ec);
  return ok ? 0 : 1;
}
