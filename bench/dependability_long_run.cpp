// Section 7 "Dependable": "The Ramsey Number Search application ran
// continuously from early June, 1998, until the High-Performance Computing
// Challenge on November 12, 1998."
//
// We cannot simulate five months in a bench run, but we can run 48 hours of
// continuous churn (no judging spike, normal host/network turbulence) and
// verify the application never stops delivering: every 5-minute bin has
// nonzero delivered ops, clients die and are replaced continuously, and the
// delivered rate holds its level from the first day to the second.
#include "bench/bench_util.hpp"

using namespace ew;
using namespace ew::bench;

int main() {
  std::printf("=== Section 7 'Dependable': 48-hour continuous churn run ===\n\n");
  app::ScenarioOptions opts;
  opts.record = 48 * kHour;
  opts.enable_spike = false;
  opts.fleet_scale = 0.5;  // half fleet keeps the bench quick
  app::Sc98Scenario scenario(opts);
  const app::ScenarioResults res = scenario.run();

  std::size_t zero_bins = 0;
  for (double v : res.total_rate) zero_bins += v <= 0.0 ? 1 : 0;

  const std::size_t half = res.total_rate.size() / 2;
  const double day1 = series_mean(std::vector<double>(
      res.total_rate.begin(), res.total_rate.begin() + static_cast<std::ptrdiff_t>(half)));
  const double day2 = series_mean(std::vector<double>(
      res.total_rate.begin() + static_cast<std::ptrdiff_t>(half), res.total_rate.end()));

  std::printf("bins: %zu x 5 min, zero-delivery bins: %zu\n",
              res.total_rate.size(), zero_bins);
  std::printf("mean rate day 1: %.3e ops/s\n", day1);
  std::printf("mean rate day 2: %.3e ops/s (drift %+.1f%%)\n", day2,
              100.0 * (day2 - day1) / day1);
  std::printf("clients presumed dead and replaced: %llu\n",
              static_cast<unsigned long long>(res.presumed_dead));
  std::printf("condor evictions survived: %llu\n",
              static_cast<unsigned long long>(res.condor_evictions));
  std::printf("total work delivered: %.3e ops across %llu reports\n",
              static_cast<double>(res.total_ops),
              static_cast<unsigned long long>(res.reports));

  const bool ok = zero_bins == 0 && res.presumed_dead > 100 &&
                  day2 > 0.7 * day1 && day2 < 1.4 * day1;
  std::printf("\ndependability: %s (continuous delivery through continuous "
              "failure)\n",
              ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
