// Ablation (Section 2.2): dynamic time-out discovery vs static time-outs,
// plus the reliable-call policy layered on top of it.
//
// "Using the alternative of statically determined time-outs, the system
// frequently misjudged the availability (or lack thereof) of the different
// EveryWare state-management servers causing needless retries and dynamic
// reconfigurations. ... This dynamic time-out discovery proved crucial to
// overall program stability."
//
// Part 1 — the time-out itself. The metric is stability, exactly as the
// paper frames it: a *spurious time-out* is a call the policy abandoned
// whose response later arrived — the server was alive, the time-out
// misjudged it, and the caller performed a needless retry/re-registration.
// A *slow* policy instead wastes time waiting on genuinely-lost messages.
// The adaptive policy must sit in the corner statics cannot reach: few
// misjudgments AND short waits, without hand tuning.
//
// Part 2 — what the time-out actuates. With the forecast pricing each
// attempt, CallOptions can ask for in-call retries and forecast-triggered
// hedges. Under injected message loss the policy arms must complete more
// calls than the bare single-attempt arm while spending no more than 1.3x
// its packets. Emits ONE machine-readable JSON line (see EXPERIMENTS.md,
// "Reliable-call policy ablation"):
//
//   {"bench":"ablation_call_policy","loss":...,"calls":...,
//    "arms":[{"arm":...,"completion":...,"p99_s":...,
//             "packets_per_call":...,"attempts_per_call":...},...],
//    "extra_traffic_ratio":...,"completion_gain":...}
//
// `--quick` runs only Part 2 with a small call count so the bench_smoke
// CTest target can prove the harness still builds and runs; `--policy`
// runs only Part 2 at full size.
#include <cstring>

#include "bench/bench_util.hpp"
#include "net/call_policy.hpp"
#include "net/node.hpp"
#include "obs/registry.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

using namespace ew;
using namespace ew::bench;

namespace {

// ---------------------------------------------------------------------------
// Part 1: dynamic time-out discovery vs statics (full scenario).

struct Row {
  std::string label;
  std::uint64_t timeouts = 0;         // calls ended by the timer
  std::uint64_t spurious = 0;         // ...whose response later arrived
  double mean_wait_s = 0;             // mean time burned per fired time-out
  double total_ops = 0;
};

Row run_config(bool adaptive, Duration static_timeout, const std::string& label) {
  process_call_stats().reset();
  app::ScenarioOptions o;
  o.fleet_scale = 0.35;
  o.record = 5 * kHour;
  o.judging_offset = 3 * kHour;
  o.adaptive_timeouts = adaptive;
  o.static_timeout = static_timeout;
  app::Sc98Scenario scenario(o);
  const app::ScenarioResults res = scenario.run();
  obs::Registry& reg = process_call_stats().registry();
  Row row;
  row.label = label;
  row.timeouts = reg.counter(obs::names::kNetTimeoutsFired).value();
  row.spurious = reg.counter(obs::names::kNetLateResponses).value();
  row.mean_wait_s =
      row.timeouts
          ? to_seconds(static_cast<Duration>(
                reg.histogram(obs::names::kNetTimeoutWaitUs).sum())) /
                static_cast<double>(row.timeouts)
          : 0.0;
  row.total_ops = static_cast<double>(res.total_ops);
  return row;
}

int run_timeout_ablation() {
  std::printf("=== Ablation: dynamic time-out discovery (Section 2.2) ===\n");
  std::printf("5-hour spike scenario, 0.35 fleet scale, seed 42\n\n");

  std::vector<Row> rows;
  rows.push_back(run_config(true, 0, "adaptive (forecast-driven)"));
  for (Duration t : {250 * kMillisecond, 500 * kMillisecond, 1 * kSecond,
                     2 * kSecond, 5 * kSecond, 15 * kSecond}) {
    char label[64];
    std::snprintf(label, sizeof(label), "static %.2fs", to_seconds(t));
    rows.push_back(run_config(false, t, label));
  }

  std::printf("%-28s %10s %10s %12s %14s\n", "policy", "timeouts",
              "spurious", "mean-wait(s)", "total ops");
  for (const auto& r : rows) {
    std::printf("%-28s %10llu %10llu %12.2f %14.4e\n", r.label.c_str(),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.spurious), r.mean_wait_s,
                r.total_ops);
  }

  // The adaptive policy must dominate: fewer misjudgments than any static
  // at or below its own mean wait, and shorter waits than any static with
  // comparable misjudgment counts — the "crucial to stability" corner.
  const Row& adaptive = rows[0];
  bool dominated = false;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].spurious <= adaptive.spurious &&
        rows[i].mean_wait_s <= adaptive.mean_wait_s) {
      dominated = true;  // some static is better on both axes
    }
  }
  double best_static_ops = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    best_static_ops = std::max(best_static_ops, rows[i].total_ops);
  }
  const bool ops_ok = adaptive.total_ops >= 0.97 * best_static_ops;

  std::printf("\nadaptive: %.2fs mean wait with %llu spurious time-outs — "
              "no static value reaches both.\n",
              adaptive.mean_wait_s,
              static_cast<unsigned long long>(adaptive.spurious));
  const bool ok = !dominated && ops_ok;
  std::printf("claim ('dynamic time-out discovery proved crucial to overall "
              "program stability'): %s\n",
              ok ? "SUPPORTED" : "NOT SUPPORTED");
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Part 2: reliable-call policy arms under injected loss (isolated sim).

constexpr MsgType kOp = 0x42;

struct PolicyArm {
  std::string label;
  double completion = 0;
  double p99_s = 0;
  double packets_per_call = 0;
  double attempts_per_call = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t retries = 0;
};

/// One client/server pair over a lossy cross-site link. Every arm gets a
/// fresh world from the same seed; warm-up is lossless so the forecaster
/// learns the true RTT distribution before the tap opens.
PolicyArm run_policy_arm(const std::string& label, const CallOptions& proto,
                         std::size_t calls, double loss) {
  sim::EventQueue events;
  sim::NetworkModel network{Rng(42)};
  network.set_site("cli", "east");
  network.set_site("srv", "west");
  network.set_loss_rate(0.0);
  sim::SimTransport transport(events, network);
  Node server(events, transport, Endpoint{"srv", 1});
  Node client(events, transport, Endpoint{"cli", 1});
  server.start();
  client.start();
  server.handle(kOp, [](const IncomingMessage& m, Responder r) {
    r.ok(m.packet.payload);
  });

  AggregateCallStats stats;
  client.call_policy().set_stats_sink(&stats);

  for (int i = 0; i < 64; ++i) {
    events.schedule(static_cast<Duration>(i) * (100 * kMillisecond), [&] {
      client.call(server.self(), kOp, {0}, CallOptions{}, [](Result<Bytes>) {});
    });
  }
  events.run_until_idle();

  network.set_loss_rate(loss);
  stats.reset();
  const std::uint64_t packets_before = transport.packets_sent();

  std::vector<double> latency;
  latency.reserve(calls);
  std::size_t ok_calls = 0;
  for (std::size_t i = 0; i < calls; ++i) {
    events.schedule(static_cast<Duration>(i) * (150 * kMillisecond), [&] {
      const TimePoint start = events.clock().now();
      CallOptions o = proto;
      client.call(server.self(), kOp, {1}, std::move(o),
                  [&, start](Result<Bytes> r) {
                    latency.push_back(to_seconds(events.clock().now() - start));
                    if (r.ok()) ++ok_calls;
                  });
    });
  }
  events.run_until_idle();

  PolicyArm arm;
  arm.label = label;
  arm.completion = static_cast<double>(ok_calls) / static_cast<double>(calls);
  std::sort(latency.begin(), latency.end());
  arm.p99_s = latency.empty() ? 0.0 : latency[(latency.size() - 1) * 99 / 100];
  arm.packets_per_call =
      static_cast<double>(transport.packets_sent() - packets_before) /
      static_cast<double>(calls);
  obs::Registry& sreg = stats.registry();
  arm.attempts_per_call =
      static_cast<double>(sreg.counter(obs::names::kNetAttempts).value()) /
      static_cast<double>(calls);
  arm.hedges = sreg.counter(obs::names::kNetHedges).value();
  arm.hedge_wins = sreg.counter(obs::names::kNetHedgeWins).value();
  arm.retries = sreg.counter(obs::names::kNetRetries).value();
  client.call_policy().set_stats_sink(nullptr);
  client.stop();
  server.stop();
  return arm;
}

int run_policy_ablation(std::size_t calls) {
  const double loss = 0.10;  // per message: ~0.81 single-attempt completion

  CallOptions off;  // bare Node::call — one attempt, forecast time-out
  CallOptions retry;
  retry.retry = RetryPolicy::standard(3);
  CallOptions hedged;
  hedged.retry = RetryPolicy::standard(3);
  hedged.hedge = HedgePolicy::at(0.97);

  const std::vector<std::pair<std::string, const CallOptions*>> specs = {
      {"no-policy", &off}, {"retry", &retry}, {"retry+hedge", &hedged}};
  std::vector<PolicyArm> arms;
  for (const auto& [label, opts] : specs) {
    arms.push_back(run_policy_arm(label, *opts, calls, loss));
  }

  const PolicyArm& base = arms[0];
  double worst_traffic = 0;
  double best_completion = 0;
  for (std::size_t i = 1; i < arms.size(); ++i) {
    worst_traffic = std::max(
        worst_traffic, arms[i].packets_per_call / base.packets_per_call);
    best_completion = std::max(best_completion, arms[i].completion);
  }

  std::vector<std::string> arm_objs;
  arm_objs.reserve(arms.size());
  for (const PolicyArm& a : arms) {
    JsonWriter w;
    w.str("arm", a.label)
        .f("completion", a.completion, 4)
        .f("p99_s", a.p99_s, 4)
        .f("packets_per_call", a.packets_per_call, 3)
        .f("attempts_per_call", a.attempts_per_call, 3)
        .u64("retries", a.retries)
        .u64("hedges", a.hedges)
        .u64("hedge_wins", a.hedge_wins);
    arm_objs.push_back(w.object());
  }
  JsonWriter line;
  line.f("loss", loss, 3)
      .u64("calls", calls)
      .raw("arms", json_array(arm_objs))
      .f("extra_traffic_ratio", worst_traffic, 3)
      .f("completion_gain", best_completion - base.completion, 4);
  emit_json("ablation_call_policy", line);

  // Every policy arm must beat the bare arm on completion, at bounded cost.
  bool ok = true;
  for (std::size_t i = 1; i < arms.size(); ++i) {
    if (arms[i].completion <= base.completion) ok = false;
  }
  if (worst_traffic > 1.3) ok = false;
  if (!ok) {
    std::fprintf(stderr,
                 "ablation_call_policy: policy arms failed to dominate "
                 "(completion %.4f base vs %.4f best, traffic %.3fx)\n",
                 base.completion, best_completion, worst_traffic);
  }
  return ok ? 0 : 1;
}

// The whole point of the unified registry: ONE document answering "what did
// the call layer, the gossip layer and the scheduler do this run". Part 1's
// scenarios feed the process-wide registry (call attempts/retries/hedges and
// breaker opens via process_call_stats(), gossip sync rounds, scheduler
// dispatches), so a single snapshot_json() replaces a per-subsystem probe.
void emit_obs_snapshot() {
  JsonWriter line;
  line.raw("registry", obs::snapshot_json());
  emit_json("ablation_obs_snapshot", line);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool policy_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--policy") == 0) policy_only = true;
  }
  if (quick) {
    const int rc = run_policy_ablation(400);
    emit_obs_snapshot();
    return rc;
  }
  if (policy_only) {
    const int rc = run_policy_ablation(4000);
    emit_obs_snapshot();
    return rc;
  }
  const int rc_timeouts = run_timeout_ablation();
  std::printf("\n=== Ablation: reliable-call policy under 10%% loss ===\n");
  const int rc_policy = run_policy_ablation(4000);
  emit_obs_snapshot();
  return rc_timeouts != 0 ? rc_timeouts : rc_policy;
}
