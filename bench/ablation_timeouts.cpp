// Ablation (Section 2.2): dynamic time-out discovery vs static time-outs.
//
// "Using the alternative of statically determined time-outs, the system
// frequently misjudged the availability (or lack thereof) of the different
// EveryWare state-management servers causing needless retries and dynamic
// reconfigurations. ... This dynamic time-out discovery proved crucial to
// overall program stability."
//
// The metric is stability, exactly as the paper frames it: a *spurious
// time-out* is a call the policy abandoned whose response later arrived —
// the server was alive, the time-out misjudged it, and the caller performed
// a needless retry/re-registration. A *slow* policy instead wastes time
// waiting on genuinely-lost messages. The adaptive policy must sit in the
// corner statics cannot reach: few misjudgments AND short waits, without
// hand tuning.
#include "bench/bench_util.hpp"
#include "net/node.hpp"

using namespace ew;
using namespace ew::bench;

namespace {

struct Row {
  std::string label;
  std::uint64_t timeouts = 0;         // calls ended by the timer
  std::uint64_t spurious = 0;         // ...whose response later arrived
  double mean_wait_s = 0;             // mean time burned per fired time-out
  double total_ops = 0;
};

Row run_config(bool adaptive, Duration static_timeout, const std::string& label) {
  Node::reset_global_stats();
  app::ScenarioOptions o;
  o.fleet_scale = 0.35;
  o.record = 5 * kHour;
  o.judging_offset = 3 * kHour;
  o.adaptive_timeouts = adaptive;
  o.static_timeout = static_timeout;
  app::Sc98Scenario scenario(o);
  const app::ScenarioResults res = scenario.run();
  const auto& stats = Node::global_stats();
  Row row;
  row.label = label;
  row.timeouts = stats.timeouts_fired;
  row.spurious = stats.late_responses;
  row.mean_wait_s =
      stats.timeouts_fired
          ? to_seconds(static_cast<Duration>(stats.timeout_wait_us)) /
                static_cast<double>(stats.timeouts_fired)
          : 0.0;
  row.total_ops = static_cast<double>(res.total_ops);
  return row;
}

}  // namespace

int main() {
  std::printf("=== Ablation: dynamic time-out discovery (Section 2.2) ===\n");
  std::printf("5-hour spike scenario, 0.35 fleet scale, seed 42\n\n");

  std::vector<Row> rows;
  rows.push_back(run_config(true, 0, "adaptive (forecast-driven)"));
  for (Duration t : {250 * kMillisecond, 500 * kMillisecond, 1 * kSecond,
                     2 * kSecond, 5 * kSecond, 15 * kSecond}) {
    char label[64];
    std::snprintf(label, sizeof(label), "static %.2fs", to_seconds(t));
    rows.push_back(run_config(false, t, label));
  }

  std::printf("%-28s %10s %10s %12s %14s\n", "policy", "timeouts",
              "spurious", "mean-wait(s)", "total ops");
  for (const auto& r : rows) {
    std::printf("%-28s %10llu %10llu %12.2f %14.4e\n", r.label.c_str(),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.spurious), r.mean_wait_s,
                r.total_ops);
  }

  // The adaptive policy must dominate: fewer misjudgments than any static
  // at or below its own mean wait, and shorter waits than any static with
  // comparable misjudgment counts — the "crucial to stability" corner.
  const Row& adaptive = rows[0];
  bool dominated = false;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].spurious <= adaptive.spurious &&
        rows[i].mean_wait_s <= adaptive.mean_wait_s) {
      dominated = true;  // some static is better on both axes
    }
  }
  double best_static_ops = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    best_static_ops = std::max(best_static_ops, rows[i].total_ops);
  }
  const bool ops_ok = adaptive.total_ops >= 0.97 * best_static_ops;

  std::printf("\nadaptive: %.2fs mean wait with %llu spurious time-outs — "
              "no static value reaches both.\n",
              adaptive.mean_wait_s,
              static_cast<unsigned long long>(adaptive.spurious));
  const bool ok = !dominated && ops_ok;
  std::printf("claim ('dynamic time-out discovery proved crucial to overall "
              "program stability'): %s\n",
              ok ? "SUPPORTED" : "NOT SUPPORTED");
  return ok ? 0 : 1;
}
