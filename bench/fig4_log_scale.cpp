// Figure 4: the Figure 3 series on a log scale.
//
// The log-scale presentation makes the paper's point quantitative: delivered
// rates span ~6 orders of magnitude across infrastructures (NetSolve ~1e6,
// Condor ~1e9), each individual series is jagged, and the total is smoother
// than (nearly) all of them. We print log10 series and report the
// order-of-magnitude span plus a coefficient-of-variation comparison.
#include <cmath>

#include "bench/bench_util.hpp"

using namespace ew;
using namespace ew::bench;

namespace {
double safe_log10(double v) { return v > 0 ? std::log10(v) : 0.0; }
}  // namespace

int main() {
  std::printf("=== Figure 4: per-infrastructure series (log scale) ===\n\n");
  app::ScenarioOptions opts;
  app::Sc98Scenario scenario(opts);
  const app::ScenarioResults res = scenario.run();

  std::printf("--- (a) log10(delivered ops/sec) ---\n");
  std::printf("%-10s", "time(PST)");
  for (int k = 0; k < core::kInfraCount; ++k) {
    std::printf(" %9s", core::infra_name(static_cast<core::Infra>(k)));
  }
  std::printf(" %9s\n", "TOTAL");
  for (std::size_t i = 0; i < res.total_rate.size(); i += 2) {
    std::printf("%-10s", pst_label(res.bin_start[i] - res.bin_start[0]).c_str());
    for (int k = 0; k < core::kInfraCount; ++k) {
      std::printf(" %9.2f", safe_log10(res.infra_rate[static_cast<std::size_t>(k)][i]));
    }
    std::printf(" %9.2f\n", safe_log10(res.total_rate[i]));
  }

  // Span of sustained (mean) rates across infrastructures.
  double lo_mean = 1e300, hi_mean = 0;
  for (int k = 0; k < core::kInfraCount; ++k) {
    const double m = series_mean(res.infra_rate[static_cast<std::size_t>(k)]);
    if (m <= 0) continue;
    lo_mean = std::min(lo_mean, m);
    hi_mean = std::max(hi_mean, m);
  }
  const double span = std::log10(hi_mean / lo_mean);
  std::printf("\nrate span across infrastructures: %.1f orders of magnitude "
              "(paper Figure 4a: ~3 between Netsolve ~1e6 and Condor ~1e9)\n",
              span);

  // Smoothness: the aggregate's CV vs each component's.
  const double total_cv = coefficient_of_variation(res.total_rate);
  std::printf("\n%-10s %10s\n", "series", "CV");
  std::printf("%-10s %10.3f\n", "TOTAL", total_cv);
  int rougher = 0, measured = 0;
  for (int k = 0; k < core::kInfraCount; ++k) {
    const auto& s = res.infra_rate[static_cast<std::size_t>(k)];
    if (series_mean(s) <= 0) continue;
    const double cv = coefficient_of_variation(s);
    std::printf("%-10s %10.3f\n", core::infra_name(static_cast<core::Infra>(k)), cv);
    ++measured;
    if (cv > total_cv) ++rougher;
  }
  std::printf("\ncomponents rougher than the total: %d / %d "
              "(paper: the application draws power 'relatively uniformly'\n"
              " despite per-infrastructure fluctuation)\n",
              rougher, measured);
  const bool ok = span >= 2.0 && rougher >= measured - 1;
  std::printf("figure-4 shape: %s\n", ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
