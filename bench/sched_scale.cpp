// Scheduler scale gate: one scheduler, a sharded work pool, and a million
// outstanding work units under seeded client churn (DESIGN.md §13,
// EXPERIMENTS.md "Scheduler scale").
//
// The point of the batched directive API is that scheduler traffic is a
// function of the CLIENT population, not the unit population: a client
// holding an 8192-unit lease costs one kSchedReportBatch round-trip per
// quantum, and the range-sharded pool behind the scheduler absorbs the whole
// batch with one router call. This harness drives 128 synthetic clients
// (the bench is its own client driver, so it can keep a reference model of
// who holds what) to 1,048,576 outstanding units across 8 shards, kills a
// seeded cohort mid-run, lets the sweep reclaim their leases, registers
// replacements that drain the orphaned frontier back out, and gates:
//
//   * outstanding units return to the full clients x lease target;
//   * ZERO lost units (pool-assigned but held by nobody alive) and ZERO
//     double-issued units (held by two live clients at once), checked by
//     exact reconciliation of pool.assigned_units() against the driver's
//     holder model;
//   * p99 directive latency (report sent -> directive applied) stays
//     bounded, across every batch call in the run;
//   * a replayed report batch (same client, same seq) is answered from the
//     reply cache bit-identically and mutates nothing;
//   * the replacement refill reuses reclaimed frontier work across shard
//     boundaries (steals > 0) instead of minting from scratch.
//
// Emits ONE machine-readable JSON line:
//
//   {"bench":"sched_scale","clients":128,"lease":8192,"shards":8,
//    "outstanding":...,"units_issued":...,"frontier":...,"reports":...,
//    "batches":...,"replays":...,"steals":...,"presumed_dead":...,
//    "double_issued":0,"lost":0,"p99_directive_us":...,"sim_events":...}
//
// --quick shrinks the fleet (64 clients x 512 units, 4 shards) for the CI
// smoke run but keeps every correctness gate.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "core/scheduler.hpp"
#include "ramsey/graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew::core {
namespace {

constexpr Duration kReportInterval = 60 * kSecond;

struct DriverClient {
  Endpoint ep;
  std::uint64_t seq = 0;
  std::unordered_set<std::uint64_t> held;
  bool alive = true;
};

struct Driver {
  Driver(sim::EventQueue& events, Transport& transport, Endpoint sched)
      : node(events, transport, Endpoint{"driver", 3000}), sched(sched) {
    if (!node.start().ok()) std::abort();
    Rng g(99);
    graph_blob = ramsey::ColoredGraph::random(10, g).serialize();
  }

  /// Apply a DirectiveBatch to client i, cross-checking the holder model.
  void apply(std::size_t i, DirectiveBatch&& d) {
    auto& c = clients[i];
    for (auto id : d.revoke) {
      if (c.held.erase(id) > 0) {
        auto h = holder.find(id);
        if (h != holder.end() && h->second == i) holder.erase(h);
      }
    }
    for (auto& spec : d.assign) {
      if (!c.held.insert(spec.unit_id).second) continue;  // replayed assign
      auto h = holder.find(spec.unit_id);
      if (h != holder.end() && h->second != i && clients[h->second].alive) {
        ++double_issued;
        std::fprintf(stderr,
                     "sched_scale: unit %llu issued to client %zu while "
                     "client %zu still holds it\n",
                     static_cast<unsigned long long>(spec.unit_id), i,
                     h->second);
      }
      holder[spec.unit_id] = i;
    }
  }

  void register_client(std::size_t i, std::uint32_t lease) {
    ClientHello hello;
    hello.client = clients[i].ep;
    hello.infra = Infra::kUnix;
    hello.host = clients[i].ep.host;
    hello.want_units = lease;
    CallOptions o;
    o.retry = RetryPolicy::standard(2);
    o.trace_tag = "bench.register";
    ++pending;
    node.call(sched, msgtype::kSchedRegister, hello.serialize(), std::move(o),
              [this, i](Result<Bytes> r) {
                --pending;
                if (!r.ok()) {
                  ++call_failures;
                  return;
                }
                auto d = DirectiveBatch::deserialize(*r);
                if (d) apply(i, std::move(*d));
              });
  }

  /// One report batch for client i covering its whole lease. Retried and
  /// hedged: the scheduler's seq dedupe makes the duplicates safe, which is
  /// exactly the property under test.
  void send_report(std::size_t i, std::uint32_t lease, int round,
                   bool keep_wire = false) {
    auto& c = clients[i];
    ReportBatch batch;
    batch.client = c.ep;
    batch.seq = ++c.seq;
    batch.want_units = lease;
    batch.reports.reserve(c.held.size());
    for (auto id : c.held) {
      ramsey::WorkReport rep;
      rep.unit_id = id;
      rep.ops_done = 60'000'000;
      rep.best_energy =
          std::max<std::uint64_t>(15, 300 - 20 * round + id % 10);
      rep.found = false;
      rep.best_graph = graph_blob;
      batch.reports.push_back(std::move(rep));
    }
    Bytes wire = batch.serialize();
    if (keep_wire) probe_wire = wire;
    CallOptions o;
    o.retry = RetryPolicy::standard(1);
    o.hedge = HedgePolicy::at(0.95);
    o.trace_tag = "bench.report";
    const TimePoint sent = node.executor().now();
    ++pending;
    node.call(sched, msgtype::kSchedReportBatch, std::move(wire), std::move(o),
              [this, i, sent, keep_wire](Result<Bytes> r) {
                --pending;
                if (!r.ok()) {
                  ++call_failures;
                  return;
                }
                latencies_us.push_back(
                    static_cast<std::uint64_t>(node.executor().now() - sent));
                if (keep_wire) probe_reply = *r;
                auto d = DirectiveBatch::deserialize(*r);
                if (d) apply(i, std::move(*d));
              });
  }

  Node node;
  Endpoint sched;
  Bytes graph_blob;
  std::vector<DriverClient> clients;
  std::unordered_map<std::uint64_t, std::size_t> holder;  // unit -> client
  std::vector<std::uint64_t> latencies_us;
  Bytes probe_wire;   // last wire bytes of the replay-probe client
  Bytes probe_reply;  // the reply those bytes earned
  std::uint64_t double_issued = 0;
  std::uint64_t call_failures = 0;
  int pending = 0;
};

std::uint64_t percentile_us(std::vector<std::uint64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace
}  // namespace ew::core

int main(int argc, char** argv) {
  using namespace ew;
  using namespace ew::core;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t kClients = quick ? 64 : 128;
  const std::uint32_t kLease = quick ? 512 : 8192;
  const std::uint32_t kShards = quick ? 4 : 8;
  const std::size_t kKills = quick ? 8 : 12;
  const std::uint64_t target =
      static_cast<std::uint64_t>(kClients) * kLease;

  sim::EventQueue events;
  sim::NetworkModel net{Rng(0x5CED)};
  net.set_loss_rate(0.0);
  net.set_jitter_sigma(0.0);
  sim::SimTransport transport(events, net);

  Node sched_node(events, transport, Endpoint{"sched", 601});
  if (!sched_node.start().ok()) std::abort();
  SchedulerServer::Options so;
  so.pool.n = 10;
  so.pool.k = 4;
  so.pool.seed_base = 0xBE9C;
  // Reclaimed leases must be reusable, not trimmed: the refill leg gates on
  // replacements draining the orphaned frontier.
  so.pool.max_idle_frontier = target;
  so.pool_shards = kShards;
  so.max_units_per_client = kLease;
  so.migration_period = 12 * kHour;  // migration has its own tests; keep the
                                     // reconciliation model transfer-free
  SchedulerServer sched(sched_node, so);
  sched.start();

  Driver driver(events, transport, sched_node.self());
  Rng rng(0xC0FFEE);

  // Ramp: register the fleet staggered across a few seconds; every client
  // leaves with a full lease of freshly minted units.
  for (std::size_t i = 0; i < kClients; ++i) {
    driver.clients.push_back(
        DriverClient{Endpoint{"c" + std::to_string(i), 2000}});
  }
  for (std::size_t i = 0; i < kClients; ++i) {
    events.schedule(static_cast<Duration>(i) * 50 * kMillisecond,
                    [&driver, i, kLease] { driver.register_client(i, kLease); });
  }
  events.run_for(30 * kSecond);

  auto run_round = [&](int round, std::size_t probe = SIZE_MAX) {
    for (std::size_t i = 0; i < driver.clients.size(); ++i) {
      if (!driver.clients[i].alive) continue;
      events.schedule(static_cast<Duration>(i) * 20 * kMillisecond,
                      [&driver, i, kLease, round, probe] {
                        driver.send_report(i, kLease, round, i == probe);
                      });
    }
    events.run_for(kReportInterval);
  };

  int round = 0;
  for (; round < 3; ++round) run_round(round);  // steady state
  const std::uint64_t outstanding_steady = sched.pool().assigned_count();

  // Churn leg: a seeded cohort dies without deregistering (Condor eviction,
  // closed browser). Their reports stop; the sweep must notice and reclaim.
  std::size_t killed = 0;
  while (killed < kKills) {
    auto& victim = driver.clients[rng.below(driver.clients.size())];
    if (!victim.alive) continue;
    victim.alive = false;
    ++killed;
  }
  // Survivors keep reporting until every dead lease is swept back in.
  for (int spin = 0; spin < 30 && sched.clients_presumed_dead() < kKills;
       ++spin) {
    run_round(round++);
  }

  // Refill: replacements register and are fed from the reclaimed frontier
  // (cross-shard steals), not from fresh mints.
  const std::uint64_t issued_before_refill = sched.pool().units_issued();
  const std::size_t first_replacement = driver.clients.size();
  for (std::size_t i = 0; i < kKills; ++i) {
    driver.clients.push_back(
        DriverClient{Endpoint{"r" + std::to_string(i), 2000}});
  }
  for (std::size_t i = 0; i < kKills; ++i) {
    events.schedule(static_cast<Duration>(i) * 100 * kMillisecond,
                    [&driver, first_replacement, i, kLease] {
                      driver.register_client(first_replacement + i, kLease);
                    });
  }
  events.run_for(30 * kSecond);
  run_round(round++);
  run_round(round++, /*probe=*/0);  // final round; keep client 0's wire bytes

  // Reconcile: the pool's assigned set must be EXACTLY the disjoint union
  // of what live clients hold.
  std::uint64_t lost = 0, phantom = 0;
  {
    const auto pool_ids = sched.pool().assigned_units();  // sorted
    std::vector<std::uint64_t> held_ids;
    for (const auto& c : driver.clients) {
      if (!c.alive) continue;
      held_ids.insert(held_ids.end(), c.held.begin(), c.held.end());
    }
    std::sort(held_ids.begin(), held_ids.end());
    std::vector<std::uint64_t> diff;
    std::set_difference(pool_ids.begin(), pool_ids.end(), held_ids.begin(),
                        held_ids.end(), std::back_inserter(diff));
    lost = diff.size();  // assigned in the pool, held by nobody alive
    diff.clear();
    std::set_difference(held_ids.begin(), held_ids.end(), pool_ids.begin(),
                        pool_ids.end(), std::back_inserter(diff));
    phantom = diff.size();  // held by a client, unknown to the pool
  }

  // Replay probe: the exact bytes of client 0's last batch, again. The
  // scheduler must answer from its reply cache, bit-identically, without
  // touching the pool.
  const std::uint64_t replays_before = sched.batch_replays();
  const auto assigned_before_probe = sched.pool().assigned_count();
  Bytes replay_reply;
  bool replay_ok = false;
  driver.node.call(sched_node.self(), msgtype::kSchedReportBatch,
                   Bytes(driver.probe_wire), CallOptions::fixed(5 * kSecond),
                   [&](Result<Bytes> r) {
                     replay_ok = r.ok();
                     if (r.ok()) replay_reply = *r;
                   });
  events.run_for(10 * kSecond);
  const bool replay_identical = replay_ok && replay_reply == driver.probe_reply;
  const bool replay_counted = sched.batch_replays() > replays_before;
  const bool replay_pure =
      sched.pool().assigned_count() == assigned_before_probe;

  const std::uint64_t outstanding = sched.pool().assigned_count();
  const std::uint64_t p99 = percentile_us(driver.latencies_us, 0.99);
  const std::uint64_t p50 = percentile_us(driver.latencies_us, 0.50);

  bench::JsonWriter w;
  w.u64("clients", kClients)
      .u64("lease", kLease)
      .u64("shards", kShards)
      .u64("outstanding", outstanding)
      .u64("outstanding_steady", outstanding_steady)
      .u64("units_issued", sched.pool().units_issued())
      .u64("minted_in_refill",
           sched.pool().units_issued() - issued_before_refill)
      .u64("frontier", sched.pool().idle_frontier_size())
      .u64("reports", sched.reports_received())
      .u64("batches", sched.report_batches_received())
      .u64("replays", sched.batch_replays())
      .u64("steals", sched.pool().steals())
      .u64("presumed_dead", sched.clients_presumed_dead())
      .u64("double_issued", driver.double_issued)
      .u64("lost", lost)
      .u64("phantom", phantom)
      .u64("call_failures", driver.call_failures)
      .u64("p50_directive_us", p50)
      .u64("p99_directive_us", p99)
      .u64("sim_events", events.executed());
  bench::emit_json("sched_scale", w);

  int rc = 0;
  if (outstanding < target) {
    std::fprintf(stderr, "FAIL: %llu outstanding units, target %llu\n",
                 static_cast<unsigned long long>(outstanding),
                 static_cast<unsigned long long>(target));
    rc = 1;
  }
  if (driver.double_issued != 0) {
    std::fprintf(stderr, "FAIL: %llu double-issued units\n",
                 static_cast<unsigned long long>(driver.double_issued));
    rc = 1;
  }
  if (lost != 0 || phantom != 0) {
    std::fprintf(stderr, "FAIL: reconciliation found %llu lost / %llu phantom units\n",
                 static_cast<unsigned long long>(lost),
                 static_cast<unsigned long long>(phantom));
    rc = 1;
  }
  if (p99 > 5 * kSecond) {
    std::fprintf(stderr, "FAIL: p99 directive latency %llu us (cap 5s)\n",
                 static_cast<unsigned long long>(p99));
    rc = 1;
  }
  if (sched.clients_presumed_dead() < kKills) {
    std::fprintf(stderr, "FAIL: only %llu of %zu dead clients swept\n",
                 static_cast<unsigned long long>(sched.clients_presumed_dead()),
                 kKills);
    rc = 1;
  }
  if (!replay_identical || !replay_counted || !replay_pure) {
    std::fprintf(stderr,
                 "FAIL: replay probe (identical=%d counted=%d pure=%d)\n",
                 replay_identical, replay_counted, replay_pure);
    rc = 1;
  }
  if (sched.pool().steals() == 0) {
    std::fprintf(stderr, "FAIL: refill never reused the reclaimed frontier\n");
    rc = 1;
  }
  return rc;
}
