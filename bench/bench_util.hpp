// Shared helpers for the figure-reproduction harnesses.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "app/scenario.hpp"

namespace ew::bench {

/// Builder for the ONE machine-readable JSON line each bench emits (see
/// EXPERIMENTS.md). Fields render in insertion order so a bench's line is
/// stable across runs; raw() splices an already-rendered JSON value (a
/// nested object or array — usually another JsonWriter, or a document such
/// as obs::snapshot_json()). Keys are trusted literals; string *values* get
/// quote/backslash escaping.
class JsonWriter {
 public:
  JsonWriter& u64(std::string_view key, std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    return append(key, buf);
  }
  /// Fixed-point double — the common case for rates and seconds.
  JsonWriter& f(std::string_view key, double v, int precision = 3) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return append(key, buf);
  }
  /// Shortest-form double (%g) for checksums and wide-range values.
  JsonWriter& g(std::string_view key, double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return append(key, buf);
  }
  JsonWriter& str(std::string_view key, std::string_view v) {
    std::string quoted;
    quoted.reserve(v.size() + 2);
    quoted.push_back('"');
    for (char c : v) {
      if (c == '"' || c == '\\') quoted.push_back('\\');
      quoted.push_back(c);
    }
    quoted.push_back('"');
    return append(key, quoted);
  }
  JsonWriter& raw(std::string_view key, std::string_view json) {
    return append(key, json);
  }
  /// Append every field of another writer (used by emit_json).
  JsonWriter& merge(const JsonWriter& other) {
    if (other.body_.empty()) return *this;
    if (!body_.empty()) body_.push_back(',');
    body_ += other.body_;
    return *this;
  }

  [[nodiscard]] std::string object() const { return "{" + body_ + "}"; }

 private:
  JsonWriter& append(std::string_view key, std::string_view value) {
    if (!body_.empty()) body_.push_back(',');
    body_.push_back('"');
    body_.append(key);
    body_ += "\":";
    body_.append(value);
    return *this;
  }

  std::string body_;
};

/// Join pre-rendered JSON values into an array.
inline std::string json_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out.push_back(',');
    out += items[i];
  }
  out.push_back(']');
  return out;
}

/// Print a bench's single JSON line: {"bench":"<name>",<fields...>}\n.
/// Every harness emits through here so the line shape cannot drift.
inline void emit_json(std::string_view name, const JsonWriter& fields) {
  JsonWriter line;
  line.str("bench", name).merge(fields);
  std::printf("%s\n", line.object().c_str());
}

/// Wall-clock label for a recording-window offset (t=0 is 23:36:56 PST).
inline std::string pst_label(Duration offset_from_record_start) {
  const std::int64_t base = 23 * 3600 + 36 * 60 + 56;
  const std::int64_t s = (base + offset_from_record_start / kSecond) % 86400;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld",
                static_cast<long long>(s / 3600),
                static_cast<long long>((s / 60) % 60),
                static_cast<long long>(s % 60));
  return buf;
}

inline double series_max(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

inline double series_mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

inline double window_min(const std::vector<double>& v, std::size_t from,
                         std::size_t count) {
  double m = 1e300;
  for (std::size_t i = from; i < std::min(from + count, v.size()); ++i) {
    m = std::min(m, v[i]);
  }
  return m;
}

inline double window_max(const std::vector<double>& v, std::size_t from,
                         std::size_t count) {
  double m = 0;
  for (std::size_t i = from; i < std::min(from + count, v.size()); ++i) {
    m = std::max(m, v[i]);
  }
  return m;
}

inline double coefficient_of_variation(const std::vector<double>& v) {
  RunningStats s;
  for (double x : v) s.add(x);
  return s.cv();
}

/// "who wins / by what factor" line for EXPERIMENTS.md.
inline void print_shape_check(const char* label, double measured, double paper) {
  const double ratio = paper > 0 ? measured / paper : 0.0;
  std::printf("  %-28s measured %10.3g   paper %10.3g   ratio %5.2f\n", label,
              measured, paper, ratio);
}

}  // namespace ew::bench
