// Shared helpers for the figure-reproduction harnesses.
#pragma once

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "app/scenario.hpp"

namespace ew::bench {

/// Wall-clock label for a recording-window offset (t=0 is 23:36:56 PST).
inline std::string pst_label(Duration offset_from_record_start) {
  const std::int64_t base = 23 * 3600 + 36 * 60 + 56;
  const std::int64_t s = (base + offset_from_record_start / kSecond) % 86400;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld",
                static_cast<long long>(s / 3600),
                static_cast<long long>((s / 60) % 60),
                static_cast<long long>(s % 60));
  return buf;
}

inline double series_max(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

inline double series_mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

inline double window_min(const std::vector<double>& v, std::size_t from,
                         std::size_t count) {
  double m = 1e300;
  for (std::size_t i = from; i < std::min(from + count, v.size()); ++i) {
    m = std::min(m, v[i]);
  }
  return m;
}

inline double window_max(const std::vector<double>& v, std::size_t from,
                         std::size_t count) {
  double m = 0;
  for (std::size_t i = from; i < std::min(from + count, v.size()); ++i) {
    m = std::max(m, v[i]);
  }
  return m;
}

inline double coefficient_of_variation(const std::vector<double>& v) {
  RunningStats s;
  for (double x : v) s.add(x);
  return s.cv();
}

/// "who wins / by what factor" line for EXPERIMENTS.md.
inline void print_shape_check(const char* label, double measured, double paper) {
  const double ratio = paper > 0 ? measured / paper : 0.0;
  std::printf("  %-28s measured %10.3g   paper %10.3g   ratio %5.2f\n", label,
              measured, paper, ratio);
}

}  // namespace ew::bench
