// Microbenchmark for the observability layer (DESIGN.md §8).
//
// The registry's instruments sit directly on the PR-1-optimized forecast and
// call hot paths, so their cost budget is hard: Histogram::record() must stay
// under 50 ns and the steady-state record paths (counter inc, histogram
// record, trace-span record, disabled-trace check) must not allocate. This
// harness times each path and *gates* on both budgets — the time gate only at
// full size so a loaded CI box cannot flake the --quick smoke run, the
// zero-allocation gate always (it is deterministic). Emits ONE
// machine-readable JSON line (see EXPERIMENTS.md, "Observability hot-path
// microbenchmark"):
//
//   {"bench":"micro_obs","iters":...,"ns_per_counter_inc":...,
//    "ns_per_hist_record":...,"ns_per_trace_record":...,
//    "ns_per_trace_disabled":...,"record_allocs":...,"checksum":...}
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

// Program-wide allocation counter (defined here, replaces the global
// operator new) so the zero-allocation claim is asserted, not assumed.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ew {
namespace {

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Timed {
  double ns_per_op;
  double checksum;  // defeats dead-code elimination; reported in the JSON
};

template <typename F>
Timed time_per_op(std::size_t iters, F&& op) {
  double sink = 0.0;
  const double t0 = now_ns();
  for (std::size_t i = 0; i < iters; ++i) sink += op(i);
  const double t1 = now_ns();
  return {(t1 - t0) / static_cast<double>(iters), sink};
}

}  // namespace
}  // namespace ew

int main(int argc, char** argv) {
  using namespace ew;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t kIters = quick ? 50'000 : 5'000'000;

  // Pre-generated microsecond-scale latencies so the timed loop measures
  // bucketing, not random-number generation.
  Rng rng(42);
  std::vector<std::uint64_t> lat(quick ? 4'096 : 65'536);
  for (auto& v : lat) {
    v = static_cast<std::uint64_t>(rng.uniform(0, 2'000'000));
  }
  const std::size_t mask = lat.size() - 1;  // sizes are powers of two

  // Resolve every instrument BEFORE the timed region — registration takes
  // the registry mutex and allocates; the record paths never do.
  obs::Registry reg;
  obs::Counter& ctr = reg.counter("bench.ops");
  obs::Histogram& hist = reg.histogram("bench.latency_us");
  obs::TraceRecorder enabled_trace;
  enabled_trace.set_enabled(true);
  const std::uint32_t tag = enabled_trace.intern("bench:micro_obs");
  obs::TraceRecorder disabled_trace;  // default: disabled

  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);

  const Timed ctr_t = time_per_op(kIters, [&](std::size_t i) {
    ctr.inc();
    return static_cast<double>(i & 1);
  });
  const Timed hist_t = time_per_op(kIters, [&](std::size_t i) {
    hist.record(lat[i & mask]);
    return 0.0;
  });
  // Enabled trace: ring overwrite past capacity, still allocation-free.
  const Timed trace_t = time_per_op(kIters, [&](std::size_t i) {
    enabled_trace.record(static_cast<std::int64_t>(i),
                         obs::SpanKind::kCallAttempt, tag, 1, 0);
    return 0.0;
  });
  // Disabled trace: the cost every instrumented call site pays when the
  // recorder is off — must be a relaxed load and nothing else.
  const Timed off_t = time_per_op(kIters, [&](std::size_t i) {
    if (disabled_trace.enabled()) {
      disabled_trace.record(static_cast<std::int64_t>(i),
                            obs::SpanKind::kCallAttempt, tag, 1, 0);
    }
    return 0.0;
  });

  const std::uint64_t record_allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;

  double checksum = ctr_t.checksum + hist_t.checksum + trace_t.checksum +
                    off_t.checksum + static_cast<double>(ctr.value()) +
                    static_cast<double>(hist.count()) +
                    static_cast<double>(enabled_trace.total()) +
                    static_cast<double>(disabled_trace.total());

  bench::JsonWriter line;
  line.u64("iters", kIters)
      .f("ns_per_counter_inc", ctr_t.ns_per_op, 2)
      .f("ns_per_hist_record", hist_t.ns_per_op, 2)
      .f("ns_per_trace_record", trace_t.ns_per_op, 2)
      .f("ns_per_trace_disabled", off_t.ns_per_op, 2)
      .u64("record_allocs", record_allocs)
      .g("checksum", checksum);
  bench::emit_json("micro_obs", line);

  bool ok = true;
  if (record_allocs != 0) {
    std::fprintf(stderr,
                 "micro_obs: %llu allocations during steady-state record "
                 "(budget: 0)\n",
                 static_cast<unsigned long long>(record_allocs));
    ok = false;
  }
  if (!quick && hist_t.ns_per_op >= 50.0) {
    std::fprintf(stderr,
                 "micro_obs: histogram record %.2f ns/op (budget: <50 ns)\n",
                 hist_t.ns_per_op);
    ok = false;
  }
  return ok ? 0 : 1;
}
