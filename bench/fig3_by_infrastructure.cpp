// Figure 3: per-infrastructure delivered performance (a), host counts (b),
// and the total (c), on a linear scale — 5-minute averages over the same
// 12-hour window as Figure 2.
//
// The claim being reproduced: individual infrastructures fluctuate wildly
// (Condor workstations come and go, the Java pool is tiny, batch gangs hold
// and release slabs of nodes) while the aggregate stays comparatively
// steady — the application "draws power from the overall resource pool
// relatively uniformly".
#include "bench/bench_util.hpp"

using namespace ew;
using namespace ew::bench;

int main() {
  std::printf("=== Figure 3: per-infrastructure series (linear scale) ===\n\n");
  app::ScenarioOptions opts;
  app::Sc98Scenario scenario(opts);
  const app::ScenarioResults res = scenario.run();

  // (a) delivered ops/sec per infrastructure.
  std::printf("--- (a) delivered ops/sec, 5-minute averages ---\n");
  std::printf("%-10s", "time(PST)");
  for (int k = 0; k < core::kInfraCount; ++k) {
    std::printf(" %11s", core::infra_name(static_cast<core::Infra>(k)));
  }
  std::printf("\n");
  for (std::size_t i = 0; i < res.total_rate.size(); i += 2) {
    std::printf("%-10s", pst_label(res.bin_start[i] - res.bin_start[0]).c_str());
    for (int k = 0; k < core::kInfraCount; ++k) {
      std::printf(" %11.3e", res.infra_rate[static_cast<std::size_t>(k)][i]);
    }
    std::printf("\n");
  }

  // (b) active host counts per infrastructure.
  std::printf("\n--- (b) active hosts, 5-minute averages ---\n");
  std::printf("%-10s", "time(PST)");
  for (int k = 0; k < core::kInfraCount; ++k) {
    std::printf(" %11s", core::infra_name(static_cast<core::Infra>(k)));
  }
  std::printf("\n");
  for (std::size_t i = 0; i < res.total_rate.size(); i += 2) {
    std::printf("%-10s", pst_label(res.bin_start[i] - res.bin_start[0]).c_str());
    for (int k = 0; k < core::kInfraCount; ++k) {
      std::printf(" %11.1f", res.infra_hosts[static_cast<std::size_t>(k)][i]);
    }
    std::printf("\n");
  }

  // (c) the total (same data as Figure 2).
  std::printf("\n--- (c) total ops/sec ---\n");
  for (std::size_t i = 0; i < res.total_rate.size(); i += 2) {
    std::printf("%-10s %12.4e\n",
                pst_label(res.bin_start[i] - res.bin_start[0]).c_str(),
                res.total_rate[i]);
  }

  // Shape checks: per-infrastructure peaks vs the paper's Figure 3a levels,
  // and host counts vs Figure 3b.
  struct Anchor {
    core::Infra infra;
    double paper_peak_rate;
    double paper_peak_hosts;
  };
  const Anchor anchors[] = {
      {core::Infra::kCondor, 0.9e9, 110}, {core::Infra::kNT, 0.7e9, 70},
      {core::Infra::kUnix, 0.35e9, 15},   {core::Infra::kGlobus, 0.25e9, 25},
      {core::Infra::kLegion, 0.2e9, 30},  {core::Infra::kJava, 2.0e7, 12},
      {core::Infra::kNetSolve, 3.0e6, 3},
  };
  std::printf("\nshape check vs paper (peaks):\n");
  bool rates_ordered = true;
  double prev = 1e300;
  for (const auto& a : anchors) {
    const auto idx = static_cast<std::size_t>(a.infra);
    const double peak = series_max(res.infra_rate[idx]);
    print_shape_check((std::string(core::infra_name(a.infra)) + " rate").c_str(),
                      peak, a.paper_peak_rate);
    print_shape_check((std::string(core::infra_name(a.infra)) + " hosts").c_str(),
                      series_max(res.infra_hosts[idx]), a.paper_peak_hosts);
    if (peak > prev * 1.5) rates_ordered = false;  // ordering must roughly hold
    prev = peak;
  }
  std::printf("per-infrastructure ordering (Condor > NT > Unix/Globus/Legion "
              "> Java > NetSolve): %s\n",
              rates_ordered ? "REPRODUCED" : "MISMATCH");
  return rates_ordered ? 0 : 1;
}
