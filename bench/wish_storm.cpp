// WISH storm gate: bursty interactive job control + barrier synchronization
// + gossip-backed global environment across 8 daemons under seeded
// crash-restart chaos (EXPERIMENTS.md "WISH storm").
//
// The WISH workload is the opposite traffic shape from the long-running
// Ramsey clients: hundreds of short-lived spawn/poll/reap calls, periodic
// barrier re-enters, env writes riding the gossip StateStore. This harness
// drives all of it at once and gates on the crash-stop contract:
//
//   * every logical job reaches a terminal state at its client — a job the
//     daemon forgot across a restart answers kLost and the client respawns
//     it (at-least-once), so a LOST job (client quota never met) fails;
//   * every barrier epoch releases every daemon EXACTLY once — a split
//     barrier (double release: the barrier released and re-formed around
//     the same participant) or a hung barrier both fail;
//   * after the storm settles, every daemon's EnvStore content digest is
//     identical (the crash-restart ghost re-mint keeps post-restart writes
//     from losing to their own pre-crash blobs);
//   * the chaos plan actually ran (>= 3 daemon crash/restarts).
//
// Emits ONE machine-readable JSON line:
//
//   {"bench":"wish_storm","daemons":8,"jobs":...,"completed":...,
//    "lost_respawned":...,"spawn_p50_ms":...,"spawn_p99_ms":...,
//    "barrier_epochs":...,"barrier_rounds":...,"barrier_reentries":...,
//    "crashes":...,"restarts":...,"env_digest_ok":1,"failures":0}
//
// --quick shrinks the job count (1024 -> 256) and the chaos schedule
// (6 -> 3 crash/restarts) for the CI smoke run but keeps every gate.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "gossip/gossip_server.hpp"
#include "net/node.hpp"
#include "sim/chaos.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"
#include "wish/daemon.hpp"
#include "wish/protocol.hpp"

namespace ew::wish {
namespace {

constexpr int kDaemons = 8;
constexpr int kGossips = 2;
constexpr std::uint64_t kSeed = 0x3157'5702;

struct StormConfig {
  int jobs_per_client = 128;   // x8 clients = 1024 logical jobs
  int barrier_epochs = 6;
  int crash_restarts = 6;
  TimePoint deadline = 2 * kHour;  // sim-time cap: past this = hung
};

class Storm {
 public:
  explicit Storm(StormConfig cfg)
      : cfg_(cfg), net_(Rng(kSeed)), transport_(events_, net_),
        chaos_(events_, net_), rng_(kSeed ^ 0x9e3779b97f4a7c15ull) {
    net_.set_loss_rate(0.0);
    net_.set_jitter_sigma(0.0);
    for (int i = 0; i < kGossips; ++i) {
      gossip_eps_.push_back(Endpoint{"g" + std::to_string(i), 501});
    }
    for (int i = 0; i < kDaemons; ++i) {
      wish_eps_.push_back(Endpoint{"wish-" + std::to_string(i), 701});
    }
  }

  int run() {
    build_gossips();
    for (int i = 0; i < kDaemons; ++i) start_daemon(i);
    for (int i = 0; i < kDaemons; ++i) {
      const std::string host = wish_eps_[static_cast<std::size_t>(i)].host;
      chaos_.register_process(host, {[this, i] { kill_daemon(i); },
                                     [this, i] { restart_daemon(i); }});
    }
    build_clients();
    events_.run_for(kMinute);  // registrations + clique formation settle

    arm_chaos();
    for (int i = 0; i < kDaemons; ++i) {
      submit_batch(i);
      schedule_poll(i);
      enter_epoch(i);
      schedule_env_writes(i);
    }
    while ((!storm_done() ||
            chaos_.restarts() <
                static_cast<std::uint64_t>(cfg_.crash_restarts)) &&
           events_.now() < cfg_.deadline) {
      events_.run_for(10 * kSecond);
    }
    events_.run_for(3 * kMinute);  // gossip anti-entropy settles the env
    return report();
  }

 private:
  struct DaemonUnit {
    std::unique_ptr<Node> node;
    std::unique_ptr<WishDaemon> daemon;
    std::uint64_t incarnation = 0;
    // Introspection accumulated across incarnations (crash loses the live
    // counters, so harvest them in kill_daemon).
    std::uint64_t rounds_total = 0;
    std::uint64_t reentries_total = 0;
  };

  /// The client side of one daemon: submits its share of the logical jobs,
  /// polls until each reaches a terminal state, and respawns kLost ids.
  struct Client {
    std::unique_ptr<Node> node;
    int submitted = 0;       // logical jobs sent at least once
    int completed = 0;       // logical jobs seen terminal
    int lost_respawned = 0;  // kLost answers that triggered a respawn
    std::set<std::uint64_t> outstanding;
    bool spawn_inflight = false;
    // Barrier progress: the epoch this daemon is currently inside (0-based;
    // == barrier_epochs when finished), and per-epoch release counts.
    int epoch = 0;
    std::vector<int> released;
  };

  void build_gossips() {
    gossip::GossipServer::Options o;
    o.poll_period = 5 * kSecond;
    o.peer_sync_period = 8 * kSecond;
    o.parent_sync_period = 8 * kSecond;
    for (int i = 0; i < kGossips; ++i) {
      auto node = std::make_unique<Node>(
          events_, transport_, gossip_eps_[static_cast<std::size_t>(i)]);
      if (!node->start().ok()) std::abort();
      auto server = std::make_unique<gossip::GossipServer>(*node, comparators_,
                                                           gossip_eps_, o);
      server->start();
      gossip_nodes_.push_back(std::move(node));
      gossips_.push_back(std::move(server));
    }
  }

  void start_daemon(int i) {
    auto& d = daemons_[static_cast<std::size_t>(i)];
    sim::EventQueue::LabelScope scope(events_,
                                      wish_eps_[static_cast<std::size_t>(i)].host);
    d.node = std::make_unique<Node>(events_, transport_,
                                    wish_eps_[static_cast<std::size_t>(i)]);
    if (!d.node->start().ok()) std::abort();
    WishDaemon::Options o;
    o.incarnation = ++d.incarnation;
    o.peers = wish_eps_;
    o.gossips = gossip_eps_;
    d.daemon = std::make_unique<WishDaemon>(*d.node, comparators_, o);
    d.daemon->start();
  }

  void kill_daemon(int i) {
    auto& d = daemons_[static_cast<std::size_t>(i)];
    if (d.daemon) {
      d.rounds_total += d.daemon->barrier_rounds();
      d.reentries_total += d.daemon->barrier_reentries();
      d.daemon->stop();
    }
    // Crash the node while the stopped daemon is still allocated: pending
    // call callbacks must find running_ == false, not freed memory.
    if (d.node) d.node->crash();
    d.daemon.reset();
    d.node.reset();
  }

  void restart_daemon(int i) {
    start_daemon(i);
    // The daemon's barrier wait died with it: re-enter the current epoch.
    auto& c = clients_[static_cast<std::size_t>(i)];
    if (c.epoch < cfg_.barrier_epochs &&
        c.released[static_cast<std::size_t>(c.epoch)] == 0) {
      enter_epoch(i);
    }
  }

  void build_clients() {
    for (int i = 0; i < kDaemons; ++i) {
      auto& c = clients_[static_cast<std::size_t>(i)];
      c.node = std::make_unique<Node>(
          events_, transport_, Endpoint{"wc-" + std::to_string(i), 9100});
      if (!c.node->start().ok()) std::abort();
      c.released.assign(static_cast<std::size_t>(cfg_.barrier_epochs), 0);
    }
  }

  void arm_chaos() {
    sim::FaultPlan plan;
    // Staggered crash-restarts across distinct daemons, 20 s down each,
    // starting inside the job phase so outstanding jobs actually die with
    // their daemon (and come back kLost) — long enough that barriers stall
    // on the dead participant and clients see kPeerDown, short enough that
    // the storm keeps moving.
    const TimePoint base = events_.now() + 10 * kSecond;
    for (int k = 0; k < cfg_.crash_restarts; ++k) {
      const int victim = k % kDaemons;
      plan.crash_restart(base + k * (30 * kSecond),
                         wish_eps_[static_cast<std::size_t>(victim)].host,
                         20 * kSecond);
    }
    chaos_.arm(std::move(plan));
  }

  [[nodiscard]] CallOptions client_call() const {
    CallOptions o = CallOptions::fixed(2 * kSecond);
    o.retry = RetryPolicy::standard(3);
    return o;
  }

  // --- Job storm ------------------------------------------------------------

  void submit_batch(int i) {
    auto& c = clients_[static_cast<std::size_t>(i)];
    if (c.spawn_inflight || c.submitted >= cfg_.jobs_per_client) return;
    // Closed-loop backpressure: keep at most one burst in flight at the
    // daemon, so the job phase stretches across the chaos windows instead
    // of finishing before the first crash.
    if (c.outstanding.size() >= 8) return;
    const int batch =
        std::min(8, cfg_.jobs_per_client - c.submitted);
    SpawnRequest req;
    req.owner = c.node->self();
    for (int j = 0; j < batch; ++j) {
      req.jobs.push_back({"job", kSecond + static_cast<Duration>(
                                               rng_.below(3000)) * kMillisecond});
    }
    c.spawn_inflight = true;
    const TimePoint sent = events_.now();
    c.node->call(wish_eps_[static_cast<std::size_t>(i)], msgtype::kJobSpawn,
                 req.serialize(), client_call(),
                 [this, i, batch, sent](Result<Bytes> r) {
                   auto& cl = clients_[static_cast<std::size_t>(i)];
                   cl.spawn_inflight = false;
                   if (!r.ok()) {
                     // Daemon down: retry the batch after a beat.
                     events_.schedule(2 * kSecond,
                                      [this, i] { submit_batch(i); });
                     return;
                   }
                   auto rep = SpawnReply::deserialize(*r);
                   if (!rep.ok()) std::abort();
                   spawn_latencies_.push_back(events_.now() - sent);
                   cl.submitted += batch;
                   for (auto id : rep->ids) cl.outstanding.insert(id);
                   submit_batch(i);  // next burst immediately
                 });
  }

  void schedule_poll(int i) {
    events_.schedule(2 * kSecond, [this, i] {
      poll_once(i);
      if (!client_done(i)) schedule_poll(i);
    });
  }

  void poll_once(int i) {
    auto& c = clients_[static_cast<std::size_t>(i)];
    if (c.outstanding.empty()) return;
    PollRequest req;
    req.ids.assign(c.outstanding.begin(), c.outstanding.end());
    c.node->call(
        wish_eps_[static_cast<std::size_t>(i)], msgtype::kJobPoll,
        req.serialize(), client_call(), [this, i](Result<Bytes> r) {
          if (!r.ok()) return;  // daemon down: next tick retries
          auto rep = PollReply::deserialize(*r);
          if (!rep.ok()) std::abort();
          auto& cl = clients_[static_cast<std::size_t>(i)];
          ReapRequest reap;
          for (const auto& js : rep->jobs) {
            if (!cl.outstanding.count(js.id)) continue;
            if (js.state == JobState::kLost) {
              // The daemon restarted and forgot the job: respawn it
              // (at-least-once). The quota is met by the respawn.
              cl.outstanding.erase(js.id);
              cl.submitted -= 1;
              cl.lost_respawned += 1;
            } else if (job_state_terminal(js.state)) {
              cl.outstanding.erase(js.id);
              cl.completed += 1;
              reap.ids.push_back(js.id);
            }
          }
          if (!reap.ids.empty()) {
            cl.node->call(wish_eps_[static_cast<std::size_t>(i)],
                          msgtype::kJobReap, reap.serialize(), client_call(),
                          [](Result<Bytes>) {});
          }
          submit_batch(i);  // refill after respawns
        });
  }

  // --- Barrier storm --------------------------------------------------------

  void enter_epoch(int i) {
    auto& c = clients_[static_cast<std::size_t>(i)];
    if (c.epoch >= cfg_.barrier_epochs) return;
    auto& d = daemons_[static_cast<std::size_t>(i)];
    if (!d.daemon) return;  // restart_daemon re-enters
    const int epoch = c.epoch;
    d.daemon->enter_barrier(
        "storm", static_cast<std::uint64_t>(epoch + 1), kDaemons,
        [this, i, epoch] {
          auto& cl = clients_[static_cast<std::size_t>(i)];
          cl.released[static_cast<std::size_t>(epoch)] += 1;
          if (epoch != cl.epoch) return;  // stale double release: gated later
          cl.epoch += 1;
          events_.schedule(kSecond, [this, i] { enter_epoch(i); });
        });
  }

  // --- Env storm ------------------------------------------------------------

  void schedule_env_writes(int i) {
    events_.schedule(30 * kSecond, [this, i] {
      auto& d = daemons_[static_cast<std::size_t>(i)];
      if (d.daemon) {
        d.daemon->env_set("host" + std::to_string(i),
                          "round" + std::to_string(env_round_));
        ++env_round_;
      }
      if (!storm_done()) schedule_env_writes(i);
    });
  }

  // --- Completion + gates ---------------------------------------------------

  [[nodiscard]] bool client_done(int i) const {
    const auto& c = clients_[static_cast<std::size_t>(i)];
    return c.completed >= cfg_.jobs_per_client && c.outstanding.empty() &&
           c.epoch >= cfg_.barrier_epochs;
  }

  [[nodiscard]] bool storm_done() const {
    for (int i = 0; i < kDaemons; ++i) {
      if (!client_done(i)) return false;
    }
    return true;
  }

  [[nodiscard]] double percentile_ms(double p) const {
    if (spawn_latencies_.empty()) return 0.0;
    std::vector<Duration> v = spawn_latencies_;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    return static_cast<double>(v[idx]) / kMillisecond;
  }

  int report() {
    int failures = 0;
    auto fail = [&failures](const std::string& why) {
      std::fprintf(stderr, "wish_storm: FAIL %s\n", why.c_str());
      ++failures;
    };

    int completed = 0;
    int lost_respawned = 0;
    for (int i = 0; i < kDaemons; ++i) {
      const auto& c = clients_[static_cast<std::size_t>(i)];
      completed += c.completed;
      lost_respawned += c.lost_respawned;
      if (c.completed < cfg_.jobs_per_client || !c.outstanding.empty()) {
        fail("client " + std::to_string(i) + " lost jobs: completed " +
             std::to_string(c.completed) + "/" +
             std::to_string(cfg_.jobs_per_client) + ", " +
             std::to_string(c.outstanding.size()) + " outstanding");
      }
      for (int e = 0; e < cfg_.barrier_epochs; ++e) {
        const int n = c.released[static_cast<std::size_t>(e)];
        if (n == 0) {
          fail("barrier epoch " + std::to_string(e + 1) + " hung on daemon " +
               std::to_string(i));
        } else if (n > 1) {
          fail("barrier epoch " + std::to_string(e + 1) + " split on daemon " +
               std::to_string(i) + " (released " + std::to_string(n) + "x)");
        }
      }
      if (daemons_[static_cast<std::size_t>(i)].daemon &&
          daemons_[static_cast<std::size_t>(i)].daemon->open_barrier_waits() !=
              0) {
        fail("daemon " + std::to_string(i) + " still re-entering after settle");
      }
    }

    bool env_ok = true;
    const std::uint64_t digest0 = daemons_[0].daemon
                                      ? daemons_[0].daemon->env().content_digest()
                                      : 0;
    for (int i = 1; i < kDaemons; ++i) {
      const auto& d = daemons_[static_cast<std::size_t>(i)];
      if (d.daemon && d.daemon->env().content_digest() != digest0) {
        env_ok = false;
        fail("env diverged on daemon " + std::to_string(i));
      }
    }

    if (chaos_.restarts() < 3) {
      fail("chaos plan under-delivered: " + std::to_string(chaos_.restarts()) +
           " restarts");
    }

    std::uint64_t rounds = 0;
    std::uint64_t reentries = 0;
    for (const auto& d : daemons_) {
      rounds = rounds + d.rounds_total +
               (d.daemon ? d.daemon->barrier_rounds() : 0);
      reentries = reentries + d.reentries_total +
                  (d.daemon ? d.daemon->barrier_reentries() : 0);
    }

    bench::JsonWriter j;
    j.u64("daemons", kDaemons)
        .u64("jobs", static_cast<std::uint64_t>(cfg_.jobs_per_client) * kDaemons)
        .u64("completed", static_cast<std::uint64_t>(completed))
        .u64("lost_respawned", static_cast<std::uint64_t>(lost_respawned))
        .f("spawn_p50_ms", percentile_ms(0.50))
        .f("spawn_p99_ms", percentile_ms(0.99))
        .u64("barrier_epochs", static_cast<std::uint64_t>(cfg_.barrier_epochs))
        .u64("barrier_rounds", rounds)
        .u64("barrier_reentries", reentries)
        .u64("crashes", chaos_.crashes())
        .u64("restarts", chaos_.restarts())
        .u64("env_digest_ok", env_ok ? 1 : 0)
        .u64("failures", static_cast<std::uint64_t>(failures));
    bench::emit_json("wish_storm", j);
    return failures == 0 ? 0 : 1;
  }

  StormConfig cfg_;
  sim::EventQueue events_;
  sim::NetworkModel net_;
  sim::SimTransport transport_;
  sim::ChaosEngine chaos_;
  gossip::ComparatorRegistry comparators_;
  Rng rng_;
  std::vector<Endpoint> gossip_eps_;
  std::vector<Endpoint> wish_eps_;
  std::vector<std::unique_ptr<Node>> gossip_nodes_;
  std::vector<std::unique_ptr<gossip::GossipServer>> gossips_;
  std::array<DaemonUnit, kDaemons> daemons_;
  std::array<Client, kDaemons> clients_;
  std::vector<Duration> spawn_latencies_;
  std::uint64_t env_round_ = 0;
};

}  // namespace
}  // namespace ew::wish

int main(int argc, char** argv) {
  ew::wish::StormConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      cfg.jobs_per_client = 32;  // x8 = 256 logical jobs
      cfg.barrier_epochs = 3;
      cfg.crash_restarts = 3;
      cfg.deadline = 1 * ew::kHour;
    }
  }
  return ew::wish::Storm(cfg).run();
}
