// Microbenchmarks for the Ramsey kernels: clique counting, flip deltas, and
// heuristic move throughput — the "useful work" whose instrumented ops the
// whole evaluation counts (google-benchmark).
#include <benchmark/benchmark.h>

#include "ramsey/clique.hpp"
#include "ramsey/heuristic.hpp"

namespace ew::ramsey {
namespace {

void BM_CountBadCliques(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Rng rng(1);
  const ColoredGraph g = ColoredGraph::random(n, rng);
  std::uint64_t ops_total = 0;
  for (auto _ : state) {
    OpsCounter ops;
    benchmark::DoNotOptimize(count_bad_cliques(g, k, ops));
    ops_total += ops.ops;
  }
  state.counters["instr_ops/s"] = benchmark::Counter(
      static_cast<double>(ops_total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CountBadCliques)
    ->Args({17, 4})
    ->Args({25, 4})
    ->Args({42, 5})
    ->Args({64, 5});

void BM_FlipDelta(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  Rng rng(2);
  ColoredGraph g = ColoredGraph::random(n, rng);
  int i = 0, j = 1;
  for (auto _ : state) {
    OpsCounter ops;
    benchmark::DoNotOptimize(flip_delta(g, k, i, j, ops));
    j = (j + 1) % n;
    if (j == i) j = (j + 1) % n;
  }
}
BENCHMARK(BM_FlipDelta)->Args({17, 4})->Args({42, 5});

void BM_HeuristicThroughput(benchmark::State& state) {
  // Native instrumented-op rate of each heuristic; this is the per-host
  // calibration number behind the simulator's ops accounting.
  const auto kind = static_cast<HeuristicKind>(state.range(0));
  HeuristicParams p;
  p.n = 42;
  p.k = 5;
  p.seed = 3;
  auto h = make_heuristic(kind, p);
  std::uint64_t ops_total = 0;
  for (auto _ : state) {
    const StepOutcome out = h->run(1'000'000);
    ops_total += out.ops_used;
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(heuristic_name(kind));
  state.counters["instr_ops/s"] = benchmark::Counter(
      static_cast<double>(ops_total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HeuristicThroughput)->Arg(0)->Arg(1)->Arg(2);

void BM_GraphSerialize(benchmark::State& state) {
  Rng rng(4);
  const ColoredGraph g = ColoredGraph::random(42, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.serialize());
  }
}
BENCHMARK(BM_GraphSerialize);

void BM_GraphDeserializeValidated(benchmark::State& state) {
  Rng rng(5);
  const Bytes blob = ColoredGraph::random(42, rng).serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ColoredGraph::deserialize(blob));
  }
}
BENCHMARK(BM_GraphDeserializeValidated);

void BM_IsCounterexamplePaley17(benchmark::State& state) {
  // The persistent state manager's sanity check on every claimed store.
  const auto g = ColoredGraph::paley(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_counterexample(*g, 4));
  }
}
BENCHMARK(BM_IsCounterexamplePaley17);

}  // namespace
}  // namespace ew::ramsey
