// Gossip scale gate: versioned-digest/delta anti-entropy at 1k -> 10k ->
// 100k registered components (DESIGN.md §12, EXPERIMENTS.md "Gossip scale").
//
// The point of the digest redesign is that the wire cost of an anti-entropy
// round is a function of the TYPE universe, not the component population:
// a digest carries one (version, checksum) summary per state type, and a
// delta carries only the blobs the summary proved stale. This harness grows
// the component population by 100x over a fixed 64-type universe and gates:
//
//   * digest_bytes_max at the largest scale stays within 4x of the smallest
//     (bounded — O(types), not O(components));
//   * convergence rounds stay under a constant bound at every scale
//     (sub-linear by construction: the population grew 100x);
//   * zero divergence after a chaos leg (link loss + a gossip host flap +
//     concurrent version bumps): every clique's stores are bit-identical,
//     every owned type is at the reference version, and every component got
//     pulled up to the freshest copy of everything it exposes.
//
// Emits ONE machine-readable JSON line:
//
//   {"bench":"gossip_scale","cliques":2,"types":64,
//    "scales":[{"components":...,"digest_bytes_max":...,
//               "convergence_rounds":...,"delta_blobs":...,"polls":...,
//               "updates_pushed":...,"sim_events":...},...],
//    "digest_growth":...,"rounds_max":...,"diverged":0}
//
// --quick shrinks the population ladder (500 -> 2000) for the CI smoke run
// but keeps every correctness gate.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "gossip/gossip_server.hpp"
#include "gossip/sync_client.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew::gossip {
namespace {

constexpr int kNumGossips = 4;
constexpr std::uint32_t kNumCliques = 2;
constexpr int kNumTypes = 64;

/// One registered application component exposing two versioned-counter
/// types from the shared universe. Registration renewal is pushed out past
/// the run so the event load scales with polling, not lease churn.
struct BenchComponent {
  BenchComponent(sim::EventQueue& events, Transport& transport,
                 const std::string& host, const ComparatorRegistry& comparators,
                 std::vector<Endpoint> gossips, MsgType a, MsgType b)
      : node(std::make_unique<Node>(events, transport, Endpoint{host, 2000})) {
    if (!node->start().ok()) std::abort();
    SyncClient::Options o;
    o.reregister_period = 4 * kHour;
    o.retry_delay = 5 * kSecond;
    sync = std::make_unique<SyncClient>(*node, comparators, std::move(gossips), o);
    for (MsgType t : {a, b}) {
      versions[t] = 0;
      sync->expose(t, SyncClient::StateHandlers{
                          [this, t] { return versioned_blob(versions.at(t), {}); },
                          [this, t](const Bytes& fresh) {
                            versions.at(t) = *blob_version(fresh);
                          },
                      });
    }
    sync->start();
  }

  std::unique_ptr<Node> node;
  std::unique_ptr<SyncClient> sync;
  std::map<MsgType, std::uint64_t> versions;
};

struct ScaleResult {
  std::size_t components = 0;
  std::uint64_t digest_bytes_max = 0;
  std::uint64_t convergence_rounds = 0;
  std::uint64_t delta_blobs = 0;
  std::uint64_t polls = 0;
  std::uint64_t updates_pushed = 0;
  std::uint64_t sim_events = 0;
  int diverged = 0;  // count of failed correctness checks at this scale
};

ScaleResult run_scale(std::size_t num_components, std::uint64_t seed) {
  ScaleResult r;
  r.components = num_components;
  sim::EventQueue events;
  sim::NetworkModel net{Rng(seed)};
  net.set_loss_rate(0.0);
  net.set_jitter_sigma(0.0);
  sim::SimTransport transport(events, net);
  ComparatorRegistry comparators;
  Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);

  std::vector<Endpoint> well_known;
  for (int i = 0; i < kNumGossips; ++i) {
    well_known.push_back(Endpoint{"g" + std::to_string(i), 501});
  }
  GossipServer::Options opts;
  opts.poll_period = 30 * kSecond;
  opts.peer_sync_period = 10 * kSecond;
  opts.parent_sync_period = 10 * kSecond;
  opts.lease = 2 * kHour;
  opts.num_cliques = kNumCliques;
  opts.clique.token_period = 5 * kSecond;
  opts.clique.probe_period = 10 * kSecond;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<std::unique_ptr<GossipServer>> servers;
  for (int i = 0; i < kNumGossips; ++i) {
    auto node = std::make_unique<Node>(events, transport,
                                       well_known[static_cast<std::size_t>(i)]);
    if (!node->start().ok()) std::abort();
    auto server =
        std::make_unique<GossipServer>(*node, comparators, well_known, opts);
    server->start();
    nodes.push_back(std::move(node));
    servers.push_back(std::move(server));
  }

  // The fixed type universe the population shares: digests summarize THIS,
  // so their size must not move when num_components grows 100x.
  std::vector<MsgType> all_types;
  for (int i = 0; i < kNumTypes; ++i) {
    all_types.push_back(static_cast<MsgType>(0x0500 + i));
  }
  std::vector<std::unique_ptr<BenchComponent>> comps;
  comps.reserve(num_components);
  for (std::size_t i = 0; i < num_components; ++i) {
    const MsgType a = all_types[rng.below(all_types.size())];
    MsgType b = a;
    while (b == a) b = all_types[rng.below(all_types.size())];
    comps.push_back(std::make_unique<BenchComponent>(
        events, transport, "comp-" + std::to_string(i), comparators,
        well_known, a, b));
    // Stagger the registration storm across the first poll period so the
    // sim queue holds O(batch) call timers, not O(population).
    if (i % 500 == 499) events.run_for(kSecond);
  }
  events.run_for(2 * kMinute);  // registration + clique formation + first polls

  // Reference model: the freshest version ever written per type — exactly
  // what a full-state exchange would converge everyone to.
  std::map<MsgType, std::uint64_t> reference;
  for (const auto& c : comps) {
    for (const auto& [t, v] : c->versions) {
      if (!reference.count(t)) reference[t] = v;
    }
  }
  auto bump_some = [&](std::size_t how_many) {
    for (std::size_t i = 0; i < how_many; ++i) {
      auto& c = *comps[rng.below(comps.size())];
      for (auto& [t, v] : c.versions) {
        if (rng.below(2) == 0) continue;
        v += 1 + rng.below(5);
        if (v > reference[t]) reference[t] = v;
      }
    }
  };

  // Quiet churn: seeded version bumps, clean network.
  for (int round = 0; round < 3; ++round) {
    bump_some(std::min<std::size_t>(200, comps.size() / 4 + 1));
    events.run_for(kMinute);
  }

  // Chaos leg: link loss, one gossip host flap, concurrent bumps.
  net.set_loss_rate(0.25);
  bump_some(std::min<std::size_t>(200, comps.size() / 4 + 1));
  const auto victim = rng.below(kNumGossips);
  transport.set_host_up("g" + std::to_string(victim), false);
  events.run_for(20 * kSecond);
  transport.set_host_up("g" + std::to_string(victim), true);
  events.run_for(40 * kSecond);

  // Heal and let anti-entropy and the poll/push cycle finish.
  net.set_loss_rate(0.0);
  for (int i = 0; i < kNumGossips; ++i) {
    transport.set_host_up("g" + std::to_string(i), true);
  }
  events.run_for(6 * kMinute);

  // Correctness gates (the "zero divergence" acceptance criterion).
  for (const auto& [t, want] : reference) {
    for (const auto& s : servers) {
      if (!s->owns_type(t)) continue;
      const auto stored = s->store().get(t);
      if (!stored.has_value() || *blob_version(stored->content) != want) {
        std::fprintf(stderr, "gossip_scale: type %u not at reference on %s\n",
                     unsigned{t}, s->clique_id() == 0 ? "clique0" : "clique1");
        ++r.diverged;
      }
    }
  }
  for (std::uint32_t k = 0; k < kNumCliques; ++k) {
    std::uint64_t rollup = 0;
    bool first = true;
    for (const auto& s : servers) {
      if (s->clique_id() != k) continue;
      if (first) {
        rollup = s->store().rollup_checksum();
        first = false;
      } else if (s->store().rollup_checksum() != rollup) {
        std::fprintf(stderr, "gossip_scale: clique %u stores diverged\n", k);
        ++r.diverged;
      }
    }
  }
  std::size_t stale_components = 0;
  for (const auto& c : comps) {
    for (const auto& [t, v] : c->versions) {
      if (v != reference[t]) ++stale_components;
    }
  }
  if (stale_components != 0) {
    std::fprintf(stderr, "gossip_scale: %zu component states left stale\n",
                 stale_components);
    ++r.diverged;
  }

  for (const auto& s : servers) {
    r.digest_bytes_max = std::max(r.digest_bytes_max, s->digest_bytes_max());
    r.convergence_rounds =
        std::max(r.convergence_rounds, s->last_convergence_rounds());
    r.delta_blobs += s->delta_blobs_sent();
    r.polls += s->polls_sent();
    r.updates_pushed += s->updates_pushed();
  }
  r.sim_events = events.executed();
  for (auto& s : servers) s->stop();
  for (auto& c : comps) c->sync->stop();
  return r;
}

}  // namespace
}  // namespace ew::gossip

int main(int argc, char** argv) {
  using namespace ew;
  using namespace ew::gossip;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::vector<std::size_t> ladder =
      quick ? std::vector<std::size_t>{500, 2'000}
            : std::vector<std::size_t>{1'000, 10'000, 100'000};

  std::vector<ScaleResult> results;
  for (std::size_t n : ladder) results.push_back(run_scale(n, 0xE17A));

  int diverged = 0;
  std::vector<std::string> scale_objs;
  for (const auto& r : results) {
    diverged += r.diverged;
    bench::JsonWriter s;
    s.u64("components", r.components)
        .u64("digest_bytes_max", r.digest_bytes_max)
        .u64("convergence_rounds", r.convergence_rounds)
        .u64("delta_blobs", r.delta_blobs)
        .u64("polls", r.polls)
        .u64("updates_pushed", r.updates_pushed)
        .u64("sim_events", r.sim_events);
    scale_objs.push_back(s.object());
  }
  const ScaleResult& lo = results.front();
  const ScaleResult& hi = results.back();
  const double digest_growth =
      lo.digest_bytes_max == 0
          ? 1e9
          : static_cast<double>(hi.digest_bytes_max) /
                static_cast<double>(lo.digest_bytes_max);
  std::uint64_t rounds_max = 0;
  for (const auto& r : results) {
    rounds_max = std::max(rounds_max, r.convergence_rounds);
  }

  bench::JsonWriter w;
  w.u64("cliques", kNumCliques)
      .u64("types", kNumTypes)
      .raw("scales", bench::json_array(scale_objs))
      .f("digest_growth", digest_growth, 2)
      .u64("rounds_max", rounds_max)
      .u64("diverged", static_cast<std::uint64_t>(diverged));
  bench::emit_json("gossip_scale", w);

  // Gates. The population grows 100x (4x in --quick); a digest that tracked
  // the population would blow the 4x growth bound immediately, and rounds
  // that tracked it would blow the constant cap.
  int rc = 0;
  if (diverged != 0) {
    std::fprintf(stderr, "FAIL: divergence after chaos+heal (%d checks)\n",
                 diverged);
    rc = 1;
  }
  if (digest_growth > 4.0) {
    std::fprintf(stderr, "FAIL: digest bytes grew %.2fx across the ladder\n",
                 digest_growth);
    rc = 1;
  }
  if (rounds_max > 8) {
    std::fprintf(stderr, "FAIL: convergence took %llu rounds (cap 8)\n",
                 static_cast<unsigned long long>(rounds_max));
    rc = 1;
  }
  for (const auto& r : results) {
    if (r.digest_bytes_max == 0 || r.polls == 0) {
      std::fprintf(stderr, "FAIL: no exchanges at scale %zu\n", r.components);
      rc = 1;
    }
  }
  return rc;
}
