// Section 5.6: "during SC98, an interpreted version of the applet on a
// 300 Mhz Pentium II performed 111,616 integer operations per second on
// average; a JIT-compiled version performed 12,109,720 integer operations
// per second on average."
//
// This bench (1) reports the two modelled tiers and their ratio, (2) runs
// the REAL Ramsey kernel on this machine to calibrate what "one integer op"
// costs natively, and (3) simulates an hour of contribution from one applet
// of each tier to show what the browsers were worth to the application.
#include <chrono>

#include "bench/bench_util.hpp"
#include "infra/java.hpp"
#include "ramsey/heuristic.hpp"

using namespace ew;
using namespace ew::bench;

int main() {
  std::printf("=== Section 5.6: Java interpreted vs JIT ===\n\n");

  const double interp = infra::JavaAdapter::kInterpretedOpsPerSec;
  const double jit = infra::JavaAdapter::kJitOpsPerSec;
  print_shape_check("interpreted ops/s", interp, 111'616.0);
  print_shape_check("JIT ops/s", jit, 12'109'720.0);
  print_shape_check("JIT/interpreted ratio", jit / interp, 108.49);

  // Native calibration: run the real annealer kernel and measure the
  // instrumented op rate on this machine.
  ramsey::HeuristicParams p;
  p.n = 17;
  p.k = 4;
  p.seed = 5;
  auto h = ramsey::make_heuristic(ramsey::HeuristicKind::kAnneal, p);
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t ops = 0;
  while (std::chrono::steady_clock::now() - t0 < std::chrono::seconds(2)) {
    ops += h->run(10'000'000).ops_used;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const double native = static_cast<double>(ops) / secs;
  std::printf("\nnative kernel rate on this machine: %.3e instrumented ops/s\n",
              native);
  std::printf("  -> one 1998 JIT browser ~ %.4fx this machine\n", jit / native);
  std::printf("  -> one 1998 interpreter ~ %.6fx this machine\n", interp / native);

  // One hour of applet contribution per tier (what Figure 3a's Java series
  // is made of).
  std::printf("\none hour of contribution per applet:\n");
  std::printf("  JIT browser:  %.3e ops (%.2f work units of 5e7 ops)\n",
              jit * 3600, jit * 3600 / 5e7);
  std::printf("  interpreter:  %.3e ops (%.2f work units of 5e7 ops)\n",
              interp * 3600, interp * 3600 / 5e7);
  std::printf("\n(the paper: 'Even though the JIT-compiled version is still "
              "slower than many of the\n other hosts ... as Java improves in "
              "performance, it will be a practical and\n important gateway to "
              "the use of idle cycles.')\n");

  const bool ok = std::abs(jit / interp - 108.49) < 2.0;
  std::printf("section-5.6 numbers: %s\n", ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
