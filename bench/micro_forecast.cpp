// Microbenchmarks for the forecasting layer (google-benchmark): the paper
// calls the NWS methods "light-weight" and runs them inline on every
// request/response event — this bench quantifies that.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "forecast/dynamic_benchmark.hpp"
#include "forecast/selector.hpp"
#include "forecast/timeout.hpp"

namespace ew {
namespace {

void BM_SelectorObserve(benchmark::State& state) {
  auto f = AdaptiveForecaster::nws_default();
  Rng rng(1);
  for (auto _ : state) {
    f.observe(rng.uniform(50, 150));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SelectorObserve);

void BM_SelectorForecast(benchmark::State& state) {
  auto f = AdaptiveForecaster::nws_default();
  Rng rng(2);
  for (int i = 0; i < 500; ++i) f.observe(rng.uniform(50, 150));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.forecast());
  }
}
BENCHMARK(BM_SelectorForecast);

void BM_BankRecordAndForecast(benchmark::State& state) {
  // The per-RPC cost of dynamic benchmarking: one record + one forecast.
  EventForecasterBank bank;
  const EventTag tag{"sched-0:601", 0x0202};
  Rng rng(3);
  for (auto _ : state) {
    bank.record(tag, rng.uniform(50, 150));
    benchmark::DoNotOptimize(bank.forecast(tag));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BankRecordAndForecast);

void BM_AdaptiveTimeoutRoundTrip(benchmark::State& state) {
  // timeout() + on_result(): what every Node call pays.
  AdaptiveTimeout t;
  const EventTag tag{"sched-0:601", 0x0202};
  Rng rng(4);
  for (auto _ : state) {
    const Duration to = t.timeout(tag);
    benchmark::DoNotOptimize(to);
    t.on_result(tag, static_cast<Duration>(rng.uniform(5e4, 2e5)), true);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AdaptiveTimeoutRoundTrip);

void BM_SingleMethodObserve(benchmark::State& state) {
  // One battery member in isolation, for contrast with the full selector.
  SlidingMedian f(31);
  Rng rng(5);
  for (auto _ : state) {
    f.observe(rng.uniform(50, 150));
    benchmark::DoNotOptimize(f.predict());
  }
}
BENCHMARK(BM_SingleMethodObserve);

}  // namespace
}  // namespace ew
