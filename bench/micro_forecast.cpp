// Microbenchmark for the forecasting hot path (paper Section 2.2).
//
// The paper calls the NWS methods "light-weight" and runs them inline on
// every request/response event, so their cost IS the dynamic-benchmarking
// overhead. This harness times the battery and prints ONE machine-readable
// JSON line (see EXPERIMENTS.md, "Forecast hot-path microbenchmark") so the
// BENCH trajectory can track ns/observe across PRs:
//
//   {"bench":"micro_forecast","samples":...,"ns_per_observe":...,
//    "ns_per_forecast":...,"ns_per_bank_record":...,
//    "ns_per_batch_observe":...,"per_method":{"last":...,...},
//    "checksum":...}
//
// `--quick` shrinks the iteration counts so the bench_smoke CTest target can
// prove the harness still builds and runs without burning CI time.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "forecast/dynamic_benchmark.hpp"
#include "forecast/forecaster.hpp"
#include "forecast/selector.hpp"
#include "sim/traces.hpp"

namespace ew {
namespace {

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Pre-generated input series so the timed loops measure forecasting, not
/// random-number generation.
std::vector<double> make_series(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(50, 150);
  return v;
}

struct Timed {
  double ns_per_op;
  double checksum;  // defeats dead-code elimination; reported in the JSON
};

template <typename F>
Timed time_per_op(std::size_t iters, F&& op) {
  double sink = 0.0;
  const double t0 = now_ns();
  for (std::size_t i = 0; i < iters; ++i) sink += op(i);
  const double t1 = now_ns();
  return {(t1 - t0) / static_cast<double>(iters), sink};
}

}  // namespace
}  // namespace ew

int main(int argc, char** argv) {
  using namespace ew;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t kObs = quick ? 20'000 : 2'000'000;
  const std::size_t kFc = quick ? 20'000 : 5'000'000;
  double checksum = 0.0;

  const std::vector<double> series = make_series(kObs, 1);

  // Full-battery observe (the per-message cost of dynamic benchmarking).
  auto selector = AdaptiveForecaster::nws_default();
  {  // warm-up: fill every window before timing
    for (double v : make_series(512, 99)) selector.observe(v);
  }
  const Timed obs =
      time_per_op(kObs, [&](std::size_t i) {
        selector.observe(series[i]);
        return 0.0;
      });
  checksum += obs.checksum + selector.forecast().value;

  // forecast(): best-method selection + cached prediction read.
  const Timed fc = time_per_op(kFc, [&](std::size_t i) {
    (void)i;
    return selector.forecast().value;
  });
  checksum += fc.checksum;

  // Bank record: hash lookup + observe, the full per-RPC path.
  EventForecasterBank bank;
  const EventTag tag{"sched-0:601", 0x0202};
  for (double v : make_series(512, 98)) bank.record(tag, v);
  const Timed rec = time_per_op(kObs, [&](std::size_t i) {
    bank.record(tag, series[i]);
    return 0.0;
  });
  checksum += rec.checksum + bank.forecast(tag).value;

  // Batch replay (sim traces -> record_batch), amortizing the tag lookup.
  const auto trace =
      sim::MeasurementTrace::synthetic_rtt(quick ? 5'000 : 200'000, Rng(7));
  EventForecasterBank replay_bank;
  const double tr0 = now_ns();
  trace.replay_into(replay_bank, tag);
  const double tr1 = now_ns();
  const double ns_batch = (tr1 - tr0) / static_cast<double>(trace.size());
  checksum += replay_bank.forecast(tag).value;

  // Per-method breakdown (observe cost of each battery member alone).
  bench::JsonWriter per_method;
  for (auto& method : default_battery()) {
    for (double v : make_series(256, 97)) method->observe(v);
    const Timed m = time_per_op(quick ? 20'000 : 1'000'000, [&](std::size_t i) {
      return method->observe(series[i % series.size()]);
    });
    checksum += m.checksum;
    per_method.f(method->name(), m.ns_per_op, 1);
  }

  bench::JsonWriter line;
  line.u64("samples", kObs)
      .f("ns_per_observe", obs.ns_per_op, 1)
      .f("ns_per_forecast", fc.ns_per_op, 1)
      .f("ns_per_bank_record", rec.ns_per_op, 1)
      .f("ns_per_batch_observe", ns_batch, 1)
      .raw("per_method", per_method.object())
      .g("checksum", checksum);
  bench::emit_json("micro_forecast", line);
  return 0;
}
