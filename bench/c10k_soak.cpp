// c10k_soak — the real-network scale gate.
//
// Drives thousands of concurrent loopback TCP connections through the full
// stack (Reactor + TcpTransport + Node::call with the reliable-call layer)
// on ONE single-threaded reactor, the paper's server shape. Each client is
// its own Node + TcpTransport (so each holds a real kernel connection to the
// server) running a closed loop: call, await reply, call again.
//
// This is the workload the select() backend physically cannot run — at 2000
// connections the fd numbers blow past FD_SETSIZE — and the reason the
// Reactor grew an epoll backend. The harness verifies scale *and*
// correctness: every call must complete exactly once (zero lost, zero
// duplicated replies), which exercises the fd-generation dispatch guards
// under thousands of live watchers.
//
// Emits one machine-readable JSON line (see EXPERIMENTS.md):
//   {"bench":"c10k_soak","backend":"epoll","connections":2000,...}
// Exit status is non-zero on any lost/duplicated reply or failed call, so
// bench_smoke (and the EW_SANITIZE lane) gate on it.
//
// Flags: --quick (small run for CI), --conns N, --seconds S, --select
// (portable backend, conns clamped under FD_SETSIZE for comparison runs).
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "net/node.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "net/tcp_transport.hpp"
#include "obs/registry.hpp"

namespace ew {
namespace {

constexpr MsgType kEcho = 0x77;

struct Client {
  std::unique_ptr<TcpTransport> transport;
  std::unique_ptr<Node> node;
  bool reply_pending = false;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t duplicates = 0;
};

struct Harness {
  Reactor* reactor = nullptr;
  Endpoint server_ep;
  std::vector<Client> clients;
  std::vector<std::uint64_t> latencies_us;
  Bytes payload;
  bool running = true;

  void issue(std::size_t i) {
    Client& c = clients[i];
    c.reply_pending = true;
    ++c.issued;
    const TimePoint t0 = reactor->now();
    c.node->call(server_ep, kEcho, payload, CallOptions::fixed(30 * kSecond),
                 [this, i, t0](Result<Bytes> r) {
                   Client& cl = clients[i];
                   if (!cl.reply_pending) {
                     ++cl.duplicates;
                     return;
                   }
                   cl.reply_pending = false;
                   if (r.ok()) {
                     ++cl.completed;
                     latencies_us.push_back(
                         static_cast<std::uint64_t>(reactor->now() - t0));
                   } else {
                     ++cl.failed;
                   }
                   if (running) issue(i);
                 });
  }
};

std::uint64_t percentile(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

std::uint64_t max_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // KB on Linux
}

int run(int argc, char** argv) {
  std::size_t conns = 2000;
  Duration measure = 3 * kSecond;
  ReactorBackend backend = Reactor::default_backend();
  bool conns_explicit = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      if (!conns_explicit) conns = 200;
      measure = 700 * kMillisecond;
    } else if (std::strcmp(argv[i], "--select") == 0) {
      backend = ReactorBackend::kSelect;
    } else if (std::strcmp(argv[i], "--conns") == 0 && i + 1 < argc) {
      conns = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      conns_explicit = true;
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      measure = static_cast<Duration>(std::strtod(argv[++i], nullptr) *
                                      static_cast<double>(kSecond));
    } else {
      std::fprintf(stderr,
                   "usage: c10k_soak [--quick] [--conns N] [--seconds S] "
                   "[--select]\n");
      return 2;
    }
  }

  // Scale to the fd budget: each client costs ~3 fds (listener, outbound
  // socket, server-side accepted socket) plus reactor overhead.
  rlimit rl{};
  getrlimit(RLIMIT_NOFILE, &rl);
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &rl);
    getrlimit(RLIMIT_NOFILE, &rl);
  }
  const std::size_t fd_budget =
      rl.rlim_cur > 64 ? static_cast<std::size_t>(rl.rlim_cur) - 64 : 0;
  if (conns * 3 > fd_budget) {
    conns = fd_budget / 3;
    std::fprintf(stderr, "c10k_soak: RLIMIT_NOFILE=%llu caps run at %zu conns\n",
                 static_cast<unsigned long long>(rl.rlim_cur), conns);
  }
  if (backend == ReactorBackend::kSelect) {
    // select() cannot watch fds >= FD_SETSIZE; stay well below it.
    conns = std::min<std::size_t>(conns, 250);
  }
  if (conns == 0) {
    std::fprintf(stderr, "c10k_soak: no fd budget\n");
    return 2;
  }

  // Reserve one distinct loopback port per endpoint by holding OS-assigned
  // listeners open simultaneously, then releasing them just before the real
  // binds (the same trick the reactor/TCP tests use).
  std::vector<std::uint16_t> ports(conns + 1);
  {
    std::vector<Fd> held;
    held.reserve(conns + 1);
    for (std::size_t i = 0; i <= conns; ++i) {
      auto l = tcp_listen(0);
      if (!l) {
        std::fprintf(stderr, "c10k_soak: listen: %s\n",
                     l.error().to_string().c_str());
        return 2;
      }
      ports[i] = *local_port(*l);
      held.push_back(std::move(*l));
    }
  }

  Reactor reactor(backend);
  TcpTransport server_transport(reactor);
  Node server(reactor, server_transport, Endpoint{"127.0.0.1", ports[conns]});
  if (Status s = server.start(); !s.ok()) {
    std::fprintf(stderr, "c10k_soak: server start: %s\n", s.to_string().c_str());
    return 2;
  }
  server.handle(kEcho, [](const IncomingMessage& m, Responder r) {
    r.ok(m.packet.payload);
  });

  Harness h;
  h.reactor = &reactor;
  h.server_ep = server.self();
  h.payload.assign(64, 0xAB);
  h.clients.resize(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    Client& c = h.clients[i];
    c.transport = std::make_unique<TcpTransport>(reactor);
    c.node = std::make_unique<Node>(reactor, *c.transport,
                                    Endpoint{"127.0.0.1", ports[i]});
    if (Status s = c.node->start(); !s.ok()) {
      std::fprintf(stderr, "c10k_soak: client %zu start: %s\n", i,
                   s.to_string().c_str());
      return 2;
    }
  }

  // Ignition: every client fires its first call, which also dials its
  // connection. Issued in waves with reactor turns between so the server's
  // accept loop keeps pace with the connection storm. From here each reply
  // triggers the next call.
  for (std::size_t i = 0; i < conns; ++i) {
    h.issue(i);
    if (i % 100 == 99) reactor.run_for(5 * kMillisecond);
  }
  // Warm-up: wait for the full connection count before opening the measure
  // window, so the reported rate and concurrency reflect steady state.
  const TimePoint warm_deadline = reactor.now() + 15 * kSecond;
  while (server_transport.open_connections() < conns &&
         reactor.now() < warm_deadline) {
    reactor.run_for(20 * kMillisecond);
  }

  std::uint64_t warm_completed = 0;
  for (const Client& c : h.clients) warm_completed += c.completed;
  h.latencies_us.clear();

  const TimePoint t_start = reactor.now();
  std::size_t max_server_conns = 0;
  while (reactor.now() - t_start < measure) {
    reactor.run_for(50 * kMillisecond);
    max_server_conns =
        std::max(max_server_conns, server_transport.open_connections());
  }
  h.running = false;
  const Duration elapsed = reactor.now() - t_start;
  std::uint64_t window_completed = 0;
  for (const Client& c : h.clients) window_completed += c.completed;
  window_completed -= warm_completed;

  // Drain: let every in-flight call resolve (30 s call time-out bounds it).
  for (int grace = 0; grace < 800; ++grace) {
    bool pending = false;
    for (const Client& c : h.clients) pending |= c.reply_pending;
    if (!pending) break;
    reactor.run_for(50 * kMillisecond);
  }

  std::uint64_t issued = 0, completed = 0, failed = 0, dups = 0, stuck = 0;
  for (const Client& c : h.clients) {
    issued += c.issued;
    completed += c.completed;
    failed += c.failed;
    dups += c.duplicates;
    stuck += c.reply_pending ? 1 : 0;
  }
  const std::uint64_t lost = issued - completed - failed;
  const double secs = static_cast<double>(elapsed) / kSecond;
  const double calls_per_s =
      secs > 0 ? static_cast<double>(window_completed) / secs : 0;

  bench::JsonWriter w;
  w.str("backend", backend == ReactorBackend::kEpoll ? "epoll" : "select")
      .u64("connections", conns)
      .u64("max_server_conns", max_server_conns)
      .u64("calls", window_completed)
      .u64("lost", lost)
      .u64("duplicates", dups)
      .u64("failed", failed)
      .f("calls_per_s", calls_per_s, 1)
      .f("msgs_per_s", 2 * calls_per_s, 1)  // one request + one reply per call
      .u64("p50_us", percentile(h.latencies_us, 0.50))
      .u64("p99_us", percentile(h.latencies_us, 0.99))
      .u64("backpressure_rejects",
           obs::registry().counter(obs::names::kNetBackpressureRejects).value())
      .u64("max_rss_kb", max_rss_kb());
  bench::emit_json("c10k_soak", w);

  if (lost != 0 || dups != 0 || failed != 0 || stuck != 0) {
    std::fprintf(stderr,
                 "c10k_soak: FAILED: lost=%llu dups=%llu failed=%llu "
                 "stuck=%llu\n",
                 static_cast<unsigned long long>(lost),
                 static_cast<unsigned long long>(dups),
                 static_cast<unsigned long long>(failed),
                 static_cast<unsigned long long>(stuck));
    return 1;
  }
  // Scale assertion: every client actually held its connection concurrently.
  if (max_server_conns < conns) {
    std::fprintf(stderr, "c10k_soak: only %zu/%zu concurrent connections\n",
                 max_server_conns, conns);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ew

int main(int argc, char** argv) { return ew::run(argc, argv); }
