# Empty dependencies file for forecast_accuracy.
# This may be replaced when dependencies are built.
