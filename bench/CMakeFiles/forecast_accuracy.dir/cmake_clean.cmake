file(REMOVE_RECURSE
  "CMakeFiles/forecast_accuracy.dir/forecast_accuracy.cpp.o"
  "CMakeFiles/forecast_accuracy.dir/forecast_accuracy.cpp.o.d"
  "forecast_accuracy"
  "forecast_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
