file(REMOVE_RECURSE
  "CMakeFiles/fig2_sustained_performance.dir/fig2_sustained_performance.cpp.o"
  "CMakeFiles/fig2_sustained_performance.dir/fig2_sustained_performance.cpp.o.d"
  "fig2_sustained_performance"
  "fig2_sustained_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sustained_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
