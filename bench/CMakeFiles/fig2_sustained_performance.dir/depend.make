# Empty dependencies file for fig2_sustained_performance.
# This may be replaced when dependencies are built.
