file(REMOVE_RECURSE
  "CMakeFiles/micro_ramsey.dir/micro_ramsey.cpp.o"
  "CMakeFiles/micro_ramsey.dir/micro_ramsey.cpp.o.d"
  "micro_ramsey"
  "micro_ramsey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ramsey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
