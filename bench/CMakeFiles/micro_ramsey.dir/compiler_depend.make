# Empty compiler generated dependencies file for micro_ramsey.
# This may be replaced when dependencies are built.
