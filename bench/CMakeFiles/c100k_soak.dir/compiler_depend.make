# Empty compiler generated dependencies file for c100k_soak.
# This may be replaced when dependencies are built.
