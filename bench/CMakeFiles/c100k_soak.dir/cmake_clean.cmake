file(REMOVE_RECURSE
  "CMakeFiles/c100k_soak.dir/c100k_soak.cpp.o"
  "CMakeFiles/c100k_soak.dir/c100k_soak.cpp.o.d"
  "c100k_soak"
  "c100k_soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c100k_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
