file(REMOVE_RECURSE
  "CMakeFiles/ablation_condor_scheduler.dir/ablation_condor_scheduler.cpp.o"
  "CMakeFiles/ablation_condor_scheduler.dir/ablation_condor_scheduler.cpp.o.d"
  "ablation_condor_scheduler"
  "ablation_condor_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_condor_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
