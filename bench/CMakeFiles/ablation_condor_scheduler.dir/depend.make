# Empty dependencies file for ablation_condor_scheduler.
# This may be replaced when dependencies are built.
