file(REMOVE_RECURSE
  "CMakeFiles/ablation_timeouts.dir/ablation_timeouts.cpp.o"
  "CMakeFiles/ablation_timeouts.dir/ablation_timeouts.cpp.o.d"
  "ablation_timeouts"
  "ablation_timeouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
