# Empty compiler generated dependencies file for ablation_timeouts.
# This may be replaced when dependencies are built.
