# Empty compiler generated dependencies file for micro_forecast.
# This may be replaced when dependencies are built.
