file(REMOVE_RECURSE
  "CMakeFiles/micro_forecast.dir/micro_forecast.cpp.o"
  "CMakeFiles/micro_forecast.dir/micro_forecast.cpp.o.d"
  "micro_forecast"
  "micro_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
