file(REMOVE_RECURSE
  "CMakeFiles/gossip_scale.dir/gossip_scale.cpp.o"
  "CMakeFiles/gossip_scale.dir/gossip_scale.cpp.o.d"
  "gossip_scale"
  "gossip_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gossip_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
