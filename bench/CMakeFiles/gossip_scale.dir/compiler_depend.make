# Empty compiler generated dependencies file for gossip_scale.
# This may be replaced when dependencies are built.
