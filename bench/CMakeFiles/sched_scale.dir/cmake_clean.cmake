file(REMOVE_RECURSE
  "CMakeFiles/sched_scale.dir/sched_scale.cpp.o"
  "CMakeFiles/sched_scale.dir/sched_scale.cpp.o.d"
  "sched_scale"
  "sched_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
