# Empty compiler generated dependencies file for sched_scale.
# This may be replaced when dependencies are built.
