# Empty compiler generated dependencies file for fig4_log_scale.
# This may be replaced when dependencies are built.
