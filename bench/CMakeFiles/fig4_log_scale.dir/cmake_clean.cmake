file(REMOVE_RECURSE
  "CMakeFiles/fig4_log_scale.dir/fig4_log_scale.cpp.o"
  "CMakeFiles/fig4_log_scale.dir/fig4_log_scale.cpp.o.d"
  "fig4_log_scale"
  "fig4_log_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_log_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
