# Empty dependencies file for dependability_long_run.
# This may be replaced when dependencies are built.
