file(REMOVE_RECURSE
  "CMakeFiles/dependability_long_run.dir/dependability_long_run.cpp.o"
  "CMakeFiles/dependability_long_run.dir/dependability_long_run.cpp.o.d"
  "dependability_long_run"
  "dependability_long_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependability_long_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
