file(REMOVE_RECURSE
  "CMakeFiles/java_jit_comparison.dir/java_jit_comparison.cpp.o"
  "CMakeFiles/java_jit_comparison.dir/java_jit_comparison.cpp.o.d"
  "java_jit_comparison"
  "java_jit_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/java_jit_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
