# Empty dependencies file for java_jit_comparison.
# This may be replaced when dependencies are built.
