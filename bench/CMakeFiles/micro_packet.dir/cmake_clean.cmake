file(REMOVE_RECURSE
  "CMakeFiles/micro_packet.dir/micro_packet.cpp.o"
  "CMakeFiles/micro_packet.dir/micro_packet.cpp.o.d"
  "micro_packet"
  "micro_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
