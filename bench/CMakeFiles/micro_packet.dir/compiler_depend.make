# Empty compiler generated dependencies file for micro_packet.
# This may be replaced when dependencies are built.
