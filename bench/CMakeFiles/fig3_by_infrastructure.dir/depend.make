# Empty dependencies file for fig3_by_infrastructure.
# This may be replaced when dependencies are built.
