file(REMOVE_RECURSE
  "CMakeFiles/fig3_by_infrastructure.dir/fig3_by_infrastructure.cpp.o"
  "CMakeFiles/fig3_by_infrastructure.dir/fig3_by_infrastructure.cpp.o.d"
  "fig3_by_infrastructure"
  "fig3_by_infrastructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_by_infrastructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
