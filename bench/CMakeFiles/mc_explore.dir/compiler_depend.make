# Empty compiler generated dependencies file for mc_explore.
# This may be replaced when dependencies are built.
