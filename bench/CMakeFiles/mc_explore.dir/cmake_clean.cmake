file(REMOVE_RECURSE
  "CMakeFiles/mc_explore.dir/mc_explore.cpp.o"
  "CMakeFiles/mc_explore.dir/mc_explore.cpp.o.d"
  "mc_explore"
  "mc_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
