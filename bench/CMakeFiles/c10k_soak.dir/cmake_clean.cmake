file(REMOVE_RECURSE
  "CMakeFiles/c10k_soak.dir/c10k_soak.cpp.o"
  "CMakeFiles/c10k_soak.dir/c10k_soak.cpp.o.d"
  "c10k_soak"
  "c10k_soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c10k_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
