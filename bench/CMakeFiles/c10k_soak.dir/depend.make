# Empty dependencies file for c10k_soak.
# This may be replaced when dependencies are built.
