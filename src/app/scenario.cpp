#include "app/scenario.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace ew::app {

namespace {
constexpr std::uint16_t kLoggingPort = 401;
constexpr std::uint16_t kStatePort = 402;
constexpr std::uint16_t kControlPort = 403;
constexpr std::uint16_t kGossipPort = 501;
constexpr std::uint16_t kSchedulerPort = 601;
constexpr std::uint16_t kWishPort = 701;
const char* kControlHost = "sdsc-control";

int scaled(int count, double scale) {
  return std::max(1, static_cast<int>(count * scale));
}
}  // namespace

Sc98Scenario::Sc98Scenario(ScenarioOptions opts)
    : opts_(opts),
      rng_(opts.seed),
      network_(Rng(opts.seed ^ 0xabcde)),
      transport_(events_, network_) {}

Sc98Scenario::~Sc98Scenario() {
  for (auto& fw : aux_frameworks_) fw->stop();
  for (auto& s : schedulers_) stop_scheduler(*s);
  for (auto& h : scheduler_hosts_) h->shutdown();
  for (auto& g : gossips_) {
    if (g->server) g->server->stop();
    if (g->node) g->node->stop();
  }
  for (auto& w : wish_units_) {
    if (w->daemon) w->daemon->stop();
    if (w->node) w->node->stop();
  }
  for (auto& a : adapters_) a->stop();
}

std::vector<Endpoint> Sc98Scenario::scheduler_endpoints() const {
  std::vector<Endpoint> out;
  for (int i = 0; i < opts_.num_schedulers; ++i) {
    out.push_back(Endpoint{"sched-" + std::to_string(i), kSchedulerPort});
  }
  return out;
}

std::vector<Endpoint> Sc98Scenario::gossip_endpoints() const {
  std::vector<Endpoint> out;
  for (int i = 0; i < opts_.num_gossips; ++i) {
    out.push_back(Endpoint{"gossip-" + std::to_string(i), kGossipPort});
  }
  return out;
}

std::vector<Endpoint> Sc98Scenario::wish_endpoints() const {
  std::vector<Endpoint> out;
  for (int i = 0; i < opts_.num_wish_daemons; ++i) {
    out.push_back(Endpoint{"wish-" + std::to_string(i), kWishPort});
  }
  return out;
}

void Sc98Scenario::build_network() {
  // Service placement mirrors the paper: the persistent state manager at
  // SDSC ("trusted environment"), gossips at well-known addresses around
  // the country, schedulers at the stable sites.
  network_.set_default_latencies(1 * kMillisecond, 35 * kMillisecond);
  network_.set_site(kControlHost, "sdsc");
  const char* gossip_sites[] = {"sdsc", "ncsa", "utk", "condor"};
  for (int i = 0; i < opts_.num_gossips; ++i) {
    network_.set_site("gossip-" + std::to_string(i), gossip_sites[i % 4]);
  }
  const char* sched_sites[] = {"sdsc", "ncsa", "utk"};
  for (int i = 0; i < opts_.num_schedulers; ++i) {
    network_.set_site("sched-" + std::to_string(i),
                      opts_.schedulers_in_condor ? "condor" : sched_sites[i % 3]);
  }
  // WISH daemons spread across the paper's sites like the gossips, so the
  // shell's collectives genuinely cross the wide area.
  const char* wish_sites[] = {"sdsc", "ncsa", "utk", "condor"};
  for (int i = 0; i < opts_.num_wish_daemons; ++i) {
    network_.set_site("wish-" + std::to_string(i), wish_sites[i % 4]);
  }
}

core::SchedulerServer::Options Sc98Scenario::scheduler_options(int index) const {
  core::SchedulerServer::Options o;
  o.logging = Endpoint{kControlHost, kLoggingPort};
  o.state_manager = Endpoint{kControlHost, kStatePort};
  o.pool.n = opts_.pool_n;
  o.pool.k = opts_.pool_k;
  o.pool.seed_base = opts_.seed * 7919 + static_cast<std::uint64_t>(index) * 104729;
  o.pool_shards = static_cast<std::uint32_t>(std::max(1, opts_.sched_pool_shards));
  return o;
}

void Sc98Scenario::start_scheduler(SchedulerUnit& unit, std::uint64_t seed_tag) {
  unit.node.emplace(events_, transport_, unit.endpoint);
  if (Status s = unit.node->start(); !s.ok()) {
    EW_ERROR << "scheduler bind failed: " << s.to_string();
    return;
  }
  unit.server.emplace(*unit.node,
                      scheduler_options(static_cast<int>(seed_tag % 1000)));
  unit.server->start();
  unit.sync.emplace(*unit.node, comparators_, gossip_endpoints());
  auto* server = &*unit.server;
  unit.sync->expose(core::statetype::kBestGraph,
                    gossip::SyncClient::StateHandlers{
                        [server] { return server->best_graph_state(); },
                        [server](const Bytes& b) { server->apply_best_graph_state(b); },
                    });
  unit.sync->start();
}

void Sc98Scenario::harvest_scheduler(SchedulerUnit& unit) {
  if (!unit.server) return;
  unit.reports_total += unit.server->reports_received();
  unit.migrations_total += unit.server->migrations();
  unit.dead_total += unit.server->clients_presumed_dead();
}

void Sc98Scenario::stop_scheduler(SchedulerUnit& unit) {
  harvest_scheduler(unit);
  if (unit.sync) unit.sync->stop();
  if (unit.server) unit.server->stop();
  if (unit.node) unit.node->stop();
  unit.sync.reset();
  unit.server.reset();
  unit.node.reset();
}

void Sc98Scenario::crash_scheduler(SchedulerUnit& unit) {
  harvest_scheduler(unit);
  // Components stop first (their running_ guards silence the failing
  // callbacks), then the node detaches and fails every outstanding call
  // with kPeerDown — a crash, not a clean shutdown.
  if (unit.sync) unit.sync->stop();
  if (unit.server) unit.server->stop();
  if (unit.node) unit.node->crash();
  unit.sync.reset();
  unit.server.reset();
  unit.node.reset();
}

void Sc98Scenario::build_chaos() {
  if (opts_.chaos.events.empty()) return;
  chaos_.emplace(events_, network_);
  for (std::size_t i = 0; i < schedulers_.size(); ++i) {
    auto* unit = schedulers_[i].get();
    chaos_->register_process(
        unit->host,
        sim::ChaosEngine::Process{
            [this, unit] { crash_scheduler(*unit); },
            [this, unit, i] {
              // A restarted scheduler rebuilds soft state from client
              // re-registrations and re-imports the checkpointed frontier.
              start_scheduler(*unit, static_cast<std::uint64_t>(i));
            }});
  }
  for (std::size_t i = 0; i < gossips_.size(); ++i) {
    auto* unit = gossips_[i].get();
    const std::string host = "gossip-" + std::to_string(i);
    chaos_->register_process(
        host,
        sim::ChaosEngine::Process{
            [unit] {
              if (unit->server) unit->server->stop();
              if (unit->node) unit->node->crash();
              unit->server.reset();
              unit->node.reset();
            },
            [this, unit, host] {
              unit->node.emplace(events_, transport_,
                                 Endpoint{host, kGossipPort});
              unit->node->start();
              gossip::GossipServer::Options gopts;
              gopts.num_cliques =
                  static_cast<std::uint32_t>(opts_.num_gossip_cliques);
              unit->server.emplace(*unit->node, comparators_,
                                   gossip_endpoints(), gopts);
              // start() announces the member to its well-known peers, so
              // the restarted gossip rejoins the clique instead of wedging
              // as a stale singleton; components re-register on their next
              // lease renewal.
              unit->server->start();
            }});
  }
  for (auto& up : wish_units_) {
    auto* unit = up.get();
    chaos_->register_process(
        unit->host,
        sim::ChaosEngine::Process{
            [unit] {
              // Crash-stop: the job table, barrier groups and leader wins
              // die here; only the env store's gossip replicas survive.
              if (unit->daemon) unit->daemon->stop();
              if (unit->node) unit->node->crash();
              unit->daemon.reset();
              unit->node.reset();
            },
            [this, unit] { start_wish(*unit); }});
  }
  // The control site's logging + state services crash and restart as one
  // process; the state manager reloads from state_storage_dir on restart.
  chaos_->register_process(
      kControlHost,
      sim::ChaosEngine::Process{
          [this] {
            if (state_) state_->stop();
            if (logging_) logging_->stop();
            if (state_node_) state_node_->crash();
            if (logging_node_) logging_node_->crash();
            state_.reset();
            state_node_.reset();
            logging_.reset();
            logging_node_.reset();
          },
          [this] { start_control_services(); }});
  chaos_->arm(opts_.chaos);
}

sim::ChaosEngine* Sc98Scenario::chaos_engine() {
  return chaos_ ? &*chaos_ : nullptr;
}

core::SchedulerServer* Sc98Scenario::scheduler_server(int i) {
  auto& unit = *schedulers_.at(static_cast<std::size_t>(i));
  return unit.server ? &*unit.server : nullptr;
}

gossip::GossipServer* Sc98Scenario::gossip_server(int i) {
  auto& unit = *gossips_.at(static_cast<std::size_t>(i));
  return unit.server ? &*unit.server : nullptr;
}

core::PersistentStateManager* Sc98Scenario::state_manager() {
  return state_ ? &*state_ : nullptr;
}

wish::WishDaemon* Sc98Scenario::wish_daemon(int i) {
  if (i < 0 || static_cast<std::size_t>(i) >= wish_units_.size()) return nullptr;
  auto& unit = *wish_units_[static_cast<std::size_t>(i)];
  return unit.daemon ? &*unit.daemon : nullptr;
}

void Sc98Scenario::start_wish(WishUnit& unit) {
  unit.node.emplace(events_, transport_, Endpoint{unit.host, kWishPort});
  if (Status s = unit.node->start(); !s.ok()) {
    EW_ERROR << "wish bind failed: " << s.to_string();
    return;
  }
  wish::WishDaemon::Options wopts;
  wopts.incarnation = ++unit.incarnation;  // job ids can never collide across restarts
  wopts.peers = wish_endpoints();
  wopts.gossips = gossip_endpoints();
  unit.daemon.emplace(*unit.node, comparators_, wopts);
  unit.daemon->start();
}

void Sc98Scenario::start_control_services() {
  logging_node_.emplace(events_, transport_, Endpoint{kControlHost, kLoggingPort});
  logging_node_->start();
  logging_.emplace(*logging_node_);
  logging_->start();
  if (metrics_) {
    logging_->set_sink([this](const core::LogRecord& rec) { metrics_->on_log(rec); });
  }

  state_node_.emplace(events_, transport_, Endpoint{kControlHost, kStatePort});
  state_node_->start();
  core::PersistentStateManager::Options sopts;
  sopts.storage_dir = opts_.state_storage_dir;
  state_.emplace(*state_node_, sopts);
  state_->register_validator("ramsey/best/",
                             core::PersistentStateManager::ramsey_validator());
  // With a storage_dir configured, start() reloads every intact object that
  // survived on disk — the Section 3.1.2 promise the chaos tests exercise.
  state_->start();
}

void Sc98Scenario::build_services() {
  start_control_services();

  for (int i = 0; i < opts_.num_gossips; ++i) {
    auto unit = std::make_unique<GossipUnit>();
    unit->node.emplace(events_, transport_,
                       Endpoint{"gossip-" + std::to_string(i), kGossipPort});
    unit->node->start();
    gossip::GossipServer::Options gopts;
    gopts.num_cliques = static_cast<std::uint32_t>(opts_.num_gossip_cliques);
    unit->server.emplace(*unit->node, comparators_, gossip_endpoints(), gopts);
    unit->server->start();
    gossips_.push_back(std::move(unit));
  }

  for (int i = 0; i < opts_.num_wish_daemons; ++i) {
    auto unit = std::make_unique<WishUnit>();
    unit->host = "wish-" + std::to_string(i);
    wish_units_.push_back(std::move(unit));
  }
  for (auto& unit : wish_units_) start_wish(*unit);

  for (int i = 0; i < opts_.num_schedulers; ++i) {
    auto unit = std::make_unique<SchedulerUnit>();
    unit->host = "sched-" + std::to_string(i);
    unit->endpoint = Endpoint{unit->host, kSchedulerPort};
    schedulers_.push_back(std::move(unit));
  }
  if (opts_.schedulers_in_condor) {
    // Section 5.4 ablation: schedulers live on reclaimable hosts and die
    // (losing their soft state) whenever the owner returns.
    const auto condor = infra::default_profile(core::Infra::kCondor);
    for (int i = 0; i < opts_.num_schedulers; ++i) {
      auto* unit = schedulers_[static_cast<std::size_t>(i)].get();
      infra::HostSpec spec;
      spec.name = unit->host;
      spec.site = "condor";
      spec.infra = core::Infra::kCondor;
      spec.ops_per_sec = condor.rate_median;
      auto host = std::make_unique<infra::SimHost>(
          events_, transport_, std::move(spec), condor.load, condor.churn,
          rng_.next_u64());
      host->set_on_up([this, unit, i] {
        start_scheduler(*unit, static_cast<std::uint64_t>(i));
      });
      host->set_on_down([this, unit] { stop_scheduler(*unit); });
      host->start(/*initially_up=*/true);
      scheduler_hosts_.push_back(std::move(host));
    }
  } else {
    for (int i = 0; i < opts_.num_schedulers; ++i) {
      start_scheduler(*schedulers_[static_cast<std::size_t>(i)],
                      static_cast<std::uint64_t>(i));
    }
  }

  control_node_.emplace(events_, transport_, Endpoint{kControlHost, kControlPort});
  control_node_->start();

  // NWS monitoring stations at the stable sites (Figure 1's "NWS" box):
  // they probe each other so inter-site responsiveness forecasts exist
  // throughout the run.
  std::vector<Endpoint> station_eps;
  station_eps.push_back(Endpoint{kControlHost, 950});
  for (int i = 0; i < std::min(opts_.num_gossips, 3); ++i) {
    station_eps.push_back(Endpoint{"gossip-" + std::to_string(i), 950});
  }
  for (const auto& ep : station_eps) {
    auto fw = std::make_unique<core::ServiceFramework>(events_, transport_, ep);
    nws::NwsStationModule::Options nopts;
    nopts.peers = station_eps;
    nopts.probe_period = 60 * kSecond;
    auto module = std::make_unique<nws::NwsStationModule>(nopts);
    nws_stations_.push_back(module.get());
    fw->install(std::move(module));
    fw->start();
    aux_frameworks_.push_back(std::move(fw));
  }

  // Server directory (Section 3.1.2's "up-to-date list of active servers"):
  // one directory node per scheduler host, replicated through the Gossips.
  core::ServerDirectoryModule::register_comparator(comparators_);
  for (int i = 0; i < opts_.num_schedulers; ++i) {
    auto fw = std::make_unique<core::ServiceFramework>(
        events_, transport_, Endpoint{"sched-" + std::to_string(i), 602},
        gossip_endpoints(), comparators_);
    auto module = std::make_unique<core::ServerDirectoryModule>();
    directories_.push_back(module.get());
    fw->install(std::move(module));
    fw->start();
    aux_frameworks_.push_back(std::move(fw));
  }
}

void Sc98Scenario::build_adapters() {
  ClientProcess::Config base;
  base.schedulers = scheduler_endpoints();
  base.report_interval = opts_.report_interval;
  base.modeled = true;
  base.seed = opts_.seed;
  base.units_per_client =
      static_cast<std::uint32_t>(std::max(1, opts_.units_per_client));

  auto profile_for = [this](core::Infra kind) {
    infra::PoolProfile p = infra::default_profile(kind);
    const auto idx = static_cast<std::size_t>(kind);
    if (opts_.host_count_override[idx] > 0) {
      p.host_count = opts_.host_count_override[idx];
    }
    p.host_count = scaled(p.host_count, opts_.fleet_scale);
    return p;
  };
  auto factory_for = [this, &base](core::Infra kind,
                                   std::vector<Endpoint> schedulers) {
    ClientProcess::Config cfg = base;
    cfg.infra = kind;
    if (!schedulers.empty()) cfg.schedulers = std::move(schedulers);
    cfg.seed = base.seed ^ (0x1000ULL << static_cast<int>(kind));
    return make_client_factory(events_, transport_, cfg);
  };

  auto unix = std::make_unique<infra::UnixAdapter>(
      events_, transport_, network_, rng_.next_u64(),
      profile_for(core::Infra::kUnix));
  unix->start(factory_for(core::Infra::kUnix, {}));
  adapters_.push_back(std::move(unix));

  auto globus = std::make_unique<infra::GlobusAdapter>(
      events_, transport_, network_, rng_.next_u64(),
      profile_for(core::Infra::kGlobus), infra::GlobusAdapter::Config{});
  globus_ = globus.get();
  globus->start(factory_for(core::Infra::kGlobus, {}));
  adapters_.push_back(std::move(globus));

  auto legion = std::make_unique<infra::LegionAdapter>(
      events_, transport_, network_, rng_.next_u64(),
      profile_for(core::Infra::kLegion), infra::LegionAdapter::Config{});
  legion_ = legion.get();
  legion->translator().forward(core::msgtype::kSchedRegister, scheduler_endpoints());
  legion->translator().forward(core::msgtype::kSchedReportBatch,
                               scheduler_endpoints());
  legion->start(
      factory_for(core::Infra::kLegion, {legion->translator_endpoint()}));
  adapters_.push_back(std::move(legion));

  auto condor = std::make_unique<infra::CondorAdapter>(
      events_, transport_, network_, rng_.next_u64(),
      profile_for(core::Infra::kCondor));
  condor_ = condor.get();
  condor->start(factory_for(core::Infra::kCondor, {}));
  adapters_.push_back(std::move(condor));

  auto nt = std::make_unique<infra::NTAdapter>(
      events_, transport_, network_, rng_.next_u64(),
      profile_for(core::Infra::kNT), infra::NTAdapter::Quirks{});
  nt_ = nt.get();
  nt->start(factory_for(core::Infra::kNT, {}));
  adapters_.push_back(std::move(nt));

  auto java = std::make_unique<infra::JavaAdapter>(
      events_, transport_, network_, rng_.next_u64(),
      profile_for(core::Infra::kJava));
  java->start(factory_for(core::Infra::kJava, {}));
  adapters_.push_back(std::move(java));

  auto netsolve = std::make_unique<infra::NetSolveAdapter>(
      events_, transport_, network_, rng_.next_u64(),
      profile_for(core::Infra::kNetSolve), infra::NetSolveAdapter::Config{});
  netsolve_ = netsolve.get();
  netsolve->start(factory_for(core::Infra::kNetSolve, {}));
  adapters_.push_back(std::move(netsolve));

  // Flip the light switch shortly after boot (Globus + NetSolve idle until
  // the single point of control activates them).
  LightSwitch::Options sw;
  sw.mds = globus_->mds_endpoint();
  sw.netsolve_agent = netsolve_->agent_endpoint();
  light_switch_.emplace(*control_node_, std::move(sw));
  events_.schedule(30 * kSecond, [this] { light_switch_->turn_on(); });
}

void Sc98Scenario::schedule_spike() {
  if (!opts_.enable_spike) return;
  const TimePoint t0 = opts_.warmup + opts_.judging_offset;
  sim::Spike acute;
  acute.start = t0;
  acute.end = t0 + opts_.judging_acute;
  acute.congestion = opts_.judging_congestion;
  acute.cpu_pressure = opts_.judging_pressure;
  acute.reclaim_fraction = opts_.judging_reclaim;
  acute.label = "judging (acute)";
  sim::Spike tail;
  tail.start = acute.end;
  tail.end = t0 + opts_.judging_tail;
  tail.congestion = opts_.tail_congestion;
  tail.cpu_pressure = opts_.tail_pressure;
  tail.reclaim_fraction = 0.0;
  tail.label = "judging (demo)";
  spikes_.add(acute);
  spikes_.add(tail);

  events_.schedule(acute.start, [this, acute] {
    network_.set_congestion(acute.congestion);
    for (auto& a : adapters_) a->apply_spike(acute);
  });
  events_.schedule(tail.start, [this, tail] {
    network_.set_congestion(tail.congestion);
    for (auto& a : adapters_) a->apply_spike(tail);
  });
  events_.schedule(tail.end, [this] {
    network_.set_congestion(1.0);
    for (auto& a : adapters_) a->clear_spike();
  });
}

void Sc98Scenario::schedule_host_sampling() {
  events_.schedule(opts_.host_sample_period, [this] {
    const TimePoint now = events_.now();
    for (auto& a : adapters_) {
      metrics_->sample_hosts(a->kind(), a->hosts_active(), now);
    }
    if (now < opts_.warmup + opts_.record) schedule_host_sampling();
  });
}

ScenarioResults Sc98Scenario::run() {
  std::optional<AdaptiveTimeout::StaticOverrideGuard> static_guard;
  if (!opts_.adaptive_timeouts) static_guard.emplace(opts_.static_timeout);

  build_network();
  build_services();
  build_adapters();

  const auto bins = static_cast<std::size_t>(opts_.record / opts_.bin_width);
  metrics_.emplace(opts_.warmup, opts_.bin_width, bins);
  logging_->set_sink([this](const core::LogRecord& rec) { metrics_->on_log(rec); });
  schedule_spike();
  schedule_host_sampling();
  build_chaos();

  events_.run_until(opts_.warmup + opts_.record);

  ScenarioResults out;
  out.bin_start.reserve(bins);
  for (std::size_t i = 0; i < bins; ++i) out.bin_start.push_back(metrics_->bin_start(i));
  out.total_rate = metrics_->total_rate();
  for (int i = 0; i < core::kInfraCount; ++i) {
    const auto infra = static_cast<core::Infra>(i);
    out.infra_rate[static_cast<std::size_t>(i)] = metrics_->infra_rate(infra);
    out.infra_hosts[static_cast<std::size_t>(i)] = metrics_->infra_hosts(infra);
  }
  // Under chaos the control services may be down when the clock stops.
  out.total_ops = logging_ ? logging_->total_ops() : 0;
  out.log_records = logging_ ? logging_->records_received() : 0;
  for (auto& s : schedulers_) {
    harvest_scheduler(*s);
    out.reports += s->reports_total;
    out.migrations += s->migrations_total;
    out.presumed_dead += s->dead_total;
    // harvest_scheduler accumulates live counters into *_total; zero the
    // live servers' contribution by harvesting only once at the end.
  }
  out.condor_evictions = condor_ ? condor_->evictions() : 0;
  out.lsf_kills = nt_ ? nt_->lsf_kills() : 0;
  out.translated_calls = legion_ ? legion_->translator().translated() : 0;
  out.counterexample_stores_rejected = state_ ? state_->stores_rejected() : 0;
  for (const auto* s : nws_stations_) out.nws_probes += s->probes_completed();
  if (!directories_.empty()) out.directory_size = directories_[0]->directory().size();
  out.bins_judging_index =
      static_cast<std::size_t>(opts_.judging_offset / opts_.bin_width);
  return out;
}

}  // namespace ew::app
