// Sc98Scenario: the full EveryWare SC98 experiment, reassembled.
//
// Builds the application of paper Figure 1 on the simulated Grid: seven
// infrastructure adapters with their SC98-calibrated fleets, three
// scheduling servers, a Gossip pool managed by the clique protocol, a
// persistent state manager at a trusted site, a logging server, and the
// Globus/NetSolve light switch — then runs the 12-hour window of Figures
// 2-4, including the 11:00 judging-time contention spike, and collects the
// 5-minute-average series.
//
// Ablations (see DESIGN.md):
//   * adaptive_timeouts=false — the paper's rejected static time-outs,
//   * schedulers_in_condor=true — Section 5.4's scheduler placement mistake
//     (schedulers live on churning hosts and die with them).
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "app/client_process.hpp"
#include "app/light_switch.hpp"
#include "app/metrics.hpp"
#include "core/logging_service.hpp"
#include "core/persistent_state.hpp"
#include "core/scheduler.hpp"
#include "core/server_directory.hpp"
#include "core/service_framework.hpp"
#include "nws/nws.hpp"
#include "gossip/gossip_server.hpp"
#include "gossip/sync_client.hpp"
#include "infra/condor.hpp"
#include "infra/globus.hpp"
#include "infra/java.hpp"
#include "infra/legion.hpp"
#include "infra/netsolve.hpp"
#include "infra/nt.hpp"
#include "infra/unix.hpp"
#include "sim/chaos.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"
#include "sim/traces.hpp"
#include "wish/daemon.hpp"

namespace ew::app {

struct ScenarioOptions {
  std::uint64_t seed = 42;
  /// Ramp-up before the recording window (registrations, staging, clique
  /// formation). The paper's application had been running since June.
  Duration warmup = 45 * kMinute;
  /// The Figure-2 window: 23:36:56 -> 11:36:56 PST, 144 five-minute bins.
  Duration record = 12 * kHour;
  Duration bin_width = 5 * kMinute;
  Duration host_sample_period = 1 * kMinute;

  bool enable_spike = true;
  /// Judging begins 11:00:00 PST = 11h23m04s into the recording window.
  Duration judging_offset = 11 * kHour + 23 * kMinute + 4 * kSecond;
  Duration judging_acute = 8 * kMinute;    // heavy phase (drop to ~1.1 Gops)
  Duration judging_tail = 22 * kMinute;    // demo continues, milder
  double judging_congestion = 3.6;
  double judging_pressure = 0.60;
  double judging_reclaim = 0.15;
  double tail_congestion = 1.8;
  double tail_pressure = 0.85;

  bool adaptive_timeouts = true;       // ablation: §2.2 static time-outs
  Duration static_timeout = 1 * kSecond;  // used when adaptive_timeouts=false
  bool schedulers_in_condor = false;   // ablation: §5.4 scheduler placement

  int num_schedulers = 3;
  int num_gossips = 4;
  /// WISH interactive-shell daemons ("wish-N", port 701). 0 = subsystem off
  /// (the default; the 12-hour Figure runs are unchanged). When present the
  /// daemons sync the global environment through the gossip pool, and the
  /// chaos plan may target their hosts for crash/restart.
  int num_wish_daemons = 0;
  /// Child cliques the gossip pool shards into (1 = flat, the default — the
  /// chaos replay tests pin the single-shard trace bit-for-bit).
  int num_gossip_cliques = 1;
  Duration report_interval = 2 * kMinute;
  int pool_n = 42;  // search K_42 colorings for mono-K_5 freedom (R5 bound)
  int pool_k = 5;
  /// Work-unit lease per client (batched directive API, DESIGN.md §13).
  int units_per_client = 1;
  /// Range-shards inside each scheduler's work pool.
  int sched_pool_shards = 1;
  /// Per-infrastructure host-count override; 0 keeps the calibrated default.
  std::array<int, core::kInfraCount> host_count_override{};
  /// Scale every pool's host count (quick small runs for tests).
  double fleet_scale = 1.0;

  /// Scripted fault injection: an empty plan disables chaos. With a
  /// non-empty plan the scenario registers crash/restart handles for every
  /// server role (each scheduler host, each gossip host, and the control
  /// site's logging + state services as one process) and arms the plan
  /// before the clock starts. Plan targets are scenario host names
  /// ("sched-0", "gossip-1", "sdsc-control") or site pairs for link faults.
  sim::FaultPlan chaos;
  /// On-disk store for the persistent state manager; required for its
  /// contents to survive a chaos crash-restart of the control site. Empty
  /// keeps the store memory-only.
  std::string state_storage_dir;
};

struct ScenarioResults {
  std::vector<TimePoint> bin_start;
  std::vector<double> total_rate;  // Figures 2, 3c, 4c
  std::array<std::vector<double>, core::kInfraCount> infra_rate;   // 3a, 4a
  std::array<std::vector<double>, core::kInfraCount> infra_hosts;  // 3b, 4b
  std::uint64_t total_ops = 0;
  std::uint64_t log_records = 0;
  std::uint64_t reports = 0;
  std::uint64_t migrations = 0;
  std::uint64_t presumed_dead = 0;
  std::uint64_t condor_evictions = 0;
  std::uint64_t lsf_kills = 0;
  std::uint64_t translated_calls = 0;
  std::uint64_t counterexample_stores_rejected = 0;
  std::uint64_t nws_probes = 0;          // completed NWS station probes
  std::size_t directory_size = 0;        // viable servers seen by sched-0's directory
  std::size_t bins_judging_index = 0;    // bin containing 11:00:00
};

class Sc98Scenario {
 public:
  explicit Sc98Scenario(ScenarioOptions opts);
  ~Sc98Scenario();
  Sc98Scenario(const Sc98Scenario&) = delete;
  Sc98Scenario& operator=(const Sc98Scenario&) = delete;

  /// Build everything and run to the end of the recording window.
  ScenarioResults run();

  /// Internals exposed for tests.
  [[nodiscard]] sim::EventQueue& events() { return events_; }
  [[nodiscard]] core::LoggingServer& logging() { return *logging_; }
  [[nodiscard]] const std::vector<std::unique_ptr<infra::InfraAdapter>>& adapters()
      const {
    return adapters_;
  }
  /// Chaos internals for the chaos tests: null before run() or when the
  /// options carried no plan / the role is currently crashed.
  [[nodiscard]] sim::ChaosEngine* chaos_engine();
  [[nodiscard]] core::SchedulerServer* scheduler_server(int i);
  [[nodiscard]] gossip::GossipServer* gossip_server(int i);
  [[nodiscard]] core::PersistentStateManager* state_manager();
  /// Null when i is crashed or num_wish_daemons didn't cover it.
  [[nodiscard]] wish::WishDaemon* wish_daemon(int i);

 private:
  struct SchedulerUnit {
    Endpoint endpoint;
    std::string host;
    std::optional<Node> node;
    std::optional<core::SchedulerServer> server;
    std::optional<gossip::SyncClient> sync;
    std::uint64_t reports_total = 0;     // accumulated across restarts
    std::uint64_t migrations_total = 0;
    std::uint64_t dead_total = 0;
  };

  struct WishUnit {
    std::string host;
    std::uint64_t incarnation = 0;  // monotonic across chaos restarts
    std::optional<Node> node;
    std::optional<wish::WishDaemon> daemon;
  };

  void build_network();
  void build_services();
  void build_adapters();
  void build_chaos();
  void start_scheduler(SchedulerUnit& unit, std::uint64_t seed_tag);
  void harvest_scheduler(SchedulerUnit& unit);
  void stop_scheduler(SchedulerUnit& unit);
  void crash_scheduler(SchedulerUnit& unit);
  void start_control_services();
  void start_wish(WishUnit& unit);
  void schedule_spike();
  void schedule_host_sampling();
  core::SchedulerServer::Options scheduler_options(int index) const;
  [[nodiscard]] std::vector<Endpoint> scheduler_endpoints() const;
  [[nodiscard]] std::vector<Endpoint> gossip_endpoints() const;
  [[nodiscard]] std::vector<Endpoint> wish_endpoints() const;

  ScenarioOptions opts_;
  sim::EventQueue events_;
  Rng rng_;
  sim::NetworkModel network_;
  sim::SimTransport transport_;
  gossip::ComparatorRegistry comparators_;
  sim::SpikeSchedule spikes_;
  std::optional<MetricsCollector> metrics_;

  // Service-side actors.
  std::optional<Node> logging_node_;
  std::optional<core::LoggingServer> logging_;
  std::optional<Node> state_node_;
  std::optional<core::PersistentStateManager> state_;
  std::optional<Node> control_node_;
  std::optional<LightSwitch> light_switch_;
  std::vector<std::unique_ptr<SchedulerUnit>> schedulers_;
  std::vector<std::unique_ptr<infra::SimHost>> scheduler_hosts_;  // ablation
  struct GossipUnit {
    std::optional<Node> node;
    std::optional<gossip::GossipServer> server;
  };
  std::vector<std::unique_ptr<GossipUnit>> gossips_;
  std::vector<std::unique_ptr<WishUnit>> wish_units_;
  std::optional<sim::ChaosEngine> chaos_;
  // Figure-1 auxiliary services: NWS monitoring stations and the
  // volatile-but-replicated server directory, both on the §6 framework.
  std::vector<std::unique_ptr<core::ServiceFramework>> aux_frameworks_;
  std::vector<nws::NwsStationModule*> nws_stations_;
  std::vector<core::ServerDirectoryModule*> directories_;
  std::vector<std::unique_ptr<infra::InfraAdapter>> adapters_;
  // Typed views into adapters_ for quirk counters and light-switch wiring.
  infra::GlobusAdapter* globus_ = nullptr;
  infra::LegionAdapter* legion_ = nullptr;
  infra::CondorAdapter* condor_ = nullptr;
  infra::NTAdapter* nt_ = nullptr;
  infra::NetSolveAdapter* netsolve_ = nullptr;
};

}  // namespace ew::app
