// ClientProcess: a computational client installed on a simulated host.
//
// The unit the infrastructure adapters launch and kill: one Node bound on
// the host plus one RamseyClient. Killing the process (host reclaimed,
// browser closed, LSF impatience) destroys both — local state is lost, as
// Section 3.1.2 prescribes; everything that must survive lives with the
// schedulers, Gossips and persistent state managers.
#pragma once

#include <memory>

#include "core/client.hpp"
#include "infra/pool.hpp"
#include "net/node.hpp"

namespace ew::app {

class ClientProcess final : public infra::Process {
 public:
  struct Config {
    std::vector<Endpoint> schedulers;
    core::Infra infra = core::Infra::kUnix;
    Duration report_interval = 2 * kMinute;
    Duration initial_sleep_max = 45 * kSecond;
    bool modeled = true;  // ModeledWorkExecutor (fleets) vs real heuristics
    std::uint16_t port = 2000;
    std::uint64_t seed = 1;
    /// Lease size per client (batched directive API); executors are minted
    /// per unit from the same modeled/real choice.
    std::uint32_t units_per_client = 1;
  };

  ClientProcess(Executor& exec, Transport& transport, infra::SimHost& host,
                const Config& config);
  ~ClientProcess() override;

  [[nodiscard]] const core::RamseyClient& client() const { return client_; }

 private:
  static std::unique_ptr<core::WorkExecutor> make_executor(bool modeled);
  Node node_;
  core::RamseyClient client_;
};

/// Factory adaptor: returns an infra::ClientFactory that stamps each host's
/// client with per-host seed/endpoint derived from `config`.
infra::ClientFactory make_client_factory(Executor& exec, Transport& transport,
                                         ClientProcess::Config config);

}  // namespace ew::app
