// The "light switch" (paper Section 5.2) and the NetSolve request.
//
// "Our principal design goal was to enable light switch functionality,
// which provides the notion of a single point of control for activating and
// deactivating the Globus-enabled application components."
//
// LightSwitch runs at a control site: it queries the MDS for the
// gatekeeper/GASS locations, performs the lightweight authenticate-only
// operation against the gatekeeper, and submits the Ramsey client binary via
// GRAM. It also sends the NetSolve agent its procedure request. Retries on a
// timer until both infrastructures acknowledge.
#pragma once

#include "core/protocol.hpp"
#include "net/node.hpp"

namespace ew::app {

class LightSwitch {
 public:
  struct Options {
    Endpoint mds;                 // Globus directory service
    Endpoint netsolve_agent;      // optional; invalid = skip NetSolve
    std::string binary = "ramsey-client";
    Duration retry_delay = 30 * kSecond;
  };

  LightSwitch(Node& node, Options opts) : node_(node), opts_(std::move(opts)) {}

  /// Flip the switch: discover, authenticate, submit. Retries until done.
  void turn_on();

  [[nodiscard]] bool globus_on() const { return globus_on_; }
  [[nodiscard]] bool netsolve_on() const { return netsolve_on_; }

 private:
  void query_mds();
  void authenticate(const Endpoint& gram);
  void submit(const Endpoint& gram);
  void request_netsolve();
  void retry(void (LightSwitch::*step)());

  Node& node_;
  Options opts_;
  bool globus_on_ = false;
  bool netsolve_on_ = false;
};

}  // namespace ew::app
