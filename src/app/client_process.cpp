#include "app/client_process.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "common/log.hpp"

namespace ew::app {

namespace {
core::RamseyClient::Options client_options(infra::SimHost& host,
                                           const ClientProcess::Config& config) {
  core::RamseyClient::Options o;
  o.schedulers = config.schedulers;
  // Spread first-contact load across the scheduling servers: rotate each
  // client's failover list by a stable per-host amount.
  if (o.schedulers.size() > 1) {
    const auto shift = static_cast<std::ptrdiff_t>(fnv1a64(host.spec().name) %
                                                   o.schedulers.size());
    std::rotate(o.schedulers.begin(), o.schedulers.begin() + shift,
                o.schedulers.end());
  }
  o.infra = config.infra;
  o.host_label = host.spec().name;
  o.rate_source = [&host] { return host.current_rate(); };
  o.simulated_time = config.modeled;
  o.report_interval = config.report_interval;
  o.initial_sleep_max = config.initial_sleep_max;
  o.seed = config.seed ^ fnv1a64(host.spec().name);
  o.units_per_client = config.units_per_client;
  const bool modeled = config.modeled;
  o.executor_factory = [modeled] {
    return modeled
               ? std::unique_ptr<core::WorkExecutor>(
                     std::make_unique<core::ModeledWorkExecutor>())
               : std::unique_ptr<core::WorkExecutor>(
                     std::make_unique<core::RealWorkExecutor>());
  };
  return o;
}
}  // namespace

std::unique_ptr<core::WorkExecutor> ClientProcess::make_executor(bool modeled) {
  if (modeled) return std::make_unique<core::ModeledWorkExecutor>();
  return std::make_unique<core::RealWorkExecutor>();
}

ClientProcess::ClientProcess(Executor& exec, Transport& transport,
                             infra::SimHost& host, const Config& config)
    : node_(exec, transport, Endpoint{host.spec().name, config.port}),
      client_(node_, make_executor(config.modeled), client_options(host, config)) {
  if (Status s = node_.start(); !s.ok()) {
    EW_WARN << "client node bind failed on " << host.spec().name << ": "
            << s.to_string();
    return;
  }
  client_.start();
}

ClientProcess::~ClientProcess() {
  client_.stop();
  node_.stop();
}

infra::ClientFactory make_client_factory(Executor& exec, Transport& transport,
                                         ClientProcess::Config config) {
  return [&exec, &transport, config](infra::SimHost& host) {
    return std::make_unique<ClientProcess>(exec, transport, host, config);
  };
}

}  // namespace ew::app
