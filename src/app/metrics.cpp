#include "app/metrics.hpp"

#include "obs/registry.hpp"

namespace ew::app {

namespace {
template <std::size_t N>
std::array<BinnedSeries, N> make_series(TimePoint start, Duration width,
                                        std::size_t bins) {
  return []<std::size_t... I>(std::index_sequence<I...>, TimePoint s, Duration w,
                              std::size_t b) {
    return std::array<BinnedSeries, N>{((void)I, BinnedSeries(s, w, b))...};
  }(std::make_index_sequence<N>{}, start, width, bins);
}
}  // namespace

MetricsCollector::MetricsCollector(TimePoint record_start, Duration bin_width,
                                   std::size_t bins)
    : total_(record_start, bin_width, bins),
      infra_ops_(make_series<core::kInfraCount>(record_start, bin_width, bins)),
      infra_hosts_(make_series<core::kInfraCount>(record_start, bin_width, bins)) {}

void MetricsCollector::on_log(const core::LogRecord& rec) {
  ++records_;
  const auto ops = static_cast<double>(rec.ops);
  total_.add(rec.when, ops);
  infra_ops_[static_cast<std::size_t>(rec.infra)].add(rec.when, ops);
}

void MetricsCollector::sample_hosts(core::Infra infra, int active_hosts,
                                    TimePoint t) {
  if (!infra_hosts_[static_cast<std::size_t>(infra)].sample(t, active_hosts)) {
    ++dropped_samples_;
    obs::registry().counter(obs::names::kAppDroppedSamples).inc();
  }
}

}  // namespace ew::app
