// MetricsCollector: builds the paper's result series.
//
// Figures 2-4 are "5 Minute Averages" of (a) delivered integer ops per
// second per infrastructure, (b) active host counts per infrastructure, and
// (c) the total rate. The collector is installed as the logging server's
// sink (ops are binned at the time the scheduler recorded them — the same
// path the SC98 numbers took) and receives periodic host-count samples from
// the scenario driver.
#pragma once

#include <array>
#include <vector>

#include "common/stats.hpp"
#include "core/protocol.hpp"

namespace ew::app {

class MetricsCollector {
 public:
  MetricsCollector(TimePoint record_start, Duration bin_width, std::size_t bins);

  /// Logging-server sink.
  void on_log(const core::LogRecord& rec);
  /// Host-count gauge (call every sampling tick, per infrastructure).
  void sample_hosts(core::Infra infra, int active_hosts, TimePoint t);

  [[nodiscard]] std::size_t bins() const { return total_.num_bins(); }
  [[nodiscard]] TimePoint bin_start(std::size_t i) const { return total_.bin_start(i); }
  [[nodiscard]] std::vector<double> total_rate() const { return total_.rate_series(); }
  [[nodiscard]] std::vector<double> infra_rate(core::Infra i) const {
    return infra_ops_[static_cast<std::size_t>(i)].rate_series();
  }
  [[nodiscard]] std::vector<double> infra_hosts(core::Infra i) const {
    return infra_hosts_[static_cast<std::size_t>(i)].average_series();
  }
  [[nodiscard]] std::uint64_t records() const { return records_; }
  /// Host-count gauge samples rejected by the series (t before record_start
  /// or past the last bin). Previously dropped silently; also exported as
  /// the app.metrics.dropped_samples obs counter.
  [[nodiscard]] std::uint64_t dropped_samples() const {
    return dropped_samples_;
  }

 private:
  BinnedSeries total_;
  std::array<BinnedSeries, core::kInfraCount> infra_ops_;
  std::array<BinnedSeries, core::kInfraCount> infra_hosts_;
  std::uint64_t records_ = 0;
  std::uint64_t dropped_samples_ = 0;
};

}  // namespace ew::app
