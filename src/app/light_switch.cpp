#include "app/light_switch.hpp"

#include "gossip/protocol.hpp"

namespace ew::app {

void LightSwitch::turn_on() {
  query_mds();
  if (opts_.netsolve_agent.valid()) request_netsolve();
}

void LightSwitch::retry(void (LightSwitch::*step)()) {
  node_.executor().schedule(opts_.retry_delay, [this, step] { (this->*step)(); });
}

void LightSwitch::query_mds() {
  const EventTag tag = EventTag::of(opts_.mds, core::msgtype::kMdsQuery);
  const TimePoint t0 = node_.executor().now();
  node_.call(opts_.mds, core::msgtype::kMdsQuery, {}, timeouts_.timeout(tag),
             [this, tag, t0](Result<Bytes> r) {
               timeouts_.on_result(tag, node_.executor().now() - t0, r.ok());
               if (!r.ok()) {
                 retry(&LightSwitch::query_mds);
                 return;
               }
               Reader rd(*r);
               auto gram = gossip::read_endpoint(rd);
               if (!gram) {
                 retry(&LightSwitch::query_mds);
                 return;
               }
               authenticate(*gram);
             });
}

void LightSwitch::authenticate(const Endpoint& gram) {
  const EventTag tag = EventTag::of(gram, core::msgtype::kGramAuth);
  const TimePoint t0 = node_.executor().now();
  node_.call(gram, core::msgtype::kGramAuth, {}, timeouts_.timeout(tag),
             [this, gram, tag, t0](Result<Bytes> r) {
               timeouts_.on_result(tag, node_.executor().now() - t0, r.ok());
               if (!r.ok()) {
                 retry(&LightSwitch::query_mds);
                 return;
               }
               submit(gram);
             });
}

void LightSwitch::submit(const Endpoint& gram) {
  Writer w;
  w.str(opts_.binary);
  const EventTag tag = EventTag::of(gram, core::msgtype::kGramSubmit);
  const TimePoint t0 = node_.executor().now();
  node_.call(gram, core::msgtype::kGramSubmit, w.take(), timeouts_.timeout(tag),
             [this, tag, t0](Result<Bytes> r) {
               timeouts_.on_result(tag, node_.executor().now() - t0, r.ok());
               if (!r.ok()) {
                 retry(&LightSwitch::query_mds);
                 return;
               }
               globus_on_ = true;
             });
}

void LightSwitch::request_netsolve() {
  const EventTag tag =
      EventTag::of(opts_.netsolve_agent, core::msgtype::kNetSolveRequest);
  const TimePoint t0 = node_.executor().now();
  node_.call(opts_.netsolve_agent, core::msgtype::kNetSolveRequest, {},
             timeouts_.timeout(tag), [this, tag, t0](Result<Bytes> r) {
               timeouts_.on_result(tag, node_.executor().now() - t0, r.ok());
               if (!r.ok()) {
                 retry(&LightSwitch::request_netsolve);
                 return;
               }
               netsolve_on_ = true;
             });
}

}  // namespace ew::app
