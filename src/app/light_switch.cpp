#include "app/light_switch.hpp"

#include "gossip/protocol.hpp"

namespace ew::app {

void LightSwitch::turn_on() {
  query_mds();
  if (opts_.netsolve_agent.valid()) request_netsolve();
}

void LightSwitch::retry(void (LightSwitch::*step)()) {
  node_.executor().schedule(opts_.retry_delay, [this, step] { (this->*step)(); });
}

void LightSwitch::query_mds() {
  // The MDS lookup is a pure read: resend lost queries within the call and
  // hedge once the RTT tail is known; the app-level retry() loop restarts
  // the whole sequence only after the call itself has given up.
  CallOptions q;
  q.retry = RetryPolicy::standard(2);
  q.hedge = HedgePolicy::at(0.95);
  q.trace_tag = "switch.mds";
  node_.call(opts_.mds, core::msgtype::kMdsQuery, {}, std::move(q),
             [this](Result<Bytes> r) {
               if (!r.ok()) {
                 retry(&LightSwitch::query_mds);
                 return;
               }
               Reader rd(*r);
               auto gram = gossip::read_endpoint(rd);
               if (!gram) {
                 retry(&LightSwitch::query_mds);
                 return;
               }
               authenticate(*gram);
             });
}

void LightSwitch::authenticate(const Endpoint& gram) {
  CallOptions a;
  a.trace_tag = "switch.auth";
  node_.call(gram, core::msgtype::kGramAuth, {}, std::move(a),
             [this, gram](Result<Bytes> r) {
               if (!r.ok()) {
                 retry(&LightSwitch::query_mds);
                 return;
               }
               submit(gram);
             });
}

void LightSwitch::submit(const Endpoint& gram) {
  Writer w;
  w.str(opts_.binary);
  // Submissions start jobs; a blind resend could start two. Single attempt,
  // with the app loop re-running the whole MDS→auth→submit sequence.
  CallOptions s;
  s.trace_tag = "switch.submit";
  node_.call(gram, core::msgtype::kGramSubmit, w.take(), std::move(s),
             [this](Result<Bytes> r) {
               if (!r.ok()) {
                 retry(&LightSwitch::query_mds);
                 return;
               }
               globus_on_ = true;
             });
}

void LightSwitch::request_netsolve() {
  CallOptions n;
  n.trace_tag = "switch.netsolve";
  node_.call(opts_.netsolve_agent, core::msgtype::kNetSolveRequest, {},
             std::move(n), [this](Result<Bytes> r) {
               if (!r.ok()) {
                 retry(&LightSwitch::request_netsolve);
                 return;
               }
               netsolve_on_ = true;
             });
}

}  // namespace ew::app
