file(REMOVE_RECURSE
  "CMakeFiles/ew_app.dir/client_process.cpp.o"
  "CMakeFiles/ew_app.dir/client_process.cpp.o.d"
  "CMakeFiles/ew_app.dir/light_switch.cpp.o"
  "CMakeFiles/ew_app.dir/light_switch.cpp.o.d"
  "CMakeFiles/ew_app.dir/metrics.cpp.o"
  "CMakeFiles/ew_app.dir/metrics.cpp.o.d"
  "CMakeFiles/ew_app.dir/scenario.cpp.o"
  "CMakeFiles/ew_app.dir/scenario.cpp.o.d"
  "libew_app.a"
  "libew_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
