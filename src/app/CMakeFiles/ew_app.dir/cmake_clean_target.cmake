file(REMOVE_RECURSE
  "libew_app.a"
)
