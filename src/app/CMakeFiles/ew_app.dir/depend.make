# Empty dependencies file for ew_app.
# This may be replaced when dependencies are built.
