// Legion adapter: the translator object (paper Section 5.3).
//
// "To communicate with the other infrastructures, we implemented a
// translator object for the lingua franca. ... it gave us a single
// monitoring point for all messages headed to and from Legion application
// components."
//
// TranslatorServer forwards configured message types to their real targets
// (with failover) and relays the responses, adding Legion's method-
// invocation overhead per hop. Legion-pool clients are built with the
// translator as their scheduler address, so every scheduler interaction
// crosses it — and if the translator's host is partitioned, the Legion side
// is cut off exactly as the paper anticipates.
#pragma once

#include <unordered_map>

#include "infra/profiles.hpp"
#include "net/node.hpp"

namespace ew::infra {

class TranslatorServer {
 public:
  struct Options {
    Duration processing_delay = 25 * kMillisecond;  // per translated call
  };

  TranslatorServer(Node& node, Options opts) : node_(node), opts_(opts) {}
  explicit TranslatorServer(Node& node) : TranslatorServer(node, Options{}) {}

  /// Forward requests of `type` to `targets` (failover order).
  void forward(MsgType type, std::vector<Endpoint> targets);

  [[nodiscard]] std::uint64_t translated() const { return translated_; }

 private:
  void relay(MsgType type, const Bytes& payload, Responder resp,
             std::size_t target_index, std::size_t attempts);

  Node& node_;
  Options opts_;
  std::unordered_map<MsgType, std::vector<Endpoint>> routes_;
  std::uint64_t translated_ = 0;
};

class LegionAdapter final : public PoolAdapter {
 public:
  struct Config {
    std::string gate_host = "legion-gate";
    TranslatorServer::Options translator;
  };

  LegionAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                sim::NetworkModel& network, std::uint64_t seed,
                PoolProfile profile, Config config);
  LegionAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                sim::NetworkModel& network, std::uint64_t seed)
      : LegionAdapter(events, transport, network, seed,
                      default_profile(core::Infra::kLegion), Config{}) {}

  void start(ClientFactory factory) override;
  void stop() override;

  [[nodiscard]] Endpoint translator_endpoint() const { return node_->self(); }
  [[nodiscard]] TranslatorServer& translator() { return *translator_; }

 private:
  Config config_;
  std::optional<Node> node_;
  std::optional<TranslatorServer> translator_;
};

}  // namespace ew::infra
