// NT / Win32 adapter (paper Section 5.5).
//
// The NT Superclusters ran under LSF, which "seemed to interpret the lack of
// cpu usage [during the client's randomized start-up sleep] by assuming the
// process is dead, reclaiming the processor". The adapter reproduces that:
// every launched client samples a start-up sleep from
// [0, client_sleep_max); if it exceeds lsf_kill_threshold, LSF kills the
// client at the threshold and the launch ceremony starts over. The paper's
// fix — "we reduced the sleep time duration" — is modelled by configuring a
// small client_sleep_max (the default), and bench/ablation benchmarks the
// pre-fix configuration.
#pragma once

#include "infra/profiles.hpp"

namespace ew::infra {

class NTAdapter final : public PoolAdapter {
 public:
  struct Quirks {
    Duration lsf_kill_threshold = 60 * kSecond;
    Duration client_sleep_max = 10 * kSecond;  // post-fix default
  };

  NTAdapter(sim::EventQueue& events, sim::SimTransport& transport,
            sim::NetworkModel& network, std::uint64_t seed,
            PoolProfile profile, Quirks quirks);
  NTAdapter(sim::EventQueue& events, sim::SimTransport& transport,
            sim::NetworkModel& network, std::uint64_t seed)
      : NTAdapter(events, transport, network, seed,
                  default_profile(core::Infra::kNT), Quirks{}) {}

  [[nodiscard]] std::uint64_t lsf_kills() const { return lsf_kills_; }

 private:
  void launch(std::size_t i);

  Quirks quirks_;
  Rng rng_;
  std::uint64_t lsf_kills_ = 0;
};

}  // namespace ew::infra
