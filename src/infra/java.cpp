#include "infra/java.hpp"

// JavaAdapter is fully defined in the header; this translation unit anchors
// the vtable.
namespace ew::infra {}
