#include "infra/host.hpp"

namespace ew::infra {

namespace {
constexpr Duration kLoadStep = 30 * kSecond;
}

SimHost::SimHost(sim::EventQueue& events, sim::SimTransport& transport,
                 HostSpec spec, sim::Ar1Process::Params load,
                 sim::DurationSampler::Params churn, std::uint64_t seed)
    : events_(events),
      transport_(transport),
      spec_(std::move(spec)),
      load_(load, Rng(seed ^ 0x10ad), load.mu),
      churn_(churn, Rng(seed ^ 0xc402)),
      rng_(seed) {}

void SimHost::start(bool initially_up) {
  running_ = true;
  transport_.set_host_up(spec_.name, false);
  if (initially_up) {
    // Stagger initial up events a little so fleets do not move in lockstep.
    events_.schedule(static_cast<Duration>(rng_.below(30 * kSecond)),
                     [this] { if (running_) go_up(); });
  } else {
    transition_timer_ = events_.schedule(churn_.next_down(),
                                         [this] { if (running_) go_up(); });
  }
  schedule_load_step();
}

void SimHost::shutdown() {
  running_ = false;
  events_.cancel(transition_timer_);
  events_.cancel(load_timer_);
  if (up_) {
    up_ = false;
    transport_.set_host_up(spec_.name, false);
    if (on_down_) on_down_();
  }
}

double SimHost::current_rate() const {
  if (!up_) return 0.0;
  return spec_.ops_per_sec * load_.value();
}

void SimHost::go_up() {
  if (up_) return;
  up_ = true;
  ++up_transitions_;
  transport_.set_host_up(spec_.name, true);
  transition_timer_ = events_.schedule(churn_.next_up(), [this] {
    if (running_) go_down(0);
  });
  if (on_up_) on_up_();
}

void SimHost::go_down(Duration extra_down) {
  if (!up_) return;
  up_ = false;
  transport_.set_host_up(spec_.name, false);
  events_.cancel(transition_timer_);
  transition_timer_ = events_.schedule(churn_.next_down() + extra_down, [this] {
    if (running_) go_up();
  });
  if (on_down_) on_down_();
}

void SimHost::force_down(Duration at_least) {
  if (!up_) return;
  go_down(at_least);
}

void SimHost::schedule_load_step() {
  load_timer_ = events_.schedule(kLoadStep, [this] {
    if (!running_) return;
    load_.step();
    schedule_load_step();
  });
}

}  // namespace ew::infra
