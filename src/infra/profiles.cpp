#include "infra/profiles.hpp"

namespace ew::infra {

PoolProfile default_profile(core::Infra kind) {
  PoolProfile p;
  p.infra = kind;
  switch (kind) {
    case core::Infra::kUnix:
      // A handful of big time-shared servers and MPP front-ends (the Tera
      // MTA and parallel supercomputers enter as the lognormal's fat tail).
      p.site = "npaci";
      p.host_prefix = "unix";
      p.host_count = 15;
      p.rate_median = 2.0e7;
      p.rate_sigma = 0.9;
      p.load = {.mu = 0.6, .theta = 0.15, .sigma = 0.12, .lo = 0.05, .hi = 1.0};
      p.churn = {.mean_up = 6 * kHour, .mean_down = 8 * kMinute, .up_sigma = 0.8};
      p.relaunch_delay = 20 * kSecond;
      p.initially_up = 0.95;
      break;
    case core::Infra::kGlobus:
      // Batch-scheduled MPP partitions behind GRAM gatekeepers: nodes are
      // dedicated while held, allocations last hours.
      p.site = "globus";
      p.host_prefix = "globus";
      p.host_count = 26;
      p.rate_median = 1.1e7;
      p.rate_sigma = 0.5;
      p.load = {.mu = 0.92, .theta = 0.3, .sigma = 0.04, .lo = 0.3, .hi = 1.0};
      p.churn = {.mean_up = 3 * kHour, .mean_down = 25 * kMinute, .up_sigma = 0.7};
      p.relaunch_delay = 45 * kSecond;  // GRAM submission overhead
      p.initially_up = 0.85;
      break;
    case core::Infra::kLegion:
      p.site = "legion";
      p.host_prefix = "legion";
      p.host_count = 30;
      p.rate_median = 7.5e6;
      p.rate_sigma = 0.5;
      p.load = {.mu = 0.7, .theta = 0.2, .sigma = 0.1, .lo = 0.05, .hi = 1.0};
      p.churn = {.mean_up = 2 * kHour, .mean_down = 15 * kMinute, .up_sigma = 0.9};
      p.relaunch_delay = 30 * kSecond;
      p.initially_up = 0.85;
      break;
    case core::Infra::kCondor:
      // The big federated workstation pool: many hosts, owner reclamation
      // at any moment, quick re-placement of evicted guests.
      p.site = "condor";
      p.host_prefix = "condor";
      p.host_count = 110;
      p.rate_median = 1.15e7;
      p.rate_sigma = 0.45;
      p.load = {.mu = 0.95, .theta = 0.3, .sigma = 0.04, .lo = 0.3, .hi = 1.0};
      p.churn = {.mean_up = 50 * kMinute, .mean_down = 18 * kMinute, .up_sigma = 1.0};
      p.relaunch_delay = 15 * kSecond;
      p.initially_up = 0.7;
      break;
    case core::Infra::kNT:
      // The NCSA/UCSD NT Superclusters under LSF: fast dedicated nodes,
      // allocations in batch-sized slabs.
      p.site = "ncsa";
      p.host_prefix = "nt";
      p.host_count = 72;
      p.rate_median = 1.25e7;
      p.rate_sigma = 0.25;
      p.load = {.mu = 0.97, .theta = 0.3, .sigma = 0.02, .lo = 0.5, .hi = 1.0};
      p.churn = {.mean_up = 100 * kMinute, .mean_down = 30 * kMinute, .up_sigma = 0.6};
      p.relaunch_delay = 25 * kSecond;
      p.initially_up = 0.8;
      break;
    case core::Infra::kJava:
      // Browser applets: rates fixed by Section 5.6's measurements, short
      // user sessions, frequent arrivals.
      p.site = "wan";
      p.host_prefix = "java";
      p.host_count = 12;
      p.rate_fn = [](int index, Rng& rng) {
        // ~2/3 of SC98-era browsers had a JIT (12,109,720 ops/s measured);
        // the rest interpret (111,616 ops/s).
        const bool jit = (index % 3) != 2;
        return (jit ? 12'109'720.0 : 111'616.0) * rng.uniform(0.9, 1.1);
      };
      p.load = {.mu = 0.5, .theta = 0.2, .sigma = 0.15, .lo = 0.05, .hi = 1.0};
      p.churn = {.mean_up = 25 * kMinute, .mean_down = 20 * kMinute, .up_sigma = 1.1};
      p.relaunch_delay = 5 * kSecond;  // applet download
      p.initially_up = 0.6;
      break;
    case core::Infra::kNetSolve:
      p.site = "utk";
      p.host_prefix = "netsolve";
      p.host_count = 3;
      p.rate_median = 1.4e6;
      p.rate_sigma = 0.3;
      p.load = {.mu = 0.7, .theta = 0.2, .sigma = 0.08, .lo = 0.1, .hi = 1.0};
      p.churn = {.mean_up = 5 * kHour, .mean_down = 20 * kMinute, .up_sigma = 0.6};
      p.relaunch_delay = 20 * kSecond;
      p.initially_up = 0.9;
      break;
  }
  return p;
}

}  // namespace ew::infra
