file(REMOVE_RECURSE
  "libew_infra.a"
)
