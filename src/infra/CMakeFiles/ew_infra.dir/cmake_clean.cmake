file(REMOVE_RECURSE
  "CMakeFiles/ew_infra.dir/condor.cpp.o"
  "CMakeFiles/ew_infra.dir/condor.cpp.o.d"
  "CMakeFiles/ew_infra.dir/globus.cpp.o"
  "CMakeFiles/ew_infra.dir/globus.cpp.o.d"
  "CMakeFiles/ew_infra.dir/host.cpp.o"
  "CMakeFiles/ew_infra.dir/host.cpp.o.d"
  "CMakeFiles/ew_infra.dir/java.cpp.o"
  "CMakeFiles/ew_infra.dir/java.cpp.o.d"
  "CMakeFiles/ew_infra.dir/legion.cpp.o"
  "CMakeFiles/ew_infra.dir/legion.cpp.o.d"
  "CMakeFiles/ew_infra.dir/netsolve.cpp.o"
  "CMakeFiles/ew_infra.dir/netsolve.cpp.o.d"
  "CMakeFiles/ew_infra.dir/nt.cpp.o"
  "CMakeFiles/ew_infra.dir/nt.cpp.o.d"
  "CMakeFiles/ew_infra.dir/pool.cpp.o"
  "CMakeFiles/ew_infra.dir/pool.cpp.o.d"
  "CMakeFiles/ew_infra.dir/profiles.cpp.o"
  "CMakeFiles/ew_infra.dir/profiles.cpp.o.d"
  "CMakeFiles/ew_infra.dir/unix.cpp.o"
  "CMakeFiles/ew_infra.dir/unix.cpp.o.d"
  "libew_infra.a"
  "libew_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
