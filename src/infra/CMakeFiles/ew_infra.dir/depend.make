# Empty dependencies file for ew_infra.
# This may be replaced when dependencies are built.
