
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infra/condor.cpp" "src/infra/CMakeFiles/ew_infra.dir/condor.cpp.o" "gcc" "src/infra/CMakeFiles/ew_infra.dir/condor.cpp.o.d"
  "/root/repo/src/infra/globus.cpp" "src/infra/CMakeFiles/ew_infra.dir/globus.cpp.o" "gcc" "src/infra/CMakeFiles/ew_infra.dir/globus.cpp.o.d"
  "/root/repo/src/infra/host.cpp" "src/infra/CMakeFiles/ew_infra.dir/host.cpp.o" "gcc" "src/infra/CMakeFiles/ew_infra.dir/host.cpp.o.d"
  "/root/repo/src/infra/java.cpp" "src/infra/CMakeFiles/ew_infra.dir/java.cpp.o" "gcc" "src/infra/CMakeFiles/ew_infra.dir/java.cpp.o.d"
  "/root/repo/src/infra/legion.cpp" "src/infra/CMakeFiles/ew_infra.dir/legion.cpp.o" "gcc" "src/infra/CMakeFiles/ew_infra.dir/legion.cpp.o.d"
  "/root/repo/src/infra/netsolve.cpp" "src/infra/CMakeFiles/ew_infra.dir/netsolve.cpp.o" "gcc" "src/infra/CMakeFiles/ew_infra.dir/netsolve.cpp.o.d"
  "/root/repo/src/infra/nt.cpp" "src/infra/CMakeFiles/ew_infra.dir/nt.cpp.o" "gcc" "src/infra/CMakeFiles/ew_infra.dir/nt.cpp.o.d"
  "/root/repo/src/infra/pool.cpp" "src/infra/CMakeFiles/ew_infra.dir/pool.cpp.o" "gcc" "src/infra/CMakeFiles/ew_infra.dir/pool.cpp.o.d"
  "/root/repo/src/infra/profiles.cpp" "src/infra/CMakeFiles/ew_infra.dir/profiles.cpp.o" "gcc" "src/infra/CMakeFiles/ew_infra.dir/profiles.cpp.o.d"
  "/root/repo/src/infra/unix.cpp" "src/infra/CMakeFiles/ew_infra.dir/unix.cpp.o" "gcc" "src/infra/CMakeFiles/ew_infra.dir/unix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/ew_common.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/ew_net.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/ew_sim.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/ew_core.dir/DependInfo.cmake"
  "/root/repo/src/gossip/CMakeFiles/ew_gossip.dir/DependInfo.cmake"
  "/root/repo/src/forecast/CMakeFiles/ew_forecast.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ew_obs.dir/DependInfo.cmake"
  "/root/repo/src/ramsey/CMakeFiles/ew_ramsey.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
