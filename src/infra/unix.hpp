// Unix adapter (paper Section 5.1).
//
// The reference environment: stable time-shared servers reached over plain
// sockets with no launch ceremony beyond a remote shell. This is the
// baseline PoolAdapter with the Unix profile; the interesting Unix-specific
// engineering (select()-based time-outs, no signals/threads/fork) lives in
// src/net, where every other adapter inherits it — exactly the paper's
// porting story.
#pragma once

#include "infra/profiles.hpp"

namespace ew::infra {

class UnixAdapter final : public PoolAdapter {
 public:
  UnixAdapter(sim::EventQueue& events, sim::SimTransport& transport,
              sim::NetworkModel& network, std::uint64_t seed,
              PoolProfile profile)
      : PoolAdapter(events, transport, network, std::move(profile), seed) {}
  UnixAdapter(sim::EventQueue& events, sim::SimTransport& transport,
              sim::NetworkModel& network, std::uint64_t seed)
      : UnixAdapter(events, transport, network, seed,
                    default_profile(core::Infra::kUnix)) {}
};

}  // namespace ew::infra
