// Java applet adapter (paper Section 5.6).
//
// Browser-hosted clients: anyone on the Internet could point a browser at
// the applet and donate cycles. Hosts are slow (the JIT/interpreted rates
// are the paper's measured 12,109,720 and 111,616 ops/s on a 300 MHz
// Pentium II), sessions are short, and the "launch ceremony" is an applet
// download. The adapter exposes the two measured tiers for the §5.6 bench.
#pragma once

#include "infra/profiles.hpp"

namespace ew::infra {

class JavaAdapter final : public PoolAdapter {
 public:
  /// The paper's measured rates (Section 5.6).
  static constexpr double kJitOpsPerSec = 12'109'720.0;
  static constexpr double kInterpretedOpsPerSec = 111'616.0;

  JavaAdapter(sim::EventQueue& events, sim::SimTransport& transport,
              sim::NetworkModel& network, std::uint64_t seed,
              PoolProfile profile)
      : PoolAdapter(events, transport, network, std::move(profile), seed) {}
  JavaAdapter(sim::EventQueue& events, sim::SimTransport& transport,
              sim::NetworkModel& network, std::uint64_t seed)
      : JavaAdapter(events, transport, network, seed,
                    default_profile(core::Infra::kJava)) {}
};

}  // namespace ew::infra
