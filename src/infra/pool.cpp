#include "infra/pool.hpp"

#include <cmath>

namespace ew::infra {

HostPool::HostPool(sim::EventQueue& events, sim::SimTransport& transport,
                   sim::NetworkModel& network, PoolProfile profile,
                   std::uint64_t seed)
    : events_(events),
      transport_(transport),
      network_(network),
      profile_(std::move(profile)),
      rng_(seed) {}

HostPool::~HostPool() { stop(); }

void HostPool::start(ClientFactory factory) {
  if (running_) return;
  running_ = true;
  factory_ = std::move(factory);
  hosts_.reserve(static_cast<std::size_t>(profile_.host_count));
  clients_.resize(static_cast<std::size_t>(profile_.host_count));
  for (int i = 0; i < profile_.host_count; ++i) {
    HostSpec spec;
    spec.name = profile_.host_prefix + "-" + std::to_string(i);
    spec.site = profile_.site;
    spec.infra = profile_.infra;
    spec.ops_per_sec =
        profile_.rate_fn
            ? profile_.rate_fn(i, rng_)
            : profile_.rate_median * rng_.lognormal(0.0, profile_.rate_sigma);
    network_.set_site(spec.name, profile_.site);
    auto host = std::make_unique<SimHost>(events_, transport_, std::move(spec),
                                          profile_.load, profile_.churn,
                                          rng_.next_u64());
    const auto idx = static_cast<std::size_t>(i);
    host->set_on_up([this, idx] { on_host_up(idx); });
    host->set_on_down([this, idx] { on_host_down(idx); });
    hosts_.push_back(std::move(host));
  }
  for (auto& h : hosts_) {
    h->start(rng_.chance(profile_.initially_up));
  }
}

void HostPool::stop() {
  if (!running_) return;
  running_ = false;
  for (std::size_t i = 0; i < clients_.size(); ++i) kill_client(i);
  for (auto& h : hosts_) h->shutdown();
}

int HostPool::hosts_up() const {
  int n = 0;
  for (const auto& h : hosts_) n += h->up() ? 1 : 0;
  return n;
}

int HostPool::hosts_active() const {
  int n = 0;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i]->up() && clients_[i]) ++n;
  }
  return n;
}

double HostPool::aggregate_rate() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (clients_[i]) sum += hosts_[i]->current_rate();
  }
  return sum;
}

void HostPool::reclaim_fraction(double fraction, Duration at_least) {
  // Deterministic: reclaim every k-th up host.
  if (fraction <= 0.0) return;
  const int up = hosts_up();
  const int to_reclaim = static_cast<int>(std::ceil(up * fraction));
  int reclaimed = 0;
  for (auto& h : hosts_) {
    if (reclaimed >= to_reclaim) break;
    if (h->up()) {
      h->force_down(at_least);
      ++reclaimed;
    }
  }
}

void HostPool::set_pressure(double factor) {
  for (auto& h : hosts_) h->set_pressure(factor);
}

void HostPool::on_host_up(std::size_t i) {
  if (!running_) return;
  if (launch_hook_) {
    launch_hook_(i);
    return;
  }
  // Default ceremony: the infrastructure takes relaunch_delay to notice the
  // host and start the client.
  events_.schedule(profile_.relaunch_delay, [this, i] {
    if (!running_) return;
    if (hosts_[i]->up()) run_client(i);
  });
}

void HostPool::on_host_down(std::size_t i) {
  if (!running_) return;
  const bool was_running = static_cast<bool>(clients_[i]);
  kill_client(i);
  if (was_running && on_client_killed_) on_client_killed_(i);
}

void HostPool::run_client(std::size_t i) {
  if (!running_ || clients_[i] || !factory_) return;
  if (!hosts_[i]->up()) return;
  clients_[i] = factory_(*hosts_[i]);
  ++launches_;
}

void HostPool::kill_client(std::size_t i) {
  clients_[i].reset();
}

bool HostPool::client_running(std::size_t i) const {
  return static_cast<bool>(clients_[i]);
}

}  // namespace ew::infra
