#include "infra/nt.hpp"

namespace ew::infra {

NTAdapter::NTAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                     sim::NetworkModel& network, std::uint64_t seed,
                     PoolProfile profile, Quirks quirks)
    : PoolAdapter(events, transport, network, std::move(profile), seed),
      quirks_(quirks),
      rng_(seed ^ 0x15f) {
  pool_.set_launch_hook([this](std::size_t i) { launch(i); });
}

void NTAdapter::launch(std::size_t i) {
  events_.schedule(pool_.profile().relaunch_delay, [this, i] {
    if (!pool_.hosts()[i]->up()) return;
    pool_.run_client(i);
    if (quirks_.client_sleep_max <= quirks_.lsf_kill_threshold) return;
    // The client sleeps a randomized interval before soliciting work; if it
    // stays idle past the threshold, LSF reclaims the processor.
    const auto sleep = static_cast<Duration>(
        rng_.below(static_cast<std::uint64_t>(quirks_.client_sleep_max)));
    if (sleep <= quirks_.lsf_kill_threshold) return;
    events_.schedule(quirks_.lsf_kill_threshold, [this, i] {
      if (!pool_.client_running(i) || !pool_.hosts()[i]->up()) return;
      pool_.kill_client(i);
      ++lsf_kills_;
      launch(i);  // LSF re-dispatches; the herd thunders again
    });
  });
}

}  // namespace ew::infra
