// HostPool: a fleet of simulated hosts under one infrastructure, plus the
// common adapter interface every infrastructure implements.
//
// The pool owns host lifecycles and (by default) launches a client process
// on each host when it comes up, after the infrastructure's characteristic
// start-up delay — the paper's observation that "each infrastructure
// exported its own interface for launching and terminating processes"
// (Section 5.1) becomes per-adapter launch ceremony around a common
// ClientFactory.
#pragma once

#include <memory>
#include <vector>

#include "infra/host.hpp"
#include "sim/network_model.hpp"

namespace ew::infra {

/// A running client process handle; destroying it terminates the process.
class Process {
 public:
  virtual ~Process() = default;
};

/// Creates a client process executing on `host`. The factory binds whatever
/// endpoints it needs on host.spec().name.
using ClientFactory = std::function<std::unique_ptr<Process>(SimHost&)>;

struct PoolProfile {
  core::Infra infra = core::Infra::kUnix;
  std::string site = "wan";
  std::string host_prefix = "host";
  int host_count = 8;
  double rate_median = 1e7;   // per-host peak ops/sec (lognormal median)
  double rate_sigma = 0.4;    // lognormal shape across hosts
  /// Overrides the lognormal draw when set (e.g. Java's two JIT/interpreted
  /// tiers, Section 5.6).
  std::function<double(int index, Rng& rng)> rate_fn;
  sim::Ar1Process::Params load;
  sim::DurationSampler::Params churn;
  Duration relaunch_delay = 30 * kSecond;  // launch ceremony after host-up
  double initially_up = 0.85;
};

class HostPool {
 public:
  HostPool(sim::EventQueue& events, sim::SimTransport& transport,
           sim::NetworkModel& network, PoolProfile profile, std::uint64_t seed);
  ~HostPool();
  HostPool(const HostPool&) = delete;
  HostPool& operator=(const HostPool&) = delete;

  /// Create hosts, register their sites, start churn, and launch clients on
  /// up hosts via `factory` (after relaunch_delay).
  void start(ClientFactory factory);
  void stop();

  [[nodiscard]] int hosts_total() const { return static_cast<int>(hosts_.size()); }
  [[nodiscard]] int hosts_up() const;
  /// Hosts that are up AND currently running a client (Figure 3b counts
  /// hosts delivering cycles, not merely powered).
  [[nodiscard]] int hosts_active() const;
  [[nodiscard]] double aggregate_rate() const;
  [[nodiscard]] const PoolProfile& profile() const { return profile_; }
  [[nodiscard]] std::vector<std::unique_ptr<SimHost>>& hosts() { return hosts_; }

  /// Reclaim a deterministic fraction of up hosts (judging-time spike).
  void reclaim_fraction(double fraction, Duration at_least);
  /// Ambient CPU contention multiplier for all hosts.
  void set_pressure(double factor);

  /// Adapter hook: launch ceremony. The default schedules `factory` after
  /// relaunch_delay; adapters override wiring via set_launch_hook to add
  /// staging, brokering, or kill quirks. The hook is responsible for calling
  /// run_client(i) eventually (or not, if launch fails).
  using LaunchHook = std::function<void(std::size_t host_index)>;
  void set_launch_hook(LaunchHook hook) { launch_hook_ = std::move(hook); }

  /// Instantiate the client on host i now (idempotent while up).
  void run_client(std::size_t host_index);
  /// Kill the client on host i (host stays up).
  void kill_client(std::size_t host_index);
  [[nodiscard]] bool client_running(std::size_t host_index) const;

  [[nodiscard]] std::uint64_t launches() const { return launches_; }

  /// Observer invoked when a host-down kills a running client (eviction).
  void set_on_client_killed(std::function<void(std::size_t)> fn) {
    on_client_killed_ = std::move(fn);
  }

 private:
  void on_host_up(std::size_t i);
  void on_host_down(std::size_t i);

  sim::EventQueue& events_;
  sim::SimTransport& transport_;
  sim::NetworkModel& network_;
  PoolProfile profile_;
  Rng rng_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::vector<std::unique_ptr<Process>> clients_;
  ClientFactory factory_;
  LaunchHook launch_hook_;
  std::function<void(std::size_t)> on_client_killed_;
  bool running_ = false;
  std::uint64_t launches_ = 0;
};

/// The adapter interface the scenario builder consumes.
class InfraAdapter {
 public:
  virtual ~InfraAdapter() = default;
  [[nodiscard]] virtual core::Infra kind() const = 0;
  /// Start hosts + infrastructure services; clients come from `factory`.
  virtual void start(ClientFactory factory) = 0;
  virtual void stop() = 0;
  [[nodiscard]] virtual int hosts_up() const = 0;
  [[nodiscard]] virtual int hosts_active() const = 0;
  [[nodiscard]] virtual int hosts_total() const = 0;
  [[nodiscard]] virtual double aggregate_rate() const = 0;
  /// Scripted contention events (Figure 2's judging spike).
  virtual void apply_spike(const sim::Spike& spike) = 0;
  virtual void clear_spike() = 0;
};

}  // namespace ew::infra
