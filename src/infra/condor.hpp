// Condor adapter (paper Section 5.4).
//
// "In the vanilla universe, guest jobs are terminated without warning when
// a resource is reclaimed by its owner." The pool's churn process IS owner
// activity: a host going down kills the client outright (no checkpoint —
// recovery happens above, through Gossip-replicated state and scheduler
// work-unit reissue). The adapter counts evictions so tests and the
// Section 5.4 scheduler-placement ablation can measure the cost.
#pragma once

#include "infra/profiles.hpp"

namespace ew::infra {

class CondorAdapter final : public PoolAdapter {
 public:
  CondorAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                sim::NetworkModel& network, std::uint64_t seed,
                PoolProfile profile);
  CondorAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                sim::NetworkModel& network, std::uint64_t seed)
      : CondorAdapter(events, transport, network, seed,
                      default_profile(core::Infra::kCondor)) {}

  /// Guest jobs killed by owner reclamation so far.
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  std::uint64_t evictions_ = 0;
};

}  // namespace ew::infra
