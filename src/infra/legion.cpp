#include "infra/legion.hpp"

namespace ew::infra {

void TranslatorServer::forward(MsgType type, std::vector<Endpoint> targets) {
  routes_[type] = std::move(targets);
  node_.handle(type, [this, type](const IncomingMessage& m, Responder r) {
    // Legion method dispatch is not free: model the invocation overhead,
    // then relay ("the role of the translator was to invoke an appropriate
    // Legion method based on message receipt").
    node_.executor().schedule(
        opts_.processing_delay,
        [this, type, payload = m.packet.payload, r = std::move(r)] {
          relay(type, payload, r, 0, 0);
        });
  });
}

void TranslatorServer::relay(MsgType type, const Bytes& payload, Responder resp,
                             std::size_t target_index, std::size_t attempts) {
  const auto& targets = routes_.at(type);
  if (attempts >= targets.size()) {
    resp.fail(Err::kUnavailable, "all translation targets unreachable");
    return;
  }
  const Endpoint target = targets[target_index % targets.size()];
  // The translator's resilience is its own target failover (next arm of
  // this function), so each relayed call stays single-attempt: the relayed
  // request may not be idempotent at the destination.
  CallOptions relay_opts;
  relay_opts.trace_tag = "legion.relay";
  node_.call(target, type, payload, std::move(relay_opts),
             [this, type, payload, resp, target_index,
              attempts](Result<Bytes> r) {
               if (r.ok()) {
                 ++translated_;
                 resp.ok(*r);
                 return;
               }
               if (r.code() == Err::kRejected) {
                 // Application-level rejection must reach the client intact
                 // (e.g. "unregistered client" triggers re-registration).
                 resp.fail(Err::kRejected, r.error().message);
                 return;
               }
               relay(type, payload, resp, target_index + 1, attempts + 1);
             });
}

LegionAdapter::LegionAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                             sim::NetworkModel& network, std::uint64_t seed,
                             PoolProfile profile, Config config)
    : PoolAdapter(events, transport, network, std::move(profile), seed),
      config_(std::move(config)) {
  network.set_site(config_.gate_host, pool_.profile().site);
  node_.emplace(events, transport, Endpoint{config_.gate_host, 801});
  translator_.emplace(*node_, config_.translator);
}

void LegionAdapter::start(ClientFactory factory) {
  node_->start();
  PoolAdapter::start(std::move(factory));
}

void LegionAdapter::stop() {
  PoolAdapter::stop();
  node_->stop();
}

}  // namespace ew::infra
