// SimHost: one simulated machine.
//
// A host has a peak integer-op rate (what the Ramsey kernels would measure
// on it), a mean-reverting load process (time-sharing with other users —
// the client only gets a fraction of peak), and an availability churn
// process (owner reclamation, batch expiry, reboots, browsers closing).
// When a host goes down its transport endpoints go silent — exactly how the
// toolkit experiences failure — and the owning pool kills the client
// process, losing its local state (the paper's first state class).
#pragma once

#include <functional>
#include <string>

#include "common/rng.hpp"
#include "core/protocol.hpp"
#include "sim/event_queue.hpp"
#include "sim/sim_transport.hpp"
#include "sim/traces.hpp"

namespace ew::infra {

struct HostSpec {
  std::string name;           // unique; also the endpoint host
  std::string site;           // network site (latency domain)
  core::Infra infra = core::Infra::kUnix;
  double ops_per_sec = 1e7;   // peak deliverable integer-op rate
};

class SimHost {
 public:
  SimHost(sim::EventQueue& events, sim::SimTransport& transport, HostSpec spec,
          sim::Ar1Process::Params load, sim::DurationSampler::Params churn,
          std::uint64_t seed);

  /// Begin the availability/load processes.
  void start(bool initially_up);
  /// Permanent stop (end of scenario).
  void shutdown();

  [[nodiscard]] const HostSpec& spec() const { return spec_; }
  [[nodiscard]] bool up() const { return up_; }
  /// Deliverable ops/sec for a guest job right now (0 when down).
  [[nodiscard]] double current_rate() const;

  void set_on_up(std::function<void()> fn) { on_up_ = std::move(fn); }
  void set_on_down(std::function<void()> fn) { on_down_ = std::move(fn); }

  /// Reclaim the host now; it stays down at least `at_least` (plus the
  /// normal sampled downtime). No-op when already down.
  void force_down(Duration at_least);

  /// Ambient CPU contention multiplier on the load process mean (judging
  /// spike); 1.0 = normal.
  void set_pressure(double factor) { load_.set_pressure(factor); }

  [[nodiscard]] std::uint64_t up_transitions() const { return up_transitions_; }

 private:
  void go_up();
  void go_down(Duration extra_down);
  void schedule_load_step();

  sim::EventQueue& events_;
  sim::SimTransport& transport_;
  HostSpec spec_;
  sim::Ar1Process load_;
  sim::DurationSampler churn_;
  Rng rng_;
  bool up_ = false;
  bool running_ = false;
  std::uint64_t up_transitions_ = 0;
  std::function<void()> on_up_;
  std::function<void()> on_down_;
  TimerId transition_timer_ = kInvalidTimer;
  TimerId load_timer_ = kInvalidTimer;
};

}  // namespace ew::infra
