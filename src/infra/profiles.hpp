// Default pool profiles per infrastructure, calibrated against the SC98
// deployment (paper Figures 3-4), plus the shared PoolAdapter base.
//
// Host counts follow Figure 3b (Condor ~110 hosts, NT ~70, Legion ~30,
// Globus ~25, Unix ~15, Java ~12, NetSolve ~3); per-host rates are set so
// the per-infrastructure delivered-performance curves peak near Figure 3a's
// levels (Condor ~0.9 Gops/s, NT ~0.7, Unix ~0.35, Globus ~0.25, Legion
// ~0.2, Java ~2e7, NetSolve ~3e6; total ~2.4 Gops/s). Churn parameters are
// chosen per infrastructure character: Condor workstations are reclaimed by
// owners frequently, batch gangs hold nodes for hours, Java browser sessions
// are minutes long, NetSolve/Unix servers are stable.
#pragma once

#include "infra/pool.hpp"

namespace ew::infra {

PoolProfile default_profile(core::Infra kind);

/// Adapter over a single HostPool with spike plumbing; concrete adapters
/// derive and add their infrastructure's services and quirks.
class PoolAdapter : public InfraAdapter {
 public:
  PoolAdapter(sim::EventQueue& events, sim::SimTransport& transport,
              sim::NetworkModel& network, PoolProfile profile,
              std::uint64_t seed)
      : events_(events),
        transport_(transport),
        network_(network),
        pool_(events, transport, network, std::move(profile), seed) {}

  [[nodiscard]] core::Infra kind() const override { return pool_.profile().infra; }
  void start(ClientFactory factory) override { pool_.start(std::move(factory)); }
  void stop() override { pool_.stop(); }
  [[nodiscard]] int hosts_up() const override { return pool_.hosts_up(); }
  [[nodiscard]] int hosts_active() const override { return pool_.hosts_active(); }
  [[nodiscard]] int hosts_total() const override { return pool_.hosts_total(); }
  [[nodiscard]] double aggregate_rate() const override { return pool_.aggregate_rate(); }

  void apply_spike(const sim::Spike& spike) override {
    pool_.set_pressure(spike.cpu_pressure);
    if (spike.reclaim_fraction > 0) {
      pool_.reclaim_fraction(spike.reclaim_fraction, spike.end - spike.start);
    }
  }
  void clear_spike() override { pool_.set_pressure(1.0); }

  [[nodiscard]] HostPool& pool() { return pool_; }

 protected:
  sim::EventQueue& events_;
  sim::SimTransport& transport_;
  sim::NetworkModel& network_;
  HostPool pool_;
};

}  // namespace ew::infra
