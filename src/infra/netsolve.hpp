// NetSolve adapter (paper Section 5.7).
//
// NetSolve provides "brokered remote procedure invocation": computational
// servers advertise capabilities to an agent; clients call a typed
// procedural interface and the agent picks a server. Here the agent is a
// real protocol actor: pool hosts advertise themselves as they come up
// (kNetSolveRegister), and the application's control site requests the
// Ramsey "procedure" (kNetSolveRequest), after which the agent dispatches
// the client code to every advertised server. Like Globus, nothing runs
// until the request arrives — NetSolve was grafted on late at SC98, by a
// team that had never seen EveryWare before, and the thin brokered surface
// is exactly why that worked.
#pragma once

#include <set>

#include "core/protocol.hpp"
#include "forecast/timeout.hpp"
#include "infra/profiles.hpp"
#include "net/node.hpp"

namespace ew::infra {

class NetSolveAdapter final : public InfraAdapter {
 public:
  struct Config {
    std::string agent_host = "netsolve-agent";
    Duration dispatch_delay = 10 * kSecond;  // broker + marshalling overhead
  };

  NetSolveAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                  sim::NetworkModel& network, std::uint64_t seed,
                  PoolProfile profile, Config config);
  NetSolveAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                  sim::NetworkModel& network, std::uint64_t seed)
      : NetSolveAdapter(events, transport, network, seed,
                        default_profile(core::Infra::kNetSolve), Config{}) {}

  void start(ClientFactory factory) override;
  void stop() override;
  [[nodiscard]] core::Infra kind() const override { return core::Infra::kNetSolve; }
  [[nodiscard]] int hosts_up() const override { return pool_.hosts_up(); }
  [[nodiscard]] int hosts_active() const override { return pool_.hosts_active(); }
  [[nodiscard]] int hosts_total() const override { return pool_.hosts_total(); }
  [[nodiscard]] double aggregate_rate() const override { return pool_.aggregate_rate(); }
  void apply_spike(const sim::Spike& spike) override;
  void clear_spike() override { pool_.set_pressure(1.0); }

  [[nodiscard]] Endpoint agent_endpoint() const { return agent_->self(); }
  [[nodiscard]] bool requested() const { return requested_; }
  [[nodiscard]] std::size_t advertised_servers() const { return advertised_.size(); }
  [[nodiscard]] HostPool& pool() { return pool_; }

 private:
  void on_request(const Responder& resp);

  sim::EventQueue& events_;
  Config config_;
  HostPool pool_;
  std::optional<Node> agent_;
  bool requested_ = false;
  bool running_ = false;
  std::set<std::size_t> advertised_;  // host indices known to the agent
};

}  // namespace ew::infra
