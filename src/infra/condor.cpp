#include "infra/condor.hpp"

namespace ew::infra {

CondorAdapter::CondorAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                             sim::NetworkModel& network, std::uint64_t seed,
                             PoolProfile profile)
    : PoolAdapter(events, transport, network, std::move(profile), seed) {
  pool_.set_on_client_killed([this](std::size_t) { ++evictions_; });
}

}  // namespace ew::infra
