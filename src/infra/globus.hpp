// Globus adapter: GRAM + GASS + MDS (paper Section 5.2, Figure 5).
//
// The paper's "light switch": a single point of control that activates the
// Globus side of the application. We implement the three services as real
// protocol actors on a stable control host:
//   * MDS  (kMdsQuery)  — directory: where the gatekeeper and GASS are, and
//     how many nodes are free ("crude, but effective, resource discovery"),
//   * GRAM (kGramAuth / kGramSubmit) — the gatekeeper: a lightweight
//     authenticate-only operation, then remote process invocation,
//   * GASS (kGassFetch) — the binary repository; the gatekeeper is used as a
//     "grappling hook", automatically staging the right executable image.
//
// Until a kGramSubmit arrives, Globus hosts idle — flipping the switch is
// the application's job (src/app/light_switch.hpp, wired into the scenario
// assembly and exercised directly in tests/test_infra.cpp). After submission, every host that comes up is staged (first
// launch pays the GASS transfer for its binary) and started.
#pragma once

#include <optional>

#include "core/protocol.hpp"
#include "infra/profiles.hpp"
#include "net/node.hpp"

namespace ew::infra {

class GlobusAdapter final : public InfraAdapter {
 public:
  struct Config {
    std::string control_host = "globus-control";
    std::string control_site = "globus";
    std::size_t binary_size = 256 * 1024;  // bytes staged per architecture
    Duration gram_overhead = 20 * kSecond;  // submission->running latency
  };

  GlobusAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                sim::NetworkModel& network, std::uint64_t seed,
                PoolProfile profile, Config config);
  GlobusAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                sim::NetworkModel& network, std::uint64_t seed)
      : GlobusAdapter(events, transport, network, seed,
                      default_profile(core::Infra::kGlobus), Config{}) {}

  void start(ClientFactory factory) override;
  void stop() override;
  [[nodiscard]] core::Infra kind() const override { return core::Infra::kGlobus; }
  [[nodiscard]] int hosts_up() const override { return pool_.hosts_up(); }
  [[nodiscard]] int hosts_active() const override { return pool_.hosts_active(); }
  [[nodiscard]] int hosts_total() const override { return pool_.hosts_total(); }
  [[nodiscard]] double aggregate_rate() const override { return pool_.aggregate_rate(); }
  void apply_spike(const sim::Spike& spike) override;
  void clear_spike() override { pool_.set_pressure(1.0); }

  [[nodiscard]] Endpoint mds_endpoint() const { return mds_->self(); }
  [[nodiscard]] Endpoint gram_endpoint() const { return gram_->self(); }
  [[nodiscard]] Endpoint gass_endpoint() const { return gass_->self(); }
  [[nodiscard]] bool switched_on() const { return switched_on_; }
  [[nodiscard]] std::uint64_t gass_fetches() const { return gass_fetches_; }
  [[nodiscard]] HostPool& pool() { return pool_; }

 private:
  void on_mds_query(const Responder& resp);
  void on_submit(const IncomingMessage& msg, const Responder& resp);
  void stage_and_launch(std::size_t i);

  sim::EventQueue& events_;
  Config config_;
  HostPool pool_;
  std::optional<Node> mds_;
  std::optional<Node> gram_;
  std::optional<Node> gass_;
  bool switched_on_ = false;
  bool binary_cached_ = false;
  bool staging_in_flight_ = false;
  std::vector<std::size_t> awaiting_stage_;  // hosts queued behind the fetch
  std::uint64_t gass_fetches_ = 0;
  bool running_ = false;
};

}  // namespace ew::infra
