#include "infra/unix.hpp"

// UnixAdapter is fully defined in the header; this translation unit anchors
// the vtable.
namespace ew::infra {}
