#include "infra/netsolve.hpp"

namespace ew::infra {

NetSolveAdapter::NetSolveAdapter(sim::EventQueue& events,
                                 sim::SimTransport& transport,
                                 sim::NetworkModel& network, std::uint64_t seed,
                                 PoolProfile profile, Config config)
    : events_(events),
      config_(std::move(config)),
      pool_(events, transport, network, std::move(profile), seed) {
  network.set_site(config_.agent_host, pool_.profile().site);
  agent_.emplace(events, transport, Endpoint{config_.agent_host, 901});
}

void NetSolveAdapter::start(ClientFactory factory) {
  if (running_) return;
  running_ = true;
  agent_->start();
  agent_->handle(core::msgtype::kNetSolveRequest,
                 [this](const IncomingMessage&, Responder r) { on_request(r); });
  pool_.set_launch_hook([this](std::size_t i) {
    // The server advertises its capabilities to the agent as it comes up.
    advertised_.insert(i);
    if (!requested_) return;
    events_.schedule(config_.dispatch_delay, [this, i] {
      if (running_ && pool_.hosts()[i]->up()) pool_.run_client(i);
    });
  });
  pool_.start(std::move(factory));
}

void NetSolveAdapter::stop() {
  if (!running_) return;
  running_ = false;
  pool_.stop();
  agent_->stop();
}

void NetSolveAdapter::apply_spike(const sim::Spike& spike) {
  pool_.set_pressure(spike.cpu_pressure);
  if (spike.reclaim_fraction > 0) {
    pool_.reclaim_fraction(spike.reclaim_fraction, spike.end - spike.start);
  }
}

void NetSolveAdapter::on_request(const Responder& resp) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(advertised_.size()));
  resp.ok(w.take());
  if (requested_) return;
  requested_ = true;
  for (std::size_t i : advertised_) {
    if (!pool_.hosts()[i]->up() || pool_.client_running(i)) continue;
    events_.schedule(config_.dispatch_delay, [this, i] {
      if (running_ && pool_.hosts()[i]->up()) pool_.run_client(i);
    });
  }
}

}  // namespace ew::infra
