#include "infra/globus.hpp"

#include "gossip/protocol.hpp"

namespace ew::infra {

GlobusAdapter::GlobusAdapter(sim::EventQueue& events, sim::SimTransport& transport,
                             sim::NetworkModel& network, std::uint64_t seed,
                             PoolProfile profile, Config config)
    : events_(events),
      config_(std::move(config)),
      pool_(events, transport, network, std::move(profile), seed) {
  network.set_site(config_.control_host, config_.control_site);
  mds_.emplace(events, transport, Endpoint{config_.control_host, 701});
  gram_.emplace(events, transport, Endpoint{config_.control_host, 702});
  gass_.emplace(events, transport, Endpoint{config_.control_host, 703});
}

void GlobusAdapter::start(ClientFactory factory) {
  if (running_) return;
  running_ = true;
  mds_->start();
  gram_->start();
  gass_->start();

  mds_->handle(core::msgtype::kMdsQuery,
               [this](const IncomingMessage&, Responder r) { on_mds_query(r); });
  gram_->handle(core::msgtype::kGramAuth,
                [](const IncomingMessage&, Responder r) { r.ok(); });
  gram_->handle(core::msgtype::kGramSubmit,
                [this](const IncomingMessage& m, Responder r) { on_submit(m, r); });
  gass_->handle(core::msgtype::kGassFetch,
                [this](const IncomingMessage& m, Responder r) {
                  Reader rd(m.packet.payload);
                  auto name = rd.str();
                  if (!name) {
                    r.fail(Err::kProtocol, "missing binary name");
                    return;
                  }
                  ++gass_fetches_;
                  r.ok(Bytes(config_.binary_size, 0));
                });

  pool_.set_launch_hook([this](std::size_t i) {
    if (switched_on_) stage_and_launch(i);
    // Not switched on: the host idles until a submission arrives.
  });
  pool_.start(std::move(factory));
}

void GlobusAdapter::stop() {
  if (!running_) return;
  running_ = false;
  pool_.stop();
  mds_->stop();
  gram_->stop();
  gass_->stop();
}

void GlobusAdapter::apply_spike(const sim::Spike& spike) {
  pool_.set_pressure(spike.cpu_pressure);
  if (spike.reclaim_fraction > 0) {
    pool_.reclaim_fraction(spike.reclaim_fraction, spike.end - spike.start);
  }
}

void GlobusAdapter::on_mds_query(const Responder& resp) {
  Writer w;
  gossip::write_endpoint(w, gram_->self());
  gossip::write_endpoint(w, gass_->self());
  w.u32(static_cast<std::uint32_t>(pool_.hosts_up()));
  resp.ok(w.take());
}

void GlobusAdapter::on_submit(const IncomingMessage& msg, const Responder& resp) {
  Reader r(msg.packet.payload);
  auto binary = r.str();
  if (!binary) {
    resp.fail(Err::kProtocol, "missing binary name");
    return;
  }
  resp.ok();
  if (switched_on_) return;
  switched_on_ = true;
  for (std::size_t i = 0; i < pool_.hosts().size(); ++i) {
    if (pool_.hosts()[i]->up() && !pool_.client_running(i)) stage_and_launch(i);
  }
}

void GlobusAdapter::stage_and_launch(std::size_t i) {
  if (binary_cached_) {
    events_.schedule(config_.gram_overhead, [this, i] {
      if (running_) pool_.run_client(i);
    });
    return;
  }
  awaiting_stage_.push_back(i);
  if (staging_in_flight_) return;  // one fetch serves every waiting host
  staging_in_flight_ = true;
  // First launch: the gatekeeper pulls the image from the GASS repository
  // ("using the gatekeeper as a grappling hook").
  Writer w;
  w.str("ramsey-client");
  // A GASS fetch is a read of an immutable binary image: retry freely
  // before falling back to the 30s re-stage below.
  CallOptions fetch;
  fetch.retry = RetryPolicy::standard(2);
  fetch.trace_tag = "globus.gass";
  gram_->call(gass_->self(), core::msgtype::kGassFetch, w.take(),
              std::move(fetch), [this](Result<Bytes> r) {
                if (!running_) return;
                staging_in_flight_ = false;
                const std::vector<std::size_t> waiting = std::move(awaiting_stage_);
                awaiting_stage_.clear();
                if (!r.ok()) {
                  // Retry staging for the waiting hosts after a beat.
                  events_.schedule(30 * kSecond, [this, waiting] {
                    if (!running_ || !switched_on_) return;
                    for (std::size_t i : waiting) {
                      if (pool_.hosts()[i]->up()) stage_and_launch(i);
                    }
                  });
                  return;
                }
                binary_cached_ = true;
                for (std::size_t i : waiting) {
                  events_.schedule(config_.gram_overhead, [this, i] {
                    if (running_ && pool_.hosts()[i]->up()) pool_.run_client(i);
                  });
                }
              });
}

}  // namespace ew::infra
