// WishDaemon: the wide-area interactive shell's per-host server role.
//
// One daemon per simulated host. It spawns and supervises simulated jobs
// (the job table, crash-stop soft state), serves the global environment
// (EnvStore replica synchronized through the gossip StateStore), and
// coordinates/participates in the inter-job synchronization primitives:
//
//   * barrier — participants re-enter at the coordinator until the
//     coordinator REPLIES released, which survives a coordinator
//     crash-restart (the restarted coordinator rebuilds its arrival set
//     from the re-enters); a release push keeps the happy path fast;
//   * leader-once — first claim wins, scoped to the coordinator's
//     incarnation (a restart forgets the winner, and says so);
//   * scatter/gather — an MPICH-G2-style k-ary distribution tree whose
//     gather (delivered count + order-independent checksum) rides the call
//     replies back to the root.
//
// Every collective hop is a short-lived Node::call with retry + hedging, so
// the primitives exercise the call layer's bursty-traffic behavior — the
// opposite shape from the long-running Ramsey clients.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gossip/state.hpp"
#include "gossip/sync_client.hpp"
#include "net/node.hpp"
#include "obs/registry.hpp"
#include "wish/env_store.hpp"
#include "wish/job_table.hpp"
#include "wish/protocol.hpp"

namespace ew::wish {

class WishDaemon {
 public:
  struct Options {
    /// Bumped by the scenario on every restart; the high half of job ids
    /// and the scope of leader-once wins.
    std::uint64_t incarnation = 1;
    /// Every WISH daemon endpoint, in the SAME order on every daemon —
    /// collective coordinators are chosen by hashing the primitive's name
    /// over this list.
    std::vector<Endpoint> peers;
    /// Gossip pool for env synchronization; empty = env stays local.
    std::vector<Endpoint> gossips;
    /// How often a waiting participant re-enters an unconfirmed barrier.
    Duration barrier_reenter = 2 * kSecond;
    /// Children per node in the scatter distribution tree.
    std::uint32_t scatter_fanout = 2;
    /// Spawn backpressure: refuse (kOverloaded) past this many live jobs.
    std::uint32_t max_jobs = 1u << 20;
    /// Call options for every collective hop (fan-outs, re-enters, claims).
    CallOptions collective_call = default_collective_call();

    static CallOptions default_collective_call();
  };

  WishDaemon(Node& node, const gossip::ComparatorRegistry& comparators,
             Options opts);
  ~WishDaemon();
  WishDaemon(const WishDaemon&) = delete;
  WishDaemon& operator=(const WishDaemon&) = delete;

  void start();
  void stop();

  // --- Local API (jobs, benches and examples on this host) -------------------

  [[nodiscard]] EnvStore& env() { return env_; }
  [[nodiscard]] const EnvStore& env() const { return env_; }
  /// Local write (read-your-writes); gossip carries it grid-wide.
  std::uint64_t env_set(const std::string& key, const std::string& value);
  [[nodiscard]] std::optional<std::string> env_get(
      const std::string& key) const {
    return env_.get(key);
  }

  [[nodiscard]] JobTable& jobs() { return jobs_; }
  [[nodiscard]] std::uint64_t incarnation() const { return opts_.incarnation; }
  [[nodiscard]] const Endpoint& self() const { return node_.self(); }

  /// Fired once per (name, epoch) when the barrier releases.
  using BarrierCallback = std::function<void()>;
  void enter_barrier(const std::string& name, std::uint64_t epoch,
                     std::uint32_t expected, BarrierCallback cb);

  /// cb(won, winner, coordinator_incarnation). The win is a lease scoped to
  /// the coordinator incarnation, not a lock.
  using LeaderCallback = std::function<void(
      bool won, const std::string& winner, std::uint64_t incarnation)>;
  void leader_once(const std::string& name, std::uint64_t epoch,
                   const std::string& claimant, LeaderCallback cb);

  /// Distribute `payload` to every peer through the k-ary tree; cb gets the
  /// gathered subtree acknowledgement (delivered should equal peers.size()).
  using ScatterCallback = std::function<void(ScatterReply)>;
  void scatter(const std::string& name, std::uint64_t epoch, Bytes payload,
               ScatterCallback cb);

  /// The most recently applied scatter payload for `name` (epoch, bytes).
  [[nodiscard]] std::optional<std::pair<std::uint64_t, Bytes>> scatter_payload(
      const std::string& name) const;

  /// The coordinator this daemon (and every peer) uses for `name`.
  [[nodiscard]] Endpoint coordinator_of(const std::string& name) const;

  // --- Introspection ----------------------------------------------------------

  [[nodiscard]] std::uint64_t jobs_completed() const { return jobs_completed_; }
  [[nodiscard]] std::uint64_t barrier_rounds() const { return barrier_rounds_; }
  [[nodiscard]] std::uint64_t barrier_reentries() const { return reentries_; }
  /// Open participant-side waits (0 = no barrier in progress here).
  [[nodiscard]] std::size_t open_barrier_waits() const { return waits_.size(); }
  /// Coordinator-side winner of (name, epoch) this incarnation, if any.
  [[nodiscard]] std::optional<std::string> leader_winner(
      const std::string& name, std::uint64_t epoch) const;

 private:
  using BarrierKey = std::pair<std::string, std::uint64_t>;  // (name, epoch)

  // Coordinator-side barrier state for one (name, epoch).
  struct BarrierGroup {
    std::vector<Endpoint> arrivals;  // insertion order, deduplicated
    std::uint32_t expected = 0;
  };
  // Participant-side wait for one (name, epoch).
  struct BarrierWait {
    std::uint32_t expected = 0;
    BarrierCallback cb;      // fired once, on the first release signal
    bool released = false;   // cb fired (push or reply)
    TimerId timer = kInvalidTimer;
  };

  void register_handlers();
  void on_spawn(const IncomingMessage& msg, const Responder& resp);
  void on_poll(const IncomingMessage& msg, const Responder& resp);
  void on_signal(const IncomingMessage& msg, const Responder& resp);
  void on_reap(const IncomingMessage& msg, const Responder& resp);
  void on_env_set(const IncomingMessage& msg, const Responder& resp);
  void on_env_get(const IncomingMessage& msg, const Responder& resp);
  void on_barrier_enter(const IncomingMessage& msg, const Responder& resp);
  void on_barrier_release(const IncomingMessage& msg, const Responder& resp);
  void on_leader_claim(const IncomingMessage& msg, const Responder& resp);
  void on_scatter(const IncomingMessage& msg, const Responder& resp);

  void start_job(JobTable::Job& job);
  void finish_job(std::uint64_t id);
  void send_barrier_enter(const std::string& name, std::uint64_t epoch);
  void schedule_reenter(const std::string& name, std::uint64_t epoch);
  void release_group(const std::string& name, std::uint64_t epoch,
                     BarrierGroup& group);
  /// Forward `payload` to `targets` through the k-ary tree; done(delivered,
  /// checksum) aggregates the subtree EXCLUDING the local node.
  void fan_out(const std::string& name, std::uint64_t epoch,
               const Bytes& payload, std::vector<Endpoint> targets,
               std::function<void(std::uint32_t, std::uint64_t)> done);

  Node& node_;
  const gossip::ComparatorRegistry& comparators_;
  Options opts_;
  EnvStore env_;
  JobTable jobs_;
  std::optional<gossip::SyncClient> sync_;
  bool running_ = false;

  // Coordinator-side soft state (lost on crash; the protocols rebuild it).
  std::map<BarrierKey, BarrierGroup> groups_;
  std::map<std::string, std::uint64_t> released_floor_;  // name -> max epoch
  std::map<BarrierKey, std::string> leaders_;
  // Participant-side state.
  std::map<BarrierKey, BarrierWait> waits_;
  std::map<std::string, std::pair<std::uint64_t, Bytes>> scatter_applied_;

  std::uint64_t jobs_completed_ = 0;
  std::uint64_t barrier_rounds_ = 0;
  std::uint64_t reentries_ = 0;

  // Process-registry instruments (shared across daemons, like gossip's).
  obs::Counter* c_spawned_;
  obs::Counter* c_completed_;
  obs::Counter* c_killed_;
  obs::Counter* c_unknown_polls_;
  obs::Counter* c_env_sets_;
  obs::Counter* c_env_merges_;
  obs::Counter* c_ghost_remints_;
  obs::Counter* c_barrier_rounds_;
  obs::Counter* c_reentries_;
  obs::Counter* c_leader_claims_;
  obs::Counter* c_scatter_forwards_;
};

}  // namespace ew::wish
