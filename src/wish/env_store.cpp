#include "wish/env_store.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "gossip/state.hpp"
#include "wish/protocol.hpp"

namespace ew::wish {

std::uint64_t EnvStore::set(const std::string& key, const std::string& value) {
  Entry& e = map_[key];
  // Mint above whatever version this replica has seen for the key —
  // including a merged-in ghost from a previous incarnation — so the write
  // dominates everything known locally.
  e.version = e.version + 1;
  e.value = value;
  e.writer = writer_;
  e.own = true;
  ++sets_;
  ++mint_;
  return e.version;
}

std::optional<std::string> EnvStore::get(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second.value;
}

std::optional<EnvStore::Entry> EnvStore::entry(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

Bytes EnvStore::body() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(map_.size()));
  for (const auto& [key, e] : map_) {
    w.str(key);
    w.str(e.value);
    w.u64(e.version);
    w.u64(e.writer);
  }
  return w.take();
}

Bytes EnvStore::snapshot() const {
  return gossip::versioned_blob(mint_, body());
}

Status EnvStore::apply(const Bytes& blob) {
  auto version = gossip::blob_version(blob);
  if (!version) return version.error();
  auto body_bytes = gossip::blob_body(blob);
  if (!body_bytes) return body_bytes.error();

  // Parse the whole incoming entry list before touching the map: a
  // malformed blob must not leave a half-merged replica.
  Reader r(*body_bytes);
  auto count = r.u32();
  if (!count) return count.error();
  // Same guard shape as the wire codecs: ceiling AND remaining-bytes bound
  // (each entry needs at least two empty strings + two u64 stamps).
  constexpr std::size_t kMinEntry = 4 + 4 + 8 + 8;
  if (*count > kMaxWishBatch || *count > r.remaining() / kMinEntry) {
    return Status(Err::kProtocol, "oversized env blob");
  }
  struct Incoming {
    std::string key, value;
    std::uint64_t version, writer;
  };
  std::vector<Incoming> in;
  in.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto key = r.str();
    if (!key) return key.error();
    auto value = r.str();
    if (!value) return value.error();
    auto ver = r.u64();
    if (!ver) return ver.error();
    auto writer = r.u64();
    if (!writer) return writer.error();
    in.push_back(Incoming{std::move(*key), std::move(*value), *ver, *writer});
  }

  for (auto& inc : in) {
    Entry& e = map_[inc.key];  // default-constructs version 0 when absent
    if (inc.writer == writer_ && !e.own && e.version == 0) {
      // Our own entry echoed back for a key this incarnation never wrote
      // and never merged: adopt it (it IS our latest surviving write).
      e.value = std::move(inc.value);
      e.version = inc.version;
      e.writer = inc.writer;
      continue;
    }
    if (inc.writer == writer_ && e.own && inc.version > e.version) {
      // The pre-crash ghost: an entry stamped with OUR id, above a version
      // we wrote this incarnation. Keep the current value and re-mint it
      // past the ghost so the live write dominates grid-wide instead of
      // being silently shadowed forever (see the StateStore ghost pin).
      e.version = inc.version + 1;
      ++ghost_remints_;
      continue;
    }
    if (inc.version > e.version ||
        (inc.version == e.version && inc.writer > e.writer)) {
      e.value = std::move(inc.value);
      e.version = inc.version;
      e.writer = inc.writer;
      e.own = e.own && inc.writer == writer_;
    }
    // Else: ours is fresher (or the deterministic tie-break kept it); the
    // union we re-publish below carries it back out.
  }

  // Blob-level re-mint-above-floor: never publish under a version the grid
  // has already passed. If the merge left us bit-identical to the incoming
  // snapshot, adopt its mint so replicas reach a kEqual fixpoint instead of
  // version-racing forever; otherwise mint one past the max so our union
  // wins the next digest exchange.
  const std::uint64_t floor = std::max(mint_, *version);
  mint_ = (body() == *body_bytes) ? floor : floor + 1;
  ++merges_;
  return Status{};
}

std::uint64_t EnvStore::content_digest() const {
  std::uint64_t sum = 0;
  for (const auto& [key, e] : map_) {
    std::uint64_t h = fnv1a64(key);
    h = h * 1099511628211ULL ^ fnv1a64(e.value);
    h = h * 1099511628211ULL ^ e.version;
    h = h * 1099511628211ULL ^ e.writer;
    sum += h;  // commutative fold: map order cannot matter
  }
  return sum;
}

}  // namespace ew::wish
