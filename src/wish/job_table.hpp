// The WISH daemon's job table: simulated processes spawned on a host.
//
// Jobs are crash-stop soft state — a daemon restart loses the table, and a
// poll for an id the (new incarnation of the) daemon does not know answers
// JobState::kLost. Ids embed the daemon's incarnation in the high 32 bits,
// so a restarted daemon can never re-issue an id a client already holds.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/clock.hpp"
#include "net/endpoint.hpp"
#include "net/executor.hpp"
#include "wish/protocol.hpp"

namespace ew::wish {

class JobTable {
 public:
  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    Endpoint owner;
    JobState state = JobState::kQueued;
    std::int64_t exit_code = 0;
    TimePoint started = 0;
    TimerId completion = kInvalidTimer;  // owned by the daemon
  };

  explicit JobTable(std::uint64_t incarnation) : incarnation_(incarnation) {}

  /// Admit one job (kQueued). The daemon transitions it to kRunning and
  /// schedules its completion.
  Job& spawn(const JobSpec& spec, const Endpoint& owner);

  [[nodiscard]] Job* find(std::uint64_t id);
  [[nodiscard]] const Job* find(std::uint64_t id) const;

  /// The status a poll reports: kLost for unknown ids.
  [[nodiscard]] JobStatus status_of(std::uint64_t id) const;

  /// Remove `id` if present AND terminal; running jobs cannot be reaped.
  bool reap(std::uint64_t id);

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] std::uint64_t incarnation() const { return incarnation_; }
  [[nodiscard]] std::uint64_t spawned() const { return next_seq_; }

  /// All live jobs, id order (deterministic teardown/iteration).
  [[nodiscard]] std::vector<Job*> all();

 private:
  std::uint64_t incarnation_;
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, Job> jobs_;  // ordered for deterministic walks
};

}  // namespace ew::wish
