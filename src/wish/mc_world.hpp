// Model-checker fixture for the WISH synchronization primitives.
//
// Three WishDaemons (w0..w2, one barrier coordinator among them) enter one
// 3-wide barrier and race one leader-once claim while the Explorer permutes
// message interleavings and may crash/restart the coordinator host. The
// world's invariants pin the crash-safe barrier contract:
//
//   safety  — a participant's barrier callback fires at most once per enter
//             (a barrier never both releases and re-forms around the same
//             participant), and leader-once never reports two winners for
//             the same coordinator incarnation;
//   liveness — when the coordinator host is up at the end of the branch,
//             every live participant released and no wait is left open
//             (no split or hung barrier). With the coordinator crashed and
//             never restarted, only the safety half applies: crash-stop
//             soft state cannot release a barrier without its coordinator.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/mc/explorer.hpp"

namespace ew::wish {

std::unique_ptr<sim::mc::World> make_wish_world(std::uint64_t seed);

}  // namespace ew::wish
