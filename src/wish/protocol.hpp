// WISH wire surface: the interactive wide-area shell's message types.
//
// The WISH workload (ROADMAP: "a WISH-style interactive wide-area shell",
// grounded in jcnelson/wish's libwish packets and MPICH-G2-style collectives)
// is the first toolkit subsystem whose calls are short-lived and bursty —
// spawn/poll/signal/reap job control, global environment variables, and
// barrier / leader-once / scatter-gather synchronization fan-outs — the
// opposite traffic shape from the long-running Ramsey clients.
//
// Every message carries the same versioned envelope the scheduler protocol
// uses (u8 wire version + u16 kind), and every list decode is guarded by a
// count-vs-remaining-bytes check before any vector is sized, so a truncated
// or hostile frame can never drive an allocation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/serialize.hpp"
#include "gossip/protocol.hpp"
#include "net/endpoint.hpp"

namespace ew::wish {

/// Bump on incompatible changes; readers accept [1, kWishWireVersion].
constexpr std::uint8_t kWishWireVersion = 1;

/// Ceiling on every list count in the WISH protocol (jobs per spawn batch,
/// ids per poll, endpoints per scatter subtree, env entries per blob).
constexpr std::uint32_t kMaxWishBatch = 65'536;

// The 0x04xx block is WISH's (gossip owns 0x01xx, core services 0x02xx,
// state types 0x03xx).
namespace msgtype {
constexpr MsgType kJobSpawn = 0x0401;       // SpawnRequest -> SpawnReply
constexpr MsgType kJobPoll = 0x0402;        // PollRequest -> PollReply
constexpr MsgType kJobSignal = 0x0403;      // SignalRequest -> SignalReply
constexpr MsgType kJobReap = 0x0404;        // ReapRequest -> ReapReply
constexpr MsgType kEnvSet = 0x0405;         // EnvSetRequest -> EnvSetReply
constexpr MsgType kEnvGet = 0x0406;         // EnvGetRequest -> EnvGetReply
constexpr MsgType kBarrierEnter = 0x0407;   // BarrierEnter -> BarrierEnterReply
constexpr MsgType kBarrierRelease = 0x0408; // BarrierRelease -> ok()
constexpr MsgType kLeaderClaim = 0x0409;    // LeaderClaim -> LeaderReply
constexpr MsgType kScatter = 0x040a;        // ScatterRequest -> ScatterReply
}  // namespace msgtype

namespace statetype {
/// The global environment blob synchronized through the gossip StateStore
/// (one blob type for the whole grid; 0x03xx is the shared state block —
/// core::statetype owns 0x0301/0x0302).
constexpr MsgType kWishEnv = 0x0303;
}  // namespace statetype

void write_wish_header(Writer& w, MsgType kind);
Result<std::uint8_t> read_wish_header(Reader& r, MsgType kind);

// --- Job table ---------------------------------------------------------------

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kExited = 2,
  kKilled = 3,
  kLost = 4,  // the daemon restarted and has no record of the id
};
constexpr std::uint8_t kJobStateCount = 5;
[[nodiscard]] const char* job_state_name(JobState s);
[[nodiscard]] inline bool job_state_terminal(JobState s) {
  return s == JobState::kExited || s == JobState::kKilled || s == JobState::kLost;
}

/// One simulated job: a command string and how long it runs on the host.
struct JobSpec {
  std::string command;
  Duration runtime = kSecond;

  static constexpr std::size_t kMinWire = 4 + 8;  // empty str + i64 runtime
  void write(Writer& w) const;
  static Result<JobSpec> read(Reader& r);
};

/// Spawn a batch of jobs on the target daemon.
struct SpawnRequest {
  Endpoint owner;  // the submitting client, for the job record
  std::vector<JobSpec> jobs;

  [[nodiscard]] Bytes serialize() const;
  static Result<SpawnRequest> deserialize(const Bytes& data);
};

struct SpawnReply {
  std::uint64_t incarnation = 0;  // the daemon's, so owners spot restarts
  std::vector<std::uint64_t> ids;

  [[nodiscard]] Bytes serialize() const;
  static Result<SpawnReply> deserialize(const Bytes& data);
};

struct PollRequest {
  std::vector<std::uint64_t> ids;

  [[nodiscard]] Bytes serialize() const;
  static Result<PollRequest> deserialize(const Bytes& data);
};

struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kLost;
  std::int64_t exit_code = 0;

  static constexpr std::size_t kMinWire = 8 + 1 + 8;
  void write(Writer& w) const;
  static Result<JobStatus> read(Reader& r);
};

struct PollReply {
  std::uint64_t incarnation = 0;
  std::vector<JobStatus> jobs;  // one per requested id, in request order

  [[nodiscard]] Bytes serialize() const;
  static Result<PollReply> deserialize(const Bytes& data);
};

struct SignalRequest {
  std::uint64_t id = 0;
  std::uint8_t signum = 9;  // only kill is modeled

  [[nodiscard]] Bytes serialize() const;
  static Result<SignalRequest> deserialize(const Bytes& data);
};

struct SignalReply {
  JobState state = JobState::kLost;  // the job's state after the signal

  [[nodiscard]] Bytes serialize() const;
  static Result<SignalReply> deserialize(const Bytes& data);
};

struct ReapRequest {
  std::vector<std::uint64_t> ids;

  [[nodiscard]] Bytes serialize() const;
  static Result<ReapRequest> deserialize(const Bytes& data);
};

struct ReapReply {
  std::uint32_t reaped = 0;  // terminal jobs actually removed

  [[nodiscard]] Bytes serialize() const;
  static Result<ReapReply> deserialize(const Bytes& data);
};

// --- Global environment ------------------------------------------------------

struct EnvSetRequest {
  std::string key;
  std::string value;

  [[nodiscard]] Bytes serialize() const;
  static Result<EnvSetRequest> deserialize(const Bytes& data);
};

struct EnvSetReply {
  std::uint64_t version = 0;  // the entry's per-key version after the write

  [[nodiscard]] Bytes serialize() const;
  static Result<EnvSetReply> deserialize(const Bytes& data);
};

struct EnvGetRequest {
  std::string key;

  [[nodiscard]] Bytes serialize() const;
  static Result<EnvGetRequest> deserialize(const Bytes& data);
};

struct EnvGetReply {
  bool found = false;
  std::string value;
  std::uint64_t version = 0;

  [[nodiscard]] Bytes serialize() const;
  static Result<EnvGetReply> deserialize(const Bytes& data);
};

// --- Synchronization primitives ----------------------------------------------

/// A participant announces itself at the barrier's coordinator. Re-sent
/// periodically until the coordinator *replies* released=true, which makes
/// the protocol survive a coordinator crash-restart: the restarted
/// coordinator rebuilds its arrival set from the re-enters (participants
/// that saw the release push keep re-entering until the reply confirms it,
/// so the set always re-reaches `expected`).
struct BarrierEnter {
  std::string name;
  std::uint64_t epoch = 0;
  std::uint32_t expected = 0;  // arrivals that complete the barrier
  Endpoint participant;        // where the release push goes
  /// Release-knowledge contagion: true when this participant already saw a
  /// release push for the epoch and is re-entering only for confirmation. A
  /// coordinator that restarted (and so forgot its released floor) restores
  /// it from any such witness — without this, a rebuilt arrival set can
  /// never re-reach `expected` once the already-confirmed participants have
  /// stopped re-entering, and the unconfirmed remainder hangs.
  bool released_seen = false;

  [[nodiscard]] Bytes serialize() const;
  static Result<BarrierEnter> deserialize(const Bytes& data);
};

struct BarrierEnterReply {
  bool released = false;  // this epoch is complete at the coordinator
  std::uint64_t coordinator_incarnation = 0;

  [[nodiscard]] Bytes serialize() const;
  static Result<BarrierEnterReply> deserialize(const Bytes& data);
};

/// Coordinator -> participant push when the barrier completes (a latency
/// optimization over waiting for the next re-enter reply).
struct BarrierRelease {
  std::string name;
  std::uint64_t epoch = 0;

  [[nodiscard]] Bytes serialize() const;
  static Result<BarrierRelease> deserialize(const Bytes& data);
};

/// First claim wins for (name, epoch) at the coordinator. The win is scoped
/// to the coordinator's incarnation: a crash-restart forgets the winner, so
/// callers treating the win as a lock must watch coordinator_incarnation.
struct LeaderClaim {
  std::string name;
  std::uint64_t epoch = 0;
  std::string claimant;

  [[nodiscard]] Bytes serialize() const;
  static Result<LeaderClaim> deserialize(const Bytes& data);
};

struct LeaderReply {
  std::string winner;
  std::uint64_t coordinator_incarnation = 0;

  [[nodiscard]] Bytes serialize() const;
  static Result<LeaderReply> deserialize(const Bytes& data);
};

/// One hop of the MPICH-G2-style k-ary distribution tree. The receiver
/// applies `payload`, splits `subtree` into fan-out slices, forwards one
/// ScatterRequest per slice head, and replies with the gathered subtree
/// acknowledgement (delivered count + order-independent checksum) once its
/// children answer — the gather rides the call replies back up the tree.
struct ScatterRequest {
  std::string name;
  std::uint64_t epoch = 0;
  Bytes payload;
  std::vector<Endpoint> subtree;  // endpoints below the receiver, in order

  [[nodiscard]] Bytes serialize() const;
  static Result<ScatterRequest> deserialize(const Bytes& data);
};

struct ScatterReply {
  std::uint32_t delivered = 0;   // receiver + its whole subtree
  std::uint64_t checksum = 0;    // sum over per-node fold (order-independent)

  [[nodiscard]] Bytes serialize() const;
  static Result<ScatterReply> deserialize(const Bytes& data);
};

/// The per-node contribution to the gather checksum: the payload folded with
/// the applying endpoint, summed (commutatively) up the tree.
[[nodiscard]] std::uint64_t scatter_fold(const Endpoint& self,
                                         const Bytes& payload);

}  // namespace ew::wish
