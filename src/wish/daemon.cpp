#include "wish/daemon.hpp"

#include <algorithm>
#include <memory>

#include "common/hash.hpp"
#include "obs/trace.hpp"

namespace ew::wish {

CallOptions WishDaemon::Options::default_collective_call() {
  CallOptions o;
  o.retry = RetryPolicy::standard(3);
  o.hedge = HedgePolicy::at(0.95);
  o.deadline = 10 * kSecond;
  return o;
}

WishDaemon::WishDaemon(Node& node,
                       const gossip::ComparatorRegistry& comparators,
                       Options opts)
    : node_(node),
      comparators_(comparators),
      opts_(std::move(opts)),
      // The writer id hashes the (stable) endpoint, not the incarnation:
      // a restarted daemon must recognize its pre-crash env entries as its
      // own ghosts.
      env_(fnv1a64(node.self().to_string())),
      jobs_(opts_.incarnation) {
  auto& reg = obs::registry();
  c_spawned_ = &reg.counter(obs::names::kWishJobsSpawned);
  c_completed_ = &reg.counter(obs::names::kWishJobsCompleted);
  c_killed_ = &reg.counter(obs::names::kWishJobsKilled);
  c_unknown_polls_ = &reg.counter(obs::names::kWishJobsUnknownPolls);
  c_env_sets_ = &reg.counter(obs::names::kWishEnvSets);
  c_env_merges_ = &reg.counter(obs::names::kWishEnvMerges);
  c_ghost_remints_ = &reg.counter(obs::names::kWishEnvGhostRemints);
  c_barrier_rounds_ = &reg.counter(obs::names::kWishBarrierRounds);
  c_reentries_ = &reg.counter(obs::names::kWishBarrierReentries);
  c_leader_claims_ = &reg.counter(obs::names::kWishLeaderClaims);
  c_scatter_forwards_ = &reg.counter(obs::names::kWishScatterForwards);
}

WishDaemon::~WishDaemon() { stop(); }

void WishDaemon::start() {
  if (running_) return;
  running_ = true;
  register_handlers();
  if (!opts_.gossips.empty()) {
    sync_.emplace(node_, comparators_, opts_.gossips);
    sync_->expose(statetype::kWishEnv,
                  {/*provider=*/[this] { return env_.snapshot(); },
                   /*applier=*/[this](const Bytes& blob) {
                     const std::uint64_t ghosts_before = env_.ghost_remints();
                     if (!env_.apply(blob).ok()) return;
                     c_env_merges_->inc();
                     const std::uint64_t ghosts =
                         env_.ghost_remints() - ghosts_before;
                     if (ghosts > 0) c_ghost_remints_->inc(ghosts);
                   }});
    sync_->start();
  }
}

void WishDaemon::stop() {
  if (!running_) return;
  running_ = false;
  if (sync_) {
    sync_->stop();
    sync_.reset();
  }
  for (JobTable::Job* j : jobs_.all()) {
    if (j->completion != kInvalidTimer) {
      node_.executor().cancel(j->completion);
      j->completion = kInvalidTimer;
    }
  }
  for (auto& [key, wait] : waits_) {
    if (wait.timer != kInvalidTimer) {
      node_.executor().cancel(wait.timer);
      wait.timer = kInvalidTimer;
    }
  }
  waits_.clear();
}

void WishDaemon::register_handlers() {
  const auto guard = [this](void (WishDaemon::*fn)(const IncomingMessage&,
                                                   const Responder&)) {
    return [this, fn](const IncomingMessage& msg, Responder resp) {
      if (!running_) {
        resp.fail(Err::kUnavailable, "wish daemon stopped");
        return;
      }
      (this->*fn)(msg, resp);
    };
  };
  node_.handle(msgtype::kJobSpawn, guard(&WishDaemon::on_spawn));
  node_.handle(msgtype::kJobPoll, guard(&WishDaemon::on_poll));
  node_.handle(msgtype::kJobSignal, guard(&WishDaemon::on_signal));
  node_.handle(msgtype::kJobReap, guard(&WishDaemon::on_reap));
  node_.handle(msgtype::kEnvSet, guard(&WishDaemon::on_env_set));
  node_.handle(msgtype::kEnvGet, guard(&WishDaemon::on_env_get));
  node_.handle(msgtype::kBarrierEnter, guard(&WishDaemon::on_barrier_enter));
  node_.handle(msgtype::kBarrierRelease,
               guard(&WishDaemon::on_barrier_release));
  node_.handle(msgtype::kLeaderClaim, guard(&WishDaemon::on_leader_claim));
  node_.handle(msgtype::kScatter, guard(&WishDaemon::on_scatter));
}

// --- Jobs --------------------------------------------------------------------

void WishDaemon::on_spawn(const IncomingMessage& msg, const Responder& resp) {
  auto req = SpawnRequest::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(req.error().code, req.error().message);
    return;
  }
  if (jobs_.size() + req->jobs.size() > opts_.max_jobs) {
    resp.fail(Err::kOverloaded, "wish job table full");
    return;
  }
  SpawnReply reply;
  reply.incarnation = opts_.incarnation;
  reply.ids.reserve(req->jobs.size());
  for (const JobSpec& spec : req->jobs) {
    JobTable::Job& job = jobs_.spawn(spec, req->owner);
    reply.ids.push_back(job.id);
    start_job(job);
  }
  c_spawned_->inc(req->jobs.size());
  resp.ok(reply.serialize());
}

void WishDaemon::start_job(JobTable::Job& job) {
  job.state = JobState::kRunning;
  job.started = node_.executor().now();
  const std::uint64_t id = job.id;
  job.completion = node_.executor().schedule(
      std::max<Duration>(job.spec.runtime, 0), [this, id] { finish_job(id); });
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kWishJob,
                        obs::trace().intern(node_.self().to_string()),
                        static_cast<std::int64_t>(id),
                        static_cast<std::int64_t>(JobState::kRunning));
  }
}

void WishDaemon::finish_job(std::uint64_t id) {
  JobTable::Job* job = jobs_.find(id);
  if (job == nullptr || job_state_terminal(job->state)) return;
  job->completion = kInvalidTimer;
  job->state = JobState::kExited;
  job->exit_code = 0;
  ++jobs_completed_;
  c_completed_->inc();
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kWishJob,
                        obs::trace().intern(node_.self().to_string()),
                        static_cast<std::int64_t>(id),
                        static_cast<std::int64_t>(JobState::kExited));
  }
}

void WishDaemon::on_poll(const IncomingMessage& msg, const Responder& resp) {
  auto req = PollRequest::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(req.error().code, req.error().message);
    return;
  }
  PollReply reply;
  reply.incarnation = opts_.incarnation;
  reply.jobs.reserve(req->ids.size());
  for (std::uint64_t id : req->ids) {
    JobStatus s = jobs_.status_of(id);
    if (s.state == JobState::kLost) c_unknown_polls_->inc();
    reply.jobs.push_back(s);
  }
  resp.ok(reply.serialize());
}

void WishDaemon::on_signal(const IncomingMessage& msg, const Responder& resp) {
  auto req = SignalRequest::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(req.error().code, req.error().message);
    return;
  }
  SignalReply reply;
  JobTable::Job* job = jobs_.find(req->id);
  if (job == nullptr) {
    reply.state = JobState::kLost;
    resp.ok(reply.serialize());
    return;
  }
  if (!job_state_terminal(job->state)) {
    if (job->completion != kInvalidTimer) {
      node_.executor().cancel(job->completion);
      job->completion = kInvalidTimer;
    }
    job->state = JobState::kKilled;
    job->exit_code = -static_cast<std::int64_t>(req->signum);
    c_killed_->inc();
    if (obs::trace().enabled()) {
      obs::trace().record(node_.executor().now(), obs::SpanKind::kWishJob,
                          obs::trace().intern(node_.self().to_string()),
                          static_cast<std::int64_t>(req->id),
                          static_cast<std::int64_t>(JobState::kKilled));
    }
  }
  reply.state = job->state;
  resp.ok(reply.serialize());
}

void WishDaemon::on_reap(const IncomingMessage& msg, const Responder& resp) {
  auto req = ReapRequest::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(req.error().code, req.error().message);
    return;
  }
  ReapReply reply;
  for (std::uint64_t id : req->ids) {
    if (jobs_.reap(id)) ++reply.reaped;
  }
  resp.ok(reply.serialize());
}

// --- Environment -------------------------------------------------------------

std::uint64_t WishDaemon::env_set(const std::string& key,
                                  const std::string& value) {
  const std::uint64_t version = env_.set(key, value);
  c_env_sets_->inc();
  return version;
}

void WishDaemon::on_env_set(const IncomingMessage& msg, const Responder& resp) {
  auto req = EnvSetRequest::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(req.error().code, req.error().message);
    return;
  }
  EnvSetReply reply;
  reply.version = env_set(req->key, req->value);
  resp.ok(reply.serialize());
}

void WishDaemon::on_env_get(const IncomingMessage& msg, const Responder& resp) {
  auto req = EnvGetRequest::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(req.error().code, req.error().message);
    return;
  }
  EnvGetReply reply;
  if (auto e = env_.entry(req->key)) {
    reply.found = true;
    reply.value = e->value;
    reply.version = e->version;
  }
  resp.ok(reply.serialize());
}

// --- Barrier -----------------------------------------------------------------

Endpoint WishDaemon::coordinator_of(const std::string& name) const {
  if (opts_.peers.empty()) return node_.self();
  return opts_.peers[fnv1a64(name) % opts_.peers.size()];
}

void WishDaemon::enter_barrier(const std::string& name, std::uint64_t epoch,
                               std::uint32_t expected, BarrierCallback cb) {
  const BarrierKey key{name, epoch};
  auto [it, inserted] = waits_.try_emplace(key);
  if (!inserted) return;  // duplicate enter; the first wait carries the cb
  it->second.expected = expected;
  it->second.cb = std::move(cb);
  send_barrier_enter(name, epoch);
  schedule_reenter(name, epoch);
}

void WishDaemon::send_barrier_enter(const std::string& name,
                                    std::uint64_t epoch) {
  const auto it = waits_.find(BarrierKey{name, epoch});
  if (it == waits_.end()) return;
  BarrierEnter req;
  req.name = name;
  req.epoch = epoch;
  req.expected = it->second.expected;
  req.participant = node_.self();
  req.released_seen = it->second.released;
  node_.call(coordinator_of(name), msgtype::kBarrierEnter, req.serialize(),
             opts_.collective_call,
             [this, name, epoch](Result<Bytes> result) {
               if (!running_ || !result) return;  // the timer re-enters
               auto reply = BarrierEnterReply::deserialize(*result);
               if (!reply || !reply->released) return;
               // Confirmed by a REPLY: only now is the wait done (a push
               // alone leaves the re-enter loop running — see protocol.hpp).
               const auto wit = waits_.find(BarrierKey{name, epoch});
               if (wit == waits_.end()) return;
               if (!wit->second.released && wit->second.cb) wit->second.cb();
               if (wit->second.timer != kInvalidTimer) {
                 node_.executor().cancel(wit->second.timer);
               }
               waits_.erase(wit);
             });
}

void WishDaemon::schedule_reenter(const std::string& name,
                                  std::uint64_t epoch) {
  const auto it = waits_.find(BarrierKey{name, epoch});
  if (it == waits_.end()) return;
  it->second.timer = node_.executor().schedule(
      opts_.barrier_reenter, [this, name, epoch] {
        const auto wit = waits_.find(BarrierKey{name, epoch});
        if (wit == waits_.end() || !running_) return;
        wit->second.timer = kInvalidTimer;
        ++reentries_;
        c_reentries_->inc();
        send_barrier_enter(name, epoch);
        schedule_reenter(name, epoch);
      });
}

void WishDaemon::on_barrier_enter(const IncomingMessage& msg,
                                  const Responder& resp) {
  auto req = BarrierEnter::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(req.error().code, req.error().message);
    return;
  }
  BarrierEnterReply reply;
  reply.coordinator_incarnation = opts_.incarnation;
  const auto floor = released_floor_.find(req->name);
  if (floor != released_floor_.end() && req->epoch <= floor->second) {
    // Already released this incarnation — the idempotent answer a
    // released-but-unconfirmed participant is re-entering for.
    reply.released = true;
    resp.ok(reply.serialize());
    return;
  }
  if (req->released_seen) {
    // A witness of the release: this coordinator incarnation never saw it
    // (crash-restart wiped the floor). Restore the floor from the witness
    // and release anyone re-assembled under this epoch, or the unconfirmed
    // remainder could wait forever for participants that already left.
    const BarrierKey witness_key{req->name, req->epoch};
    if (auto git = groups_.find(witness_key); git != groups_.end()) {
      release_group(req->name, req->epoch, git->second);
      groups_.erase(git);
    } else {
      auto& f = released_floor_[req->name];
      f = std::max(f, req->epoch);
    }
    reply.released = true;
    resp.ok(reply.serialize());
    return;
  }
  const BarrierKey key{req->name, req->epoch};
  BarrierGroup& group = groups_[key];
  group.expected = std::max(group.expected, req->expected);
  if (std::find(group.arrivals.begin(), group.arrivals.end(),
                req->participant) == group.arrivals.end()) {
    group.arrivals.push_back(req->participant);
  }
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kWishBarrier,
                        obs::trace().intern(req->name),
                        static_cast<std::int64_t>(req->epoch),
                        static_cast<std::int64_t>(group.arrivals.size()));
  }
  if (group.expected > 0 && group.arrivals.size() >= group.expected) {
    release_group(req->name, req->epoch, group);
    groups_.erase(key);
    reply.released = true;
  }
  resp.ok(reply.serialize());
}

void WishDaemon::release_group(const std::string& name, std::uint64_t epoch,
                               BarrierGroup& group) {
  auto& floor = released_floor_[name];
  floor = std::max(floor, epoch);
  ++barrier_rounds_;
  c_barrier_rounds_->inc();
  BarrierRelease push;
  push.name = name;
  push.epoch = epoch;
  const Bytes wire = push.serialize();
  for (const Endpoint& participant : group.arrivals) {
    // Latency optimization only: a lost push is recovered by the
    // participant's next re-enter hitting the released floor above.
    node_.call(participant, msgtype::kBarrierRelease, wire,
               opts_.collective_call, [](Result<Bytes>) {});
  }
}

void WishDaemon::on_barrier_release(const IncomingMessage& msg,
                                    const Responder& resp) {
  auto req = BarrierRelease::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(req.error().code, req.error().message);
    return;
  }
  const auto it = waits_.find(BarrierKey{req->name, req->epoch});
  if (it != waits_.end() && !it->second.released) {
    it->second.released = true;
    if (it->second.cb) it->second.cb();
    // The wait (and its re-enter timer) stays until a coordinator REPLY
    // confirms the release — that is what rebuilds a crashed coordinator's
    // arrival set, so the barrier cannot half-release.
  }
  resp.ok();
}

// --- Leader-once -------------------------------------------------------------

void WishDaemon::on_leader_claim(const IncomingMessage& msg,
                                 const Responder& resp) {
  auto req = LeaderClaim::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(req.error().code, req.error().message);
    return;
  }
  c_leader_claims_->inc();
  const auto [it, inserted] =
      leaders_.try_emplace(BarrierKey{req->name, req->epoch}, req->claimant);
  LeaderReply reply;
  reply.winner = it->second;
  reply.coordinator_incarnation = opts_.incarnation;
  resp.ok(reply.serialize());
}

void WishDaemon::leader_once(const std::string& name, std::uint64_t epoch,
                             const std::string& claimant, LeaderCallback cb) {
  LeaderClaim req;
  req.name = name;
  req.epoch = epoch;
  req.claimant = claimant;
  node_.call(coordinator_of(name), msgtype::kLeaderClaim, req.serialize(),
             opts_.collective_call,
             [claimant, cb = std::move(cb)](Result<Bytes> result) {
               if (!cb) return;
               if (!result) {
                 cb(false, std::string{}, 0);
                 return;
               }
               auto reply = LeaderReply::deserialize(*result);
               if (!reply) {
                 cb(false, std::string{}, 0);
                 return;
               }
               cb(reply->winner == claimant, reply->winner,
                  reply->coordinator_incarnation);
             });
}

std::optional<std::string> WishDaemon::leader_winner(const std::string& name,
                                                     std::uint64_t epoch) const {
  const auto it = leaders_.find(BarrierKey{name, epoch});
  if (it == leaders_.end()) return std::nullopt;
  return it->second;
}

// --- Scatter/gather ----------------------------------------------------------

void WishDaemon::fan_out(const std::string& name, std::uint64_t epoch,
                         const Bytes& payload, std::vector<Endpoint> targets,
                         std::function<void(std::uint32_t, std::uint64_t)> done) {
  if (targets.empty()) {
    done(0, 0);
    return;
  }
  const std::size_t fanout =
      std::max<std::size_t>(1, std::min<std::size_t>(opts_.scatter_fanout,
                                                     targets.size()));
  struct Gather {
    std::size_t pending = 0;
    std::uint32_t delivered = 0;
    std::uint64_t checksum = 0;
    std::function<void(std::uint32_t, std::uint64_t)> done;
  };
  auto gather = std::make_shared<Gather>();
  gather->pending = fanout;
  gather->done = std::move(done);
  // Contiguous split: chunk i's head is the child, the tail its subtree.
  const std::size_t chunk = (targets.size() + fanout - 1) / fanout;
  for (std::size_t i = 0; i < fanout; ++i) {
    const std::size_t lo = i * chunk;
    const std::size_t hi = std::min(targets.size(), lo + chunk);
    ScatterRequest req;
    req.name = name;
    req.epoch = epoch;
    req.payload = payload;
    if (lo + 1 < hi) {
      req.subtree.assign(targets.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                         targets.begin() + static_cast<std::ptrdiff_t>(hi));
    }
    c_scatter_forwards_->inc();
    node_.call(targets[lo], msgtype::kScatter, req.serialize(),
               opts_.collective_call, [gather](Result<Bytes> result) {
                 if (result) {
                   if (auto reply = ScatterReply::deserialize(*result)) {
                     gather->delivered += reply->delivered;
                     gather->checksum += reply->checksum;
                   }
                 }
                 // A failed subtree contributes nothing; the root sees the
                 // shortfall in `delivered` and may re-scatter.
                 if (--gather->pending == 0) {
                   gather->done(gather->delivered, gather->checksum);
                 }
               });
  }
}

void WishDaemon::on_scatter(const IncomingMessage& msg, const Responder& resp) {
  auto req = ScatterRequest::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(req.error().code, req.error().message);
    return;
  }
  auto& applied = scatter_applied_[req->name];
  if (req->epoch >= applied.first) applied = {req->epoch, req->payload};
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kWishCollective,
                        obs::trace().intern(req->name),
                        static_cast<std::int64_t>(req->subtree.size()),
                        static_cast<std::int64_t>(opts_.scatter_fanout));
  }
  const std::uint64_t own = scatter_fold(node_.self(), req->payload);
  // Deferred reply: the gathered subtree acknowledgement rides back up the
  // tree once the children answer.
  fan_out(req->name, req->epoch, req->payload, std::move(req->subtree),
          [resp, own](std::uint32_t delivered, std::uint64_t checksum) {
            ScatterReply reply;
            reply.delivered = delivered + 1;
            reply.checksum = checksum + own;
            resp.ok(reply.serialize());
          });
}

void WishDaemon::scatter(const std::string& name, std::uint64_t epoch,
                         Bytes payload, ScatterCallback cb) {
  auto& applied = scatter_applied_[name];
  if (epoch >= applied.first) applied = {epoch, payload};
  std::vector<Endpoint> targets;
  targets.reserve(opts_.peers.size());
  for (const Endpoint& peer : opts_.peers) {
    if (!(peer == node_.self())) targets.push_back(peer);
  }
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kWishCollective,
                        obs::trace().intern(name),
                        static_cast<std::int64_t>(targets.size()),
                        static_cast<std::int64_t>(opts_.scatter_fanout));
  }
  const std::uint64_t own = scatter_fold(node_.self(), payload);
  fan_out(name, epoch, payload, std::move(targets),
          [cb = std::move(cb), own](std::uint32_t delivered,
                                    std::uint64_t checksum) {
            if (!cb) return;
            ScatterReply reply;
            reply.delivered = delivered + 1;
            reply.checksum = checksum + own;
            cb(reply);
          });
}

std::optional<std::pair<std::uint64_t, Bytes>> WishDaemon::scatter_payload(
    const std::string& name) const {
  const auto it = scatter_applied_.find(name);
  if (it == scatter_applied_.end()) return std::nullopt;
  return it->second;
}

}  // namespace ew::wish
