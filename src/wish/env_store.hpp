// Global environment variables for the WISH shell, backed by the gossip
// StateStore as ONE blob type (statetype::kWishEnv).
//
// Every WISH daemon holds an EnvStore replica. The blob follows the toolkit's
// leading-u64 version convention (a "mint" counter), so StateStore::merge and
// the digest/delta anti-entropy move it with the stock MergeOutcome
// semantics. Inside the blob, each key carries its own (version, writer)
// stamp and replicas merge per key — higher version wins, writer id breaks
// ties — which makes the blob a state-based LWW map: whichever replica's
// snapshot wins at a gossip, every other replica folds it in on apply and
// re-publishes the union, so all replicas converge.
//
// Crash-restart incarnation (the StateStore ghost hazard, pinned by
// tests/test_gossip_state.cpp CrashRestartGhostShadowsLowVersionRepublish):
// the store keeps the higher-version copy and actively pushes it back at a
// kStale publisher, so a restarted daemon whose counters reset to zero would
// be silently shadowed by its own pre-crash blob forever. EnvStore therefore
// RE-MINTS ABOVE THE FLOOR at both levels:
//   * blob level — apply() floors the mint counter above any incoming blob's
//     version, and set() mints above everything seen, so a fresh write is
//     never published under a version the grid has already passed;
//   * key level — an incoming entry stamped with OUR writer id at a version
//     above a key we wrote THIS incarnation is our own pre-crash ghost: the
//     current value is kept and re-stamped above the ghost, so the new write
//     dominates instead of silently losing to a dead incarnation.
// Writes are applied locally first, so the spawning daemon always reads its
// own writes regardless of gossip progress.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/result.hpp"
#include "common/serialize.hpp"

namespace ew::wish {

class EnvStore {
 public:
  struct Entry {
    std::string value;
    std::uint64_t version = 0;  // per-key stamp (Lamport-ish)
    std::uint64_t writer = 0;   // stable id of the writing daemon
    bool own = false;           // written by THIS incarnation of this store
  };

  /// `writer_id` must be stable across restarts of the same daemon (the
  /// scenario uses a hash of the host name) — that is what lets apply()
  /// recognize a pre-crash ghost as its own.
  explicit EnvStore(std::uint64_t writer_id) : writer_(writer_id) {}

  /// Local write: visible to get() immediately (read-your-writes), stamped
  /// above every version this replica has seen for the key.
  /// Returns the entry's new per-key version.
  std::uint64_t set(const std::string& key, const std::string& value);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::optional<Entry> entry(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return map_.size(); }

  /// The gossip provider: versioned blob (leading u64 mint + body).
  [[nodiscard]] Bytes snapshot() const;

  /// The gossip applier (state-update method): merge an incoming blob.
  /// Malformed blobs are rejected whole (no partial merges).
  Status apply(const Bytes& blob);

  [[nodiscard]] std::uint64_t mint_version() const { return mint_; }
  [[nodiscard]] std::uint64_t writer_id() const { return writer_; }
  [[nodiscard]] std::uint64_t sets() const { return sets_; }
  [[nodiscard]] std::uint64_t merges_applied() const { return merges_; }
  [[nodiscard]] std::uint64_t ghost_remints() const { return ghost_remints_; }

  /// Order-independent digest over (key, value, version, writer) — equal on
  /// two replicas iff their visible contents are identical (the bench's
  /// divergence check).
  [[nodiscard]] std::uint64_t content_digest() const;

 private:
  [[nodiscard]] Bytes body() const;  // canonical (sorted-key) entry list

  std::uint64_t writer_;
  std::uint64_t mint_ = 0;
  std::map<std::string, Entry> map_;  // ordered: canonical serialization
  std::uint64_t sets_ = 0;
  std::uint64_t merges_ = 0;
  std::uint64_t ghost_remints_ = 0;
};

}  // namespace ew::wish
