#include "wish/mc_world.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "net/node.hpp"
#include "sim/chaos.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"
#include "wish/daemon.hpp"

namespace ew::wish {
namespace {

using sim::ChaosEngine;
using sim::EventQueue;
using sim::FaultKind;
using sim::NetworkModel;
using sim::SimTransport;
using sim::mc::FaultAction;
using sim::mc::World;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (std::size_t i = 0; i < sizeof v; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

class WishWorld final : public World {
 public:
  static constexpr int kDaemons = 3;
  static constexpr std::uint64_t kEpoch = 1;

  explicit WishWorld(std::uint64_t seed)
      : network_(Rng(seed)), transport_(events_, network_),
        chaos_(events_, network_) {
    // Deterministic network: zero loss/jitter so same-time event order is
    // the only nondeterminism the Explorer does not control (DESIGN.md §14).
    network_.set_loss_rate(0.0);
    network_.set_jitter_sigma(0.0);
    for (int i = 0; i < kDaemons; ++i) {
      peers_.push_back(Endpoint{host(i), 701});
    }
    // Pick primitive names whose coordinator hashes onto the host the fault
    // menu crashes, so the faults hit the interesting process.
    bar_name_ = pick_name("bar", kDaemons - 1);
    lead_name_ = pick_name("lead", kDaemons - 1);
    for (int i = 0; i < kDaemons; ++i) start_daemon(i);
    chaos_.register_process(host(kDaemons - 1),
                            {[this] { kill_daemon(kDaemons - 1); },
                             [this] { restart_daemon(kDaemons - 1); }});
  }

  ~WishWorld() override {
    for (auto& d : daemons_) {
      if (d.daemon) d.daemon->stop();
      d.daemon.reset();
      if (d.node) d.node.reset();
    }
  }

  [[nodiscard]] std::string name() const override { return "wish"; }
  EventQueue& events() override { return events_; }

  // Issue every enter and claim, but run nothing: the sends themselves are
  // the first events the Explorer gets to order.
  void warmup() override {
    for (int i = 0; i < kDaemons; ++i) {
      issue_enter(i);
      issue_claim(i);
    }
  }

  std::vector<FaultAction> fault_actions() override {
    const std::string h = host(kDaemons - 1);
    return {
        {"crash " + h,
         [this, h] { chaos_.inject({0, FaultKind::kCrash, h, 0.0}); }},
        {"restart " + h,
         [this, h] { chaos_.inject({0, FaultKind::kRestart, h, 0.0}); }},
    };
  }

  // Generous grace: covers several re-enter periods (2 s each) plus the
  // claim retry loop, so liveness checks measure the protocol, not the
  // clock budget.
  void settle() override { events_.run_for(2 * kMinute); }

  std::vector<std::string> check() override {
    std::vector<std::string> v;
    // --- Safety: at-most-once release per enter, on every host. -----------
    for (int i = 0; i < kDaemons; ++i) {
      if (released_[i] > enters_[i]) {
        v.push_back("wish: " + host(i) + " released " +
                    std::to_string(released_[i]) + "x for " +
                    std::to_string(enters_[i]) + " enters");
      }
    }
    // --- Safety: one leader per coordinator incarnation. ------------------
    for (const auto& [inc, winners] : winners_by_inc_) {
      if (winners.size() > 1) {
        v.push_back("wish: " + std::to_string(winners.size()) +
                    " distinct leader winners in coordinator incarnation " +
                    std::to_string(inc));
      }
    }
    for (const auto& [inc, wons] : won_by_inc_) {
      if (wons.size() > 1) {
        v.push_back("wish: " + std::to_string(wons.size()) +
                    " claimants won leader-once in incarnation " +
                    std::to_string(inc));
      }
    }
    // --- Liveness: needs the coordinator up at branch end. -----------------
    if (daemons_[kDaemons - 1].daemon) {
      for (int i = 0; i < kDaemons; ++i) {
        const auto& d = daemons_[i];
        if (!d.daemon) continue;
        if (released_[i] == 0) {
          v.push_back("wish: barrier hung on " + host(i) +
                      " with coordinator up");
        }
        if (d.daemon->open_barrier_waits() != 0) {
          v.push_back("wish: " + host(i) + " still re-entering after settle");
        }
        if (!claim_resolved_[i]) {
          v.push_back("wish: leader claim unresolved on " + host(i) +
                      " with coordinator up");
        }
      }
    }
    return v;
  }

  [[nodiscard]] std::uint64_t fingerprint() const override {
    std::uint64_t h = 14695981039346656037ull;
    for (int i = 0; i < kDaemons; ++i) {
      const auto& d = daemons_[i];
      h = fnv_mix(h, d.daemon ? d.incarnation : 0);
      h = fnv_mix(h, released_[i]);
      h = fnv_mix(h, enters_[i]);
      h = fnv_mix(h, claim_resolved_[i] ? 1 : 0);
    }
    for (const auto& [inc, winners] : winners_by_inc_) {
      h = fnv_mix(h, inc);
      for (const auto& w : winners) h = fnv_mix(h, fnv1a64(w));
    }
    return h;
  }

 private:
  struct DaemonSlot {
    std::unique_ptr<Node> node;
    std::unique_ptr<WishDaemon> daemon;
    std::uint64_t incarnation = 0;  // last started incarnation
  };

  static std::string host(int i) { return "w" + std::to_string(i); }

  /// Smallest "<stem><n>" whose coordinator hash lands on peers_[want].
  std::string pick_name(const std::string& stem, int want) const {
    for (int n = 0;; ++n) {
      std::string candidate = stem + std::to_string(n);
      if (fnv1a64(candidate) % peers_.size() ==
          static_cast<std::size_t>(want)) {
        return candidate;
      }
    }
  }

  void start_daemon(int i) {
    auto& d = daemons_[static_cast<std::size_t>(i)];
    EventQueue::LabelScope scope(events_, host(i));
    d.node = std::make_unique<Node>(events_, transport_,
                                    peers_[static_cast<std::size_t>(i)]);
    d.node->start();
    WishDaemon::Options o;
    o.incarnation = ++d.incarnation;
    o.peers = peers_;
    d.daemon = std::make_unique<WishDaemon>(*d.node, comparators_, o);
    d.daemon->start();
  }

  void kill_daemon(int i) {
    auto& d = daemons_[static_cast<std::size_t>(i)];
    if (d.daemon) d.daemon->stop();
    // Crash the node while the stopped daemon is still allocated: pending
    // call callbacks must find running_ == false, not freed memory.
    if (d.node) d.node->crash();
    d.daemon.reset();
    d.node.reset();
  }

  void restart_daemon(int i) {
    start_daemon(i);
    // The client side of the crashed host: an unfinished barrier or an
    // unresolved claim is re-issued against the fresh incarnation, exactly
    // as the storm bench's clients respawn kLost jobs.
    EventQueue::LabelScope scope(events_, host(i));
    if (released_[i] == 0) issue_enter(i);
    if (!claim_resolved_[i]) issue_claim(i);
  }

  void issue_enter(int i) {
    auto& d = daemons_[static_cast<std::size_t>(i)];
    if (!d.daemon) return;
    ++enters_[i];
    d.daemon->enter_barrier(bar_name_, kEpoch, kDaemons,
                            [this, i] { ++released_[i]; });
  }

  void issue_claim(int i) {
    auto& d = daemons_[static_cast<std::size_t>(i)];
    if (!d.daemon) return;
    d.daemon->leader_once(
        lead_name_, kEpoch, host(i),
        [this, i](bool won, const std::string& winner, std::uint64_t inc) {
          if (winner.empty() && inc == 0) {
            // Call failed (coordinator down): retry after a beat, like a
            // real client. The guard keeps dead daemons quiet.
            events_.schedule(2 * kSecond, [this, i] {
              if (daemons_[static_cast<std::size_t>(i)].daemon &&
                  !claim_resolved_[i]) {
                issue_claim(i);
              }
            });
            return;
          }
          claim_resolved_[i] = true;
          winners_by_inc_[inc].insert(winner);
          if (won) won_by_inc_[inc].insert(host(i));
        });
  }

  EventQueue events_;
  NetworkModel network_;
  SimTransport transport_;
  ChaosEngine chaos_;
  gossip::ComparatorRegistry comparators_;
  std::vector<Endpoint> peers_;
  std::string bar_name_;
  std::string lead_name_;
  std::array<DaemonSlot, kDaemons> daemons_;
  std::array<std::uint64_t, kDaemons> enters_{};
  std::array<std::uint64_t, kDaemons> released_{};
  std::array<bool, kDaemons> claim_resolved_{};
  std::map<std::uint64_t, std::set<std::string>> winners_by_inc_;
  std::map<std::uint64_t, std::set<std::string>> won_by_inc_;
};

}  // namespace

std::unique_ptr<sim::mc::World> make_wish_world(std::uint64_t seed) {
  return std::make_unique<WishWorld>(seed);
}

}  // namespace ew::wish
