#include "wish/protocol.hpp"

#include "common/hash.hpp"

namespace ew::wish {

namespace {

// Bounded list-count read shared by every WISH codec (same shape as the
// sched/gossip guards): the count is checked against the batch ceiling AND
// against the bytes actually remaining (each element needs at least
// `min_elem` bytes) before any vector is sized.
Result<std::uint32_t> read_count(Reader& r, std::size_t min_elem,
                                 const char* what) {
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > kMaxWishBatch) return Error{Err::kProtocol, what};
  if (min_elem > 0 && *n > r.remaining() / min_elem) {
    return Error{Err::kProtocol, what};
  }
  return *n;
}

}  // namespace

void write_wish_header(Writer& w, MsgType kind) {
  w.u8(kWishWireVersion);
  w.u16(kind);
}

Result<std::uint8_t> read_wish_header(Reader& r, MsgType kind) {
  auto ver = r.u8();
  if (!ver) return ver.error();
  if (*ver == 0 || *ver > kWishWireVersion) {
    return Error{Err::kProtocol, "unsupported wish wire version"};
  }
  auto k = r.u16();
  if (!k) return k.error();
  if (*k != kind) return Error{Err::kProtocol, "wish message kind mismatch"};
  return *ver;
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kExited: return "exited";
    case JobState::kKilled: return "killed";
    case JobState::kLost: return "lost";
  }
  return "?";
}

void JobSpec::write(Writer& w) const {
  w.str(command);
  w.i64(runtime);
}

Result<JobSpec> JobSpec::read(Reader& r) {
  JobSpec s;
  auto cmd = r.str();
  if (!cmd) return cmd.error();
  s.command = std::move(*cmd);
  auto rt = r.i64();
  if (!rt) return rt.error();
  if (*rt < 0) return Error{Err::kProtocol, "negative job runtime"};
  s.runtime = *rt;
  return s;
}

Bytes SpawnRequest::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kJobSpawn);
  gossip::write_endpoint(w, owner);
  w.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const auto& j : jobs) j.write(w);
  return w.take();
}

Result<SpawnRequest> SpawnRequest::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kJobSpawn);
  if (!hdr) return hdr.error();
  SpawnRequest req;
  auto ep = gossip::read_endpoint(r);
  if (!ep) return ep.error();
  req.owner = std::move(*ep);
  auto count = read_count(r, JobSpec::kMinWire, "oversized spawn batch");
  if (!count) return count.error();
  if (*count == 0) return Error{Err::kProtocol, "empty spawn batch"};
  req.jobs.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto spec = JobSpec::read(r);
    if (!spec) return spec.error();
    req.jobs.push_back(std::move(*spec));
  }
  return req;
}

Bytes SpawnReply::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kJobSpawn);
  w.u64(incarnation);
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (auto id : ids) w.u64(id);
  return w.take();
}

Result<SpawnReply> SpawnReply::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kJobSpawn);
  if (!hdr) return hdr.error();
  SpawnReply rep;
  auto inc = r.u64();
  if (!inc) return inc.error();
  rep.incarnation = *inc;
  auto count = read_count(r, sizeof(std::uint64_t), "oversized id list");
  if (!count) return count.error();
  rep.ids.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto id = r.u64();
    if (!id) return id.error();
    rep.ids.push_back(*id);
  }
  return rep;
}

Bytes PollRequest::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kJobPoll);
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (auto id : ids) w.u64(id);
  return w.take();
}

Result<PollRequest> PollRequest::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kJobPoll);
  if (!hdr) return hdr.error();
  PollRequest req;
  auto count = read_count(r, sizeof(std::uint64_t), "oversized poll id list");
  if (!count) return count.error();
  req.ids.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto id = r.u64();
    if (!id) return id.error();
    req.ids.push_back(*id);
  }
  return req;
}

void JobStatus::write(Writer& w) const {
  w.u64(id);
  w.u8(static_cast<std::uint8_t>(state));
  w.i64(exit_code);
}

Result<JobStatus> JobStatus::read(Reader& r) {
  JobStatus s;
  auto id = r.u64();
  if (!id) return id.error();
  s.id = *id;
  auto st = r.u8();
  if (!st) return st.error();
  if (*st >= kJobStateCount) return Error{Err::kProtocol, "bad job state"};
  s.state = static_cast<JobState>(*st);
  auto ec = r.i64();
  if (!ec) return ec.error();
  s.exit_code = *ec;
  return s;
}

Bytes PollReply::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kJobPoll);
  w.u64(incarnation);
  w.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const auto& j : jobs) j.write(w);
  return w.take();
}

Result<PollReply> PollReply::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kJobPoll);
  if (!hdr) return hdr.error();
  PollReply rep;
  auto inc = r.u64();
  if (!inc) return inc.error();
  rep.incarnation = *inc;
  auto count = read_count(r, JobStatus::kMinWire, "oversized status list");
  if (!count) return count.error();
  rep.jobs.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto st = JobStatus::read(r);
    if (!st) return st.error();
    rep.jobs.push_back(std::move(*st));
  }
  return rep;
}

Bytes SignalRequest::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kJobSignal);
  w.u64(id);
  w.u8(signum);
  return w.take();
}

Result<SignalRequest> SignalRequest::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kJobSignal);
  if (!hdr) return hdr.error();
  SignalRequest req;
  auto id = r.u64();
  if (!id) return id.error();
  req.id = *id;
  auto sig = r.u8();
  if (!sig) return sig.error();
  req.signum = *sig;
  return req;
}

Bytes SignalReply::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kJobSignal);
  w.u8(static_cast<std::uint8_t>(state));
  return w.take();
}

Result<SignalReply> SignalReply::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kJobSignal);
  if (!hdr) return hdr.error();
  SignalReply rep;
  auto st = r.u8();
  if (!st) return st.error();
  if (*st >= kJobStateCount) return Error{Err::kProtocol, "bad job state"};
  rep.state = static_cast<JobState>(*st);
  return rep;
}

Bytes ReapRequest::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kJobReap);
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (auto id : ids) w.u64(id);
  return w.take();
}

Result<ReapRequest> ReapRequest::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kJobReap);
  if (!hdr) return hdr.error();
  ReapRequest req;
  auto count = read_count(r, sizeof(std::uint64_t), "oversized reap id list");
  if (!count) return count.error();
  req.ids.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto id = r.u64();
    if (!id) return id.error();
    req.ids.push_back(*id);
  }
  return req;
}

Bytes ReapReply::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kJobReap);
  w.u32(reaped);
  return w.take();
}

Result<ReapReply> ReapReply::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kJobReap);
  if (!hdr) return hdr.error();
  ReapReply rep;
  auto n = r.u32();
  if (!n) return n.error();
  rep.reaped = *n;
  return rep;
}

Bytes EnvSetRequest::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kEnvSet);
  w.str(key);
  w.str(value);
  return w.take();
}

Result<EnvSetRequest> EnvSetRequest::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kEnvSet);
  if (!hdr) return hdr.error();
  EnvSetRequest req;
  auto key = r.str();
  if (!key) return key.error();
  if (key->empty()) return Error{Err::kProtocol, "empty env key"};
  req.key = std::move(*key);
  auto value = r.str();
  if (!value) return value.error();
  req.value = std::move(*value);
  return req;
}

Bytes EnvSetReply::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kEnvSet);
  w.u64(version);
  return w.take();
}

Result<EnvSetReply> EnvSetReply::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kEnvSet);
  if (!hdr) return hdr.error();
  EnvSetReply rep;
  auto v = r.u64();
  if (!v) return v.error();
  rep.version = *v;
  return rep;
}

Bytes EnvGetRequest::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kEnvGet);
  w.str(key);
  return w.take();
}

Result<EnvGetRequest> EnvGetRequest::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kEnvGet);
  if (!hdr) return hdr.error();
  EnvGetRequest req;
  auto key = r.str();
  if (!key) return key.error();
  req.key = std::move(*key);
  return req;
}

Bytes EnvGetReply::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kEnvGet);
  w.boolean(found);
  w.str(value);
  w.u64(version);
  return w.take();
}

Result<EnvGetReply> EnvGetReply::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kEnvGet);
  if (!hdr) return hdr.error();
  EnvGetReply rep;
  auto found = r.boolean();
  if (!found) return found.error();
  rep.found = *found;
  auto value = r.str();
  if (!value) return value.error();
  rep.value = std::move(*value);
  auto v = r.u64();
  if (!v) return v.error();
  rep.version = *v;
  return rep;
}

Bytes BarrierEnter::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kBarrierEnter);
  w.str(name);
  w.u64(epoch);
  w.u32(expected);
  gossip::write_endpoint(w, participant);
  w.boolean(released_seen);
  return w.take();
}

Result<BarrierEnter> BarrierEnter::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kBarrierEnter);
  if (!hdr) return hdr.error();
  BarrierEnter e;
  auto name = r.str();
  if (!name) return name.error();
  if (name->empty()) return Error{Err::kProtocol, "empty barrier name"};
  e.name = std::move(*name);
  auto epoch = r.u64();
  if (!epoch) return epoch.error();
  e.epoch = *epoch;
  auto expected = r.u32();
  if (!expected) return expected.error();
  if (*expected == 0 || *expected > kMaxWishBatch) {
    return Error{Err::kProtocol, "bad barrier width"};
  }
  e.expected = *expected;
  auto ep = gossip::read_endpoint(r);
  if (!ep) return ep.error();
  e.participant = std::move(*ep);
  auto seen = r.boolean();
  if (!seen) return seen.error();
  e.released_seen = *seen;
  return e;
}

Bytes BarrierEnterReply::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kBarrierEnter);
  w.boolean(released);
  w.u64(coordinator_incarnation);
  return w.take();
}

Result<BarrierEnterReply> BarrierEnterReply::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kBarrierEnter);
  if (!hdr) return hdr.error();
  BarrierEnterReply rep;
  auto rel = r.boolean();
  if (!rel) return rel.error();
  rep.released = *rel;
  auto inc = r.u64();
  if (!inc) return inc.error();
  rep.coordinator_incarnation = *inc;
  return rep;
}

Bytes BarrierRelease::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kBarrierRelease);
  w.str(name);
  w.u64(epoch);
  return w.take();
}

Result<BarrierRelease> BarrierRelease::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kBarrierRelease);
  if (!hdr) return hdr.error();
  BarrierRelease rel;
  auto name = r.str();
  if (!name) return name.error();
  rel.name = std::move(*name);
  auto epoch = r.u64();
  if (!epoch) return epoch.error();
  rel.epoch = *epoch;
  return rel;
}

Bytes LeaderClaim::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kLeaderClaim);
  w.str(name);
  w.u64(epoch);
  w.str(claimant);
  return w.take();
}

Result<LeaderClaim> LeaderClaim::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kLeaderClaim);
  if (!hdr) return hdr.error();
  LeaderClaim c;
  auto name = r.str();
  if (!name) return name.error();
  if (name->empty()) return Error{Err::kProtocol, "empty leader name"};
  c.name = std::move(*name);
  auto epoch = r.u64();
  if (!epoch) return epoch.error();
  c.epoch = *epoch;
  auto claimant = r.str();
  if (!claimant) return claimant.error();
  if (claimant->empty()) return Error{Err::kProtocol, "empty claimant"};
  c.claimant = std::move(*claimant);
  return c;
}

Bytes LeaderReply::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kLeaderClaim);
  w.str(winner);
  w.u64(coordinator_incarnation);
  return w.take();
}

Result<LeaderReply> LeaderReply::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kLeaderClaim);
  if (!hdr) return hdr.error();
  LeaderReply rep;
  auto winner = r.str();
  if (!winner) return winner.error();
  rep.winner = std::move(*winner);
  auto inc = r.u64();
  if (!inc) return inc.error();
  rep.coordinator_incarnation = *inc;
  return rep;
}

Bytes ScatterRequest::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kScatter);
  w.str(name);
  w.u64(epoch);
  w.blob(payload);
  w.u32(static_cast<std::uint32_t>(subtree.size()));
  for (const auto& ep : subtree) gossip::write_endpoint(w, ep);
  return w.take();
}

Result<ScatterRequest> ScatterRequest::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kScatter);
  if (!hdr) return hdr.error();
  ScatterRequest req;
  auto name = r.str();
  if (!name) return name.error();
  req.name = std::move(*name);
  auto epoch = r.u64();
  if (!epoch) return epoch.error();
  req.epoch = *epoch;
  auto payload = r.blob();
  if (!payload) return payload.error();
  req.payload = std::move(*payload);
  // Endpoint min wire: empty host string (4) + port (2).
  auto count = read_count(r, 4 + 2, "oversized scatter subtree");
  if (!count) return count.error();
  req.subtree.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto ep = gossip::read_endpoint(r);
    if (!ep) return ep.error();
    req.subtree.push_back(std::move(*ep));
  }
  return req;
}

Bytes ScatterReply::serialize() const {
  Writer w;
  write_wish_header(w, msgtype::kScatter);
  w.u32(delivered);
  w.u64(checksum);
  return w.take();
}

Result<ScatterReply> ScatterReply::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_wish_header(r, msgtype::kScatter);
  if (!hdr) return hdr.error();
  ScatterReply rep;
  auto n = r.u32();
  if (!n) return n.error();
  rep.delivered = *n;
  auto cs = r.u64();
  if (!cs) return cs.error();
  rep.checksum = *cs;
  return rep;
}

std::uint64_t scatter_fold(const Endpoint& self, const Bytes& payload) {
  std::uint64_t h = fnv1a64(self.to_string());
  h ^= fnv1a64(std::string_view(
      reinterpret_cast<const char*>(payload.data()), payload.size()));
  return h;
}

}  // namespace ew::wish
