#include "wish/job_table.hpp"

namespace ew::wish {

JobTable::Job& JobTable::spawn(const JobSpec& spec, const Endpoint& owner) {
  const std::uint64_t id = (incarnation_ << 32) | ++next_seq_;
  Job& j = jobs_[id];
  j.id = id;
  j.spec = spec;
  j.owner = owner;
  j.state = JobState::kQueued;
  return j;
}

JobTable::Job* JobTable::find(std::uint64_t id) {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const JobTable::Job* JobTable::find(std::uint64_t id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

JobStatus JobTable::status_of(std::uint64_t id) const {
  JobStatus s;
  s.id = id;
  if (const Job* j = find(id)) {
    s.state = j->state;
    s.exit_code = j->exit_code;
  } else {
    s.state = JobState::kLost;  // not ours (pre-restart id, or reaped)
  }
  return s;
}

bool JobTable::reap(std::uint64_t id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end() || !job_state_terminal(it->second.state)) return false;
  jobs_.erase(it);
  return true;
}

std::vector<JobTable::Job*> JobTable::all() {
  std::vector<Job*> out;
  out.reserve(jobs_.size());
  for (auto& [id, j] : jobs_) out.push_back(&j);
  return out;
}

}  // namespace ew::wish
