#include "sim/chaos.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace ew::sim {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kCorruptRate: return "corrupt_rate";
    case FaultKind::kDuplicateRate: return "duplicate_rate";
    case FaultKind::kReorderRate: return "reorder_rate";
  }
  return "?";
}

FaultPlan& FaultPlan::crash(TimePoint at, std::string host) {
  events.push_back({at, FaultKind::kCrash, std::move(host), 0.0});
  return *this;
}

FaultPlan& FaultPlan::restart(TimePoint at, std::string host) {
  events.push_back({at, FaultKind::kRestart, std::move(host), 0.0});
  return *this;
}

FaultPlan& FaultPlan::crash_restart(TimePoint at, const std::string& host,
                                    Duration downtime) {
  crash(at, host);
  restart(at + downtime, host);
  return *this;
}

namespace {
std::string link_key(const std::string& a, const std::string& b) {
  return a + "|" + b;
}
}  // namespace

FaultPlan& FaultPlan::link_down(TimePoint at, const std::string& site_a,
                                const std::string& site_b) {
  events.push_back({at, FaultKind::kLinkDown, link_key(site_a, site_b), 0.0});
  return *this;
}

FaultPlan& FaultPlan::link_up(TimePoint at, const std::string& site_a,
                              const std::string& site_b) {
  events.push_back({at, FaultKind::kLinkUp, link_key(site_a, site_b), 0.0});
  return *this;
}

FaultPlan& FaultPlan::link_flap(TimePoint at, const std::string& site_a,
                                const std::string& site_b,
                                Duration for_how_long) {
  link_down(at, site_a, site_b);
  link_up(at + for_how_long, site_a, site_b);
  return *this;
}

FaultPlan& FaultPlan::set_rate(TimePoint at, FaultKind which, double rate) {
  events.push_back({at, which, {}, rate});
  return *this;
}

void FaultPlan::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
}

FaultPlan FaultPlan::churn(std::uint64_t seed,
                           const std::vector<std::string>& hosts,
                           TimePoint start, TimePoint end, Duration mean_up,
                           Duration mean_down) {
  FaultPlan plan;
  Rng rng(seed);
  for (const std::string& host : hosts) {
    // Per-host sub-stream: host order in `hosts` never changes another
    // host's schedule.
    Rng hr = rng.split();
    TimePoint t = start;
    for (;;) {
      t += std::max<Duration>(
          static_cast<Duration>(hr.exponential(static_cast<double>(mean_up))),
          1);
      if (t >= end) break;
      const Duration down = std::max<Duration>(
          static_cast<Duration>(hr.exponential(static_cast<double>(mean_down))),
          1);
      plan.crash(t, host);
      // A restart past `end` still fires: a plan must never leave a role
      // dead forever, or "no work unit permanently lost" is unprovable.
      plan.restart(t + down, host);
      t += down;
    }
  }
  plan.normalize();
  return plan;
}

void ChaosEngine::register_process(const std::string& host, Process p) {
  auto& st = procs_[host];
  st.handles = std::move(p);
  st.alive = true;
}

bool ChaosEngine::process_alive(const std::string& host) const {
  auto it = procs_.find(host);
  return it == procs_.end() || it->second.alive;
}

void ChaosEngine::arm(FaultPlan plan) {
  plan.normalize();
  const TimePoint now = events_.now();
  for (FaultEvent& ev : plan.events) {
    const Duration delay = ev.at > now ? ev.at - now : 0;
    events_.schedule(delay, [this, ev = std::move(ev)] { apply(ev); });
  }
}

void ChaosEngine::apply(const FaultEvent& ev) {
  ++injected_;
  auto& tr = obs::trace();
  if (tr.enabled()) {
    tr.record(events_.now(), obs::SpanKind::kChaosFault, tr.intern(ev.target),
              static_cast<std::int64_t>(ev.kind),
              static_cast<std::int64_t>(ev.value * 1e6));
  }
  switch (ev.kind) {
    case FaultKind::kCrash: {
      auto it = procs_.find(ev.target);
      if (it == procs_.end() || !it->second.alive) return;
      it->second.alive = false;
      ++crashes_;
      if (it->second.handles.kill) it->second.handles.kill();
      return;
    }
    case FaultKind::kRestart: {
      auto it = procs_.find(ev.target);
      if (it == procs_.end() || it->second.alive) return;
      it->second.alive = true;
      ++restarts_;
      if (it->second.handles.restart) it->second.handles.restart();
      return;
    }
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp: {
      const auto bar = ev.target.find('|');
      if (bar == std::string::npos) return;
      network_.set_partitioned(ev.target.substr(0, bar),
                               ev.target.substr(bar + 1),
                               ev.kind == FaultKind::kLinkDown);
      return;
    }
    case FaultKind::kCorruptRate:
      network_.set_corrupt_rate(ev.value);
      return;
    case FaultKind::kDuplicateRate:
      network_.set_duplicate_rate(ev.value);
      return;
    case FaultKind::kReorderRate:
      network_.set_reorder_rate(ev.value);
      return;
  }
}

}  // namespace ew::sim
