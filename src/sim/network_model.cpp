#include "sim/network_model.hpp"

#include <algorithm>
#include <cmath>

namespace ew::sim {

namespace {
const std::string kDefaultSite = "wan";
}

void NetworkModel::set_site(const std::string& host, const std::string& site) {
  host_site_[host] = site;
}

const std::string& NetworkModel::site_of(const std::string& host) const {
  auto it = host_site_.find(host);
  return it == host_site_.end() ? kDefaultSite : it->second;
}

std::pair<std::string, std::string> NetworkModel::ordered(std::string a,
                                                          std::string b) {
  if (b < a) std::swap(a, b);
  return {std::move(a), std::move(b)};
}

void NetworkModel::set_base_latency(const std::string& a, const std::string& b,
                                    Duration d) {
  base_[ordered(a, b)] = d;
}

void NetworkModel::set_partitioned(const std::string& a, const std::string& b,
                                   bool cut) {
  auto [x, y] = ordered(a, b);
  const std::string key = x + "|" + y;
  if (cut) {
    cuts_.insert(key);
  } else {
    cuts_.erase(key);
  }
}

bool NetworkModel::partitioned(const std::string& a, const std::string& b) const {
  auto [x, y] = ordered(a, b);
  return cuts_.contains(x + "|" + y);
}

NetworkModel::Delivery NetworkModel::sample(const std::string& from_host,
                                            const std::string& to_host,
                                            std::size_t bytes) {
  const std::string& sa = site_of(from_host);
  const std::string& sb = site_of(to_host);
  Delivery out;
  if (partitioned(sa, sb)) {
    out.deliver = false;
    return out;
  }
  double loss = loss_rate_ + congestion_loss_ * (congestion_ - 1.0);
  loss = std::clamp(loss, 0.0, 0.75);
  if (rng_.chance(loss)) {
    out.deliver = false;
    return out;
  }
  Duration base;
  if (auto it = base_.find(ordered(sa, sb)); it != base_.end()) {
    base = it->second;
  } else {
    base = (sa == sb) ? same_site_ : cross_site_;
  }
  double latency = static_cast<double>(base) * congestion_;
  if (sa != sb && bandwidth_ > 0) {
    latency += static_cast<double>(bytes) / bandwidth_ * congestion_ *
               static_cast<double>(kSecond);
  }
  // Multiplicative lognormal jitter centred on 1. Congestion widens the
  // tail super-linearly (queueing delay explodes near saturation), not just
  // the mean — this is what makes statically chosen time-outs misjudge
  // server availability during the spike (Section 2.2).
  latency *= rng_.lognormal(0.0, jitter_sigma_ * congestion_);
  out.latency = std::max<Duration>(static_cast<Duration>(latency), 1);
  // Chaos faults. Each gate draws only when its rate is non-zero so a
  // chaos-free run consumes exactly the RNG stream it always did.
  if (corrupt_rate_ > 0 && rng_.chance(corrupt_rate_)) {
    out.corrupt = true;
  }
  if (reorder_rate_ > 0 && rng_.chance(reorder_rate_)) {
    out.reordered = true;
    out.latency += std::max<Duration>(
        static_cast<Duration>(rng_.next_double() *
                              static_cast<double>(reorder_window_)),
        1);
  }
  if (duplicate_rate_ > 0 && rng_.chance(duplicate_rate_)) {
    out.duplicate = true;
    out.dup_latency =
        out.latency +
        std::max<Duration>(static_cast<Duration>(
                               rng_.next_double() *
                               static_cast<double>(reorder_window_)),
                           1);
  }
  return out;
}

}  // namespace ew::sim
