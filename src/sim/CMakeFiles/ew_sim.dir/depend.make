# Empty dependencies file for ew_sim.
# This may be replaced when dependencies are built.
