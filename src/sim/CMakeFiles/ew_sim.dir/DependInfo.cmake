
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/chaos.cpp" "src/sim/CMakeFiles/ew_sim.dir/chaos.cpp.o" "gcc" "src/sim/CMakeFiles/ew_sim.dir/chaos.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/ew_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/ew_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/network_model.cpp" "src/sim/CMakeFiles/ew_sim.dir/network_model.cpp.o" "gcc" "src/sim/CMakeFiles/ew_sim.dir/network_model.cpp.o.d"
  "/root/repo/src/sim/sim_transport.cpp" "src/sim/CMakeFiles/ew_sim.dir/sim_transport.cpp.o" "gcc" "src/sim/CMakeFiles/ew_sim.dir/sim_transport.cpp.o.d"
  "/root/repo/src/sim/traces.cpp" "src/sim/CMakeFiles/ew_sim.dir/traces.cpp.o" "gcc" "src/sim/CMakeFiles/ew_sim.dir/traces.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/ew_common.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/ew_net.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/ew_obs.dir/DependInfo.cmake"
  "/root/repo/src/forecast/CMakeFiles/ew_forecast.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
