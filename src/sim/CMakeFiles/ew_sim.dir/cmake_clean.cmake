file(REMOVE_RECURSE
  "CMakeFiles/ew_sim.dir/chaos.cpp.o"
  "CMakeFiles/ew_sim.dir/chaos.cpp.o.d"
  "CMakeFiles/ew_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ew_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ew_sim.dir/network_model.cpp.o"
  "CMakeFiles/ew_sim.dir/network_model.cpp.o.d"
  "CMakeFiles/ew_sim.dir/sim_transport.cpp.o"
  "CMakeFiles/ew_sim.dir/sim_transport.cpp.o.d"
  "CMakeFiles/ew_sim.dir/traces.cpp.o"
  "CMakeFiles/ew_sim.dir/traces.cpp.o.d"
  "libew_sim.a"
  "libew_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
