file(REMOVE_RECURSE
  "libew_sim.a"
)
