// Stochastic processes that drive resource fluctuation in the simulator.
//
// The paper's central experimental condition is that "Grid resource
// performance fluctuates" — CPUs are time-shared and reclaimed, hosts churn,
// networks clog. These small processes generate that behaviour:
//   * Ar1Process    — mean-reverting CPU availability fraction,
//   * DurationSampler — up/down episode lengths for host churn,
//   * SpikeSchedule — scripted events (the SC98 "judging at 11:00" spike).
#pragma once

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "forecast/dynamic_benchmark.hpp"

namespace ew::sim {

/// Mean-reverting AR(1) process clamped to [lo, hi]:
///   x' = x + theta * (mu - x) + sigma * N(0,1)
/// Used for per-host CPU availability (fraction of peak rate a guest job
/// receives on a time-shared machine).
class Ar1Process {
 public:
  struct Params {
    double mu = 0.7;      // long-run mean
    double theta = 0.2;   // reversion strength per step
    double sigma = 0.1;   // innovation stddev per step
    double lo = 0.02;
    double hi = 1.0;
  };
  Ar1Process(Params p, Rng rng, double initial);

  /// Advance one step and return the new value.
  double step();
  [[nodiscard]] double value() const { return x_; }
  /// Temporarily depress the mean (ambient contention); factor in (0, 1].
  void set_pressure(double factor) { pressure_ = factor; }

 private:
  Params p_;
  Rng rng_;
  double x_;
  double pressure_ = 1.0;
};

/// Samples episode durations for host availability churn. Up-times are
/// lognormal (long tail: some hosts stay for hours), down-times exponential.
class DurationSampler {
 public:
  struct Params {
    Duration mean_up = 2 * kHour;
    Duration mean_down = 10 * kMinute;
    double up_sigma = 1.0;  // lognormal shape for up durations
  };
  DurationSampler(Params p, Rng rng) : p_(p), rng_(rng) {}

  [[nodiscard]] Duration next_up();
  [[nodiscard]] Duration next_down();

 private:
  Params p_;
  Rng rng_;
};

/// A scripted fluctuation event: between [start, end) the network congestion
/// multiplier is raised, extra message loss is injected, and a fraction of
/// hosts is reclaimed by competing demonstrations — the Figure-2 judging
/// spike.
struct Spike {
  TimePoint start = 0;
  TimePoint end = 0;
  double congestion = 1.0;      // network latency multiplier during the spike
  double cpu_pressure = 1.0;    // multiplier (<1) on host availability means
  double reclaim_fraction = 0;  // fraction of hosts reclaimed at spike start
  std::string label;
};

/// Ordered spike list with point queries.
class SpikeSchedule {
 public:
  void add(Spike s) { spikes_.push_back(std::move(s)); }
  /// The spike active at time t, or nullptr.
  [[nodiscard]] const Spike* active(TimePoint t) const;
  [[nodiscard]] const std::vector<Spike>& spikes() const { return spikes_; }

 private:
  std::vector<Spike> spikes_;
};

/// A pre-generated scalar measurement trace — the shape the dynamic
/// benchmarking layer sees when a recorded run is replayed rather than
/// measured live. synthetic_rtt() produces the SC98-style round-trip
/// profile: a lognormal service-time baseline modulated by a mean-reverting
/// AR(1) load factor, with occasional contention spikes. replay_into()
/// pushes the whole trace through EventForecasterBank::record_batch, the
/// bulk entry point of the forecast layer.
class MeasurementTrace {
 public:
  struct RttParams {
    double base = 100.0e3;      // median service time (e.g. microseconds)
    double sigma = 0.25;        // lognormal shape of the per-request noise
    double spike_factor = 8.0;  // multiplier while a load spike is active
    double spike_prob = 0.01;   // per-sample probability a spike begins
    std::size_t spike_len = 20; // samples a spike lasts
  };

  explicit MeasurementTrace(std::vector<double> values)
      : values_(std::move(values)) {}

  static MeasurementTrace synthetic_rtt(std::size_t n, Rng rng, RttParams p);
  static MeasurementTrace synthetic_rtt(std::size_t n, Rng rng) {
    return synthetic_rtt(n, rng, RttParams{});
  }

  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Bulk-replay the trace into a bank as measurements of `tag`.
  void replay_into(EventForecasterBank& bank, const EventTag& tag) const;

 private:
  std::vector<double> values_;
};

}  // namespace ew::sim
