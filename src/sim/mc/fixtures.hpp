// The model checker's protocol fixtures: three small deterministic worlds
// (3-node clique election, 3-server gossip anti-entropy, scheduler batch
// delivery with 1 server + 2 clients) rebuilt from a seed for every explored
// branch. Each fixture zeroes the stochastic network knobs (loss, jitter) so
// the only nondeterminism left is the one the Explorer controls: the firing
// order of same-time events and the placement of crash/restart faults.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/mc/explorer.hpp"

namespace ew::sim::mc {

/// Three CliqueMembers (g0..g2) electing and re-electing a leader. Explored
/// from t=0: the join/merge races ARE the protocol under test. Faults:
/// crash g2, restart g2. Checks: trace invariants, live members converge on
/// one identical view containing exactly the live set, exactly one leader.
std::unique_ptr<World> make_clique_world(std::uint64_t seed);

/// Three GossipServers (s0..s2) with deliberately divergent pre-seeded
/// stores running digest/delta anti-entropy. Warmup forms the clique FIFO;
/// exploration permutes the sync rounds. Faults: crash s2, restart s2 (a
/// restarted server rejoins empty and must re-absorb). Checks: trace
/// invariants, live stores pairwise identical, freshest surviving versions
/// won.
std::unique_ptr<World> make_gossip_world(std::uint64_t seed);

/// A miniature scheduler (real ReportBatch/DirectiveBatch wire structs, real
/// WorkPool, real Node call layer) with two clients whose report batches are
/// hedged: every tick sends the batch twice, and only the second copy's
/// reply is honored — the first models a retry loser whose reply the call
/// layer drops. `dedupe` = the server's seq-based reply cache (PR 8's
/// semantics). With dedupe on, duplicates replay the cached directive and
/// the lease ledgers agree on every branch; with dedupe off, a crash +
/// presumed-dead sweep puts progressed units in the idle frontier, the
/// duplicate application hands them out under a reply nobody applies, and
/// the client/server lease ledgers diverge permanently — the deliberately
/// seeded bug the Explorer must catch with a minimized repro.
std::unique_ptr<World> make_sched_world(std::uint64_t seed, bool dedupe);

}  // namespace ew::sim::mc
