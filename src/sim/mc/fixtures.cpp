#include "sim/mc/fixtures.hpp"

#include <array>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/protocol.hpp"
#include "core/work_pool.hpp"
#include "gossip/clique.hpp"
#include "gossip/gossip_server.hpp"
#include "gossip/state.hpp"
#include "net/node.hpp"
#include "obs/invariants.hpp"
#include "obs/trace.hpp"
#include "sim/chaos.hpp"
#include "sim/network_model.hpp"
#include "sim/sim_transport.hpp"

namespace ew::sim::mc {
namespace {

// ---------------------------------------------------------------------------
// Shared scaffolding.

std::uint64_t fnv_mix(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv_mix(std::uint64_t h, const std::string& s) {
  return fnv_mix(h, s.data(), s.size());
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  return fnv_mix(h, &v, sizeof v);
}

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;

/// Deterministic-network base: loss and jitter zeroed so the NetworkModel's
/// unconditional RNG draws are value-irrelevant (chance(0) is always false,
/// lognormal(0,0) is exactly 1) — the precondition for the Explorer's
/// host-disjoint independence relation (DESIGN.md §14). Every host sits in
/// the default site, so all deliveries take the same base latency and
/// same-tick sends collide into genuine choice points. Each world owns the
/// process-wide trace recorder for the duration of its branch.
class BaseWorld : public World {
 public:
  explicit BaseWorld(std::uint64_t seed)
      : network_(Rng(seed)), transport_(events_, network_),
        chaos_(events_, network_) {
    network_.set_loss_rate(0.0);
    network_.set_jitter_sigma(0.0);
    auto& tr = obs::trace();
    tr.reset();
    tr.set_capacity(1u << 16);
    tr.set_enabled(true);
  }

  ~BaseWorld() override {
    auto& tr = obs::trace();
    tr.set_enabled(false);
    tr.reset();
    tr.set_capacity(4096);
  }

  EventQueue& events() override { return events_; }

 protected:
  std::vector<std::string> trace_violations(const obs::InvariantOptions& io) {
    return obs::check_invariants(obs::trace(), io).violations;
  }

  EventQueue events_;
  NetworkModel network_;
  SimTransport transport_;
  ChaosEngine chaos_;
};

// ---------------------------------------------------------------------------
// Clique election world: 3 members, explored from t=0.

class CliqueWorld final : public BaseWorld {
 public:
  static constexpr int kMembers = 3;

  explicit CliqueWorld(std::uint64_t seed) : BaseWorld(seed) {
    for (int i = 0; i < kMembers; ++i) {
      well_known_.push_back(Endpoint{host(i), 700});
    }
    for (int i = 0; i < kMembers; ++i) start_member(i);
    chaos_.register_process(host(kMembers - 1),
                            {[this] { kill_member(kMembers - 1); },
                             [this] { start_member(kMembers - 1); }});
  }

  ~CliqueWorld() override {
    // Members hold Node references; tear down in dependency order.
    for (auto& m : members_) {
      if (m.member) m.member->stop();
      m.member.reset();
      m.node.reset();
    }
  }

  [[nodiscard]] std::string name() const override { return "clique"; }

  std::vector<FaultAction> fault_actions() override {
    const std::string h = host(kMembers - 1);
    return {
        {"crash " + h,
         [this, h] { chaos_.inject({0, FaultKind::kCrash, h, 0.0}); }},
        {"restart " + h,
         [this, h] { chaos_.inject({0, FaultKind::kRestart, h, 0.0}); }},
    };
  }

  void settle() override { events_.run_for(5 * kMinute); }

  std::vector<std::string> check() override {
    std::vector<std::string> v = trace_violations(obs::InvariantOptions{});
    std::vector<int> live;
    for (int i = 0; i < kMembers; ++i) {
      if (members_[i].member) live.push_back(i);
    }
    if (live.empty()) return v;
    const gossip::View& ref = members_[live.front()].member->view();
    int leaders = 0;
    for (int i : live) {
      const auto& m = *members_[i].member;
      if (m.is_leader()) ++leaders;
      const gossip::View& vi = m.view();
      if (vi.leader != ref.leader || vi.members != ref.members) {
        v.push_back("clique: " + host(i) + " view disagrees after settle");
      }
      if (!vi.contains(well_known_[static_cast<std::size_t>(i)])) {
        v.push_back("clique: " + host(i) + " absent from its own view");
      }
      if (vi.members.size() != live.size()) {
        v.push_back("clique: " + host(i) + " view has " +
                    std::to_string(vi.members.size()) + " members, " +
                    std::to_string(live.size()) + " live");
      }
    }
    if (leaders != 1) {
      v.push_back("clique: " + std::to_string(leaders) +
                  " leaders among live members");
    }
    return v;
  }

  [[nodiscard]] std::uint64_t fingerprint() const override {
    std::uint64_t h = kFnvBasis;
    for (int i = 0; i < kMembers; ++i) {
      if (!members_[i].member) {
        h = fnv_mix(h, host(i) + ":dead");
        continue;
      }
      const gossip::View& vi = members_[i].member->view();
      h = fnv_mix(h, host(i));
      h = fnv_mix(h, vi.leader.to_string());
      for (const Endpoint& e : vi.members) h = fnv_mix(h, e.to_string());
    }
    return h;
  }

 private:
  static std::string host(int i) { return "g" + std::to_string(i); }

  void start_member(int i) {
    auto& m = members_[static_cast<std::size_t>(i)];
    // Timers the member arms in start() belong to this host.
    EventQueue::LabelScope scope(events_, host(i));
    m.node = std::make_unique<Node>(
        events_, transport_, well_known_[static_cast<std::size_t>(i)]);
    m.node->start();
    m.member = std::make_unique<gossip::CliqueMember>(*m.node, well_known_);
    m.member->start();
  }

  void kill_member(int i) {
    auto& m = members_[static_cast<std::size_t>(i)];
    if (m.member) m.member->stop();
    // Crash (and flush the node's outstanding-call callbacks) while the
    // stopped member is still alive: a pending probe/push callback captures
    // the member and must find running_ == false, not freed memory.
    if (m.node) m.node->crash();
    m.member.reset();
    m.node.reset();
  }

  struct Member {
    std::unique_ptr<Node> node;
    std::unique_ptr<gossip::CliqueMember> member;
  };

  std::vector<Endpoint> well_known_;
  std::array<Member, kMembers> members_;
};

// ---------------------------------------------------------------------------
// Gossip anti-entropy world: 3 servers, divergent pre-seeded stores.

class GossipWorld final : public BaseWorld {
 public:
  static constexpr int kServers = 3;
  static constexpr MsgType kTypeA = 0x0401;
  static constexpr MsgType kTypeB = 0x0402;
  static constexpr MsgType kTypeC = 0x0403;

  explicit GossipWorld(std::uint64_t seed) : BaseWorld(seed) {
    for (int i = 0; i < kServers; ++i) {
      well_known_.push_back(Endpoint{host(i), 750});
    }
    for (int i = 0; i < kServers; ++i) start_server(i);
    // Divergent starting stores: A's freshest copy on s1, B's on s2, C only
    // on s2. Anti-entropy must spread exactly the freshest of each.
    seed_blob(0, kTypeA, 3, "alpha-v3");
    seed_blob(1, kTypeA, 5, "alpha-v5");
    seed_blob(1, kTypeB, 1, "beta-v1");
    seed_blob(2, kTypeB, 2, "beta-v2");
    seed_blob(2, kTypeC, 1, "gamma-v1");
    chaos_.register_process(host(kServers - 1),
                            {[this] { kill_server(kServers - 1); },
                             [this] { start_server(kServers - 1); }});
  }

  ~GossipWorld() override {
    for (auto& s : servers_) {
      if (s.server) s.server->stop();
      s.server.reset();
      s.node.reset();
    }
  }

  [[nodiscard]] std::string name() const override { return "gossip"; }

  void warmup() override { events_.run_for(30 * kSecond); }

  std::vector<FaultAction> fault_actions() override {
    const std::string h = host(kServers - 1);
    return {
        {"crash " + h,
         [this, h] { chaos_.inject({0, FaultKind::kCrash, h, 0.0}); }},
        {"restart " + h,
         [this, h] { chaos_.inject({0, FaultKind::kRestart, h, 0.0}); }},
    };
  }

  void settle() override { events_.run_for(5 * kMinute); }

  std::vector<std::string> check() override {
    std::vector<std::string> v = trace_violations(obs::InvariantOptions{});
    std::vector<int> live;
    for (int i = 0; i < kServers; ++i) {
      if (servers_[i].server) live.push_back(i);
    }
    if (live.empty()) return v;
    // Pairwise store equality among the live servers (anti-entropy
    // convergence), plus a liveness floor: the freshest copy held by a
    // server that never died (s0/s1) must have won everywhere.
    const auto ref_blobs = servers_[live.front()].server->store().all();
    for (std::size_t j = 1; j < live.size(); ++j) {
      const auto other = servers_[live[j]].server->store().all();
      if (other.size() != ref_blobs.size()) {
        v.push_back("gossip: " + host(live[j]) + " store has " +
                    std::to_string(other.size()) + " types, " +
                    host(live.front()) + " has " +
                    std::to_string(ref_blobs.size()));
        continue;
      }
      for (std::size_t t = 0; t < ref_blobs.size(); ++t) {
        if (other[t].type != ref_blobs[t].type ||
            other[t].content != ref_blobs[t].content) {
          v.push_back("gossip: stores diverged at type " +
                      std::to_string(other[t].type) + " between " +
                      host(live.front()) + " and " + host(live[j]));
        }
      }
    }
    for (int i : live) {
      const auto& store = servers_[i].server->store();
      if (!store.contains(kTypeA) || store.version_of(kTypeA) != 5) {
        v.push_back("gossip: " + host(i) +
                    " missing freshest alpha (want v5)");
      }
      if (!store.contains(kTypeB)) {
        v.push_back("gossip: " + host(i) + " missing beta entirely");
      }
    }
    return v;
  }

  [[nodiscard]] std::uint64_t fingerprint() const override {
    std::uint64_t h = kFnvBasis;
    for (int i = 0; i < kServers; ++i) {
      if (!servers_[i].server) {
        h = fnv_mix(h, host(i) + ":dead");
        continue;
      }
      h = fnv_mix(h, host(i));
      for (const auto& s : servers_[i].server->store().summary()) {
        h = fnv_mix(h, static_cast<std::uint64_t>(s.type));
        h = fnv_mix(h, s.version);
        h = fnv_mix(h, s.checksum);
      }
      h = fnv_mix(h, servers_[i].server->clique().view().generation);
    }
    return h;
  }

 private:
  static std::string host(int i) { return "s" + std::to_string(i); }

  void start_server(int i) {
    auto& s = servers_[static_cast<std::size_t>(i)];
    EventQueue::LabelScope scope(events_, host(i));
    s.node = std::make_unique<Node>(
        events_, transport_, well_known_[static_cast<std::size_t>(i)]);
    s.node->start();
    gossip::GossipServer::Options o;
    o.poll_period = 1 * kHour;  // no registered components in this world
    o.peer_sync_period = 10 * kSecond;
    s.server = std::make_unique<gossip::GossipServer>(*s.node, comparators_,
                                                      well_known_, o);
    s.server->start();
  }

  void kill_server(int i) {
    auto& s = servers_[static_cast<std::size_t>(i)];
    if (s.server) s.server->stop();
    // Same ordering as CliqueWorld::kill_member: flush outstanding-call
    // callbacks into the stopped (but still allocated) server first.
    if (s.node) s.node->crash();
    s.server.reset();
    s.node.reset();
  }

  void seed_blob(int i, MsgType type, std::uint64_t version,
                 const std::string& body) {
    Bytes b(body.begin(), body.end());
    servers_[static_cast<std::size_t>(i)].server->store().merge(
        gossip::StateBlob{type, gossip::versioned_blob(version, b)});
  }

  struct Server {
    std::unique_ptr<Node> node;
    std::unique_ptr<gossip::GossipServer> server;
  };

  gossip::ComparatorRegistry comparators_;
  std::vector<Endpoint> well_known_;
  std::array<Server, kServers> servers_;
};

// ---------------------------------------------------------------------------
// Scheduler single-delivery world: MiniSched + 2 clients, hedged batches.

class SchedWorld final : public BaseWorld {
 public:
  static constexpr int kClients = 2;
  static constexpr std::uint32_t kWant = 2;     // lease size per client
  static constexpr std::uint64_t kDoneEnergy = 10'000;
  static constexpr Duration kTick = 10 * kSecond;
  static constexpr Duration kSweepPeriod = 20 * kSecond;
  static constexpr Duration kStaleAfter = 35 * kSecond;

  SchedWorld(std::uint64_t seed, bool dedupe)
      : BaseWorld(seed), dedupe_(dedupe), sched_ep_{"sched", 700} {
    {
      EventQueue::LabelScope scope(events_, sched_ep_.host);
      sched_node_ =
          std::make_unique<Node>(events_, transport_, sched_ep_);
      sched_node_->start();
      sched_node_->handle(core::msgtype::kSchedRegister,
                          [this](const IncomingMessage& msg,
                                 Responder resp) {
                            handle_register(msg, resp);
                          });
      sched_node_->handle(core::msgtype::kSchedReportBatch,
                          [this](const IncomingMessage& msg,
                                 Responder resp) {
                            handle_batch(msg, resp);
                          });
      events_.schedule(kSweepPeriod, [this] { sweep(); });
    }
    for (int i = 0; i < kClients; ++i) {
      clients_[static_cast<std::size_t>(i)].self =
          Endpoint{"c" + std::to_string(i), 700};
      start_client(i);
    }
    chaos_.register_process(clients_[0].self.host,
                            {[this] { kill_client(0); },
                             [this] { start_client(0); }});
  }

  ~SchedWorld() override {
    for (auto& c : clients_) {
      c.alive = false;
      c.node.reset();
    }
    sched_node_.reset();
  }

  [[nodiscard]] std::string name() const override {
    return dedupe_ ? "sched" : "sched-nodedupe";
  }

  // Registration handshakes complete FIFO; exploration starts just before
  // the first report-batch tick so the hedged duplicates are in the window.
  void warmup() override { events_.run_until(events_.now() + 9 * kSecond); }

  std::vector<FaultAction> fault_actions() override {
    const std::string h = clients_[0].self.host;
    return {
        {"crash " + h,
         [this, h] { chaos_.inject({0, FaultKind::kCrash, h, 0.0}); }},
        {"restart " + h,
         [this, h] { chaos_.inject({0, FaultKind::kRestart, h, 0.0}); }},
    };
  }

  void settle() override {
    // Let crash sweeps, frontier reissue, and follow-up ticks play out, then
    // freeze the clients and drain in-flight calls so check() never sees a
    // reply that is merely still on the wire.
    events_.run_for(100 * kSecond);
    frozen_ = true;
    events_.run_for(8 * kSecond);
  }

  std::vector<std::string> check() override {
    obs::InvariantOptions io;
    for (std::uint64_t id : pool_.assigned_units()) io.live_units.insert(id);
    std::vector<std::string> v = trace_violations(io);
    // Single delivery: no unit held by two live clients, and every live
    // client's lease ledger matches the scheduler's ledger exactly.
    std::map<std::uint64_t, int> holders;
    for (const Client& c : clients_) {
      if (!c.alive) continue;
      for (std::uint64_t u : c.held) ++holders[u];
    }
    for (const auto& [u, n] : holders) {
      if (n > 1) {
        v.push_back("sched: unit " + std::to_string(u) + " held by " +
                    std::to_string(n) + " live clients");
      }
    }
    for (const Client& c : clients_) {
      if (!c.alive) continue;
      std::set<std::uint64_t> server_view;
      auto it = sched_clients_.find(c.self);
      if (it != sched_clients_.end()) server_view = it->second.held;
      if (server_view != c.held) {
        v.push_back("sched: lease ledger disagreement for " + c.self.host +
                    " (client holds " + std::to_string(c.held.size()) +
                    ", scheduler says " +
                    std::to_string(server_view.size()) + ")");
      }
    }
    return v;
  }

  [[nodiscard]] std::uint64_t fingerprint() const override {
    std::uint64_t h = kFnvBasis;
    for (std::uint64_t u : pool_.assigned_units()) h = fnv_mix(h, u);
    for (const Client& c : clients_) {
      h = fnv_mix(h, c.self.host + (c.alive ? ":up" : ":down"));
      for (std::uint64_t u : c.held) h = fnv_mix(h, u);
    }
    h = fnv_mix(h, units_issued_);
    return h;
  }

 private:
  struct Client {
    Endpoint self;
    std::unique_ptr<Node> node;
    std::set<std::uint64_t> held;
    std::uint64_t seq = 0;
    bool alive = false;
  };

  struct SchedClient {
    std::set<std::uint64_t> held;
    std::uint64_t last_seq = 0;
    Bytes last_reply;
    TimePoint last_heard = 0;
  };

  // --- scheduler side -----------------------------------------------------

  void note_issued(std::uint64_t unit_id) {
    ++units_issued_;
    if (!obs::trace().enabled()) return;
    obs::trace().record(events_.now(), obs::SpanKind::kSchedUnitIssued,
                        obs::trace().intern(sched_ep_.to_string()),
                        static_cast<std::int64_t>(unit_id));
  }

  void note_reclaimed(std::uint64_t unit_id, std::int64_t reason) {
    if (!obs::trace().enabled()) return;
    obs::trace().record(events_.now(), obs::SpanKind::kSchedUnitReclaimed,
                        obs::trace().intern(sched_ep_.to_string()),
                        static_cast<std::int64_t>(unit_id), reason);
  }

  void release_units(const std::vector<std::uint64_t>& ids,
                     std::int64_t reason) {
    for (std::uint64_t id : ids) {
      if (!pool_.assigned(id)) continue;  // already reclaimed elsewhere
      pool_.release(id);
      note_reclaimed(id, reason);
      for (auto& [ep, sc] : sched_clients_) sc.held.erase(id);
    }
  }

  void top_up(SchedClient& sc, std::uint32_t want, core::DirectiveBatch& d) {
    while (sc.held.size() < want) {
      ramsey::WorkSpec spec = pool_.acquire();
      sc.held.insert(spec.unit_id);
      note_issued(spec.unit_id);
      d.assign.push_back(std::move(spec));
    }
  }

  void handle_register(const IncomingMessage& msg, Responder& resp) {
    auto hello = core::ClientHello::deserialize(msg.packet.payload);
    if (!hello.ok()) {
      resp.fail(Err::kProtocol, "bad hello");
      return;
    }
    SchedClient& sc = sched_clients_[hello->client];
    release_units({sc.held.begin(), sc.held.end()}, obs::reclaim::kReleased);
    sc.held.clear();
    sc.last_seq = 0;
    sc.last_reply.clear();
    sc.last_heard = events_.now();
    core::DirectiveBatch d;
    top_up(sc, hello->want_units, d);
    resp.ok(d.serialize());
  }

  void handle_batch(const IncomingMessage& msg, Responder& resp) {
    auto b = core::ReportBatch::deserialize(msg.packet.payload);
    if (!b.ok()) {
      resp.fail(Err::kProtocol, "bad batch");
      return;
    }
    auto it = sched_clients_.find(b->client);
    if (it == sched_clients_.end()) {
      resp.fail(Err::kRejected, "unregistered");
      return;
    }
    SchedClient& sc = it->second;
    sc.last_heard = events_.now();
    if (dedupe_ && b->seq != 0 && b->seq == sc.last_seq) {
      // Duplicate delivery of an already-applied batch: replay the cached
      // directive verbatim, mutate nothing. This is the PR 8 reply-cache
      // semantic whose absence the "sched-nodedupe" world demonstrates.
      resp.ok(sc.last_reply);
      return;
    }
    pool_.report_many(b->reports);
    std::vector<std::uint64_t> done;
    for (const auto& r : b->reports) {
      if (r.best_energy <= kDoneEnergy) done.push_back(r.unit_id);
    }
    release_units(done, obs::reclaim::kReleased);
    core::DirectiveBatch d;
    d.revoke = done;
    top_up(sc, b->want_units, d);
    Bytes reply = d.serialize();
    sc.last_seq = b->seq;
    sc.last_reply = reply;
    resp.ok(reply);
  }

  void sweep() {
    const TimePoint now = events_.now();
    for (auto it = sched_clients_.begin(); it != sched_clients_.end();) {
      if (now - it->second.last_heard > kStaleAfter) {
        release_units({it->second.held.begin(), it->second.held.end()},
                      obs::reclaim::kPresumedDead);
        it = sched_clients_.erase(it);
      } else {
        ++it;
      }
    }
    events_.schedule(kSweepPeriod, [this] { sweep(); });
  }

  // --- client side --------------------------------------------------------

  void start_client(int i) {
    Client& c = clients_[static_cast<std::size_t>(i)];
    EventQueue::LabelScope scope(events_, c.self.host);
    c.node = std::make_unique<Node>(events_, transport_, c.self);
    c.node->start();
    c.alive = true;
    c.held.clear();
    c.seq = 0;
    send_register(c);
  }

  void kill_client(int i) {
    Client& c = clients_[static_cast<std::size_t>(i)];
    c.alive = false;  // pending tick closures check this and bail
    if (c.node) c.node->crash();
    c.node.reset();
    c.held.clear();
  }

  void send_register(Client& c) {
    core::ClientHello h;
    h.client = c.self;
    h.host = c.self.host;
    h.want_units = kWant;
    c.node->call(sched_ep_, core::msgtype::kSchedRegister, h.serialize(),
                 CallOptions::fixed(5 * kSecond),
                 [this, &c](Result<Bytes> r) {
                   if (!c.alive) return;
                   if (!r.ok()) {
                     send_register(c);
                     return;
                   }
                   apply_directives(c, *r);
                   schedule_tick(c);
                 });
  }

  void schedule_tick(Client& c) {
    events_.schedule(kTick, [this, &c] { tick(c); });
  }

  void tick(Client& c) {
    if (!c.alive || frozen_) return;
    core::ReportBatch b;
    b.client = c.self;
    b.seq = ++c.seq;
    b.want_units = kWant;
    for (std::uint64_t u : c.held) {
      ramsey::WorkReport rep;
      rep.unit_id = u;
      rep.ops_done = 1000;
      // Deterministic progress: every unit finishes on its first report.
      // The done report carries no best_graph, so the pool has nothing to
      // resume and release erases the unit outright — retirement.
      rep.best_energy = u;
      rep.found = true;
      b.reports.push_back(std::move(rep));
    }
    c.held.clear();  // everything just reported is finished
    Bytes payload = b.serialize();
    // The hedge: two wire copies of the same batch. The call's reply is
    // honored; the one-way copy models a retry attempt that lost the race —
    // its reply reaches the node with an unknown seq and is dropped. The
    // call is sent first, so the FIFO baseline applies the honored copy
    // first (benign); only when the Explorer chooses to deliver the
    // duplicate first does the no-dedupe server hand out the fresh units
    // under the reply nobody applies.
    c.node->call(sched_ep_, core::msgtype::kSchedReportBatch, payload,
                 CallOptions::fixed(5 * kSecond),
                 [this, &c](Result<Bytes> r) {
                   if (!c.alive) return;
                   if (!r.ok()) {
                     send_register(c);  // lease lost: rejoin from scratch
                     return;
                   }
                   apply_directives(c, *r);
                 });
    c.node->send_oneway(sched_ep_, core::msgtype::kSchedReportBatch,
                        std::move(payload));
    schedule_tick(c);
  }

  void apply_directives(Client& c, const Bytes& payload) {
    auto d = core::DirectiveBatch::deserialize(payload);
    if (!d.ok()) return;
    for (std::uint64_t u : d->revoke) c.held.erase(u);
    for (const auto& spec : d->assign) c.held.insert(spec.unit_id);
  }

  bool dedupe_;
  Endpoint sched_ep_;
  core::WorkPool pool_{core::WorkPool::Options{}};
  std::unique_ptr<Node> sched_node_;
  std::map<Endpoint, SchedClient> sched_clients_;
  std::array<Client, kClients> clients_;
  std::uint64_t units_issued_ = 0;
  bool frozen_ = false;
};

}  // namespace

std::unique_ptr<World> make_clique_world(std::uint64_t seed) {
  return std::make_unique<CliqueWorld>(seed);
}

std::unique_ptr<World> make_gossip_world(std::uint64_t seed) {
  return std::make_unique<GossipWorld>(seed);
}

std::unique_ptr<World> make_sched_world(std::uint64_t seed, bool dedupe) {
  return std::make_unique<SchedWorld>(seed, dedupe);
}

}  // namespace ew::sim::mc
