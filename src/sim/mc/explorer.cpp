#include "sim/mc/explorer.hpp"

#include <algorithm>
#include <limits>

namespace ew::sim::mc {

std::string Repro::to_string() const {
  std::string out = "world=" + world + " steps:";
  if (choices.empty()) out += " (all-default)";
  for (const auto& [step, c] : choices) {
    out += " " + std::to_string(step) + ":";
    out += (c.kind == Choice::Kind::kFault) ? "fault[" : "ev[";
    out += std::to_string(c.index) + "]";
  }
  return out;
}

namespace {

/// Host-disjoint events commute; unlabelled events never do.
bool independent(const std::string& a, const std::string& b) {
  return !a.empty() && !b.empty() && a != b;
}

/// Dense path from a sparse repro: defaults at unlisted steps.
std::vector<Choice> densify(const Repro& repro) {
  std::uint32_t len = 0;
  for (const auto& [step, c] : repro.choices) len = std::max(len, step + 1);
  std::vector<Choice> dense(len);
  for (const auto& [step, c] : repro.choices) dense[step] = c;
  return dense;
}

/// Sparse repro from a dense path: only the non-default choices.
Repro sparsify(const std::string& world, const std::vector<Choice>& dense) {
  Repro r;
  r.world = world;
  for (std::uint32_t i = 0; i < dense.size(); ++i) {
    if (!dense[i].is_default()) r.choices.emplace_back(i, dense[i]);
  }
  return r;
}

}  // namespace

Explorer::ExecResult Explorer::execute(const Path& path, bool run_to_end) {
  ExecResult r;
  std::unique_ptr<World> world = factory_();
  world->warmup();
  EventQueue& q = world->events();
  const TimePoint t_end = opts_.window > 0
                              ? q.now() + opts_.window
                              : std::numeric_limits<TimePoint>::max();
  std::vector<FaultAction> faults = world->fault_actions();
  std::vector<bool> used(faults.size(), false);
  std::uint32_t faults_used = 0;
  std::uint32_t step = 0;
  for (;;) {
    std::vector<EventQueue::EligibleEvent> elig = q.eligible();
    if (!elig.empty() && elig.front().at > t_end) elig.clear();
    if (elig.empty() || step >= opts_.max_steps) {
      world->settle();
      r.terminal = true;
      r.depth = step;
      r.violations = world->check();
      r.fingerprint = world->fingerprint();
      return r;
    }
    Choice c;  // the default: fire the FIFO head
    if (step < path.size()) {
      c = path[step];
    } else if (!run_to_end) {
      // Frontier: hand the menu to the DFS.
      r.depth = step;
      r.menu = std::move(elig);
      if (faults_used < opts_.max_faults) {
        for (std::uint32_t i = 0; i < faults.size(); ++i) {
          if (!used[i]) r.fault_menu.push_back(i);
        }
      }
      return r;
    }
    if (c.kind == Choice::Kind::kFault) {
      if (c.index >= faults.size() || used[c.index] ||
          faults_used >= opts_.max_faults) {
        r.prefix_ok = false;  // stale path (minimization trial): abandon
        r.terminal = true;
        r.depth = step;
        return r;
      }
      used[c.index] = true;
      ++faults_used;
      faults[c.index].apply();
    } else {
      if (c.index >= elig.size() || !q.step_event(elig[c.index].id)) {
        r.prefix_ok = false;
        r.terminal = true;
        r.depth = step;
        return r;
      }
    }
    ++step;
  }
}

void Explorer::dfs(Path& path, const Sleep& sleep, Report& rep) {
  if (rep.branch_cap_hit) return;
  if (opts_.stop_at_first_violation && !rep.violations.empty()) return;
  ++rep.runs;
  ExecResult r = execute(path, /*run_to_end=*/false);
  if (r.terminal) {
    ++rep.branches;
    rep.fingerprints.insert(r.fingerprint);
    if (!r.violations.empty()) record_violation(path, r, rep);
    if (rep.branches >= opts_.max_branches) rep.branch_cap_hit = true;
    return;
  }
  ++rep.choice_points;
  if (r.menu.size() + r.fault_menu.size() >= 2) ++rep.branching_points;
  rep.max_eligible = std::max(rep.max_eligible, r.menu.size());

  // Events first (index 0 is the replay default), then fault placements.
  Sleep done;  // events already explored at this node
  for (std::uint32_t i = 0; i < r.menu.size(); ++i) {
    if (rep.branch_cap_hit) return;
    const EventQueue::EligibleEvent& ev = r.menu[i];
    if (opts_.reduce &&
        std::any_of(sleep.begin(), sleep.end(),
                    [&](const auto& s) { return s.first == ev.id; })) {
      // A sibling subtree already covers every trace that starts here.
      ++rep.sleep_pruned;
      continue;
    }
    Sleep child_sleep;
    if (opts_.reduce) {
      // Classic sleep-set update: transitions that stay asleep are those
      // already covered elsewhere AND independent of the chosen one.
      for (const auto& s : sleep) {
        if (independent(s.second, ev.label)) child_sleep.push_back(s);
      }
      for (const auto& d : done) {
        if (independent(d.second, ev.label)) child_sleep.push_back(d);
      }
    }
    path.push_back({Choice::Kind::kEvent, i});
    dfs(path, child_sleep, rep);
    path.pop_back();
    done.emplace_back(ev.id, ev.label);
  }
  for (std::uint32_t idx : r.fault_menu) {
    if (rep.branch_cap_hit) return;
    // Faults are dependent with everything: children start wide awake.
    path.push_back({Choice::Kind::kFault, idx});
    dfs(path, Sleep{}, rep);
    path.pop_back();
  }
}

Repro Explorer::minimize(const Path& path, std::uint64_t* extra_runs) {
  Path dense = path;
  const auto violates = [&](const Path& trial) {
    ++*extra_runs;
    ExecResult r = execute(trial, /*run_to_end=*/true);
    return r.prefix_ok && !r.violations.empty();
  };
  // 1. Trailing defaults are implied by replay: drop them outright.
  while (!dense.empty() && dense.back().is_default()) dense.pop_back();
  // 2. Greedy: try to turn each remaining non-default choice back into the
  //    default, keeping the substitution whenever the violation survives.
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i].is_default()) continue;
    Path trial = dense;
    trial[i] = Choice{};
    if (violates(trial)) {
      dense = std::move(trial);
      while (!dense.empty() && dense.back().is_default()) dense.pop_back();
    }
  }
  return sparsify(factory_()->name(), dense);
}

void Explorer::record_violation(const Path& path, const ExecResult& r,
                                Report& rep) {
  Violation v;
  v.messages = r.violations;
  v.raw_steps = r.depth;
  v.repro = minimize(path, &rep.runs);
  // Prove the repro replays deterministically: two fresh executions must
  // agree with each other on both the violations and the end state.
  const Path dense = densify(v.repro);
  ExecResult a = execute(dense, /*run_to_end=*/true);
  ExecResult b = execute(dense, /*run_to_end=*/true);
  rep.runs += 2;
  v.replay_deterministic = a.prefix_ok && !a.violations.empty() &&
                           a.violations == b.violations &&
                           a.fingerprint == b.fingerprint;
  rep.violations.push_back(std::move(v));
}

Report Explorer::explore() {
  Report rep;
  Path path;
  dfs(path, Sleep{}, rep);
  return rep;
}

std::vector<std::string> Explorer::replay(const Repro& repro) {
  ExecResult r = execute(densify(repro), /*run_to_end=*/true);
  if (!r.prefix_ok) return {"repro prefix no longer applies"};
  return r.violations;
}

}  // namespace ew::sim::mc
