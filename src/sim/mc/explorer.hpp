// Model-checker-lite: systematic interleaving + fault-placement exploration
// over the deterministic sim.
//
// The chaos engine (PR 4) samples the fault space one seeded trajectory at a
// time; this driver enumerates it. At every choice point the Explorer either
// fires one of the events eligible now (EventQueue::eligible / step_event)
// or interposes a fault action from a bounded FaultBudget, runs the branch
// to quiescence, evaluates the world's invariant predicates, records the
// end-state fingerprint, and backtracks by re-executing the world from its
// seed plus the choice prefix — the sim's bit-identical replay makes
// stateless search cheap, exactly the trick SimGrid's checkers rely on.
//
// Reduction: sleep sets keyed on event independence. Two events are
// independent iff both carry non-empty labels (the host the event acts on)
// and the labels differ — different hosts commute as long as the fixture
// draws no value-relevant shared randomness (loss = jitter = 0; see
// DESIGN.md §14 for why that makes host-disjointness a valid independence
// relation here). Unlabelled events and fault actions are conservatively
// dependent with everything. Sleep sets preserve every Mazurkiewicz trace,
// so any violation reachable under the bounds is still found.
//
// On violation the Explorer emits a minimized Repro — the sparse list of
// non-default choices (default = fire the FIFO head) — and verifies it
// replays deterministically before reporting it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "sim/event_queue.hpp"

namespace ew::sim::mc {

/// One fault the Explorer may interpose before an event fires. Closures
/// capture the world instance, so the menu is rebuilt per branch.
struct FaultAction {
  std::string name;
  std::function<void()> apply;
};

/// A world under exploration: a small deterministic fixture (3-5 simulated
/// hosts running one protocol) rebuilt from its seed for every branch.
class World {
 public:
  virtual ~World() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual EventQueue& events() = 0;
  /// Deterministic FIFO pre-roll (binds, registrations, handshakes) before
  /// exploration starts choosing. Runs identically on every branch.
  virtual void warmup() {}
  /// The bounded fault menu. Options::max_faults caps how many of these
  /// one branch may apply; each action fires at most once per branch, in
  /// menu order (a restart is only offered after its crash, etc. — worlds
  /// encode ordering by construction, the Explorer enforces at-most-once).
  virtual std::vector<FaultAction> fault_actions() { return {}; }
  /// Run the world FIFO past the exploration window so liveness-style
  /// predicates (re-election, store convergence) get their grace period.
  virtual void settle() {}
  /// Invariant predicates, evaluated once per branch after settle().
  /// Each string is one violated predicate; empty = branch clean.
  virtual std::vector<std::string> check() = 0;
  /// Deterministic end-state fingerprint (distinct-outcome accounting).
  [[nodiscard]] virtual std::uint64_t fingerprint() const = 0;
};

using WorldFactory = std::function<std::unique_ptr<World>()>;

/// One resolved decision at a choice point.
struct Choice {
  enum class Kind : std::uint8_t { kEvent = 0, kFault = 1 };
  Kind kind = Kind::kEvent;
  std::uint32_t index = 0;  // eligible-event index or fault-action index

  /// The replay default: fire the FIFO head (what plain step() does).
  [[nodiscard]] bool is_default() const {
    return kind == Kind::kEvent && index == 0;
  }
  bool operator==(const Choice&) const = default;
};

/// A deterministic repro: the non-default choices of one branch, sparse by
/// step index. Replay fills "fire eligible()[0]" at every unlisted step;
/// the world's own seed supplies everything else.
struct Repro {
  std::string world;
  std::vector<std::pair<std::uint32_t, Choice>> choices;

  /// "world=sched steps: 3:ev[1] 7:fault[0]" — paste-into-a-test format.
  [[nodiscard]] std::string to_string() const;
};

struct Options {
  std::uint32_t max_steps = 40;  // choice-point depth bound per branch
  std::uint32_t max_faults = 1;  // FaultBudget: fault choices per branch
  /// Only choose among events within this much sim time past warmup
  /// (0 = unbounded). Needed because periodic server timers never quiesce.
  Duration window = 0;
  bool reduce = true;  // sleep-set (DPOR-style) pruning
  /// Hard cap on complete branches (naive mode can explode combinatorially).
  std::uint64_t max_branches = 200'000;
  bool stop_at_first_violation = false;
};

struct Violation {
  std::vector<std::string> messages;
  Repro repro;                  // minimized
  std::uint32_t raw_steps = 0;  // branch depth before minimization
  bool replay_deterministic = false;  // two replays agreed exactly
};

struct Report {
  std::uint64_t branches = 0;  // complete branches executed
  std::uint64_t runs = 0;      // world re-executions (prefix replays incl.)
  std::uint64_t choice_points = 0;
  std::uint64_t branching_points = 0;  // choice points with >= 2 options
  std::uint64_t sleep_pruned = 0;      // subtrees skipped by the sleep set
  std::size_t max_eligible = 0;        // widest event menu seen
  bool branch_cap_hit = false;
  std::set<std::uint64_t> fingerprints;  // distinct end states
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const {
    return violations.empty() && !branch_cap_hit;
  }
};

class Explorer {
 public:
  Explorer(WorldFactory factory, Options opts)
      : factory_(std::move(factory)), opts_(opts) {}

  /// Systematically explore interleavings + fault placements within the
  /// bounds. Stateless: every branch re-executes the world from its seed.
  Report explore();

  /// Re-execute the branch `repro` names and return its violations (empty
  /// = clean). Bit-identical replay: same repro, same result, every time.
  std::vector<std::string> replay(const Repro& repro);

 private:
  struct ExecResult {
    bool terminal = false;
    bool prefix_ok = true;  // false: a path choice no longer applies
    std::uint32_t depth = 0;
    // Frontier menu (when !terminal): eligible events + available faults.
    std::vector<EventQueue::EligibleEvent> menu;
    std::vector<std::uint32_t> fault_menu;
    // Branch outcome (when terminal).
    std::vector<std::string> violations;
    std::uint64_t fingerprint = 0;
  };
  using Path = std::vector<Choice>;
  using Sleep = std::vector<std::pair<TimerId, std::string>>;

  /// Rebuild the world, apply `path`, and either stop at the frontier
  /// (run_to_end = false: report the menu at depth path.size()) or keep
  /// taking default choices until the branch terminates.
  ExecResult execute(const Path& path, bool run_to_end);

  void dfs(Path& path, const Sleep& sleep, Report& rep);
  void record_violation(const Path& path, const ExecResult& r, Report& rep);
  Repro minimize(const Path& path, std::uint64_t* extra_runs);

  WorldFactory factory_;
  Options opts_;
};

}  // namespace ew::sim::mc
