# Empty dependencies file for ew_mc.
# This may be replaced when dependencies are built.
