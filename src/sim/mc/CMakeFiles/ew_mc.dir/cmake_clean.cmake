file(REMOVE_RECURSE
  "CMakeFiles/ew_mc.dir/explorer.cpp.o"
  "CMakeFiles/ew_mc.dir/explorer.cpp.o.d"
  "CMakeFiles/ew_mc.dir/fixtures.cpp.o"
  "CMakeFiles/ew_mc.dir/fixtures.cpp.o.d"
  "libew_mc.a"
  "libew_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ew_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
