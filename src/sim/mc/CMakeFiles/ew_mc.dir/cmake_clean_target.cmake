file(REMOVE_RECURSE
  "libew_mc.a"
)
