// Deterministic chaos engine: a seeded, scripted schedule of faults.
//
// The paper's dependability claim — EveryWare "ran continuously from early
// June 1998 until November 12, 1998" — rests on recovery paths (Gossip
// re-registration, clique rejoin/merge, scheduler work-unit re-issue,
// persistent-state reload) that only fire when processes actually die and
// come back. A FaultPlan scripts exactly that: crash-stop, crash-restart
// after a delay, link flaps, and wire-level corruption/duplication/reorder,
// all driven through the EventQueue so two runs with the same seed replay
// bit-identically. The ChaosEngine executes the plan against registered
// per-host process handles (kill/restart closures owned by the test or
// scenario) and the NetworkModel's chaos rates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"

namespace ew::sim {

/// What one FaultEvent does when it fires.
enum class FaultKind : std::uint8_t {
  kCrash = 0,          // kill the process registered on `target`
  kRestart = 1,        // restart the process registered on `target`
  kLinkDown = 2,       // partition sites; target = "siteA|siteB"
  kLinkUp = 3,         // heal the partition; target = "siteA|siteB"
  kCorruptRate = 4,    // NetworkModel corrupt rate := value
  kDuplicateRate = 5,  // NetworkModel duplicate rate := value
  kReorderRate = 6,    // NetworkModel reorder rate := value
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// One scripted fault at an absolute sim time.
struct FaultEvent {
  TimePoint at = 0;
  FaultKind kind = FaultKind::kCrash;
  std::string target;  // host (crash/restart) or "siteA|siteB" (links)
  double value = 0.0;  // rate for the k*Rate kinds
};

/// The schedule. Building one is plain data manipulation — no randomness is
/// drawn until a generator like churn() is asked for, and then only from its
/// own seed, so plans compose without perturbing each other.
struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& crash(TimePoint at, std::string host);
  FaultPlan& restart(TimePoint at, std::string host);
  /// Crash at `at`, restart the same host `downtime` later.
  FaultPlan& crash_restart(TimePoint at, const std::string& host,
                           Duration downtime);
  FaultPlan& link_down(TimePoint at, const std::string& site_a,
                       const std::string& site_b);
  FaultPlan& link_up(TimePoint at, const std::string& site_a,
                     const std::string& site_b);
  /// Cut at `at`, heal `for_how_long` later.
  FaultPlan& link_flap(TimePoint at, const std::string& site_a,
                       const std::string& site_b, Duration for_how_long);
  FaultPlan& set_rate(TimePoint at, FaultKind which, double rate);

  /// Stable sort by time (insertion order breaks ties): the order faults
  /// are armed in, hence the replay order at equal timestamps.
  void normalize();

  /// Seeded crash/restart churn: every host cycles up/down with
  /// exponentially distributed up-times (mean `mean_up`) and down-times
  /// (mean `mean_down`) over [start, end). Identical seeds produce
  /// identical plans.
  static FaultPlan churn(std::uint64_t seed,
                         const std::vector<std::string>& hosts,
                         TimePoint start, TimePoint end, Duration mean_up,
                         Duration mean_down);
};

/// Executes a FaultPlan against the sim. Tests and scenarios register one
/// Process handle per chaos-visible host; the engine tracks liveness so a
/// double-crash is a no-op and restart only fires on a dead process.
class ChaosEngine {
 public:
  struct Process {
    std::function<void()> kill;
    std::function<void()> restart;
  };

  ChaosEngine(EventQueue& events, NetworkModel& network)
      : events_(events), network_(network) {}

  /// Register (or replace) the kill/restart handles for a host.
  void register_process(const std::string& host, Process p);

  /// Schedule every event of `plan` on the event queue (times are absolute;
  /// events already in the past fire immediately). Call once per plan.
  void arm(FaultPlan plan);

  /// Apply one fault right now, bypassing the queue. The model checker's
  /// fault-placement choices use this: the Explorer decides *between* events
  /// whether a fault fires, so the fault must not itself be an event.
  /// Liveness tracking is identical to an armed plan (double-crash no-op,
  /// restart only on a dead process) and the same kChaosFault span is
  /// recorded, so the invariant checker sees scripted and explored faults
  /// the same way.
  void inject(const FaultEvent& ev) { apply(ev); }

  [[nodiscard]] std::uint64_t faults_injected() const { return injected_; }
  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }
  /// Is the registered process on `host` currently alive? (Unregistered
  /// hosts are reported alive: chaos never touched them.)
  [[nodiscard]] bool process_alive(const std::string& host) const;

 private:
  struct ProcState {
    Process handles;
    bool alive = true;
  };

  void apply(const FaultEvent& ev);

  EventQueue& events_;
  NetworkModel& network_;
  std::unordered_map<std::string, ProcState> procs_;
  std::uint64_t injected_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
};

}  // namespace ew::sim
