// Deterministic discrete-event engine: the virtual-time Executor.
//
// This is the substrate that replaces SC98's wall clock. All toolkit
// components run unmodified on it (they only see the Executor interface),
// which lets a 12-hour Grid scenario execute in milliseconds and, more
// importantly, makes every experiment exactly reproducible from a seed.
// Events at equal times fire in scheduling order (a strictly increasing
// sequence number breaks ties), so runs are platform-independent.
#pragma once

#include <functional>
#include <map>

#include "common/clock.hpp"
#include "net/executor.hpp"

namespace ew::sim {

class EventQueue final : public Executor {
 public:
  explicit EventQueue(TimePoint start = 0) : clock_(start) {}

  [[nodiscard]] const Clock& clock() const override { return clock_; }
  void post(std::function<void()> fn) override { schedule(0, std::move(fn)); }
  TimerId schedule(Duration delay, std::function<void()> fn) override;
  void cancel(TimerId id) override;

  /// Execute events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed.
  std::size_t run_until_idle(std::size_t limit = 100'000'000);

  /// Execute events with time <= t, then advance the clock to exactly t.
  std::size_t run_until(TimePoint t);

  /// Convenience: run_until(now + d).
  std::size_t run_for(Duration d) { return run_until(clock_.now() + d); }

  /// Execute the single next event (if any). Returns false when idle.
  bool step();

  [[nodiscard]] std::size_t pending() const { return events_.size(); }
  [[nodiscard]] std::size_t executed() const { return executed_; }

 private:
  struct Key {
    TimePoint at;
    std::uint64_t seq;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    TimerId id;
    std::function<void()> fn;
  };

  VirtualClock clock_;
  std::map<Key, Entry> events_;
  std::map<TimerId, Key> timer_key_;
  std::uint64_t next_seq_ = 1;
  TimerId next_timer_ = 1;
  std::size_t executed_ = 0;
};

}  // namespace ew::sim
