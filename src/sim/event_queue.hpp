// Deterministic discrete-event engine: the virtual-time Executor.
//
// This is the substrate that replaces SC98's wall clock. All toolkit
// components run unmodified on it (they only see the Executor interface),
// which lets a 12-hour Grid scenario execute in milliseconds and, more
// importantly, makes every experiment exactly reproducible from a seed.
// Events at equal times fire in scheduling order (a strictly increasing
// sequence number breaks ties), so runs are platform-independent.
//
// Choice points (src/sim/mc): events carry an optional label (the host the
// event acts on), `eligible()` exposes every event at the earliest pending
// timestamp, and `step_event()` fires a chosen one instead of the FIFO
// head. Labels are inherited — work scheduled while an event runs gets the
// running event's label — so a packet-delivery closure labelled with the
// destination host labels everything the handler schedules in turn. The
// default step()/run_until() path is unchanged: FIFO order, bit-identical
// with pre-choice-point builds.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "net/executor.hpp"

namespace ew::sim {

class EventQueue final : public Executor {
 public:
  explicit EventQueue(TimePoint start = 0) : clock_(start) {}

  [[nodiscard]] const Clock& clock() const override { return clock_; }
  void post(std::function<void()> fn) override { schedule(0, std::move(fn)); }
  TimerId schedule(Duration delay, std::function<void()> fn) override;
  void cancel(TimerId id) override;

  /// Execute events until the queue is empty or `limit` events have run.
  /// Returns the number of events executed.
  std::size_t run_until_idle(std::size_t limit = 100'000'000);

  /// Execute events with time <= t, then advance the clock to exactly t.
  std::size_t run_until(TimePoint t);

  /// Convenience: run_until(now + d).
  std::size_t run_for(Duration d) { return run_until(clock_.now() + d); }

  /// Execute the single next event (if any). Returns false when idle.
  bool step();

  // ---- Choice-point API (model checker; see src/sim/mc) -----------------

  /// One event eligible to fire now: pending at the earliest timestamp.
  struct EligibleEvent {
    TimerId id = kInvalidTimer;
    std::uint64_t seq = 0;  // scheduling order; eligible()[0] is FIFO head
    TimePoint at = 0;
    std::string label;  // empty = unlabelled (dependent with everything)
  };

  /// All events at the earliest pending timestamp, in FIFO (seq) order.
  /// Empty when idle. Firing eligible()[0] is exactly what step() does.
  [[nodiscard]] std::vector<EligibleEvent> eligible() const;

  /// Fire the eligible event `id` out of FIFO order. Returns false (and
  /// fires nothing) if `id` is unknown, cancelled, or not at the earliest
  /// pending timestamp — a chosen event may have been cancelled by a
  /// sibling that ran before it, so callers must re-read eligible().
  bool step_event(TimerId id);

  /// While in scope, events scheduled on this queue are stamped with
  /// `label` (the host they act on) for the model checker's independence
  /// relation. Nests: the previous label is restored on destruction.
  class LabelScope {
   public:
    LabelScope(EventQueue& q, std::string label)
        : q_(q), prev_(std::move(q.schedule_label_)) {
      q_.schedule_label_ = std::move(label);
    }
    ~LabelScope() { q_.schedule_label_ = std::move(prev_); }
    LabelScope(const LabelScope&) = delete;
    LabelScope& operator=(const LabelScope&) = delete;

   private:
    EventQueue& q_;
    std::string prev_;
  };

  [[nodiscard]] std::size_t pending() const { return events_.size(); }
  [[nodiscard]] std::size_t executed() const { return executed_; }

 private:
  struct Key {
    TimePoint at;
    std::uint64_t seq;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    TimerId id;
    std::string label;
    std::function<void()> fn;
  };

  /// Extract and run one event. `it` must be valid. Shared by step() and
  /// step_event(): erases the timer mapping BEFORE the closure runs (so a
  /// self-cancel is a no-op), advances the clock, and propagates the
  /// event's label to anything the closure schedules.
  void fire(std::map<Key, Entry>::iterator it);

  VirtualClock clock_;
  std::map<Key, Entry> events_;
  std::map<TimerId, Key> timer_key_;
  std::uint64_t next_seq_ = 1;
  TimerId next_timer_ = 1;
  std::size_t executed_ = 0;
  std::string schedule_label_;  // stamped on newly scheduled events
};

}  // namespace ew::sim
