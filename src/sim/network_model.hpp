// Network model for the simulated Grid.
//
// Stands in for SC98's wide-area links and the SCINet show-floor network the
// paper describes being "reconfigured on-the-fly to handle increased demand"
// (Section 2.2). Hosts belong to sites; site pairs have base latency and
// bandwidth; a global congestion factor plus per-message lognormal jitter
// produce the fluctuating response times the forecasting layer must track;
// partitions cut site pairs entirely (exercising the clique protocol's
// subclique/merge behaviour).
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "net/endpoint.hpp"

namespace ew::sim {

class NetworkModel {
 public:
  explicit NetworkModel(Rng rng) : rng_(rng) {}

  /// Assign a host name to a site. Unassigned hosts live on site "wan".
  void set_site(const std::string& host, const std::string& site);
  [[nodiscard]] const std::string& site_of(const std::string& host) const;

  /// Base one-way latency between two sites (order-insensitive).
  void set_base_latency(const std::string& a, const std::string& b, Duration d);
  /// Defaults when no explicit pair latency is set.
  void set_default_latencies(Duration same_site, Duration cross_site) {
    same_site_ = same_site;
    cross_site_ = cross_site;
  }

  /// Global congestion multiplier (>= 1) applied to latency; the judging-time
  /// spike of Figure 2 is produced by raising this.
  void set_congestion(double factor) { congestion_ = factor < 1.0 ? 1.0 : factor; }
  [[nodiscard]] double congestion() const { return congestion_; }

  /// Baseline probability that any message is silently lost.
  void set_loss_rate(double p) { loss_rate_ = p; }
  /// Extra loss added while congested (scaled by congestion - 1).
  void set_congestion_loss(double p) { congestion_loss_ = p; }

  /// Lognormal jitter sigma applied multiplicatively to each latency sample.
  void set_jitter_sigma(double sigma) { jitter_sigma_ = sigma; }

  /// Cut / restore connectivity between two sites (both directions).
  void set_partitioned(const std::string& a, const std::string& b, bool cut);
  [[nodiscard]] bool partitioned(const std::string& a, const std::string& b) const;

  /// Effective per-byte transfer cost (cross-site only); models bandwidth.
  void set_cross_site_bandwidth(double bytes_per_sec) { bandwidth_ = bytes_per_sec; }

  /// Chaos faults (driven by sim::ChaosEngine): probability that a delivered
  /// message arrives with bit damage, arrives twice, or arrives after
  /// later-sent traffic. All default to 0 and — deliberately — draw no
  /// randomness while at 0, so enabling chaos never perturbs the RNG stream
  /// of a chaos-free run.
  void set_corrupt_rate(double p) { corrupt_rate_ = p; }
  [[nodiscard]] double corrupt_rate() const { return corrupt_rate_; }
  void set_duplicate_rate(double p) { duplicate_rate_ = p; }
  [[nodiscard]] double duplicate_rate() const { return duplicate_rate_; }
  void set_reorder_rate(double p) { reorder_rate_ = p; }
  [[nodiscard]] double reorder_rate() const { return reorder_rate_; }
  /// Cap on the extra delay a reordered (or duplicated) copy picks up.
  void set_reorder_window(Duration d) { reorder_window_ = d; }

  /// Outcome of attempting one message delivery.
  struct Delivery {
    bool deliver = true;
    bool corrupt = false;    // frame arrives with bit damage
    bool duplicate = false;  // a second copy arrives at dup_latency
    bool reordered = false;  // latency includes a reorder penalty
    Duration latency = 0;
    Duration dup_latency = 0;
  };
  /// Sample a delivery between two hosts for a message of `bytes` size.
  Delivery sample(const std::string& from_host, const std::string& to_host,
                  std::size_t bytes);

 private:
  struct PairHash {
    std::size_t operator()(const std::pair<std::string, std::string>& p) const {
      return std::hash<std::string>{}(p.first) * 1000003u ^
             std::hash<std::string>{}(p.second);
    }
  };
  static std::pair<std::string, std::string> ordered(std::string a, std::string b);

  Rng rng_;
  std::unordered_map<std::string, std::string> host_site_;
  std::unordered_map<std::pair<std::string, std::string>, Duration, PairHash> base_;
  std::unordered_set<std::string> cuts_;  // "a|b" ordered keys
  Duration same_site_ = 1 * kMillisecond;
  Duration cross_site_ = 40 * kMillisecond;
  double congestion_ = 1.0;
  double loss_rate_ = 0.001;
  double congestion_loss_ = 0.02;
  double jitter_sigma_ = 0.25;
  double bandwidth_ = 2.0e6;  // bytes/sec cross-site
  double corrupt_rate_ = 0.0;
  double duplicate_rate_ = 0.0;
  double reorder_rate_ = 0.0;
  Duration reorder_window_ = 250 * kMillisecond;
};

}  // namespace ew::sim
