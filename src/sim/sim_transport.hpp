// SimTransport: packet delivery through the simulated network.
//
// The simulator's counterpart of TcpTransport. Sends consult the
// NetworkModel for loss/latency/partitions and schedule delivery on the
// EventQueue. Failure semantics mirror TCP as the toolkit experiences it:
//   * destination host down, or message lost → silent drop; the sender finds
//     out via its (forecast-driven) time-out, exactly as at SC98,
//   * host up but nothing bound to the port → immediate kRefused (RST).
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "net/transport.hpp"
#include "sim/event_queue.hpp"
#include "sim/network_model.hpp"

namespace ew::sim {

class SimTransport final : public Transport {
 public:
  SimTransport(EventQueue& events, NetworkModel& network)
      : events_(events), network_(network) {}

  Status bind(const Endpoint& self, PacketHandler handler) override;
  void unbind(const Endpoint& self) override;
  Status send(const Endpoint& from, const Endpoint& to, Packet packet) override;

  /// Host power state; a down host's endpoints receive nothing and sends to
  /// them are silently dropped. Hosts default to up.
  void set_host_up(const std::string& host, bool up);
  [[nodiscard]] bool host_up(const std::string& host) const;

  /// Targeted fault injection: return true to silently drop a message,
  /// on top of the network model's stochastic loss. Pass nullptr to clear.
  using DropFn = std::function<bool(const Endpoint& from, const Endpoint& to,
                                    const Packet&)>;
  void set_drop_fn(DropFn fn) { drop_ = std::move(fn); }

  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t packets_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }
  [[nodiscard]] std::uint64_t packets_corrupted() const { return corrupted_; }
  [[nodiscard]] std::uint64_t packets_duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t packets_reordered() const { return reordered_; }

 private:
  void deliver_at(Duration latency, const Endpoint& from, const Endpoint& to,
                  Packet packet, bool corrupt);

  EventQueue& events_;
  NetworkModel& network_;
  std::unordered_map<Endpoint, PacketHandler, EndpointHash> bindings_;
  std::unordered_set<std::string> down_hosts_;
  DropFn drop_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace ew::sim
