#include "sim/sim_transport.hpp"

#include <utility>

namespace ew::sim {

Status SimTransport::bind(const Endpoint& self, PacketHandler handler) {
  if (!self.valid()) return Status(Err::kRejected, "invalid endpoint");
  auto [it, inserted] = bindings_.emplace(self, std::move(handler));
  (void)it;
  if (!inserted) {
    return Status(Err::kRejected, "endpoint already bound: " + self.to_string());
  }
  return {};
}

void SimTransport::unbind(const Endpoint& self) { bindings_.erase(self); }

void SimTransport::set_host_up(const std::string& host, bool up) {
  if (up) {
    down_hosts_.erase(host);
  } else {
    down_hosts_.insert(host);
  }
}

bool SimTransport::host_up(const std::string& host) const {
  return !down_hosts_.contains(host);
}

Status SimTransport::send(const Endpoint& from, const Endpoint& to, Packet packet) {
  if (!host_up(from.host)) {
    // The sending host died between scheduling and sending; nothing leaves.
    ++dropped_;
    return Status(Err::kUnavailable, "sending host is down");
  }
  if (!host_up(to.host)) {
    ++dropped_;
    return {};  // SYN into the void: the sender only learns via time-out
  }
  if (host_up(to.host) && !bindings_.contains(to)) {
    return Status(Err::kRefused, "no listener at " + to.to_string());
  }
  if (drop_ && drop_(from, to, packet)) {
    ++dropped_;
    return {};  // injected fault: silent loss
  }
  const std::size_t size = wire::kHeaderSize + packet.payload.size();
  auto d = network_.sample(from.host, to.host, size);
  if (!d.deliver) {
    ++dropped_;
    return {};  // lost in the network
  }
  ++sent_;
  bytes_ += size;
  if (d.reordered) ++reordered_;
  if (d.duplicate) {
    // The network minted a second copy; both arrive as real deliveries and
    // the endpoints' dedup (response seq matching, idempotent handlers)
    // must absorb it.
    ++duplicated_;
    deliver_at(d.dup_latency, from, to, packet, /*corrupt=*/false);
  }
  if (d.corrupt) ++corrupted_;
  deliver_at(d.latency, from, to, std::move(packet), d.corrupt);
  return {};
}

void SimTransport::deliver_at(Duration latency, const Endpoint& from,
                              const Endpoint& to, Packet packet, bool corrupt) {
  // Label the delivery (and, by inheritance, everything the receiving
  // handler schedules) with the destination host: the model checker's
  // independence relation is "different hosts commute".
  EventQueue::LabelScope scope(events_, to.host);
  events_.schedule(latency, [this, from, to, corrupt,
                             pkt = std::move(packet)]() mutable {
    if (!host_up(to.host)) return;  // receiver died in flight
    auto it = bindings_.find(to);
    if (it == bindings_.end()) return;  // unbound in flight
    if (corrupt) {
      // Emulate bit damage at the receiver's integrity boundary: frame the
      // packet, flip one byte inside the checksummed region, and run the
      // real FrameParser. The damaged frame must be rejected (counted as
      // net.frames.corrupt), never delivered; if the checksum ever failed
      // to catch it, the damaged payload would flow to the handler exactly
      // as it would in production.
      Bytes framed = encode_packet(pkt);
      framed.back() ^= 0x40;  // payload's last byte, or the checksum itself
      FrameParser parser;
      parser.feed(framed);
      auto parsed = parser.next();
      if (!parsed.ok()) return;  // rejected at the integrity boundary
      it->second(IncomingMessage{from, std::move(*parsed)});
      return;
    }
    it->second(IncomingMessage{from, std::move(pkt)});
  });
}

}  // namespace ew::sim
