#include "sim/sim_transport.hpp"

#include <utility>

namespace ew::sim {

Status SimTransport::bind(const Endpoint& self, PacketHandler handler) {
  if (!self.valid()) return Status(Err::kRejected, "invalid endpoint");
  auto [it, inserted] = bindings_.emplace(self, std::move(handler));
  (void)it;
  if (!inserted) {
    return Status(Err::kRejected, "endpoint already bound: " + self.to_string());
  }
  return {};
}

void SimTransport::unbind(const Endpoint& self) { bindings_.erase(self); }

void SimTransport::set_host_up(const std::string& host, bool up) {
  if (up) {
    down_hosts_.erase(host);
  } else {
    down_hosts_.insert(host);
  }
}

bool SimTransport::host_up(const std::string& host) const {
  return !down_hosts_.contains(host);
}

Status SimTransport::send(const Endpoint& from, const Endpoint& to, Packet packet) {
  if (!host_up(from.host)) {
    // The sending host died between scheduling and sending; nothing leaves.
    ++dropped_;
    return Status(Err::kUnavailable, "sending host is down");
  }
  if (!host_up(to.host)) {
    ++dropped_;
    return {};  // SYN into the void: the sender only learns via time-out
  }
  if (host_up(to.host) && !bindings_.contains(to)) {
    return Status(Err::kRefused, "no listener at " + to.to_string());
  }
  if (drop_ && drop_(from, to, packet)) {
    ++dropped_;
    return {};  // injected fault: silent loss
  }
  const std::size_t size = wire::kHeaderSize + packet.payload.size();
  auto d = network_.sample(from.host, to.host, size);
  if (!d.deliver) {
    ++dropped_;
    return {};  // lost in the network
  }
  ++sent_;
  bytes_ += size;
  events_.schedule(d.latency, [this, from, to, pkt = std::move(packet)]() mutable {
    if (!host_up(to.host)) return;  // receiver died in flight
    auto it = bindings_.find(to);
    if (it == bindings_.end()) return;  // unbound in flight
    it->second(IncomingMessage{from, std::move(pkt)});
  });
  return {};
}

}  // namespace ew::sim
