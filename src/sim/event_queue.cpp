#include "sim/event_queue.hpp"

#include <stdexcept>

namespace ew::sim {

TimerId EventQueue::schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  const TimerId id = next_timer_++;
  const Key key{clock_.now() + delay, next_seq_++};
  events_.emplace(key, Entry{id, std::move(fn)});
  timer_key_.emplace(id, key);
  return id;
}

void EventQueue::cancel(TimerId id) {
  auto it = timer_key_.find(id);
  if (it == timer_key_.end()) return;
  events_.erase(it->second);
  timer_key_.erase(it);
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  auto node = events_.extract(events_.begin());
  timer_key_.erase(node.mapped().id);
  clock_.set(node.key().at);
  ++executed_;
  node.mapped().fn();
  return true;
}

std::size_t EventQueue::run_until_idle(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && step()) ++n;
  if (n == limit) throw std::runtime_error("EventQueue: event limit hit (livelock?)");
  return n;
}

std::size_t EventQueue::run_until(TimePoint t) {
  std::size_t n = 0;
  while (!events_.empty() && events_.begin()->first.at <= t) {
    step();
    ++n;
  }
  if (clock_.now() < t) clock_.set(t);
  return n;
}

}  // namespace ew::sim
