#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace ew::sim {

TimerId EventQueue::schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  const TimerId id = next_timer_++;
  const Key key{clock_.now() + delay, next_seq_++};
  events_.emplace(key, Entry{id, schedule_label_, std::move(fn)});
  timer_key_.emplace(id, key);
  return id;
}

void EventQueue::cancel(TimerId id) {
  auto it = timer_key_.find(id);
  if (it == timer_key_.end()) return;
  events_.erase(it->second);
  timer_key_.erase(it);
}

void EventQueue::fire(std::map<Key, Entry>::iterator it) {
  auto node = events_.extract(it);
  // Erase the timer mapping before the closure runs: cancel() of the firing
  // event from inside its own closure must be a no-op, not a map corruption.
  timer_key_.erase(node.mapped().id);
  clock_.set(node.key().at);
  ++executed_;
  // Label inheritance: everything the closure schedules belongs to the same
  // host the firing event acted on (unless a nested LabelScope overrides).
  std::string prev = std::move(schedule_label_);
  schedule_label_ = std::move(node.mapped().label);
  node.mapped().fn();
  schedule_label_ = std::move(prev);
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  fire(events_.begin());
  return true;
}

std::vector<EventQueue::EligibleEvent> EventQueue::eligible() const {
  std::vector<EligibleEvent> out;
  if (events_.empty()) return out;
  const TimePoint at = events_.begin()->first.at;
  for (auto it = events_.begin(); it != events_.end() && it->first.at == at;
       ++it) {
    out.push_back({it->second.id, it->first.seq, at, it->second.label});
  }
  return out;
}

bool EventQueue::step_event(TimerId id) {
  auto tk = timer_key_.find(id);
  if (tk == timer_key_.end()) return false;
  if (events_.empty() || tk->second.at != events_.begin()->first.at) {
    return false;  // not at the earliest pending timestamp: not eligible
  }
  auto it = events_.find(tk->second);
  if (it == events_.end()) return false;
  fire(it);
  return true;
}

std::size_t EventQueue::run_until_idle(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && step()) ++n;
  if (n == limit) throw std::runtime_error("EventQueue: event limit hit (livelock?)");
  return n;
}

std::size_t EventQueue::run_until(TimePoint t) {
  std::size_t n = 0;
  while (!events_.empty() && events_.begin()->first.at <= t) {
    step();
    ++n;
  }
  if (clock_.now() < t) clock_.set(t);
  return n;
}

}  // namespace ew::sim
