#include "sim/traces.hpp"

#include <algorithm>
#include <cmath>

namespace ew::sim {

Ar1Process::Ar1Process(Params p, Rng rng, double initial)
    : p_(p), rng_(rng), x_(std::clamp(initial, p.lo, p.hi)) {}

double Ar1Process::step() {
  const double mu = p_.mu * pressure_;
  x_ += p_.theta * (mu - x_) + p_.sigma * rng_.normal(0.0, 1.0);
  x_ = std::clamp(x_, p_.lo, p_.hi);
  return x_;
}

Duration DurationSampler::next_up() {
  // Lognormal with the requested mean: mean = exp(mu + sigma^2/2).
  const double sigma = p_.up_sigma;
  const double mu = std::log(static_cast<double>(p_.mean_up)) - sigma * sigma / 2.0;
  const double v = rng_.lognormal(mu, sigma);
  return std::max<Duration>(static_cast<Duration>(v), kSecond);
}

Duration DurationSampler::next_down() {
  const double v = rng_.exponential(static_cast<double>(p_.mean_down));
  return std::max<Duration>(static_cast<Duration>(v), kSecond);
}

const Spike* SpikeSchedule::active(TimePoint t) const {
  for (const auto& s : spikes_) {
    if (t >= s.start && t < s.end) return &s;
  }
  return nullptr;
}

}  // namespace ew::sim
