#include "sim/traces.hpp"

#include <algorithm>
#include <cmath>

namespace ew::sim {

Ar1Process::Ar1Process(Params p, Rng rng, double initial)
    : p_(p), rng_(rng), x_(std::clamp(initial, p.lo, p.hi)) {}

double Ar1Process::step() {
  const double mu = p_.mu * pressure_;
  x_ += p_.theta * (mu - x_) + p_.sigma * rng_.normal(0.0, 1.0);
  x_ = std::clamp(x_, p_.lo, p_.hi);
  return x_;
}

Duration DurationSampler::next_up() {
  // Lognormal with the requested mean: mean = exp(mu + sigma^2/2).
  const double sigma = p_.up_sigma;
  const double mu = std::log(static_cast<double>(p_.mean_up)) - sigma * sigma / 2.0;
  const double v = rng_.lognormal(mu, sigma);
  return std::max<Duration>(static_cast<Duration>(v), kSecond);
}

Duration DurationSampler::next_down() {
  const double v = rng_.exponential(static_cast<double>(p_.mean_down));
  return std::max<Duration>(static_cast<Duration>(v), kSecond);
}

const Spike* SpikeSchedule::active(TimePoint t) const {
  for (const auto& s : spikes_) {
    if (t >= s.start && t < s.end) return &s;
  }
  return nullptr;
}

MeasurementTrace MeasurementTrace::synthetic_rtt(std::size_t n, Rng rng,
                                                 RttParams p) {
  std::vector<double> v;
  v.reserve(n);
  Ar1Process load(Ar1Process::Params{}, Rng(rng.next_u64()), 0.7);
  std::size_t spike_left = 0;
  const double mu = std::log(p.base) - p.sigma * p.sigma / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (spike_left == 0 && rng.next_double() < p.spike_prob) {
      spike_left = p.spike_len;
    }
    // Low availability -> slow responses: divide by the AR(1) load factor.
    double rtt = rng.lognormal(mu, p.sigma) / std::max(load.step(), 0.05);
    if (spike_left > 0) {
      rtt *= p.spike_factor;
      --spike_left;
    }
    v.push_back(rtt);
  }
  return MeasurementTrace(std::move(v));
}

void MeasurementTrace::replay_into(EventForecasterBank& bank,
                                   const EventTag& tag) const {
  bank.record_batch(tag, values_);
}

}  // namespace ew::sim
