// Range-sharded work pool: N WorkPool shards behind a thin router.
//
// Shard s of N owns the unit-id residue class { s+1, s+1+N, s+1+2N, ... }, so
// ownership is a modulo — no directory, no rebalancing metadata — and a
// restarted shard can re-import only its own slice of the frontier. The
// router exposes *batch* entry points (issue_many / report_many /
// reclaim_many) sized for whole directive batches: the scheduler makes one
// router call per client round-trip instead of one pool call per unit.
//
// Frontier reuse is global: issue_many() always prefers the best (lowest
// energy) idle frontier unit across ALL shards over minting fresh work, and
// fresh mints rotate round-robin. Pulling a frontier unit out of turn is the
// router's work-stealing — a shard whose clients died (Condor eviction
// churn) has its orphaned frontier drained by whoever asks next — and is
// counted in steals().
//
// With shards == 1 the router is a transparent wrapper: every operation maps
// 1:1 onto a plain WorkPool, bit-identically (pinned by test).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/work_pool.hpp"

namespace ew::core {

class ShardedWorkPool {
 public:
  struct Options {
    WorkPool::Options pool;     // per-shard template (first_id/id_stride set here)
    std::uint32_t shards = 1;   // number of range-shards
  };

  explicit ShardedWorkPool(Options opts);

  /// Which shard owns this unit id.
  [[nodiscard]] std::uint32_t owner_of(std::uint64_t unit_id) const;

  /// Issue n units: globally best frontier units first, then fresh mints
  /// rotated across shards.
  std::vector<ramsey::WorkSpec> issue_many(std::size_t n);
  /// Re-issue one specific idle unit (migration path).
  std::optional<ramsey::WorkSpec> issue_unit(std::uint64_t unit_id);
  /// Apply a batch of progress reports, routed to owning shards.
  void report_many(std::span<const ramsey::WorkReport> reps);
  /// Release a batch of units (client dead, revoked, or re-registered);
  /// each shard trims its idle frontier once.
  void reclaim_many(std::span<const std::uint64_t> ids);

  // Single-unit shims kept for tests and legacy call sites.
  ramsey::WorkSpec acquire();
  void report(const ramsey::WorkReport& rep);
  void release(std::uint64_t unit_id);

  void set_kind_chooser(WorkPool::KindChooser chooser);

  [[nodiscard]] bool assigned(std::uint64_t unit_id) const;
  [[nodiscard]] std::optional<std::uint64_t> best_energy(std::uint64_t unit_id) const;
  [[nodiscard]] std::optional<ramsey::HeuristicKind> unit_kind(std::uint64_t unit_id) const;
  [[nodiscard]] std::size_t idle_frontier_size() const;
  [[nodiscard]] std::vector<std::uint64_t> assigned_units() const;
  [[nodiscard]] std::size_t assigned_count() const;
  [[nodiscard]] std::size_t units_issued() const;
  [[nodiscard]] const WorkPool::Options& options() const {
    return shards_.front().options();
  }

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const WorkPool& shard(std::uint32_t k) const {
    return shards_[k];
  }
  /// Frontier units pulled from a shard out of mint rotation — cross-shard
  /// work-stealing events.
  [[nodiscard]] std::uint64_t steals() const { return steals_; }

  /// Incremental checkpoint surface: per-shard dirty flags and export/import
  /// so a scheduler checkpoints one changed shard at a time and a restarted
  /// shard replays only its own range.
  [[nodiscard]] bool shard_dirty(std::uint32_t k) const {
    return shards_[k].dirty();
  }
  [[nodiscard]] Bytes export_shard(std::uint32_t k);
  std::size_t import_shard(std::uint32_t k, const Bytes& blob);

 private:
  std::vector<WorkPool> shards_;
  std::uint32_t mint_cursor_ = 0;  // round-robin shard for fresh mints
  std::uint64_t steals_ = 0;
};

}  // namespace ew::core
