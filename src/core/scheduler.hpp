// Scheduling servers (paper Sections 3.1.1, 5.4).
//
// "Each client periodically reports computational progress to a scheduling
// server. Servers are programmed to issue different control directives based
// on the type of algorithm the client is executing, how much progress the
// client has made, and the most recent computational rate of the client.
// The scheduling servers are also responsible for migrating work based on
// forecasts of available resource performance levels. ... Rather than basing
// that prediction solely on the last performance measurement for each
// client, the scheduler uses the NWS lightweight forecasting facilities."
//
// Per-client state here is soft (schedulers are "stateless" in the paper's
// sense: a killed scheduler loses nothing a client re-registration cannot
// rebuild), so schedulers can run inside volatile pools — the Section 5.4
// ablation toggles exactly that.
//
// The wire surface is the batched directive API (DESIGN.md §13): clients
// hold a *lease* of up to want_units units, ship one kSchedReportBatch per
// quantum covering every unit they touched, and receive one DirectiveBatch
// (revocations + assignments) back. Report batches carry a per-client
// sequence number; the scheduler caches the last reply and replays it on a
// duplicate, so the client may retry and hedge the call without any pool
// mutation running twice. The work pool behind the scheduler is range-
// sharded (ShardedWorkPool) and checkpointed per shard, so restart recovery
// re-imports only the shards that changed — each into exactly its own id
// range. The old per-unit kSchedReport message is retired: no handler is
// registered for it, so stale clients get an unhandled-type rejection and
// must upgrade to the batch wire.
#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/protocol.hpp"
#include "core/sharded_work_pool.hpp"
#include "forecast/selector.hpp"
#include "net/node.hpp"

namespace ew::core {

class SchedulerServer {
 public:
  struct Options {
    Endpoint logging;               // logging server (one-way records)
    Endpoint state_manager;         // persistent state manager
    WorkPool::Options pool;
    /// Range-shards behind this scheduler: unit id ownership is id mod
    /// shards, checkpoints and restart re-import are per shard.
    std::uint32_t pool_shards = 1;
    /// Ceiling on any one client's lease (want_units is clamped to this).
    std::uint32_t max_units_per_client = 8192;
    Duration sweep_period = 30 * kSecond;
    double overdue_factor = 5.0;    // multiples of forecast report interval
    Duration overdue_floor = 2 * kMinute;  // before forecasts warm up
    Duration migration_period = 60 * kSecond;
    double migration_ratio = 0.25;  // slow if forecast < ratio * pool median
    /// A client's workload is moved at most once per cooldown — permanently
    /// slow resources (interpreted Java applets) must not thrash the pool.
    Duration migration_cooldown = 30 * kMinute;
    /// Frontier checkpoint cadence to the persistent state manager (the
    /// scheduler's soft state rebuilds from re-registrations, but search
    /// progress must survive a restart). 0 disables.
    Duration checkpoint_period = 5 * kMinute;
  };

  SchedulerServer(Node& node, Options opts);

  void start();
  void stop();

  /// The best (lowest-energy) coloring this scheduler has seen, as a
  /// versioned gossip blob — exposed to the Gossip service by the app
  /// assembly so every scheduler converges on the global best.
  [[nodiscard]] Bytes best_graph_state() const;
  void apply_best_graph_state(const Bytes& blob);

  [[nodiscard]] std::size_t active_clients() const { return clients_.size(); }
  [[nodiscard]] std::uint64_t reports_received() const { return reports_; }
  [[nodiscard]] std::uint64_t report_batches_received() const { return batches_; }
  [[nodiscard]] std::uint64_t batch_replays() const { return replays_; }
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] std::uint64_t clients_presumed_dead() const { return presumed_dead_; }
  [[nodiscard]] std::uint64_t counterexamples_stored() const { return found_stored_; }
  [[nodiscard]] std::uint64_t frontier_units_restored() const { return restored_; }
  [[nodiscard]] const ShardedWorkPool& pool() const { return pool_; }

  /// Per-heuristic progress accounting behind the directive policy: energy
  /// improvement delivered per billion ops, by heuristic kind.
  struct KindStats {
    double improvement = 0;  // total energy reduction observed
    double gops = 0;         // billions of ops spent
    [[nodiscard]] double yield() const { return gops > 0 ? improvement / gops : 0; }
  };
  [[nodiscard]] const std::array<KindStats, 3>& kind_stats() const {
    return kind_stats_;
  }

 private:
  struct ClientInfo {
    ClientHello hello;
    std::uint32_t want = 1;              // clamped lease target
    std::vector<std::uint64_t> units;    // lease: units this client holds
    TimePoint last_report = 0;
    AdaptiveForecaster rate{AdaptiveForecaster::nws_default()};      // ops/sec
    AdaptiveForecaster interval{AdaptiveForecaster::nws_default()};  // us between reports
    DirectiveBatch pending;  // revokes/assignments queued for next contact
    TimePoint last_migration = 0;
    std::uint64_t last_seq = 0;  // highest report batch seq absorbed
    Bytes last_reply;            // replayed on a duplicate seq
  };

  void on_register(const IncomingMessage& msg, const Responder& resp);
  void on_report_batch(const IncomingMessage& msg, const Responder& resp);
  /// Shared core for both report paths (the per-unit shim passes a batch of
  /// one with seq 0): absorbs the reports, applies forecasters/policy, and
  /// replies with pending directives plus a lease top-up.
  void handle_report_batch(ReportBatch&& batch, const Responder& resp);
  void sweep_tick();
  void migrate_tick();
  void checkpoint_tick();
  void restore_frontier();
  [[nodiscard]] std::string checkpoint_name(std::uint32_t shard) const;
  void forward_log(const ClientInfo& info, std::uint64_t total_ops,
                   std::uint64_t best_energy, bool found);
  void store_counterexample(const ramsey::WorkReport& rep);
  void note_best(std::uint64_t energy, const Bytes& graph_blob, bool found);
  void note_unit_issued(std::uint64_t unit_id);
  void note_unit_reclaimed(std::uint64_t unit_id, std::int64_t reason);
  void update_pool_gauges();
  [[nodiscard]] std::uint32_t clamp_want(std::uint32_t want) const;
  [[nodiscard]] Duration overdue_threshold(const ClientInfo& info) const;
  [[nodiscard]] ramsey::HeuristicKind choose_kind(std::uint64_t unit_id) const;

  Node& node_;
  Options opts_;
  ShardedWorkPool pool_;
  std::unordered_map<Endpoint, ClientInfo, EndpointHash> clients_;
  bool running_ = false;
  std::uint64_t reports_ = 0;   // unit-reports absorbed (batch items)
  std::uint64_t batches_ = 0;   // report batches absorbed
  std::uint64_t replays_ = 0;   // duplicate batches answered from cache
  std::uint64_t steals_seen_ = 0;  // pool steals already mirrored to obs
  std::uint64_t migrations_ = 0;
  std::uint64_t presumed_dead_ = 0;
  std::uint64_t found_stored_ = 0;
  std::uint64_t restored_ = 0;
  // Gossip-synchronized best coloring (version = improvement counter).
  std::uint64_t best_version_ = 0;
  std::uint64_t best_energy_ = ~0ULL;
  Bytes best_graph_;
  std::array<KindStats, 3> kind_stats_{};
  TimerId sweep_timer_ = kInvalidTimer;
  TimerId migrate_timer_ = kInvalidTimer;
  TimerId checkpoint_timer_ = kInvalidTimer;
};

}  // namespace ew::core
