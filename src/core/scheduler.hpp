// Scheduling servers (paper Sections 3.1.1, 5.4).
//
// "Each client periodically reports computational progress to a scheduling
// server. Servers are programmed to issue different control directives based
// on the type of algorithm the client is executing, how much progress the
// client has made, and the most recent computational rate of the client.
// The scheduling servers are also responsible for migrating work based on
// forecasts of available resource performance levels. ... Rather than basing
// that prediction solely on the last performance measurement for each
// client, the scheduler uses the NWS lightweight forecasting facilities."
//
// Per-client state here is soft (schedulers are "stateless" in the paper's
// sense: a killed scheduler loses nothing a client re-registration cannot
// rebuild), so schedulers can run inside volatile pools — the Section 5.4
// ablation toggles exactly that.
#pragma once

#include <array>
#include <string>
#include <unordered_map>

#include "core/protocol.hpp"
#include "core/work_pool.hpp"
#include "forecast/selector.hpp"
#include "net/node.hpp"

namespace ew::core {

class SchedulerServer {
 public:
  struct Options {
    Endpoint logging;               // logging server (one-way records)
    Endpoint state_manager;         // persistent state manager
    WorkPool::Options pool;
    Duration sweep_period = 30 * kSecond;
    double overdue_factor = 5.0;    // multiples of forecast report interval
    Duration overdue_floor = 2 * kMinute;  // before forecasts warm up
    Duration migration_period = 60 * kSecond;
    double migration_ratio = 0.25;  // slow if forecast < ratio * pool median
    /// A client's workload is moved at most once per cooldown — permanently
    /// slow resources (interpreted Java applets) must not thrash the pool.
    Duration migration_cooldown = 30 * kMinute;
    /// Frontier checkpoint cadence to the persistent state manager (the
    /// scheduler's soft state rebuilds from re-registrations, but search
    /// progress must survive a restart). 0 disables.
    Duration checkpoint_period = 5 * kMinute;
  };

  SchedulerServer(Node& node, Options opts);

  void start();
  void stop();

  /// The best (lowest-energy) coloring this scheduler has seen, as a
  /// versioned gossip blob — exposed to the Gossip service by the app
  /// assembly so every scheduler converges on the global best.
  [[nodiscard]] Bytes best_graph_state() const;
  void apply_best_graph_state(const Bytes& blob);

  [[nodiscard]] std::size_t active_clients() const { return clients_.size(); }
  [[nodiscard]] std::uint64_t reports_received() const { return reports_; }
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] std::uint64_t clients_presumed_dead() const { return presumed_dead_; }
  [[nodiscard]] std::uint64_t counterexamples_stored() const { return found_stored_; }
  [[nodiscard]] std::uint64_t frontier_units_restored() const { return restored_; }
  [[nodiscard]] const WorkPool& pool() const { return pool_; }

  /// Per-heuristic progress accounting behind the directive policy: energy
  /// improvement delivered per billion ops, by heuristic kind.
  struct KindStats {
    double improvement = 0;  // total energy reduction observed
    double gops = 0;         // billions of ops spent
    [[nodiscard]] double yield() const { return gops > 0 ? improvement / gops : 0; }
  };
  [[nodiscard]] const std::array<KindStats, 3>& kind_stats() const {
    return kind_stats_;
  }

 private:
  struct ClientInfo {
    ClientHello hello;
    std::uint64_t unit_id = 0;
    TimePoint last_report = 0;
    AdaptiveForecaster rate{AdaptiveForecaster::nws_default()};      // ops/sec
    AdaptiveForecaster interval{AdaptiveForecaster::nws_default()};  // us between reports
    std::optional<ramsey::WorkSpec> pending;  // directive for next report
    TimePoint last_migration = 0;
  };

  void on_register(const IncomingMessage& msg, const Responder& resp);
  void on_report(const IncomingMessage& msg, const Responder& resp);
  void sweep_tick();
  void migrate_tick();
  void checkpoint_tick();
  void restore_frontier();
  [[nodiscard]] std::string checkpoint_name() const;
  void forward_log(const ClientInfo& info, const ramsey::WorkReport& rep);
  void store_counterexample(const ramsey::WorkReport& rep);
  void note_best(std::uint64_t energy, const Bytes& graph_blob, bool found);
  void note_unit_issued(std::uint64_t unit_id);
  void note_unit_reclaimed(std::uint64_t unit_id, std::int64_t reason);
  [[nodiscard]] Duration overdue_threshold(const ClientInfo& info) const;
  [[nodiscard]] ramsey::HeuristicKind choose_kind(std::uint64_t unit_id) const;

  Node& node_;
  Options opts_;
  WorkPool pool_;
  std::unordered_map<Endpoint, ClientInfo, EndpointHash> clients_;
  bool running_ = false;
  std::uint64_t reports_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t presumed_dead_ = 0;
  std::uint64_t found_stored_ = 0;
  std::uint64_t restored_ = 0;
  // Gossip-synchronized best coloring (version = improvement counter).
  std::uint64_t best_version_ = 0;
  std::uint64_t best_energy_ = ~0ULL;
  Bytes best_graph_;
  std::array<KindStats, 3> kind_stats_{};
  TimerId sweep_timer_ = kInvalidTimer;
  TimerId migrate_timer_ = kInvalidTimer;
  TimerId checkpoint_timer_ = kInvalidTimer;
};

}  // namespace ew::core
