// The scheduler's work pool.
//
// The Ramsey search space is unbounded (fresh heuristic streams are minted
// from new seeds at will) but not uniform: units that have already reached a
// low energy are "frontier" units worth keeping on fast machines. The pool
// tracks every unit ever issued, its best energy, and — crucial for the
// paper's migration story — the latest coloring reported for it, so that a
// unit reclaimed from a slow or dead client resumes on another machine
// instead of restarting (Section 3.1.1).
//
// A pool owns a *range* of unit ids: shard s of N mints ids from the residue
// class first_id + k * id_stride, and import_frontier refuses units outside
// that class, so a restarted shard replays only its own range. The default
// (first_id = 1, id_stride = 1) is the classic single-pool behavior,
// bit-identical to the pre-sharding implementation. Batch entry points
// (report_many / release_many) amortize the idle-frontier bookkeeping over a
// whole directive batch; the single-unit calls delegate to them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "ramsey/workunit.hpp"

namespace ew::core {

class WorkPool {
 public:
  struct Options {
    int n = 42;  // SC98 target: counter-examples for R5 on 42+ vertices
    int k = 5;
    std::uint64_t report_ops = 50'000'000;
    std::uint64_t seed_base = 0x5c98;
    std::size_t max_idle_frontier = 256;  // bound on retained unassigned units
    // Range-sharding parameters: this pool mints ids first_id, first_id +
    // id_stride, first_id + 2*id_stride, ... and owns exactly that residue
    // class. Defaults give the unsharded pool.
    std::uint64_t first_id = 1;
    std::uint64_t id_stride = 1;
  };

  explicit WorkPool(Options opts);

  /// Hand out a unit: the most promising idle frontier unit, else a fresh one.
  ramsey::WorkSpec acquire();

  /// Install the heuristic chooser for fresh units. Default: rotate the
  /// three kinds by unit id. The scheduler replaces this with its
  /// progress-driven policy ("servers are programmed to issue different
  /// control directives based on the type of algorithm", Section 3.1.1).
  using KindChooser = std::function<ramsey::HeuristicKind(std::uint64_t unit_id)>;
  void set_kind_chooser(KindChooser chooser) { chooser_ = std::move(chooser); }

  /// Re-issue a specific idle unit (scheduler migration path). Returns
  /// nullopt if the unit is unknown or already assigned.
  std::optional<ramsey::WorkSpec> acquire_unit(std::uint64_t unit_id);

  /// Record a progress report for a unit (updates energy + resume state).
  void report(const ramsey::WorkReport& rep);
  /// Batch variant: one report per touched unit, unknown ids skipped.
  void report_many(std::span<const ramsey::WorkReport> reps);

  /// The unit's client died or was preempted: make the unit reassignable.
  void release(std::uint64_t unit_id);
  /// Batch variant: releases every id, then trims the idle frontier once.
  void release_many(std::span<const std::uint64_t> ids);

  /// True iff `unit_id` falls in this pool's id residue class.
  [[nodiscard]] bool owns(std::uint64_t unit_id) const;

  [[nodiscard]] bool assigned(std::uint64_t unit_id) const;
  [[nodiscard]] std::optional<std::uint64_t> best_energy(std::uint64_t unit_id) const;
  [[nodiscard]] std::optional<ramsey::HeuristicKind> unit_kind(std::uint64_t unit_id) const;
  [[nodiscard]] std::size_t idle_frontier_size() const { return idle_.size(); }
  /// Best (energy, id) among idle frontier units, if any — what acquire()
  /// would reuse next. Lets a shard router pick the globally best frontier
  /// unit without scanning shard contents.
  [[nodiscard]] std::optional<std::pair<std::uint64_t, std::uint64_t>>
  peek_idle_best() const;
  /// Unit ids currently assigned to some client — the chaos invariant
  /// checker's notion of "legitimately still in flight" at trace end.
  [[nodiscard]] std::vector<std::uint64_t> assigned_units() const;
  [[nodiscard]] std::size_t assigned_count() const { return assigned_count_; }
  /// Number of units minted by THIS pool (imported foreign history excluded).
  [[nodiscard]] std::size_t units_issued() const {
    return static_cast<std::size_t>((next_id_ - opts_.first_id) /
                                    opts_.id_stride);
  }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// True when frontier content changed since the last clear_dirty() — the
  /// scheduler's incremental checkpointer only exports dirty shards.
  [[nodiscard]] bool dirty() const { return dirty_; }
  void clear_dirty() { dirty_ = false; }

  /// Checkpoint: every unit that has a resume coloring (assigned or idle),
  /// wire-encoded for the persistent state manager. A restarted scheduler
  /// imports this and re-issues the search from where it was, instead of
  /// from fresh random colorings — the soft state is soft, the *work* is
  /// not (Section 3.1.2's persistent class).
  [[nodiscard]] Bytes export_frontier() const;
  /// Merge a checkpoint: unknown units in OUR id range come back as idle,
  /// reassignable frontier entries; units outside the range are skipped, so
  /// a restarted shard can only ever replay its own slice of the frontier.
  /// Returns the number of units imported.
  std::size_t import_frontier(const Bytes& blob);

 private:
  struct Unit {
    std::uint64_t seed = 0;
    std::uint64_t best_energy = ~0ULL;  // unknown until first report
    bool assigned = false;
    ramsey::HeuristicKind kind = ramsey::HeuristicKind::kGreedy;
    Bytes resume;  // latest serialized coloring; empty = restart from seed
  };

  ramsey::WorkSpec spec_for(std::uint64_t id, const Unit& u) const;
  void report_one(const ramsey::WorkReport& rep);
  void release_one(std::uint64_t unit_id);
  void trim_idle();

  Options opts_;
  std::uint64_t next_id_ = 1;
  KindChooser chooser_;
  std::map<std::uint64_t, Unit> units_;
  // Idle frontier index: (best_energy, id) for every unassigned unit with a
  // resume coloring. Keeps acquire() O(log N) instead of a full-map scan and
  // makes trim_idle() drop exactly the worst tail.
  std::set<std::pair<std::uint64_t, std::uint64_t>> idle_;
  std::size_t assigned_count_ = 0;
  bool dirty_ = false;
};

}  // namespace ew::core
