// The scheduler's work pool.
//
// The Ramsey search space is unbounded (fresh heuristic streams are minted
// from new seeds at will) but not uniform: units that have already reached a
// low energy are "frontier" units worth keeping on fast machines. The pool
// tracks every unit ever issued, its best energy, and — crucial for the
// paper's migration story — the latest coloring reported for it, so that a
// unit reclaimed from a slow or dead client resumes on another machine
// instead of restarting (Section 3.1.1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ramsey/workunit.hpp"

namespace ew::core {

class WorkPool {
 public:
  struct Options {
    int n = 42;  // SC98 target: counter-examples for R5 on 42+ vertices
    int k = 5;
    std::uint64_t report_ops = 50'000'000;
    std::uint64_t seed_base = 0x5c98;
    std::size_t max_idle_frontier = 256;  // bound on retained unassigned units
  };

  explicit WorkPool(Options opts);

  /// Hand out a unit: the most promising idle frontier unit, else a fresh one.
  ramsey::WorkSpec acquire();

  /// Install the heuristic chooser for fresh units. Default: rotate the
  /// three kinds by unit id. The scheduler replaces this with its
  /// progress-driven policy ("servers are programmed to issue different
  /// control directives based on the type of algorithm", Section 3.1.1).
  using KindChooser = std::function<ramsey::HeuristicKind(std::uint64_t unit_id)>;
  void set_kind_chooser(KindChooser chooser) { chooser_ = std::move(chooser); }

  /// Re-issue a specific idle unit (scheduler migration path). Returns
  /// nullopt if the unit is unknown or already assigned.
  std::optional<ramsey::WorkSpec> acquire_unit(std::uint64_t unit_id);

  /// Record a progress report for a unit (updates energy + resume state).
  void report(const ramsey::WorkReport& rep);

  /// The unit's client died or was preempted: make the unit reassignable.
  void release(std::uint64_t unit_id);

  [[nodiscard]] bool assigned(std::uint64_t unit_id) const;
  [[nodiscard]] std::optional<std::uint64_t> best_energy(std::uint64_t unit_id) const;
  [[nodiscard]] std::optional<ramsey::HeuristicKind> unit_kind(std::uint64_t unit_id) const;
  [[nodiscard]] std::size_t idle_frontier_size() const;
  /// Unit ids currently assigned to some client — the chaos invariant
  /// checker's notion of "legitimately still in flight" at trace end.
  [[nodiscard]] std::vector<std::uint64_t> assigned_units() const;
  [[nodiscard]] std::size_t units_issued() const { return next_id_ - 1; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// Checkpoint: every unit that has a resume coloring (assigned or idle),
  /// wire-encoded for the persistent state manager. A restarted scheduler
  /// imports this and re-issues the search from where it was, instead of
  /// from fresh random colorings — the soft state is soft, the *work* is
  /// not (Section 3.1.2's persistent class).
  [[nodiscard]] Bytes export_frontier() const;
  /// Merge a checkpoint: unknown units come back as idle, reassignable
  /// frontier entries. Returns the number of units imported.
  std::size_t import_frontier(const Bytes& blob);

 private:
  struct Unit {
    std::uint64_t seed = 0;
    std::uint64_t best_energy = ~0ULL;  // unknown until first report
    bool assigned = false;
    ramsey::HeuristicKind kind = ramsey::HeuristicKind::kGreedy;
    Bytes resume;  // latest serialized coloring; empty = restart from seed
  };

  ramsey::WorkSpec spec_for(std::uint64_t id, const Unit& u) const;
  void trim_idle();

  Options opts_;
  std::uint64_t next_id_ = 1;
  KindChooser chooser_;
  std::map<std::uint64_t, Unit> units_;
};

}  // namespace ew::core
