#include "core/protocol.hpp"

namespace ew::core {

const char* infra_name(Infra i) {
  switch (i) {
    case Infra::kUnix: return "Unix";
    case Infra::kGlobus: return "Globus";
    case Infra::kLegion: return "Legion";
    case Infra::kCondor: return "Condor";
    case Infra::kNT: return "NT";
    case Infra::kJava: return "Java";
    case Infra::kNetSolve: return "Netsolve";
  }
  return "Unknown";
}

namespace {

// Bounded list-count read shared by the batch codecs (same shape as the
// gossip read_count guard): the count is checked against the batch ceiling
// AND against the bytes actually remaining (each element needs at least
// `min_elem` bytes) before any vector is sized.
Result<std::uint32_t> read_count(Reader& r, std::size_t min_elem,
                                 const char* what) {
  auto n = r.u32();
  if (!n) return n.error();
  if (*n > kMaxSchedBatch) return Error{Err::kProtocol, what};
  if (min_elem > 0 && *n > r.remaining() / min_elem) {
    return Error{Err::kProtocol, what};
  }
  return *n;
}

}  // namespace

void write_sched_header(Writer& w, MsgType kind) {
  w.u8(kSchedWireVersion);
  w.u16(kind);
}

Result<std::uint8_t> read_sched_header(Reader& r, MsgType kind) {
  auto ver = r.u8();
  if (!ver) return ver.error();
  if (*ver == 0 || *ver > kSchedWireVersion) {
    return Error{Err::kProtocol, "unsupported sched wire version"};
  }
  auto k = r.u16();
  if (!k) return k.error();
  if (*k != kind) return Error{Err::kProtocol, "sched message kind mismatch"};
  return *ver;
}

Bytes ClientHello::serialize() const {
  Writer w;
  write_sched_header(w, msgtype::kSchedRegister);
  gossip::write_endpoint(w, client);
  w.u8(static_cast<std::uint8_t>(infra));
  w.str(host);
  w.u32(want_units);
  return w.take();
}

Result<ClientHello> ClientHello::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_sched_header(r, msgtype::kSchedRegister);
  if (!hdr) return hdr.error();
  ClientHello h;
  auto ep = gossip::read_endpoint(r);
  if (!ep) return ep.error();
  h.client = std::move(*ep);
  auto infra = r.u8();
  if (!infra) return infra.error();
  if (*infra >= kInfraCount) return Error{Err::kProtocol, "bad infra id"};
  h.infra = static_cast<Infra>(*infra);
  auto host = r.str();
  if (!host) return host.error();
  h.host = std::move(*host);
  auto want = r.u32();
  if (!want) return want.error();
  if (*want == 0 || *want > kMaxSchedBatch) {
    return Error{Err::kProtocol, "bad lease size"};
  }
  h.want_units = *want;
  return h;
}

Bytes ReportBatch::serialize() const {
  Writer w;
  write_sched_header(w, msgtype::kSchedReportBatch);
  gossip::write_endpoint(w, client);
  w.u64(seq);
  w.u32(want_units);
  w.u32(static_cast<std::uint32_t>(reports.size()));
  for (const auto& rep : reports) rep.write(w);
  return w.take();
}

Result<ReportBatch> ReportBatch::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_sched_header(r, msgtype::kSchedReportBatch);
  if (!hdr) return hdr.error();
  ReportBatch b;
  auto ep = gossip::read_endpoint(r);
  if (!ep) return ep.error();
  b.client = std::move(*ep);
  auto seq = r.u64();
  if (!seq) return seq.error();
  b.seq = *seq;
  auto want = r.u32();
  if (!want) return want.error();
  if (*want == 0 || *want > kMaxSchedBatch) {
    return Error{Err::kProtocol, "bad lease size"};
  }
  b.want_units = *want;
  auto count =
      read_count(r, ramsey::WorkReport::kMinWire, "oversized report batch");
  if (!count) return count.error();
  b.reports.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto rep = ramsey::WorkReport::read(r);
    if (!rep) return rep.error();
    b.reports.push_back(std::move(*rep));
  }
  return b;
}

Bytes DirectiveBatch::serialize() const {
  Writer w;
  write_sched_header(w, msgtype::kSchedDirectiveBatch);
  w.u32(static_cast<std::uint32_t>(revoke.size()));
  for (auto id : revoke) w.u64(id);
  w.u32(static_cast<std::uint32_t>(assign.size()));
  for (const auto& spec : assign) spec.write(w);
  return w.take();
}

Result<DirectiveBatch> DirectiveBatch::deserialize(const Bytes& data) {
  Reader r(data);
  auto hdr = read_sched_header(r, msgtype::kSchedDirectiveBatch);
  if (!hdr) return hdr.error();
  DirectiveBatch d;
  auto nrevoke = read_count(r, sizeof(std::uint64_t), "oversized revoke list");
  if (!nrevoke) return nrevoke.error();
  d.revoke.reserve(*nrevoke);
  for (std::uint32_t i = 0; i < *nrevoke; ++i) {
    auto id = r.u64();
    if (!id) return id.error();
    d.revoke.push_back(*id);
  }
  auto nassign =
      read_count(r, ramsey::WorkSpec::kMinWire, "oversized assign list");
  if (!nassign) return nassign.error();
  d.assign.reserve(*nassign);
  for (std::uint32_t i = 0; i < *nassign; ++i) {
    auto spec = ramsey::WorkSpec::read(r);
    if (!spec) return spec.error();
    d.assign.push_back(std::move(*spec));
  }
  return d;
}

Bytes LogRecord::serialize() const {
  Writer w;
  w.i64(when);
  gossip::write_endpoint(w, client);
  w.u8(static_cast<std::uint8_t>(infra));
  w.str(host);
  w.u64(ops);
  w.u64(best_energy);
  w.boolean(found);
  return w.take();
}

Result<LogRecord> LogRecord::deserialize(const Bytes& data) {
  Reader r(data);
  LogRecord rec;
  auto when = r.i64();
  if (!when) return when.error();
  rec.when = *when;
  auto ep = gossip::read_endpoint(r);
  if (!ep) return ep.error();
  rec.client = std::move(*ep);
  auto infra = r.u8();
  if (!infra) return infra.error();
  if (*infra >= kInfraCount) return Error{Err::kProtocol, "bad infra id"};
  rec.infra = static_cast<Infra>(*infra);
  auto host = r.str();
  if (!host) return host.error();
  rec.host = std::move(*host);
  auto ops = r.u64();
  if (!ops) return ops.error();
  rec.ops = *ops;
  auto be = r.u64();
  if (!be) return be.error();
  rec.best_energy = *be;
  auto found = r.boolean();
  if (!found) return found.error();
  rec.found = *found;
  return rec;
}

Bytes MetricsSnapshot::serialize() const {
  Writer w;
  w.i64(when);
  gossip::write_endpoint(w, source);
  w.str(json);
  return w.take();
}

Result<MetricsSnapshot> MetricsSnapshot::deserialize(const Bytes& data) {
  Reader r(data);
  MetricsSnapshot snap;
  auto when = r.i64();
  if (!when) return when.error();
  snap.when = *when;
  auto ep = gossip::read_endpoint(r);
  if (!ep) return ep.error();
  snap.source = std::move(*ep);
  auto json = r.str();
  if (!json) return json.error();
  snap.json = std::move(*json);
  return snap;
}

Bytes StoreRequest::serialize() const {
  Writer w;
  w.str(name);
  w.blob(blob);
  return w.take();
}

Result<StoreRequest> StoreRequest::deserialize(const Bytes& data) {
  Reader r(data);
  StoreRequest s;
  auto name = r.str();
  if (!name) return name.error();
  s.name = std::move(*name);
  auto blob = r.blob();
  if (!blob) return blob.error();
  s.blob = std::move(*blob);
  return s;
}

}  // namespace ew::core
