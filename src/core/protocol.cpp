#include "core/protocol.hpp"

namespace ew::core {

const char* infra_name(Infra i) {
  switch (i) {
    case Infra::kUnix: return "Unix";
    case Infra::kGlobus: return "Globus";
    case Infra::kLegion: return "Legion";
    case Infra::kCondor: return "Condor";
    case Infra::kNT: return "NT";
    case Infra::kJava: return "Java";
    case Infra::kNetSolve: return "Netsolve";
  }
  return "Unknown";
}

Bytes ClientHello::serialize() const {
  Writer w;
  gossip::write_endpoint(w, client);
  w.u8(static_cast<std::uint8_t>(infra));
  w.str(host);
  return w.take();
}

Result<ClientHello> ClientHello::deserialize(const Bytes& data) {
  Reader r(data);
  ClientHello h;
  auto ep = gossip::read_endpoint(r);
  if (!ep) return ep.error();
  h.client = std::move(*ep);
  auto infra = r.u8();
  if (!infra) return infra.error();
  if (*infra >= kInfraCount) return Error{Err::kProtocol, "bad infra id"};
  h.infra = static_cast<Infra>(*infra);
  auto host = r.str();
  if (!host) return host.error();
  h.host = std::move(*host);
  return h;
}

Bytes ReportEnvelope::serialize() const {
  Writer w;
  gossip::write_endpoint(w, client);
  w.blob(report.serialize());
  return w.take();
}

Result<ReportEnvelope> ReportEnvelope::deserialize(const Bytes& data) {
  Reader r(data);
  ReportEnvelope env;
  auto ep = gossip::read_endpoint(r);
  if (!ep) return ep.error();
  env.client = std::move(*ep);
  auto blob = r.blob();
  if (!blob) return blob.error();
  auto rep = ramsey::WorkReport::deserialize(*blob);
  if (!rep) return rep.error();
  env.report = std::move(*rep);
  return env;
}

Bytes Directive::serialize() const {
  Writer w;
  if (spec) {
    w.boolean(true);
    w.blob(spec->serialize());
  } else {
    w.boolean(false);
  }
  return w.take();
}

Result<Directive> Directive::deserialize(const Bytes& data) {
  Reader r(data);
  Directive d;
  auto has = r.boolean();
  if (!has) return has.error();
  if (*has) {
    auto blob = r.blob();
    if (!blob) return blob.error();
    auto spec = ramsey::WorkSpec::deserialize(*blob);
    if (!spec) return spec.error();
    d.spec = std::move(*spec);
  }
  return d;
}

Bytes LogRecord::serialize() const {
  Writer w;
  w.i64(when);
  gossip::write_endpoint(w, client);
  w.u8(static_cast<std::uint8_t>(infra));
  w.str(host);
  w.u64(ops);
  w.u64(best_energy);
  w.boolean(found);
  return w.take();
}

Result<LogRecord> LogRecord::deserialize(const Bytes& data) {
  Reader r(data);
  LogRecord rec;
  auto when = r.i64();
  if (!when) return when.error();
  rec.when = *when;
  auto ep = gossip::read_endpoint(r);
  if (!ep) return ep.error();
  rec.client = std::move(*ep);
  auto infra = r.u8();
  if (!infra) return infra.error();
  if (*infra >= kInfraCount) return Error{Err::kProtocol, "bad infra id"};
  rec.infra = static_cast<Infra>(*infra);
  auto host = r.str();
  if (!host) return host.error();
  rec.host = std::move(*host);
  auto ops = r.u64();
  if (!ops) return ops.error();
  rec.ops = *ops;
  auto be = r.u64();
  if (!be) return be.error();
  rec.best_energy = *be;
  auto found = r.boolean();
  if (!found) return found.error();
  rec.found = *found;
  return rec;
}

Bytes MetricsSnapshot::serialize() const {
  Writer w;
  w.i64(when);
  gossip::write_endpoint(w, source);
  w.str(json);
  return w.take();
}

Result<MetricsSnapshot> MetricsSnapshot::deserialize(const Bytes& data) {
  Reader r(data);
  MetricsSnapshot snap;
  auto when = r.i64();
  if (!when) return when.error();
  snap.when = *when;
  auto ep = gossip::read_endpoint(r);
  if (!ep) return ep.error();
  snap.source = std::move(*ep);
  auto json = r.str();
  if (!json) return json.error();
  snap.json = std::move(*json);
  return snap;
}

Bytes StoreRequest::serialize() const {
  Writer w;
  w.str(name);
  w.blob(blob);
  return w.take();
}

Result<StoreRequest> StoreRequest::deserialize(const Bytes& data) {
  Reader r(data);
  StoreRequest s;
  auto name = r.str();
  if (!name) return name.error();
  s.name = std::move(*name);
  auto blob = r.blob();
  if (!blob) return blob.error();
  s.blob = std::move(*blob);
  return s;
}

}  // namespace ew::core
