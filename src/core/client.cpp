#include "core/client.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "obs/registry.hpp"

namespace ew::core {

void RealWorkExecutor::reset(const ramsey::WorkSpec& spec) {
  ramsey::HeuristicParams p;
  p.n = spec.n;
  p.k = spec.k;
  p.seed = spec.seed;
  heuristic_ = ramsey::make_heuristic(spec.kind, p, spec.resume);
  unit_id_ = spec.unit_id;
  k_ = spec.k;
}

ramsey::WorkReport RealWorkExecutor::execute(std::uint64_t ops_budget) {
  ramsey::WorkReport rep;
  rep.unit_id = unit_id_;
  if (!heuristic_) return rep;
  const ramsey::StepOutcome out = heuristic_->run(ops_budget);
  rep.ops_done = out.ops_used;
  rep.best_energy = heuristic_->best_energy();
  rep.found = out.found || heuristic_->best_energy() == 0;
  rep.best_graph = heuristic_->best().serialize();
  return rep;
}

void ModeledWorkExecutor::reset(const ramsey::WorkSpec& spec) {
  spec_ = spec;
  rng_ = Rng(spec.seed ^ 0xabcdef12345ULL);
  if (spec.resume) {
    // Resumed units carry their progress in the coloring's red-edge count
    // relative to a fresh random graph — we just continue the decay from a
    // low starting energy to keep migration meaningful.
    resume_blob_ = spec.resume->serialize();
    energy_ = 40.0;
  } else {
    ramsey::ColoredGraph g = ramsey::ColoredGraph::random(spec.n, rng_);
    resume_blob_ = g.serialize();
    // Expected initial energy ~ 2 * C(n, k) / 2^(C(k,2)); for n=42,k=5 this
    // is in the few-hundreds. Start there with spread.
    energy_ = 300.0 * rng_.uniform(0.7, 1.3);
  }
}

ramsey::WorkReport ModeledWorkExecutor::execute(std::uint64_t ops_budget) {
  // Each 50M-op quantum shaves a few percent off the energy, with a floor
  // well above zero: the SC98 run never found the R5 counter-example either.
  const double quanta = static_cast<double>(ops_budget) / 5e7;
  energy_ *= std::pow(0.985, quanta) * rng_.uniform(0.98, 1.02);
  energy_ = std::max(energy_, 12.0);
  ramsey::WorkReport rep;
  rep.unit_id = spec_.unit_id;
  rep.ops_done = ops_budget;
  rep.best_energy = static_cast<std::uint64_t>(energy_);
  rep.found = false;
  rep.best_graph = resume_blob_;
  return rep;
}

RamseyClient::RamseyClient(Node& node, std::unique_ptr<WorkExecutor> executor,
                           Options opts)
    : node_(node), opts_(std::move(opts)), rng_(opts_.seed) {
  spares_.push_back(std::move(executor));
}

void RamseyClient::start() {
  if (running_) return;
  running_ = true;
  const Duration sleep =
      opts_.initial_sleep_max > 0
          ? static_cast<Duration>(
                rng_.below(static_cast<std::uint64_t>(opts_.initial_sleep_max)))
          : 0;
  work_timer_ = node_.executor().schedule(sleep, [this] { register_with(sched_index_); });
}

void RamseyClient::stop() {
  if (!running_) return;
  running_ = false;
  node_.executor().cancel(work_timer_);
}

std::uint32_t RamseyClient::want_units() const {
  // Without a factory the constructor's single executor caps the lease at 1.
  if (!opts_.executor_factory) return 1;
  return std::max<std::uint32_t>(1, opts_.units_per_client);
}

std::unique_ptr<WorkExecutor> RamseyClient::make_executor() {
  if (!spares_.empty()) {
    auto exec = std::move(spares_.back());
    spares_.pop_back();
    return exec;
  }
  if (opts_.executor_factory) return opts_.executor_factory();
  return nullptr;
}

void RamseyClient::apply_directives(DirectiveBatch&& d) {
  for (auto id : d.revoke) {
    auto it = std::find_if(runs_.begin(), runs_.end(), [&](const UnitRun& r) {
      return r.spec.unit_id == id;
    });
    if (it == runs_.end()) continue;  // replayed revoke: already dropped
    spares_.push_back(std::move(it->exec));
    runs_.erase(it);
  }
  for (auto& spec : d.assign) {
    const bool held = std::any_of(runs_.begin(), runs_.end(), [&](const UnitRun& r) {
      return r.spec.unit_id == spec.unit_id;
    });
    if (held) continue;  // replayed assign: keep the in-progress run
    auto exec = make_executor();
    if (!exec) break;  // no capacity for more units
    exec->reset(spec);
    runs_.push_back(UnitRun{std::move(spec), std::move(exec)});
  }
}

void RamseyClient::drop_all_runs() {
  for (auto& run : runs_) spares_.push_back(std::move(run.exec));
  runs_.clear();
}

void RamseyClient::register_with(std::size_t index) {
  if (!running_ || opts_.schedulers.empty()) return;
  const Endpoint target = opts_.schedulers[index % opts_.schedulers.size()];
  ClientHello hello;
  hello.client = node_.self();
  hello.infra = opts_.infra;
  hello.host = opts_.host_label;
  hello.want_units = want_units();
  ++registrations_;
  // Registration is idempotent at the scheduler, so a lost hello can be
  // resent inside the call before the slower app-level failover kicks in.
  CallOptions reg;
  reg.retry = RetryPolicy::standard(2);
  reg.trace_tag = "client.register";
  node_.call(target, msgtype::kSchedRegister, hello.serialize(),
             std::move(reg), [this, index](Result<Bytes> r) {
               if (!running_) return;
               if (!r.ok()) {
                 sched_index_ = index + 1;  // fail over
                 work_timer_ = node_.executor().schedule(
                     opts_.retry_delay, [this] { register_with(sched_index_); });
                 return;
               }
               auto d = DirectiveBatch::deserialize(*r);
               if (d) apply_directives(std::move(*d));
               if (runs_.empty()) {
                 work_timer_ = node_.executor().schedule(
                     opts_.retry_delay, [this] { register_with(sched_index_); });
                 return;
               }
               sched_index_ = index;  // remember who owns us
               schedule_quantum();
             });
}

void RamseyClient::schedule_quantum() {
  if (!running_ || runs_.empty()) return;
  if (!opts_.simulated_time) {
    // Real computation: run the quantum after a nominal tick so callers
    // driving a virtual clock (run_for) always make progress.
    work_timer_ =
        node_.executor().schedule(1 * kSecond, [this] { finish_quantum(); });
    return;
  }
  const double rate = opts_.rate_source ? opts_.rate_source() : 1e6;
  if (rate <= 0.0) {
    work_timer_ = node_.executor().schedule(opts_.idle_recheck,
                                            [this] { schedule_quantum(); });
    return;
  }
  work_timer_ = node_.executor().schedule(opts_.report_interval,
                                          [this] { finish_quantum(); });
}

void RamseyClient::finish_quantum() {
  if (!running_ || runs_.empty()) return;
  ++quanta_;
  ReportBatch batch;
  batch.client = node_.self();
  batch.seq = ++report_seq_;
  batch.want_units = want_units();
  batch.reports.reserve(runs_.size());
  if (opts_.simulated_time) {
    // Credit what the host actually delivered over the quantum, sampled at
    // completion so load drops show up in the reported rate — split evenly
    // across the held lease.
    const double rate = opts_.rate_source ? opts_.rate_source() : 0.0;
    const auto total = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(rate * to_seconds(opts_.report_interval)),
        100'000);
    const auto per_unit =
        std::max<std::uint64_t>(total / runs_.size(), 1);
    for (auto& run : runs_) {
      ramsey::WorkReport rep = run.exec->execute(per_unit);
      if (rep.found) ++found_;
      batch.reports.push_back(std::move(rep));
    }
  } else {
    for (auto& run : runs_) {
      ramsey::WorkReport rep = run.exec->execute(run.spec.report_ops);
      if (rep.found) ++found_;
      batch.reports.push_back(std::move(rep));
    }
  }
  send_report_batch(std::move(batch));
}

void RamseyClient::send_report_batch(ReportBatch batch) {
  const Endpoint target = opts_.schedulers[sched_index_ % opts_.schedulers.size()];
  std::uint64_t ops = 0;
  for (const auto& rep : batch.reports) ops += rep.ops_done;
  const TimePoint sent = node_.executor().now();
  // The scheduler dedupes on batch.seq and replays its cached reply, so the
  // report call is retried and hedged like any idempotent call — a dropped
  // reply costs one round-trip, not the whole lease.
  CallOptions rpt;
  rpt.retry = RetryPolicy::standard(1);
  rpt.hedge = HedgePolicy::at(0.95);
  rpt.trace_tag = "client.report";
  node_.call(target, msgtype::kSchedReportBatch, batch.serialize(),
             std::move(rpt), [this, ops, sent](Result<Bytes> r) {
               if (!running_) return;
               if (!r.ok()) {
                 // Scheduler lost or we are unknown to it: re-register
                 // (rejection keeps the same scheduler; failure fails over).
                 drop_all_runs();
                 if (r.code() != Err::kRejected) ++sched_index_;
                 work_timer_ = node_.executor().schedule(
                     opts_.retry_delay, [this] { register_with(sched_index_); });
                 return;
               }
               ops_reported_ += ops;
               const TimePoint now = node_.executor().now();
               obs::registry()
                   .histogram(obs::names::kSchedDirectiveLatencyUs)
                   .record(static_cast<std::uint64_t>(now - sent));
               auto d = DirectiveBatch::deserialize(*r);
               if (d) apply_directives(std::move(*d));
               if (runs_.empty()) {
                 work_timer_ = node_.executor().schedule(
                     opts_.retry_delay, [this] { register_with(sched_index_); });
                 return;
               }
               schedule_quantum();
             });
}

}  // namespace ew::core
