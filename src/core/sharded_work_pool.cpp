#include "core/sharded_work_pool.hpp"

#include <algorithm>

namespace ew::core {

ShardedWorkPool::ShardedWorkPool(Options opts) {
  const std::uint32_t n = std::max<std::uint32_t>(1, opts.shards);
  shards_.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    WorkPool::Options po = opts.pool;
    po.first_id = s + 1;
    po.id_stride = n;
    shards_.emplace_back(po);
  }
}

std::uint32_t ShardedWorkPool::owner_of(std::uint64_t unit_id) const {
  if (unit_id == 0) return 0;
  return static_cast<std::uint32_t>((unit_id - 1) % shards_.size());
}

std::vector<ramsey::WorkSpec> ShardedWorkPool::issue_many(std::size_t n) {
  std::vector<ramsey::WorkSpec> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Globally best idle frontier unit across all shards, if any.
    std::uint32_t best_shard = 0;
    std::optional<std::pair<std::uint64_t, std::uint64_t>> best;
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      auto peek = shards_[s].peek_idle_best();
      if (peek && (!best || *peek < *best)) {
        best = peek;
        best_shard = s;
      }
    }
    if (best) {
      if (best_shard != mint_cursor_) ++steals_;
      out.push_back(shards_[best_shard].acquire());
      continue;
    }
    out.push_back(shards_[mint_cursor_].acquire());
    mint_cursor_ = (mint_cursor_ + 1) % shards_.size();
  }
  return out;
}

std::optional<ramsey::WorkSpec> ShardedWorkPool::issue_unit(
    std::uint64_t unit_id) {
  return shards_[owner_of(unit_id)].acquire_unit(unit_id);
}

void ShardedWorkPool::report_many(std::span<const ramsey::WorkReport> reps) {
  if (shards_.size() == 1) {
    shards_.front().report_many(reps);
    return;
  }
  // Per-item dispatch: reports carry graph blobs, so regrouping into
  // per-shard vectors would copy them; report has no cross-item batching
  // advantage inside a shard anyway.
  for (const auto& rep : reps) {
    shards_[owner_of(rep.unit_id)].report(rep);
  }
}

void ShardedWorkPool::reclaim_many(std::span<const std::uint64_t> ids) {
  if (shards_.size() == 1) {
    shards_.front().release_many(ids);
    return;
  }
  // Ids are cheap to regroup; each shard then trims its frontier once.
  std::vector<std::vector<std::uint64_t>> by_shard(shards_.size());
  for (auto id : ids) by_shard[owner_of(id)].push_back(id);
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (!by_shard[s].empty()) shards_[s].release_many(by_shard[s]);
  }
}

ramsey::WorkSpec ShardedWorkPool::acquire() { return issue_many(1).front(); }

void ShardedWorkPool::report(const ramsey::WorkReport& rep) {
  shards_[owner_of(rep.unit_id)].report(rep);
}

void ShardedWorkPool::release(std::uint64_t unit_id) {
  shards_[owner_of(unit_id)].release(unit_id);
}

void ShardedWorkPool::set_kind_chooser(WorkPool::KindChooser chooser) {
  for (auto& s : shards_) s.set_kind_chooser(chooser);
}

bool ShardedWorkPool::assigned(std::uint64_t unit_id) const {
  return shards_[owner_of(unit_id)].assigned(unit_id);
}

std::optional<std::uint64_t> ShardedWorkPool::best_energy(
    std::uint64_t unit_id) const {
  return shards_[owner_of(unit_id)].best_energy(unit_id);
}

std::optional<ramsey::HeuristicKind> ShardedWorkPool::unit_kind(
    std::uint64_t unit_id) const {
  return shards_[owner_of(unit_id)].unit_kind(unit_id);
}

std::size_t ShardedWorkPool::idle_frontier_size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.idle_frontier_size();
  return n;
}

std::vector<std::uint64_t> ShardedWorkPool::assigned_units() const {
  std::vector<std::uint64_t> out;
  for (const auto& s : shards_) {
    auto part = s.assigned_units();
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ShardedWorkPool::assigned_count() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.assigned_count();
  return n;
}

std::size_t ShardedWorkPool::units_issued() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.units_issued();
  return n;
}

Bytes ShardedWorkPool::export_shard(std::uint32_t k) {
  auto blob = shards_[k].export_frontier();
  shards_[k].clear_dirty();
  return blob;
}

std::size_t ShardedWorkPool::import_shard(std::uint32_t k, const Bytes& blob) {
  return shards_[k].import_frontier(blob);
}

}  // namespace ew::core
