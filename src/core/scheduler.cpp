#include "core/scheduler.hpp"

#include <algorithm>
#include <vector>

#include "common/log.hpp"
#include "core/persistent_state.hpp"
#include "gossip/state.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ew::core {

namespace {

void erase_unit(std::vector<std::uint64_t>& units, std::uint64_t id) {
  units.erase(std::remove(units.begin(), units.end(), id), units.end());
}

}  // namespace

SchedulerServer::SchedulerServer(Node& node, Options opts)
    : node_(node),
      opts_(opts),
      pool_(ShardedWorkPool::Options{opts.pool,
                                     std::max<std::uint32_t>(1, opts.pool_shards)}) {}

void SchedulerServer::start() {
  if (running_) return;
  running_ = true;
  pool_.set_kind_chooser(
      [this](std::uint64_t unit_id) { return choose_kind(unit_id); });
  node_.handle(msgtype::kSchedRegister,
               [this](const IncomingMessage& m, Responder r) { on_register(m, r); });
  node_.handle(msgtype::kSchedReportBatch,
               [this](const IncomingMessage& m, Responder r) { on_report_batch(m, r); });
  sweep_timer_ = node_.executor().schedule(opts_.sweep_period, [this] { sweep_tick(); });
  migrate_timer_ =
      node_.executor().schedule(opts_.migration_period, [this] { migrate_tick(); });
  if (opts_.checkpoint_period > 0 && opts_.state_manager.valid()) {
    restore_frontier();
    checkpoint_timer_ = node_.executor().schedule(opts_.checkpoint_period,
                                                  [this] { checkpoint_tick(); });
  }
}

void SchedulerServer::stop() {
  if (!running_) return;
  running_ = false;
  node_.executor().cancel(sweep_timer_);
  node_.executor().cancel(migrate_timer_);
  node_.executor().cancel(checkpoint_timer_);
}

std::string SchedulerServer::checkpoint_name(std::uint32_t shard) const {
  return "sched/frontier/" + node_.self().to_string() + "/shard-" +
         std::to_string(shard);
}

std::uint32_t SchedulerServer::clamp_want(std::uint32_t want) const {
  return std::clamp<std::uint32_t>(want, 1, opts_.max_units_per_client);
}

void SchedulerServer::note_unit_issued(std::uint64_t unit_id) {
  if (unit_id == 0 || !obs::trace().enabled()) return;
  obs::trace().record(node_.executor().now(), obs::SpanKind::kSchedUnitIssued,
                      obs::trace().intern(node_.self().to_string()),
                      static_cast<std::int64_t>(unit_id));
}

void SchedulerServer::note_unit_reclaimed(std::uint64_t unit_id,
                                          std::int64_t reason) {
  if (unit_id == 0 || !obs::trace().enabled()) return;
  obs::trace().record(node_.executor().now(),
                      obs::SpanKind::kSchedUnitReclaimed,
                      obs::trace().intern(node_.self().to_string()),
                      static_cast<std::int64_t>(unit_id), reason);
}

void SchedulerServer::update_pool_gauges() {
  obs::registry().gauge(obs::names::kSchedOutstandingUnits)
      .set(static_cast<double>(pool_.assigned_count()));
  obs::registry().gauge(obs::names::kSchedFrontierUnits)
      .set(static_cast<double>(pool_.idle_frontier_size()));
  const std::uint64_t steals = pool_.steals();
  if (steals > steals_seen_) {
    obs::registry().counter(obs::names::kSchedShardSteals)
        .inc(steals - steals_seen_);
    steals_seen_ = steals;
  }
}

void SchedulerServer::checkpoint_tick() {
  if (!running_) return;
  checkpoint_timer_ = node_.executor().schedule(opts_.checkpoint_period,
                                                [this] { checkpoint_tick(); });
  // Incremental: only shards whose frontier content changed since their last
  // export are stored, each under its own per-shard name.
  for (std::uint32_t k = 0; k < pool_.shard_count(); ++k) {
    if (!pool_.shard_dirty(k)) continue;
    StoreRequest req;
    req.name = checkpoint_name(k);
    // Version by current time: monotonically fresher across restarts too.
    req.blob = gossip::versioned_blob(
        static_cast<std::uint64_t>(node_.executor().now()),
        pool_.export_shard(k));
    // Checkpoint stores are versioned, so a duplicate arrival is harmless and
    // a retry is pure upside.
    CallOptions ckpt;
    ckpt.retry = RetryPolicy::standard(2);
    ckpt.trace_tag = "sched.checkpoint";
    node_.call(opts_.state_manager, msgtype::kStateStore, req.serialize(),
               std::move(ckpt), [](Result<Bytes>) {});
  }
}

void SchedulerServer::restore_frontier() {
  // One fetch per shard: a restarted scheduler re-imports each shard's
  // checkpoint into exactly that shard, whose pool refuses ids outside its
  // range — recovery replays only the slice that belongs there.
  for (std::uint32_t k = 0; k < pool_.shard_count(); ++k) {
    Writer w;
    w.str(checkpoint_name(k));
    // A missed restore silently loses the frontier, so spend retries — and a
    // hedge once the fetch RTT is known — before giving up on it.
    CallOptions fetch;
    fetch.retry = RetryPolicy::standard(3);
    fetch.hedge = HedgePolicy::at(0.95);
    fetch.trace_tag = "sched.restore";
    node_.call(opts_.state_manager, msgtype::kStateFetch, w.take(),
               std::move(fetch), [this, k](Result<Bytes> r) {
                 if (!running_) return;
                 if (!r.ok()) return;  // no checkpoint yet: fresh start
                 auto body = gossip::blob_body(*r);
                 if (!body) return;
                 const std::size_t n = pool_.import_shard(k, *body);
                 restored_ += n;
                 if (n > 0) {
                   EW_DEBUG << node_.self().to_string() << ": restored " << n
                            << " frontier units into shard " << k
                            << " from checkpoint";
                 }
               });
  }
}

void SchedulerServer::on_register(const IncomingMessage& msg, const Responder& resp) {
  auto hello = ClientHello::deserialize(msg.packet.payload);
  if (!hello) {
    resp.fail(Err::kProtocol, hello.error().message);
    return;
  }
  // A re-registration from a client we thought was active means it lost its
  // work (eviction, restart): reclaim the old lease first.
  auto it = clients_.find(hello->client);
  if (it != clients_.end() && !it->second.units.empty()) {
    for (auto id : it->second.units) {
      note_unit_reclaimed(id, obs::reclaim::kReleased);
    }
    pool_.reclaim_many(it->second.units);
  }
  ClientInfo info;
  info.hello = std::move(*hello);
  info.want = clamp_want(info.hello.want_units);
  info.last_report = node_.executor().now();
  DirectiveBatch d;
  d.assign = pool_.issue_many(info.want);
  info.units.reserve(d.assign.size());
  for (const auto& spec : d.assign) {
    info.units.push_back(spec.unit_id);
    note_unit_issued(spec.unit_id);
  }
  obs::registry().counter(obs::names::kSchedDispatches).inc(d.assign.size());
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kSchedDispatch,
                        obs::trace().intern(msg.from.to_string()),
                        /*a=register=*/0,
                        static_cast<std::int64_t>(clients_.size() + 1));
  }
  clients_[info.hello.client] = std::move(info);
  update_pool_gauges();
  resp.ok(d.serialize());
}

void SchedulerServer::on_report_batch(const IncomingMessage& msg,
                                      const Responder& resp) {
  auto batch = ReportBatch::deserialize(msg.packet.payload);
  if (!batch) {
    resp.fail(Err::kProtocol, batch.error().message);
    return;
  }
  handle_report_batch(std::move(*batch), resp);
}

void SchedulerServer::handle_report_batch(ReportBatch&& batch,
                                          const Responder& resp) {
  auto it = clients_.find(batch.client);
  if (it == clients_.end()) {
    // We do not know this client (scheduler restarted, or the client was
    // swept). Make it re-register rather than guessing.
    resp.fail(Err::kRejected, "unregistered client");
    return;
  }
  ClientInfo& info = it->second;
  // Hedged/retried duplicate: replay the cached reply, touch nothing. This
  // is what makes the batch call safe to hedge — the pool mutations below
  // run exactly once per sequence number.
  if (batch.seq != 0 && batch.seq == info.last_seq) {
    ++replays_;
    obs::registry().counter(obs::names::kSchedBatchReplays).inc();
    resp.ok(Bytes(info.last_reply));
    return;
  }
  ++batches_;
  reports_ += batch.reports.size();
  obs::registry().counter(obs::names::kSchedReports).inc(batch.reports.size());
  obs::registry().counter(obs::names::kSchedBatchReports).inc();
  const TimePoint now = node_.executor().now();
  const Duration gap = now - info.last_report;
  info.last_report = now;

  std::uint64_t total_ops = 0;
  std::uint64_t batch_best = ~0ULL;
  bool any_found = false;
  for (const auto& rep : batch.reports) {
    total_ops += rep.ops_done;
    batch_best = std::min(batch_best, rep.best_energy);
    any_found = any_found || rep.found;
    // Progress accounting per heuristic kind, before the pool absorbs the
    // report: the directive policy steers fresh units toward whichever
    // algorithm has been buying the most energy reduction per op.
    if (const auto kind = pool_.unit_kind(rep.unit_id)) {
      const auto prev = pool_.best_energy(rep.unit_id);
      KindStats& ks = kind_stats_[static_cast<std::size_t>(*kind)];
      if (prev && rep.best_energy < *prev) {
        ks.improvement += static_cast<double>(*prev - rep.best_energy);
      }
      ks.gops += static_cast<double>(rep.ops_done) / 1e9;
    }
  }
  if (gap > 0) {
    info.interval.observe(static_cast<double>(gap));
    info.rate.observe(static_cast<double>(total_ops) / to_seconds(gap));
  }
  pool_.report_many(batch.reports);
  for (const auto& rep : batch.reports) {
    note_best(rep.best_energy, rep.best_graph, rep.found);
    if (rep.found) store_counterexample(rep);
  }
  if (!batch.reports.empty()) {
    forward_log(info, total_ops, batch_best == ~0ULL ? 0 : batch_best,
                any_found);
  }

  info.want = clamp_want(batch.want_units);
  DirectiveBatch d = std::move(info.pending);
  info.pending = DirectiveBatch{};
  // Top the lease back up to the client's target.
  if (info.units.size() < info.want) {
    auto specs = pool_.issue_many(info.want - info.units.size());
    for (auto& spec : specs) {
      info.units.push_back(spec.unit_id);
      note_unit_issued(spec.unit_id);
      d.assign.push_back(std::move(spec));
    }
  }
  if (!d.assign.empty()) {
    obs::registry().counter(obs::names::kSchedDispatches).inc(d.assign.size());
    if (obs::trace().enabled()) {
      obs::trace().record(now, obs::SpanKind::kSchedDispatch,
                          obs::trace().intern(batch.client.to_string()),
                          /*a=redirect=*/1,
                          static_cast<std::int64_t>(clients_.size()));
    }
  }
  Bytes reply = d.serialize();
  if (batch.seq != 0) {
    info.last_seq = batch.seq;
    info.last_reply = reply;
  }
  update_pool_gauges();
  resp.ok(std::move(reply));
}

void SchedulerServer::forward_log(const ClientInfo& info,
                                  std::uint64_t total_ops,
                                  std::uint64_t best_energy, bool found) {
  if (!opts_.logging.valid()) return;
  LogRecord rec;
  rec.when = node_.executor().now();
  rec.client = info.hello.client;
  rec.infra = info.hello.infra;
  rec.host = info.hello.host;
  rec.ops = total_ops;
  rec.best_energy = best_energy;
  rec.found = found;
  node_.send_oneway(opts_.logging, msgtype::kLogRecord, rec.serialize());
}

void SchedulerServer::store_counterexample(const ramsey::WorkReport& rep) {
  if (!opts_.state_manager.valid() || rep.best_graph.empty()) return;
  StoreRequest req;
  req.name = best_graph_name(opts_.pool.n, opts_.pool.k);
  req.blob = gossip::versioned_blob(~rep.best_energy,
                                    make_best_graph_body(rep.best_graph, rep.found));
  // A counter-example is the whole point of the computation; retry hard.
  CallOptions store;
  store.retry = RetryPolicy::standard(3);
  store.trace_tag = "sched.counterexample";
  node_.call(opts_.state_manager, msgtype::kStateStore, req.serialize(),
             std::move(store), [this](Result<Bytes> r) {
               if (!running_) return;
               if (r.ok()) ++found_stored_;
             });
}

void SchedulerServer::note_best(std::uint64_t energy, const Bytes& graph_blob,
                                bool found) {
  if (graph_blob.empty() || energy >= best_energy_) return;
  best_energy_ = energy;
  ++best_version_;
  Writer body;
  body.u64(energy);
  body.boolean(found);
  body.blob(graph_blob);
  // Version is the bitwise complement of energy: the gossip default
  // version-prefix comparator then treats lower energy as fresher, with no
  // cross-scheduler version coordination needed.
  best_graph_ = gossip::versioned_blob(~energy, body.take());
}

Bytes SchedulerServer::best_graph_state() const {
  if (best_graph_.empty()) {
    return gossip::versioned_blob(0, {});  // "know nothing" placeholder
  }
  return best_graph_;
}

void SchedulerServer::apply_best_graph_state(const Bytes& blob) {
  auto body = gossip::blob_body(blob);
  if (!body || body->empty()) return;
  Reader r(*body);
  auto energy = r.u64();
  if (!energy) return;
  auto found = r.boolean();
  if (!found) return;
  auto graph = r.blob();
  if (!graph) return;
  if (*energy < best_energy_) {
    best_energy_ = *energy;
    best_graph_ = blob;
  }
}

ramsey::HeuristicKind SchedulerServer::choose_kind(std::uint64_t unit_id) const {
  // Epsilon-greedy over observed yield: every fourth unit explores a
  // rotating kind; the rest run the best performer. Until every kind has
  // meaningful spend, rotate so the comparison is fair.
  if (unit_id % 4 == 0) {
    return static_cast<ramsey::HeuristicKind>((unit_id / 4) % 3);
  }
  for (const auto& ks : kind_stats_) {
    if (ks.gops < 1.0) return static_cast<ramsey::HeuristicKind>(unit_id % 3);
  }
  std::size_t best = 0;
  for (std::size_t k = 1; k < kind_stats_.size(); ++k) {
    if (kind_stats_[k].yield() > kind_stats_[best].yield()) best = k;
  }
  return static_cast<ramsey::HeuristicKind>(best);
}

Duration SchedulerServer::overdue_threshold(const ClientInfo& info) const {
  const Forecast f = info.interval.forecast();
  if (f.samples < 2) return opts_.overdue_floor;
  const auto d = static_cast<Duration>(opts_.overdue_factor * f.value);
  return std::max(d, opts_.overdue_floor);
}

void SchedulerServer::sweep_tick() {
  if (!running_) return;
  const TimePoint now = node_.executor().now();
  for (auto it = clients_.begin(); it != clients_.end();) {
    if (now - it->second.last_report > overdue_threshold(it->second)) {
      // Presumed dead (reclaimed host, network partition, browser closed).
      // Its whole lease goes back to the pool with whatever colorings it
      // last reported — the work, unlike the process, survives.
      for (auto id : it->second.units) {
        note_unit_reclaimed(id, obs::reclaim::kPresumedDead);
      }
      pool_.reclaim_many(it->second.units);
      ++presumed_dead_;
      obs::registry().counter(obs::names::kSchedPresumedDead).inc();
      it = clients_.erase(it);
    } else {
      ++it;
    }
  }
  update_pool_gauges();
  sweep_timer_ = node_.executor().schedule(opts_.sweep_period, [this] { sweep_tick(); });
}

void SchedulerServer::migrate_tick() {
  if (!running_) return;
  migrate_timer_ =
      node_.executor().schedule(opts_.migration_period, [this] { migrate_tick(); });
  if (clients_.size() < 2) return;

  // Forecast every client's rate; compute the median.
  const TimePoint now = node_.executor().now();
  std::vector<std::pair<double, Endpoint>> rates;
  for (const auto& [ep, info] : clients_) {
    const Forecast f = info.rate.forecast();
    if (f.samples >= 2 && info.pending.empty()) rates.emplace_back(f.value, ep);
  }
  if (rates.size() < 2) return;
  std::sort(rates.begin(), rates.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const double median = rates[rates.size() / 2].first;
  const auto slow_it = std::find_if(rates.begin(), rates.end(), [&](const auto& r) {
    return now - clients_.at(r.second).last_migration >= opts_.migration_cooldown;
  });
  if (slow_it == rates.end()) return;
  const auto& [slow_rate, slow_ep] = *slow_it;
  if (slow_rate >= opts_.migration_ratio * median) return;

  ClientInfo& slow = clients_.at(slow_ep);
  slow.last_migration = now;
  // Units worth carrying over: those with reported state, best energy first.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cand;  // (energy, id)
  for (auto id : slow.units) {
    if (const auto e = pool_.best_energy(id)) cand.emplace_back(*e, id);
  }
  if (cand.empty()) return;
  std::sort(cand.begin(), cand.end());

  // "It may choose to migrate that client's current workload to a machine
  // that it predicts will be faster": the fastest other client takes over up
  // to half the slow client's reported lease (resuming the colorings); the
  // slow client's lease refills with fresh streams at its next report.
  auto fast_it = std::find_if(rates.rbegin(), rates.rend(), [&](const auto& r) {
    return !(r.second == slow_ep);
  });
  if (fast_it == rates.rend()) return;
  ClientInfo& fast = clients_.at(fast_it->second);
  const std::vector<std::uint64_t> fast_before = fast.units;

  const std::size_t moves = std::max<std::size_t>(1, cand.size() / 2);
  std::vector<std::uint64_t> move_ids;
  move_ids.reserve(moves);
  for (std::size_t i = 0; i < moves && i < cand.size(); ++i) {
    move_ids.push_back(cand[i].second);
  }
  for (auto id : move_ids) note_unit_reclaimed(id, obs::reclaim::kMigrated);
  pool_.reclaim_many(move_ids);
  std::size_t moved = 0;
  for (auto id : move_ids) {
    auto spec = pool_.issue_unit(id);
    if (!spec) continue;  // trimmed from the frontier between release/issue
    note_unit_issued(id);
    erase_unit(slow.units, id);
    slow.pending.revoke.push_back(id);
    fast.units.push_back(id);
    fast.pending.assign.push_back(std::move(*spec));
    ++moved;
  }
  if (moved == 0) return;
  // Keep the fast client at its lease target: revoke one of its original
  // units per takeover (the old swap semantics at want == 1).
  for (auto id : fast_before) {
    if (fast.units.size() <= fast.want) break;
    note_unit_reclaimed(id, obs::reclaim::kMigrated);
    pool_.reclaim_many(std::span<const std::uint64_t>(&id, 1));
    erase_unit(fast.units, id);
    fast.pending.revoke.push_back(id);
  }
  obs::registry().counter(obs::names::kSchedUnitsRevoked)
      .inc(slow.pending.revoke.size() + fast.pending.revoke.size());
  ++migrations_;
  obs::registry().counter(obs::names::kSchedMigrations).inc();
  if (obs::trace().enabled()) {
    obs::trace().record(now, obs::SpanKind::kSchedMigration,
                        obs::trace().intern(slow_ep.to_string()),
                        static_cast<std::int64_t>(migrations_),
                        static_cast<std::int64_t>(moved));
  }
  EW_DEBUG << "scheduler: migrating " << moved << " unit(s) from "
           << slow_ep.to_string() << " to " << fast_it->second.to_string();
}

}  // namespace ew::core
