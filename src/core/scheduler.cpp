#include "core/scheduler.hpp"

#include <algorithm>
#include <vector>

#include "common/log.hpp"
#include "core/persistent_state.hpp"
#include "gossip/state.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ew::core {

SchedulerServer::SchedulerServer(Node& node, Options opts)
    : node_(node), opts_(opts), pool_(opts.pool) {}

void SchedulerServer::start() {
  if (running_) return;
  running_ = true;
  pool_.set_kind_chooser(
      [this](std::uint64_t unit_id) { return choose_kind(unit_id); });
  node_.handle(msgtype::kSchedRegister,
               [this](const IncomingMessage& m, Responder r) { on_register(m, r); });
  node_.handle(msgtype::kSchedReport,
               [this](const IncomingMessage& m, Responder r) { on_report(m, r); });
  sweep_timer_ = node_.executor().schedule(opts_.sweep_period, [this] { sweep_tick(); });
  migrate_timer_ =
      node_.executor().schedule(opts_.migration_period, [this] { migrate_tick(); });
  if (opts_.checkpoint_period > 0 && opts_.state_manager.valid()) {
    restore_frontier();
    checkpoint_timer_ = node_.executor().schedule(opts_.checkpoint_period,
                                                  [this] { checkpoint_tick(); });
  }
}

void SchedulerServer::stop() {
  if (!running_) return;
  running_ = false;
  node_.executor().cancel(sweep_timer_);
  node_.executor().cancel(migrate_timer_);
  node_.executor().cancel(checkpoint_timer_);
}

std::string SchedulerServer::checkpoint_name() const {
  return "sched/frontier/" + node_.self().to_string();
}

void SchedulerServer::note_unit_issued(std::uint64_t unit_id) {
  if (unit_id == 0 || !obs::trace().enabled()) return;
  obs::trace().record(node_.executor().now(), obs::SpanKind::kSchedUnitIssued,
                      obs::trace().intern(node_.self().to_string()),
                      static_cast<std::int64_t>(unit_id));
}

void SchedulerServer::note_unit_reclaimed(std::uint64_t unit_id,
                                          std::int64_t reason) {
  if (unit_id == 0 || !obs::trace().enabled()) return;
  obs::trace().record(node_.executor().now(),
                      obs::SpanKind::kSchedUnitReclaimed,
                      obs::trace().intern(node_.self().to_string()),
                      static_cast<std::int64_t>(unit_id), reason);
}

void SchedulerServer::checkpoint_tick() {
  if (!running_) return;
  checkpoint_timer_ = node_.executor().schedule(opts_.checkpoint_period,
                                                [this] { checkpoint_tick(); });
  StoreRequest req;
  req.name = checkpoint_name();
  // Version by current time: monotonically fresher across restarts too.
  req.blob = gossip::versioned_blob(
      static_cast<std::uint64_t>(node_.executor().now()), pool_.export_frontier());
  // Checkpoint stores are versioned, so a duplicate arrival is harmless and
  // a retry is pure upside.
  CallOptions ckpt;
  ckpt.retry = RetryPolicy::standard(2);
  ckpt.trace_tag = "sched.checkpoint";
  node_.call(opts_.state_manager, msgtype::kStateStore, req.serialize(),
             std::move(ckpt), [](Result<Bytes>) {});
}

void SchedulerServer::restore_frontier() {
  Writer w;
  w.str(checkpoint_name());
  // A missed restore silently loses the frontier, so spend retries — and a
  // hedge once the fetch RTT is known — before giving up on it.
  CallOptions fetch;
  fetch.retry = RetryPolicy::standard(3);
  fetch.hedge = HedgePolicy::at(0.95);
  fetch.trace_tag = "sched.restore";
  node_.call(opts_.state_manager, msgtype::kStateFetch, w.take(),
             std::move(fetch), [this](Result<Bytes> r) {
               if (!running_) return;
               if (!r.ok()) return;  // no checkpoint yet: fresh start
               auto body = gossip::blob_body(*r);
               if (!body) return;
               const std::size_t n = pool_.import_frontier(*body);
               restored_ += n;
               if (n > 0) {
                 EW_DEBUG << node_.self().to_string() << ": restored " << n
                          << " frontier units from checkpoint";
               }
             });
}

void SchedulerServer::on_register(const IncomingMessage& msg, const Responder& resp) {
  auto hello = ClientHello::deserialize(msg.packet.payload);
  if (!hello) {
    resp.fail(Err::kProtocol, hello.error().message);
    return;
  }
  // A re-registration from a client we thought was active means it lost its
  // work (eviction, restart): reclaim the old unit first.
  auto it = clients_.find(hello->client);
  if (it != clients_.end() && it->second.unit_id != 0) {
    pool_.release(it->second.unit_id);
    note_unit_reclaimed(it->second.unit_id, obs::reclaim::kReleased);
  }
  ClientInfo info;
  info.hello = std::move(*hello);
  info.last_report = node_.executor().now();
  const ramsey::WorkSpec spec = pool_.acquire();
  info.unit_id = spec.unit_id;
  note_unit_issued(spec.unit_id);
  clients_[info.hello.client] = std::move(info);
  Directive d;
  d.spec = spec;
  obs::registry().counter(obs::names::kSchedDispatches).inc();
  if (obs::trace().enabled()) {
    obs::trace().record(node_.executor().now(), obs::SpanKind::kSchedDispatch,
                        obs::trace().intern(msg.from.to_string()),
                        /*a=register=*/0,
                        static_cast<std::int64_t>(clients_.size()));
  }
  resp.ok(d.serialize());
}

void SchedulerServer::on_report(const IncomingMessage& msg, const Responder& resp) {
  auto env = ReportEnvelope::deserialize(msg.packet.payload);
  if (!env) {
    resp.fail(Err::kProtocol, env.error().message);
    return;
  }
  const auto rep = &env->report;
  auto it = clients_.find(env->client);
  if (it == clients_.end()) {
    // We do not know this client (scheduler restarted, or the client was
    // swept). Make it re-register rather than guessing.
    resp.fail(Err::kRejected, "unregistered client");
    return;
  }
  ++reports_;
  obs::registry().counter(obs::names::kSchedReports).inc();
  ClientInfo& info = it->second;
  const TimePoint now = node_.executor().now();
  const Duration gap = now - info.last_report;
  info.last_report = now;
  if (gap > 0) {
    info.interval.observe(static_cast<double>(gap));
    info.rate.observe(static_cast<double>(rep->ops_done) / to_seconds(gap));
  }
  // Progress accounting per heuristic kind, before the pool absorbs the
  // report: the directive policy steers fresh units toward whichever
  // algorithm has been buying the most energy reduction per op.
  if (const auto kind = pool_.unit_kind(rep->unit_id)) {
    const auto prev = pool_.best_energy(rep->unit_id);
    KindStats& ks = kind_stats_[static_cast<std::size_t>(*kind)];
    if (prev && rep->best_energy < *prev) {
      ks.improvement += static_cast<double>(*prev - rep->best_energy);
    }
    ks.gops += static_cast<double>(rep->ops_done) / 1e9;
  }
  pool_.report(*rep);
  note_best(rep->best_energy, rep->best_graph, rep->found);
  forward_log(info, *rep);
  if (rep->found) store_counterexample(*rep);

  Directive d;
  if (info.pending) {
    d.spec = std::move(info.pending);
    info.pending.reset();
    info.unit_id = d.spec->unit_id;
    obs::registry().counter(obs::names::kSchedDispatches).inc();
    if (obs::trace().enabled()) {
      obs::trace().record(now, obs::SpanKind::kSchedDispatch,
                          obs::trace().intern(env->client.to_string()),
                          /*a=redirect=*/1,
                          static_cast<std::int64_t>(clients_.size()));
    }
  }
  resp.ok(d.serialize());
}

void SchedulerServer::forward_log(const ClientInfo& info,
                                  const ramsey::WorkReport& rep) {
  if (!opts_.logging.valid()) return;
  LogRecord rec;
  rec.when = node_.executor().now();
  rec.client = info.hello.client;
  rec.infra = info.hello.infra;
  rec.host = info.hello.host;
  rec.ops = rep.ops_done;
  rec.best_energy = rep.best_energy;
  rec.found = rep.found;
  node_.send_oneway(opts_.logging, msgtype::kLogRecord, rec.serialize());
}

void SchedulerServer::store_counterexample(const ramsey::WorkReport& rep) {
  if (!opts_.state_manager.valid() || rep.best_graph.empty()) return;
  StoreRequest req;
  req.name = best_graph_name(opts_.pool.n, opts_.pool.k);
  req.blob = gossip::versioned_blob(~rep.best_energy,
                                    make_best_graph_body(rep.best_graph, rep.found));
  // A counter-example is the whole point of the computation; retry hard.
  CallOptions store;
  store.retry = RetryPolicy::standard(3);
  store.trace_tag = "sched.counterexample";
  node_.call(opts_.state_manager, msgtype::kStateStore, req.serialize(),
             std::move(store), [this](Result<Bytes> r) {
               if (!running_) return;
               if (r.ok()) ++found_stored_;
             });
}

void SchedulerServer::note_best(std::uint64_t energy, const Bytes& graph_blob,
                                bool found) {
  if (graph_blob.empty() || energy >= best_energy_) return;
  best_energy_ = energy;
  ++best_version_;
  Writer body;
  body.u64(energy);
  body.boolean(found);
  body.blob(graph_blob);
  // Version is the bitwise complement of energy: the gossip default
  // version-prefix comparator then treats lower energy as fresher, with no
  // cross-scheduler version coordination needed.
  best_graph_ = gossip::versioned_blob(~energy, body.take());
}

Bytes SchedulerServer::best_graph_state() const {
  if (best_graph_.empty()) {
    return gossip::versioned_blob(0, {});  // "know nothing" placeholder
  }
  return best_graph_;
}

void SchedulerServer::apply_best_graph_state(const Bytes& blob) {
  auto body = gossip::blob_body(blob);
  if (!body || body->empty()) return;
  Reader r(*body);
  auto energy = r.u64();
  if (!energy) return;
  auto found = r.boolean();
  if (!found) return;
  auto graph = r.blob();
  if (!graph) return;
  if (*energy < best_energy_) {
    best_energy_ = *energy;
    best_graph_ = blob;
  }
}

ramsey::HeuristicKind SchedulerServer::choose_kind(std::uint64_t unit_id) const {
  // Epsilon-greedy over observed yield: every fourth unit explores a
  // rotating kind; the rest run the best performer. Until every kind has
  // meaningful spend, rotate so the comparison is fair.
  if (unit_id % 4 == 0) {
    return static_cast<ramsey::HeuristicKind>((unit_id / 4) % 3);
  }
  for (const auto& ks : kind_stats_) {
    if (ks.gops < 1.0) return static_cast<ramsey::HeuristicKind>(unit_id % 3);
  }
  std::size_t best = 0;
  for (std::size_t k = 1; k < kind_stats_.size(); ++k) {
    if (kind_stats_[k].yield() > kind_stats_[best].yield()) best = k;
  }
  return static_cast<ramsey::HeuristicKind>(best);
}

Duration SchedulerServer::overdue_threshold(const ClientInfo& info) const {
  const Forecast f = info.interval.forecast();
  if (f.samples < 2) return opts_.overdue_floor;
  const auto d = static_cast<Duration>(opts_.overdue_factor * f.value);
  return std::max(d, opts_.overdue_floor);
}

void SchedulerServer::sweep_tick() {
  if (!running_) return;
  const TimePoint now = node_.executor().now();
  for (auto it = clients_.begin(); it != clients_.end();) {
    if (now - it->second.last_report > overdue_threshold(it->second)) {
      // Presumed dead (reclaimed host, network partition, browser closed).
      // Its unit goes back to the pool with whatever coloring it last
      // reported — the work, unlike the process, survives.
      pool_.release(it->second.unit_id);
      note_unit_reclaimed(it->second.unit_id, obs::reclaim::kPresumedDead);
      ++presumed_dead_;
      obs::registry().counter(obs::names::kSchedPresumedDead).inc();
      it = clients_.erase(it);
    } else {
      ++it;
    }
  }
  sweep_timer_ = node_.executor().schedule(opts_.sweep_period, [this] { sweep_tick(); });
}

void SchedulerServer::migrate_tick() {
  if (!running_) return;
  migrate_timer_ =
      node_.executor().schedule(opts_.migration_period, [this] { migrate_tick(); });
  if (clients_.size() < 2) return;

  // Forecast every client's rate; compute the median.
  const TimePoint now = node_.executor().now();
  std::vector<std::pair<double, Endpoint>> rates;
  for (const auto& [ep, info] : clients_) {
    const Forecast f = info.rate.forecast();
    if (f.samples >= 2 && !info.pending) rates.emplace_back(f.value, ep);
  }
  if (rates.size() < 2) return;
  std::sort(rates.begin(), rates.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const double median = rates[rates.size() / 2].first;
  const auto slow_it = std::find_if(rates.begin(), rates.end(), [&](const auto& r) {
    return now - clients_.at(r.second).last_migration >= opts_.migration_cooldown;
  });
  if (slow_it == rates.end()) return;
  const auto& [slow_rate, slow_ep] = *slow_it;
  if (slow_rate >= opts_.migration_ratio * median) return;

  ClientInfo& slow = clients_.at(slow_ep);
  slow.last_migration = now;
  const std::uint64_t unit = slow.unit_id;
  if (!pool_.best_energy(unit)) return;  // no reported state to carry over

  // "It may choose to migrate that client's current workload to a machine
  // that it predicts will be faster": the fastest other client takes over
  // the slow client's unit (resuming its coloring); the slow client gets a
  // replacement stream at its next report.
  for (auto rit = rates.rbegin(); rit != rates.rend(); ++rit) {
    if (rit->second == slow_ep) continue;
    ClientInfo& fast = clients_.at(rit->second);
    pool_.release(unit);
    note_unit_reclaimed(unit, obs::reclaim::kMigrated);
    auto spec = pool_.acquire_unit(unit);
    if (!spec) return;
    note_unit_issued(unit);
    pool_.release(fast.unit_id);
    note_unit_reclaimed(fast.unit_id, obs::reclaim::kMigrated);
    fast.pending = std::move(*spec);
    slow.pending = pool_.acquire();
    slow.unit_id = slow.pending->unit_id;
    note_unit_issued(slow.unit_id);
    ++migrations_;
    obs::registry().counter(obs::names::kSchedMigrations).inc();
    if (obs::trace().enabled()) {
      obs::trace().record(now, obs::SpanKind::kSchedMigration,
                          obs::trace().intern(slow_ep.to_string()),
                          static_cast<std::int64_t>(migrations_),
                          static_cast<std::int64_t>(unit));
    }
    EW_DEBUG << "scheduler: migrating unit " << unit << " from "
             << slow_ep.to_string() << " to " << rit->second.to_string();
    return;
  }
}

}  // namespace ew::core
