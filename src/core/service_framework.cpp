#include "core/service_framework.hpp"

#include "common/log.hpp"

namespace ew::core {

Node& ServiceContext::node() { return fw_.node_; }
Executor& ServiceContext::executor() { return fw_.exec_; }
TimePoint ServiceContext::now() { return fw_.exec_.now(); }
const Endpoint& ServiceContext::self() { return fw_.node_.self(); }

void ServiceContext::handle(MsgType type, Node::ServerHandler handler) {
  fw_.node_.handle(type, std::move(handler));
}

void ServiceContext::call(const Endpoint& to, MsgType type, Bytes payload,
                          Node::CallCallback cb) {
  call(to, type, std::move(payload), CallOptions{}, std::move(cb));
}

void ServiceContext::call(const Endpoint& to, MsgType type, Bytes payload,
                          CallOptions opts, Node::CallCallback cb) {
  // Time-out discovery and round-trip feedback now live inside Node's call
  // policy; the framework only gates the callback on its own liveness.
  auto* fw = &fw_;
  fw_.node_.call(to, type, std::move(payload), std::move(opts),
                 [fw, cb = std::move(cb)](Result<Bytes> r) {
                   if (!fw->running_) return;
                   if (cb) cb(std::move(r));
                 });
}

void ServiceContext::every(Duration period, std::function<void()> fn) {
  fw_.ticks_.push_back({period, std::move(fn), kInvalidTimer});
  if (fw_.running_) fw_.tick_loop(fw_.ticks_.size() - 1);
}

void ServiceContext::after(Duration delay, std::function<void()> fn) {
  auto* fw = &fw_;
  fw_.one_shots_.push_back(fw_.exec_.schedule(delay, [fw, fn = std::move(fn)] {
    if (fw->running_) fn();
  }));
}

void ServiceContext::expose_state(MsgType type,
                                  gossip::SyncClient::StateHandlers handlers) {
  if (!fw_.gossip_enabled_) {
    EW_WARN << "ServiceFramework at " << self().to_string()
            << ": expose_state ignored (no gossip endpoints configured)";
    return;
  }
  fw_.sync_->expose(type, std::move(handlers));
}

ServiceFramework::ServiceFramework(Executor& exec, Transport& transport,
                                   Endpoint self)
    : exec_(exec), node_(exec, transport, std::move(self)) {}

ServiceFramework::ServiceFramework(Executor& exec, Transport& transport,
                                   Endpoint self, std::vector<Endpoint> gossips,
                                   const gossip::ComparatorRegistry& comparators)
    : exec_(exec), node_(exec, transport, std::move(self)) {
  sync_ = std::make_unique<gossip::SyncClient>(node_, comparators,
                                               std::move(gossips));
  gossip_enabled_ = true;
}

ServiceFramework::~ServiceFramework() { stop(); }

void ServiceFramework::install(std::unique_ptr<ServiceModule> module) {
  modules_.push_back(std::move(module));
}

Status ServiceFramework::start() {
  if (running_) return Status(Err::kRejected, "framework already started");
  if (Status s = node_.start(); !s.ok()) return s;
  running_ = true;
  for (auto& m : modules_) {
    EW_DEBUG << node_.self().to_string() << ": attaching module " << m->name();
    m->attach(ctx_);
  }
  // Gossip registration happens after attach so every exposed state type is
  // included in the registration message.
  if (sync_) sync_->start();
  for (std::size_t i = 0; i < ticks_.size(); ++i) {
    if (ticks_[i].timer == kInvalidTimer) tick_loop(i);
  }
  return {};
}

void ServiceFramework::tick_loop(std::size_t slot) {
  Tick& t = ticks_[slot];
  t.timer = exec_.schedule(t.period, [this, slot] {
    if (!running_) return;
    ticks_[slot].fn();
    tick_loop(slot);
  });
}

void ServiceFramework::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& t : ticks_) exec_.cancel(t.timer);
  for (TimerId id : one_shots_) exec_.cancel(id);
  ticks_.clear();
  one_shots_.clear();
  if (sync_) sync_->stop();
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) (*it)->detach();
  node_.stop();
}

}  // namespace ew::core
