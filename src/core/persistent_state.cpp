#include "core/persistent_state.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <vector>

#include "common/log.hpp"
#include "ramsey/clique.hpp"

namespace ew::core {

namespace {

/// Object names contain '/' and arbitrary text; file names are the
/// hex-encoded name bytes (reversible, filesystem-safe).
std::string hex_encode(const std::string& s) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (unsigned char c : s) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xF]);
  }
  return out;
}

std::optional<std::string> hex_decode(const std::string& s) {
  if (s.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const int hi = nibble(s[i]);
    const int lo = nibble(s[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

void PersistentStateManager::start() {
  if (running_) return;
  running_ = true;
  if (!opts_.storage_dir.empty()) load_from_disk();
  node_.handle(msgtype::kStateStore, [this](const IncomingMessage& m, Responder r) {
    on_store(m, r);
  });
  node_.handle(msgtype::kStateFetch, [this](const IncomingMessage& m, Responder r) {
    on_fetch(m, r);
  });
}

void PersistentStateManager::stop() { running_ = false; }

void PersistentStateManager::register_validator(std::string name_prefix,
                                                Validator v) {
  validators_[std::move(name_prefix)] = std::move(v);
}

Status PersistentStateManager::validate(const std::string& name,
                                        const Bytes& body) const {
  for (const auto& [prefix, v] : validators_) {
    if (name.rfind(prefix, 0) == 0) {
      if (Status s = v(name, body); !s.ok()) return s;
    }
  }
  return {};
}

Status PersistentStateManager::store(const std::string& name,
                                     const Bytes& versioned_blob) {
  auto body = gossip::blob_body(versioned_blob);
  if (!body) {
    ++rejected_;
    return Status(Err::kProtocol, "object is not a versioned blob");
  }
  if (Status s = validate(name, *body); !s.ok()) {
    ++rejected_;
    return s;
  }
  auto it = objects_.find(name);
  if (it != objects_.end() &&
      gossip::compare_by_version_prefix(versioned_blob, it->second) <= 0) {
    // Idempotent no-op: re-storing equal-or-staler state is normal (several
    // schedulers race to checkpoint the same best coloring).
    ++stale_;
    return {};
  }
  if (it == objects_.end() && objects_.size() >= opts_.max_objects) {
    ++rejected_;
    return Status(Err::kRejected, "object store full");
  }
  objects_[name] = versioned_blob;
  ++accepted_;
  if (!opts_.storage_dir.empty() && !loading_) write_through(name, versioned_blob);
  return {};
}

void PersistentStateManager::write_through(const std::string& name,
                                           const Bytes& blob) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(opts_.storage_dir, ec);
  const fs::path final_path =
      fs::path(opts_.storage_dir) / (hex_encode(name) + ".obj");
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      EW_WARN << "persistent state: cannot write " << tmp_path.string();
      return;
    }
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    EW_WARN << "persistent state: rename failed: " << ec.message();
  }
}

void PersistentStateManager::load_from_disk() {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::exists(opts_.storage_dir, ec)) return;
  loading_ = true;
  std::set<std::string> recovered_names;
  // Recovered objects pass through the same validation + freshness gate as
  // network stores: a corrupted, truncated, or tampered file is refused, not
  // trusted because it came from "our" disk.
  auto try_recover = [&](const fs::path& path, const std::string& name) {
    std::ifstream in(path, std::ios::binary);
    Bytes blob((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
    const auto accepted_before = accepted_;
    if (Status s = store(name, blob); !s.ok()) {
      EW_WARN << "persistent state: rejecting recovered object '" << name
              << "' from " << path.string() << ": " << s.to_string();
      return false;
    }
    if (accepted_ > accepted_before) {
      recovered_names.insert(name);
      return true;
    }
    return false;
  };
  // Final images first, then orphaned .obj.tmp files left by a crash
  // mid-write. A torn final with an intact tmp (or vice versa) therefore
  // recovers whichever candidate validates, and when both are intact the
  // freshness gate keeps the newest version regardless of which file held it.
  std::vector<fs::path> finals;
  std::vector<fs::path> tmps;
  for (const auto& entry : fs::directory_iterator(opts_.storage_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto& path = entry.path();
    if (path.extension() == ".obj") {
      finals.push_back(path);
    } else if (path.extension() == ".tmp" &&
               fs::path(path.stem()).extension() == ".obj") {
      tmps.push_back(path);
    }
  }
  std::sort(finals.begin(), finals.end());
  std::sort(tmps.begin(), tmps.end());
  for (const auto& path : finals) {
    const auto name = hex_decode(path.stem().string());
    if (!name) {
      EW_WARN << "persistent state: skipping undecodable file " << path.string();
      continue;
    }
    try_recover(path, *name);
  }
  for (const auto& path : tmps) {
    const auto name = hex_decode(fs::path(path.stem()).stem().string());
    if (name && try_recover(path, *name)) {
      // The tmp held the newest intact copy; promote it to the final image
      // so the next restart does not depend on the orphan again.
      write_through(*name, objects_[*name]);
    } else if (!name) {
      EW_WARN << "persistent state: skipping undecodable file " << path.string();
    }
    fs::remove(path, ec);  // consumed (or garbage) either way
  }
  recovered_ += recovered_names.size();
  loading_ = false;
}

std::optional<Bytes> PersistentStateManager::fetch(const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

void PersistentStateManager::on_store(const IncomingMessage& msg,
                                      const Responder& resp) {
  auto req = StoreRequest::deserialize(msg.packet.payload);
  if (!req) {
    resp.fail(Err::kProtocol, req.error().message);
    return;
  }
  if (Status s = store(req->name, req->blob); !s.ok()) {
    resp.fail(s.code(), s.error().message);
    return;
  }
  resp.ok();
}

void PersistentStateManager::on_fetch(const IncomingMessage& msg,
                                      const Responder& resp) {
  Reader r(msg.packet.payload);
  auto name = r.str();
  if (!name) {
    resp.fail(Err::kProtocol, "missing object name");
    return;
  }
  auto blob = fetch(*name);
  if (!blob) {
    resp.fail(Err::kRejected, "no such object: " + *name);
    return;
  }
  resp.ok(*blob);
}

Bytes make_best_graph_body(const Bytes& graph_blob, bool is_counterexample) {
  Writer w;
  w.boolean(is_counterexample);
  w.blob(graph_blob);
  return w.take();
}

std::string best_graph_name(int n, int k) {
  return "ramsey/best/" + std::to_string(n) + "/" + std::to_string(k);
}

std::optional<BestGraphName> parse_best_graph_name(const std::string& name) {
  const std::string prefix = "ramsey/best/";
  if (name.rfind(prefix, 0) != 0) return std::nullopt;
  const std::string rest = name.substr(prefix.size());
  const auto slash = rest.find('/');
  if (slash == std::string::npos) return std::nullopt;
  try {
    BestGraphName out;
    out.n = std::stoi(rest.substr(0, slash));
    out.k = std::stoi(rest.substr(slash + 1));
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

PersistentStateManager::Validator PersistentStateManager::ramsey_validator() {
  return [](const std::string& name, const Bytes& body) -> Status {
    const auto parsed = parse_best_graph_name(name);
    if (!parsed) return Status(Err::kRejected, "malformed object name: " + name);
    Reader r(body);
    auto claims_counterexample = r.boolean();
    if (!claims_counterexample) {
      return Status(Err::kProtocol, "missing counter-example flag");
    }
    auto graph_blob = r.blob();
    if (!graph_blob) return Status(Err::kProtocol, "missing graph blob");
    auto g = ramsey::ColoredGraph::deserialize(*graph_blob);
    if (!g) return Status(Err::kRejected, "undecodable graph: " + g.error().message);
    if (g->order() != parsed->n) {
      return Status(Err::kRejected, "graph order does not match object name");
    }
    if (*claims_counterexample && !ramsey::is_counterexample(*g, parsed->k)) {
      // The paper's exact scenario: a client claims a counter-example; the
      // manager independently re-checks before letting it touch disk.
      return Status(Err::kRejected, "claimed counter-example has a mono K" +
                                        std::to_string(parsed->k));
    }
    return {};
  };
}

}  // namespace ew::core
