// Persistent state manager (paper Section 3.1.2).
//
// Holds application state that "must survive the loss of all active
// processes". Three paper-faithful properties:
//   * separate service with a bounded, controllable footprint,
//   * intended to run at "trusted" sites (a flag here; placement is the
//     scenario builder's job),
//   * run-time sanity checks on every store: "If a process attempts to
//     store a counter example ... the persistent state manager first checks
//     to make sure the stored object is, indeed, a Ramsey counter example
//     for the given problem size."
//
// Objects are versioned blobs (gossip/state.hpp convention); a store is
// accepted only if it validates and is fresher than the current copy. The
// manager can also expose objects to the Gossip service so replicas at other
// trusted sites converge.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/protocol.hpp"
#include "gossip/state.hpp"
#include "net/node.hpp"

namespace ew::core {

class PersistentStateManager {
 public:
  /// Validates decoded object content (the bytes inside the version
  /// wrapper). Return a non-ok Status to reject the store.
  using Validator = std::function<Status(const std::string& name, const Bytes& body)>;

  struct Options {
    bool trusted_site = true;
    std::size_t max_objects = 10'000;
    /// When non-empty, every accepted object is also written to this
    /// directory (atomically: tmp + rename) and start() reloads whatever is
    /// on disk — the manager genuinely survives "the loss of all active
    /// processes" (Section 3.1.2). Empty keeps the store memory-only
    /// (simulation runs).
    std::string storage_dir;
  };

  explicit PersistentStateManager(Node& node)
      : PersistentStateManager(node, Options{}) {}
  PersistentStateManager(Node& node, Options opts) : node_(node), opts_(opts) {}

  void start();
  void stop();

  /// Register a sanity check for all objects whose name starts with
  /// `name_prefix`. Checks run on every store, local or remote.
  void register_validator(std::string name_prefix, Validator v);

  /// Store locally (same validation path as the network interface).
  Status store(const std::string& name, const Bytes& versioned_blob);
  [[nodiscard]] std::optional<Bytes> fetch(const std::string& name) const;

  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }
  [[nodiscard]] std::uint64_t stores_accepted() const { return accepted_; }
  /// Stores rejected by sanity checks or malformed encoding.
  [[nodiscard]] std::uint64_t stores_rejected() const { return rejected_; }
  /// Stores that validated but were no fresher than the held copy (no-ops).
  [[nodiscard]] std::uint64_t stores_stale() const { return stale_; }
  /// Objects recovered from storage_dir at start().
  [[nodiscard]] std::uint64_t objects_recovered() const { return recovered_; }

  /// The standard validator for "ramsey/best/<n>/<k>" objects: the body must
  /// decode as a ColoredGraph of order n; if it claims to be a
  /// counter-example (version low word flag), it must actually have no
  /// monochromatic K_k. See make_best_graph_blob()/parse_best_graph_name().
  static Validator ramsey_validator();

 private:
  void on_store(const IncomingMessage& msg, const Responder& resp);
  void on_fetch(const IncomingMessage& msg, const Responder& resp);
  Status validate(const std::string& name, const Bytes& body) const;
  void write_through(const std::string& name, const Bytes& blob) const;
  void load_from_disk();

  Node& node_;
  Options opts_;
  bool running_ = false;
  std::map<std::string, Bytes> objects_;  // name -> versioned blob
  std::map<std::string, Validator> validators_;  // prefix -> check
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t stale_ = 0;
  std::uint64_t recovered_ = 0;
  bool loading_ = false;  // suppress write-through while recovering
};

/// Helpers for the "ramsey/best/<n>/<k>" object family.
/// The object body is: u8 found-flag, blob(serialized graph).
Bytes make_best_graph_body(const Bytes& graph_blob, bool is_counterexample);
struct BestGraphName {
  int n = 0;
  int k = 0;
};
std::optional<BestGraphName> parse_best_graph_name(const std::string& name);
std::string best_graph_name(int n, int k);

}  // namespace ew::core
