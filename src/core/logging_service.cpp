#include "core/logging_service.hpp"

namespace ew::core {

void LoggingServer::start() {
  if (running_) return;
  running_ = true;
  node_.handle(msgtype::kLogRecord,
               [this](const IncomingMessage& m, Responder r) {
                 on_record(m);
                 r.ok();  // records usually arrive one-way; ok() is a no-op then
               });
  node_.handle(msgtype::kMetricsSnapshot,
               [this](const IncomingMessage& m, Responder r) {
                 on_snapshot(m);
                 r.ok();
               });
}

void LoggingServer::stop() { running_ = false; }

std::uint64_t LoggingServer::total_ops() const {
  std::uint64_t sum = 0;
  for (auto v : totals_) sum += v;
  return sum;
}

void LoggingServer::on_record(const IncomingMessage& msg) {
  auto rec = LogRecord::deserialize(msg.packet.payload);
  if (!rec) {
    ++malformed_;
    return;
  }
  ++received_;
  totals_[static_cast<std::size_t>(rec->infra)] += rec->ops;
  recent_.push_back(*rec);
  while (recent_.size() > opts_.retain_records) recent_.pop_front();
  if (sink_) sink_(*rec);
}

void LoggingServer::on_snapshot(const IncomingMessage& msg) {
  auto snap = MetricsSnapshot::deserialize(msg.packet.payload);
  if (!snap) {
    ++malformed_;
    return;
  }
  ++snapshots_received_;
  recent_snapshots_.push_back(*snap);
  while (recent_snapshots_.size() > opts_.retain_snapshots) {
    recent_snapshots_.pop_front();
  }
  if (snapshot_sink_) snapshot_sink_(*snap);
}

}  // namespace ew::core
