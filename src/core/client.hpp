// The computational client ("A" in paper Figure 1).
//
// Self-configuring by design (Section 5.1): a client starts knowing only the
// well-known scheduler addresses, sleeps a randomized interval to avoid
// presenting "an excessive instantaneous load to a particular EveryWare
// scheduler upon startup" (Section 5.5 — the very sleep LSF punished),
// registers, and from then on alternates compute quanta with progress
// reports, following whatever directives come back. Scheduler failure makes
// it fail over down the list and re-register.
//
// A client holds a *lease* of units_per_client work units and speaks the
// batched directive API (DESIGN.md §13): one kSchedReportBatch per quantum
// covers every held unit, and the DirectiveBatch reply revokes/assigns units
// in bulk. Batches carry a monotone sequence number the scheduler dedupes
// on, so the report call is retried and hedged like any other idempotent
// call — report loss no longer forces the old drop-everything re-register.
//
// Compute is pluggable: RealWorkExecutor actually runs the Ramsey heuristics
// (examples, tests, the §5.6 Java bench); ModeledWorkExecutor advances a
// calibrated synthetic search (the 12-hour SC98 scenario, where running real
// kernels for every simulated host would be absurd). Both produce identical
// protocol behaviour.
#pragma once

#include <functional>
#include <memory>

#include "core/protocol.hpp"
#include "net/node.hpp"
#include "ramsey/heuristic.hpp"
#include "ramsey/workunit.hpp"

namespace ew::core {

/// Strategy that turns an ops budget into search progress.
class WorkExecutor {
 public:
  virtual ~WorkExecutor() = default;
  /// Begin (or resume) the given unit.
  virtual void reset(const ramsey::WorkSpec& spec) = 0;
  /// Consume ~ops_budget operations; report what happened.
  virtual ramsey::WorkReport execute(std::uint64_t ops_budget) = 0;
};

/// Runs the real heuristics from src/ramsey.
class RealWorkExecutor final : public WorkExecutor {
 public:
  void reset(const ramsey::WorkSpec& spec) override;
  ramsey::WorkReport execute(std::uint64_t ops_budget) override;

 private:
  std::unique_ptr<ramsey::Heuristic> heuristic_;
  std::uint64_t unit_id_ = 0;
  int k_ = 0;
};

/// Synthetic search progress for large simulated fleets: energy decays
/// geometrically toward an asymptote with multiplicative noise; the resume
/// coloring is a deterministic random graph (valid on the wire, never a
/// counter-example claim).
class ModeledWorkExecutor final : public WorkExecutor {
 public:
  void reset(const ramsey::WorkSpec& spec) override;
  ramsey::WorkReport execute(std::uint64_t ops_budget) override;

 private:
  ramsey::WorkSpec spec_;
  Rng rng_{1};
  double energy_ = 0;
  Bytes resume_blob_;
};

class RamseyClient {
 public:
  struct Options {
    std::vector<Endpoint> schedulers;  // failover order
    Infra infra = Infra::kUnix;
    std::string host_label;
    /// Deliverable ops/sec right now; <= 0 means the host is saturated and
    /// the client should idle briefly. For simulated hosts this samples the
    /// host's load process; for real runs it is a calibration constant.
    std::function<double()> rate_source;
    /// True (default): compute quanta take simulated time (ops / rate).
    /// False: quanta run inline on the executor (real computation).
    bool simulated_time = true;
    /// Target cadence of progress reports ("each client periodically
    /// reports computational progress", Section 3.1.1). In simulated time a
    /// quantum is report_interval long and delivers rate * interval ops, so
    /// a JIT browser and the Tera MTA both report on schedule.
    Duration report_interval = 2 * kMinute;
    Duration idle_recheck = 20 * kSecond;
    Duration initial_sleep_max = 60 * kSecond;  // §5.5 randomized start sleep
    Duration retry_delay = 10 * kSecond;
    std::uint64_t seed = 1;
    /// Lease size: units held (and reported on) concurrently. Values > 1
    /// require executor_factory; without a factory the lease stays at 1.
    std::uint32_t units_per_client = 1;
    /// Mints one executor per leased unit (the constructor's executor
    /// serves the first).
    std::function<std::unique_ptr<WorkExecutor>()> executor_factory;
  };

  RamseyClient(Node& node, std::unique_ptr<WorkExecutor> executor, Options opts);

  void start();
  void stop();

  [[nodiscard]] bool has_work() const { return !runs_.empty(); }
  [[nodiscard]] std::size_t units_held() const { return runs_.size(); }
  [[nodiscard]] std::uint64_t quanta_completed() const { return quanta_; }
  [[nodiscard]] std::uint64_t ops_reported() const { return ops_reported_; }
  [[nodiscard]] std::uint64_t registrations() const { return registrations_; }
  [[nodiscard]] std::uint64_t found_count() const { return found_; }

 private:
  struct UnitRun {
    ramsey::WorkSpec spec;
    std::unique_ptr<WorkExecutor> exec;
  };

  [[nodiscard]] std::uint32_t want_units() const;
  std::unique_ptr<WorkExecutor> make_executor();
  void apply_directives(DirectiveBatch&& d);
  void drop_all_runs();
  void register_with(std::size_t index);
  void schedule_quantum();
  void finish_quantum();
  void send_report_batch(ReportBatch batch);

  Node& node_;
  Options opts_;
  Rng rng_;
  bool running_ = false;
  std::size_t sched_index_ = 0;
  std::vector<UnitRun> runs_;                           // held lease
  std::vector<std::unique_ptr<WorkExecutor>> spares_;   // executor free list
  std::uint64_t report_seq_ = 0;
  std::uint64_t quanta_ = 0;
  std::uint64_t ops_reported_ = 0;
  std::uint64_t registrations_ = 0;
  std::uint64_t found_ = 0;
  TimerId work_timer_ = kInvalidTimer;
};

}  // namespace ew::core
